// Package sgl is the public API of this reproduction of "From Declarative
// Languages to Declarative Processing in Computer Games" (CIDR 2009): the
// SGL scripting language, its compiler to relational tick plans, the
// set-at-a-time main-memory execution engine, and the object-at-a-time
// baseline interpreter used for comparison.
//
// Quickstart:
//
//	game, err := sgl.Load(src)              // parse + check + compile
//	w, err := game.NewWorld(sgl.Options{})  // set-at-a-time engine
//	id, _ := w.Spawn("Unit", map[string]sgl.Value{"x": sgl.Num(3)})
//	err = w.Run(100)                        // 100 ticks
//	hp, _ := w.Get("Unit", id, "health")
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package sgl

import (
	"repro/internal/baseline"
	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/physics"
	"repro/internal/plan"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/sem"
	"repro/internal/value"
)

// Re-exported core types. The engine and baseline worlds share spawn/kill,
// Get/SetState, Run/RunTick and PC methods, so most code is written against
// either interchangeably.
type (
	// Value is a dynamically typed SGL runtime value.
	Value = value.Value
	// ID identifies a game object.
	ID = value.ID
	// World is the set-at-a-time engine world.
	World = engine.World
	// BaselineWorld is the object-at-a-time interpreter world.
	BaselineWorld = baseline.World
	// Options configure engine execution (parallelism, plan forcing,
	// scalar vs vectorized expression execution). Workers and Exec are
	// independent axes decided per class and tick by the cost model:
	// Workers > 1 shards the effect phase, update rules and handlers
	// across a worker pool, and vectorized phases run their batch
	// kernels per shard. See README's options table.
	Options = engine.Options
	// Strategy selects a physical accum-join strategy.
	Strategy = plan.Strategy
	// ExecMode selects scalar closure vs vectorized batch expression
	// execution (see Options.Exec).
	ExecMode = plan.ExecMode
	// JoinMode selects scalar vs batch-gathered accum-join execution
	// (see Options.Join).
	JoinMode = plan.JoinMode
	// TxnMode selects serial vs batched transaction admission
	// (see Options.Txn).
	TxnMode = plan.TxnMode
	// PartitionStrategy selects the shared-nothing partition layout
	// (see Options.Partitions / Options.Partition).
	PartitionStrategy = plan.PartitionStrategy
	// RebalancePolicy selects how partitioned layouts evolve across
	// ticks (see Options.Rebalance): adaptive layout epochs by default,
	// frozen first-tick layouts with RebalanceOff.
	RebalancePolicy = plan.RebalancePolicy
	// UpdateComponent is a non-scripted owner of state attributes
	// (physics, pathfinding, ...; §2.2 of the paper).
	UpdateComponent = engine.UpdateComponent
	// UpdateCtx is the update-step view handed to components.
	UpdateCtx = engine.UpdateCtx
	// TxnPolicy decides which atomic transactions commit (§3.1).
	TxnPolicy = engine.TxnPolicy
	// Txn is a collected transaction intent.
	Txn = engine.Txn
	// Inspector observes tick boundaries (§3.3).
	Inspector = engine.Inspector
	// TraceFn observes effect emissions (§3.3).
	TraceFn = engine.TraceFn
)

// Physical strategies for accum joins (see Options.Strategy).
const (
	Auto           = plan.Auto
	NestedLoop     = plan.NestedLoop
	GridIndex      = plan.GridIndex
	RangeTreeIndex = plan.RangeTreeIndex
	HashIndex      = plan.HashIndex
)

// Execution modes for per-row expression work (see Options.Exec). The
// default ExecAuto vectorizes every extent large enough to amortize batch
// setup; numeric-only rules and simple effect phases then run as columnar
// batch kernels instead of per-object closures. With Options.Workers > 1
// the kernels additionally run shard-parallel across the worker pool.
const (
	ExecAuto       = plan.ExecAuto
	ExecScalar     = plan.ExecScalar
	ExecVectorized = plan.ExecVectorized
)

// Join-execution modes for accum joins (see Options.Join). The default
// JoinAuto batches any site whose match cardinality amortizes the batch
// setup: candidate rows are gathered through the index in bulk, the join
// predicate is re-checked over raw columns instead of re-interpreting the
// loop body, and single-emission contributions fold through batch kernels.
const (
	JoinAuto    = plan.JoinAuto
	JoinScalar  = plan.JoinScalar
	JoinBatched = plan.JoinBatched
)

// Transaction-admission modes (§3.1; see Options.Txn). The default TxnAuto
// batches admission whenever enough transactions arrive per tick to
// amortize building the columnar tentative view: conflict-free
// transactions validate whole-batch through vexpr constraint kernels, true
// conflict groups replay serially (fanned across the worker pool, routed
// partition-locally when partitioned execution is active). Every mode,
// worker count and partition count produces bit-identical admission
// outcomes under every policy.
const (
	TxnAuto    = plan.TxnAuto
	TxnScalar  = plan.TxnScalar
	TxnBatched = plan.TxnBatched
)

// Partition layouts for shared-nothing partitioned execution (§4.2; see
// Options.Partitions). The default PartitionAuto picks the spatial layout
// with the least modeled ghost volume; PartitionStripes cuts 1-D stripes
// along the first position axis, PartitionGrid a 2-D grid over both, and
// PartitionHash spreads objects by id — the communication-oblivious
// strawman whose full replication E11 quantifies. Every layout and
// partition count produces bit-identical worlds; only the message, ghost
// and balance accounting differs.
const (
	PartitionAuto    = plan.PartitionAuto
	PartitionStripes = plan.PartitionStripes
	PartitionGrid    = plan.PartitionGrid
	PartitionHash    = plan.PartitionHash
)

// Layout rebalance policies (see Options.Rebalance). Partition layouts are
// versioned epochs: under the default RebalanceAdaptive the cost model
// replaces a class's layout — re-measured drift-widened bounds, or
// population-quantile cuts that split hot partitions — whenever the modeled
// imbalance penalty amortizes the re-layout plus mass migration, with
// hysteresis so layouts never thrash. RebalanceOff freezes every layout at
// its first-tick epoch (the frozen arm experiment E17 measures against).
// Every policy, like every layout, produces bit-identical worlds.
const (
	RebalanceAdaptive = plan.RebalanceAdaptive
	RebalanceOff      = plan.RebalanceOff
	RebalanceEager    = plan.RebalanceEager
)

// Value constructors.
var (
	// Num builds a number value.
	Num = value.Num
	// Bool builds a boolean value.
	Bool = value.Bool
	// Str builds a string value.
	Str = value.Str
	// Ref builds a reference value.
	Ref = value.Ref
	// NullRef is the null reference.
	NullRef = value.NullRef
	// NullID is the null object id.
	NullID = value.NullID
)

// Game is a loaded SGL program: schema, analysis results and compiled tick
// plans. One Game can instantiate any number of worlds.
type Game struct {
	info *sem.Info
	prog *compile.Program
}

// Load parses, type-checks and compiles SGL source.
func Load(src string) (*Game, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := sem.Analyze(p)
	if err != nil {
		return nil, err
	}
	prog, err := compile.CompileChecked(info)
	if err != nil {
		return nil, err
	}
	return &Game{info: info, prog: prog}, nil
}

// NewWorld instantiates the set-at-a-time engine.
func (g *Game) NewWorld(opts Options) (*World, error) {
	return engine.New(g.prog, opts)
}

// NewBaseline instantiates the object-at-a-time interpreter over the same
// program.
func (g *Game) NewBaseline() *BaselineWorld {
	return baseline.New(g.info)
}

// Explain renders the relational-algebra view of a class's compiled plan.
func (g *Game) Explain(class string) string {
	cp, ok := g.prog.Classes[class]
	if !ok {
		return ""
	}
	return compile.Explain(cp)
}

// Source renders the program back to canonical SGL.
func (g *Game) Source() string { return ast.Print(g.info.Program) }

// Info exposes the semantic-analysis results (schema, annotated AST) for
// tools such as the compiler CLI and the reactive condition compiler.
func (g *Game) Info() *sem.Info { return g.info }

// Classes lists the declared class names in order.
func (g *Game) Classes() []string {
	var out []string
	for _, c := range g.info.Schema.Classes() {
		out = append(out, c.Name)
	}
	return out
}

// NewPhysics2D returns the built-in physics update component (§2.2); it
// owns the named position/velocity attributes of a class. See package
// physics for configuration.
var NewPhysics2D = physics.New2D
