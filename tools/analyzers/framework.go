package analyzers

// A minimal analyzer framework mirroring the shape of golang.org/x/tools
// go/analysis (Analyzer / Pass / Report), built on the stdlib-only loader
// in load.go. Findings can be suppressed per line with an allowlist
// comment:
//
//	//sglvet:allow <analyzer>[: justification]
//
// placed on the reported line or the line immediately above it. The
// justification is free text; suppressions without one are still honored,
// but reviewers should demand a reason.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one determinism check.
type Analyzer struct {
	Name string
	Doc  string
	// Packages restricts the analyzer to these import paths (exact match).
	// Empty means every loaded package.
	Packages []string
	Run      func(*Pass)
}

// Pass is one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(pos token.Pos, format string, args ...any)
}

// Reportf records a finding at pos unless an allowlist comment suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, format, args...)
}

// Finding is one reported diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Msg)
}

// Run executes every analyzer over every matching package and returns the
// surviving findings in file/line order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			if len(a.Packages) > 0 && !contains(a.Packages, pkg.Path) {
				continue
			}
			allow := allowlist(pkg, a.Name)
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report: func(pos token.Pos, format string, args ...any) {
					p := pkg.Fset.Position(pos)
					if allow[p.Filename] != nil &&
						(allow[p.Filename][p.Line] || allow[p.Filename][p.Line-1]) {
						return
					}
					findings = append(findings, Finding{
						Analyzer: a.Name, Pos: p, Msg: fmt.Sprintf(format, args...),
					})
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// allowlist maps filename → set of lines carrying an
// `//sglvet:allow <name>` comment for the given analyzer.
func allowlist(pkg *Package, name string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "sglvet:allow ")
				if !ok {
					continue
				}
				granted, _, _ := strings.Cut(strings.TrimSpace(rest), ":")
				if strings.TrimSpace(granted) != name {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				if out[p.Filename] == nil {
					out[p.Filename] = map[int]bool{}
				}
				out[p.Filename][p.Line] = true
			}
		}
	}
	return out
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// inspectStack walks the file like ast.Inspect but hands the callback the
// stack of enclosing nodes (outermost first, excluding n itself).
func inspectStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		cont := fn(n, stack)
		stack = append(stack, n)
		if !cont {
			// Still push/popped symmetrically: Inspect will deliver the
			// nil pop only if we returned true, so pop now instead.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// mentionsStatsGate reports whether a condition expression references the
// stats gate: the DisableStats option or a local `track` flag derived from
// it (the engine's idiom is `track := !w.opts.DisableStats`).
func mentionsStatsGate(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == "track" || n.Name == "DisableStats" {
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "DisableStats" {
				found = true
			}
		}
		return !found
	})
	return found
}

// underStatsGate reports whether any enclosing if-statement's condition
// references the stats gate.
func underStatsGate(stack []ast.Node) bool {
	for _, n := range stack {
		if ifs, ok := n.(*ast.IfStmt); ok && mentionsStatsGate(ifs.Cond) {
			return true
		}
	}
	return false
}

// enclosingFunc returns the innermost enclosing function declaration or
// literal body on the stack.
func enclosingFunc(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl:
			return n.Body
		case *ast.FuncLit:
			return n.Body
		}
	}
	return nil
}

// hasEarlyStatsReturn reports whether the function body contains, before
// pos, a top-level `if …DisableStats… { return }` guard — the engine's
// early-out idiom for stats-only helpers.
func hasEarlyStatsReturn(body *ast.BlockStmt, pos token.Pos) bool {
	if body == nil {
		return false
	}
	for _, st := range body.List {
		if st.Pos() >= pos {
			break
		}
		ifs, ok := st.(*ast.IfStmt)
		if !ok || !mentionsStatsGate(ifs.Cond) {
			continue
		}
		for _, bs := range ifs.Body.List {
			if _, ok := bs.(*ast.ReturnStmt); ok {
				return true
			}
		}
	}
	return false
}
