package analyzers

// A self-contained package loader for the determinism-lint suite. The
// build environment has no module cache, so golang.org/x/tools (and its
// go/packages loader) is unavailable; this loader reproduces the small
// slice of it the analyzers need using only the standard library: parse
// every package in the module with comments retained, topologically sort
// by intra-module imports, and type-check in dependency order. Standard-
// library imports resolve through the source importer (go/importer with
// compiler "source"), which works offline against GOROOT.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path, e.g. repro/internal/engine
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadModule parses and type-checks every package in the module rooted at
// root (skipping testdata and _test.go files) and returns them in
// dependency order.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	type rawPkg struct {
		pkg     *Package
		imports []string
	}
	raw := map[string]*rawPkg{} // by import path
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		var files []*ast.File
		imports := map[string]bool{}
		for _, e := range ents {
			fn := e.Name()
			if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(path, fn), nil, parser.ParseComments)
			if err != nil {
				return err
			}
			files = append(files, f)
			for _, imp := range f.Imports {
				imports[strings.Trim(imp.Path.Value, `"`)] = true
			}
		}
		if len(files) == 0 {
			return nil
		}
		rel, _ := filepath.Rel(root, path)
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		var deps []string
		for imp := range imports {
			if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				deps = append(deps, imp)
			}
		}
		sort.Strings(deps)
		raw[ip] = &rawPkg{
			pkg:     &Package{Path: ip, Dir: path, Fset: fset, Files: files},
			imports: deps,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topological order over intra-module imports, then type-check. The
	// importer consults the already-checked module packages first and
	// falls back to the source importer for the standard library.
	checked := map[string]*types.Package{}
	std := importer.ForCompiler(fset, "source", nil)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return std.Import(path)
	})

	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(ip string) error
	visit = func(ip string) error {
		switch state[ip] {
		case 1:
			return fmt.Errorf("import cycle through %s", ip)
		case 2:
			return nil
		}
		state[ip] = 1
		for _, dep := range raw[ip].imports {
			if _, ok := raw[dep]; !ok {
				return fmt.Errorf("%s imports %s, not found in module", ip, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[ip] = 2
		order = append(order, ip)
		return nil
	}
	var paths []string
	for ip := range raw {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}

	var out []*Package
	for _, ip := range order {
		rp := raw[ip]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(ip, fset, rp.pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("type-check %s: %w", ip, err)
		}
		rp.pkg.Types, rp.pkg.Info = tp, info
		checked[ip] = tp
		out = append(out, rp.pkg)
	}
	return out, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
