package analyzers

// nodeterm: wall-clock time and unseeded randomness must never influence
// tick semantics — the engine's whole differential-testing story (scalar
// vs vectorized, serial vs sharded, partitioned vs not) depends on
// bit-identical replay. time.Now is tolerated only for stats timing under
// a DisableStats gate; math/rand is banned outright in the deterministic
// core (scenario workloads seed their own generators outside these
// packages).

import (
	"go/ast"
	"go/types"
)

// NoDeterm flags time.Now and math/rand usage in the deterministic core,
// except time.Now calls under a stats gate (`if track { … }`,
// `if !w.opts.DisableStats { … }`).
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "time.Now/math/rand in a deterministic-core package; clocks and randomness break bit-identical replay",
	Packages: []string{
		"repro/internal/engine",
		"repro/internal/vexpr",
		"repro/internal/index",
		"repro/internal/txn",
	},
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.Pkg.Info.Uses[id]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if obj.Name() == "Now" && !underStatsGate(stack) {
						p.Reportf(id.Pos(),
							"time.Now outside a DisableStats gate: wall-clock reads must only feed gated stats timing")
					}
				case "math/rand", "math/rand/v2":
					if _, isType := obj.(*types.TypeName); isType {
						return true // naming rand.Rand in a signature is fine
					}
					p.Reportf(id.Pos(),
						"math/rand in the deterministic core: randomness breaks bit-identical replay")
				}
				return true
			})
		}
	},
}
