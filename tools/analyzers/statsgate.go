package analyzers

// statsgate: every write to the engine's execution counters must be
// gated on Options.DisableStats, either directly (`if track { … }`,
// `if !w.opts.DisableStats { … }`) or through an early-return guard at
// the top of the enclosing function. Ungated counter writes make the
// DisableStats benchmark configuration lie, and — worse — make counter
// state an accidental input to anything that later branches on it.
// Accounting that intentionally runs regardless (because it drives
// execution decisions, not reporting) carries an
// `//sglvet:allow statsgate: <why>` justification.

import (
	"go/ast"
)

// StatsGate flags writes to execStats fields outside a DisableStats gate.
var StatsGate = &Analyzer{
	Name:     "statsgate",
	Doc:      "stats-counter write outside a DisableStats gate",
	Packages: []string{"repro/internal/engine"},
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
				var target ast.Node
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if mentionsExecStats(lhs) {
							target = n
						}
					}
				case *ast.IncDecStmt:
					if mentionsExecStats(n.X) {
						target = n
					}
				case *ast.CallExpr:
					// atomic.AddInt64(&w.execStats.X, …) and friends.
					for _, arg := range n.Args {
						if u, ok := arg.(*ast.UnaryExpr); ok && mentionsExecStats(u.X) {
							target = n
						}
					}
				}
				if target == nil {
					return true
				}
				if underStatsGate(stack) {
					return true
				}
				if hasEarlyStatsReturn(enclosingFunc(stack), target.Pos()) {
					return true
				}
				p.Reportf(target.Pos(),
					"stats-counter write outside a DisableStats gate: wrap in `if track { … }` or guard the function with an early return")
				return true
			})
		}
	},
}

// mentionsExecStats reports whether the expression's selector chain
// touches the execStats counters.
func mentionsExecStats(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "execStats" {
			found = true
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == "execStats" {
			found = true
		}
		return !found
	})
	return found
}

// All is the multichecker's analyzer suite.
var All = []*Analyzer{MapRange, NoDeterm, StatsGate}
