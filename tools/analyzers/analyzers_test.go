package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture is a minimal module reproducing each violation the suite must
// catch, plus gated and allowlisted variants it must not flag.
const fixtureSrc = `package engine

import (
	"math/rand"
	"time"
)

type options struct{ DisableStats bool }

type counters struct{ Ticks int64 }

type world struct {
	opts      options
	execStats counters
}

func (w *world) bad(m map[int]int) int {
	t := time.Now()
	n := rand.Int()
	s := 0
	for k := range m {
		s += k
	}
	w.execStats.Ticks++
	_ = t
	return s + n
}

func (w *world) gated(m map[int]int) {
	track := !w.opts.DisableStats
	var t0 time.Time
	if track {
		t0 = time.Now()
		w.execStats.Ticks++
	}
	_ = t0
	for k := range m { //sglvet:allow maprange: fixture, order-free
		_ = k
	}
}

func (w *world) earlyReturn() {
	if w.opts.DisableStats {
		return
	}
	w.execStats.Ticks++
}
`

func writeFixture(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module repro\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "engine")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "engine.go"), []byte(fixtureSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

// TestAnalyzersDetect pins that each analyzer catches its violation and
// that stats gates, early-return guards and allow comments suppress.
func TestAnalyzersDetect(t *testing.T) {
	pkgs, err := LoadModule(writeFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs, All)
	count := map[string]int{}
	for _, f := range findings {
		count[f.Analyzer]++
	}
	if count["nodeterm"] != 2 {
		t.Errorf("nodeterm: want 2 findings (time.Now, rand.Int), got %d", count["nodeterm"])
	}
	if count["maprange"] != 1 {
		t.Errorf("maprange: want 1 finding (allow comment suppresses the second), got %d", count["maprange"])
	}
	if count["statsgate"] != 1 {
		t.Errorf("statsgate: want 1 finding (gated and early-return writes pass), got %d", count["statsgate"])
	}
	for _, f := range findings {
		if !strings.Contains(f.Pos.Filename, "engine.go") {
			t.Errorf("finding outside fixture: %s", f)
		}
	}
}

// TestRepoClean enforces the zero-findings bar on the repository itself —
// the same check CI runs through cmd/sglvet.
func TestRepoClean(t *testing.T) {
	pkgs, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	if findings := Run(pkgs, All); len(findings) > 0 {
		for _, f := range findings {
			t.Error(f)
		}
	}
}
