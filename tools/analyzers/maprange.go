package analyzers

// maprange: Go map iteration order is randomized, so a `range` over a map
// anywhere on the engine's merge-and-fold paths is a nondeterminism
// hazard — two runs of the same scenario could fold contributions or
// rebuild indexes in different orders. Loops that are provably
// order-independent (keyed stores where each iteration touches a disjoint
// key) or that sort keys first must carry an
// `//sglvet:allow maprange: <why>` justification.

import (
	"go/ast"
	"go/types"
)

// MapRange flags range statements over map-typed expressions in the
// deterministic core packages.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "range over a map in a deterministic-core package; iteration order is random — sort keys first or justify order-independence",
	Packages: []string{
		"repro/internal/engine",
		"repro/internal/index",
		"repro/internal/txn",
	},
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Pkg.Info.Types[rs.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					p.Reportf(rs.Pos(),
						"range over map (%s): iteration order is random; sort keys first or justify order-independence",
						types.TypeString(tv.Type, types.RelativeTo(p.Pkg.Types)))
				}
				return true
			})
		}
	},
}
