package sgl_test

import (
	"os"
	"strings"
	"testing"

	sgl "repro"
	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/workload"
)

func TestLoadErrorsPropagate(t *testing.T) {
	if _, err := sgl.Load("class {"); err == nil {
		t.Error("parse error must surface")
	}
	if _, err := sgl.Load(`class C { state: number x = 0; run { y <- 1; } }`); err == nil {
		t.Error("semantic error must surface")
	}
}

func TestGameAccessors(t *testing.T) {
	data, err := os.ReadFile("testdata/unit.sgl")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sgl.Load(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Classes(); len(got) != 1 || got[0] != "Unit" {
		t.Errorf("Classes = %v", got)
	}
	if !strings.Contains(g.Explain("Unit"), "rectangular range") {
		t.Error("Explain must show the recognized index join")
	}
	if g.Explain("Nope") != "" {
		t.Error("unknown class explains empty")
	}
	src := g.Source()
	if _, err := sgl.Load(src); err != nil {
		t.Errorf("canonical source must reparse: %v", err)
	}
	if g.Info() == nil {
		t.Error("Info accessor")
	}
}

const srcAccumOverSet = `
class Squad {
  state:
    number x = 0;
    number morale = 0;
    set<ref<Squad>> friends;
  effects:
    number dmorale : sum;
  update:
    morale = morale + dmorale;
  run {
    accum number total with sum over Squad f from friends {
      total <- f.x;
    } in {
      dmorale <- total;
    }
  }
}
`

func TestAccumOverSetSource(t *testing.T) {
	g := mustLoad(t, srcAccumOverSet)
	w, err := g.NewWorld(sgl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := w.Spawn("Squad", map[string]sgl.Value{"x": sgl.Num(3)})
	b, _ := w.Spawn("Squad", map[string]sgl.Value{"x": sgl.Num(4)})
	dead, _ := w.Spawn("Squad", map[string]sgl.Value{"x": sgl.Num(100)})
	friends := value.NewSet(value.Ref(a), value.Ref(b), value.Ref(dead))
	c, _ := w.Spawn("Squad", map[string]sgl.Value{"friends": value.SetVal(friends)})
	// Kill one friend: the dangling ref must be skipped, not crash.
	w.Kill("Squad", dead)
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	if got := w.MustGet("Squad", c, "morale").AsNumber(); got != 7 {
		t.Fatalf("morale = %v, want 7 (3+4, dangling friend skipped)", got)
	}
	// Baseline agrees.
	bw := g.NewBaseline()
	ba, _ := bw.Spawn("Squad", map[string]sgl.Value{"x": sgl.Num(3)})
	bb, _ := bw.Spawn("Squad", map[string]sgl.Value{"x": sgl.Num(4)})
	bdead, _ := bw.Spawn("Squad", map[string]sgl.Value{"x": sgl.Num(100)})
	bc, _ := bw.Spawn("Squad", map[string]sgl.Value{
		"friends": value.SetVal(value.NewSet(value.Ref(ba), value.Ref(bb), value.Ref(bdead))),
	})
	bw.Kill("Squad", bdead)
	if err := bw.RunTick(); err != nil {
		t.Fatal(err)
	}
	if got, _ := bw.Get("Squad", bc, "morale"); got.AsNumber() != 7 {
		t.Fatalf("baseline morale = %v", got.AsNumber())
	}
}

const srcHashJoin = `
class Piece {
  state:
    number player = 0;
    number strength = 0;
    number allies = 0;
  effects:
    number cnt : sum;
  update:
    allies = cnt;
  run {
    accum number k with count over Piece p from Piece {
      if (p.player == player) {
        k <- 1;
      }
    } in {
      cnt <- k;
    }
  }
}
`

func TestHashJoinStrategy(t *testing.T) {
	g := mustLoad(t, srcHashJoin)
	for _, strat := range []sgl.Strategy{sgl.HashIndex, sgl.NestedLoop, sgl.Auto} {
		w, err := g.NewWorld(sgl.Options{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		var ids []sgl.ID
		for i := 0; i < 30; i++ {
			id, _ := w.Spawn("Piece", map[string]sgl.Value{"player": sgl.Num(float64(i % 3))})
			ids = append(ids, id)
		}
		if err := w.RunTick(); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for _, id := range ids {
			// Each player has 10 pieces (including self).
			if got := w.MustGet("Piece", id, "allies").AsNumber(); got != 10 {
				t.Fatalf("%v: allies = %v, want 10", strat, got)
			}
		}
	}
}

const srcSetEffects = `
class Collector {
  state:
    number x = 0;
    set<number> seen;
  effects:
    set<number> dseen : union;
  update:
    seen = dseen;
  run {
    accum set<number> vals with union over Collector c from Collector {
      if (c.x >= x - 5 && c.x <= x + 5) {
        vals <= c.x;
      }
    } in {
      dseen <- vals;
    }
  }
}
`

func TestSetEffectsAndSetAccum(t *testing.T) {
	g := mustLoad(t, srcSetEffects)
	w, err := g.NewWorld(sgl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []sgl.ID
	for _, x := range []float64{0, 3, 50} {
		id, _ := w.Spawn("Collector", map[string]sgl.Value{"x": sgl.Num(x)})
		ids = append(ids, id)
	}
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	s0 := w.MustGet("Collector", ids[0], "seen").AsSet()
	if s0.Len() != 2 || !s0.Contains(sgl.Num(0)) || !s0.Contains(sgl.Num(3)) {
		t.Fatalf("seen[0] = %v", s0)
	}
	s2 := w.MustGet("Collector", ids[2], "seen").AsSet()
	if s2.Len() != 1 || !s2.Contains(sgl.Num(50)) {
		t.Fatalf("seen[2] = %v", s2)
	}
}

func TestSpawnDuringTickVisibleNextTick(t *testing.T) {
	g := mustLoad(t, srcHashJoin)
	w, _ := g.NewWorld(sgl.Options{})
	first, _ := w.Spawn("Piece", map[string]sgl.Value{"player": sgl.Num(0)})
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	if got := w.MustGet("Piece", first, "allies").AsNumber(); got != 1 {
		t.Fatalf("allies = %v", got)
	}
	w.Spawn("Piece", map[string]sgl.Value{"player": sgl.Num(0)})
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	if got := w.MustGet("Piece", first, "allies").AsNumber(); got != 2 {
		t.Fatalf("allies after spawn = %v", got)
	}
}

// TestWorkersComposeWithExec pins the public contract of the sharded
// executor: Workers and Exec are independent axes. Forcing ExecVectorized
// with Workers=4 must actually run batch kernels (it used to fall back to
// the scalar worker loop silently), report the same vectorized-row count as
// Workers=1, dispatch shards to the pool, and produce the identical
// trajectory.
func TestWorkersComposeWithExec(t *testing.T) {
	g, err := sgl.Load(core.SrcVehicles)
	if err != nil {
		t.Fatal(err)
	}
	const n, ticks = 2500, 3
	worlds := map[int]*sgl.World{}
	for _, workers := range []int{1, 4} {
		w, err := g.NewWorld(sgl.Options{Workers: workers, Exec: sgl.ExecVectorized})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.PopulateVehicles(w, workload.Uniform(n, 4000, 4000, 9)); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(ticks); err != nil {
			t.Fatal(err)
		}
		worlds[workers] = w
	}
	if v := worlds[4].ExecStats().VectorRows; v == 0 {
		t.Fatal("Workers=4 + ExecVectorized reported zero vectorized rows")
	}
	if worlds[1].ExecStats().VectorRows != worlds[4].ExecStats().VectorRows {
		t.Fatalf("VectorRows drift: Workers=1 %d, Workers=4 %d",
			worlds[1].ExecStats().VectorRows, worlds[4].ExecStats().VectorRows)
	}
	if worlds[4].ExecStats().ParallelShards == 0 {
		t.Fatal("Workers=4 never dispatched shards")
	}
	for _, id := range worlds[1].IDs("Vehicle") {
		for _, attr := range []string{"x", "y", "fuel", "odo", "stress"} {
			a := worlds[1].MustGet("Vehicle", id, attr)
			b := worlds[4].MustGet("Vehicle", id, attr)
			if !a.Equal(b) {
				t.Fatalf("vehicle %d %s: Workers=1 %v, Workers=4 %v", id, attr, a, b)
			}
		}
	}
}

// TestExecModeOptions exercises the public execution-mode surface: the
// same program must produce identical trajectories under forced scalar,
// forced vectorized and cost-model (auto) execution.
func TestExecModeOptions(t *testing.T) {
	data, err := os.ReadFile("testdata/unit.sgl")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sgl.Load(string(data))
	if err != nil {
		t.Fatal(err)
	}
	worlds := map[sgl.ExecMode]*sgl.World{}
	var ids []sgl.ID
	for _, mode := range []sgl.ExecMode{sgl.ExecScalar, sgl.ExecVectorized, sgl.ExecAuto} {
		w, err := g.NewWorld(sgl.Options{Exec: mode})
		if err != nil {
			t.Fatal(err)
		}
		var local []sgl.ID
		for i := 0; i < 60; i++ {
			id, err := w.Spawn("Unit", map[string]sgl.Value{
				"x": sgl.Num(float64(i % 8 * 4)), "y": sgl.Num(float64(i / 8 * 4)),
			})
			if err != nil {
				t.Fatal(err)
			}
			local = append(local, id)
		}
		if err := w.Run(4); err != nil {
			t.Fatal(err)
		}
		worlds[mode] = w
		ids = local
	}
	for _, id := range ids {
		want := worlds[sgl.ExecScalar].MustGet("Unit", id, "health")
		for _, mode := range []sgl.ExecMode{sgl.ExecVectorized, sgl.ExecAuto} {
			if got := worlds[mode].MustGet("Unit", id, "health"); !got.Equal(want) {
				t.Fatalf("%v: unit %d health %v, scalar %v", mode, id, got, want)
			}
		}
	}
}

// TestPartitionOptions exercises the public shared-nothing surface: forced
// layouts must produce trajectories identical to Partitions=1, the §4.2
// counters and per-partition index memory must be populated, and the
// derived interaction radius must be visible per class pair.
func TestPartitionOptions(t *testing.T) {
	g, err := sgl.Load(core.SrcTraffic)
	if err != nil {
		t.Fatal(err)
	}
	const n, ticks = 1200, 3
	net := workload.TrafficNetwork{W: 4000, H: 4000, Roads: 30, Speed: 3}
	build := func(opts sgl.Options) *sgl.World {
		t.Helper()
		w, err := g.NewWorld(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.PopulateCars(w, net.Vehicles(n, 5)); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(ticks); err != nil {
			t.Fatal(err)
		}
		return w
	}
	ref := build(sgl.Options{Partitions: 1})
	for _, strat := range []sgl.PartitionStrategy{sgl.PartitionAuto, sgl.PartitionStripes, sgl.PartitionGrid, sgl.PartitionHash} {
		w := build(sgl.Options{Partitions: 4, Partition: strat, Workers: 2})
		for _, id := range ref.IDs("Car") {
			for _, attr := range []string{"x", "y", "slow"} {
				a := ref.MustGet("Car", id, attr)
				b := w.MustGet("Car", id, attr)
				if !a.Equal(b) {
					t.Fatalf("%v: car %d %s: %v vs %v", strat, id, attr, a, b)
				}
			}
		}
		if w.Partitions() != 4 {
			t.Fatalf("%v: Partitions() = %d", strat, w.Partitions())
		}
		if st := w.ExecStats(); st.GhostRows == 0 || st.PartLoadSum == 0 {
			t.Fatalf("%v: partition counters empty: %+v", strat, st)
		}
		if ib := w.PartitionIndexBytes(); len(ib) != 4 {
			t.Fatalf("%v: PartitionIndexBytes = %v", strat, ib)
		}
	}
	// Radius exposure needs a layout with both axes: under stripes the y
	// dimension can only anchor (loosely but soundly) to the x axis.
	grid := build(sgl.Options{Partitions: 4, Partition: sgl.PartitionGrid})
	radii := grid.InteractionRadii()
	if len(radii) != 1 || radii[0].Class != "Car" || radii[0].Source != "Car" {
		t.Fatalf("InteractionRadii = %+v", radii)
	}
	for _, d := range radii[0].Dims {
		// The reach is max over rows of (x+12)−x etc., so it may exceed 12
		// by a rounding ulp — which is exactly why the ghost intervals are
		// computed from these measured values, not the literal constant.
		if !d.Anchored || d.Attr != d.Axis || d.Lo < 12 || d.Lo > 12.001 || d.Hi < 12 || d.Hi > 12.001 {
			t.Fatalf("headway reach = %+v, want ~±12 on its own axis", d)
		}
	}
}
