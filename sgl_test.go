package sgl_test

import (
	"math"
	"testing"

	sgl "repro"
	"repro/internal/value"
)

// srcFig2 is the paper's Figure 2 workload: each unit counts the other
// units within a square range and takes damage per crowding neighbor.
const srcFig2 = `
class Unit {
  state:
    number x = 0;
    number y = 0;
    number range = 10;
    number health = 100;
    number crowd = 0;
  effects:
    number damage : sum;
  update:
    health = health - damage;
    crowd = crowd;
  run {
    accum number cnt with sum over Unit u from Unit {
      if (u.x >= x - range && u.x <= x + range &&
          u.y >= y - range && u.y <= y + range) {
        cnt <- 1;
      }
    } in {
      if (cnt > 3) {
        damage <- cnt - 3;
      }
    }
  }
}
`

func mustLoad(t *testing.T, src string) *sgl.Game {
	t.Helper()
	g, err := sgl.Load(src)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return g
}

func TestFig2EngineMatchesBaseline(t *testing.T) {
	g := mustLoad(t, srcFig2)
	for _, strat := range []sgl.Strategy{sgl.Auto, sgl.NestedLoop, sgl.RangeTreeIndex, sgl.GridIndex} {
		w, err := g.NewWorld(sgl.Options{Strategy: strat})
		if err != nil {
			t.Fatalf("NewWorld: %v", err)
		}
		b := g.NewBaseline()
		// A 7x7 grid of units spaced 5 apart: every unit has several
		// neighbors within range 10.
		for i := 0; i < 49; i++ {
			init := map[string]sgl.Value{
				"x": sgl.Num(float64(i%7) * 5),
				"y": sgl.Num(float64(i/7) * 5),
			}
			if _, err := w.Spawn("Unit", init); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Spawn("Unit", init); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Run(3); err != nil {
			t.Fatalf("%v: engine run: %v", strat, err)
		}
		if err := b.Run(3); err != nil {
			t.Fatalf("baseline run: %v", err)
		}
		for _, id := range w.IDs("Unit") {
			eh := w.MustGet("Unit", id, "health").AsNumber()
			bh, _ := b.Get("Unit", id, "health")
			if !value.NumbersEqual(eh, bh.AsNumber(), 1e-9) {
				t.Fatalf("%v: unit %d: engine health %v, baseline %v", strat, id, eh, bh.AsNumber())
			}
			if eh >= 100 {
				t.Fatalf("%v: unit %d took no damage; accum loop did not run", strat, id)
			}
		}
	}
}

const srcMultiTick = `
class Bot {
  state:
    number step = 0;
    number a = 0;
    number b = 0;
  effects:
    number da : sum;
    number db : sum;
  update:
    a = a + da;
    b = b + db;
  run {
    da <- 1;
    waitNextTick;
    db <- 10;
    waitNextTick;
    da <- 100;
  }
}
`

func TestMultiTickPhases(t *testing.T) {
	g := mustLoad(t, srcMultiTick)
	w, err := g.NewWorld(sgl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := w.Spawn("Bot", nil)
	// Tick 1: phase 0 (da+1). Tick 2: phase 1 (db+10). Tick 3: phase 2
	// (da+100). Tick 4: wraps to phase 0 (da+1).
	if err := w.Run(4); err != nil {
		t.Fatal(err)
	}
	a := w.MustGet("Bot", id, "a").AsNumber()
	bv := w.MustGet("Bot", id, "b").AsNumber()
	if a != 102 || bv != 10 {
		t.Fatalf("after 4 ticks: a=%v b=%v, want a=102 b=10", a, bv)
	}

	bw := g.NewBaseline()
	bid, _ := bw.Spawn("Bot", nil)
	if err := bw.Run(4); err != nil {
		t.Fatal(err)
	}
	ba, _ := bw.Get("Bot", bid, "a")
	bb, _ := bw.Get("Bot", bid, "b")
	if ba.AsNumber() != 102 || bb.AsNumber() != 10 {
		t.Fatalf("baseline: a=%v b=%v, want a=102 b=10", ba.AsNumber(), bb.AsNumber())
	}
}

// srcMarket reproduces §3.1: buyers purchase an item from a shared seller
// inside an atomic block constrained to non-negative balances and stock.
const srcMarket = `
class Trader {
  state:
    number gold = 0;
    number stock = 0;
    number wants = 0;
    ref<Trader> seller = null;
    number price = 25;
  effects:
    number dgold : sum;
    number dstock : sum;
  update:
    gold = gold + dgold;
    stock = stock + dstock;
  run {
    if (wants > 0 && seller != null) {
      atomic (gold >= 0, seller.stock >= 0) {
        dgold <- 0 - price;
        seller.dgold <- price;
        dstock <- 1;
        seller.dstock <- 0 - 1;
      }
    }
  }
}
`

func TestTransactionsPreventDuping(t *testing.T) {
	g := mustLoad(t, srcMarket)
	w, err := g.NewWorld(sgl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seller, _ := w.Spawn("Trader", map[string]sgl.Value{
		"gold":  sgl.Num(0),
		"stock": sgl.Num(3), // only 3 items
	})
	var buyers []sgl.ID
	for i := 0; i < 5; i++ {
		id, _ := w.Spawn("Trader", map[string]sgl.Value{
			"gold":   sgl.Num(25), // can afford exactly one
			"wants":  sgl.Num(1),
			"seller": sgl.Ref(seller),
		})
		buyers = append(buyers, id)
	}
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	// Exactly 3 purchases can commit: stock cannot go negative.
	gotStock := w.MustGet("Trader", seller, "stock").AsNumber()
	if gotStock != 0 {
		t.Fatalf("seller stock = %v, want 0", gotStock)
	}
	sellerGold := w.MustGet("Trader", seller, "gold").AsNumber()
	if sellerGold != 75 {
		t.Fatalf("seller gold = %v, want 75 (3 sales)", sellerGold)
	}
	bought := 0
	totalGold := sellerGold
	for _, id := range buyers {
		s := w.MustGet("Trader", id, "stock").AsNumber()
		gld := w.MustGet("Trader", id, "gold").AsNumber()
		totalGold += gld
		if gld < 0 {
			t.Fatalf("buyer %d has negative gold %v", id, gld)
		}
		bought += int(s)
	}
	if bought != 3 {
		t.Fatalf("buyers acquired %d items, want 3", bought)
	}
	if totalGold != 125 {
		t.Fatalf("gold not conserved: total %v, want 125", totalGold)
	}
}

const srcHandlers = `
class Guard {
  state:
    number health = 100;
    number fleeing = 0;
  effects:
    number damage : sum;
    number flee : max;
  update:
    health = health - damage;
    fleeing = flee;
  handlers:
    when (health < 50) {
      flee <- 1;
    }
  run {
    damage <- 30;
  }
}
`

func TestReactiveHandlers(t *testing.T) {
	g := mustLoad(t, srcHandlers)
	w, err := g.NewWorld(sgl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := w.Spawn("Guard", nil)
	// Tick 1: health 100→70; handler sees 70, no flee.
	// Tick 2: health 70→40; handler sees 40, arms flee for tick 3.
	// Tick 3: fleeing = flee (1).
	if err := w.Run(2); err != nil {
		t.Fatal(err)
	}
	if f := w.MustGet("Guard", id, "fleeing").AsNumber(); f != 0 {
		t.Fatalf("fleeing after tick 2 = %v, want 0", f)
	}
	if err := w.Run(1); err != nil {
		t.Fatal(err)
	}
	if f := w.MustGet("Guard", id, "fleeing").AsNumber(); f != 1 {
		t.Fatalf("fleeing after tick 3 = %v, want 1", f)
	}

	b := g.NewBaseline()
	bid, _ := b.Spawn("Guard", nil)
	if err := b.Run(3); err != nil {
		t.Fatal(err)
	}
	if f, _ := b.Get("Guard", bid, "fleeing"); f.AsNumber() != 1 {
		t.Fatalf("baseline fleeing = %v, want 1", f.AsNumber())
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	g := mustLoad(t, srcFig2)
	serial, _ := g.NewWorld(sgl.Options{Workers: 1})
	par, _ := g.NewWorld(sgl.Options{Workers: 4})
	for i := 0; i < 200; i++ {
		init := map[string]sgl.Value{
			"x": sgl.Num(math.Mod(float64(i)*7.3, 100)),
			"y": sgl.Num(math.Mod(float64(i)*3.7, 100)),
		}
		serial.Spawn("Unit", init)
		par.Spawn("Unit", init)
	}
	if err := serial.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := par.Run(5); err != nil {
		t.Fatal(err)
	}
	for _, id := range serial.IDs("Unit") {
		a := serial.MustGet("Unit", id, "health").AsNumber()
		b := par.MustGet("Unit", id, "health").AsNumber()
		if !value.NumbersEqual(a, b, 1e-9) {
			t.Fatalf("unit %d: serial %v, parallel %v", id, a, b)
		}
	}
}
