// RTS skirmish: two armies close distance and fight. Demonstrates the full
// architecture of the paper — scripted targeting via an accum maxby join,
// movement intentions flowing as avg-combined effects into a physics update
// component that owns the position attributes (§2.2), reactive low-health
// handlers, and per-tick adaptive plan selection as the battle shifts from
// marching (spread out) to melee (clustered).
package main

import (
	"fmt"
	"log"

	sgl "repro"
	"repro/internal/core"
	"repro/internal/physics"
	"repro/internal/workload"
)

func main() {
	game, err := sgl.Load(core.SrcRTS)
	if err != nil {
		log.Fatal(err)
	}
	world, err := game.NewWorld(sgl.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	err = world.Register(physics.New2D(physics.Config{
		Class: "Soldier", XAttr: "x", YAttr: "y",
		VXEffect: "vx", VYEffect: "vy",
		Radius: 0.8, MaxSpeed: 2,
		Bounds: &physics.Rect{MinX: 0, MinY: 0, MaxX: 400, MaxY: 400},
	}))
	if err != nil {
		log.Fatal(err)
	}

	// Two armies of 300 in opposite corners; both march to the middle.
	blue := workload.Clustered(300, 1, 25, 120, 120, 1)
	red := workload.Clustered(300, 1, 25, 120, 120, 2)
	var ids []sgl.ID
	for i := 0; i < 300; i++ {
		b, err := world.Spawn("Soldier", map[string]sgl.Value{
			"player": sgl.Str("blue"),
			"x":      sgl.Num(blue[i].X), "y": sgl.Num(blue[i].Y),
			"tx": sgl.Num(200), "ty": sgl.Num(200),
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := world.Spawn("Soldier", map[string]sgl.Value{
			"player": sgl.Str("red"),
			"x":      sgl.Num(280 + red[i].X), "y": sgl.Num(280 + red[i].Y),
			"tx": sgl.Num(200), "ty": sgl.Num(200),
		})
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, b, r)
	}

	casualties := func() (alive0, alive1 int) {
		for _, id := range ids {
			hp, ok := world.Get("Soldier", id, "health")
			if !ok || hp.AsNumber() <= 0 {
				continue
			}
			if world.MustGet("Soldier", id, "player").AsString() == "blue" {
				alive0++
			} else {
				alive1++
			}
		}
		return
	}

	for phase := 0; phase < 6; phase++ {
		if err := world.Run(25); err != nil {
			log.Fatal(err)
		}
		// Remove the fallen between ticks.
		for _, id := range ids {
			if hp, ok := world.Get("Soldier", id, "health"); ok && hp.AsNumber() <= 0 {
				world.Kill("Soldier", id)
			}
		}
		a0, a1 := casualties()
		fmt.Printf("tick %3d: blue %3d alive, red %3d alive, plan switches so far %d\n",
			world.Tick(), a0, a1, world.PlanSwitches())
	}
	for _, s := range world.SiteStrategies() {
		fmt.Println("final plan:", s)
	}
}
