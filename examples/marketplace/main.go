// Marketplace: the §3.1 economy. Buyers race to purchase limited stock;
// atomic blocks with constraints keep every exchange consistent (no duping,
// no negative balances), while the same script without transactions
// reproduces the classic oversell bug. Also demonstrates swapping the
// admission policy (greedy vs rotating fairness).
package main

import (
	"fmt"
	"log"

	sgl "repro"
	"repro/internal/core"
	"repro/internal/txn"
	"repro/internal/workload"
)

func run(src string, policy sgl.TxnPolicy) (oversold float64, committed, aborted int64) {
	game, err := sgl.Load(src)
	if err != nil {
		log.Fatal(err)
	}
	world, err := game.NewWorld(sgl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	counting := &txn.CountingPolicy{Inner: policy}
	world.SetTxnPolicy(counting)
	m := workload.Market{Sellers: 5, BuyersPerItem: 6, Stock: 2, Price: 25, Gold: 30}
	sellers, _, err := core.PopulateMarket(world, m)
	if err != nil {
		log.Fatal(err)
	}
	if err := world.Run(3); err != nil {
		log.Fatal(err)
	}
	for _, id := range sellers {
		if s := world.MustGet("Trader", id, "stock").AsNumber(); s < 0 {
			oversold += -s
		}
	}
	return oversold, counting.Stats.Committed, counting.Stats.Aborted
}

func main() {
	fmt.Println("5 sellers x 2 items, 30 buyers who can each afford one item")

	over, c, a := run(core.SrcMarket, nil)
	fmt.Printf("with atomic+constraints (greedy):  committed=%d aborted=%d oversold=%.0f\n", c, a, over)

	over2, c2, a2 := run(core.SrcMarket, &txn.RotatingPolicy{})
	fmt.Printf("with atomic+constraints (rotating): committed=%d aborted=%d oversold=%.0f\n", c2, a2, over2)

	over3, _, _ := run(core.SrcMarketUnsafe, nil)
	fmt.Printf("without transactions:               oversold=%.0f  <-- the duping bug (§3.1)\n", over3)
}
