// Traffic: the §4.2 large-scale simulation. A Manhattan road network with
// hundreds of thousands of vehicles runs on a simulated shared-nothing
// cluster; we compare spatial (strip) against hash partitioning on
// cross-node messages, load balance, per-node index memory and modeled
// tick latency — the open questions the paper poses for clustered SGL.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func main() {
	const vehicles = 100000
	net := workload.TrafficNetwork{W: 4000, H: 4000, Roads: 60, Speed: 3}
	fmt.Printf("traffic network: %d vehicles on a %d x %d road grid\n\n", vehicles, net.Roads, net.Roads)

	for _, nodes := range []int{2, 4, 8} {
		for _, part := range []cluster.Partitioner{
			cluster.StripPartitioner{N: nodes, MinX: 0, MaxX: net.W},
			cluster.HashPartitioner{N: nodes},
		} {
			sim, err := cluster.New(cluster.Config{
				Part:           part,
				InteractRadius: 12,
			}, net.Vehicles(vehicles, 42))
			if err != nil {
				log.Fatal(err)
			}
			var ms []cluster.TickMetrics
			for t := 0; t < 3; t++ {
				ms = append(ms, sim.Step())
			}
			m := cluster.AggregateMetrics(ms)
			maxIdx := 0
			for _, b := range m.IndexBytesPN {
				if b > maxIdx {
					maxIdx = b
				}
			}
			fmt.Printf("%2d nodes %-6s msgs/tick=%-9d ghosts=%-7d imbalance=%.2f  maxIndex=%.1fMB  tick=%.2fms\n",
				nodes, part.Name(), m.Messages, m.GhostCount, m.Imbalance,
				float64(maxIdx)/(1<<20), m.TickUS/1000)
		}
	}
	fmt.Println("\nspatial partitioning keeps neighbor interactions on-node; hash replicates")
	fmt.Println("every vehicle to every node — the communication blow-up §4.2 warns about.")
}
