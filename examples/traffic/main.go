// Traffic: the §4.2 large-scale simulation. A Manhattan road network with
// tens of thousands of vehicles runs the real SGL engine in shared-nothing
// partitioned mode (sgl.Options.Partitions): every partition executes the
// tick pipeline over its owned cars plus ghost replicas within the derived
// headway radius. We compare spatial against hash partitioning on
// cross-partition messages, ghost replication, load balance and per-
// partition index memory — the open questions the paper poses for
// clustered SGL, measured from the engine itself.
package main

import (
	"fmt"
	"log"
	"time"

	sgl "repro"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	const cars = 50000
	const ticks = 3
	net := workload.TrafficNetwork{W: 4000, H: 4000, Roads: 60, Speed: 3}
	ents := net.Vehicles(cars, 42)
	fmt.Printf("traffic network: %d cars on a %d x %d road grid, headway radius 12\n\n", cars, net.Roads, net.Roads)

	game, err := sgl.Load(core.SrcTraffic)
	if err != nil {
		log.Fatal(err)
	}
	for _, parts := range []int{2, 4, 8} {
		for _, strat := range []sgl.PartitionStrategy{sgl.PartitionStripes, sgl.PartitionHash} {
			// Stripe-major spawn order keeps each partition's rows in a
			// contiguous span (hash scatters them anyway).
			sorted := append([]workload.Entity(nil), ents...)
			core.SortEntitiesByStripe(sorted, parts, net.W)

			w, err := game.NewWorld(sgl.Options{Partitions: parts, Partition: strat})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := core.PopulateCars(w, sorted); err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			if err := w.Run(ticks); err != nil {
				log.Fatal(err)
			}
			perTick := time.Since(start) / ticks

			st := w.ExecStats()
			maxIdx := int64(0)
			for _, b := range w.PartitionIndexBytes() {
				if b > maxIdx {
					maxIdx = b
				}
			}
			fmt.Printf("%2d parts %-7s msgs/tick=%-9d ghosts/tick=%-8d migr/tick=%-5d imbalance=%.2f  maxIndex=%.1fMB  tick=%s\n",
				parts, strat, st.PartMessages()/ticks, st.GhostRows/ticks, st.MigratedRows/ticks,
				st.PartImbalance(parts), float64(maxIdx)/(1<<20), perTick.Round(time.Microsecond))
		}
	}
	fmt.Println("\nspatial partitioning keeps neighbor interactions partition-local; hash")
	fmt.Println("replicates every car to every partition — the communication blow-up §4.2")
	fmt.Println("warns about. Any partition count is bit-identical to Partitions: 1.")
}
