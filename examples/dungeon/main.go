// Dungeon patrol: multi-tick intentions with pathfinding and reactive
// interrupts (§2.2 + §3.2). Guards patrol between two posts through a
// walled dungeon; the A* planner update component owns their positions and
// walks them around obstacles; a reactive interrupt redirects any guard
// whose health drops (an "attack") to phase 0 — and resumes the interrupted
// intention once the threat clears, the resumable-exception model.
package main

import (
	"fmt"
	"log"
	"strings"

	sgl "repro"
	"repro/internal/pathfind"
	"repro/internal/reactive"
)

const src = `
class Guard {
  state:
    number x = 1 by pathfind;
    number y = 1 by pathfind;
    number ax = 0;
    number ay = 0;
    number bx = 0;
    number pby = 0;
    number health = 100;
    number patrols = 0;
  effects:
    number goalx : avg;
    number goaly : avg;
    number damage : sum;
    number arrived : sum;
  update:
    health = min(health - damage + 0.2, 100);
    patrols = patrols + arrived;
  run {
    goalx <- ax;
    goaly <- ay;
    waitNextTick;
    if (x == ax && y == ay) {
      arrived <- 1;
    }
    goalx <- bx;
    goaly <- pby;
    waitNextTick;
    if (x == bx && y == pby) {
      arrived <- 1;
    }
  }
}
`

func main() {
	game, err := sgl.Load(src)
	if err != nil {
		log.Fatal(err)
	}
	world, err := game.NewWorld(sgl.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// A dungeon with an interior wall and a doorway.
	grid := pathfind.NewGrid(24, 12)
	grid.BlockRect(12, 0, 12, 8) // wall with a gap at y=9..11
	planner := pathfind.New(pathfind.Config{
		Class: "Guard", XAttr: "x", YAttr: "y",
		GoalXEff: "goalx", GoalYEff: "goaly", Grid: grid,
	})
	if err := world.Register(planner); err != nil {
		log.Fatal(err)
	}

	var ids []sgl.ID
	for i := 0; i < 3; i++ {
		id, err := world.Spawn("Guard", map[string]sgl.Value{
			"x": sgl.Num(1), "y": sgl.Num(float64(1 + i*3)),
			"ax": sgl.Num(2), "ay": sgl.Num(float64(1 + i*3)),
			"bx": sgl.Num(22), "pby": sgl.Num(float64(1 + i*3)),
		})
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}

	// Reactive interrupt: when hurt, jump to phase 0 (head for post A) and
	// resume the interrupted intention once recovered.
	mgr := reactive.NewManager(world, "Guard")
	if err := mgr.InterruptWhen(game.Info(), "health < 95", 0, true); err != nil {
		log.Fatal(err)
	}
	world.AddInspector(reactive.Resumer{M: mgr})

	render := func() {
		rows := make([][]byte, 12)
		for y := range rows {
			rows[y] = []byte(strings.Repeat(".", 24))
			for x := 0; x < 24; x++ {
				if !grid.Walkable(x, y) {
					rows[y][x] = '#'
				}
			}
		}
		for i, id := range ids {
			x := int(world.MustGet("Guard", id, "x").AsNumber())
			y := int(world.MustGet("Guard", id, "y").AsNumber())
			rows[y][x] = byte('A' + i)
		}
		for _, r := range rows {
			fmt.Println(string(r))
		}
	}

	fmt.Println("initial dungeon (guards A,B,C patrol to the right through the door):")
	render()

	if err := world.Run(40); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter 40 ticks:")
	render()

	// Guard A is ambushed: damage arrives, the interrupt redirects it.
	fmt.Println("\nguard A is attacked (health drops); interrupt fires, then resumes")
	world.SetState("Guard", ids[0], "health", sgl.Num(80))
	if err := world.Run(30); err != nil {
		log.Fatal(err)
	}
	render()
	for i, id := range ids {
		fmt.Printf("guard %c: patrol legs completed=%v health=%.1f plans=%d\n",
			'A'+i,
			world.MustGet("Guard", id, "patrols").AsNumber(),
			world.MustGet("Guard", id, "health").AsNumber(),
			planner.Plans)
	}
}
