// Quickstart: load an SGL script, spawn objects, tick the world, inspect
// results — the paper's Figure 2 crowding workload end to end, run on both
// the set-at-a-time engine and the object-at-a-time baseline to show they
// agree while the engine's compiled plan uses an index join.
package main

import (
	"fmt"
	"log"

	sgl "repro"
)

const src = `
class Unit {
  state:
    number x = 0;
    number y = 0;
    number range = 10;
    number health = 100;
  effects:
    number damage : sum;
  update:
    health = health - damage;
  run {
    // The paper's Figure 2: count units within a square range. The
    // compiler turns this loop into a join + grouped aggregation and
    // serves the rectangle from a spatial index.
    accum number cnt with sum over Unit u from Unit {
      if (u.x >= x - range && u.x <= x + range &&
          u.y >= y - range && u.y <= y + range) {
        cnt <- 1;
      }
    } in {
      if (cnt > 3) {
        damage <- cnt - 3;
      }
    }
  }
}
`

func main() {
	game, err := sgl.Load(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== compiled plan (relational algebra view) ===")
	fmt.Print(game.Explain("Unit"))

	world, err := game.NewWorld(sgl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	baseline := game.NewBaseline()

	// A 10x10 grid of units, 5 apart: everyone has several neighbors in
	// range, so crowding damage accrues.
	var ids []sgl.ID
	for i := 0; i < 100; i++ {
		init := map[string]sgl.Value{
			"x": sgl.Num(float64(i%10) * 5),
			"y": sgl.Num(float64(i/10) * 5),
		}
		id, err := world.Spawn("Unit", init)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := baseline.Spawn("Unit", init); err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}

	const ticks = 10
	if err := world.Run(ticks); err != nil {
		log.Fatal(err)
	}
	if err := baseline.Run(ticks); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n=== after %d ticks ===\n", ticks)
	agree := true
	var minHP, maxHP = 1e18, -1e18
	for _, id := range ids {
		e := world.MustGet("Unit", id, "health").AsNumber()
		b, _ := baseline.Get("Unit", id, "health")
		if e != b.AsNumber() {
			agree = false
		}
		if e < minHP {
			minHP = e
		}
		if e > maxHP {
			maxHP = e
		}
	}
	fmt.Printf("engine and baseline agree on every unit: %v\n", agree)
	fmt.Printf("health range across the crowd: %.1f .. %.1f (corners suffer least)\n", minHP, maxHP)
	for _, s := range world.SiteStrategies() {
		fmt.Println("chosen plan:", s)
	}
}
