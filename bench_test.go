// Benchmarks regenerating the paper's quantitative claims, one per
// experiment in DESIGN.md §5 / EXPERIMENTS.md. The CIDR 2009 paper is a
// vision paper without numbered evaluation tables, so each benchmark
// operationalizes one of its claims; cmd/sglbench prints the corresponding
// full tables.
package sgl_test

import (
	"fmt"
	"runtime"
	"testing"

	sgl "repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/physics"
	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/value"
	"repro/internal/views"
	"repro/internal/workload"
)

// worldSide sizes a square world so each unit has ~k neighbors in a box of
// half-width r (constant density across n).
func worldSide(n, k int, r float64) float64 {
	area := float64(n) * (2 * r) * (2 * r) / float64(k)
	side := 1.0
	for side*side < area {
		side *= 1.2
	}
	return side
}

func fig2World(b *testing.B, n int, opts engine.Options) *engine.World {
	b.Helper()
	sc := core.MustLoad("fig2", core.SrcFig2)
	w, err := sc.NewWorld(opts)
	if err != nil {
		b.Fatal(err)
	}
	side := worldSide(n, 6, 10)
	if _, err := core.PopulateUnits(w, workload.Uniform(n, side, side, 42), 10); err != nil {
		b.Fatal(err)
	}
	return w
}

func fig2Baseline(b *testing.B, n int) interface{ RunTick() error } {
	b.Helper()
	sc := core.MustLoad("fig2", core.SrcFig2)
	w := sc.NewBaseline()
	side := worldSide(n, 6, 10)
	if _, err := core.PopulateUnits(w, workload.Uniform(n, side, side, 42), 10); err != nil {
		b.Fatal(err)
	}
	return w
}

// E1 — §1–2: set-at-a-time processing vs the object-at-a-time middleware
// model; the gap must grow with n.

func BenchmarkE1_ObjectAtATime(b *testing.B) {
	for _, n := range []int{1000, 2000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			w := fig2Baseline(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE1_SetAtATime(b *testing.B) {
	for _, n := range []int{1000, 2000, 5000, 20000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			w := fig2World(b, n, engine.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E2 — §2.1 Fig. 2: the accum-loop compiled to a join, per physical plan.

func BenchmarkE2_AccumJoin(b *testing.B) {
	for _, strat := range []plan.Strategy{plan.NestedLoop, plan.GridIndex, plan.RangeTreeIndex} {
		for _, n := range []int{1000, 5000} {
			b.Run(fmt.Sprintf("%s/n=%d", strat, n), func(b *testing.B) {
				w := fig2World(b, n, engine.Options{Strategy: strat})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := w.RunTick(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// E3 — §2.2: the physics update component resolving conflicting intentions.

func BenchmarkE3_PhysicsUpdate(b *testing.B) {
	for _, n := range []int{200, 1000} {
		b.Run(fmt.Sprintf("colliders=%d", n), func(b *testing.B) {
			sc := core.MustLoad("rts", core.SrcRTS)
			w, err := sc.NewWorld(engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			ph := physics.New2D(physics.Config{
				Class: "Soldier", XAttr: "x", YAttr: "y",
				VXEffect: "vx", VYEffect: "vy", Radius: 1, MaxSpeed: 3,
			})
			if err := w.Register(ph); err != nil {
				b.Fatal(err)
			}
			for _, p := range workload.Clustered(n, 1, 40, 200, 200, 9) {
				if _, err := w.Spawn("Soldier", map[string]value.Value{
					"player": value.Str("red"),
					"x":      value.Num(p.X), "y": value.Num(p.Y),
					"tx": value.Num(100), "ty": value.Num(100),
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E4 — §3.1: transaction admission under contention.

func BenchmarkE4_Transactions(b *testing.B) {
	for _, bpi := range []int{2, 8} {
		b.Run(fmt.Sprintf("buyersPerItem=%d", bpi), func(b *testing.B) {
			sc := core.MustLoad("market", core.SrcMarket)
			w, err := sc.NewWorld(engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sellers, _, err := core.PopulateMarket(w, workload.Market{
				Sellers: 100, BuyersPerItem: bpi, Stock: 1, Price: 25, Gold: 1000,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				for _, id := range sellers {
					w.SetState("Trader", id, "stock", value.Num(1))
				}
				b.StartTimer()
			}
		})
	}
}

// E5 — §3.2: waitNextTick lowering vs a hand-written state machine.

func BenchmarkE5_MultiTick(b *testing.B) {
	for _, variant := range []struct{ name, src string }{
		{"waitNextTick", core.SrcGuard},
	} {
		b.Run(variant.name, func(b *testing.B) {
			sc := core.MustLoad(variant.name, variant.src)
			w, err := sc.NewWorld(engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 10000; i++ {
				if _, err := w.Spawn("Guard", map[string]value.Value{
					"px": value.Num(float64(i % 50)),
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E6 — §3.2: reactive handler dispatch cost.

func BenchmarkE6_Reactive(b *testing.B) {
	sc := core.MustLoad("guard", core.SrcGuard)
	w, err := sc.NewWorld(engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if _, err := w.Spawn("Guard", nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.RunTick(); err != nil {
			b.Fatal(err)
		}
	}
}

// E7 — §4.1: adaptive plan selection vs static plans across regimes.

func BenchmarkE7_Adaptive(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		strat plan.Strategy
	}{
		{"staticNL", plan.NestedLoop},
		{"staticTree", plan.RangeTreeIndex},
		{"adaptive", plan.Auto},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			const n = 2000
			sc := core.MustLoad("fig2", core.SrcFig2)
			w, err := sc.NewWorld(engine.Options{Strategy: cfg.strat})
			if err != nil {
				b.Fatal(err)
			}
			side := worldSide(n, 6, 10)
			ids, err := core.PopulateUnits(w, workload.Uniform(n, side, side, 1), 10)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Alternate regimes every 5 iterations.
				if i%5 == 0 {
					b.StopTimer()
					regime := workload.RegimeSchedule(i, 5)
					ps := workload.Positions(regime, n, side, side, int64(i))
					for j, id := range ids {
						w.SetState("Unit", id, "x", value.Num(ps[j].X))
						w.SetState("Unit", id, "y", value.Num(ps[j].Y))
					}
					b.StartTimer()
				}
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E8 — §4.1: statistics collection must be cheap.

func BenchmarkE8_StatsOverhead(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "on"
		if disabled {
			name = "off"
		}
		b.Run("stats="+name, func(b *testing.B) {
			w := fig2World(b, 10000, engine.Options{Strategy: plan.RangeTreeIndex, DisableStats: disabled})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E9 — §4.2: lock-free parallel effect computation.

func BenchmarkE9_Parallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := fig2World(b, 20000, engine.Options{Workers: workers, Strategy: plan.RangeTreeIndex})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E10 — §4.2: range-tree build cost and Θ(n·log^{d−1} n) space.

func BenchmarkE10_RangeTreeSpace(b *testing.B) {
	for _, d := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("d=%d/n=20000", d), func(b *testing.B) {
			const n = 20000
			es := make([]index.Entry, n)
			for i := range es {
				c := make([]float64, d)
				for k := range c {
					c[k] = float64((i*2654435761 + k*40503) % 1000003)
				}
				es[i] = index.Entry{ID: value.ID(i + 1), Coords: c}
			}
			var tree *index.RangeTree
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree = index.BuildRangeTree(d, es)
			}
			b.StopTimer()
			b.ReportMetric(float64(tree.StoredEntries())/n, "replicas/pt")
			b.ReportMetric(float64(tree.EstimatedBytes())/(1<<20), "MB")
		})
	}
}

// E11/E16 — §4.2: shared-nothing partitioned execution on the real engine.

func partitionedCarWorld(b *testing.B, cars, parts int, strat sgl.PartitionStrategy) *sgl.World {
	b.Helper()
	net := workload.TrafficNetwork{W: 4000, H: 4000, Roads: 60, Speed: 3}
	ents := net.Vehicles(cars, 21)
	core.SortEntitiesByStripe(ents, parts, net.W)
	sc := core.MustLoad("traffic-prox", core.SrcTraffic)
	w, err := sc.NewWorld(engine.Options{Partitions: parts, Partition: strat})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.PopulateCars(w, ents); err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkE11_Partitioned(b *testing.B) {
	const cars = 50000
	for _, cfg := range []struct {
		name  string
		strat sgl.PartitionStrategy
	}{
		{"stripes4", sgl.PartitionStripes},
		{"hash4", sgl.PartitionHash},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			w := partitionedCarWorld(b, cars, 4, cfg.strat)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := w.ExecStats()
			b.ReportMetric(float64(st.PartMessages())/float64(b.N), "msgs/tick")
			b.ReportMetric(float64(st.GhostRows)/float64(b.N), "ghosts/tick")
		})
	}
}

func BenchmarkE16_PartitionScaling(b *testing.B) {
	const cars = 50000
	for _, parts := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			w := partitionedCarWorld(b, cars, parts, sgl.PartitionAuto)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := w.ExecStats()
			b.ReportMetric(float64(st.PartMessages())/float64(b.N), "msgs/tick")
			b.ReportMetric(st.PartImbalance(parts), "imbalance")
		})
	}
}

// E17 — §4.2 under populations that refuse to stay where they were
// measured: adaptive layout epochs vs frozen first-tick layouts on the
// drifting, contracting swarm workload.

func swarmBenchWorld(b *testing.B, motes, parts int, pol sgl.RebalancePolicy) *sgl.World {
	b.Helper()
	sc := core.MustLoad("swarm", core.SrcSwarm)
	w, err := sc.NewWorld(engine.Options{
		Partitions: parts, Partition: sgl.PartitionStripes, Rebalance: pol,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.PopulateMotes(w, workload.Uniform(motes, 3000, 3000, 27), 8, 2, 0.003); err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkE17_AdaptiveDrift(b *testing.B) {
	const motes, parts = 50000, 8
	for _, cfg := range []struct {
		name string
		pol  sgl.RebalancePolicy
	}{
		{"frozen", sgl.RebalanceOff},
		{"adaptive", sgl.RebalanceAdaptive},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			w := swarmBenchWorld(b, motes, parts, cfg.pol)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := w.ExecStats()
			b.ReportMetric(st.PartImbalance(parts), "imbalance")
			b.ReportMetric(float64(st.PartLoadMax)/float64(b.N), "maxload/tick")
			b.ReportMetric(float64(st.RebalanceCount), "rebalances")
		})
	}
}

// E20 — §3.1 at scale: serial vs batched vs partitioned transaction
// admission on a paired contended marketplace (one buyer per seller, so
// admission is conflict-free and batchable; shallow-stock segments sell
// out and keep aborting on seller.stock >= 0).

func marketBenchWorld(b *testing.B, pairs int, opts engine.Options) *sgl.World {
	b.Helper()
	sc := core.MustLoad("market", core.SrcMarket)
	w, err := sc.NewWorld(opts)
	if err != nil {
		b.Fatal(err)
	}
	// Varied segment sizes mix buyer/seller id offsets so the id-hash
	// partition layout yields both local and cross-partition transactions.
	sizes := []int{612, 613, 616, 619}
	deep := true
	for remaining, chunk := pairs, 0; remaining > 0; chunk++ {
		n := sizes[chunk%len(sizes)]
		if n > remaining {
			n = remaining
		}
		stock := 1 << 20
		if !deep {
			stock = 8
		}
		if _, _, err := core.PopulateMarket(w, workload.Market{
			Sellers: n, BuyersPerItem: 1, Stock: stock, Price: 25, Gold: 1e9,
		}); err != nil {
			b.Fatal(err)
		}
		deep = !deep
		remaining -= n
	}
	return w
}

func BenchmarkE20_TxnAdmission(b *testing.B) {
	const pairs = 10000
	for _, cfg := range []struct {
		name string
		opts engine.Options
	}{
		{"scalar", engine.Options{Txn: sgl.TxnScalar}},
		{"batched", engine.Options{Txn: sgl.TxnBatched}},
		{"batched+4part", engine.Options{Txn: sgl.TxnBatched, Partitions: 4}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			w := marketBenchWorld(b, pairs, cfg.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := w.ExecStats()
			b.ReportMetric(float64(st.TxnBatchedRows)/float64(b.N), "batched/tick")
			b.ReportMetric(float64(st.TxnCrossPart)/float64(b.N), "cross/tick")
		})
	}
}

// E19 — §4.12: the many-world server. One scheduling round over a fleet
// of small worlds sharing a compiled plan and arena pool, vs the engine's
// internal sharding over one monolithic world of the same total size.
func BenchmarkE19_ManyWorldServer(b *testing.B) {
	const worlds, objects = 200, 500
	b.Run("many-world", func(b *testing.B) {
		srv := server.New(server.Config{})
		for i := 0; i < worlds; i++ {
			h, err := srv.AddWorld(fmt.Sprintf("w%03d", i), core.SrcVehicles, 1)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := h.Engine()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.PopulateVehicles(eng, workload.Uniform(objects, 4000, 4000, int64(i))); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := srv.RunRounds(1); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		c := srv.Counters()
		b.ReportMetric(float64(c.PlanCacheHits)/float64(c.PlanCacheHits+c.PlanCacheMisses), "plan-hit-rate")
	})
	b.Run("one-world", func(b *testing.B) {
		sc := core.MustLoad("vehicles", core.SrcVehicles)
		w, err := sc.NewWorld(engine.Options{Workers: runtime.NumCPU()})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.PopulateVehicles(w, workload.Uniform(worlds*objects, 4000, 4000, 42)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.RunTick(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation — DESIGN.md: per-tick index rebuild cost in isolation, the
// design choice of rebuilding instead of maintaining indexes incrementally
// under O(n) updates per tick (§4.1).

func BenchmarkAblation_IndexRebuild(b *testing.B) {
	const n = 20000
	side := worldSide(n, 6, 10)
	ps := workload.Uniform(n, side, side, 4)
	es := make([]index.Entry, n)
	coords := make([]float64, 2*n)
	for i, p := range ps {
		coords[2*i], coords[2*i+1] = p.X, p.Y
		es[i] = index.Entry{ID: value.ID(i + 1), Coords: coords[2*i : 2*i+2]}
	}
	b.Run("rangeTree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			index.BuildRangeTree(2, es)
		}
	})
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			index.BuildGrid(20, es)
		}
	})
}

// Ablation — compilation cost: loading (parse+check+compile) a scenario.

func BenchmarkAblation_CompileScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sgl.Load(core.SrcRTS); err != nil {
			b.Fatal(err)
		}
	}
}

// E13 — §2/§4: vectorized batch execution vs scalar closure interpretation
// on the hot per-object expression path. Three workload shapes: vehicles
// (traffic; pure per-object work, fully vectorizable phases + updates),
// fig2 (dungeon-style crowding; accum-join dominated, only the update rule
// vectorizes), and rts (mixed combat with a physics component).

func vehiclesWorld(b *testing.B, n int, opts engine.Options) *engine.World {
	b.Helper()
	sc := core.MustLoad("vehicles", core.SrcVehicles)
	w, err := sc.NewWorld(opts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.PopulateVehicles(w, workload.Uniform(n, 4000, 4000, 1)); err != nil {
		b.Fatal(err)
	}
	return w
}

func rtsWorld(b *testing.B, n int, opts engine.Options) *engine.World {
	b.Helper()
	sc := core.MustLoad("rts", core.SrcRTS)
	w, err := sc.NewWorld(opts)
	if err != nil {
		b.Fatal(err)
	}
	err = w.Register(physics.New2D(physics.Config{
		Class: "Soldier", XAttr: "x", YAttr: "y",
		VXEffect: "vx", VYEffect: "vy",
		Radius: 0.8, MaxSpeed: 2,
		Bounds: &physics.Rect{MinX: 0, MinY: 0, MaxX: 400, MaxY: 400},
	}))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.PopulateSoldiers(w, workload.Clustered(n, 2, 30, 400, 400, 7)); err != nil {
		b.Fatal(err)
	}
	return w
}

func benchTicks(b *testing.B, w *engine.World) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.RunTick(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13_VectorizedTraffic(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		for _, mode := range []plan.ExecMode{plan.ExecScalar, plan.ExecVectorized} {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				benchTicks(b, vehiclesWorld(b, n, engine.Options{Exec: mode}))
			})
		}
	}
}

func BenchmarkE13_VectorizedFig2(b *testing.B) {
	for _, mode := range []plan.ExecMode{plan.ExecScalar, plan.ExecVectorized} {
		b.Run(fmt.Sprintf("%s/n=%d", mode, 20000), func(b *testing.B) {
			benchTicks(b, fig2World(b, 20000, engine.Options{Exec: mode}))
		})
	}
}

func BenchmarkE13_VectorizedRTS(b *testing.B) {
	for _, mode := range []plan.ExecMode{plan.ExecScalar, plan.ExecVectorized} {
		b.Run(fmt.Sprintf("%s/n=%d", mode, 5000), func(b *testing.B) {
			benchTicks(b, rtsWorld(b, 5000, engine.Options{Exec: mode}))
		})
	}
}

// E14 — the sharded parallel×vectorized executor: worker scaling of scalar
// vs vectorized shards on the expression-bound traffic workload. The
// composition claim is that workers×vectorized beats both axes alone
// (compare against BenchmarkE13_VectorizedTraffic for the serial numbers).
func BenchmarkE14_ShardedTraffic(b *testing.B) {
	for _, n := range []int{100000, 200000} {
		for _, workers := range []int{1, 2, 4, 8} {
			for _, mode := range []plan.ExecMode{plan.ExecScalar, plan.ExecVectorized} {
				b.Run(fmt.Sprintf("%s/w=%d/n=%d", mode, workers, n), func(b *testing.B) {
					benchTicks(b, vehiclesWorld(b, n, engine.Options{Workers: workers, Exec: mode}))
				})
			}
		}
	}
}

// E14 companion: worker scaling on the join-dominated rts workload, where
// the sharded scalar path (worker sinks) carries the weight and the
// vectorized axis contributes only the update rules.
func BenchmarkE14_ShardedRTS(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("auto/w=%d/n=%d", workers, 5000), func(b *testing.B) {
			benchTicks(b, rtsWorld(b, 5000, engine.Options{Workers: workers}))
		})
	}
}

func flockWorld(b *testing.B, n int, opts engine.Options) *engine.World {
	b.Helper()
	sc := core.MustLoad("flock", core.SrcFlock)
	w, err := sc.NewWorld(opts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.PopulateBoids(w, workload.Uniform(n, 1400, 1400, 3)); err != nil {
		b.Fatal(err)
	}
	return w
}

// E15 — batched join execution: scalar per-match interpretation vs the
// batch-gathered driver (row probes, split-predicate re-check over raw
// columns, columnar folds), single core, on the join-dominated workloads.
func BenchmarkE15_BatchedJoinFig2(b *testing.B) {
	for _, mode := range []plan.JoinMode{plan.JoinScalar, plan.JoinBatched} {
		b.Run(fmt.Sprintf("%s/n=%d", mode, 20000), func(b *testing.B) {
			benchTicks(b, fig2World(b, 20000, engine.Options{Join: mode}))
		})
	}
}

func BenchmarkE15_BatchedJoinFlock(b *testing.B) {
	for _, n := range []int{5000, 20000} {
		for _, mode := range []plan.JoinMode{plan.JoinScalar, plan.JoinBatched} {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				benchTicks(b, flockWorld(b, n, engine.Options{Join: mode}))
			})
		}
	}
}

func BenchmarkE15_BatchedJoinRTS(b *testing.B) {
	for _, mode := range []plan.JoinMode{plan.JoinScalar, plan.JoinBatched} {
		b.Run(fmt.Sprintf("%s/n=%d", mode, 5000), func(b *testing.B) {
			benchTicks(b, rtsWorld(b, 5000, engine.Options{Join: mode}))
		})
	}
}

// E21 — §4.13: incremental subscription views. Steady-state maintenance
// cost for a pool of spectator subscriptions over the battle-royale arena
// (~7% of rows touched per tick), delta-driven vs rescan-per-sub. Both
// arms emit bit-identical delta streams; only the maintenance work differs.
func BenchmarkE21_SubscriptionViews(b *testing.B) {
	const objects, subs = 4000, 2000
	for _, cfg := range []struct {
		name string
		mode plan.ViewMode
	}{
		{"rescan", plan.ViewRescan},
		{"delta", plan.ViewAuto},
	} {
		b.Run(fmt.Sprintf("%s/subs=%d", cfg.name, subs), func(b *testing.B) {
			sc := core.MustLoad("arena", core.SrcArena)
			w, err := sc.NewWorld(engine.Options{Workers: runtime.NumCPU()})
			if err != nil {
				b.Fatal(err)
			}
			ph := physics.New2D(physics.Config{
				Class: "Fighter", XAttr: "x", YAttr: "y",
				VXEffect: "vx", VYEffect: "vy", MaxSpeed: 4,
			})
			if err := w.Register(ph); err != nil {
				b.Fatal(err)
			}
			if _, err := core.PopulateArena(w, objects, 0.02, 0.05, 17); err != nil {
				b.Fatal(err)
			}
			r := views.New(w, plan.DefaultCosts())
			side := core.ArenaSide(objects)
			for i := 0; i < subs; i++ {
				var def views.Def
				if i%10 < 8 {
					cx := float64(i%37) / 37 * side
					cy := float64(i%53) / 53 * side
					pred, err := views.InterestPred([]string{"x", "y"}, []float64{cx, cy}, 40)
					if err != nil {
						b.Fatal(err)
					}
					def = views.Def{Class: "Fighter", Pred: pred,
						Payload: []string{"x", "y", "health"}, Mode: cfg.mode}
				} else {
					def = views.Def{Class: "Fighter",
						Pred:    fmt.Sprintf("health < %d", 20+i%60),
						Payload: []string{"health"}, Mode: cfg.mode}
				}
				if _, err := r.Subscribe(def); err != nil {
					b.Fatal(err)
				}
			}
			var rows int64
			for i := 0; i < 3; i++ {
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
				r.Apply(nil)
			}
			baseRescans := w.ExecStats().ViewRescans
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := w.RunTick(); err != nil {
					b.Fatal(err)
				}
				before := w.ExecStats().ViewDeltaRows
				b.StartTimer()
				r.Apply(nil)
				b.StopTimer()
				rows += w.ExecStats().ViewDeltaRows - before
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(rows)/float64(b.N), "deltarows/tick")
			b.ReportMetric(float64(w.ExecStats().ViewRescans-baseRescans)/float64(b.N), "rescans/tick")
		})
	}
}
