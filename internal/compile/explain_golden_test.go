package compile_test

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
)

var updateExplain = flag.Bool("update-explain", false, "rewrite explain golden files")

// TestExplainGoldens pins the full relational-algebra rendering of the three
// plan-shape-diverse shipped scenarios: traffic (partition-friendly phases +
// handlers), rts (minby target selection + atomic), flock (join-dominated
// accums). Any change to compilation output shows up as a golden diff.
func TestExplainGoldens(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"traffic", core.SrcTraffic},
		{"rts", core.SrcRTS},
		{"flock", core.SrcFlock},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := core.MustLoad(tc.name, tc.src)
			names := make([]string, 0, len(sc.Prog.Classes))
			for name := range sc.Prog.Classes { //sglvet:allow maprange: sorted below
				names = append(names, name)
			}
			sort.Strings(names)
			var b strings.Builder
			for _, name := range names {
				b.WriteString(compile.Explain(sc.Prog.Classes[name]))
				b.WriteString("\n")
			}
			got := b.String()
			path := filepath.Join("..", "..", "testdata", "explain", tc.name+".golden")
			if *updateExplain {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update-explain to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("explain output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
