package compile

import (
	"fmt"
	"strings"

	"repro/internal/sgl/ast"
)

// Explain renders the relational-algebra view of a class plan: per phase,
// the selection on the hidden pc column, the join/aggregate structure of
// each accum, and the effect emissions. This is the output of `sglc -plan`
// and the debugger's script↔plan mapping aid (§3.3).
func Explain(cp *ClassPlan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s: %d phase(s), %d local slot(s)\n", cp.Class.Name, cp.NumPhases, cp.NumSlots)
	for i, phase := range cp.Phases {
		if cp.NumPhases > 1 {
			fmt.Fprintf(&b, "phase %d: σ[pc=%d](%s)\n", i, i, cp.Class.Name)
		} else {
			fmt.Fprintf(&b, "phase 0: scan(%s)\n", cp.Class.Name)
		}
		explainSteps(&b, phase, cp, 1)
	}
	for i, h := range cp.Handlers {
		fmt.Fprintf(&b, "handler %d: σ[%s](%s) — post-update\n", i, ast.ExprString(h.Src.Cond), cp.Class.Name)
		explainSteps(&b, h.Body, cp, 1)
	}
	for _, u := range cp.Updates {
		fmt.Fprintf(&b, "update: %s ← %s\n", cp.Class.State[u.AttrIdx].Name, ast.ExprString(u.Src.Expr))
	}
	for _, a := range cp.Class.State {
		if owner, ok := cp.OwnedBy[a.Name]; ok {
			fmt.Fprintf(&b, "update: %s owned by component %q\n", a.Name, owner)
		}
	}
	return b.String()
}

func explainSteps(b *strings.Builder, steps []Step, cp *ClassPlan, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range steps {
		switch s := s.(type) {
		case *LetStep:
			fmt.Fprintf(b, "%sπ extend slot%d\n", ind, s.Slot)
		case *IfStep:
			fmt.Fprintf(b, "%sσ guard\n", ind)
			explainSteps(b, s.Then, cp, depth+1)
			if s.Else != nil {
				fmt.Fprintf(b, "%sσ ¬guard\n", ind)
				explainSteps(b, s.Else, cp, depth+1)
			}
		case *EmitStep:
			if s.AccumSlot >= 0 {
				fmt.Fprintf(b, "%s⊕ accum slot%d\n", ind, s.AccumSlot)
			} else {
				tgt := "self"
				if s.TargetFn != nil {
					tgt = "ref"
				}
				fmt.Fprintf(b, "%semit %s.%s[%s]\n", ind, s.Class, effectName(cp, s), tgt)
			}
		case *AtomicStep:
			fmt.Fprintf(b, "%stxn intent (%d constraint(s))\n", ind, len(s.Constraints))
			explainSteps(b, s.Body, cp, depth+1)
		case *AccumStep:
			src := s.SourceClass
			if s.SourceFn != nil {
				src = "set<ref<" + s.SourceClass + ">>"
			}
			fmt.Fprintf(b, "%sΓ[slot%d, %s](%s ⋈θ %s)\n", ind, s.Slot, s.Comb, cp.Class.Name, src)
			if s.Join != nil {
				if len(s.Join.Ranges) > 0 {
					var dims []string
					for _, r := range s.Join.Ranges {
						dims = append(dims, s.SourceClass+"."+attrName(cp, s.SourceClass, r.AttrIdx))
					}
					fmt.Fprintf(b, "%s  θ: rectangular range on (%s) — index-joinable\n", ind, strings.Join(dims, ", "))
				}
				if len(s.Join.Eqs) > 0 {
					var dims []string
					for _, e := range s.Join.Eqs {
						dims = append(dims, s.SourceClass+"."+attrName(cp, s.SourceClass, e.AttrIdx))
					}
					fmt.Fprintf(b, "%s  θ: equality on (%s) — hash-joinable\n", ind, strings.Join(dims, ", "))
				}
				if s.Join.Residual != nil {
					fmt.Fprintf(b, "%s  θ: residual predicate\n", ind)
				}
				explainSteps(b, s.Join.Inner, cp, depth+1)
			} else {
				explainSteps(b, s.Body, cp, depth+1)
			}
		}
	}
}

func effectName(cp *ClassPlan, s *EmitStep) string {
	// The emission may target another class; resolve through the program
	// schema when available, else fall back to the index.
	if s.Class == cp.Class.Name && s.AttrIdx >= 0 && s.AttrIdx < len(cp.Class.Effects) {
		return cp.Class.Effects[s.AttrIdx].Name
	}
	return fmt.Sprintf("fx[%d]", s.AttrIdx)
}

func attrName(cp *ClassPlan, class string, idx int) string {
	if class == cp.Class.Name && idx >= 0 && idx < len(cp.Class.State) {
		return cp.Class.State[idx].Name
	}
	return fmt.Sprintf("attr[%d]", idx)
}
