package compile

import (
	"strings"
	"testing"

	"repro/internal/combinator"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/sem"
)

func load(t *testing.T, src string) *Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	prog, err := CompileChecked(info)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

const fig2 = `
class Unit {
  state:
    number x = 0;
    number y = 0;
    number range = 10;
    number hp = 100;
  effects:
    number damage : sum;
  update:
    hp = hp - damage;
  run {
    accum number cnt with sum over Unit u from Unit {
      if (u.x >= x - range && u.x <= x + range &&
          u.y >= y - range && u.y <= y + range) {
        cnt <- 1;
      }
    } in {
      if (cnt > 3) { damage <- cnt; }
    }
  }
}
`

func TestJoinAnalysisRecognizesRectangle(t *testing.T) {
	prog := load(t, fig2)
	cp := prog.Classes["Unit"]
	if cp.NumPhases != 1 || len(cp.Phases) != 1 {
		t.Fatalf("phases: %d", cp.NumPhases)
	}
	var acc *AccumStep
	for _, s := range cp.Phases[0] {
		if a, ok := s.(*AccumStep); ok {
			acc = a
		}
	}
	if acc == nil {
		t.Fatal("no accum step compiled")
	}
	if acc.Comb != combinator.Sum {
		t.Errorf("comb = %v", acc.Comb)
	}
	j := acc.Join
	if j == nil {
		t.Fatal("join not analyzed")
	}
	if len(j.Ranges) != 2 {
		t.Fatalf("ranges = %d, want 2 (x and y)", len(j.Ranges))
	}
	for _, r := range j.Ranges {
		if len(r.Lo) != 1 || len(r.Hi) != 1 {
			t.Errorf("range dim %d: lo=%d hi=%d bounds", r.AttrIdx, len(r.Lo), len(r.Hi))
		}
	}
	if j.Residual != nil {
		t.Error("fully rectangular predicate must leave no residual")
	}
	if len(j.Eqs) != 0 {
		t.Error("no equality conjuncts expected")
	}
}

func TestJoinAnalysisEqualityAndResidual(t *testing.T) {
	prog := load(t, `
class Unit {
  state:
    number x = 0;
    number player = 0;
    number hp = 100;
  effects:
    number damage : sum;
  run {
    accum number cnt with sum over Unit u from Unit {
      if (u.player == player && u.x >= x - 5 && u.hp * 2 > hp) {
        cnt <- 1;
      }
    } in { }
  }
}
`)
	cp := prog.Classes["Unit"]
	acc := findAccum(cp.Phases[0])
	j := acc.Join
	if len(j.Eqs) != 1 {
		t.Fatalf("eqs = %d", len(j.Eqs))
	}
	if len(j.Ranges) != 1 || len(j.Ranges[0].Lo) != 1 || len(j.Ranges[0].Hi) != 0 {
		t.Fatalf("ranges = %+v", j.Ranges)
	}
	if j.Residual == nil {
		t.Error("the hp conjunct must stay in the residual")
	}
}

func TestJoinAnalysisRejectsIterDependentBounds(t *testing.T) {
	// Bound references the iteration variable on both sides: u.x >= u.hp
	// cannot become an index range.
	prog := load(t, `
class Unit {
  state:
    number x = 0;
    number hp = 100;
  effects:
    number damage : sum;
  run {
    accum number cnt with sum over Unit u from Unit {
      if (u.x >= u.hp) {
        cnt <- 1;
      }
    } in { }
  }
}
`)
	acc := findAccum(prog.Classes["Unit"].Phases[0])
	if len(acc.Join.Ranges) != 0 || acc.Join.Residual == nil {
		t.Errorf("iter-dependent bound must be residual: %+v", acc.Join)
	}
}

func TestUnconditionalAccumHasNoIndexableJoin(t *testing.T) {
	prog := load(t, `
class Unit {
  state: number x = 0;
  run {
    accum number total with sum over Unit u from Unit {
      total <- u.x;
    } in { }
  }
}
`)
	acc := findAccum(prog.Classes["Unit"].Phases[0])
	if acc.Join == nil {
		t.Fatal("join spec must exist for explain")
	}
	if len(acc.Join.Ranges) != 0 || len(acc.Join.Eqs) != 0 {
		t.Error("unconditional body has no index-servable conjuncts")
	}
}

func TestPhaseSplitting(t *testing.T) {
	prog := load(t, `
class Bot {
  state: number a = 0;
  effects: number e : sum;
  update: a = a + e;
  run {
    e <- 1;
    waitNextTick;
    e <- 2;
    waitNextTick;
    e <- 3;
  }
}
`)
	cp := prog.Classes["Bot"]
	if cp.NumPhases != 3 {
		t.Fatalf("NumPhases = %d", cp.NumPhases)
	}
	for i, phase := range cp.Phases {
		if len(phase) != 1 {
			t.Errorf("phase %d has %d steps", i, len(phase))
		}
	}
}

func TestExplainOutput(t *testing.T) {
	prog := load(t, fig2)
	out := Explain(prog.Classes["Unit"])
	for _, want := range []string{
		"class Unit", "Γ", "rectangular range", "Unit.x", "Unit.y",
		"update: hp ←",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
}

func TestOwnedAttrsRecorded(t *testing.T) {
	prog := load(t, `
class P {
  state:
    number x = 0 by physics;
    number y = 0 by physics;
    number hp = 10;
  effects:
    number vx : avg;
}
`)
	cp := prog.Classes["P"]
	if cp.OwnedBy["x"] != "physics" || cp.OwnedBy["y"] != "physics" {
		t.Errorf("OwnedBy = %v", cp.OwnedBy)
	}
	if _, ok := cp.OwnedBy["hp"]; ok {
		t.Error("hp has no owner")
	}
}

func findAccum(steps []Step) *AccumStep {
	for _, s := range steps {
		switch s := s.(type) {
		case *AccumStep:
			return s
		case *IfStep:
			if a := findAccum(s.Then); a != nil {
				return a
			}
			if a := findAccum(s.Else); a != nil {
				return a
			}
		}
	}
	return nil
}
