// Package compile lowers type-checked SGL classes into executable tick
// plans. This is the paper's core move (§2): scripts that read like
// imperative per-NPC code become relational operations executed
// set-at-a-time —
//
//   - straight-line statements and conditionals become per-row projection
//     and selection work over the class extent;
//   - accum-loops become joins followed by grouped aggregation, and their
//     predicates are analyzed for rectangular-range and equality conjuncts
//     so the engine can execute them as index joins (§2.1, Fig. 2);
//   - waitNextTick splits the script into phases selected by a hidden
//     program-counter column (§3.2);
//   - atomic blocks become transaction intents handled by the transaction
//     update component (§3.1);
//   - `when` handlers become reactive rules evaluated after the update step.
package compile

import (
	"fmt"

	"repro/internal/combinator"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/sem"
	"repro/internal/sgl/token"
	"repro/internal/value"
)

// Program is a fully compiled SGL compilation unit.
type Program struct {
	Info    *sem.Info
	Classes map[string]*ClassPlan
}

// ClassPlan is the executable plan for one class.
type ClassPlan struct {
	Class *schema.Class
	Decl  *ast.ClassDecl

	NumSlots  int
	NumPhases int
	Phases    [][]Step // one step list per waitNextTick phase

	Handlers []HandlerPlan
	Updates  []UpdatePlan      // expression update rules
	OwnedBy  map[string]string // state attr -> owning update component
}

// UpdatePlan is one expression update rule: state[AttrIdx] = Fn(old state,
// combined effects).
type UpdatePlan struct {
	AttrIdx int
	Fn      expr.Fn
	Src     *ast.UpdateRule
}

// HandlerPlan is a compiled reactive handler.
type HandlerPlan struct {
	Cond expr.Fn
	Body []Step
	Src  *ast.Handler
}

// Step is one executable statement operating on the current row's context.
type Step interface{ step() }

// LetStep evaluates an expression into a frame slot.
type LetStep struct {
	Slot int
	Fn   expr.Fn
	Src  ast.Expr // type-checked source, for alternative evaluators
}

// IfStep branches on a boolean expression.
type IfStep struct {
	Cond    expr.Fn
	CondSrc ast.Expr // type-checked source, for alternative evaluators
	Then    []Step
	Else    []Step
}

// EmitStep contributes a value to an effect attribute (or to an enclosing
// accum accumulator when AccumSlot >= 0). The *Src fields retain the
// type-checked expressions so alternative evaluators (the vectorized batch
// path) can recompile them; Pos is the source position of the emission,
// retained for analysis diagnostics.
type EmitStep struct {
	TargetFn  expr.Fn // nil = self
	Class     string
	AttrIdx   int
	ValFn     expr.Fn
	KeyFn     expr.Fn // non-nil for minby/maxby
	SetInsert bool
	AccumSlot int // >= 0: contribution to the accum accumulator in that slot

	ValSrc ast.Expr
	KeySrc ast.Expr
	Pos    token.Pos
}

// AtomicStep wraps body emissions into a transaction intent with
// constraints checked during the update step.
type AtomicStep struct {
	Constraints []expr.Fn
	Srcs        []ast.Expr
	Body        []Step
	Src         *ast.AtomicStmt // source statement, for analysis diagnostics
}

// AccumStep is a compiled accum-loop: a θ-join between the executing row
// and a source collection, aggregated per executing row.
type AccumStep struct {
	Slot     int
	Comb     combinator.Kind
	ValKind  value.Kind
	IterSlot int

	SourceClass string
	SourceFn    expr.Fn // nil = the full class extent; else a set<ref> expression

	// Body is the general-form loop body (always valid to execute).
	Body []Step

	// Join, when non-nil, is the analyzed accelerable form: Body matched
	// `if (pred) { contributions }` and pred decomposed into
	// index-servable conjuncts plus a residual.
	Join *JoinSpec

	// Src is the source accum statement, for analysis diagnostics.
	Src *ast.AccumStmt
}

// JoinSpec is the index-accelerable decomposition of an accum predicate.
type JoinSpec struct {
	Ranges   []RangeDim // rectangular conjuncts on iter numeric attrs
	Eqs      []EqDim    // equality conjuncts on iter scalar attrs
	Residual expr.Fn    // leftover predicate (iter bound); nil if none
	// ResidualSrcs are the type-checked residual conjuncts behind Residual,
	// retained so the batched join driver can recompile them as vectorized
	// filters over gathered candidate lanes.
	ResidualSrcs []ast.Expr
	Inner        []Step // contribution steps guarded by the predicate
}

// RangeDim bounds one numeric attribute of the iterated class. Lo and Hi
// are evaluated in the executing row's scope (they never reference the
// iteration variable); multiple bounds are intersected. Nil entries mean
// unbounded.
type RangeDim struct {
	AttrIdx int
	Lo      []expr.Fn
	Hi      []expr.Fn
	// SelfOnly reports that every bound reads only the executing row's own
	// state attributes and constants — no let-bound locals — so it may be
	// evaluated outside the row's step sequence with an empty frame. The
	// partitioned executor depends on this when it derives ghost margins
	// from the probe boxes at tick start; a dimension whose bounds need
	// frame slots is treated as unbounded there.
	SelfOnly bool
}

// EqDim equates one scalar attribute of the iterated class with an
// executing-row expression, enabling hash joins.
type EqDim struct {
	AttrIdx int
	Key     expr.Fn
}

func (*LetStep) step()    {}
func (*IfStep) step()     {}
func (*EmitStep) step()   {}
func (*AtomicStep) step() {}
func (*AccumStep) step()  {}

// CompileChecked compiles a semantically analyzed program.
func CompileChecked(info *sem.Info) (*Program, error) {
	p := &Program{Info: info, Classes: make(map[string]*ClassPlan)}
	for _, cd := range info.Program.Classes {
		cls, _ := info.Schema.Class(cd.Name)
		cp, err := compileClass(info, cd, cls)
		if err != nil {
			return nil, err
		}
		p.Classes[cd.Name] = cp
	}
	return p, nil
}

func compileClass(info *sem.Info, cd *ast.ClassDecl, cls *schema.Class) (*ClassPlan, error) {
	cp := &ClassPlan{
		Class:     cls,
		Decl:      cd,
		NumSlots:  cd.NumSlots,
		NumPhases: cd.NumPhases,
		OwnedBy:   make(map[string]string),
	}
	for _, s := range cd.States {
		if s.Owner != "" {
			cp.OwnedBy[s.Name] = s.Owner
		}
	}
	for _, r := range cd.Updates {
		cp.Updates = append(cp.Updates, UpdatePlan{
			AttrIdx: cls.StateIndex(r.Attr),
			Fn:      expr.Compile(r.Expr),
			Src:     r,
		})
	}
	for _, h := range cd.Handlers {
		cp.Handlers = append(cp.Handlers, HandlerPlan{
			Cond: expr.Compile(h.Cond),
			Body: compileBlockStmts(info, h.Body.Stmts),
			Src:  h,
		})
	}
	// Split the run block into phases at top-level waitNextTick statements.
	cp.Phases = make([][]Step, cp.NumPhases)
	if cd.Run != nil {
		phase := 0
		var cur []ast.Stmt
		flush := func() {
			cp.Phases[phase] = compileBlockStmts(info, cur)
			cur = nil
		}
		for _, s := range cd.Run.Stmts {
			if _, ok := s.(*ast.WaitStmt); ok {
				flush()
				phase++
				continue
			}
			cur = append(cur, s)
		}
		flush()
	}
	return cp, nil
}

func compileBlockStmts(info *sem.Info, stmts []ast.Stmt) []Step {
	var out []Step
	for _, s := range stmts {
		out = append(out, compileStmt(info, s)...)
	}
	return out
}

func compileStmt(info *sem.Info, s ast.Stmt) []Step {
	switch s := s.(type) {
	case *ast.LetStmt:
		return []Step{&LetStep{Slot: s.Slot, Fn: expr.Compile(s.Expr), Src: s.Expr}}
	case *ast.IfStmt:
		st := &IfStep{Cond: expr.Compile(s.Cond), CondSrc: s.Cond, Then: compileBlockStmts(info, s.Then.Stmts)}
		if s.Else != nil {
			st.Else = compileBlockStmts(info, s.Else.Stmts)
		}
		return []Step{st}
	case *ast.EffectAssign:
		st := &EmitStep{
			Class:     s.TargetClass,
			AttrIdx:   s.AttrIdx,
			ValFn:     expr.Compile(s.Value),
			ValSrc:    s.Value,
			SetInsert: s.SetInsert,
			AccumSlot: s.AccumSlot,
			Pos:       s.Pos,
		}
		if s.Target != nil {
			st.TargetFn = expr.Compile(s.Target)
		}
		if s.Key != nil {
			st.KeyFn = expr.Compile(s.Key)
			st.KeySrc = s.Key
		}
		return []Step{st}
	case *ast.AtomicStmt:
		st := &AtomicStep{Body: compileBlockStmts(info, s.Body.Stmts), Srcs: s.Constraints, Src: s}
		for _, c := range s.Constraints {
			st.Constraints = append(st.Constraints, expr.Compile(c))
		}
		return []Step{st}
	case *ast.AccumStmt:
		return compileAccum(info, s)
	case *ast.WaitStmt:
		// Non-top-level waits are rejected by sem; ignore defensively.
		return nil
	default:
		panic(fmt.Sprintf("compile: unknown statement %T", s))
	}
}

func compileAccum(info *sem.Info, s *ast.AccumStmt) []Step {
	comb, _ := combinator.Parse(s.Comb)
	st := &AccumStep{
		Slot:        s.Slot,
		Comb:        comb,
		ValKind:     s.ValType.Kind,
		IterSlot:    s.IterSlot,
		SourceClass: s.IterClass,
		Body:        compileBlockStmts(info, s.Body.Stmts),
		Src:         s,
	}
	if id, ok := s.Source.(*ast.Ident); !ok || id.Bind.Kind != ast.BindExtent {
		st.SourceFn = expr.Compile(s.Source)
	}
	st.Join = analyzeJoin(info, s)
	steps := []Step{st}
	// The `in` block executes after combination, with the accumulator
	// readable in its slot.
	steps = append(steps, compileBlockStmts(info, s.In.Stmts)...)
	return steps
}

// analyzeJoin recognizes the accelerable pattern: a body that is a single
// `if (pred) { contributions }` (with no else), or unconditional
// contributions. It splits pred's conjuncts into rectangular ranges and
// equalities over iter state attributes versus residual predicates.
func analyzeJoin(info *sem.Info, s *ast.AccumStmt) *JoinSpec {
	iterCls, ok := info.Schema.Class(s.IterClass)
	if !ok {
		return nil
	}
	var pred ast.Expr
	var innerStmts []ast.Stmt
	switch {
	case len(s.Body.Stmts) == 1:
		if ifs, ok := s.Body.Stmts[0].(*ast.IfStmt); ok && ifs.Else == nil {
			pred = ifs.Cond
			innerStmts = ifs.Then.Stmts
		} else {
			innerStmts = s.Body.Stmts
		}
	default:
		innerStmts = s.Body.Stmts
	}
	spec := &JoinSpec{Inner: compileBlockStmts(info, innerStmts)}
	if pred == nil {
		return spec // pure cross join; still executable, no index help
	}
	conjuncts := splitAnd(pred)
	var residual []ast.Expr
	ranges := make(map[int]*RangeDim)
	for _, c := range conjuncts {
		if !classifyConjunct(c, s.IterSlot, iterCls, spec, ranges) {
			residual = append(residual, c)
		}
	}
	for _, rd := range ranges {
		spec.Ranges = append(spec.Ranges, *rd)
	}
	// Deterministic dimension order (by attribute index).
	for i := 1; i < len(spec.Ranges); i++ {
		for j := i; j > 0 && spec.Ranges[j].AttrIdx < spec.Ranges[j-1].AttrIdx; j-- {
			spec.Ranges[j], spec.Ranges[j-1] = spec.Ranges[j-1], spec.Ranges[j]
		}
	}
	if len(residual) > 0 {
		spec.Residual = compileConjunction(residual)
		spec.ResidualSrcs = residual
	}
	return spec
}

func splitAnd(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.ANDAND {
		return append(splitAnd(b.X), splitAnd(b.Y)...)
	}
	return []ast.Expr{e}
}

func compileConjunction(es []ast.Expr) expr.Fn {
	fns := make([]expr.Fn, len(es))
	for i, e := range es {
		fns[i] = expr.Compile(e)
	}
	return func(ctx *expr.Ctx) value.Value {
		for _, f := range fns {
			if !f(ctx).AsBool() {
				return value.Bool(false)
			}
		}
		return value.Bool(true)
	}
}

// classifyConjunct routes one conjunct into spec (ranges or eqs). Returns
// false if the conjunct must stay in the residual.
func classifyConjunct(c ast.Expr, iterSlot int, iterCls *schema.Class, spec *JoinSpec, ranges map[int]*RangeDim) bool {
	b, ok := c.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	// Identify `iter.attr OP e` or `e OP iter.attr` with e iter-free.
	attrIdx, other, flipped := -1, ast.Expr(nil), false
	if ai := iterAttr(b.X, iterSlot); ai >= 0 && !refsSlot(b.Y, iterSlot) {
		attrIdx, other = ai, b.Y
	} else if ai := iterAttr(b.Y, iterSlot); ai >= 0 && !refsSlot(b.X, iterSlot) {
		attrIdx, other, flipped = ai, b.X, true
	} else {
		return false
	}
	attr := iterCls.State[attrIdx]
	op := b.Op
	if flipped {
		switch op {
		case token.LT:
			op = token.GT
		case token.LE:
			op = token.GE
		case token.GT:
			op = token.LT
		case token.GE:
			op = token.LE
		}
	}
	switch op {
	case token.EQ:
		if attr.Kind == value.KindSet {
			return false
		}
		spec.Eqs = append(spec.Eqs, EqDim{AttrIdx: attrIdx, Key: expr.Compile(other)})
		return true
	case token.LE, token.GE:
		if attr.Kind != value.KindNumber {
			return false
		}
		rd := ranges[attrIdx]
		if rd == nil {
			rd = &RangeDim{AttrIdx: attrIdx, SelfOnly: true}
			ranges[attrIdx] = rd
		}
		rd.SelfOnly = rd.SelfOnly && selfOnlyExpr(other)
		if op == token.GE { // iter.attr >= e  → lower bound
			rd.Lo = append(rd.Lo, expr.Compile(other))
		} else {
			rd.Hi = append(rd.Hi, expr.Compile(other))
		}
		return true
	default:
		// Strict < and > stay in the residual for exact float semantics.
		return false
	}
}

// iterAttr returns the state-attribute index when e is `iterVar.attr`,
// else -1.
func iterAttr(e ast.Expr, iterSlot int) int {
	f, ok := e.(*ast.FieldExpr)
	if !ok {
		return -1
	}
	id, ok := f.X.(*ast.Ident)
	if !ok {
		return -1
	}
	if (id.Bind.Kind == ast.BindIter || id.Bind.Kind == ast.BindLocal) && id.Bind.Slot == iterSlot {
		return f.AttrIdx
	}
	return -1
}

// selfOnlyExpr reports whether e reads only executing-row state, effect-free
// builtins and literals — nothing bound to a frame slot — so it can be
// evaluated with an empty frame (see RangeDim.SelfOnly).
func selfOnlyExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Bind.Kind != ast.BindLocal && e.Bind.Kind != ast.BindIter
	case *ast.FieldExpr:
		return selfOnlyExpr(e.X)
	case *ast.UnaryExpr:
		return selfOnlyExpr(e.X)
	case *ast.BinaryExpr:
		return selfOnlyExpr(e.X) && selfOnlyExpr(e.Y)
	case *ast.CondExpr:
		return selfOnlyExpr(e.C) && selfOnlyExpr(e.T) && selfOnlyExpr(e.F)
	case *ast.CallExpr:
		for _, a := range e.Args {
			if !selfOnlyExpr(a) {
				return false
			}
		}
		return true
	default: // literals
		return true
	}
}

// refsSlot reports whether e references the given frame slot.
func refsSlot(e ast.Expr, slot int) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return (e.Bind.Kind == ast.BindLocal || e.Bind.Kind == ast.BindIter) && e.Bind.Slot == slot
	case *ast.FieldExpr:
		return refsSlot(e.X, slot)
	case *ast.UnaryExpr:
		return refsSlot(e.X, slot)
	case *ast.BinaryExpr:
		return refsSlot(e.X, slot) || refsSlot(e.Y, slot)
	case *ast.CondExpr:
		return refsSlot(e.C, slot) || refsSlot(e.T, slot) || refsSlot(e.F, slot)
	case *ast.CallExpr:
		for _, a := range e.Args {
			if refsSlot(a, slot) {
				return true
			}
		}
	}
	return false
}

// Compile parses, checks and compiles SGL source in one call.
func Compile(info *sem.Info) (*Program, error) { return CompileChecked(info) }
