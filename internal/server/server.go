// Package server hosts many SGL worlds over one shared execution
// substrate (DESIGN.md §4.12). The paper's target deployment is not one
// huge simulation but thousands of small concurrent game instances; the
// server makes that shape cheap with four mechanisms:
//
//   - a compiled-plan cache keyed on the script hash, so 2000 worlds of one
//     game compile its kernels, analysis and site batches exactly once;
//   - a shared arena pool: vexpr machines and index-build arenas are
//     checked out per tick and returned at tick end, so scratch memory
//     scales with concurrency (pool workers), not world count;
//   - a deadline-aware tick scheduler: batch rounds over a shared worker
//     pool, or real-time EDF serving with per-world tick periods and
//     deadline-miss/lag accounting;
//   - hibernation: a world idle past the cost model's break-even horizon
//     is checkpointed out and its engine freed; any access transparently
//     restores it.
package server

import (
	"container/heap"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/views"
)

// Config tunes the server. The zero value serves with NumCPU workers, no
// hibernation and a 50ms base tick period.
type Config struct {
	// Workers caps the shared pool of tick executors. 0 = NumCPU.
	Workers int
	// HibernateAfter is the idle-tick threshold before a world becomes a
	// hibernation candidate; 0 disables hibernation. The effective horizon
	// per world is max(HibernateAfter, Costs.HibernateHorizon(rows)) so
	// large worlds — whose checkpoint/restore round-trip costs more than
	// idling — hibernate later than small ones.
	HibernateAfter int
	// Costs supplies the hibernation break-even model (plan.DefaultCosts
	// when zero-valued).
	Costs plan.Costs
	// TickPeriod is the real-time base period for Serve: a world with
	// Every=k ticks every k*TickPeriod. 0 = 50ms. RunRounds ignores it.
	TickPeriod time.Duration
	// Engine is the per-world engine option template (Workers is forced
	// to 1: parallelism comes from ticking many worlds, not sharding one).
	Engine engine.Options
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

func (c Config) costs() plan.Costs {
	if c.Costs == (plan.Costs{}) {
		return plan.DefaultCosts()
	}
	return c.Costs
}

func (c Config) tickPeriod() time.Duration {
	if c.TickPeriod > 0 {
		return c.TickPeriod
	}
	return 50 * time.Millisecond
}

// World is a hosted world handle. All methods are safe for concurrent use
// with the scheduler: the handle lock serializes ticks, hibernation and
// client access.
type World struct {
	ID string
	// Every is the tick-rate divisor: the world ticks every Every-th
	// round (RunRounds) or every Every*TickPeriod (Serve).
	Every int

	srv *Server
	sc  *core.Scenario

	mu   sync.Mutex
	eng  *engine.World      // nil while hibernated
	hib  *engine.Checkpoint // non-nil while hibernated
	idle int                // ticks since last client Touch/Engine access

	// views is the world's subscription registry (lazily created), and
	// sink the per-delta spectator callback invoked after every tick.
	// Subscriptions survive hibernation: the registry detaches with the
	// engine and resyncs every client after the restore.
	views *views.Registry
	sink  func(*views.Delta)

	// Real-time serving state (owned by Serve's scheduler loop). A tick
	// is released at `release` (becomes eligible to run) and must start
	// by `deadline` = release + the world's period.
	release  time.Time
	deadline time.Time
	misses   int64
	lag      time.Duration
}

// Server hosts many worlds over one shared worker pool, plan cache and
// arena pool.
type Server struct {
	cfg    Config
	arenas *engine.ArenaPool

	mu        sync.Mutex
	scenarios map[string]*core.Scenario // script-hash → compiled scenario
	worlds    map[string]*World
	order     []*World // registration order (deterministic round sweep)
	round     int64
	counters  stats.ServerCounters
}

// New returns an empty server.
func New(cfg Config) *Server {
	cfg.Engine.Workers = 1
	return &Server{
		cfg:       cfg,
		arenas:    &engine.ArenaPool{},
		scenarios: make(map[string]*core.Scenario),
		worlds:    make(map[string]*World),
	}
}

// AddWorld registers a world running script, ticking every `every`-th
// round (minimum 1). Compilation is cached on the script's SHA-256: the
// first world of a script compiles, every sibling reuses the plan.
func (s *Server) AddWorld(id, script string, every int) (*World, error) {
	if every < 1 {
		every = 1
	}
	sum := sha256.Sum256([]byte(script))
	key := hex.EncodeToString(sum[:])

	s.mu.Lock()
	if _, dup := s.worlds[id]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("server: duplicate world id %q", id)
	}
	sc, ok := s.scenarios[key]
	s.mu.Unlock()

	if !ok {
		// Compile outside the server lock; a racing AddWorld of the same
		// script may compile too, but exactly one wins the cache slot.
		fresh, err := core.LoadScenario(id, script)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		if cached, again := s.scenarios[key]; again {
			sc, ok = cached, true
		} else {
			s.scenarios[key] = fresh
			sc = fresh
		}
		s.mu.Unlock()
	}

	eng, err := sc.NewWorld(s.cfg.Engine)
	if err != nil {
		return nil, err
	}
	eng.SetArenaPool(s.arenas)

	h := &World{ID: id, Every: every, srv: s, sc: sc, eng: eng}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.worlds[id]; dup {
		return nil, fmt.Errorf("server: duplicate world id %q", id)
	}
	s.worlds[id] = h
	s.order = append(s.order, h)
	s.counters.WorldsActive++
	if ok {
		s.counters.PlanCacheHits++
	} else {
		s.counters.PlanCacheMisses++
	}
	return h, nil
}

// World looks up a hosted world by id.
func (s *Server) World(id string) (*World, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.worlds[id]
	return h, ok
}

// Counters snapshots the server counters.
func (s *Server) Counters() stats.ServerCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// Engine returns the world's engine for direct access (spawn, query,
// manual ticks), transparently restoring it if hibernated and marking the
// world touched. The engine must not be used concurrently with a running
// scheduler tick of the same world; between rounds (or before Serve) is
// always safe.
func (h *World) Engine() (*engine.World, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.idle = 0
	if err := h.wakeLocked(); err != nil {
		return nil, err
	}
	return h.eng, nil
}

// Touch marks client interest: the idle counter resets and a hibernated
// world is restored.
func (h *World) Touch() error {
	_, err := h.Engine()
	return err
}

// Hibernated reports whether the world is currently checkpointed out.
func (h *World) Hibernated() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hib != nil
}

// Stats returns the world's deadline-miss count and accumulated lag from
// real-time serving.
func (h *World) Stats() (misses int64, lag time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.misses, h.lag
}

// Views returns the world's subscription registry, creating it on first
// use (waking a hibernated world: subscribing needs the schema and
// tables). Subscribe/Unsubscribe between ticks only — the registry shares
// the engine's single-driver discipline.
func (h *World) Views() (*views.Registry, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.idle = 0
	if err := h.wakeLocked(); err != nil {
		return nil, err
	}
	if h.views == nil {
		h.views = views.New(h.eng, h.srv.cfg.costs())
	}
	return h.views, nil
}

// SetViewSink installs the callback that receives every subscription delta
// after each tick (nil silences delivery; subscription state is maintained
// regardless). Deltas alias registry buffers — copy to retain.
func (h *World) SetViewSink(fn func(*views.Delta)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sink = fn
}

// Hibernate forces the world out now (no-op when already hibernated).
func (h *World) Hibernate() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hibernateLocked()
}

func (h *World) hibernateLocked() error {
	if h.hib != nil {
		return nil
	}
	c, err := h.eng.Checkpoint()
	if err != nil {
		return fmt.Errorf("server: hibernate %s: %w", h.ID, err)
	}
	h.hib = c
	if h.views != nil {
		h.views.Detach()
	}
	h.eng = nil
	s := h.srv
	s.mu.Lock()
	s.counters.Hibernations++
	s.counters.WorldsActive--
	s.counters.WorldsHibernated++
	s.mu.Unlock()
	return nil
}

func (h *World) wakeLocked() error {
	if h.hib == nil {
		return nil
	}
	eng, err := h.sc.NewWorld(h.srv.cfg.Engine)
	if err != nil {
		return fmt.Errorf("server: wake %s: %w", h.ID, err)
	}
	eng.SetArenaPool(h.srv.arenas)
	if err := eng.Restore(h.hib); err != nil {
		return fmt.Errorf("server: wake %s: %w", h.ID, err)
	}
	h.eng = eng
	h.hib = nil
	if h.views != nil {
		// The restored world's tables (and dictionary codes) are fresh
		// objects: rebind, recompile kernels, resync every subscription.
		h.views.Attach(eng)
	}
	s := h.srv
	s.mu.Lock()
	s.counters.Restores++
	s.counters.WorldsActive++
	s.counters.WorldsHibernated--
	s.mu.Unlock()
	return nil
}

// rowsLocked counts live objects across classes (the hibernation
// break-even input).
func (h *World) rowsLocked() int {
	n := 0
	for _, cls := range h.sc.Info.Schema.Classes() {
		n += h.eng.Count(cls.Name)
	}
	return n
}

// tick runs one scheduled world tick and applies the hibernation policy.
// Hibernated worlds are frozen: the scheduler skips them entirely, so a
// woken world resumes exactly where its checkpoint left it.
func (h *World) tick() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.hib != nil {
		return nil
	}
	if err := h.eng.RunTick(); err != nil {
		return fmt.Errorf("server: tick %s: %w", h.ID, err)
	}
	if h.views != nil {
		h.views.Apply(h.sink)
	}
	s := h.srv
	s.mu.Lock()
	s.counters.TicksRun++
	s.mu.Unlock()
	h.idle++
	if after := s.cfg.HibernateAfter; after > 0 {
		horizon := s.cfg.costs().HibernateHorizon(h.rowsLocked())
		if horizon < after {
			horizon = after
		}
		if h.idle >= horizon {
			return h.hibernateLocked()
		}
	}
	return nil
}

// RunRounds advances the server n scheduling rounds. Each round ticks
// every due world (active, round divisible by Every) once, fanned out over
// the shared worker pool with a barrier between rounds, so relative world
// progress is deterministic for any pool size.
func (s *Server) RunRounds(n int) error {
	for i := 0; i < n; i++ {
		s.mu.Lock()
		round := s.round
		s.round++
		due := make([]*World, 0, len(s.order))
		for _, h := range s.order {
			if round%int64(h.Every) == 0 {
				due = append(due, h)
			}
		}
		s.mu.Unlock()

		workers := s.cfg.workers()
		if workers > len(due) {
			workers = len(due)
		}
		if workers <= 1 {
			for _, h := range due {
				if err := h.tick(); err != nil {
					return err
				}
			}
			continue
		}
		var next int64
		var wg sync.WaitGroup
		errs := make([]error, workers)
		wg.Add(workers)
		for wk := 0; wk < workers; wk++ {
			go func(wk int) {
				defer wg.Done()
				for {
					j := int(atomic.AddInt64(&next, 1)) - 1
					if j >= len(due) {
						return
					}
					if err := due[j].tick(); err != nil {
						errs[wk] = err
						return
					}
				}
			}(wk)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// worldHeap is a min-heap of worlds under a caller-chosen time key.
type worldHeap struct {
	ws []*World
	by func(h *World) time.Time
}

func (q worldHeap) Len() int            { return len(q.ws) }
func (q worldHeap) Less(i, j int) bool  { return q.by(q.ws[i]).Before(q.by(q.ws[j])) }
func (q worldHeap) Swap(i, j int)       { q.ws[i], q.ws[j] = q.ws[j], q.ws[i] }
func (q *worldHeap) Push(x interface{}) { q.ws = append(q.ws, x.(*World)) }
func (q *worldHeap) Pop() interface{} {
	old := q.ws
	n := len(old)
	h := old[n-1]
	old[n-1] = nil
	q.ws = old[:n-1]
	return h
}

// Serve runs the real-time earliest-deadline-first scheduler until ctx is
// done. A world with divisor Every releases a tick every Every*TickPeriod;
// a released tick must start by its deadline (release + period). Released
// ticks dispatch to the shared pool in EDF order; a tick that starts past
// its deadline counts a miss and accumulates the lag, and its next release
// is clamped forward so one stall does not cascade into a spiral of
// misses.
func (s *Server) Serve(ctx context.Context) error {
	period := s.cfg.tickPeriod()

	// pending orders unreleased worlds by release time; ready orders
	// released worlds by deadline (the EDF dispatch queue). Both are only
	// touched by this scheduler goroutine.
	pending := &worldHeap{by: func(h *World) time.Time { return h.release }}
	ready := &worldHeap{by: func(h *World) time.Time { return h.deadline }}
	s.mu.Lock()
	now := time.Now()
	for _, h := range s.order {
		h.release = now
		h.deadline = now.Add(time.Duration(h.Every) * period)
		pending.ws = append(pending.ws, h)
	}
	s.mu.Unlock()
	heap.Init(pending)

	var errMu sync.Mutex
	var serveErr error
	setErr := func(err error) {
		errMu.Lock()
		if serveErr == nil {
			serveErr = err
		}
		errMu.Unlock()
	}
	getErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return serveErr
	}

	jobs := make(chan *World)
	done := make(chan *World)
	var wg sync.WaitGroup
	workers := s.cfg.workers()
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for h := range jobs {
				start := time.Now()
				if start.After(h.deadline) && !h.Hibernated() {
					late := start.Sub(h.deadline)
					h.mu.Lock()
					h.misses++
					h.lag += late
					h.mu.Unlock()
					s.mu.Lock()
					s.counters.TickDeadlineMisses++
					s.counters.TickLagNanos += int64(late)
					s.mu.Unlock()
				}
				if err := h.tick(); err != nil {
					setErr(err)
				}
				done <- h
			}
		}()
	}

	// reschedule computes a finished world's next release, clamped
	// forward when the schedule has slipped by a full period: an
	// overloaded world releases again immediately (ticks back-to-back,
	// one miss per tick), while a hibernated one idles a full period so
	// its no-op scheduling checks never spin.
	reschedule := func(h *World) {
		step := time.Duration(h.Every) * period
		r := h.release.Add(step)
		if now := time.Now(); r.Before(now) {
			if h.Hibernated() {
				r = now.Add(step)
			} else {
				r = now
			}
		}
		h.release = r
		h.deadline = r.Add(step)
		heap.Push(pending, h)
	}

	timer := time.NewTimer(0)
	defer timer.Stop()
	inFlight := 0
	for getErr() == nil {
		// Promote every released world into the EDF ready queue.
		now := time.Now()
		for len(pending.ws) > 0 && !pending.ws[0].release.After(now) {
			heap.Push(ready, heap.Pop(pending))
		}

		switch {
		case len(ready.ws) > 0:
			h := heap.Pop(ready).(*World)
			inFlight++
			select {
			case jobs <- h:
			case fin := <-done:
				inFlight--
				reschedule(fin)
				jobs <- h
			case <-ctx.Done():
				inFlight--
				goto shutdown
			}
		case len(pending.ws) > 0:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(time.Until(pending.ws[0].release))
			select {
			case <-timer.C:
			case fin := <-done:
				inFlight--
				reschedule(fin)
			case <-ctx.Done():
				goto shutdown
			}
		default:
			select {
			case fin := <-done:
				inFlight--
				reschedule(fin)
			case <-ctx.Done():
				goto shutdown
			}
		}
	}
shutdown:
	for inFlight > 0 {
		<-done
		inFlight--
	}
	close(jobs)
	wg.Wait()
	if err := getErr(); err != nil {
		return err
	}
	return ctx.Err()
}
