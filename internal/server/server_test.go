package server_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"slices"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/value"
	"repro/internal/views"
	"repro/internal/workload"
)

var vehicleAttrs = []string{"x", "y", "dx", "dy", "speed", "fuel", "odo", "stress"}

type worldSpec struct {
	n     int
	seed  int64
	every int
}

// fleetSpecs mixes population sizes, seeds and tick-rate divisors so the
// scheduler interleaves worlds at different phases.
var fleetSpecs = []worldSpec{
	{40, 1, 1}, {55, 2, 2}, {70, 3, 1}, {35, 4, 3},
	{60, 5, 1}, {45, 6, 2}, {80, 7, 1}, {50, 8, 2},
}

func addFleet(t *testing.T, srv *server.Server, specs []worldSpec) []*server.World {
	t.Helper()
	handles := make([]*server.World, len(specs))
	for i, sp := range specs {
		h, err := srv.AddWorld(fmt.Sprintf("w%02d", i), core.SrcVehicles, sp.every)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := h.Engine()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.PopulateVehicles(eng, workload.Uniform(sp.n, 4000, 4000, sp.seed)); err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	return handles
}

// standaloneAt builds a fresh standalone world with spec's population and
// runs it exactly `ticks` ticks — the reference trajectory.
func standaloneAt(t *testing.T, sp worldSpec, ticks int64) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario("vehicles", core.SrcVehicles)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.PopulateVehicles(w, workload.Uniform(sp.n, 4000, 4000, sp.seed)); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(int(ticks)); err != nil {
		t.Fatal(err)
	}
	return w
}

// diffVehicles compares every vehicle attribute bit-for-bit.
func diffVehicles(got, want *engine.World) string {
	gids, wids := got.IDs("Vehicle"), want.IDs("Vehicle")
	if len(gids) != len(wids) {
		return fmt.Sprintf("population %d vs %d", len(gids), len(wids))
	}
	for _, id := range wids {
		for _, attr := range vehicleAttrs {
			gv, gok := got.Get("Vehicle", id, attr)
			wv, wok := want.Get("Vehicle", id, attr)
			if gok != wok {
				return fmt.Sprintf("vehicle %d %s: presence %v vs %v", id, attr, gok, wok)
			}
			if !gv.Equal(wv) {
				return fmt.Sprintf("vehicle %d %s: %v vs %v", id, attr, gv, wv)
			}
		}
	}
	return ""
}

// TestManyWorldDifferential is the server's core guarantee: a world ticked
// by the shared-pool scheduler — any pool size, interleaved with sibling
// worlds at mixed tick rates, hibernated and restored mid-sequence — ends
// bit-identical to the same world ticked standalone. Plan sharing, arena
// pooling and checkpoint round-trips must all be invisible to world state.
func TestManyWorldDifferential(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv := server.New(server.Config{Workers: workers})
			handles := addFleet(t, srv, fleetSpecs)

			if err := srv.RunRounds(5); err != nil {
				t.Fatal(err)
			}
			// Force two worlds out mid-sequence; they freeze while the
			// rest keep ticking.
			for _, i := range []int{1, 3} {
				if err := handles[i].Hibernate(); err != nil {
					t.Fatal(err)
				}
			}
			if err := srv.RunRounds(4); err != nil {
				t.Fatal(err)
			}
			for _, i := range []int{1, 3} {
				if !handles[i].Hibernated() {
					t.Fatalf("world %d not hibernated", i)
				}
				if err := handles[i].Touch(); err != nil {
					t.Fatal(err)
				}
			}
			if err := srv.RunRounds(6); err != nil {
				t.Fatal(err)
			}

			for i, sp := range fleetSpecs {
				eng, err := handles[i].Engine()
				if err != nil {
					t.Fatal(err)
				}
				ref := standaloneAt(t, sp, eng.Tick())
				if d := diffVehicles(eng, ref); d != "" {
					t.Fatalf("world %d (every=%d) diverged from standalone after %d ticks: %s",
						i, sp.every, eng.Tick(), d)
				}
			}
		})
	}
}

// TestTickRateDivisors pins the batch scheduler's SLA arithmetic: over R
// rounds a never-hibernated world with divisor k runs ceil(R/k) ticks.
func TestTickRateDivisors(t *testing.T) {
	srv := server.New(server.Config{Workers: 2})
	handles := addFleet(t, srv, fleetSpecs)
	const rounds = 12
	if err := srv.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}
	for i, sp := range fleetSpecs {
		eng, err := handles[i].Engine()
		if err != nil {
			t.Fatal(err)
		}
		want := int64((rounds + sp.every - 1) / sp.every)
		if eng.Tick() != want {
			t.Errorf("world %d every=%d: %d ticks after %d rounds, want %d",
				i, sp.every, eng.Tick(), rounds, want)
		}
	}
	if c := srv.Counters(); c.TicksRun == 0 {
		t.Error("TicksRun counter never advanced")
	}
}

// TestPlanCache pins the compiled-plan cache contract: N worlds of one
// script compile once ((N-1)/N hit rate); a different script is a miss.
func TestPlanCache(t *testing.T) {
	srv := server.New(server.Config{})
	for i := 0; i < 6; i++ {
		if _, err := srv.AddWorld(fmt.Sprintf("v%d", i), core.SrcVehicles, 1); err != nil {
			t.Fatal(err)
		}
	}
	if c := srv.Counters(); c.PlanCacheHits != 5 || c.PlanCacheMisses != 1 {
		t.Fatalf("vehicle fleet: hits=%d misses=%d, want 5/1", c.PlanCacheHits, c.PlanCacheMisses)
	}
	if _, err := srv.AddWorld("traffic", core.SrcTraffic, 1); err != nil {
		t.Fatal(err)
	}
	if c := srv.Counters(); c.PlanCacheHits != 5 || c.PlanCacheMisses != 2 {
		t.Fatalf("after new script: hits=%d misses=%d, want 5/2", c.PlanCacheHits, c.PlanCacheMisses)
	}
	if _, err := srv.AddWorld("v0", core.SrcVehicles, 1); err == nil {
		t.Fatal("duplicate world id accepted")
	}
}

// TestHibernationLifecycle drives the idle policy end to end: untouched
// worlds hibernate after the idle horizon, drop their engine, and any
// Engine access transparently restores them with state intact.
func TestHibernationLifecycle(t *testing.T) {
	srv := server.New(server.Config{Workers: 2, HibernateAfter: 3})
	specs := fleetSpecs[:4]
	handles := addFleet(t, srv, specs)
	if err := srv.RunRounds(14); err != nil {
		t.Fatal(err)
	}
	c := srv.Counters()
	if c.WorldsHibernated != int64(len(specs)) || c.WorldsActive != 0 {
		t.Fatalf("after idle run: active=%d hibernated=%d, want 0/%d",
			c.WorldsActive, c.WorldsHibernated, len(specs))
	}
	if c.Hibernations != int64(len(specs)) {
		t.Fatalf("Hibernations=%d, want %d", c.Hibernations, len(specs))
	}
	for i, h := range handles {
		if !h.Hibernated() {
			t.Fatalf("world %d still resident", i)
		}
		eng, err := h.Engine() // transparent wake
		if err != nil {
			t.Fatal(err)
		}
		if h.Hibernated() {
			t.Fatalf("world %d still hibernated after Engine access", i)
		}
		ref := standaloneAt(t, specs[i], eng.Tick())
		if d := diffVehicles(eng, ref); d != "" {
			t.Fatalf("world %d state lost across hibernation: %s", i, d)
		}
	}
	c = srv.Counters()
	if c.Restores != int64(len(specs)) || c.WorldsActive != int64(len(specs)) {
		t.Fatalf("after wakes: restores=%d active=%d, want %d/%d",
			c.Restores, c.WorldsActive, len(specs), len(specs))
	}
}

// TestServeRealtime smoke-tests the EDF scheduler: worlds tick under a
// real-time period, the context deadline stops serving cleanly, and every
// world advanced.
func TestServeRealtime(t *testing.T) {
	srv := server.New(server.Config{Workers: 2, TickPeriod: 2 * time.Millisecond})
	handles := addFleet(t, srv, fleetSpecs[:3])
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Serve(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Serve returned %v, want context.DeadlineExceeded", err)
	}
	if c := srv.Counters(); c.TicksRun < int64(len(handles)) {
		t.Fatalf("TicksRun=%d after 200ms of 2ms-period serving", c.TicksRun)
	}
	for i, h := range handles {
		eng, err := h.Engine()
		if err != nil {
			t.Fatal(err)
		}
		if eng.Tick() == 0 {
			t.Errorf("world %d never ticked under Serve", i)
		}
		ref := standaloneAt(t, fleetSpecs[i], eng.Tick())
		if d := diffVehicles(eng, ref); d != "" {
			t.Fatalf("world %d diverged under real-time serving: %s", i, d)
		}
	}
}

// TestViewsSurviveHibernation is the hibernate→restore leg of the
// subscription-view differential wall: a world with live Select/Count/TopK
// subscriptions hibernates, wakes, resyncs every client from the restored
// state, and keeps maintaining deltas that match brute-force recomputation.
func TestViewsSurviveHibernation(t *testing.T) {
	srv := server.New(server.Config{Workers: 2})
	h, err := srv.AddWorld("royale", core.SrcFig2, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := h.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.PopulateUnits(eng, workload.Uniform(200, 120, 120, 9), 10); err != nil {
		t.Fatal(err)
	}
	vr, err := h.Views()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := vr.Subscribe(views.Def{Class: "Unit", Pred: "health < 99", Payload: []string{"health"}})
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := vr.Subscribe(views.Def{Class: "Unit", Pred: "health < 99", Kind: views.Count})
	if err != nil {
		t.Fatal(err)
	}
	var deltas, resyncs int
	h.SetViewSink(func(d *views.Delta) {
		deltas++
		if d.Resync {
			resyncs++
		}
	})

	check := func(when string) {
		t.Helper()
		e, err := h.Engine()
		if err != nil {
			t.Fatal(err)
		}
		var want []value.ID
		for _, id := range e.IDs("Unit") {
			if e.MustGet("Unit", id, "health").AsNumber() < 99 {
				want = append(want, id)
			}
		}
		slices.Sort(want)
		got := sel.Members()
		if !slices.Equal(got, want) {
			t.Fatalf("%s: select members %v, brute %v", when, got, want)
		}
		if int(cnt.Agg()) != len(want) {
			t.Fatalf("%s: count %v, brute %d", when, cnt.Agg(), len(want))
		}
	}

	if err := srv.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	check("before hibernation")
	if deltas == 0 || resyncs != 2 {
		t.Fatalf("before hibernation: deltas=%d resyncs=%d, want >0 and 2 initial resyncs", deltas, resyncs)
	}

	if err := h.Hibernate(); err != nil {
		t.Fatal(err)
	}
	if !h.Hibernated() || vr.Attached() {
		t.Fatalf("hibernated=%v attached=%v, want true/false", h.Hibernated(), vr.Attached())
	}
	// Frozen worlds are skipped entirely: no ticks, no deltas.
	before := deltas
	if err := srv.RunRounds(3); err != nil {
		t.Fatal(err)
	}
	if deltas != before {
		t.Fatalf("hibernated world delivered %d deltas", deltas-before)
	}

	// Transparent wake: the next ticks must resync both subscriptions once
	// and then resume incremental maintenance.
	if _, err := h.Engine(); err != nil {
		t.Fatal(err)
	}
	if !vr.Attached() {
		t.Fatal("registry not re-attached on wake")
	}
	resyncs = 0
	if err := srv.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	check("after restore")
	if resyncs != 2 {
		t.Fatalf("after restore: resyncs=%d, want exactly 2 (one per subscription)", resyncs)
	}
}
