// Package txn provides transaction admission policies for the atomic
// construct of §3.1. The engine collects atomic blocks as transaction
// intents; a policy chooses a subset whose combined application violates no
// constraint, and the rest abort atomically. The default engine policy is
// greedy in deterministic order; this package adds priority-based and
// fairness-rotating policies plus abort accounting.
package txn

import (
	"sort"

	"repro/internal/engine"
)

// Stats accumulates admission outcomes across ticks.
type Stats struct {
	Submitted int64
	Committed int64
	Aborted   int64
}

// AbortRate returns aborted/submitted (0 when nothing was submitted).
func (s Stats) AbortRate() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(s.Submitted)
}

// CountingPolicy wraps another policy and accumulates Stats.
type CountingPolicy struct {
	Inner engine.TxnPolicy
	Stats Stats
}

// Admit implements engine.TxnPolicy.
func (c *CountingPolicy) Admit(ctx *engine.UpdateCtx, txns []*engine.Txn) error {
	inner := c.Inner
	if inner == nil {
		inner = engine.GreedyPolicy{}
	}
	if err := inner.Admit(ctx, txns); err != nil {
		return err
	}
	for _, t := range txns {
		c.Stats.Submitted++
		if t.Aborted {
			c.Stats.Aborted++
		} else {
			c.Stats.Committed++
		}
	}
	return nil
}

// PriorityPolicy admits transactions in descending priority order; ties
// break on (class, source id) for determinism. Use it to model sellers
// choosing among buyers (§3.1's multi-buyer example) without a multi-tick
// protocol.
type PriorityPolicy struct {
	// Priority scores a transaction; higher commits first.
	Priority func(t *engine.Txn) float64
}

// Admit implements engine.TxnPolicy.
func (p PriorityPolicy) Admit(ctx *engine.UpdateCtx, txns []*engine.Txn) error {
	ordered := append([]*engine.Txn(nil), txns...)
	sort.SliceStable(ordered, func(i, j int) bool {
		pi, pj := p.Priority(ordered[i]), p.Priority(ordered[j])
		if pi != pj {
			return pi > pj
		}
		if ordered[i].Class != ordered[j].Class {
			return ordered[i].Class < ordered[j].Class
		}
		return ordered[i].Source < ordered[j].Source
	})
	return engine.AdmitPrepared(ctx, ordered)
}

// RotatingPolicy rotates the starting offset of the deterministic order
// each tick so that, under sustained contention, every requester
// eventually wins — a simple fairness guarantee the greedy policy lacks.
type RotatingPolicy struct {
	offset int
}

// Admit implements engine.TxnPolicy.
func (r *RotatingPolicy) Admit(ctx *engine.UpdateCtx, txns []*engine.Txn) error {
	ordered := append([]*engine.Txn(nil), txns...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Class != ordered[j].Class {
			return ordered[i].Class < ordered[j].Class
		}
		return ordered[i].Source < ordered[j].Source
	})
	if n := len(ordered); n > 0 {
		k := r.offset % n
		rotated := append(append([]*engine.Txn(nil), ordered[k:]...), ordered[:k]...)
		ordered = rotated
		r.offset++
	}
	return engine.AdmitPrepared(ctx, ordered)
}
