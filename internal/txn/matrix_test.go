package txn_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/workload"
)

// The admission differential matrix: every combination of admission mode,
// worker count, partition count and policy must produce bit-identical
// world state and per-tick commit/abort sets on a contended marketplace
// with cross-tick churn (kills creating dangling emission targets, spawns,
// restocks). The serial unpartitioned single-worker run per policy is the
// reference.

// recorder wraps a policy and captures each tick's commit/abort outcome
// per transaction source.
type recorder struct {
	inner engine.TxnPolicy
	log   []map[value.ID]bool
}

func (r *recorder) Admit(ctx *engine.UpdateCtx, txns []*engine.Txn) error {
	err := r.inner.Admit(ctx, txns)
	m := make(map[value.ID]bool, len(txns))
	for _, t := range txns {
		m[t.Source] = t.Aborted
	}
	r.log = append(r.log, m)
	return err
}

var traderAttrs = []struct {
	name string
	ref  bool
}{
	{"gold", false}, {"stock", false}, {"wants", false},
	{"price", false}, {"seller", true},
}

// churnMarket builds the contended two-segment market: segment one is
// paired (one buyer per seller, conflict-free admission), segment two is
// contended (three buyers per seller, true conflict groups).
func churnMarket(t *testing.T, opts engine.Options) (*engine.World, []value.ID) {
	t.Helper()
	sc, err := core.LoadScenario("market", core.SrcMarket)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	paired, _, err := core.PopulateMarket(w, workload.Market{
		Sellers: 6, BuyersPerItem: 1, Stock: 3, Price: 25, Gold: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = core.PopulateMarket(w, workload.Market{
		Sellers: 4, BuyersPerItem: 3, Stock: 2, Price: 25, Gold: 75,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, paired
}

// runChurnArm runs one matrix arm for a fixed number of ticks with a
// deterministic churn schedule and returns the world fingerprint plus the
// per-tick admission log.
func runChurnArm(t *testing.T, opts engine.Options, mk func() engine.TxnPolicy, ticks int) ([]uint64, []map[value.ID]bool, *engine.World) {
	t.Helper()
	w, paired := churnMarket(t, opts)
	rec := &recorder{inner: mk()}
	w.SetTxnPolicy(rec)
	for tick := 0; tick < ticks; tick++ {
		if err := w.RunTick(); err != nil {
			t.Fatal(err)
		}
		switch tick {
		case 1:
			// Kill a paired seller: its buyer keeps emitting purchases at
			// the dead target every following tick — the dangling-abort
			// path stays hot for the rest of the run.
			if err := w.Kill("Trader", paired[0]); err != nil {
				t.Fatal(err)
			}
		case 2:
			// Spawn a fresh seller/buyer pair mid-run.
			s, err := w.Spawn("Trader", map[string]value.Value{
				"stock": value.Num(2), "price": value.Num(25),
			})
			if err != nil {
				t.Fatal(err)
			}
			_, err = w.Spawn("Trader", map[string]value.Value{
				"gold": value.Num(50), "wants": value.Num(1),
				"price": value.Num(25), "seller": value.Ref(s),
			})
			if err != nil {
				t.Fatal(err)
			}
		case 3:
			// Restock a contended seller to keep conflict groups admitting.
			for _, id := range w.IDs("Trader") {
				if w.MustGet("Trader", id, "stock").AsNumber() == 0 {
					if err := w.SetState("Trader", id, "stock", value.Num(2)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	var fp []uint64
	for _, id := range w.IDs("Trader") {
		fp = append(fp, uint64(id))
		for _, a := range traderAttrs {
			v := w.MustGet("Trader", id, a.name)
			if a.ref {
				fp = append(fp, uint64(v.AsRef()))
			} else {
				fp = append(fp, math.Float64bits(v.AsNumber()))
			}
		}
	}
	return fp, rec.log, w
}

func TestAdmissionDifferentialMatrix(t *testing.T) {
	const ticks = 6
	policies := []struct {
		name string
		mk   func() engine.TxnPolicy
	}{
		{"Greedy", func() engine.TxnPolicy { return engine.GreedyPolicy{} }},
		{"Priority", func() engine.TxnPolicy {
			return txn.PriorityPolicy{Priority: func(t *engine.Txn) float64 { return float64(t.Source) }}
		}},
		{"Rotating", func() engine.TxnPolicy { return &txn.RotatingPolicy{} }},
	}
	modes := []plan.TxnMode{plan.TxnScalar, plan.TxnBatched}
	workers := []int{1, 4}
	partitions := []int{1, 2, 4}

	for _, pol := range policies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			refFP, refLog, _ := runChurnArm(t, engine.Options{Txn: plan.TxnScalar}, pol.mk, ticks)
			if len(refLog) != ticks {
				t.Fatalf("reference admitted on %d ticks, want %d", len(refLog), ticks)
			}
			sawBatchedRows, sawCross := false, false
			for _, mode := range modes {
				for _, nw := range workers {
					for _, np := range partitions {
						name := fmt.Sprintf("%v_w%d_p%d", mode, nw, np)
						opts := engine.Options{Txn: mode, Workers: nw, Partitions: np}
						fp, log, w := runChurnArm(t, opts, pol.mk, ticks)
						if len(fp) != len(refFP) {
							t.Fatalf("%s: fingerprint length %d, want %d", name, len(fp), len(refFP))
						}
						for i := range fp {
							if fp[i] != refFP[i] {
								t.Fatalf("%s: state diverges from serial reference at word %d: %#x != %#x",
									name, i, fp[i], refFP[i])
							}
						}
						if len(log) != len(refLog) {
							t.Fatalf("%s: %d admission ticks, want %d", name, len(log), len(refLog))
						}
						for k := range log {
							if len(log[k]) != len(refLog[k]) {
								t.Fatalf("%s tick %d: %d transactions, want %d", name, k, len(log[k]), len(refLog[k]))
							}
							for src, aborted := range refLog[k] {
								got, ok := log[k][src]
								if !ok {
									t.Fatalf("%s tick %d: source %d missing", name, k, src)
								}
								if got != aborted {
									t.Fatalf("%s tick %d: source %d aborted=%v, want %v", name, k, src, got, aborted)
								}
							}
						}
						cs := w.ExecStats()
						if mode == plan.TxnBatched {
							if cs.TxnBatchedRows > 0 {
								sawBatchedRows = true
							}
							if np >= 2 && cs.TxnCrossPart > 0 {
								sawCross = true
							}
						} else if cs.TxnBatchedRows != 0 || cs.TxnParallelGroups != 0 || cs.TxnCrossPart != 0 {
							t.Fatalf("%s: serial arm reported batched counters %+v", name, cs)
						}
					}
				}
			}
			if !sawBatchedRows {
				t.Fatal("no batched arm validated transactions whole-batch (TxnBatchedRows stayed 0)")
			}
			if !sawCross {
				t.Fatal("no partitioned batched arm saw cross-partition transactions (TxnCrossPart stayed 0)")
			}
		})
	}
}

// TestParallelConflictGroups drives admission at a scale where the cost
// model actually fans conflict groups across the worker pool (the small
// matrix workloads stay under the fan-out threshold): 100 sellers with 3
// contending buyers each form 100 four-transaction conflict groups. The
// seller count is divisible by the partition count, so under the id-hash
// layout every group's rows share a partition and the partitioned arm
// exercises partition-local group admission. Outcomes must stay
// bit-identical to the serial loop and TxnParallelGroups must be nonzero.
func TestParallelConflictGroups(t *testing.T) {
	m := workload.Market{Sellers: 100, BuyersPerItem: 3, Stock: 1, Price: 25, Gold: 100}
	run := func(opts engine.Options) ([]uint64, txn.Stats, *engine.World) {
		sc, err := core.LoadScenario("market", core.SrcMarket)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sc.NewWorld(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := core.PopulateMarket(w, m); err != nil {
			t.Fatal(err)
		}
		counting := &txn.CountingPolicy{}
		w.SetTxnPolicy(counting)
		for tick := 0; tick < 3; tick++ {
			if err := w.RunTick(); err != nil {
				t.Fatal(err)
			}
		}
		var fp []uint64
		for _, id := range w.IDs("Trader") {
			fp = append(fp, uint64(id),
				math.Float64bits(w.MustGet("Trader", id, "gold").AsNumber()),
				math.Float64bits(w.MustGet("Trader", id, "stock").AsNumber()))
		}
		return fp, counting.Stats, w
	}
	refFP, refStats, _ := run(engine.Options{Txn: plan.TxnScalar})
	if refStats.Aborted == 0 || refStats.Committed == 0 {
		t.Fatalf("fixture lost contention: %+v", refStats)
	}
	for _, cfg := range []struct {
		name string
		opts engine.Options
	}{
		{"pooled", engine.Options{Txn: plan.TxnBatched, Workers: 4}},
		{"pooled+4part", engine.Options{Txn: plan.TxnBatched, Workers: 4, Partitions: 4}},
	} {
		fp, st, w := run(cfg.opts)
		if st != refStats {
			t.Fatalf("%s: stats %+v, want %+v", cfg.name, st, refStats)
		}
		for i := range refFP {
			if fp[i] != refFP[i] {
				t.Fatalf("%s: state diverges at word %d", cfg.name, i)
			}
		}
		if g := w.ExecStats().TxnParallelGroups; g == 0 {
			t.Fatalf("%s: no conflict groups were pooled", cfg.name)
		}
	}
}

// TestDanglingTargetAborts pins the §3.1 atomicity fix: a transaction with
// any dead emission target aborts whole — the buyer pays nothing, gains
// nothing — identically on the serial and batched paths. (The pre-fix
// behaviour silently dropped the dead seller's contributions while still
// applying the buyer's own, duplicating goods.)
func TestDanglingTargetAborts(t *testing.T) {
	for _, mode := range []plan.TxnMode{plan.TxnScalar, plan.TxnBatched} {
		t.Run(mode.String(), func(t *testing.T) {
			m := workload.Market{Sellers: 1, BuyersPerItem: 1, Stock: 5, Price: 25, Gold: 100}
			sc, err := core.LoadScenario("market", core.SrcMarket)
			if err != nil {
				t.Fatal(err)
			}
			w, err := sc.NewWorld(engine.Options{Txn: mode})
			if err != nil {
				t.Fatal(err)
			}
			sellers, buyers, err := core.PopulateMarket(w, m)
			if err != nil {
				t.Fatal(err)
			}
			counting := &txn.CountingPolicy{}
			w.SetTxnPolicy(counting)
			if err := w.Kill("Trader", sellers[0]); err != nil {
				t.Fatal(err)
			}
			if err := w.RunTick(); err != nil {
				t.Fatal(err)
			}
			if counting.Stats.Submitted != 1 || counting.Stats.Aborted != 1 {
				t.Fatalf("stats = %+v, want 1 submitted / 1 aborted", counting.Stats)
			}
			if got := w.MustGet("Trader", buyers[0], "gold").AsNumber(); got != 100 {
				t.Fatalf("buyer gold = %v after aborted purchase, want 100", got)
			}
			if got := w.MustGet("Trader", buyers[0], "stock").AsNumber(); got != 0 {
				t.Fatalf("buyer stock = %v after aborted purchase, want 0", got)
			}
		})
	}
}
