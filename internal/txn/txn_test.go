package txn_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/workload"
)

func marketWorld(t *testing.T, m workload.Market) (*engine.World, []value.ID, []value.ID) {
	t.Helper()
	sc, err := core.LoadScenario("market", core.SrcMarket)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sellers, buyers, err := core.PopulateMarket(w, m)
	if err != nil {
		t.Fatal(err)
	}
	return w, sellers, buyers
}

func totals(t *testing.T, w *engine.World) (gold, stock float64) {
	t.Helper()
	for _, id := range w.IDs("Trader") {
		gold += w.MustGet("Trader", id, "gold").AsNumber()
		stock += w.MustGet("Trader", id, "stock").AsNumber()
	}
	return gold, stock
}

func TestCountingPolicy(t *testing.T) {
	m := workload.Market{Sellers: 2, BuyersPerItem: 4, Stock: 1, Price: 25, Gold: 25}
	w, _, _ := marketWorld(t, m)
	counting := &txn.CountingPolicy{}
	w.SetTxnPolicy(counting)
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	s := counting.Stats
	if s.Submitted != 8 {
		t.Fatalf("submitted = %d, want 8", s.Submitted)
	}
	if s.Committed != 2 { // one item per seller
		t.Fatalf("committed = %d, want 2", s.Committed)
	}
	if s.Aborted != 6 {
		t.Fatalf("aborted = %d, want 6", s.Aborted)
	}
	if r := s.AbortRate(); r != 0.75 {
		t.Errorf("abort rate = %v", r)
	}
	if (txn.Stats{}).AbortRate() != 0 {
		t.Error("empty abort rate")
	}
}

func TestConservationUnderContention(t *testing.T) {
	m := workload.Market{Sellers: 3, BuyersPerItem: 8, Stock: 2, Price: 25, Gold: 30}
	w, _, _ := marketWorld(t, m)
	g0, s0 := totals(t, w)
	if err := w.Run(4); err != nil {
		t.Fatal(err)
	}
	g1, s1 := totals(t, w)
	if g0 != g1 {
		t.Fatalf("gold not conserved: %v -> %v", g0, g1)
	}
	if s0 != s1 {
		t.Fatalf("stock not conserved: %v -> %v", s0, s1)
	}
	// No negative balances anywhere.
	for _, id := range w.IDs("Trader") {
		if w.MustGet("Trader", id, "gold").AsNumber() < 0 {
			t.Fatal("negative gold")
		}
		if w.MustGet("Trader", id, "stock").AsNumber() < 0 {
			t.Fatal("negative stock")
		}
	}
}

func TestPriorityPolicy(t *testing.T) {
	m := workload.Market{Sellers: 1, BuyersPerItem: 4, Stock: 1, Price: 25, Gold: 25}
	w, _, buyers := marketWorld(t, m)
	// Highest source id wins under this priority.
	w.SetTxnPolicy(txn.PriorityPolicy{
		Priority: func(t *engine.Txn) float64 { return float64(t.Source) },
	})
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	winner := buyers[len(buyers)-1]
	if got := w.MustGet("Trader", winner, "stock").AsNumber(); got != 1 {
		t.Fatalf("highest-priority buyer got stock %v, want 1", got)
	}
	for _, id := range buyers[:len(buyers)-1] {
		if w.MustGet("Trader", id, "stock").AsNumber() != 0 {
			t.Fatal("a lower-priority buyer won")
		}
	}
}

func TestRotatingPolicyIsFair(t *testing.T) {
	// One item restocked each tick; under rotation every buyer eventually
	// wins at least once.
	m := workload.Market{Sellers: 1, BuyersPerItem: 3, Stock: 1, Price: 25, Gold: 1000}
	w, sellers, buyers := marketWorld(t, m)
	w.SetTxnPolicy(&txn.RotatingPolicy{})
	for tick := 0; tick < 6; tick++ {
		if err := w.RunTick(); err != nil {
			t.Fatal(err)
		}
		// Restock the seller between ticks.
		w.SetState("Trader", sellers[0], "stock", value.Num(1))
	}
	for _, id := range buyers {
		if w.MustGet("Trader", id, "stock").AsNumber() == 0 {
			t.Fatalf("buyer %d never won under rotation", id)
		}
	}
}

func TestDupingWithoutTransactions(t *testing.T) {
	// The control arm: without atomic, overselling happens (stock goes
	// negative) — exactly the §3.1 duping bug.
	sc, err := core.LoadScenario("unsafe", core.SrcMarketUnsafe)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = core.PopulateMarket(w, workload.Market{
		Sellers: 1, BuyersPerItem: 5, Stock: 1, Price: 25, Gold: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	negative := false
	for _, id := range w.IDs("Trader") {
		if w.MustGet("Trader", id, "stock").AsNumber() < 0 {
			negative = true
		}
	}
	if !negative {
		t.Fatal("the unsafe market failed to reproduce the duping bug")
	}
}
