package value

import (
	"encoding/json"
	"fmt"
)

// wireValue is the portable JSON encoding of a Value, used by checkpoints
// and the debugger (§3.3 of the paper: logging with resumable checkpoints).
type wireValue struct {
	K string          `json:"k"`
	N *float64        `json:"n,omitempty"`
	S *string         `json:"s,omitempty"`
	E json.RawMessage `json:"e,omitempty"` // set elements
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case KindNumber:
		n := v.num
		return json.Marshal(wireValue{K: "num", N: &n})
	case KindBool:
		n := v.num
		return json.Marshal(wireValue{K: "bool", N: &n})
	case KindString:
		s := v.str
		return json.Marshal(wireValue{K: "str", S: &s})
	case KindRef:
		n := v.num
		return json.Marshal(wireValue{K: "ref", N: &n})
	case KindSet:
		elems := v.AsSet().Elems()
		raw, err := json.Marshal(elems)
		if err != nil {
			return nil, err
		}
		return json.Marshal(wireValue{K: "set", E: raw})
	default:
		return json.Marshal(wireValue{K: "invalid"})
	}
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(b []byte) error {
	var w wireValue
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	num := 0.0
	if w.N != nil {
		num = *w.N
	}
	switch w.K {
	case "num":
		*v = Num(num)
	case "bool":
		*v = Bool(num != 0)
	case "str":
		s := ""
		if w.S != nil {
			s = *w.S
		}
		*v = Str(s)
	case "ref":
		*v = Ref(ID(num))
	case "set":
		var elems []Value
		if len(w.E) > 0 {
			if err := json.Unmarshal(w.E, &elems); err != nil {
				return err
			}
		}
		*v = SetVal(NewSet(elems...))
	case "invalid":
		*v = Value{}
	default:
		return fmt.Errorf("value: unknown wire kind %q", w.K)
	}
	return nil
}
