package value

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Num(3.5), KindNumber, "3.5"},
		{Num(-2), KindNumber, "-2"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{Str("hi"), KindString, `"hi"`},
		{Ref(7), KindRef, "#7"},
		{NullRef(), KindRef, "null"},
		{SetVal(NewSet(Num(1), Num(2))), KindSet, "{1, 2}"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
	if Num(3.5).AsNumber() != 3.5 {
		t.Error("AsNumber")
	}
	if !Bool(true).AsBool() {
		t.Error("AsBool")
	}
	if Str("x").AsString() != "x" {
		t.Error("AsString")
	}
	if Ref(9).AsRef() != 9 {
		t.Error("AsRef")
	}
	if !NullRef().IsNullRef() {
		t.Error("IsNullRef")
	}
	if Ref(1).IsNullRef() {
		t.Error("Ref(1) must not be null")
	}
}

func TestZero(t *testing.T) {
	if Zero(KindNumber).AsNumber() != 0 {
		t.Error("zero number")
	}
	if Zero(KindBool).AsBool() {
		t.Error("zero bool")
	}
	if Zero(KindString).AsString() != "" {
		t.Error("zero string")
	}
	if !Zero(KindRef).IsNullRef() {
		t.Error("zero ref")
	}
	if Zero(KindSet).AsSet().Len() != 0 {
		t.Error("zero set")
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Num(0), false}, {Num(1), true}, {Num(-1), true},
		{Bool(false), false}, {Bool(true), true},
		{Str(""), false}, {Str("a"), true},
		{NullRef(), false}, {Ref(3), true},
		{SetVal(NewSet()), false}, {SetVal(NewSet(Num(1))), true},
	}
	for _, c := range cases {
		if c.v.Truthy() != c.want {
			t.Errorf("Truthy(%v) = %v", c.v, !c.want)
		}
	}
}

func TestEqualAndCompare(t *testing.T) {
	if !Num(2).Equal(Num(2)) || Num(2).Equal(Num(3)) {
		t.Error("number equality")
	}
	if Num(1).Equal(Bool(true)) {
		t.Error("cross-kind values must not be equal")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("string equality")
	}
	if !SetVal(NewSet(Num(1), Num(2))).Equal(SetVal(NewSet(Num(2), Num(1)))) {
		t.Error("set equality is order-independent")
	}
	if Num(1).Compare(Num(2)) >= 0 || Num(2).Compare(Num(1)) <= 0 || Num(2).Compare(Num(2)) != 0 {
		t.Error("number compare")
	}
	if Str("a").Compare(Str("b")) >= 0 {
		t.Error("string compare")
	}
	defer func() {
		if recover() == nil {
			t.Error("comparing sets must panic")
		}
	}()
	SetVal(NewSet()).Compare(SetVal(NewSet()))
}

func TestKeyRoundTrip(t *testing.T) {
	vals := []Value{Num(1.5), Bool(true), Str("k"), Ref(42), NullRef()}
	for _, v := range vals {
		if got := v.Key().Value(); !got.Equal(v) {
			t.Errorf("Key round trip: %v -> %v", v, got)
		}
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet()
	if !s.Add(Num(1)) || s.Add(Num(1)) {
		t.Error("Add dedupes")
	}
	s.Add(Num(2))
	s.Add(Str("x"))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains(Num(2)) || s.Contains(Num(9)) {
		t.Error("Contains")
	}
	if !s.Remove(Num(2)) || s.Remove(Num(2)) {
		t.Error("Remove")
	}
	a := NewSet(Num(1), Num(2), Num(3))
	b := NewSet(Num(2), Num(3), Num(4))
	if got := a.Union(b); got.Len() != 4 {
		t.Errorf("Union len = %d", got.Len())
	}
	if got := a.Intersect(b); got.Len() != 2 {
		t.Errorf("Intersect len = %d", got.Len())
	}
	if got := a.Diff(b); got.Len() != 1 || !got.Contains(Num(1)) {
		t.Errorf("Diff = %v", got)
	}
	c := a.Clone()
	c.Add(Num(99))
	if a.Contains(Num(99)) {
		t.Error("Clone must be independent")
	}
}

func TestSetElemsSorted(t *testing.T) {
	s := NewSet(Num(3), Num(1), Num(2))
	es := s.Elems()
	for i := 1; i < len(es); i++ {
		if es[i-1].Compare(es[i]) >= 0 {
			t.Fatalf("Elems not sorted: %v", es)
		}
	}
}

func TestNumbersEqual(t *testing.T) {
	if !NumbersEqual(1, 1+1e-12, 1e-9) {
		t.Error("tolerant equality")
	}
	if NumbersEqual(1, 1.1, 1e-9) {
		t.Error("distinct numbers")
	}
	if !NumbersEqual(math.NaN(), math.NaN(), 0) {
		t.Error("NaN == NaN under tolerance")
	}
	if !NumbersEqual(1e12, 1e12+1, 1e-9) {
		t.Error("relative tolerance at scale")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	vals := []Value{
		Num(3.25), Bool(true), Bool(false), Str("héllo\n"),
		Ref(17), NullRef(),
		SetVal(NewSet(Num(1), Str("a"), Ref(2))),
		SetVal(NewSet()),
	}
	for _, v := range vals {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got Value
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %s -> %v", v, b, got)
		}
	}
}

// Property: set union is commutative and idempotent.
func TestSetUnionProperties(t *testing.T) {
	mk := func(xs []int8) *Set {
		s := NewSet()
		for _, x := range xs {
			s.Add(Num(float64(x)))
		}
		return s
	}
	comm := func(xs, ys []int8) bool {
		a, b := mk(xs), mk(ys)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	idem := func(xs []int8) bool {
		a := mk(xs)
		return a.Union(a).Equal(a)
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trip preserves scalar values.
func TestJSONScalarProperty(t *testing.T) {
	f := func(x float64, b bool, s string) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true // JSON has no encoding for NaN/Inf
		}
		for _, v := range []Value{Num(x), Bool(b), Str(s)} {
			data, err := json.Marshal(v)
			if err != nil {
				return false
			}
			var got Value
			if err := json.Unmarshal(data, &got); err != nil {
				return false
			}
			if !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
