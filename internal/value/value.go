// Package value defines the runtime value model shared by the SGL engine,
// compiler and baseline interpreter: numbers, booleans, strings, typed
// references to game objects, and unordered sets.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ID identifies a row (game object) within a class extent. IDs are stable
// for the lifetime of the object and never reused within a run.
type ID int64

// NullID is the null reference.
const NullID ID = -1

// Kind enumerates the runtime types of SGL values.
type Kind uint8

const (
	KindInvalid Kind = iota
	KindNumber       // float64
	KindBool
	KindString
	KindRef // reference to an object of some class
	KindSet // unordered set of scalar values
)

func (k Kind) String() string {
	switch k {
	case KindNumber:
		return "number"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	case KindRef:
		return "ref"
	case KindSet:
		return "set"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed SGL runtime value. The zero Value is invalid;
// use the constructors. Values are small and copied freely; Set values share
// the underlying *Set, which callers must not mutate unless they own it.
type Value struct {
	kind Kind
	num  float64 // KindNumber; KindBool stores 0/1; KindRef stores the ID
	str  string  // KindString
	set  *Set    // KindSet
}

// Num returns a number value.
func Num(f float64) Value { return Value{kind: KindNumber, num: f} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{kind: KindBool, num: 1}
	}
	return Value{kind: KindBool}
}

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Ref returns a reference value.
func Ref(id ID) Value { return Value{kind: KindRef, num: float64(id)} }

// NullRef is the null reference value.
func NullRef() Value { return Ref(NullID) }

// SetVal wraps a Set as a Value. A nil set is treated as empty.
func SetVal(s *Set) Value {
	if s == nil {
		s = NewSet()
	}
	return Value{kind: KindSet, set: s}
}

// Zero returns the zero value for a kind: 0, false, "", null, {}.
func Zero(k Kind) Value {
	switch k {
	case KindNumber:
		return Num(0)
	case KindBool:
		return Bool(false)
	case KindString:
		return Str("")
	case KindRef:
		return NullRef()
	case KindSet:
		return SetVal(NewSet())
	default:
		return Value{}
	}
}

// Kind reports the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value has been initialized.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsNumber returns the float64 payload. It is valid only for KindNumber.
func (v Value) AsNumber() float64 { return v.num }

// AsBool returns the boolean payload. It is valid only for KindBool.
func (v Value) AsBool() bool { return v.num != 0 }

// AsString returns the string payload. It is valid only for KindString.
func (v Value) AsString() string { return v.str }

// AsRef returns the referenced ID. It is valid only for KindRef.
func (v Value) AsRef() ID { return ID(v.num) }

// AsSet returns the set payload (never nil). It is valid only for KindSet.
func (v Value) AsSet() *Set {
	if v.set == nil {
		return NewSet()
	}
	return v.set
}

// IsNullRef reports whether v is the null reference.
func (v Value) IsNullRef() bool { return v.kind == KindRef && ID(v.num) == NullID }

// Truthy coerces a value to a condition result: booleans are themselves,
// numbers are non-zero, refs are non-null, strings and sets are non-empty.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool, KindNumber:
		return v.num != 0
	case KindRef:
		return ID(v.num) != NullID
	case KindString:
		return v.str != ""
	case KindSet:
		return v.AsSet().Len() > 0
	default:
		return false
	}
}

// Equal reports deep equality. Values of different kinds are never equal.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNumber, KindBool, KindRef:
		return v.num == o.num
	case KindString:
		return v.str == o.str
	case KindSet:
		return v.AsSet().Equal(o.AsSet())
	default:
		return true
	}
}

// Compare orders two values of the same scalar kind: -1, 0 or +1.
// Sets are not ordered; Compare panics on sets or mismatched kinds.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		panic(fmt.Sprintf("value: comparing %s with %s", v.kind, o.kind))
	}
	switch v.kind {
	case KindNumber, KindBool, KindRef:
		switch {
		case v.num < o.num:
			return -1
		case v.num > o.num:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(v.str, o.str)
	default:
		panic("value: kind " + v.kind.String() + " is not ordered")
	}
}

// Key returns a comparable map key uniquely identifying the scalar value.
// Set values have no key; Key panics on sets.
func (v Value) Key() Key {
	if v.kind == KindSet {
		panic("value: sets are not hashable")
	}
	return Key{Kind: v.kind, Num: v.num, Str: v.str}
}

// Key is a comparable representation of a scalar Value, usable as a map key.
type Key struct {
	Kind Kind
	Num  float64
	Str  string
}

// Value reconstructs the Value a Key was derived from.
func (k Key) Value() Value { return Value{kind: k.Kind, num: k.Num, str: k.Str} }

// String renders the value in SGL literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNumber:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindString:
		return strconv.Quote(v.str)
	case KindRef:
		if ID(v.num) == NullID {
			return "null"
		}
		return fmt.Sprintf("#%d", ID(v.num))
	case KindSet:
		return v.AsSet().String()
	default:
		return "<invalid>"
	}
}

// Set is an unordered collection of scalar values (the paper's set data
// type, §2.1). Elements are deduplicated by Key.
type Set struct {
	elems map[Key]struct{}
}

// NewSet returns an empty set.
func NewSet(vs ...Value) *Set {
	s := &Set{elems: make(map[Key]struct{}, len(vs))}
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

// Add inserts v; duplicates are ignored. Returns true if newly inserted.
func (s *Set) Add(v Value) bool {
	k := v.Key()
	if _, ok := s.elems[k]; ok {
		return false
	}
	s.elems[k] = struct{}{}
	return true
}

// Remove deletes v. Returns true if it was present.
func (s *Set) Remove(v Value) bool {
	k := v.Key()
	if _, ok := s.elems[k]; !ok {
		return false
	}
	delete(s.elems, k)
	return true
}

// Contains reports membership.
func (s *Set) Contains(v Value) bool {
	_, ok := s.elems[v.Key()]
	return ok
}

// Len returns the cardinality.
func (s *Set) Len() int { return len(s.elems) }

// Union returns a new set holding all elements of s and o.
func (s *Set) Union(o *Set) *Set {
	out := s.Clone()
	for k := range o.elems {
		out.elems[k] = struct{}{}
	}
	return out
}

// Intersect returns a new set holding the common elements of s and o.
func (s *Set) Intersect(o *Set) *Set {
	out := NewSet()
	for k := range s.elems {
		if _, ok := o.elems[k]; ok {
			out.elems[k] = struct{}{}
		}
	}
	return out
}

// Diff returns a new set holding elements of s not in o.
func (s *Set) Diff(o *Set) *Set {
	out := NewSet()
	for k := range s.elems {
		if _, ok := o.elems[k]; !ok {
			out.elems[k] = struct{}{}
		}
	}
	return out
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	out := &Set{elems: make(map[Key]struct{}, len(s.elems))}
	for k := range s.elems {
		out.elems[k] = struct{}{}
	}
	return out
}

// Equal reports whether two sets hold the same elements.
func (s *Set) Equal(o *Set) bool {
	if len(s.elems) != len(o.elems) {
		return false
	}
	for k := range s.elems {
		if _, ok := o.elems[k]; !ok {
			return false
		}
	}
	return true
}

// Elems returns the elements in a deterministic (sorted) order, which keeps
// iteration reproducible for replay and testing.
func (s *Set) Elems() []Value {
	out := make([]Value, 0, len(s.elems))
	for k := range s.elems {
		out = append(out, k.Value())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].kind != out[j].kind {
			return out[i].kind < out[j].kind
		}
		return out[i].Compare(out[j]) < 0
	})
	return out
}

// String renders the set in SGL literal syntax, elements sorted.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range s.Elems() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte('}')
	return b.String()
}

// NumbersEqual compares floats with a tolerance appropriate for comparing
// the engine against the baseline interpreter, where ⊕-combination order
// may differ. NaNs compare equal to NaNs.
func NumbersEqual(a, b, eps float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale > 1 {
		return diff/scale <= eps
	}
	return diff <= eps
}
