package pathfind_test

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/pathfind"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/sem"
	"repro/internal/value"
)

func TestFindPathStraightLine(t *testing.T) {
	g := pathfind.NewGrid(10, 10)
	path := g.FindPath(pathfind.Point{X: 0, Y: 0}, pathfind.Point{X: 4, Y: 0})
	if len(path) != 5 {
		t.Fatalf("path len = %d, want 5", len(path))
	}
	if path[0] != (pathfind.Point{X: 0, Y: 0}) || path[4] != (pathfind.Point{X: 4, Y: 0}) {
		t.Fatalf("endpoints: %v", path)
	}
}

func TestFindPathAroundWall(t *testing.T) {
	g := pathfind.NewGrid(10, 10)
	// Vertical wall at x=5 with a gap at y=9.
	g.BlockRect(5, 0, 5, 8)
	path := g.FindPath(pathfind.Point{X: 0, Y: 0}, pathfind.Point{X: 9, Y: 0})
	if path == nil {
		t.Fatal("no path found around wall")
	}
	// The path must pass through the gap.
	hasGap := false
	for _, p := range path {
		if !g.Walkable(p.X, p.Y) {
			t.Fatalf("path crosses blocked cell %v", p)
		}
		if p.X == 5 && p.Y == 9 {
			hasGap = true
		}
	}
	if !hasGap {
		t.Error("path does not use the gap")
	}
	// Optimality: manhattan distance 9 + detour up and back = 9 + 18.
	if len(path)-1 != 27 {
		t.Errorf("path length = %d steps, want 27", len(path)-1)
	}
}

func TestFindPathUnreachable(t *testing.T) {
	g := pathfind.NewGrid(10, 10)
	g.BlockRect(5, 0, 5, 9) // solid wall
	if path := g.FindPath(pathfind.Point{X: 0, Y: 0}, pathfind.Point{X: 9, Y: 9}); path != nil {
		t.Fatal("path through a solid wall")
	}
	if path := g.FindPath(pathfind.Point{X: -1, Y: 0}, pathfind.Point{X: 1, Y: 0}); path != nil {
		t.Fatal("out-of-grid start")
	}
	g2 := pathfind.NewGrid(3, 3)
	g2.Block(1, 1)
	if path := g2.FindPath(pathfind.Point{X: 1, Y: 1}, pathfind.Point{X: 0, Y: 0}); path != nil {
		t.Fatal("blocked start")
	}
}

func TestFindPathTrivial(t *testing.T) {
	g := pathfind.NewGrid(5, 5)
	p := pathfind.Point{X: 2, Y: 2}
	path := g.FindPath(p, p)
	if len(path) != 1 || path[0] != p {
		t.Fatalf("self path = %v", path)
	}
}

const walkerSrc = `
class Walker {
  state:
    number x = 0 by pathfind;
    number y = 0 by pathfind;
    number gx = 0;
    number gy = 0;
  effects:
    number goalx : avg;
    number goaly : avg;
  run {
    goalx <- gx;
    goaly <- gy;
  }
}
`

func TestPlannerComponent(t *testing.T) {
	p, err := parser.Parse(walkerSrc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compile.CompileChecked(info)
	if err != nil {
		t.Fatal(err)
	}
	w, err := engine.New(prog, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	grid := pathfind.NewGrid(20, 20)
	grid.BlockRect(5, 0, 5, 15)
	planner := pathfind.New(pathfind.Config{
		Class: "Walker", XAttr: "x", YAttr: "y",
		GoalXEff: "goalx", GoalYEff: "goaly", Grid: grid,
	})
	if err := w.Register(planner); err != nil {
		t.Fatal(err)
	}
	id, _ := w.Spawn("Walker", map[string]value.Value{"gx": value.Num(10), "gy": value.Num(0)})
	if err := w.Run(60); err != nil {
		t.Fatal(err)
	}
	x := w.MustGet("Walker", id, "x").AsNumber()
	y := w.MustGet("Walker", id, "y").AsNumber()
	if x != 10 || y != 0 {
		t.Fatalf("walker at %v,%v, want 10,0", x, y)
	}
	if planner.Plans == 0 {
		t.Error("planner never planned")
	}
	if planner.Plans > 3 {
		t.Errorf("planner replanned %d times for a static goal (cache broken)", planner.Plans)
	}
}
