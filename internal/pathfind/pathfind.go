// Package pathfind provides grid-based A* pathfinding and an update
// component that owns waypoint attributes — the "AI planning" update
// subsystem of §2.2: scripts emit a goal intention as effects, and the
// planner (not the script) decides the concrete next position.
package pathfind

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/value"
)

// Grid is a walkability grid: true cells are blocked.
type Grid struct {
	W, H    int
	blocked []bool
}

// NewGrid returns an all-walkable grid.
func NewGrid(w, h int) *Grid {
	return &Grid{W: w, H: h, blocked: make([]bool, w*h)}
}

// Block marks a cell unwalkable.
func (g *Grid) Block(x, y int) {
	if g.in(x, y) {
		g.blocked[y*g.W+x] = true
	}
}

// BlockRect blocks a rectangle of cells (inclusive).
func (g *Grid) BlockRect(x0, y0, x1, y1 int) {
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			g.Block(x, y)
		}
	}
}

// Walkable reports whether a cell is inside the grid and unblocked.
func (g *Grid) Walkable(x, y int) bool { return g.in(x, y) && !g.blocked[y*g.W+x] }

func (g *Grid) in(x, y int) bool { return x >= 0 && y >= 0 && x < g.W && y < g.H }

// Point is a grid cell.
type Point struct{ X, Y int }

type pqItem struct {
	p    Point
	f    float64
	g    float64
	idx  int
	open bool
}

type pq []*pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].f < q[j].f }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].idx, q[j].idx = i, j }
func (q *pq) Push(x any)        { it := x.(*pqItem); it.idx = len(*q); *q = append(*q, it) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// FindPath runs A* with octile distance over 4-connected moves. It returns
// the path including start and goal, or nil when unreachable.
func (g *Grid) FindPath(start, goal Point) []Point {
	if !g.Walkable(start.X, start.Y) || !g.Walkable(goal.X, goal.Y) {
		return nil
	}
	if start == goal {
		return []Point{start}
	}
	h := func(p Point) float64 {
		return math.Abs(float64(p.X-goal.X)) + math.Abs(float64(p.Y-goal.Y))
	}
	items := make(map[Point]*pqItem)
	came := make(map[Point]Point)
	open := &pq{}
	si := &pqItem{p: start, f: h(start), open: true}
	items[start] = si
	heap.Push(open, si)
	closed := make(map[Point]bool)
	dirs := [4]Point{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for open.Len() > 0 {
		cur := heap.Pop(open).(*pqItem)
		cur.open = false
		if cur.p == goal {
			return rebuild(came, goal, start)
		}
		closed[cur.p] = true
		for _, d := range dirs {
			np := Point{cur.p.X + d.X, cur.p.Y + d.Y}
			if !g.Walkable(np.X, np.Y) || closed[np] {
				continue
			}
			ng := cur.g + 1
			it, seen := items[np]
			if !seen {
				it = &pqItem{p: np, g: ng, f: ng + h(np), open: true}
				items[np] = it
				came[np] = cur.p
				heap.Push(open, it)
			} else if ng < it.g && it.open {
				it.g = ng
				it.f = ng + h(np)
				came[np] = cur.p
				heap.Fix(open, it.idx)
			}
		}
	}
	return nil
}

func rebuild(came map[Point]Point, goal, start Point) []Point {
	var rev []Point
	for p := goal; ; {
		rev = append(rev, p)
		if p == start {
			break
		}
		p = came[p]
	}
	out := make([]Point, len(rev))
	for i, p := range rev {
		out[len(rev)-1-i] = p
	}
	return out
}

// Config wires the planner component to a class: scripts emit goal
// coordinates as effects; the planner owns the position attributes and
// advances each object one walkable step per tick along an A* path.
type Config struct {
	Class              string
	XAttr, YAttr       string // owned position attributes (`by pathfind`)
	GoalXEff, GoalYEff string // effect attributes carrying the goal intention
	Grid               *Grid
}

// Planner implements engine.UpdateComponent.
type Planner struct {
	cfg Config
	// Plans counts A* invocations (cache misses), observable in tests.
	Plans int64
	cache map[value.ID][]Point
	goals map[value.ID]Point
}

// New returns an A* planner component.
func New(cfg Config) *Planner {
	return &Planner{cfg: cfg, cache: make(map[value.ID][]Point), goals: make(map[value.ID]Point)}
}

// Name implements engine.UpdateComponent.
func (p *Planner) Name() string { return "pathfind" }

// Update implements engine.UpdateComponent.
func (p *Planner) Update(ctx *engine.UpdateCtx) error {
	cfg := p.cfg
	for _, id := range ctx.IDs(cfg.Class) {
		xv, ok := ctx.State(cfg.Class, id, cfg.XAttr)
		if !ok {
			return fmt.Errorf("pathfind: missing %s.%s", cfg.Class, cfg.XAttr)
		}
		yv, _ := ctx.State(cfg.Class, id, cfg.YAttr)
		cur := Point{int(xv.AsNumber()), int(yv.AsNumber())}

		gx, okx := ctx.Effect(cfg.Class, id, cfg.GoalXEff)
		gy, oky := ctx.Effect(cfg.Class, id, cfg.GoalYEff)
		if okx && oky {
			goal := Point{int(gx.AsNumber()), int(gy.AsNumber())}
			if p.goals[id] != goal || len(p.cache[id]) == 0 {
				p.goals[id] = goal
				p.cache[id] = cfg.Grid.FindPath(cur, goal)
				p.Plans++
			}
		}
		path := p.cache[id]
		// Advance one step: find current position in path, move to next.
		next := cur
		for i, pt := range path {
			if pt == cur && i+1 < len(path) {
				next = path[i+1]
				break
			}
		}
		if next == cur && len(path) > 0 && path[0] != cur {
			// Drifted off the plan (e.g. physics separation); replan next
			// time a goal arrives.
			delete(p.cache, id)
		}
		if err := ctx.Stage(cfg.Class, id, cfg.XAttr, value.Num(float64(next.X))); err != nil {
			return err
		}
		if err := ctx.Stage(cfg.Class, id, cfg.YAttr, value.Num(float64(next.Y))); err != nil {
			return err
		}
	}
	return nil
}
