package engine

// The vectorized execution path: instead of interpreting closure trees one
// object at a time, eligible update rules and effect-phase scripts compile
// (at world construction) into vexpr batch kernels that stream whole class
// extents through the columnar tables — the set-at-a-time processing model
// the paper argues distinguishes database-style engines from scripting
// middleware (§2, §4).
//
// Eligibility is per expression and per phase. An update rule vectorizes
// when its expression compiles to a kernel (numeric/bool/ref payloads only)
// and its target attribute is columnar. An effect phase vectorizes when
// every step is a let, an if, or a self-targeted scalar effect emission
// whose expressions all compile; accum loops, atomic blocks, cross-object
// emissions and set effects keep the phase on the scalar path. Self-only
// emissions are a correctness requirement, not just a simplification: they
// guarantee each accumulator receives its contributions in exactly the
// order the scalar row loop would produce, so the two paths are
// bit-identical, not merely ⊕-equivalent. They are also what makes the
// kernels shardable: every lane writes only its own row's accumulator, so
// batch-aligned row shards run concurrently with no synchronization.
//
// The scalar closure evaluator remains the semantic reference; the choice
// between the two is a physical-plan decision made per class and tick by
// plan.Costs.ChooseExec (forcible through Options.Exec), composed with the
// parallelism decision of plan.Costs.ChooseWorkers.

import (
	"sync/atomic"

	"repro/internal/combinator"
	"repro/internal/compile"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// vecUpdateRule is one update rule compiled to a batch kernel.
type vecUpdateRule struct {
	attrIdx int
	prog    *vexpr.Prog
}

// vecStep mirrors the subset of compile.Step the batch path executes.
type vecStep interface{ vecStep() }

type vecLet struct {
	slot int
	prog *vexpr.Prog
}

type vecEmit struct {
	attrIdx int
	kind    value.Kind // declared effect value kind
	val     *vexpr.Prog
	key     *vexpr.Prog // non-nil for minby/maxby emissions
	valBuf  int
	keyBuf  int
	// fold routes contributions through the unboxed payload fold
	// (AddPayload) instead of constructing a value.Value per row. Set for
	// payload-kind emissions unless Options.Unfused pins the pre-fusion
	// executor; string emissions always decode at the boundary.
	fold bool
}

type vecIf struct {
	cond    *vexpr.Prog
	condBuf int
	then    []vecStep
	els     []vecStep
	depth   int
}

func (*vecLet) vecStep()  {}
func (*vecEmit) vecStep() {}
func (*vecIf) vecStep()   {}

// vecPhase is one effect-phase step list compiled to batch form.
type vecPhase struct {
	steps    []vecStep
	kernels  int  // total batch operators, the cost-model work unit
	needIDs  bool // any kernel reads self()
	maxSlot  int  // highest frame slot written, -1 if none
	nBufs    int  // scratch output vectors reserved by emits and ifs
	maxDepth int  // deepest if-nesting level (selection-mask levels - 1)
}

// vecScratch is one independent set of kernel I/O state: the environment
// binding, the id vector for self() kernels, frame-slot vectors, emit/if
// output buffers and the selection-mask stack. The serial and sharded
// executors share the class's embedded scratch (shards write range-disjoint
// [lo, hi) slices, so pre-sizing makes that safe); the partitioned executor
// hands each worker its own (World.shardCtxs), because partition row spans
// may interleave arbitrarily — hash layouts, drifted ownership — and so
// cannot share mask storage.
type vecScratch struct {
	env      vexpr.Env
	ids      []float64
	slotVecs [][]float64
	bufs     [][]float64 // per-emit/if output vectors
	masks    [][]bool    // selection masks by if-nesting depth
}

// vecClassProgs is the immutable, compile-time half of a class's batch
// plan: the kernels themselves plus their structural metadata. It lives on
// compiledClass and is shared read-only by every world instantiated from
// the same Compiled.
type vecClassProgs struct {
	updates       []vecUpdateRule
	scalarUpdates []compile.UpdatePlan // rules that stay on the closure path
	updateKernels int
	updateFx      []int // effect attrs read by update kernels
	updateNeedIDs bool

	phases    []*vecPhase // indexed by phase; nil = scalar only
	hasPhases bool        // any phase compiled (guards the per-tick scan)
}

// vecClassPlan is the per-world half: the shared kernels (embedded by
// pointer) plus this world's scratch, sized to its table capacity on
// demand. Serial kernel runs use the world's arena machine; sharded runs
// use the per-worker machines in World.shardCtxs.
type vecClassPlan struct {
	*vecClassProgs

	sc      vecScratch
	fxVecs  [][]float64 // indexed by effect attr; nil when unused
	fxStale [][]int     // rows of fxVecs[ai] that may hold non-zero payloads
	outVecs [][]float64 // staged update-rule results, one per vec rule
	staged  bool        // outVecs hold this tick's results
	diffBuf []int32     // changefeed write-back diff scratch, reused
}

// phaseCounts returns the number of live rows at each script phase — the
// rows the scalar path would actually visit per phase.
func (rt *classRT) phaseCounts() []int {
	if cap(rt.countsBuf) < rt.plan.NumPhases {
		rt.countsBuf = make([]int, rt.plan.NumPhases)
	}
	rt.countsBuf = rt.countsBuf[:rt.plan.NumPhases]
	for i := range rt.countsBuf {
		rt.countsBuf[i] = 0
	}
	if rt.plan.NumPhases == 1 {
		rt.countsBuf[0] = rt.tab.Len()
		return rt.countsBuf
	}
	pcCol := rt.tab.NumColumn(rt.pcCol)
	for r, ok := range rt.tab.AliveMask() {
		if ok {
			rt.countsBuf[int(pcCol[r])]++
		}
	}
	return rt.countsBuf
}

// chooseEffectExec makes the per-class two-axis decision for the effect
// phase. The exec axis picks, per phase, batch kernels vs the scalar row
// loop (same rule on the serial and sharded paths, so Workers=1 and
// Workers=N make identical choices); the returned work estimate feeds the
// parallelism axis (plan.Costs.ChooseWorkers). vecSel is nil when no phase
// vectorizes. counts must come from rt.phaseCounts().
func (w *World) chooseEffectExec(rt *classRT, counts []int) (vecSel []bool, work float64) {
	c := w.execCosts
	capRows := rt.tab.Cap()
	vecOK := rt.vec != nil && rt.vec.hasPhases && w.tracer == nil && w.opts.Exec != plan.ExecScalar
	for p, steps := range rt.plan.Phases {
		if len(steps) == 0 {
			continue
		}
		var vp *vecPhase
		if vecOK {
			vp = rt.vec.phases[p]
		}
		if vp != nil && c.ChooseExec(w.opts.Exec, counts[p], capRows, vp.kernels) == plan.ExecVectorized {
			if vecSel == nil {
				vecSel = rt.vecSelBuf[:0]
				for range rt.plan.Phases {
					vecSel = append(vecSel, false)
				}
				rt.vecSelBuf = vecSel
			}
			vecSel[p] = true
			work += c.VecSetup + c.VecVisit*float64(capRows)*float64(vp.kernels)
		} else {
			work += c.ScalarVisit * float64(counts[p]) * rt.phaseCost[p]
		}
	}
	return vecSel, work
}

// buildVecProgs compiles everything vectorizable about a class. Structural
// eligibility — payload kinds, step shapes, the cross-self-emission hazard
// — comes from the unified analysis (internal/analysis); this function
// adds the expression-compilability half by lowering eligible rules and
// phases through the vexpr compiler. Returns nil when nothing compiled,
// which keeps the scalar fast path branch-free.
func buildVecProgs(c *Compiled, cc *compiledClass) *vecClassProgs {
	v := &vecClassProgs{}
	fxSeen := make(map[int]bool)
	for i, u := range cc.plan.Updates {
		prog, ok := vexpr.CompileOpts(u.Src.Expr, c.kernelOpts(nil))
		if !ok || !cc.ai.Updates[i].VecKind {
			v.scalarUpdates = append(v.scalarUpdates, u)
			continue
		}
		v.updates = append(v.updates, vecUpdateRule{attrIdx: u.AttrIdx, prog: prog})
		v.updateKernels += prog.Kernels()
		v.updateNeedIDs = v.updateNeedIDs || prog.NeedIDs()
		c.addFusedOps(prog)
		for _, ai := range prog.FxUsed() {
			if !fxSeen[ai] {
				fxSeen[ai] = true
				v.updateFx = append(v.updateFx, ai)
			}
		}
	}
	v.phases = make([]*vecPhase, len(cc.plan.Phases))
	any := len(v.updates) > 0
	// A scalar phase that cross-emits into this same class could interleave
	// with a vectorized phase's self-emissions in a different order than
	// the scalar row loop (row 3's cross-contribution into row 9 vs row
	// 9's own), which would break bit-identity for ⊕ folds. Vectorized
	// phases themselves never cross-emit (analysis rejects the shape), so
	// the hazard exists exactly when any phase emits into the own class via
	// a target expression — analysis.Class.CrossSelfEmit; in that case no
	// phase of the class vectorizes.
	if !cc.ai.CrossSelfEmit {
		for p, steps := range cc.plan.Phases {
			if !cc.ai.Phases[p].Vectorizable {
				continue
			}
			if vp := compileVecPhase(c, cc, steps); vp != nil {
				v.phases[p] = vp
				v.hasPhases = true
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return v
}

// compileVecPhase lowers one structurally eligible phase's step list to
// batch form, or nil when any expression falls outside the vexpr subset.
func compileVecPhase(c *Compiled, cc *compiledClass, steps []compile.Step) *vecPhase {
	vp := &vecPhase{maxSlot: -1}
	defined := make(map[int]bool)
	out, ok := compileVecSteps(c, cc, steps, defined, 0, vp)
	if !ok {
		return nil
	}
	vp.steps = out
	return vp
}

func compileVecSteps(c *Compiled, cc *compiledClass, steps []compile.Step, defined map[int]bool, depth int, vp *vecPhase) ([]vecStep, bool) {
	slotOK := func(slot int) bool { return defined[slot] }
	kc := func(prog *vexpr.Prog) {
		vp.kernels += prog.Kernels()
		vp.needIDs = vp.needIDs || prog.NeedIDs()
		c.addFusedOps(prog)
	}
	var out []vecStep
	for _, s := range steps {
		switch s := s.(type) {
		case *compile.LetStep:
			prog, ok := vexpr.CompileOpts(s.Src, c.kernelOpts(slotOK))
			if !ok {
				return nil, false
			}
			defined[s.Slot] = true
			if s.Slot > vp.maxSlot {
				vp.maxSlot = s.Slot
			}
			kc(prog)
			out = append(out, &vecLet{slot: s.Slot, prog: prog})
		case *compile.IfStep:
			cond, ok := vexpr.CompileOpts(s.CondSrc, c.kernelOpts(slotOK))
			if !ok {
				return nil, false
			}
			st := &vecIf{cond: cond, condBuf: vp.newBuf(), depth: depth}
			kc(cond)
			if depth+1 > vp.maxDepth {
				vp.maxDepth = depth + 1
			}
			if st.then, ok = compileVecSteps(c, cc, s.Then, defined, depth+1, vp); !ok {
				return nil, false
			}
			if st.els, ok = compileVecSteps(c, cc, s.Else, defined, depth+1, vp); !ok {
				return nil, false
			}
			out = append(out, st)
		case *compile.EmitStep:
			// The structural requirements — self-targeted scalar emissions
			// of columnar payload kinds only, which keep per-accumulator
			// contribution order identical to the scalar row loop — are
			// certified by analysis.Script.Vectorizable before this runs.
			// String-valued payloads ride the dictionary: the kernel emits
			// codes, decoded back at the accumulator boundary below.
			kind := cc.cls.Effects[s.AttrIdx].Kind
			val, ok := vexpr.CompileOpts(s.ValSrc, c.kernelOpts(slotOK))
			if !ok {
				return nil, false
			}
			st := &vecEmit{
				attrIdx: s.AttrIdx, kind: kind, val: val, valBuf: vp.newBuf(), keyBuf: -1,
				fold: !c.unfused && kind != value.KindString,
			}
			kc(val)
			if s.KeyFn != nil {
				// Dictionary codes are first-intern-ordered, not
				// lexicographic, so a string-typed minby/maxby key must not
				// fold over codes — the phase stays scalar.
				if s.KeySrc.Type().Kind == value.KindString {
					return nil, false
				}
				key, ok := vexpr.CompileOpts(s.KeySrc, c.kernelOpts(slotOK))
				if !ok {
					return nil, false
				}
				st.key, st.keyBuf = key, vp.newBuf()
				kc(key)
			}
			out = append(out, st)
		default: // AccumStep, AtomicStep
			return nil, false
		}
	}
	return out, true
}

// newBuf reserves one scratch output vector for an emit or if condition.
func (vp *vecPhase) newBuf() int {
	vp.nBufs++
	return vp.nBufs - 1
}

// gatherState implements vexpr.Env.Gather over committed (tick-start)
// state, matching the closure evaluator's null/dangling semantics: absent
// rows read as the attribute's zero payload.
func (w *World) gatherState(class string, attrIdx int, refs, out []float64, zero float64) {
	rt := w.classes[class]
	col := rt.tab.NumColumn(attrIdx)
	for i, f := range refs {
		if row := rt.tab.Row(value.ID(f)); row >= 0 {
			out[i] = col[row]
		} else {
			out[i] = zero
		}
	}
}

// payloadOf extracts the columnar float64 payload of a scalar value.
func payloadOf(v value.Value) float64 {
	switch v.Kind() {
	case value.KindBool:
		if v.AsBool() {
			return 1
		}
		return 0
	case value.KindRef:
		return float64(v.AsRef())
	default:
		return v.AsNumber()
	}
}

// payloadValue reconstructs a scalar value from its columnar payload.
func payloadValue(k value.Kind, f float64) value.Value {
	switch k {
	case value.KindBool:
		return value.Bool(f != 0)
	case value.KindRef:
		return value.Ref(value.ID(f))
	default:
		return value.Num(f)
	}
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func (s *vecScratch) buf(i, n int) []float64 {
	for len(s.bufs) <= i {
		s.bufs = append(s.bufs, nil)
	}
	s.bufs[i] = growFloats(s.bufs[i], n)
	return s.bufs[i]
}

func (s *vecScratch) mask(depth, n int) []bool {
	for len(s.masks) <= depth {
		s.masks = append(s.masks, nil)
	}
	if cap(s.masks[depth]) < n {
		s.masks[depth] = make([]bool, n)
	}
	s.masks[depth] = s.masks[depth][:n]
	return s.masks[depth]
}

// fillIDs materializes the per-row object-id vector for self() kernels.
func (s *vecScratch) fillIDs(rt *classRT, n int) {
	s.ids = growFloats(s.ids, n)
	for r := 0; r < n; r++ {
		s.ids[r] = float64(rt.tab.ID(r))
	}
	s.env.IDs = s.ids
}

// bindEnv points the scratch's kernel environment at the class's current
// columns.
func (s *vecScratch) bindEnv(w *World, rt *classRT) {
	s.env.Cols = rt.tab.NumColumns()
	s.env.Gather = w.gatherFn
}

// prepareVecPhases readies the class's shared scratch for every selected
// phase. Sharded execution depends on this: once pre-sized, kernel runs
// only ever write range-disjoint slices of the shared vectors, so lazy
// growth (which would race) never happens inside a worker.
func (w *World) prepareVecPhases(rt *classRT, vecSel []bool, n int) {
	w.prepareVecScratch(rt, &rt.vec.sc, vecSel, n)
}

// prepareVecScratch readies one scratch for every selected phase —
// environment binding, id vector, slot/buf/mask sizing — before any kernel
// runs through it. The partitioned executor calls it once per worker and
// class pass, giving each worker a fully independent set of vectors.
func (w *World) prepareVecScratch(rt *classRT, sc *vecScratch, vecSel []bool, n int) {
	v := rt.vec
	sc.bindEnv(w, rt)
	needIDs := false
	for p, on := range vecSel {
		if !on {
			continue
		}
		vp := v.phases[p]
		needIDs = needIDs || vp.needIDs
		if vp.maxSlot >= 0 {
			for len(sc.slotVecs) <= vp.maxSlot {
				sc.slotVecs = append(sc.slotVecs, nil)
			}
			for i := range sc.slotVecs {
				sc.slotVecs[i] = growFloats(sc.slotVecs[i], n)
			}
			sc.env.Slots = sc.slotVecs
		}
		for i := 0; i < vp.nBufs; i++ {
			sc.buf(i, n)
		}
		for d := 0; d <= vp.maxDepth; d++ {
			sc.mask(d, n)
		}
	}
	if needIDs {
		sc.fillIDs(rt, n)
	}
}

// touchedLog records rows whose accumulator went from empty to non-empty
// during a sharded vectorized phase. Shards write the shared accumulator
// cells directly (rows are disjoint) but must not append to the shared
// touched lists concurrently; the logs merge in shard order after the
// barrier, keeping the list contents deterministic.
type touchedLog struct {
	rows [][]int // indexed by effect attr
}

func (t *touchedLog) ensure(nAttrs int) {
	for len(t.rows) < nAttrs {
		t.rows = append(t.rows, nil)
	}
}

func (t *touchedLog) reset() {
	for i := range t.rows {
		t.rows[i] = t.rows[i][:0]
	}
}

// vecPhaseRange executes one vectorized effect phase over physical rows
// [lo, hi): the base selection mask is alive ∧ pc=phase, refined by nested
// if conditions; kernels evaluate unmasked (expressions are total, dead
// lanes are ignored) and only masked rows emit. sc must have been pre-sized
// by prepareVecPhases/prepareVecScratch. tl is nil on the serial path
// (emissions append to the shared touched lists directly); sharded and
// partitioned runs pass their private log. Returns the number of selected
// rows.
func (w *World) vecPhaseRange(rt *classRT, phase int, vp *vecPhase, lo, hi int, sc *vecScratch, m *vexpr.Machine, tl *touchedLog) int {
	mask := sc.masks[0]
	alive := rt.tab.AliveMask()
	selected := 0
	if rt.plan.NumPhases > 1 {
		pcCol := rt.tab.NumColumn(rt.pcCol)
		for r := lo; r < hi; r++ {
			mask[r] = alive[r] && int(pcCol[r]) == phase
			if mask[r] {
				selected++
			}
		}
	} else {
		for r := lo; r < hi; r++ {
			mask[r] = alive[r]
			if mask[r] {
				selected++
			}
		}
	}
	if selected > 0 {
		w.execVecSteps(rt, vp.steps, mask, lo, hi, sc, m, tl)
	}
	return selected
}

func (w *World) execVecSteps(rt *classRT, steps []vecStep, mask []bool, lo, hi int, sc *vecScratch, m *vexpr.Machine, tl *touchedLog) {
	for _, s := range steps {
		switch s := s.(type) {
		case *vecLet:
			s.prog.Run(m, &sc.env, lo, hi, sc.slotVecs[s.slot])
		case *vecEmit:
			val := sc.bufs[s.valBuf]
			s.val.Run(m, &sc.env, lo, hi, val)
			var key []float64
			if s.key != nil {
				key = sc.bufs[s.keyBuf]
				s.key.Run(m, &sc.env, lo, hi, key)
			}
			fx := &rt.fx[s.attrIdx]
			if s.fold {
				// Fused fold: kernel outputs are already column payloads, so
				// they go straight into the accumulator's batch payload fold
				// with no per-row boxing or combinator dispatch.
				log := &fx.touched
				if tl != nil {
					log = &tl.rows[s.attrIdx]
				}
				combinator.AddPayloadRows(fx.acc, mask, lo, hi, val, key, log)
				break
			}
			// String-valued kernels emit dictionary codes; decode at the
			// accumulator boundary so the fold sees the same value.Value the
			// scalar row loop would contribute.
			isStr := s.kind == value.KindString
			decodes := int64(0)
			for r := lo; r < hi; r++ {
				if !mask[r] {
					continue
				}
				k := 0.0
				if key != nil {
					k = key[r]
				}
				var v value.Value
				if isStr {
					v = value.Str(w.dict.Lookup(val[r]))
					decodes++
				} else {
					v = payloadValue(s.kind, val[r])
				}
				if tl == nil {
					fx.add(r, v, k)
				} else {
					fx.addLogged(r, v, k, &tl.rows[s.attrIdx])
				}
			}
			if decodes > 0 && !w.opts.DisableStats {
				atomic.AddInt64(&w.execStats.DictLookups, decodes)
			}
		case *vecIf:
			cond := sc.bufs[s.condBuf]
			s.cond.Run(m, &sc.env, lo, hi, cond)
			sub := sc.masks[s.depth+1]
			any := false
			for r := lo; r < hi; r++ {
				sub[r] = mask[r] && cond[r] != 0
				any = any || sub[r]
			}
			if any {
				w.execVecSteps(rt, s.then, sub, lo, hi, sc, m, tl)
			}
			if s.els != nil {
				any = false
				for r := lo; r < hi; r++ {
					sub[r] = mask[r] && cond[r] == 0
					any = any || sub[r]
				}
				if any {
					w.execVecSteps(rt, s.els, sub, lo, hi, sc, m, tl)
				}
			}
		}
	}
}

// runVecUpdates evaluates the class's vectorized update rules, leaving the
// new-state payloads staged in outVecs. They apply with all other staged
// writes at the end of the update step, so components still observe old
// state. When the parallelism axis picks more than one worker, the rules
// stream batch-aligned shards concurrently — each result vector is written
// in disjoint [lo, hi) ranges, so the only per-worker state is the kernel
// machine.
func (w *World) runVecUpdates(rt *classRT) {
	v := rt.vec
	n := rt.tab.Cap()
	v.sc.bindEnv(w, rt)
	// Dense combined-effect vectors: zero payload everywhere, overwritten
	// at rows that received contributions (fx.touched).
	for _, ai := range v.updateFx {
		rt.fillFxVec(ai, n)
	}
	v.sc.env.Fx = v.fxVecs
	if v.updateNeedIDs {
		v.sc.fillIDs(rt, n)
	}
	for len(v.outVecs) < len(v.updates) {
		v.outVecs = append(v.outVecs, nil)
	}
	for i := range v.updates {
		v.outVecs[i] = growFloats(v.outVecs[i], n)
	}
	shards := w.updateShards(rt)
	if len(shards) <= 1 {
		m := w.arenaMachine()
		for i, u := range v.updates {
			u.prog.Run(m, &v.sc.env, 0, n, v.outVecs[i])
		}
	} else {
		w.runShards(shards, func(si int, sh shard) {
			m := &w.shardCtxs[si].machine
			for i, u := range v.updates {
				u.prog.Run(m, &v.sc.env, sh.lo, sh.hi, v.outVecs[i])
			}
		})
		if !w.opts.DisableStats {
			w.execStats.ParallelShards += int64(len(shards))
		}
	}
	v.staged = true
	if !w.opts.DisableStats {
		w.execStats.VectorRows += int64(rt.tab.Len() * len(v.updates))
	}
}

// updateShards applies the parallelism axis to a class's vectorized update
// rules.
func (w *World) updateShards(rt *classRT) []shard {
	nw := 1
	if w.parallelOK() {
		c := w.execCosts
		work := c.VecSetup + c.VecVisit*float64(rt.tab.Cap()*rt.vec.updateKernels)
		nw = c.ChooseWorkers(w.opts.Workers, work)
	}
	if nw > 1 {
		w.ensureWorkers()
	}
	w.shardBuf = shardRows(rt.tab.Cap(), nw, w.shardBuf)
	return w.shardBuf
}

// fillFxVec materializes the dense combined-effect vector for one effect
// attr: zero payload everywhere, overwritten at rows that received
// contributions (fx.touched). Instead of sweeping the whole capacity every
// tick, it re-zeroes only the rows the previous fill wrote (fxStale) —
// every other lane still holds the zero payload from the last full sweep.
func (rt *classRT) fillFxVec(ai, n int) []float64 {
	v := rt.vec
	for len(v.fxVecs) < len(rt.fx) {
		v.fxVecs = append(v.fxVecs, nil)
	}
	for len(v.fxStale) < len(rt.fx) {
		v.fxStale = append(v.fxStale, nil)
	}
	old := v.fxVecs[ai]
	vec := growFloats(old, n)
	v.fxVecs[ai] = vec
	e := rt.cls.Effects[ai]
	zero := payloadOf(value.Zero(e.Comb.ResultKind(e.Kind)))
	if len(old) != n {
		// Fresh or resized storage: establish the zero base everywhere.
		for r := range vec {
			vec[r] = zero
		}
	} else {
		for _, r := range v.fxStale[ai] {
			vec[r] = zero
		}
	}
	fx := &rt.fx[ai]
	combinator.ResultPayloads(fx.acc, fx.touched, vec)
	v.fxStale[ai] = append(v.fxStale[ai][:0], fx.touched...)
	return vec
}

// applyVecUpdates writes the staged dense columns back for live rows. Rule
// and component attributes are disjoint (strict ownership), so ordering
// against the map-staged writes is immaterial.
func (rt *classRT) applyVecUpdates() {
	v := rt.vec
	if v == nil || !v.staged {
		return
	}
	alive := rt.tab.AliveMask()
	if l := rt.vlog; l != nil {
		// Changefeed on: diff during write-back so only rows whose payload
		// bits actually changed enter the feed (a whole-column kernel write
		// is NOT a whole-column change).
		for i, u := range v.updates {
			v.diffBuf = rt.tab.SetNumColumnDiff(u.attrIdx, v.outVecs[i], alive, v.diffBuf[:0])
			l.markDirtyRows(v.diffBuf)
		}
		v.staged = false
		return
	}
	for i, u := range v.updates {
		rt.tab.SetNumColumn(u.attrIdx, v.outVecs[i], alive)
	}
	v.staged = false
}

// ExecStats reports how much per-row expression work ran vectorized versus
// scalar, and how many shards the worker pool executed, since the world was
// created (§4's set-at-a-time accounting).
func (w *World) ExecStats() stats.ExecCounters { return w.execStats }
