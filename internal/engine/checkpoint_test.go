package engine_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/table"
	"repro/internal/workload"
)

func checkpointWorld(t *testing.T) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario("vehicles", core.SrcVehicles)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.PopulateVehicles(w, workload.Uniform(50, 4000, 4000, 9)); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	return w
}

// worldSig fingerprints the world so tests can assert "unchanged".
func worldSig(w *engine.World) []float64 {
	var sig []float64
	for _, id := range w.IDs("Vehicle") {
		for _, attr := range []string{"x", "y", "fuel", "odo"} {
			v, _ := w.Get("Vehicle", id, attr)
			sig = append(sig, v.AsNumber())
		}
	}
	return sig
}

func sigEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCheckpointRejectsBadVersion pins the validate-before-mutate
// contract: a checkpoint with an unknown layout version is rejected with a
// clear error and the world is left byte-for-byte untouched.
func TestCheckpointRejectsBadVersion(t *testing.T) {
	w := checkpointWorld(t)
	before := worldSig(w)
	cp, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.Version = engine.CheckpointVersion + 7
	err = w.Restore(cp)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("Restore(bad version) = %v, want version error", err)
	}
	if !sigEqual(worldSig(w), before) {
		t.Fatal("failed restore mutated the world")
	}
}

// TestCheckpointRejectsUnknownClass rejects checkpoints mentioning classes
// this program does not declare.
func TestCheckpointRejectsUnknownClass(t *testing.T) {
	w := checkpointWorld(t)
	cp, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.Tables["Ghost"] = cp.Tables["Vehicle"]
	err = w.Restore(cp)
	if err == nil || !strings.Contains(err.Error(), "unknown class") {
		t.Fatalf("Restore(unknown class) = %v, want unknown-class error", err)
	}
}

// TestCheckpointRejectsTruncatedTable pins per-table validation: a
// truncated column slab fails before any table is restored, naming the
// class, and the world stays unchanged.
func TestCheckpointRejectsTruncatedTable(t *testing.T) {
	w := checkpointWorld(t)
	before := worldSig(w)
	cp, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	snap := cp.Tables["Vehicle"]
	snap.Cols[0].Nums = snap.Cols[0].Nums[:len(snap.Cols[0].Nums)-1]
	cp.Tables["Vehicle"] = snap
	err = w.Restore(cp)
	if err == nil || !strings.Contains(err.Error(), "Vehicle") || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("Restore(truncated) = %v, want truncated-column error naming the class", err)
	}
	if !sigEqual(worldSig(w), before) {
		t.Fatal("failed restore mutated the world")
	}
}

// TestCheckpointSnapshotIsolation pins that checkpoints are deep copies:
// ticking the world after Checkpoint must not disturb the captured
// snapshot, and restoring replays it exactly.
func TestCheckpointSnapshotIsolation(t *testing.T) {
	w := checkpointWorld(t)
	cp, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	at := worldSig(w)
	if err := w.Run(4); err != nil {
		t.Fatal(err)
	}
	if sigEqual(worldSig(w), at) {
		t.Fatal("world did not advance")
	}
	if err := w.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if !sigEqual(worldSig(w), at) {
		t.Fatal("restore did not reproduce checkpoint state")
	}
	var _ table.Snapshot = cp.Tables["Vehicle"]
	if cp.Tables["Vehicle"].Version != table.SnapshotVersion {
		t.Fatalf("checkpoint carries snapshot version %d, want %d",
			cp.Tables["Vehicle"].Version, table.SnapshotVersion)
	}
}
