package engine

// Per-tick execution arenas. Everything a tick needs beyond the tables —
// the serial kernel machine with its per-program slab cache, the index
// build arenas with their retained tree/grid/hash slabs — lives in an
// Arena. A standalone world lazily creates one arena and keeps it forever
// (exactly the pre-pooling retained-scratch behavior). A many-world server
// instead hands every world the same ArenaPool: each world checks an arena
// out at tick start and returns it at tick end, so N mostly-idle worlds
// share a handful of warm arenas instead of pinning N copies of the slab
// working set.
//
// Correctness under rotation: an index built from a pooled builder aliases
// that builder's memory, so reusing last tick's index is sound only while
// the same builder is attached and nobody else has built with it since.
// Every sitePart records (builder, generation) at build time and the
// maintenance ladders check builderValid before any reuse; a world that
// gets a different (or since-rebuilt) builder back simply rebuilds, which
// after slab convergence allocates nothing.

import (
	"sync"

	"repro/internal/index"
	"repro/internal/vexpr"
)

// Arena is one world-tick's worth of checkout state: a kernel machine for
// the serial execution paths and one index build arena per site partition,
// attached on demand in site order.
type Arena struct {
	machine  *vexpr.Machine
	builders []*index.Builder
	pool     *ArenaPool // nil for world-owned arenas
}

// builder returns the arena's i-th build arena, drawing new ones from the
// pool (or the heap for owned arenas) as the demand grows.
func (a *Arena) builder(i int) *index.Builder {
	for len(a.builders) <= i {
		var b *index.Builder
		if a.pool != nil {
			b = a.pool.builders.Get()
		} else {
			b = new(index.Builder)
		}
		a.builders = append(a.builders, b)
	}
	return a.builders[i]
}

// ArenaPool is a shared free list of whole arenas. LIFO order means a lone
// world (or the last world of a round) usually gets back exactly the arena
// it released — same machine slabs, same builders, still-valid indexes.
type ArenaPool struct {
	mu       sync.Mutex
	free     []*Arena
	machines vexpr.MachinePool
	builders index.BuilderPool
}

// Get returns an arena from the pool, or assembles a fresh one around a
// pooled machine.
func (p *ArenaPool) Get() *Arena {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return a
	}
	p.mu.Unlock()
	return &Arena{machine: p.machines.Get(), pool: p}
}

// Put returns an arena (with all its builders) to the pool.
func (p *ArenaPool) Put(a *Arena) {
	if a == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, a)
	p.mu.Unlock()
}

// SetArenaPool switches the world from an owned arena to per-tick checkout
// from a shared pool (the many-world server calls this right after
// NewFromCompiled). Must not be called mid-tick.
func (w *World) SetArenaPool(p *ArenaPool) {
	w.detachBuilders()
	w.arenaPool = p
	w.arena = nil
}

// acquireArena makes w.arena usable for the current tick: the owned arena
// for standalone worlds (created on first use, kept forever), a pool
// checkout otherwise. Builders attach to the site partitions in site order,
// so a world that gets its own arena back finds every (builder, gen) pair
// intact.
func (w *World) acquireArena() {
	if w.arena == nil {
		if w.arenaPool != nil {
			w.arena = w.arenaPool.Get()
		} else {
			w.arena = &Arena{machine: new(vexpr.Machine)}
		}
	}
	w.attachBuilders()
}

// releaseArena returns a pooled arena at tick end; owned arenas stay put.
func (w *World) releaseArena() {
	if w.arenaPool == nil || w.arena == nil {
		return
	}
	w.detachBuilders()
	w.arenaPool.Put(w.arena)
	w.arena = nil
}

// arenaMachine is the serial-path kernel machine. Valid only between
// acquireArena and releaseArena (all of RunTick, plus Restore's handler
// replay).
func (w *World) arenaMachine() *vexpr.Machine { return w.arena.machine }

// attachBuilders points every site partition at its arena builder. Also
// called when a partitioned prepare grows a site's parts mid-tick: builds
// happen in site order, so re-running the ordinal assignment only moves
// builders of later, not-yet-built sites.
func (w *World) attachBuilders() {
	if w.arena == nil {
		return
	}
	k := 0
	for _, site := range w.sites {
		for i := range site.parts {
			site.parts[i].builder = w.arena.builder(k)
			k++
		}
	}
}

func (w *World) detachBuilders() {
	for _, site := range w.sites {
		for i := range site.parts {
			site.parts[i].builder = nil
		}
	}
}
