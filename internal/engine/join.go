package engine

// The batched join driver. The scalar accum path interprets the whole loop
// body once per index candidate: every `u.attr` read is an id→row map
// lookup plus value boxing, and the predicate the index already served is
// re-evaluated from scratch. The batched driver instead works set-at-a-time
// per probe (§4.1):
//
//  1. gather candidate *rows* through the index's batch probe (QueryRows /
//     RowHash.Lookup rows) — no per-match map lookup;
//  2. re-check the analyzed predicate over raw columns: closed-interval
//     compares per range dimension (exact, NaN-safe, and they also kill
//     composite-hash collisions' range cousins), payload equality per
//     equality conjunct, then the compiled residual per survivor;
//  3. execute the contribution: single accum emissions over columnar
//     payloads gather the source columns they touch into vexpr lanes and
//     fold through batch kernels in candidate order (bit-identical to the
//     scalar fold); everything else runs the compiled Join.Inner per
//     survivor — still skipping the interpreted predicate.
//
// Candidate order is exactly the order the scalar path would visit, and the
// fold replicates Accumulator.Add comparison-for-comparison, so scalar and
// batched execution produce bit-identical worlds at every strategy.

import (
	"repro/internal/combinator"
	"repro/internal/compile"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// siteBatch is the compile-time half of the batched driver for one site.
type siteBatch struct {
	eqKinds []value.Kind // declared kind of each equality-conjunct attr

	// vec is true when the inner body is a single accum emission whose
	// value (and minby/maxby key) compiled to gathered batch kernels.
	vec      bool
	valProg  *vexpr.Prog
	valBcast []vexpr.BcastSrc
	keyProg  *vexpr.Prog
	keyBcast []vexpr.BcastSrc
	cols     []int // source attrs to gather into lanes
	needIDs  bool

	// Vectorized residual: one mask kernel per residual conjunct, ANDed
	// over gathered candidate lanes. Populated only when every conjunct
	// compiles; otherwise the batched driver falls back to the interpreted
	// Residual closure per candidate.
	resProgs   []*vexpr.Prog
	resBcast   [][]vexpr.BcastSrc
	resCols    []int
	resNeedIDs bool
}

// newSiteBatch analyzes an accum step for batched execution. Any accum with
// an analyzed join can batch (the generic inner runs per survivor); the
// columnar fold additionally requires the single-emission shape. Fold
// VALUES stay numeric (payloadValueKind) — an accumulator of strings would
// need per-contribution decode — but residual predicates compile through
// the dictionary, so string conjuncts like `u.player != player` run as mask
// kernels over code lanes instead of bailing the probe to the scalar loop.
// The result is immutable and shared by every world on this compilation.
func newSiteBatch(c *Compiled, s *compile.AccumStep) *siteBatch {
	j := s.Join
	if j == nil {
		return nil
	}
	o := c.kernelOpts(nil)
	b := &siteBatch{}
	for range j.Eqs {
		b.eqKinds = append(b.eqKinds, value.KindInvalid)
	}
	if len(j.Inner) == 1 && payloadValueKind(s.ValKind) && s.Comb != combinator.SetUnion {
		if em, ok := j.Inner[0].(*compile.EmitStep); ok && em.AccumSlot == s.Slot && !em.SetInsert && em.ValSrc != nil {
			valProg, valBc, valCols, okVal := vexpr.CompileAccumOpts(em.ValSrc, s.IterSlot, o)
			okKey := true
			var keyProg *vexpr.Prog
			var keyBc []vexpr.BcastSrc
			var keyCols []int
			if em.KeyFn != nil {
				// String minby/maxby keys cannot fold over dictionary codes
				// (first-intern order, not lexicographic).
				if em.KeySrc == nil || em.KeySrc.Type().Kind == value.KindString {
					okKey = false
				} else {
					keyProg, keyBc, keyCols, okKey = vexpr.CompileAccumOpts(em.KeySrc, s.IterSlot, o)
				}
			}
			if okVal && okKey {
				b.vec = true
				b.valProg, b.valBcast = valProg, valBc
				b.keyProg, b.keyBcast = keyProg, keyBc
				b.cols = mergeCols(valCols, keyCols)
				b.needIDs = valProg.NeedIDs() || (keyProg != nil && keyProg.NeedIDs())
				c.addFusedOps(valProg)
				c.addFusedOps(keyProg)
			}
		}
	}
	if len(j.ResidualSrcs) > 0 {
		progs := make([]*vexpr.Prog, 0, len(j.ResidualSrcs))
		bcs := make([][]vexpr.BcastSrc, 0, len(j.ResidualSrcs))
		var cols []int
		needIDs := false
		ok := true
		for _, src := range j.ResidualSrcs {
			p, bc, cc, compiled := vexpr.CompileAccumOpts(src, s.IterSlot, o)
			if !compiled {
				ok = false
				break
			}
			progs = append(progs, p)
			bcs = append(bcs, bc)
			cols = mergeCols(cols, cc)
			needIDs = needIDs || p.NeedIDs()
		}
		if ok {
			b.resProgs, b.resBcast = progs, bcs
			b.resCols, b.resNeedIDs = cols, needIDs
			for _, p := range progs {
				c.addFusedOps(p)
			}
		}
	}
	// Record the source-class kinds of the equality attrs; the batch plan is
	// shared by all worlds and workers and must be immutable afterwards.
	if srcCls, ok := c.prog.Info.Schema.Class(s.SourceClass); ok {
		for i, eq := range j.Eqs {
			b.eqKinds[i] = srcCls.State[eq.AttrIdx].Kind
		}
	}
	return b
}

func payloadValueKind(k value.Kind) bool {
	return k == value.KindNumber || k == value.KindBool || k == value.KindRef
}

func mergeCols(a, b []int) []int {
	out := append([]int(nil), a...)
	for _, c := range b {
		seen := false
		for _, o := range out {
			if o == c {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, c)
		}
	}
	return out
}

// runAccumBatched executes one probe of an analyzed accum join through the
// batch-gathered pipeline. The accumulator for s.Slot is already armed.
func (x *execCtx) runAccumBatched(s *compile.AccumStep, site *siteRT, srcRT *classRT) {
	j := s.Join
	b := site.batch
	tab := srcRT.tab
	ids := tab.RawIDs()

	var lo, hi []float64
	if len(j.Ranges) > 0 {
		lo, hi = x.evalBox(site)
	}

	// (1) Candidate rows, in the same order the scalar path visits them:
	// index traversal order normally, canonical physical-row order under
	// partitioned execution (see the scalar tree/grid path in exec.go).
	pp := x.sitePart(site)
	rows := x.rowsBuf[:0]
	switch site.strategy {
	case plan.HashIndex:
		key := x.evalEqKeys(site)
		if pp.hash != nil {
			_, rr := pp.hash.Lookup(key)
			rows = append(rows, rr...)
		}
	case plan.GridIndex, plan.RangeTreeIndex:
		x.sampleExtent(site, lo, hi)
		if pp.tree != nil {
			rows = pp.tree.QueryRows(lo, hi, rows)
		}
		if x.w.parts != nil {
			index.SortRows(rows)
		}
	default: // NestedLoop
		if x.w.parts != nil {
			rows = append(rows, pp.view.Rows()...)
		} else {
			for r, ok := range tab.AliveMask() {
				if ok {
					rows = append(rows, int32(r))
				}
			}
		}
	}
	cand := len(rows)

	// (2a) Range conjuncts: exact closed-interval compares on raw columns.
	// Index-covered dimensions are nearly free to re-verify and this also
	// catches NaN coordinates an index cannot order.
	for di := range j.Ranges {
		col := tab.NumColumn(j.Ranges[di].AttrIdx)
		l, h := lo[di], hi[di]
		k := 0
		for _, r := range rows {
			if c := col[r]; c >= l && c <= h {
				rows[k] = r
				k++
			}
		}
		rows = rows[:k]
	}

	// (2b) Equality conjuncts: payload compares (they also filter composite-
	// hash collisions). Strategies other than hash haven't evaluated keys.
	if len(j.Eqs) > 0 {
		if site.strategy != plan.HashIndex {
			x.evalEqKeys(site)
		}
		for i, eq := range j.Eqs {
			want := x.eqVals[i]
			if payloadValueKind(b.eqKinds[i]) {
				if want.Kind() != b.eqKinds[i] {
					rows = rows[:0] // kind mismatch can never be equal
					break
				}
				p := payloadOf(want)
				col := tab.NumColumn(eq.AttrIdx)
				k := 0
				for _, r := range rows {
					if col[r] == p {
						rows[k] = r
						k++
					}
				}
				rows = rows[:k]
			} else if b.eqKinds[i] == value.KindString && x.w.dict != nil {
				// Probe through the dictionary: equal strings ⇔ equal codes.
				// A never-interned probe value cannot match any stored row.
				if want.Kind() != value.KindString {
					rows = rows[:0]
					break
				}
				p, interned := x.w.dict.CodeOf(want.AsString())
				x.dictLookups++
				if !interned {
					rows = rows[:0]
					break
				}
				col := tab.NumColumn(eq.AttrIdx)
				k := 0
				for _, r := range rows {
					if col[r] == p {
						rows[k] = r
						k++
					}
				}
				rows = rows[:k]
			} else {
				attr := eq.AttrIdx
				k := 0
				for _, r := range rows {
					if tab.At(int(r), attr).Equal(want) {
						rows[k] = r
						k++
					}
				}
				rows = rows[:k]
			}
		}
	}

	// (2c) Residual predicate: vectorized conjunct masks over gathered
	// lanes when every conjunct compiled, else the interpreted closure per
	// survivor.
	if j.Residual != nil {
		if len(b.resProgs) > 0 {
			rows = x.filterResidualVec(b, srcRT, rows)
		} else {
			iterSlot := s.IterSlot
			k := 0
			for _, r := range rows {
				x.frame[iterSlot] = value.Ref(ids[r])
				if j.Residual(&x.ctx).AsBool() {
					rows[k] = r
					k++
				}
			}
			rows = rows[:k]
		}
	}
	matched := len(rows)

	// (3) Contributions.
	if matched > 0 {
		if b.vec {
			x.foldVec(s, b, srcRT, rows)
		} else {
			// Stack-discipline the buffer: nested accums inside Inner must
			// append past our survivors, not clobber them.
			x.rowsBuf = rows[len(rows):]
			iterSlot := s.IterSlot
			for _, r := range rows {
				x.frame[iterSlot] = value.Ref(ids[r])
				x.runSteps(j.Inner)
			}
		}
	}
	x.rowsBuf = rows[:0]

	site.observe(x.w, 1, int64(cand))
	x.joinProbes++
	x.joinMatches += int64(matched)
	x.joinBatched += int64(cand)
}

// filterResidualVec evaluates the compiled residual conjuncts as mask
// kernels over gathered candidate lanes and compacts rows to the survivors.
// Conjunction order is immaterial: SGL expressions are pure and total.
func (x *execCtx) filterResidualVec(b *siteBatch, srcRT *classRT, rows []int32) []int32 {
	k := len(rows)
	if k == 0 {
		return rows
	}
	x.gatherLanes(srcRT, b.resCols, b.resNeedIDs, rows)
	env := &x.accEnv
	mask := growFloats(x.resBuf, k)
	x.resBuf = mask
	for pi, prog := range b.resProgs {
		env.Bcast = x.fillBcast(b.resBcast[pi])
		if pi == 0 {
			prog.Run(x.machine, env, 0, k, mask)
			continue
		}
		tmp := growFloats(x.resBuf2, k)
		x.resBuf2 = tmp
		prog.Run(x.machine, env, 0, k, tmp)
		for i, v := range tmp[:k] {
			if v == 0 {
				mask[i] = 0
			}
		}
	}
	kk := 0
	for i, r := range rows {
		if mask[i] != 0 {
			rows[kk] = r
			kk++
		}
	}
	return rows[:kk]
}

// gatherLanes fills the context's per-attr candidate lanes (and the id lane
// when needed) for the given columns, binding them into the shared env.
func (x *execCtx) gatherLanes(srcRT *classRT, cols []int, needIDs bool, rows []int32) {
	k := len(rows)
	tab := srcRT.tab
	for len(x.lanes) < len(srcRT.cls.State) {
		x.lanes = append(x.lanes, nil)
	}
	for _, a := range cols {
		src := tab.NumColumn(a)
		lane := growFloats(x.lanes[a], k)
		x.lanes[a] = lane
		for i, r := range rows {
			lane[i] = src[r]
		}
	}
	env := &x.accEnv
	env.Cols = x.lanes
	env.Gather = x.w.gatherFn
	if needIDs {
		idLane := growFloats(x.idLane, k)
		x.idLane = idLane
		rawIDs := tab.RawIDs()
		for i, r := range rows {
			idLane[i] = float64(rawIDs[r])
		}
		env.IDs = idLane
	}
}

// foldVec gathers the columns the contribution reads into candidate lanes,
// runs the compiled value (and key) kernels, and folds the result lanes into
// the armed accumulator in candidate order.
func (x *execCtx) foldVec(s *compile.AccumStep, b *siteBatch, srcRT *classRT, rows []int32) {
	k := len(rows)
	x.gatherLanes(srcRT, b.cols, b.needIDs, rows)
	env := &x.accEnv
	x.valBuf = growFloats(x.valBuf, k)
	env.Bcast = x.fillBcast(b.valBcast)
	b.valProg.Run(x.machine, env, 0, k, x.valBuf)
	var keys []float64
	if b.keyProg != nil {
		x.keyBuf = growFloats(x.keyBuf, k)
		env.Bcast = x.fillBcast(b.keyBcast)
		b.keyProg.Run(x.machine, env, 0, k, x.keyBuf)
		keys = x.keyBuf
	}
	x.accum[s.Slot].AddPayloads(x.valBuf[:k], keys)
}

// fillBcast evaluates the probing-row scalars a gathered program broadcasts.
// String-kinded sources broadcast dictionary codes: state attrs read their
// code lane directly; frame slots intern through Code — interning (not a
// NaN miss sentinel) keeps slot-vs-slot comparisons correct: two slots
// holding the same never-stored string must still compare equal, exactly as
// the scalar evaluator would. Dict.Code is safe under worker parallelism
// (mutex-guarded copy-on-write against lock-free snapshot readers).
func (x *execCtx) fillBcast(srcs []vexpr.BcastSrc) []float64 {
	bc := x.bcastBuf[:0]
	for _, s := range srcs {
		switch s.Kind {
		case vexpr.BcastStateAttr:
			bc = append(bc, x.rt.tab.NumColumn(s.Idx)[x.row])
		case vexpr.BcastSlot:
			if v := x.frame[s.Idx]; v.Kind() == value.KindString {
				x.dictLookups++
				bc = append(bc, x.w.dict.Code(v.AsString()))
			} else {
				bc = append(bc, payloadOf(v))
			}
		default: // BcastSelfID
			bc = append(bc, float64(x.id))
		}
	}
	x.bcastBuf = bc
	return bc
}
