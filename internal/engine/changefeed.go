package engine

// The per-tick change feed behind incremental subscription views
// (internal/views): every state write that survives the update step —
// map-staged scalar rule/component results, dense kernel write-back, spawns,
// kills, out-of-tick SetState — marks the physical row it changed, and the
// accumulated marks drain as one deterministic, sorted changefeed per class.
//
// Two properties make the feed usable as a view-maintenance substrate:
//
//   - It is driven by the writes themselves, at the two apply sites every
//     execution mode funnels through (runUpdateStep's staged-map apply and
//     applyVecUpdates' column write-back), so the same marks fall out of any
//     Workers/Partitions/Exec configuration and of DisableStats — statistics
//     collection never feeds execution (the PR 3 grid-sizing rule).
//   - Marks are value-diffed on raw bits: a rule that rewrites x to the same
//     payload marks nothing, so feed volume tracks rows that actually
//     changed, not rows that have update rules.
//
// Marking uses a generation-stamped per-row array (no clearing between
// ticks) plus an append log, and the log sorts ascending at drain time, so
// the drained row order is a pure function of committed state — bit-identical
// across worker counts, partition layouts and exec modes.

import (
	"math"
	"slices"

	"repro/internal/table"
	"repro/internal/value"
)

// changeLog accumulates one class's state changes between drains.
type changeLog struct {
	gen   uint64   // current accumulation generation
	stamp []uint64 // per-row: generation the row was last marked in
	rows  []int32  // rows marked this generation, unsorted until drain

	killed []value.ID // ids deleted since the last drain

	// accounted is the table's structure version after the last mutation
	// this log witnessed (spawn/kill/drain). A drain that finds the live
	// structure version elsewhere means rows were inserted or deleted behind
	// the engine's back — the consumer must resync from a full rescan.
	accounted uint64

	// resync forces consumers to rebuild from a rescan: set by checkpoint
	// restore, where every row's payload may have changed and physical rows
	// were compacted.
	resync bool
}

func (l *changeLog) mark(row int) {
	for len(l.stamp) <= row {
		l.stamp = append(l.stamp, 0)
	}
	if l.stamp[row] != l.gen {
		l.stamp[row] = l.gen
		l.rows = append(l.rows, int32(row))
	}
}

// markDirtyRows folds a batch of pre-diffed rows (SetNumColumnDiff output)
// into the log.
func (l *changeLog) markDirtyRows(rows []int32) {
	for _, r := range rows {
		l.mark(int(r))
	}
}

// ClassDelta is one class's drained changefeed for the ticks since the last
// drain: the alive rows whose state changed or that were spawned (physical
// row order, ascending) and the ids that were killed (ascending). When
// Resync is set the row/kill lists are meaningless — consumers must rebuild
// their derived state from a full rescan (checkpoint restore, or a
// structure-version bump the feed cannot account for).
type ClassDelta struct {
	Class  string
	Rows   []int32
	Killed []value.ID
	Resync bool
}

// EnableChangeFeed turns on per-class change logging. Idempotent; there is
// no way to turn the feed off short of discarding the world (the marking
// cost is one stamped append per actually-changed row).
func (w *World) EnableChangeFeed() {
	for _, rt := range w.order {
		if rt.vlog == nil {
			rt.vlog = &changeLog{gen: 1, accounted: rt.tab.StructVersion()}
		}
	}
}

// ChangeFeedEnabled reports whether the feed is on.
func (w *World) ChangeFeedEnabled() bool {
	return len(w.order) > 0 && w.order[0].vlog != nil
}

// DrainChangeFeed finalizes and hands each class's accumulated changes to
// fn in class declaration order, then resets the logs. The slices inside
// the ClassDelta alias engine-owned scratch: they are valid only during the
// callback and must be copied out to retain. Call between ticks only.
func (w *World) DrainChangeFeed(fn func(d ClassDelta)) {
	for _, rt := range w.order {
		l := rt.vlog
		if l == nil {
			continue
		}
		// A structure version the log did not witness means direct table
		// mutation: fall back to resync rather than serve a feed with holes.
		if rt.tab.StructVersion() != l.accounted {
			l.resync = true
		}
		d := ClassDelta{Class: rt.name, Resync: l.resync}
		if !l.resync {
			// Drop rows that died after being marked (their kill is in
			// killed); what remains is sorted ascending for a canonical,
			// configuration-independent order.
			live := l.rows[:0]
			for _, r := range l.rows {
				if rt.tab.Alive(int(r)) {
					live = append(live, r)
				}
			}
			l.rows = live
			slices.Sort(l.rows)
			slices.Sort(l.killed)
			d.Rows = l.rows
			d.Killed = l.killed
		}
		fn(d)
		l.rows = l.rows[:0]
		l.killed = l.killed[:0]
		l.resync = false
		l.gen++
		l.accounted = rt.tab.StructVersion()
	}
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// noteSpawn records a freshly inserted row. The row enters the feed as an
// ordinary changed-row candidate — subscriptions discover it by evaluating
// their predicate — and the log's accounted structure version advances so
// the drain-time resync check stays quiet.
func (l *changeLog) noteSpawn(row int, structVer uint64) {
	l.mark(row)
	l.accounted = structVer
}

// noteKill records a deletion by id (the physical row is already dead and
// may be reused by a same-boundary spawn).
func (l *changeLog) noteKill(id value.ID, structVer uint64) {
	l.killed = append(l.killed, id)
	l.accounted = structVer
}

// markResync flags every class log for consumer-side rebuild (checkpoint
// restore).
func (w *World) markResync() {
	for _, rt := range w.order {
		if rt.vlog != nil {
			rt.vlog.resync = true
			rt.vlog.accounted = rt.tab.StructVersion()
		}
	}
}

// changedValue reports whether writing nv over ov changes the stored
// payload, on the same raw-bits discipline as Table.SetNumColumnDiff
// (float payloads compare as bits; sets always count as changed — their
// identity is a mutable pointer).
func changedValue(ov, nv value.Value) bool {
	if ov.Kind() != nv.Kind() {
		return true
	}
	switch nv.Kind() {
	case value.KindNumber, value.KindBool, value.KindRef:
		return !sameBits(ov.AsNumber(), nv.AsNumber())
	case value.KindString:
		return ov.AsString() != nv.AsString()
	default:
		return true
	}
}

// ClassTable exposes a class's columnar table for read-only consumers —
// subscription-view maintenance, inspectors, debuggers. Callers must not
// write through it; all mutation goes through the engine so the change feed
// stays complete.
func (w *World) ClassTable(class string) *table.Table {
	if rt, ok := w.classes[class]; ok {
		return rt.tab
	}
	return nil
}

// NoteViewStats folds subscription-view maintenance counters into the
// world's execution statistics (no-op under DisableStats — the counters
// observe view maintenance, they never drive it).
func (w *World) NoteViewStats(subs, deltaRows, rescans, nanos int64) {
	if w.opts.DisableStats {
		return
	}
	w.execStats.ViewSubs = subs
	w.execStats.ViewDeltaRows += deltaRows
	w.execStats.ViewRescans += rescans
	w.execStats.ViewMaintNanos += nanos
}
