package engine_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/workload"
)

// feedString serializes one drained changefeed into a canonical textual
// form for differential comparison.
func feedString(w *engine.World) string {
	var b strings.Builder
	w.DrainChangeFeed(func(d engine.ClassDelta) {
		fmt.Fprintf(&b, "%s resync=%v rows=%v killed=%v\n", d.Class, d.Resync, d.Rows, d.Killed)
	})
	return b.String()
}

// TestChangeFeedValueDiff pins the feed's core economy: rows whose state
// bits actually changed are in, rows merely touched by an update rule that
// rewrote the same payload are out.
func TestChangeFeedValueDiff(t *testing.T) {
	sc := core.MustLoad("fig2", core.SrcFig2)
	w, err := sc.NewWorld(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Five crowded units suffer crowding damage; one isolated unit counts
	// only itself, takes no damage, and health - 0 leaves the bits alone.
	var crowded []value.ID
	for i := 0; i < 5; i++ {
		id, err := w.Spawn("Unit", map[string]value.Value{
			"x": value.Num(float64(i)), "y": value.Num(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		crowded = append(crowded, id)
	}
	loner, err := w.Spawn("Unit", map[string]value.Value{
		"x": value.Num(5000), "y": value.Num(5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.EnableChangeFeed()
	if !w.ChangeFeedEnabled() {
		t.Fatal("feed not enabled")
	}
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	got := map[value.ID]bool{}
	w.DrainChangeFeed(func(d engine.ClassDelta) {
		if d.Resync {
			t.Fatalf("unexpected resync: %+v", d)
		}
		tab := w.ClassTable(d.Class)
		for _, row := range d.Rows {
			got[tab.RawIDs()[row]] = true
		}
		if len(d.Killed) != 0 {
			t.Fatalf("unexpected kills: %v", d.Killed)
		}
	})
	for _, id := range crowded {
		if !got[id] {
			t.Errorf("crowded unit %d missing from feed", id)
		}
	}
	if got[loner] {
		t.Errorf("isolated unit %d marked despite unchanged state", loner)
	}
	// A drain with no intervening writes is empty.
	w.DrainChangeFeed(func(d engine.ClassDelta) {
		if d.Resync || len(d.Rows) != 0 || len(d.Killed) != 0 {
			t.Fatalf("second drain not empty: %+v", d)
		}
	})
}

// TestChangeFeedSpawnKillSetState covers the out-of-tick mutation sites:
// spawns surface as changed rows, kills as ids, SetState as a mark, and a
// checkpoint restore as a resync.
func TestChangeFeedSpawnKillSetState(t *testing.T) {
	sc := core.MustLoad("fig2", core.SrcFig2)
	w, err := sc.NewWorld(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.EnableChangeFeed()
	a, err := w.Spawn("Unit", map[string]value.Value{"x": value.Num(1)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Spawn("Unit", map[string]value.Value{"x": value.Num(2)})
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	w.DrainChangeFeed(func(d engine.ClassDelta) {
		if d.Resync {
			t.Fatal("spawn must not resync the feed")
		}
		rows += len(d.Rows)
	})
	if rows != 2 {
		t.Fatalf("want 2 spawned rows in feed, got %d", rows)
	}

	if err := w.SetState("Unit", a, "health", value.Num(42)); err != nil {
		t.Fatal(err)
	}
	if err := w.Kill("Unit", b); err != nil {
		t.Fatal(err)
	}
	w.DrainChangeFeed(func(d engine.ClassDelta) {
		if d.Resync {
			t.Fatal("SetState/Kill must not resync the feed")
		}
		tab := w.ClassTable(d.Class)
		if len(d.Rows) != 1 || tab.RawIDs()[d.Rows[0]] != a {
			t.Fatalf("want the SetState row, got rows=%v", d.Rows)
		}
		if len(d.Killed) != 1 || d.Killed[0] != b {
			t.Fatalf("want kill of %d, got %v", b, d.Killed)
		}
	})

	cp, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Restore(cp); err != nil {
		t.Fatal(err)
	}
	resynced := false
	w.DrainChangeFeed(func(d engine.ClassDelta) { resynced = resynced || d.Resync })
	if !resynced {
		t.Fatal("checkpoint restore must resync the feed")
	}
}

// TestChangeFeedConfigInvariance is the feed's differential wall: under
// spawn/kill churn the drained stream — row lists, kill lists, class order —
// is bit-identical across Workers, Partitions, Exec and DisableStats. The
// DisableStats arms are the regression guard for the stats-never-feed-
// execution rule: the feed is driven by the writes, not by the counters.
func TestChangeFeedConfigInvariance(t *testing.T) {
	type cfg struct {
		name string
		opts engine.Options
	}
	cfgs := []cfg{
		{"w1-scalar", engine.Options{Workers: 1, Exec: plan.ExecScalar}},
		{"w4-vec", engine.Options{Workers: 4, Exec: plan.ExecVectorized}},
		{"w4-p4", engine.Options{Workers: 4, Partitions: 4}},
		{"w1-scalar-nostats", engine.Options{Workers: 1, Exec: plan.ExecScalar, DisableStats: true}},
		{"w4-p4-vec-nostats", engine.Options{Workers: 4, Partitions: 4, Exec: plan.ExecVectorized, DisableStats: true}},
	}
	run := func(opts engine.Options) string {
		sc := core.MustLoad("fig2", core.SrcFig2)
		w, err := sc.NewWorld(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.PopulateUnits(w, workload.Uniform(300, 120, 120, 7), 10); err != nil {
			t.Fatal(err)
		}
		w.EnableChangeFeed()
		rng := rand.New(rand.NewSource(11))
		var b strings.Builder
		for tick := 0; tick < 8; tick++ {
			if err := w.RunTick(); err != nil {
				t.Fatal(err)
			}
			// Churn between ticks: spawns and kills chosen by a fixed rng
			// over deterministic live-id state.
			for i := 0; i < 3; i++ {
				if _, err := w.Spawn("Unit", map[string]value.Value{
					"x": value.Num(rng.Float64() * 120),
					"y": value.Num(rng.Float64() * 120),
				}); err != nil {
					t.Fatal(err)
				}
			}
			ids := w.IDs("Unit")
			for i := 0; i < 2 && len(ids) > 0; i++ {
				victim := ids[rng.Intn(len(ids))]
				if err := w.Kill("Unit", victim); err != nil {
					t.Fatal(err)
				}
				ids = w.IDs("Unit")
			}
			fmt.Fprintf(&b, "tick %d:\n%s", tick, feedString(w))
		}
		return b.String()
	}
	want := run(cfgs[0].opts)
	for _, c := range cfgs[1:] {
		if got := run(c.opts); got != want {
			t.Errorf("%s: changefeed diverged from %s baseline\nbaseline:\n%s\ngot:\n%s",
				c.name, cfgs[0].name, want, got)
		}
	}
}
