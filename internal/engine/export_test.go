package engine

// Test-only exports for the differential pin tests in
// analysis_diff_test.go (package engine_test): snapshots of the
// physical-plan decisions the engine now derives through
// internal/analysis, plus verbatim copies of the pre-refactor ad-hoc
// logic those decisions must stay identical to.

import (
	"math"

	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/sgl/ast"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// VecDecisions captures a class's batch-kernel eligibility decisions.
type VecDecisions struct {
	CrossSelfEmit bool
	Phases        []bool // per phase: compiled to batch form
	VecUpdates    []int  // update-rule attr indexes on the kernel path
	ScalarUpdates []int  // update-rule attr indexes kept scalar
}

// VecDecisions reports the live (analysis-routed) decisions.
func (w *World) VecDecisions(class string) VecDecisions {
	rt := w.classes[class]
	d := VecDecisions{CrossSelfEmit: rt.ai.CrossSelfEmit, Phases: make([]bool, len(rt.plan.Phases))}
	if rt.vec != nil {
		for p := range rt.plan.Phases {
			d.Phases[p] = rt.vec.phases[p] != nil
		}
		for _, u := range rt.vec.updates {
			d.VecUpdates = append(d.VecUpdates, u.attrIdx)
		}
		for _, u := range rt.vec.scalarUpdates {
			d.ScalarUpdates = append(d.ScalarUpdates, u.AttrIdx)
		}
	} else {
		for _, u := range rt.plan.Updates {
			d.ScalarUpdates = append(d.ScalarUpdates, u.AttrIdx)
		}
	}
	return d
}

// OldVecDecisions recomputes the same decisions with the pre-refactor
// logic: the inline classCrossEmitsSelf walk, per-update payload-kind
// checks and the structural-check-interleaved phase compiler.
func (w *World) OldVecDecisions(class string) VecDecisions {
	rt := w.classes[class]
	d := VecDecisions{Phases: make([]bool, len(rt.plan.Phases))}

	var vecUpdates, scalarUpdates []int
	anyVec := false
	for _, u := range rt.plan.Updates {
		kind := rt.cls.State[u.AttrIdx].Kind
		_, ok := vexpr.Compile(u.Src.Expr)
		if !ok || (kind != value.KindNumber && kind != value.KindBool && kind != value.KindRef) {
			scalarUpdates = append(scalarUpdates, u.AttrIdx)
			continue
		}
		vecUpdates = append(vecUpdates, u.AttrIdx)
		anyVec = true
	}

	d.CrossSelfEmit = oldClassCrossEmitsSelf(rt)
	anyPhase := false
	if !d.CrossSelfEmit {
		for p, steps := range rt.plan.Phases {
			if len(steps) == 0 {
				continue
			}
			if vp := oldCompileVecPhase(rt, steps); vp != nil {
				d.Phases[p] = true
				anyPhase = true
			}
		}
	}
	// Pre-refactor buildVecPlan returned nil when nothing compiled, which
	// reported every rule as scalar.
	if !anyVec && !anyPhase {
		for _, u := range rt.plan.Updates {
			d.ScalarUpdates = append(d.ScalarUpdates, u.AttrIdx)
		}
		return d
	}
	d.VecUpdates, d.ScalarUpdates = vecUpdates, scalarUpdates
	return d
}

// oldClassCrossEmitsSelf is the pre-refactor vector.go walk, verbatim.
func oldClassCrossEmitsSelf(rt *classRT) bool {
	var walk func(steps []compile.Step) bool
	walk = func(steps []compile.Step) bool {
		for _, s := range steps {
			switch s := s.(type) {
			case *compile.EmitStep:
				if s.TargetFn != nil && s.Class == rt.name && s.AccumSlot < 0 {
					return true
				}
			case *compile.IfStep:
				if walk(s.Then) || walk(s.Else) {
					return true
				}
			case *compile.AccumStep:
				if walk(s.Body) {
					return true
				}
				if s.Join != nil && walk(s.Join.Inner) {
					return true
				}
			case *compile.AtomicStep:
			}
		}
		return false
	}
	for _, steps := range rt.plan.Phases {
		if walk(steps) {
			return true
		}
	}
	return false
}

// oldCompileVecPhase is the pre-refactor compileVecPhase with its
// structural checks interleaved with expression compilation, verbatim.
func oldCompileVecPhase(rt *classRT, steps []compile.Step) *vecPhase {
	vp := &vecPhase{maxSlot: -1}
	defined := make(map[int]bool)
	out, ok := oldCompileVecSteps(rt, steps, defined, 0, vp)
	if !ok {
		return nil
	}
	vp.steps = out
	return vp
}

func oldCompileVecSteps(rt *classRT, steps []compile.Step, defined map[int]bool, depth int, vp *vecPhase) ([]vecStep, bool) {
	slotOK := func(slot int) bool { return defined[slot] }
	var out []vecStep
	for _, s := range steps {
		switch s := s.(type) {
		case *compile.LetStep:
			prog, ok := vexpr.CompileWithSlots(s.Src, slotOK)
			if !ok {
				return nil, false
			}
			defined[s.Slot] = true
			if s.Slot > vp.maxSlot {
				vp.maxSlot = s.Slot
			}
			vp.kernels += prog.Kernels()
			vp.needIDs = vp.needIDs || prog.NeedIDs()
			out = append(out, &vecLet{slot: s.Slot, prog: prog})
		case *compile.IfStep:
			cond, ok := vexpr.CompileWithSlots(s.CondSrc, slotOK)
			if !ok {
				return nil, false
			}
			st := &vecIf{cond: cond, condBuf: vp.newBuf(), depth: depth}
			vp.kernels += cond.Kernels()
			vp.needIDs = vp.needIDs || cond.NeedIDs()
			if depth+1 > vp.maxDepth {
				vp.maxDepth = depth + 1
			}
			if st.then, ok = oldCompileVecSteps(rt, s.Then, defined, depth+1, vp); !ok {
				return nil, false
			}
			if st.els, ok = oldCompileVecSteps(rt, s.Else, defined, depth+1, vp); !ok {
				return nil, false
			}
			out = append(out, st)
		case *compile.EmitStep:
			if s.TargetFn != nil || s.SetInsert || s.AccumSlot >= 0 || s.Class != rt.name {
				return nil, false
			}
			kind := rt.cls.Effects[s.AttrIdx].Kind
			if kind != value.KindNumber && kind != value.KindBool && kind != value.KindRef {
				return nil, false
			}
			val, ok := vexpr.CompileWithSlots(s.ValSrc, slotOK)
			if !ok {
				return nil, false
			}
			st := &vecEmit{attrIdx: s.AttrIdx, kind: kind, val: val, valBuf: vp.newBuf(), keyBuf: -1}
			vp.kernels += val.Kernels()
			vp.needIDs = vp.needIDs || val.NeedIDs()
			if s.KeyFn != nil {
				key, ok := vexpr.CompileWithSlots(s.KeySrc, slotOK)
				if !ok {
					return nil, false
				}
				st.key, st.keyBuf = key, vp.newBuf()
				vp.kernels += key.Kernels()
				vp.needIDs = vp.needIDs || key.NeedIDs()
			}
			out = append(out, st)
		default: // AccumStep, AtomicStep
			return nil, false
		}
	}
	return out, true
}

// SiteBatchSummary reports the batched-join compilation outcome of one
// accum site: whether the single-emission fold and the residual conjuncts
// lowered to gathered kernels.
type SiteBatchSummary struct {
	Class, Source string
	VecFold       bool
	VecResidual   bool
}

// SiteBatchSummaries lists every accum site's batch plan in collection
// order.
func (w *World) SiteBatchSummaries() []SiteBatchSummary {
	var out []SiteBatchSummary
	for _, site := range w.sites {
		s := SiteBatchSummary{Class: site.class, Source: site.step.SourceClass}
		if b := site.batch; b != nil {
			s.VecFold = b.vec
			s.VecResidual = len(b.resProgs) > 0
		}
		out = append(out, s)
	}
	return out
}

// AttrKey names one (class, attr) pair in a summary.
type AttrKey struct {
	Class string
	Attr  int
}

// TxnSiteSummary captures one atomic site's admission classification.
type TxnSiteSummary struct {
	Class      string
	Analyzable bool
	Cols       []int
	Slots      []int
	NeedIDs    bool
	Views      []AttrKey
	Bases      []string
	KernelCons int // constraints with a compiled mask kernel
}

func summarizeTxnSite(site *txnSite) TxnSiteSummary {
	s := TxnSiteSummary{
		Class:      site.rt.name,
		Analyzable: site.analyzable,
		Cols:       append([]int(nil), site.cols...),
		Slots:      append([]int(nil), site.slots...),
		NeedIDs:    site.needIDs,
	}
	for _, v := range site.views {
		s.Views = append(s.Views, AttrKey{Class: v.rt.name, Attr: v.attr})
	}
	for _, b := range site.bases {
		s.Bases = append(s.Bases, b.class)
	}
	for _, c := range site.cons {
		if c.prog != nil {
			s.KernelCons++
		}
	}
	return s
}

// forEachTxnSite visits every atomic site in the deterministic collection
// order of collectTxnSites.
func (w *World) forEachTxnSite(f func(rt *classRT, step *compile.AtomicStep)) {
	for _, rt := range w.order {
		var walk func(steps []compile.Step)
		walk = func(steps []compile.Step) {
			for _, s := range steps {
				switch s := s.(type) {
				case *compile.IfStep:
					walk(s.Then)
					walk(s.Else)
				case *compile.AccumStep:
					walk(s.Body)
					if s.Join != nil {
						walk(s.Join.Inner)
					}
				case *compile.AtomicStep:
					f(rt, s)
					walk(s.Body)
				}
			}
		}
		for _, steps := range rt.plan.Phases {
			walk(steps)
		}
		for _, h := range rt.plan.Handlers {
			walk(h.Body)
		}
	}
}

// TxnSiteSummaries reports the live (analysis-routed) atomic-site
// classifications in collection order.
func (w *World) TxnSiteSummaries() []TxnSiteSummary {
	var out []TxnSiteSummary
	w.forEachTxnSite(func(rt *classRT, step *compile.AtomicStep) {
		out = append(out, summarizeTxnSite(w.txnSites[step]))
	})
	return out
}

// OldTxnSiteSummaries recomputes every atomic site with the pre-refactor
// consAnalysis walk, verbatim.
func (w *World) OldTxnSiteSummaries() []TxnSiteSummary {
	var out []TxnSiteSummary
	w.forEachTxnSite(func(rt *classRT, step *compile.AtomicStep) {
		out = append(out, summarizeTxnSite(w.oldAnalyzeTxnSite(rt, step)))
	})
	return out
}

// oldConsAnalysis is the pre-refactor constraint walk, verbatim.
type oldConsAnalysis struct {
	w  *World
	rt *classRT

	ok       bool
	kernelOK bool

	cols    []int
	slots   []int
	needIDs bool
	views   []txnViewAttr
	bases   []txnBase
}

func (w *World) oldAnalyzeTxnSite(rt *classRT, step *compile.AtomicStep) *txnSite {
	site := &txnSite{rt: rt, step: step, txnProgs: &txnProgs{analyzable: true}}
	colSeen := make(map[int]bool)
	slotSeen := make(map[int]bool)
	viewSeen := make(map[txnViewKey]bool)
	for ci, src := range step.Srcs {
		c := txnConstraint{fn: step.Constraints[ci]}
		a := &oldConsAnalysis{w: w, rt: rt, ok: true, kernelOK: true}
		a.walk(src)
		if !a.ok {
			site.analyzable = false
			site.cons = append(site.cons, c)
			continue
		}
		site.bases = append(site.bases, a.bases...)
		if a.kernelOK {
			if prog, ok := vexpr.CompileWithSlots(src, func(int) bool { return true }); ok {
				c.prog = prog
				site.needIDs = site.needIDs || a.needIDs || prog.NeedIDs()
				for _, col := range a.cols {
					if !colSeen[col] {
						colSeen[col] = true
						site.cols = append(site.cols, col)
					}
				}
				for _, sl := range a.slots {
					if !slotSeen[sl] {
						slotSeen[sl] = true
						site.slots = append(site.slots, sl)
					}
				}
				for _, va := range a.views {
					k := txnViewKey{class: va.rt.name, attr: va.attr}
					if !viewSeen[k] {
						viewSeen[k] = true
						site.views = append(site.views, va)
					}
				}
			}
		}
		site.cons = append(site.cons, c)
	}
	return site
}

func (a *oldConsAnalysis) addCol(attr int) {
	a.cols = append(a.cols, attr)
	if a.rt.hasRule[attr] {
		prog := vecRuleProg(a.rt, attr)
		if prog == nil {
			a.kernelOK = false
			return
		}
		a.views = append(a.views, txnViewAttr{rt: a.rt, attr: attr, prog: prog})
	}
}

func (a *oldConsAnalysis) walk(e ast.Expr) {
	if !a.ok {
		return
	}
	switch e := e.(type) {
	case *ast.NumLit, *ast.BoolLit, *ast.StrLit, *ast.NullLit:
	case *ast.Ident:
		switch e.Bind.Kind {
		case ast.BindStateAttr:
			a.addCol(e.Bind.AttrIdx)
		case ast.BindLocal, ast.BindIter:
			a.slots = append(a.slots, e.Bind.Slot)
		case ast.BindSelf:
			a.needIDs = true
		default:
			a.ok = false
		}
	case *ast.FieldExpr:
		a.walkField(e)
	case *ast.UnaryExpr:
		a.walk(e.X)
	case *ast.BinaryExpr:
		a.walk(e.X)
		a.walk(e.Y)
	case *ast.CondExpr:
		a.walk(e.C)
		a.walk(e.T)
		a.walk(e.F)
	case *ast.CallExpr:
		if e.Builtin == ast.BSelfFn {
			a.needIDs = true
		}
		for _, arg := range e.Args {
			a.walk(arg)
		}
	default:
		a.ok = false
	}
}

func (a *oldConsAnalysis) walkField(e *ast.FieldExpr) {
	if !a.stableBase(e.X) {
		a.ok = false
		return
	}
	trt := a.w.classes[e.Class]
	if trt == nil {
		a.ok = false
		return
	}
	if trt.hasRule[e.AttrIdx] {
		a.bases = append(a.bases, txnBase{fn: expr.Compile(e.X), class: e.Class})
		prog := vecRuleProg(trt, e.AttrIdx)
		if prog == nil {
			a.kernelOK = false
			return
		}
		a.views = append(a.views, txnViewAttr{rt: trt, attr: e.AttrIdx, prog: prog})
	}
}

func (a *oldConsAnalysis) stableBase(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.NullLit:
		return true
	case *ast.Ident:
		switch e.Bind.Kind {
		case ast.BindSelf:
			a.needIDs = true
			return true
		case ast.BindLocal, ast.BindIter:
			a.slots = append(a.slots, e.Bind.Slot)
			return true
		case ast.BindStateAttr:
			if e.Ty.Kind != value.KindRef || a.rt.hasRule[e.Bind.AttrIdx] {
				return false
			}
			a.cols = append(a.cols, e.Bind.AttrIdx)
			return true
		}
		return false
	case *ast.FieldExpr:
		if !a.stableBase(e.X) {
			return false
		}
		trt := a.w.classes[e.Class]
		return trt != nil && e.Ty.Kind == value.KindRef && !trt.hasRule[e.AttrIdx]
	case *ast.CallExpr:
		if e.Builtin == ast.BSelfFn {
			a.needIDs = true
			return true
		}
		return false
	}
	return false
}

// ReachDim is one exported derived reach dimension.
type ReachDim struct {
	Axis   int
	Lo, Hi float64
}

// ReachComparison pairs the live and pre-refactor reach derivations of one
// accum site at the same world state.
type ReachComparison struct {
	Class   string
	Source  string
	Phase   int
	Spatial bool
	Reach   []ReachDim
	Shared  bool // live site.shared after the last prepare

	OldSpatial bool
	OldReach   []ReachDim
}

// CompareReachDerivations re-derives every indexed accum site's
// interaction reach twice at the current world state — once through the
// live analysis-routed deriveSiteReach, once through the pre-refactor copy
// — and reports both. Valid on a partitioned world after at least one
// tick (layouts exist).
func (w *World) CompareReachDerivations() []ReachComparison {
	var out []ReachComparison
	for _, site := range w.sites {
		if site.step.Join == nil || site.step.SourceFn != nil {
			continue
		}
		srcRT := w.classes[site.step.SourceClass]
		rc := ReachComparison{
			Class:  site.class,
			Source: site.step.SourceClass,
			Phase:  site.phase,
			Shared: site.shared,
		}
		saved := append([]dimReach(nil), site.reach...)
		rc.Spatial = w.deriveSiteReach(site, srcRT)
		for _, d := range site.reach {
			rc.Reach = append(rc.Reach, ReachDim{Axis: d.axis, Lo: d.lo, Hi: d.hi})
		}
		site.reach = append(site.reach[:0], saved...)
		rc.OldSpatial, rc.OldReach = w.oldDeriveSiteReach(site, srcRT)
		out = append(out, rc)
	}
	return out
}

// oldDeriveSiteReach is the pre-refactor derivation, verbatim except that
// it evaluates into local buffers and returns the reach instead of
// mutating the site.
func (w *World) oldDeriveSiteReach(site *siteRT, srcRT *classRT) (bool, []ReachDim) {
	if site.phase < 0 {
		return false, nil
	}
	probeRT := w.classes[site.class]
	pc := probeRT.prt
	if pc.layout.Axes == 0 {
		return false, nil
	}
	j := site.step.Join
	dims := len(j.Ranges)
	reach := make([]ReachDim, 0, dims)
	for d := 0; d < dims; d++ {
		reach = append(reach, ReachDim{Axis: -1})
	}

	naxes := pc.layout.Axes
	axisPos := make([][]float64, naxes)
	boxLo := make([][]float64, dims)
	boxHi := make([][]float64, dims)
	anyDim := false
	for d := range j.Ranges {
		if j.Ranges[d].SelfOnly {
			anyDim = true
		}
	}
	if !anyDim {
		return false, nil
	}
	ctx := expr.Ctx{W: w, Class: site.class}
	tab := probeRT.tab
	for r, ok := range tab.AliveMask() {
		if !ok {
			continue
		}
		ctx.SelfID = tab.ID(r)
		ctx.Self = rowReader{rt: probeRT, row: r}
		for k := 0; k < naxes; k++ {
			axisPos[k] = append(axisPos[k], tab.NumColumn(pc.axes[k])[r])
		}
		for d, rd := range j.Ranges {
			if !rd.SelfOnly {
				continue
			}
			lo, hi := evalDimBounds(&ctx, rd)
			boxLo[d] = append(boxLo[d], lo)
			boxHi[d] = append(boxHi[d], hi)
		}
	}

	anchored := false
	for d, rd := range j.Ranges {
		if !rd.SelfOnly {
			continue
		}
		best, bestSpan := -1, math.Inf(1)
		var bestLo, bestHi float64
		for k := 0; k < naxes; k++ {
			rLo, rHi := plan.InteractionRadius(axisPos[k], boxLo[d], boxHi[d])
			if !plan.BoundedReach(rLo, rHi) {
				continue
			}
			if span := rLo + rHi; span < bestSpan {
				best, bestSpan = k, span
				bestLo, bestHi = rLo, rHi
			}
		}
		if best >= 0 {
			reach[d] = ReachDim{Axis: best, Lo: bestLo, Hi: bestHi}
			anchored = true
		}
	}
	return anchored, reach
}
