package engine

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/value"
)

// AdmitOrdered is the core greedy admission algorithm (§3.1): transactions
// are considered in deterministic (class, source id) order. Each candidate's
// emissions are applied tentatively to the effect accumulators; its
// constraints are then evaluated against the *tentative post-update state*
// (old state with expression update rules replayed over the accumulated
// effects, including every previously committed transaction). If any
// constraint fails, the candidate's emissions are rolled back and the
// transaction aborts — none of its effects apply, giving atomicity.
func AdmitOrdered(ctx *UpdateCtx, txns []*Txn) error {
	sort.SliceStable(txns, func(i, j int) bool {
		if txns[i].Class != txns[j].Class {
			return txns[i].Class < txns[j].Class
		}
		return txns[i].Source < txns[j].Source
	})
	return AdmitPrepared(ctx, txns)
}

// AdmitPrepared runs greedy admission over transactions in the exact order
// given. Custom policies (priority, fairness rotation) order the slice
// themselves and delegate here.
//
// How the order executes is an engine decision (Options.Txn): the serial
// loop validates one transaction at a time by rule replay; the batched
// driver (txnbatch.go) groups conflicting transactions, validates
// non-conflicting ones whole-batch against a columnar tentative view, fans
// conflict groups across the worker pool and routes single-partition
// groups partition-locally. Both produce bit-identical admission outcomes
// for any policy order, worker count and partition count.
func AdmitPrepared(ctx *UpdateCtx, txns []*Txn) error {
	if len(txns) == 0 {
		return nil
	}
	w := ctx.w
	if w.txnAdmitMode(txns) == plan.TxnBatched {
		w.admitBatched(txns)
		return nil
	}
	w.admitSerial(txns)
	return nil
}

func (w *World) admitSerial(txns []*Txn) {
	tw := &tentWorld{w: w}
	for _, t := range txns {
		admitOne(w, tw, t)
	}
}

// admitOne admits a single transaction: §3.1 atomicity means a dead source
// *or any dead emission target* aborts the whole transaction before
// anything applies — a half-applied purchase from a despawned seller would
// otherwise duplicate goods. Targets are resolved up front; only a fully
// resolvable transaction applies, then validates, then rolls back on
// constraint failure.
func admitOne(w *World, tw *tentWorld, t *Txn) {
	if w.classes[t.Class].tab.Row(t.Source) < 0 {
		t.Aborted = true
		return
	}
	for i := range t.Emissions {
		e := &t.Emissions[i]
		if w.classes[e.Class].tab.Row(e.Target) < 0 {
			t.Aborted = true
			return
		}
	}
	for i := range t.Emissions {
		e := &t.Emissions[i]
		rt := w.classes[e.Class]
		rt.fx[e.AttrIdx].add(rt.tab.Row(e.Target), e.Val, e.Key)
	}
	if constraintsHold(w, tw, t) {
		return
	}
	for i := range t.Emissions {
		e := &t.Emissions[i]
		rt := w.classes[e.Class]
		rt.fx[e.AttrIdx].acc[rt.tab.Row(e.Target)].Remove(e.Val, e.Key)
	}
	t.Aborted = true
}

func constraintsHold(w *World, tw *tentWorld, t *Txn) bool {
	rt := w.classes[t.Class]
	row := rt.tab.Row(t.Source)
	if row < 0 {
		return false // source died; abort
	}
	ectx := expr.Ctx{
		W:      tw,
		Class:  t.Class,
		SelfID: t.Source,
		Self:   tentRowReader{tw: tw, rt: rt, row: row},
		Frame:  t.Frame,
	}
	for _, c := range t.Constraints {
		if !c(&ectx).AsBool() {
			return false
		}
	}
	return true
}

// tentWorld serves tentative post-update state: for attributes with an
// expression update rule, the rule is replayed over the currently
// accumulated effects; other attributes read their tick-start value.
// Update rules by definition read *old* state plus combined effects
// (new = f(old, fx)), so rule replay evaluates against the committed
// snapshot — there is no recursion through the tentative view.
type tentWorld struct {
	w *World
}

func (t *tentWorld) StateValue(class string, id value.ID, attrIdx int) (value.Value, bool) {
	rt, ok := t.w.classes[class]
	if !ok {
		return value.Value{}, false
	}
	row := rt.tab.Row(id)
	if row < 0 {
		return value.Value{}, false
	}
	if !rt.hasRule[attrIdx] {
		return rt.tab.At(row, attrIdx), true
	}
	for _, u := range rt.plan.Updates {
		if u.AttrIdx != attrIdx {
			continue
		}
		ectx := expr.Ctx{
			W:          t.w, // rules read old state
			Class:      class,
			SelfID:     id,
			Self:       rowReader{rt: rt, row: row},
			Effects:    fxReader{rt: rt, row: row},
			EffectZero: effectZeroFn(rt),
		}
		return u.Fn(&ectx), true
	}
	return rt.tab.At(row, attrIdx), true
}

// tentRowReader reads the executing object's attributes through the
// tentative view, so that constraints like `gold >= 0` see the post-update
// balance.
type tentRowReader struct {
	tw  *tentWorld
	row int
	rt  *classRT
}

func (r tentRowReader) Attr(attrIdx int) value.Value {
	id := r.rt.tab.ID(r.row)
	v, _ := r.tw.StateValue(r.rt.name, id, attrIdx)
	return v
}
