package engine

import (
	"math"
	"sync/atomic"

	"repro/internal/combinator"
	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/value"
)

// emitSink receives effect emissions and transaction intents. The serial
// executor writes straight into the world's effect buffers; parallel
// workers write into private buffers merged afterwards (§4.2: effect
// computation needs no synchronization).
type emitSink interface {
	emit(w *World, e Emission)
	addTxn(t *Txn)
}

// directSink writes into the world's effect buffers.
type directSink struct{ w *World }

func (d directSink) emit(w *World, e Emission) {
	rt := w.classes[e.Class]
	row := rt.tab.Row(e.Target)
	if row < 0 {
		return // dangling target: contribution is dropped
	}
	rt.fx[e.AttrIdx].add(row, e.Val, e.Key)
}

func (d directSink) addTxn(t *Txn) { d.w.txns = append(d.w.txns, t) }

// execCtx executes compiled steps for one row at a time.
type execCtx struct {
	w     *World
	ctx   expr.Ctx
	frame []value.Value
	accum []*combinator.Accumulator // active accum accumulators by slot

	rt  *classRT
	row int
	id  value.ID

	sink   emitSink
	curTxn *Txn

	// scratch buffers reused across rows
	idsBuf []value.ID
	loBuf  []float64
	hiBuf  []float64
}

func newExecCtx(w *World, sink emitSink, slots int) *execCtx {
	x := &execCtx{
		w:     w,
		frame: make([]value.Value, slots),
		accum: make([]*combinator.Accumulator, slots),
		sink:  sink,
	}
	x.ctx.W = w
	x.ctx.Frame = x.frame
	return x
}

// bindRow points the context at one executing object.
func (x *execCtx) bindRow(rt *classRT, row int) {
	x.rt, x.row, x.id = rt, row, rt.tab.ID(row)
	x.ctx.Class = rt.name
	x.ctx.SelfID = x.id
	x.ctx.Self = rowReader{rt: rt, row: row}
}

func (x *execCtx) runSteps(steps []compile.Step) {
	for _, s := range steps {
		switch s := s.(type) {
		case *compile.LetStep:
			x.frame[s.Slot] = s.Fn(&x.ctx)
		case *compile.IfStep:
			if s.Cond(&x.ctx).AsBool() {
				x.runSteps(s.Then)
			} else if s.Else != nil {
				x.runSteps(s.Else)
			}
		case *compile.EmitStep:
			x.runEmit(s)
		case *compile.AtomicStep:
			x.runAtomic(s)
		case *compile.AccumStep:
			x.runAccum(s)
		}
	}
}

func (x *execCtx) runEmit(s *compile.EmitStep) {
	val := s.ValFn(&x.ctx)
	if s.AccumSlot >= 0 {
		acc := x.accum[s.AccumSlot]
		var key float64
		if s.KeyFn != nil {
			key = s.KeyFn(&x.ctx).AsNumber()
		}
		acc.Add(val, key)
		return
	}
	target := x.id
	if s.TargetFn != nil {
		ref := s.TargetFn(&x.ctx)
		if ref.IsNullRef() {
			return
		}
		target = ref.AsRef()
	}
	var key float64
	if s.KeyFn != nil {
		key = s.KeyFn(&x.ctx).AsNumber()
	}
	e := Emission{Class: s.Class, Target: target, AttrIdx: s.AttrIdx, Val: val, Key: key, SetInsert: s.SetInsert}
	if x.w.tracer != nil {
		attr := x.w.classes[s.Class].cls.Effects[s.AttrIdx].Name
		x.w.tracer(x.w.tick, x.rt.name, x.id, s.Class, target, attr, val)
	}
	if x.curTxn != nil {
		x.curTxn.Emissions = append(x.curTxn.Emissions, e)
		return
	}
	x.sink.emit(x.w, e)
}

func (x *execCtx) runAtomic(s *compile.AtomicStep) {
	txn := &Txn{
		Class:       x.rt.name,
		Source:      x.id,
		Constraints: s.Constraints,
	}
	txn.Frame = append([]value.Value(nil), x.frame...)
	prev := x.curTxn
	x.curTxn = txn
	x.runSteps(s.Body)
	x.curTxn = prev
	if len(txn.Emissions) > 0 {
		x.sink.addTxn(txn)
	}
}

func (x *execCtx) runAccum(s *compile.AccumStep) {
	site := x.w.siteIndex[s]
	acc := combinator.New(s.Comb, s.ValKind)
	x.accum[s.Slot] = &acc

	srcRT := x.w.classes[s.SourceClass]
	iterSlot := s.IterSlot

	runBody := func(id value.ID) {
		x.frame[iterSlot] = value.Ref(id)
		x.runSteps(s.Body)
	}

	switch {
	case s.SourceFn != nil:
		// Iterate a computed set of refs (deterministic element order).
		set := s.SourceFn(&x.ctx).AsSet()
		for _, e := range set.Elems() {
			if e.Kind() == value.KindRef && srcRT.tab.Has(e.AsRef()) {
				runBody(e.AsRef())
			}
		}
	case site == nil || site.strategy == plan.NestedLoop:
		tab := srcRT.tab
		for r := 0; r < tab.Cap(); r++ {
			if tab.Alive(r) {
				runBody(tab.ID(r))
			}
		}
		if site != nil {
			// Upper bound; the cost model treats NL matches as whole-scan.
			site.observe(x.w, 1, int64(tab.Len()), nil, nil)
		}
	case site.strategy == plan.HashIndex:
		key := site.eqKey(&x.ctx)
		ids := site.hash.Lookup(key)
		for _, id := range ids {
			runBody(id)
		}
		site.observe(x.w, 1, int64(len(ids)), nil, nil)
	default: // RangeTreeIndex or GridIndex
		lo, hi := x.evalBox(site)
		x.idsBuf = x.idsBuf[:0]
		x.idsBuf = site.tree.Query(lo, hi, x.idsBuf)
		for _, id := range x.idsBuf {
			runBody(id)
		}
		site.observe(x.w, 1, int64(len(x.idsBuf)), lo, hi)
	}

	// Publish the combined result for the `in` block and later steps.
	v, ok := acc.Result()
	if !ok {
		v = value.Zero(s.Comb.ResultKind(s.ValKind))
	}
	x.frame[s.Slot] = v
	x.accum[s.Slot] = nil
}

// evalBox computes the probe rectangle for the current row from the site's
// range dimensions.
func (x *execCtx) evalBox(site *siteRT) (lo, hi []float64) {
	d := len(site.step.Join.Ranges)
	if cap(x.loBuf) < d {
		x.loBuf = make([]float64, d)
		x.hiBuf = make([]float64, d)
	}
	lo, hi = x.loBuf[:d], x.hiBuf[:d]
	for i, r := range site.step.Join.Ranges {
		l := math.Inf(-1)
		for _, f := range r.Lo {
			if v := f(&x.ctx).AsNumber(); v > l {
				l = v
			}
		}
		h := math.Inf(1)
		for _, f := range r.Hi {
			if v := f(&x.ctx).AsNumber(); v < h {
				h = v
			}
		}
		lo[i], hi[i] = l, h
	}
	return lo, hi
}

// eqKey evaluates the hash-join key for the current row.
func (s *siteRT) eqKey(ctx *expr.Ctx) value.Value {
	return s.step.Join.Eqs[0].Key(ctx)
}

// observe records execution feedback. Counters use atomics because the
// parallel effect phase probes sites from several workers; the box-extent
// EMA is sampled under a mutex on a small fraction of probes.
func (s *siteRT) observe(w *World, probes, matches int64, lo, hi []float64) {
	if w.opts.DisableStats {
		return
	}
	p := atomic.AddInt64(&s.stats.Probes, probes)
	atomic.AddInt64(&s.stats.Matches, matches)
	if lo != nil && p&15 == 1 {
		ext := 0.0
		for d := range lo {
			ext += hi[d] - lo[d]
		}
		s.mu.Lock()
		s.boxExtent.Add(ext / float64(len(lo)))
		s.mu.Unlock()
	}
}

// prepareSites runs once per tick before the effect phase: it lets each
// site's selector choose this tick's strategy from feedback statistics and
// builds the per-tick indexes (§4.1's multi-plan switching).
func (w *World) prepareSites() {
	for _, site := range w.sites {
		st := site.step
		if st.SourceFn != nil || st.Join == nil {
			site.strategy = plan.NestedLoop
			continue
		}
		srcRT := w.classes[st.SourceClass]
		n := srcRT.tab.Len()
		p := w.classes[site.class].tab.Len()
		if site.phase >= 0 && w.classes[site.class].plan.NumPhases > 1 {
			// Only rows in this phase probe; approximate evenly.
			p = p/w.classes[site.class].plan.NumPhases + 1
		}

		if w.opts.Strategy != plan.Auto {
			site.strategy = forceStrategy(w.opts.Strategy, site)
		} else {
			kHat := 8.0 // optimistic prior before feedback arrives
			var sstats = site.stats
			if w.opts.DisableStats {
				sstats = nil
			}
			site.strategy = forceStrategy(
				site.selector.Choose(site.candidates, n, p, kHat, len(st.Join.Ranges), sstats), site)
		}
		w.buildSiteIndex(site, srcRT, n)
	}
}

// forceStrategy clamps a forced strategy to what the site supports.
func forceStrategy(s plan.Strategy, site *siteRT) plan.Strategy {
	for _, c := range site.candidates {
		if c == s {
			return s
		}
	}
	return site.candidates[0]
}

func (w *World) buildSiteIndex(site *siteRT, srcRT *classRT, n int) {
	site.tree, site.hash = nil, nil
	j := site.step.Join
	switch site.strategy {
	case plan.RangeTreeIndex:
		site.dims = site.dims[:0]
		for _, r := range j.Ranges {
			site.dims = append(site.dims, r.AttrIdx)
		}
		entries := make([]index.Entry, 0, n)
		coords := make([]float64, n*len(site.dims))
		k := 0
		srcRT.tab.ForEach(func(row int, id value.ID) {
			c := coords[k : k+len(site.dims) : k+len(site.dims)]
			k += len(site.dims)
			for di, ai := range site.dims {
				c[di] = srcRT.tab.At(row, ai).AsNumber()
			}
			entries = append(entries, index.Entry{ID: id, Coords: c})
		})
		site.tree = index.BuildRangeTree(len(site.dims), entries)
	case plan.GridIndex:
		cell := site.boxExtent.Value()
		if cell <= 0 {
			cell = 64
		}
		entries := make([]index.Entry, 0, n)
		coords := make([]float64, n*2)
		k := 0
		a0, a1 := j.Ranges[0].AttrIdx, j.Ranges[1].AttrIdx
		srcRT.tab.ForEach(func(row int, id value.ID) {
			c := coords[k : k+2 : k+2]
			k += 2
			c[0] = srcRT.tab.At(row, a0).AsNumber()
			c[1] = srcRT.tab.At(row, a1).AsNumber()
			entries = append(entries, index.Entry{ID: id, Coords: c})
		})
		site.tree = index.BuildGrid(cell, entries)
	case plan.HashIndex:
		attr := j.Eqs[0].AttrIdx
		keys := make([]value.Value, 0, n)
		ids := make([]value.ID, 0, n)
		srcRT.tab.ForEach(func(row int, id value.ID) {
			keys = append(keys, srcRT.tab.At(row, attr))
			ids = append(ids, id)
		})
		site.hash = index.BuildHash(keys, ids)
	}
}
