package engine

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/combinator"
	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// emitSink receives effect emissions and transaction intents. The serial
// executor writes straight into the world's effect buffers; parallel
// workers write into private buffers merged afterwards (§4.2: effect
// computation needs no synchronization).
type emitSink interface {
	emit(w *World, e Emission)
	addTxn(t *Txn)
}

// directSink writes into the world's effect buffers.
type directSink struct{ w *World }

func (d directSink) emit(w *World, e Emission) {
	rt := w.classes[e.Class]
	row := rt.tab.Row(e.Target)
	if row < 0 {
		return // dangling target: contribution is dropped
	}
	rt.fx[e.AttrIdx].add(row, e.Val, e.Key)
}

func (d directSink) addTxn(t *Txn) { d.w.txns = append(d.w.txns, t) }

// execCtx executes compiled steps for one row at a time.
type execCtx struct {
	w     *World
	ctx   expr.Ctx
	frame []value.Value
	accum []*combinator.Accumulator // active accum accumulators by slot

	rt  *classRT
	row int
	id  value.ID

	// part is the shared-nothing partition this context executes for
	// (always 0 outside partitioned mode); accum probes resolve their
	// partition-local index through it.
	part int32

	sink   emitSink
	curTxn *Txn

	// scratch buffers reused across rows
	idsBuf []value.ID
	loBuf  []float64
	hiBuf  []float64

	// batched-join scratch (see join.go)
	rowsBuf  []int32
	eqVals   []value.Value
	lanes    [][]float64 // gathered candidate columns, indexed by attr
	idLane   []float64
	valBuf   []float64
	keyBuf   []float64
	resBuf   []float64
	resBuf2  []float64
	bcastBuf []float64
	accEnv   vexpr.Env
	machine  *vexpr.Machine

	// accSlab backs the accumulators runAccum arms, one cell per frame
	// slot, so arming an accum loop never heap-allocates. Sized once at
	// context arming and never regrown mid-run (accum[slot] aliases cells).
	accSlab []combinator.Accumulator

	// probe accounting, flushed into World.execStats when the ctx retires
	probeSeq    int64
	joinProbes  int64
	joinMatches int64
	joinBatched int64
	dictLookups int64
}

// newExecCtx builds a fresh context for concurrent executors (shard and
// partition workers). m is the kernel machine the context's batched joins
// run on; nil allocates a private one. The serial paths use the pooled
// World.serialExecCtx instead.
func newExecCtx(w *World, sink emitSink, slots int, m *vexpr.Machine) *execCtx {
	if m == nil {
		m = new(vexpr.Machine)
	}
	x := &execCtx{
		w:       w,
		frame:   make([]value.Value, slots),
		accum:   make([]*combinator.Accumulator, slots),
		accSlab: make([]combinator.Accumulator, slots),
		sink:    sink,
		machine: m,
	}
	x.ctx.W = w
	x.ctx.Frame = x.frame
	return x
}

// serialExecCtx re-arms the world's pooled serial context, resetting every
// piece of per-pass state a fresh newExecCtx would zero — frame contents
// (runAtomic copies the whole frame into Txn.Frame), accumulator bindings,
// row bindings, probe sequencing — so pooling is invisible to execution.
// Valid only while the tick's arena is held.
func (w *World) serialExecCtx(sink emitSink, slots int) *execCtx {
	x := w.xctx
	if x == nil {
		x = &execCtx{w: w}
		x.ctx.W = w
		w.xctx = x
	}
	if cap(x.accSlab) < slots {
		x.frame = make([]value.Value, slots)
		x.accum = make([]*combinator.Accumulator, slots)
		x.accSlab = make([]combinator.Accumulator, slots)
	}
	x.frame = x.frame[:slots]
	x.accum = x.accum[:slots]
	x.accSlab = x.accSlab[:slots]
	for i := range x.frame {
		x.frame[i] = value.Value{}
		x.accum[i] = nil
	}
	x.ctx.Frame = x.frame
	x.sink = sink
	x.machine = w.arenaMachine()
	x.rt, x.row, x.id = nil, 0, 0
	x.ctx.Class, x.ctx.SelfID, x.ctx.Self = "", 0, nil
	x.part, x.curTxn, x.probeSeq = 0, nil, 0
	return x
}

// updateCtx re-arms the world's pooled update context for one component (or
// the expression-rule step, owner "").
func (w *World) updateCtx(owner string) *UpdateCtx {
	if w.uctx == nil {
		w.uctx = &UpdateCtx{w: w}
	}
	w.uctx.owner = owner
	return w.uctx
}

// bindRow points the context at one executing object.
func (x *execCtx) bindRow(rt *classRT, row int) {
	x.rt, x.row, x.id = rt, row, rt.tab.ID(row)
	x.ctx.Class = rt.name
	x.ctx.SelfID = x.id
	x.ctx.Self = rowReader{rt: rt, row: row}
}

// sitePart resolves the site index this context probes: the partition-local
// one in partitioned mode, the whole-extent parts[0] otherwise (and for
// sites the partitioned prep classified shared).
func (x *execCtx) sitePart(site *siteRT) *sitePart {
	if x.w.parts == nil || site.shared {
		return &site.parts[0]
	}
	return &site.parts[x.part]
}

// flushJoinStats folds the context's probe counters into the world totals.
// Called once per class pass per worker; safe to call concurrently.
func (x *execCtx) flushJoinStats() {
	if !x.w.opts.DisableStats {
		atomic.AddInt64(&x.w.execStats.JoinProbeRows, x.joinProbes)
		atomic.AddInt64(&x.w.execStats.JoinMatchRows, x.joinMatches)
		atomic.AddInt64(&x.w.execStats.JoinBatchedRows, x.joinBatched)
		atomic.AddInt64(&x.w.execStats.DictLookups, x.dictLookups)
	}
	x.joinProbes, x.joinMatches, x.joinBatched, x.dictLookups = 0, 0, 0, 0
}

func (x *execCtx) runSteps(steps []compile.Step) {
	for _, s := range steps {
		switch s := s.(type) {
		case *compile.LetStep:
			x.frame[s.Slot] = s.Fn(&x.ctx)
		case *compile.IfStep:
			if s.Cond(&x.ctx).AsBool() {
				x.runSteps(s.Then)
			} else if s.Else != nil {
				x.runSteps(s.Else)
			}
		case *compile.EmitStep:
			x.runEmit(s)
		case *compile.AtomicStep:
			x.runAtomic(s)
		case *compile.AccumStep:
			x.runAccum(s)
		}
	}
}

func (x *execCtx) runEmit(s *compile.EmitStep) {
	val := s.ValFn(&x.ctx)
	if s.AccumSlot >= 0 {
		acc := x.accum[s.AccumSlot]
		var key float64
		if s.KeyFn != nil {
			key = s.KeyFn(&x.ctx).AsNumber()
		}
		acc.Add(val, key)
		return
	}
	target := x.id
	if s.TargetFn != nil {
		ref := s.TargetFn(&x.ctx)
		if ref.IsNullRef() {
			return
		}
		target = ref.AsRef()
	}
	var key float64
	if s.KeyFn != nil {
		key = s.KeyFn(&x.ctx).AsNumber()
	}
	e := Emission{Class: s.Class, Target: target, AttrIdx: s.AttrIdx, Val: val, Key: key, SetInsert: s.SetInsert}
	if x.w.tracer != nil {
		attr := x.w.classes[s.Class].cls.Effects[s.AttrIdx].Name
		x.w.tracer(x.w.tick, x.rt.name, x.id, s.Class, target, attr, val)
	}
	if x.curTxn != nil {
		x.curTxn.Emissions = append(x.curTxn.Emissions, e)
		return
	}
	x.sink.emit(x.w, e)
}

func (x *execCtx) runAtomic(s *compile.AtomicStep) {
	txn := &Txn{
		Class:       x.rt.name,
		Source:      x.id,
		Constraints: s.Constraints,
		step:        s,
	}
	txn.Frame = append([]value.Value(nil), x.frame...)
	prev := x.curTxn
	x.curTxn = txn
	x.runSteps(s.Body)
	x.curTxn = prev
	if len(txn.Emissions) > 0 {
		x.sink.addTxn(txn)
	}
}

func (x *execCtx) runAccum(s *compile.AccumStep) {
	site := x.w.siteIndex[s]
	// Arm the accumulator in the slot-indexed slab (nested accums occupy
	// distinct slots), so arming never heap-allocates.
	x.accSlab[s.Slot] = combinator.New(s.Comb, s.ValKind)
	acc := &x.accSlab[s.Slot]
	x.accum[s.Slot] = acc

	srcRT := x.w.classes[s.SourceClass]
	iterSlot := s.IterSlot

	runBody := func(id value.ID) {
		x.frame[iterSlot] = value.Ref(id)
		x.runSteps(s.Body)
	}

	switch {
	case s.SourceFn != nil:
		// Iterate a computed set of refs (deterministic element order).
		set := s.SourceFn(&x.ctx).AsSet()
		for _, e := range set.Elems() {
			if e.Kind() == value.KindRef && srcRT.tab.Has(e.AsRef()) {
				runBody(e.AsRef())
			}
		}
	case site != nil && site.batched:
		x.runAccumBatched(s, site, srcRT)
	case site == nil || site.strategy == plan.NestedLoop:
		if site != nil && x.w.parts != nil {
			// Partitioned scan: the member view (owned + ghosts, ascending
			// physical rows — the full live extent for shared sites) holds
			// every row whose predicate can match a probe from this
			// partition; the body re-checks the predicate per row as usual.
			rows := x.sitePart(site).view.Rows()
			ids := srcRT.tab.RawIDs()
			for _, r := range rows {
				runBody(ids[r])
			}
			site.observe(x.w, 1, int64(len(rows)))
			x.joinProbes++
			x.joinMatches += int64(len(rows))
			break
		}
		tab := srcRT.tab
		for r := 0; r < tab.Cap(); r++ {
			if tab.Alive(r) {
				runBody(tab.ID(r))
			}
		}
		if site != nil {
			// Upper bound; the cost model treats NL matches as whole-scan.
			site.observe(x.w, 1, int64(tab.Len()))
			x.joinProbes++
			x.joinMatches += int64(tab.Len())
		}
	case site.strategy == plan.HashIndex:
		key := x.evalEqKeys(site)
		pp := x.sitePart(site)
		var ids []value.ID
		if pp.hash != nil {
			ids, _ = pp.hash.Lookup(key)
		}
		// The interpreted body re-evaluates the full predicate per match,
		// so composite-key hash collisions are filtered here for free.
		// Bucket entries are inserted in physical-row order, so this path
		// is row-canonical already.
		for _, id := range ids {
			runBody(id)
		}
		site.observe(x.w, 1, int64(len(ids)))
		x.joinProbes++
		x.joinMatches += int64(len(ids))
	default: // RangeTreeIndex or GridIndex
		lo, hi := x.evalBox(site)
		x.sampleExtent(site, lo, hi)
		pp := x.sitePart(site)
		if x.w.parts != nil {
			// Partitioned probes canonicalize candidates to physical-row
			// order: the fold order of ⊕ contributions is then independent
			// of the partition layout and of which index traversal produced
			// the candidates, which is what makes any partition count
			// bit-identical to Partitions=1.
			rows := x.rowsBuf[:0]
			if pp.tree != nil {
				rows = pp.tree.QueryRows(lo, hi, rows)
			}
			index.SortRows(rows)
			ids := srcRT.tab.RawIDs()
			// Stack-discipline the buffer: a nested accum inside the body
			// must append past our candidates, not clobber them.
			x.rowsBuf = rows[len(rows):]
			for _, r := range rows {
				runBody(ids[r])
			}
			x.rowsBuf = rows[:0]
			site.observe(x.w, 1, int64(len(rows)))
			x.joinProbes++
			x.joinMatches += int64(len(rows))
			break
		}
		ids := x.idsBuf[:0]
		if pp.tree != nil {
			ids = pp.tree.Query(lo, hi, ids)
		}
		// Stack-discipline the buffer: a nested accum inside the body must
		// append past our candidates, not clobber them.
		x.idsBuf = ids[len(ids):]
		for _, id := range ids {
			runBody(id)
		}
		x.idsBuf = ids[:0]
		site.observe(x.w, 1, int64(len(ids)))
		x.joinProbes++
		x.joinMatches += int64(len(ids))
	}

	// Publish the combined result for the `in` block and later steps.
	v, ok := acc.Result()
	if !ok {
		v = value.Zero(s.Comb.ResultKind(s.ValKind))
	}
	x.frame[s.Slot] = v
	x.accum[s.Slot] = nil
}

// evalBox computes the probe rectangle for the current row from the site's
// range dimensions. A NaN bound makes its conjunct unsatisfiable (`u.a >=
// NaN` never holds), so the whole dimension collapses to an empty interval
// rather than silently dropping the bound.
func (x *execCtx) evalBox(site *siteRT) (lo, hi []float64) {
	d := len(site.step.Join.Ranges)
	if cap(x.loBuf) < d {
		x.loBuf = make([]float64, d)
		x.hiBuf = make([]float64, d)
	}
	lo, hi = x.loBuf[:d], x.hiBuf[:d]
	for i, r := range site.step.Join.Ranges {
		l := math.Inf(-1)
		nan := false
		for _, f := range r.Lo {
			v := f(&x.ctx).AsNumber()
			if math.IsNaN(v) {
				nan = true
			}
			if v > l {
				l = v
			}
		}
		h := math.Inf(1)
		for _, f := range r.Hi {
			v := f(&x.ctx).AsNumber()
			if math.IsNaN(v) {
				nan = true
			}
			if v < h {
				h = v
			}
		}
		if nan {
			l, h = math.Inf(1), math.Inf(-1)
		}
		lo[i], hi[i] = l, h
	}
	return lo, hi
}

// sampleExtent feeds the probe-box EMA that sizes grid cells. It samples a
// small fraction of probes on a per-context counter, deliberately outside
// the DisableStats gate: without it the grid would be stuck on the default
// cell size whenever statistics are disabled.
func (x *execCtx) sampleExtent(site *siteRT, lo, hi []float64) {
	x.probeSeq++
	if x.probeSeq&63 != 1 {
		return
	}
	ext, d := 0.0, 0
	for i := range lo {
		w := hi[i] - lo[i]
		if !(w >= 0) || math.IsInf(w, 1) {
			continue // empty, NaN or unbounded dims say nothing about cells
		}
		ext += w
		d++
	}
	if d == 0 {
		return
	}
	site.mu.Lock()
	site.boxExtent.Add(ext / float64(d))
	site.mu.Unlock()
}

// evalEqKeys evaluates the site's equality-conjunct keys for the current
// row into x.eqVals and returns their composite hash (all conjuncts fold
// into one key — multi-equality joins probe exact buckets instead of a
// single-attribute superset).
func (x *execCtx) evalEqKeys(site *siteRT) uint64 {
	h := index.KeySeed
	x.eqVals = x.eqVals[:0]
	for _, eq := range site.step.Join.Eqs {
		v := eq.Key(&x.ctx)
		h = index.HashValue(h, v)
		x.eqVals = append(x.eqVals, v)
	}
	return h
}

// observe records execution feedback. Counters use atomics because the
// parallel effect phase probes sites from several workers.
func (s *siteRT) observe(w *World, probes, matches int64) {
	if w.opts.DisableStats {
		return
	}
	atomic.AddInt64(&s.stats.Probes, probes)
	atomic.AddInt64(&s.stats.Matches, matches)
}

// decideSite picks one site's strategy and join-execution mode for this
// tick from feedback statistics — the decision logic shared verbatim by the
// single-extent and partitioned preparation paths, so Partitions cannot
// change which plans run. It returns the source runtime and the extent
// sizes the maintenance ladder needs; srcRT is nil for sites that always
// run nested-loop (computed source sets, unanalyzed bodies).
func (w *World) decideSite(site *siteRT) (srcRT *classRT, n, p int) {
	st := site.step
	if st.SourceFn != nil || st.Join == nil {
		site.strategy = plan.NestedLoop
		site.batched = false
		return nil, 0, 0
	}
	srcRT = w.classes[st.SourceClass]
	n = srcRT.tab.Len()
	p = w.classes[site.class].tab.Len()
	if site.phase >= 0 && w.classes[site.class].plan.NumPhases > 1 {
		// Only rows in this phase probe; approximate evenly.
		p = p/w.classes[site.class].plan.NumPhases + 1
	}

	kHat := 8.0 // optimistic prior before feedback arrives
	var sstats = site.stats
	if w.opts.DisableStats {
		sstats = nil
	}
	if sstats != nil && sstats.MatchPerProbe.Ready() {
		kHat = sstats.MatchPerProbe.Value()
	}
	if w.opts.Strategy != plan.Auto {
		site.strategy = forceStrategy(w.opts.Strategy, site)
	} else {
		site.strategy = forceStrategy(
			site.selector.Choose(site.candidates, n, p, kHat, len(st.Join.Ranges), sstats), site)
	}
	site.batched = site.batch != nil &&
		w.execCosts.ChooseJoin(w.opts.Join, kHat, site.batch.vec) == plan.JoinBatched
	return srcRT, n, p
}

// prepareSites runs once per tick before the effect phase: each site's
// selector chooses this tick's strategy and join-execution mode from
// feedback statistics, and the per-tick indexes are built (§4.1's
// multi-plan switching) — or reused, patched incrementally, or skipped
// entirely when nothing can probe them. Partitioned worlds run the
// per-partition variant instead (partition.go).
func (w *World) prepareSites() {
	if w.parts != nil {
		w.preparePartitionedSites()
		return
	}
	track := !w.opts.DisableStats
	var t0 time.Time
	if track {
		t0 = time.Now()
	}
	rebuild := w.siteBuildList[:0]
	for _, site := range w.sites {
		srcRT, n, p := w.decideSite(site)
		if srcRT == nil {
			continue
		}
		pp := &site.parts[0]

		// Nothing can probe (empty probing extent) or nothing can match
		// (empty source extent): skip index construction entirely. A
		// nested-loop scan over the source is trivially correct either way.
		if n == 0 || p == 0 {
			site.strategy = plan.NestedLoop
			pp.tree, pp.hash = nil, nil
			pp.builtOK = false
			continue
		}

		switch w.siteMaint(site, pp, srcRT, true) {
		case plan.MaintReuse:
			if track {
				w.execStats.IndexReuses++
			}
		case plan.MaintIncremental:
			if track {
				w.execStats.IndexIncrements++
			}
		default:
			rebuild = append(rebuild, site)
		}
	}
	w.siteBuildList = rebuild

	// Rebuilds: several sites fan out across the worker pool; a single site
	// shards its entry gather instead (§4.2: tables are read-only here, and
	// every site builds into its own retained arena).
	if w.parallelOK() && len(rebuild) > 1 {
		w.buildSitesParallel(rebuild)
	} else {
		for _, site := range rebuild {
			w.buildSiteIndex(site, &site.parts[0], w.classes[site.step.SourceClass], nil, true)
		}
	}
	if track {
		w.execStats.IndexBuildNanos += time.Since(t0).Nanoseconds()
	}
}

// buildSitesParallel fans pending site rebuilds out across the worker pool
// via a shared worklist. Kept out of prepareSites so its escaping closures
// never cost the serial path an allocation.
func (w *World) buildSitesParallel(rebuild []*siteRT) {
	w.ensureWorkers()
	w.runPool(len(rebuild), w.opts.Workers, func(_, j int) {
		site := rebuild[j]
		w.buildSiteIndex(site, &site.parts[0], w.classes[site.step.SourceClass], nil, false)
	})
}

// siteMaint decides how to bring one partition's index up to date. Reuse
// and incremental maintenance hinge on the table's cheap version counters:
// an index whose source columns and structure are untouched since it was
// built is still exact; a grid whose columns drifted by only a few rows is
// patched in place by Grid.Sync (cell-order canonical, so a synced grid
// answers probes identically to a rebuild). syncOK is true only when pp
// spans the full extent — Grid.Sync reconciles against the whole alive
// mask, which would smuggle non-member rows into a partition-local grid.
func (w *World) siteMaint(site *siteRT, pp *sitePart, srcRT *classRT, syncOK bool) plan.Maint {
	tab := srcRT.tab
	if !pp.builtOK || pp.builtStrategy != site.strategy || !pp.builderValid() {
		return plan.MaintRebuild
	}
	if site.strategy == plan.GridIndex && w.gridCell(site, pp) != pp.builtCell {
		// The desired cell size drifted past the hysteresis band: even an
		// otherwise-unchanged grid must rebuild at the new granularity.
		return plan.MaintRebuild
	}
	dirty := tab.StructVersion() != pp.builtStruct
	for i, a := range site.srcAttrs {
		if tab.ColVersion(a) != pp.builtVers[i] {
			dirty = true
		}
	}
	if !dirty {
		return plan.MaintReuse
	}
	if syncOK && site.strategy == plan.GridIndex && pp.builder.Grid() != nil {
		j := site.step.Join
		a0, a1 := j.Ranges[0].AttrIdx, j.Ranges[1].AttrIdx
		budget := w.execCosts.MaintDirtyBudget(tab.Len())
		g := pp.builder.Grid()
		if dirtyRows, ok := g.Sync(tab.NumColumn(a0), tab.NumColumn(a1), tab.AliveMask(), tab.RawIDs(), budget); ok {
			switch w.execCosts.ChooseMaint(tab.Len(), dirtyRows, true) {
			case plan.MaintReuse:
				pp.noteBuilt(site, tab)
				return plan.MaintReuse // versions moved but no row changed
			default:
				pp.noteBuilt(site, tab)
				return plan.MaintIncremental
			}
		}
	}
	return plan.MaintRebuild
}

// gridCell picks the grid cell size: the probe-extent EMA with hysteresis
// toward the partition's previously built size, so incremental maintenance
// is not defeated by slow EMA drift.
func (w *World) gridCell(site *siteRT, pp *sitePart) float64 {
	site.mu.Lock()
	cell := site.boxExtent.Value()
	site.mu.Unlock()
	if cell <= 0 {
		cell = 64
	}
	if pp.builtOK && pp.builtStrategy == plan.GridIndex && pp.builtCell > 0 {
		if r := cell / pp.builtCell; r > 0.75 && r < 1.33 {
			return pp.builtCell
		}
	}
	return cell
}

// noteBuilt records the source versions an up-to-date index reflects, plus
// the (builder, generation) identity that keeps reuse sound under pooling.
func (pp *sitePart) noteBuilt(site *siteRT, tab *table.Table) {
	pp.builtBuilder = pp.builder
	pp.builtGen = 0
	if pp.builder != nil {
		pp.builtGen = pp.builder.Gen()
	}
	pp.builtStruct = tab.StructVersion()
	pp.builtVers = pp.builtVers[:0]
	for _, a := range site.srcAttrs {
		pp.builtVers = append(pp.builtVers, tab.ColVersion(a))
	}
}

// forceStrategy clamps a forced strategy to what the site supports.
func forceStrategy(s plan.Strategy, site *siteRT) plan.Strategy {
	for _, c := range site.candidates {
		if c == s {
			return s
		}
	}
	return site.candidates[0]
}

// buildSiteIndex rebuilds one partition's index into its retained arena:
// over the full extent when memberRows is nil, else over exactly those
// member rows (the partitioned executor's owned+ghost views). The build
// scope is recorded in builtMembers so the maintenance ladders can never
// reuse a member-scoped index for whole-extent probes or vice versa.
// allowShard permits sharding the whole-extent entry gather across the
// worker pool (disabled when sites themselves are being built in parallel;
// member gathers are already per-partition work units).
func (w *World) buildSiteIndex(site *siteRT, pp *sitePart, srcRT *classRT, memberRows []int32, allowShard bool) {
	pp.tree, pp.hash = nil, nil
	j := site.step.Join
	tab := srcRT.tab
	n := tab.Len()
	if memberRows != nil {
		n = len(memberRows)
	}
	fill := func(dims []int, entries []index.Entry, coords []float64) {
		if memberRows != nil {
			fillMemberEntries(tab, dims, memberRows, entries, coords)
		} else {
			w.fillEntries(srcRT, dims, entries, coords, allowShard)
		}
	}
	switch site.strategy {
	case plan.RangeTreeIndex:
		pp.dims = pp.dims[:0]
		for _, r := range j.Ranges {
			pp.dims = append(pp.dims, r.AttrIdx)
		}
		entries := pp.builder.Entries(n)
		coords := pp.builder.Coords(n * len(pp.dims))
		fill(pp.dims, entries, coords)
		pp.tree = pp.builder.BuildRangeTree(len(pp.dims), entries)
	case plan.GridIndex:
		cell := w.gridCell(site, pp)
		pp.dims = pp.dims[:0]
		pp.dims = append(pp.dims, j.Ranges[0].AttrIdx, j.Ranges[1].AttrIdx)
		entries := pp.builder.Entries(n)
		coords := pp.builder.Coords(n * 2)
		fill(pp.dims, entries, coords)
		pp.tree = pp.builder.BuildGrid(cell, entries)
		pp.builtCell = cell
	case plan.HashIndex:
		// Hash sites have no range conjuncts, so they are never spatially
		// partitioned: always whole-extent.
		h := pp.builder.RowHash()
		alive := tab.AliveMask()
		ids := tab.RawIDs()
		for r, ok := range alive {
			if !ok {
				continue
			}
			key := index.KeySeed
			for _, eq := range j.Eqs {
				key = index.HashValue(key, tab.At(r, eq.AttrIdx))
			}
			h.Insert(key, ids[r], int32(r))
		}
		pp.hash = h
	}
	pp.builtStrategy = site.strategy
	pp.builtOK = true
	pp.builtMembers = memberRows != nil
	pp.noteBuilt(site, tab)
}

// fillEntries materializes (id, row, coords) entries for every live source
// row, in physical row order. Large extents shard the gather across the
// worker pool: per-shard live counts prefix-sum into disjoint output
// offsets, so workers write non-overlapping ranges and the entry order is
// identical to the serial fill.
func (w *World) fillEntries(srcRT *classRT, dims []int, entries []index.Entry, coords []float64, allowShard bool) {
	tab := srcRT.tab
	nw := 1
	if allowShard && w.parallelOK() {
		work := w.execCosts.IndexBuildRow * float64(tab.Len()) * float64(len(dims))
		nw = w.execCosts.ChooseWorkers(w.opts.Workers, work)
	}
	if nw <= 1 {
		fillEntryRange(tab, dims, entries, coords, 0, tab.Cap(), 0)
		return
	}
	w.ensureWorkers()
	shards := shardRows(tab.Cap(), nw, w.shardBuf)
	w.shardBuf = shards
	if len(shards) <= 1 {
		fillEntryRange(tab, dims, entries, coords, 0, tab.Cap(), 0)
		return
	}
	alive := tab.AliveMask()
	if cap(w.buildOffs) < len(shards)+1 {
		w.buildOffs = make([]int, len(shards)+1)
	}
	offs := w.buildOffs[:len(shards)+1]
	offs[0] = 0
	for si, sh := range shards {
		c := 0
		for r := sh.lo; r < sh.hi; r++ {
			if alive[r] {
				c++
			}
		}
		offs[si+1] = offs[si] + c
	}
	w.runShards(shards, func(si int, sh shard) {
		fillEntryRange(tab, dims, entries, coords, sh.lo, sh.hi, offs[si])
	})
}

// fillEntryRange fills entries for the live rows in [lo, hi), starting at
// output index k — the shared body of the serial and sharded gathers.
func fillEntryRange(tab *table.Table, dims []int, entries []index.Entry, coords []float64, lo, hi, k int) {
	alive := tab.AliveMask()
	ids := tab.RawIDs()
	d := len(dims)
	for r := lo; r < hi; r++ {
		if !alive[r] {
			continue
		}
		c := coords[k*d : k*d+d : k*d+d]
		for di, ai := range dims {
			c[di] = tab.NumColumn(ai)[r]
		}
		entries[k] = index.Entry{ID: ids[r], Row: int32(r), Coords: c}
		k++
	}
}
