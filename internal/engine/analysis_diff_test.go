package engine_test

// Differential pin for the unified static-analysis refactor: every
// physical-plan decision the engine now routes through internal/analysis —
// batch-kernel eligibility per phase and update rule, the cross-self-
// emission hazard, atomic-site stability classification with its kernel
// read sets, and the partitioned reach derivation's static preconditions —
// must be identical to what the pre-refactor ad-hoc code computed. The
// old logic lives on, verbatim, as test-only copies in export_test.go;
// these tests run both over every shipped scenario and demand equality.

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

var diffScenarios = []struct {
	name string
	src  string
}{
	{"fig2", core.SrcFig2},
	{"rts", core.SrcRTS},
	{"market", core.SrcMarket},
	{"market-unsafe", core.SrcMarketUnsafe},
	{"vehicles", core.SrcVehicles},
	{"traffic-prox", core.SrcTraffic},
	{"flock", core.SrcFlock},
	{"swarm", core.SrcSwarm},
	{"guard", core.SrcGuard},
}

func diffWorld(t *testing.T, name, src string, opts engine.Options) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario(name, src)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func classNames(t *testing.T, name, src string) []string {
	t.Helper()
	sc, err := core.LoadScenario(name, src)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for n := range sc.Prog.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TestVecDecisionDifferential pins exec-mode eligibility: per class, the
// cross-self-emission verdict, which phases compiled to batch kernels and
// which update rules took the kernel vs closure path must match the
// pre-refactor inline logic exactly.
func TestVecDecisionDifferential(t *testing.T) {
	for _, sc := range diffScenarios {
		t.Run(sc.name, func(t *testing.T) {
			w := diffWorld(t, sc.name, sc.src, engine.Options{})
			for _, cls := range classNames(t, sc.name, sc.src) {
				got := w.VecDecisions(cls)
				want := w.OldVecDecisions(cls)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s.%s: vec decisions diverged\n new: %+v\n old: %+v",
						sc.name, cls, got, want)
				}
			}
		})
	}
}

// TestTxnSiteDifferential pins transaction-site classification: per atomic
// block, analyzability, the kernel column/slot/view read sets, conflict
// bases and which constraints compiled to mask kernels must match the
// pre-refactor consAnalysis walk exactly.
func TestTxnSiteDifferential(t *testing.T) {
	for _, sc := range diffScenarios {
		t.Run(sc.name, func(t *testing.T) {
			w := diffWorld(t, sc.name, sc.src, engine.Options{})
			got := w.TxnSiteSummaries()
			want := w.OldTxnSiteSummaries()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: txn site classification diverged\n new: %+v\n old: %+v",
					sc.name, got, want)
			}
		})
	}
}

// TestReachDifferential pins the partitioned interaction-radius
// derivation: on populated partitioned worlds after real ticks, the
// analysis-routed deriveSiteReach must anchor the same dimensions to the
// same axes with bit-identical reach bounds as the pre-refactor
// derivation, and spatial sites must never have fallen back to the shared
// whole-extent index.
func TestReachDifferential(t *testing.T) {
	builds := []struct {
		name  string
		build func() *engine.World
	}{
		{"flock", func() *engine.World {
			return flockWorldFor(t, 600, engine.Options{Partitions: 4})
		}},
		{"traffic-prox", func() *engine.World {
			return carWorldFor(t, 500, engine.Options{Partitions: 4})
		}},
		{"fig2", func() *engine.World {
			w := diffWorld(t, "fig2", core.SrcFig2, engine.Options{Partitions: 4})
			if _, err := core.PopulateUnits(w, workload.Uniform(400, 600, 600, 5), 25); err != nil {
				t.Fatal(err)
			}
			return w
		}},
		{"swarm", func() *engine.World {
			w := diffWorld(t, "swarm", core.SrcSwarm, engine.Options{Partitions: 4})
			if _, err := core.PopulateMotes(w, workload.Uniform(400, 500, 500, 7), 0.7, -0.3, 0.01); err != nil {
				t.Fatal(err)
			}
			return w
		}},
	}
	for _, b := range builds {
		t.Run(b.name, func(t *testing.T) {
			w := b.build()
			for i := 0; i < 3; i++ {
				if err := w.RunTick(); err != nil {
					t.Fatal(err)
				}
			}
			comps := w.CompareReachDerivations()
			if len(comps) == 0 {
				t.Fatalf("%s: no indexed accum sites to compare", b.name)
			}
			for _, rc := range comps {
				if rc.Spatial != rc.OldSpatial {
					t.Errorf("%s %s←%s phase %d: spatial verdict diverged: new %v old %v",
						b.name, rc.Class, rc.Source, rc.Phase, rc.Spatial, rc.OldSpatial)
				}
				if rc.Spatial && !reflect.DeepEqual(rc.Reach, rc.OldReach) {
					t.Errorf("%s %s←%s phase %d: reach diverged\n new: %+v\n old: %+v",
						b.name, rc.Class, rc.Source, rc.Phase, rc.Reach, rc.OldReach)
				}
				if rc.Spatial && rc.Shared {
					t.Errorf("%s %s←%s phase %d: spatial site fell back to shared index",
						b.name, rc.Class, rc.Source, rc.Phase)
				}
			}
		})
	}
}
