package engine

import (
	"fmt"

	"repro/internal/table"
	"repro/internal/value"
)

// Checkpoint is a resumable snapshot of world state at a tick boundary
// (§3.3). Effects are transient and not captured: handler-armed effects for
// the next tick are reconstructed on Restore by re-running the (pure)
// handlers against the restored state.
type Checkpoint struct {
	Tick   int64                     `json:"tick"`
	NextID value.ID                  `json:"nextId"`
	Tables map[string]table.Snapshot `json:"tables"`
}

// Checkpoint captures the world between ticks.
func (w *World) Checkpoint() (*Checkpoint, error) {
	if w.inTick {
		return nil, fmt.Errorf("engine: checkpoint is only valid at tick boundaries")
	}
	c := &Checkpoint{
		Tick:   w.tick,
		NextID: w.nextID,
		Tables: make(map[string]table.Snapshot, len(w.order)),
	}
	for _, rt := range w.order {
		c.Tables[rt.name] = rt.tab.Snapshot()
	}
	return c, nil
}

// Restore replaces the world state with a checkpoint and re-arms reactive
// handlers, resuming execution exactly where the checkpoint was taken.
func (w *World) Restore(c *Checkpoint) error {
	if w.inTick {
		return fmt.Errorf("engine: restore is only valid at tick boundaries")
	}
	for name := range c.Tables { //sglvet:allow maprange: membership validation only, no state mutated
		if _, ok := w.classes[name]; !ok {
			return fmt.Errorf("engine: checkpoint has unknown class %q", name)
		}
	}
	for _, rt := range w.order {
		snap, ok := c.Tables[rt.name]
		if !ok {
			rt.tab.Clear()
			continue
		}
		rt.tab.Restore(snap)
		for i := range rt.fx {
			rt.fx[i].acc = rt.fx[i].acc[:0]
			rt.fx[i].touched = rt.fx[i].touched[:0]
			rt.fx[i].ensure(rt.tab.Cap())
		}
	}
	w.tick = c.Tick
	w.nextID = c.NextID
	w.pendingSpawn = w.pendingSpawn[:0]
	w.pendingKill = w.pendingKill[:0]
	w.txns = w.txns[:0]
	// Handlers are pure functions of post-update state; re-running them
	// reconstructs the effects that were armed for the next tick.
	w.runHandlers()
	return nil
}
