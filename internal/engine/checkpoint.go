package engine

import (
	"fmt"

	"repro/internal/table"
	"repro/internal/value"
)

// CheckpointVersion is the current checkpoint layout version. Version 2
// carries columnar table snapshots (table.SnapshotVersion 2); earlier
// row-oriented checkpoints are rejected with a clear error rather than
// silently misread.
const CheckpointVersion = 2

// Checkpoint is a resumable snapshot of world state at a tick boundary
// (§3.3). Effects are transient and not captured: handler-armed effects for
// the next tick are reconstructed on Restore by re-running the (pure)
// handlers against the restored state. The many-world server also uses
// checkpoints as the hibernation format — a hibernated world is exactly a
// Checkpoint with its World discarded.
type Checkpoint struct {
	Version int                       `json:"version"`
	Tick    int64                     `json:"tick"`
	NextID  value.ID                  `json:"nextId"`
	Tables  map[string]table.Snapshot `json:"tables"`
}

// Checkpoint captures the world between ticks.
func (w *World) Checkpoint() (*Checkpoint, error) {
	if w.inTick {
		return nil, fmt.Errorf("engine: checkpoint is only valid at tick boundaries")
	}
	c := &Checkpoint{
		Version: CheckpointVersion,
		Tick:    w.tick,
		NextID:  w.nextID,
		Tables:  make(map[string]table.Snapshot, len(w.order)),
	}
	for _, rt := range w.order {
		c.Tables[rt.name] = rt.tab.Snapshot()
	}
	return c, nil
}

// Restore replaces the world state with a checkpoint and re-arms reactive
// handlers, resuming execution exactly where the checkpoint was taken. The
// checkpoint is validated — version, class membership, per-table snapshot
// shape — before any world state is touched, so a corrupt or truncated
// checkpoint leaves the world unchanged.
func (w *World) Restore(c *Checkpoint) error {
	if w.inTick {
		return fmt.Errorf("engine: restore is only valid at tick boundaries")
	}
	if c.Version != CheckpointVersion {
		return fmt.Errorf("engine: unsupported checkpoint version %d (want %d)", c.Version, CheckpointVersion)
	}
	for name := range c.Tables { //sglvet:allow maprange: membership validation only, no state mutated
		if _, ok := w.classes[name]; !ok {
			return fmt.Errorf("engine: checkpoint has unknown class %q", name)
		}
	}
	for _, rt := range w.order {
		if snap, ok := c.Tables[rt.name]; ok {
			if err := rt.tab.Validate(snap); err != nil {
				return fmt.Errorf("engine: checkpoint class %s: %w", rt.name, err)
			}
		}
	}
	for _, rt := range w.order {
		snap, ok := c.Tables[rt.name]
		if !ok {
			rt.tab.Clear()
			continue
		}
		if err := rt.tab.Restore(snap); err != nil {
			return fmt.Errorf("engine: checkpoint class %s: %w", rt.name, err)
		}
		for i := range rt.fx {
			rt.fx[i].acc = rt.fx[i].acc[:0]
			rt.fx[i].touched = rt.fx[i].touched[:0]
			rt.fx[i].ensure(rt.tab.Cap())
		}
	}
	w.tick = c.Tick
	w.nextID = c.NextID
	w.pendingSpawn = w.pendingSpawn[:0]
	w.pendingKill = w.pendingKill[:0]
	w.txns = w.txns[:0]
	// Every row's payload may have changed and physical rows were
	// compacted: the changefeed cannot express that as a delta, so flag
	// subscription views for a full resync.
	w.markResync()
	// Handlers are pure functions of post-update state; re-running them
	// reconstructs the effects that were armed for the next tick. They may
	// probe accum sites, so the replay holds a tick arena like RunTick.
	w.acquireArena()
	w.runHandlers()
	w.releaseArena()
	return nil
}
