package engine

// Build-time analysis of atomic blocks (§3.1) for the batched admission
// driver. For every compiled AtomicStep the analysis determines, per
// constraint, (a) the conflict read set — which rows a constraint's
// evaluation can observe through the tentative view — and (b) whether the
// constraint compiles to a vexpr mask kernel over the columnar tentative
// state, the same shape as the batched-join residual conjuncts.
//
// The key property certified is *read-set stability*: every cross-object
// read in a constraint must go through a base expression whose value cannot
// change during admission. Stable bases are committed-state reads (self,
// frame slots, ref attributes without update rules, chains of those); their
// referents are resolvable once per transaction before grouping, which is
// what makes conflict groups — transactions whose touched rows are disjoint
// — provably commutative: a group's admission outcome and effect-buffer
// residue depend only on committed state plus the group's own accumulators.
// A constraint reading through an unstable base (a rule-updated ref
// attribute, a conditional ref) has an unbounded read set, so its whole
// site is marked unanalyzable and every batch containing it falls back to
// the serial loop.
//
// The stability walk itself lives in the unified static-analysis layer
// (internal/analysis, stability.go); this file resolves its verdicts
// against the engine's compiled kernels: a constraint becomes a vexpr mask
// kernel when it is stable, every rule-updated read it performs has a
// vectorized tentative-view column, and the expression compiles.

import (
	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/vexpr"
)

// txnConstraint is one analyzed constraint: the scalar closure (the
// semantic reference, aligned with AtomicStep.Constraints) plus its batch
// kernel when every read has a columnar tentative representation. A nil
// prog evaluates per-lane through tentWorld instead — exact by group
// disjointness.
type txnConstraint struct {
	fn   expr.Fn
	prog *vexpr.Prog
}

// txnBase is one stable base expression through which a constraint reads a
// rule-updated attribute of another object. The compiled fn evaluates over
// committed state per transaction; the referenced row joins the
// transaction's conflict read set.
type txnBase struct {
	fn    expr.Fn
	class string
}

// txnViewAttr names one (class, attr) column of the tentative post-update
// view a site's kernels read, with the attr's vectorized update rule.
// Resolved per world (it holds the world's classRT) from the compile-time
// txnViewRef.
type txnViewAttr struct {
	rt   *classRT
	attr int
	prog *vexpr.Prog
}

// txnViewRef is the shareable form of txnViewAttr: the class by name
// instead of by per-world runtime.
type txnViewRef struct {
	class string
	attr  int
	prog  *vexpr.Prog
}

// txnProgs is the immutable build-time analysis of one atomic block,
// computed once per Compiled and shared by every world.
type txnProgs struct {
	// analyzable is false when any constraint's read set cannot be bounded
	// at build time; such sites always admit through the serial loop.
	analyzable bool

	cons  []txnConstraint
	bases []txnBase

	// Kernel evaluation requirements, unioned over kernel constraints.
	cols     []int // self state attrs loaded by kernels
	slots    []int // frame slots loaded by kernels
	needIDs  bool
	viewRefs []txnViewRef
}

// txnSite is the admission runtime of one atomic block: the shared
// build-time analysis (embedded) plus this world's resolved view columns
// and retained per-admission lane scratch for the batched validator.
type txnSite struct {
	rt   *classRT
	step *compile.AtomicStep

	*txnProgs

	views []txnViewAttr

	// Per-admission lane state (txnbatch.go), generation-stamped.
	gen      uint64
	lanes    []int32 // indices into the admission-order transaction slice
	envCols  [][]float64
	colBufs  [][]float64 // backing storage, parallel to cols
	slotVecs [][]float64
	slotBufs [][]float64 // backing storage, parallel to slots
	idBuf    []float64
	outBuf   []float64
	passBuf  []bool
	env      vexpr.Env
}

// collectTxnSites registers the per-world admission runtime for every
// atomic block, resolving the shared analysis's view refs against this
// world's class runtimes.
func (w *World) collectTxnSites() {
	w.txnSites = make(map[*compile.AtomicStep]*txnSite)
	for _, rt := range w.order {
		forEachStep(rt.plan, func(s compile.Step) {
			if step, ok := s.(*compile.AtomicStep); ok {
				site := &txnSite{rt: rt, step: step, txnProgs: w.compiled.txns[step]}
				for _, ref := range site.viewRefs {
					site.views = append(site.views, txnViewAttr{rt: w.classes[ref.class], attr: ref.attr, prog: ref.prog})
				}
				w.txnSites[step] = site
			}
		})
	}
}

// vecRuleProg returns the vectorized update-rule kernel for a state attr,
// or nil when the attr's rule stayed on the closure path (or has no rule).
func vecRuleProg(rt *classRT, attr int) *vexpr.Prog {
	if rt.vec == nil {
		return nil
	}
	return vecRuleProgOf(rt.vec.vecClassProgs, attr)
}

func vecRuleProgOf(v *vecClassProgs, attr int) *vexpr.Prog {
	if v == nil {
		return nil
	}
	for _, u := range v.updates {
		if u.attrIdx == attr {
			return u.prog
		}
	}
	return nil
}

func (c *Compiled) analyzeTxnProgs(step *compile.AtomicStep) *txnProgs {
	site := &txnProgs{analyzable: true}
	ai := c.ai.Atomic(step)
	colSeen := make(map[int]bool)
	slotSeen := make(map[int]bool)
	viewSeen := make(map[txnViewKey]bool)
	for ci, src := range step.Srcs {
		cons := txnConstraint{fn: step.Constraints[ci]}
		ca := ai.Constraints[ci]
		if !ca.Stable {
			site.analyzable = false
			site.cons = append(site.cons, cons)
			continue
		}
		// Resolve the constraint's rule-updated reads against the compiled
		// update-rule kernels: every one needs a vectorized rule to have a
		// tentative-view column; cross-object reads additionally register
		// their stable base in the conflict read set. Conflict read sets
		// feed grouping for kernel and closure constraints alike.
		kernelOK := true
		var views []txnViewRef
		for _, rr := range ca.RuleReads {
			tcc := c.classes[rr.Class]
			if rr.Base != nil {
				site.bases = append(site.bases, txnBase{fn: expr.Compile(rr.Base), class: rr.Class})
			}
			prog := vecRuleProgOf(tcc.vec, rr.Attr)
			if prog == nil {
				kernelOK = false
				continue
			}
			views = append(views, txnViewRef{class: rr.Class, attr: rr.Attr, prog: prog})
		}
		if kernelOK {
			if prog, ok := vexpr.CompileOpts(src, c.kernelOpts(func(int) bool { return true })); ok {
				c.addFusedOps(prog)
				cons.prog = prog
				site.needIDs = site.needIDs || ca.NeedIDs || prog.NeedIDs()
				for _, col := range ca.Cols {
					if !colSeen[col] {
						colSeen[col] = true
						site.cols = append(site.cols, col)
					}
				}
				for _, sl := range ca.Slots {
					if !slotSeen[sl] {
						slotSeen[sl] = true
						site.slots = append(site.slots, sl)
					}
				}
				for _, va := range views {
					k := txnViewKey{class: va.class, attr: va.attr}
					if !viewSeen[k] {
						viewSeen[k] = true
						site.viewRefs = append(site.viewRefs, va)
					}
				}
			}
		}
		site.cons = append(site.cons, cons)
	}
	return site
}

type txnViewKey struct {
	class string
	attr  int
}
