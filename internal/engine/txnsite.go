package engine

// Build-time analysis of atomic blocks (§3.1) for the batched admission
// driver. For every compiled AtomicStep the analysis determines, per
// constraint, (a) the conflict read set — which rows a constraint's
// evaluation can observe through the tentative view — and (b) whether the
// constraint compiles to a vexpr mask kernel over the columnar tentative
// state, the same shape as the batched-join residual conjuncts.
//
// The key property the analysis certifies is *read-set stability*: every
// cross-object read in a constraint must go through a base expression whose
// value cannot change during admission. Stable bases are committed-state
// reads (self, frame slots, ref attributes without update rules, chains of
// those); their referents are resolvable once per transaction before
// grouping, which is what makes conflict groups — transactions whose
// touched rows are disjoint — provably commutative: a group's admission
// outcome and effect-buffer residue depend only on committed state plus the
// group's own accumulators. A constraint reading through an unstable base
// (a rule-updated ref attribute, a conditional ref) has an unbounded read
// set, so its whole site is marked unanalyzable and every batch containing
// it falls back to the serial loop.

import (
	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/sgl/ast"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// txnConstraint is one analyzed constraint: the scalar closure (the
// semantic reference, aligned with AtomicStep.Constraints) plus its batch
// kernel when every read has a columnar tentative representation. A nil
// prog evaluates per-lane through tentWorld instead — exact by group
// disjointness.
type txnConstraint struct {
	fn   expr.Fn
	prog *vexpr.Prog
}

// txnBase is one stable base expression through which a constraint reads a
// rule-updated attribute of another object. The compiled fn evaluates over
// committed state per transaction; the referenced row joins the
// transaction's conflict read set.
type txnBase struct {
	fn    expr.Fn
	class string
}

// txnViewAttr names one (class, attr) column of the tentative post-update
// view a site's kernels read, with the attr's vectorized update rule.
type txnViewAttr struct {
	rt   *classRT
	attr int
	prog *vexpr.Prog
}

// txnSite is the admission runtime of one atomic block: the build-time
// analysis plus retained per-admission lane scratch for the batched
// validator.
type txnSite struct {
	rt   *classRT
	step *compile.AtomicStep

	// analyzable is false when any constraint's read set cannot be bounded
	// at build time; such sites always admit through the serial loop.
	analyzable bool

	cons  []txnConstraint
	bases []txnBase

	// Kernel evaluation requirements, unioned over kernel constraints.
	cols    []int // self state attrs loaded by kernels
	slots   []int // frame slots loaded by kernels
	needIDs bool
	views   []txnViewAttr

	// Per-admission lane state (txnbatch.go), generation-stamped.
	gen      uint64
	lanes    []int32 // indices into the admission-order transaction slice
	envCols  [][]float64
	colBufs  [][]float64 // backing storage, parallel to cols
	slotVecs [][]float64
	slotBufs [][]float64 // backing storage, parallel to slots
	idBuf    []float64
	outBuf   []float64
	passBuf  []bool
	env      vexpr.Env
}

// collectTxnSites walks all compiled plans and analyzes every atomic block.
func (w *World) collectTxnSites() {
	w.txnSites = make(map[*compile.AtomicStep]*txnSite)
	for _, rt := range w.order {
		var walk func(steps []compile.Step)
		walk = func(steps []compile.Step) {
			for _, s := range steps {
				switch s := s.(type) {
				case *compile.IfStep:
					walk(s.Then)
					walk(s.Else)
				case *compile.AccumStep:
					walk(s.Body)
					if s.Join != nil {
						walk(s.Join.Inner)
					}
				case *compile.AtomicStep:
					w.txnSites[s] = w.analyzeTxnSite(rt, s)
					walk(s.Body)
				}
			}
		}
		for _, steps := range rt.plan.Phases {
			walk(steps)
		}
		for _, h := range rt.plan.Handlers {
			walk(h.Body)
		}
	}
}

// vecRuleProg returns the vectorized update-rule kernel for a state attr,
// or nil when the attr's rule stayed on the closure path (or has no rule).
func vecRuleProg(rt *classRT, attr int) *vexpr.Prog {
	if rt.vec == nil {
		return nil
	}
	for _, u := range rt.vec.updates {
		if u.attrIdx == attr {
			return u.prog
		}
	}
	return nil
}

// consAnalysis accumulates one constraint's reads during the AST walk.
type consAnalysis struct {
	w  *World
	rt *classRT

	ok       bool // read set bounded (site-level requirement)
	kernelOK bool // every rule-attr read has a tentative view column

	cols    []int
	slots   []int
	needIDs bool
	views   []txnViewAttr
	bases   []txnBase
}

func (w *World) analyzeTxnSite(rt *classRT, step *compile.AtomicStep) *txnSite {
	site := &txnSite{rt: rt, step: step, analyzable: true}
	colSeen := make(map[int]bool)
	slotSeen := make(map[int]bool)
	viewSeen := make(map[txnViewKey]bool)
	for ci, src := range step.Srcs {
		c := txnConstraint{fn: step.Constraints[ci]}
		a := &consAnalysis{w: w, rt: rt, ok: true, kernelOK: true}
		a.walk(src)
		if !a.ok {
			site.analyzable = false
			site.cons = append(site.cons, c)
			continue
		}
		// Conflict read sets feed grouping for kernel and closure
		// constraints alike.
		site.bases = append(site.bases, a.bases...)
		if a.kernelOK {
			if prog, ok := vexpr.CompileWithSlots(src, func(int) bool { return true }); ok {
				c.prog = prog
				site.needIDs = site.needIDs || a.needIDs || prog.NeedIDs()
				for _, col := range a.cols {
					if !colSeen[col] {
						colSeen[col] = true
						site.cols = append(site.cols, col)
					}
				}
				for _, sl := range a.slots {
					if !slotSeen[sl] {
						slotSeen[sl] = true
						site.slots = append(site.slots, sl)
					}
				}
				for _, va := range a.views {
					k := txnViewKey{rt: va.rt, attr: va.attr}
					if !viewSeen[k] {
						viewSeen[k] = true
						site.views = append(site.views, va)
					}
				}
			}
		}
		site.cons = append(site.cons, c)
	}
	return site
}

type txnViewKey struct {
	rt   *classRT
	attr int
}

func (a *consAnalysis) addCol(attr int) {
	a.cols = append(a.cols, attr)
	if a.rt.hasRule[attr] {
		prog := vecRuleProg(a.rt, attr)
		if prog == nil {
			a.kernelOK = false
			return
		}
		a.views = append(a.views, txnViewAttr{rt: a.rt, attr: attr, prog: prog})
	}
}

func (a *consAnalysis) walk(e ast.Expr) {
	if !a.ok {
		return
	}
	switch e := e.(type) {
	case *ast.NumLit, *ast.BoolLit, *ast.StrLit, *ast.NullLit:
	case *ast.Ident:
		switch e.Bind.Kind {
		case ast.BindStateAttr:
			a.addCol(e.Bind.AttrIdx)
		case ast.BindLocal, ast.BindIter:
			a.slots = append(a.slots, e.Bind.Slot)
		case ast.BindSelf:
			a.needIDs = true
		default:
			// Effect attrs and class extents have no tentative-view story
			// inside constraints; keep the whole site on the serial loop.
			a.ok = false
		}
	case *ast.FieldExpr:
		a.walkField(e)
	case *ast.UnaryExpr:
		a.walk(e.X)
	case *ast.BinaryExpr:
		a.walk(e.X)
		a.walk(e.Y)
	case *ast.CondExpr:
		a.walk(e.C)
		a.walk(e.T)
		a.walk(e.F)
	case *ast.CallExpr:
		if e.Builtin == ast.BSelfFn {
			a.needIDs = true
		}
		for _, arg := range e.Args {
			a.walk(arg)
		}
	default:
		a.ok = false
	}
}

// walkField analyzes one cross-object read x.attr: the base x must be
// stable, and a rule-updated leaf registers the referent in the conflict
// read set plus the tentative view.
func (a *consAnalysis) walkField(e *ast.FieldExpr) {
	if !a.stableBase(e.X) {
		a.ok = false
		return
	}
	trt := a.w.classes[e.Class]
	if trt == nil {
		a.ok = false
		return
	}
	if trt.hasRule[e.AttrIdx] {
		a.bases = append(a.bases, txnBase{fn: expr.Compile(e.X), class: e.Class})
		prog := vecRuleProg(trt, e.AttrIdx)
		if prog == nil {
			a.kernelOK = false
			return
		}
		a.views = append(a.views, txnViewAttr{rt: trt, attr: e.AttrIdx, prog: prog})
	}
}

// stableBase reports whether a base expression's value is fixed for the
// whole admission pass (it reads only committed state, the frame snapshot
// or self), registering the reads the kernel evaluation of the base itself
// performs.
func (a *consAnalysis) stableBase(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.NullLit:
		return true
	case *ast.Ident:
		switch e.Bind.Kind {
		case ast.BindSelf:
			a.needIDs = true
			return true
		case ast.BindLocal, ast.BindIter:
			a.slots = append(a.slots, e.Bind.Slot)
			return true
		case ast.BindStateAttr:
			if e.Ty.Kind != value.KindRef || a.rt.hasRule[e.Bind.AttrIdx] {
				return false
			}
			a.cols = append(a.cols, e.Bind.AttrIdx)
			return true
		}
		return false
	case *ast.FieldExpr:
		if !a.stableBase(e.X) {
			return false
		}
		trt := a.w.classes[e.Class]
		return trt != nil && e.Ty.Kind == value.KindRef && !trt.hasRule[e.AttrIdx]
	case *ast.CallExpr:
		if e.Builtin == ast.BSelfFn {
			a.needIDs = true
			return true
		}
		return false
	}
	return false
}
