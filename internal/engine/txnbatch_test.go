package engine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/compile"
	"repro/internal/plan"
	"repro/internal/value"
)

const txnMarketSrc = `
class Trader {
  state:
    number gold = 0;
    number stock = 0;
    number wants = 0;
    number price = 25;
    ref<Trader> seller = null;
  effects:
    number dgold : sum;
    number dstock : sum;
  update:
    gold = gold + dgold;
    stock = stock + dstock;
  run {
    if (wants > 0 && seller != null && gold >= price) {
      atomic (gold >= 0, seller.stock >= 0) {
        dgold <- 0 - price;
        seller.dgold <- price;
        dstock <- 1;
        seller.dstock <- 0 - 1;
      }
    }
  }
}
`

func traderIndices(t *testing.T, rt *classRT) (gold, stock, dgold, dstock int) {
	t.Helper()
	gold = rt.cls.StateIndex("gold")
	stock = rt.cls.StateIndex("stock")
	dgold, dstock = -1, -1
	for i, e := range rt.cls.Effects {
		switch e.Name {
		case "dgold":
			dgold = i
		case "dstock":
			dstock = i
		}
	}
	if gold < 0 || stock < 0 || dgold < 0 || dstock < 0 {
		t.Fatal("trader schema indices not found")
	}
	return
}

// checkViewMatchesReplay builds the columnar tentative view for the rule'd
// attrs and requires it to be bitwise identical to per-row tentWorld rule
// replay on every live row.
func checkViewMatchesReplay(t *testing.T, w *World) {
	t.Helper()
	rt := w.classes["Trader"]
	gi, si, _, _ := traderIndices(t, rt)
	s := &w.txnrt
	s.init(w)
	s.gen++
	for _, attr := range []int{gi, si} {
		prog := vecRuleProg(rt, attr)
		if prog == nil {
			t.Fatal("trader update rules did not vectorize")
		}
		w.buildTxnView(txnViewAttr{rt: rt, attr: attr, prog: prog})
	}
	tw := &tentWorld{w: w}
	for row := 0; row < rt.tab.Cap(); row++ {
		if !rt.tab.Alive(row) {
			continue
		}
		id := rt.tab.ID(row)
		for _, attr := range []int{gi, si} {
			want, ok := tw.StateValue("Trader", id, attr)
			if !ok {
				t.Fatalf("replay failed for live id %d", id)
			}
			got := rt.txnViewCols[attr][row]
			if math.Float64bits(got) != math.Float64bits(payloadOf(want)) {
				t.Fatalf("view diverges from rule replay: id %d attr %d: %x (%v) != %x (%v)",
					id, attr, math.Float64bits(got), got,
					math.Float64bits(payloadOf(want)), want.AsNumber())
			}
		}
	}
}

// TestTxnViewMatchesReplayBitwise is the property test behind the batched
// validator: the vectorized tentative view must equal per-transaction rule
// replay bit for bit, including NaN propagation, infinities, extreme
// magnitudes and catastrophic cancellation in the effect sums.
func TestTxnViewMatchesReplayBitwise(t *testing.T) {
	adversarial := []float64{
		0, math.Copysign(0, -1), 1, -1, 25, 0.1,
		math.NaN(), math.Inf(1), math.Inf(-1),
		1e308, -1e308, 5e-324, -5e-324, 1e-300, 1e300,
	}
	for seed := int64(0); seed < 25; seed++ {
		w := newWorld(t, txnMarketSrc, Options{})
		rt := w.classes["Trader"]
		_, _, dgold, dstock := traderIndices(t, rt)
		rng := rand.New(rand.NewSource(seed))
		draw := func() float64 {
			if rng.Intn(2) == 0 {
				return adversarial[rng.Intn(len(adversarial))]
			}
			return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		}
		ids := make([]value.ID, 40)
		for i := range ids {
			id, err := w.Spawn("Trader", map[string]value.Value{
				"gold": value.Num(draw()), "stock": value.Num(draw()),
			})
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		// Dead rows must not disturb the live lanes around them.
		for i := 0; i < 5; i++ {
			if err := w.Kill("Trader", ids[rng.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range ids {
			row := rt.tab.Row(id)
			if row < 0 {
				continue
			}
			for k := rng.Intn(5); k > 0; k-- {
				rt.fx[dgold].add(row, value.Num(draw()), 0)
			}
			for k := rng.Intn(5); k > 0; k-- {
				rt.fx[dstock].add(row, value.Num(draw()), 0)
			}
		}
		checkViewMatchesReplay(t, w)
	}
}

// FuzzTxnViewReplay fuzzes the same property over raw float payloads.
func FuzzTxnViewReplay(f *testing.F) {
	f.Add(100.0, -25.0, 50.0, 3.0)
	f.Add(1e308, 1e308, -1e308, math.Inf(1))
	f.Add(math.NaN(), 1.0, 2.0, math.Copysign(0, -1))
	f.Add(5e-324, -5e-324, 1e-300, -1e308)
	f.Fuzz(func(t *testing.T, gold, d1, d2, stock float64) {
		w := newWorld(t, txnMarketSrc, Options{})
		rt := w.classes["Trader"]
		_, _, dgold, dstock := traderIndices(t, rt)
		id, err := w.Spawn("Trader", map[string]value.Value{
			"gold": value.Num(gold), "stock": value.Num(stock),
		})
		if err != nil {
			t.Fatal(err)
		}
		row := rt.tab.Row(id)
		rt.fx[dgold].add(row, value.Num(d1), 0)
		rt.fx[dgold].add(row, value.Num(d2), 0)
		rt.fx[dstock].add(row, value.Num(d1), 0)
		checkViewMatchesReplay(t, w)
	})
}

// TestBatchedAdmissionZeroAlloc pins the steady-state batched admission
// path at zero heap allocations per batch: all scratch (lane buffers,
// views, dense effect vectors, conflict-group state) must be retained and
// generation-stamped, never reallocated.
func TestBatchedAdmissionZeroAlloc(t *testing.T) {
	w := newWorld(t, txnMarketSrc, Options{Txn: plan.TxnBatched})
	rt := w.classes["Trader"]
	_, _, dgold, dstock := traderIndices(t, rt)
	const pairs = 8
	sellers := make([]value.ID, pairs)
	buyers := make([]value.ID, pairs)
	for i := 0; i < pairs; i++ {
		var err error
		sellers[i], err = w.Spawn("Trader", map[string]value.Value{"stock": value.Num(5)})
		if err != nil {
			t.Fatal(err)
		}
		buyers[i], err = w.Spawn("Trader", map[string]value.Value{
			"gold": value.Num(1000), "seller": value.Ref(sellers[i]),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	var step *compile.AtomicStep
	for s := range w.txnSites {
		step = s
	}
	if step == nil || !w.txnSites[step].analyzable {
		t.Fatal("market atomic site missing or unanalyzable")
	}
	for i := range rt.fx {
		rt.fx[i].ensure(rt.tab.Cap())
	}
	txns := make([]*Txn, 0, pairs)
	for i := 0; i < pairs; i++ {
		txns = append(txns, &Txn{
			Class: "Trader", Source: buyers[i],
			Constraints: step.Constraints, step: step,
			Emissions: []Emission{
				{Class: "Trader", Target: buyers[i], AttrIdx: dgold, Val: value.Num(-25)},
				{Class: "Trader", Target: sellers[i], AttrIdx: dgold, Val: value.Num(25)},
				{Class: "Trader", Target: buyers[i], AttrIdx: dstock, Val: value.Num(1)},
				{Class: "Trader", Target: sellers[i], AttrIdx: dstock, Val: value.Num(-1)},
			},
		})
	}
	badMode := false
	run := func() {
		for _, tx := range txns {
			tx.Aborted = false
		}
		if w.txnAdmitMode(txns) != plan.TxnBatched {
			badMode = true
			return
		}
		w.admitBatched(txns)
		for i := range rt.fx {
			rt.fx[i].reset()
		}
	}
	run() // warm: grow every retained buffer once
	run()
	if badMode {
		t.Fatal("forced batched mode fell back to serial")
	}
	if avg := testing.AllocsPerRun(50, run); avg != 0 {
		t.Fatalf("batched admission allocates %v times per batch, want 0", avg)
	}
	for _, tx := range txns {
		if tx.Aborted {
			t.Fatal("alloc-guard transactions unexpectedly aborted")
		}
	}
}
