package engine_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/physics"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/workload"
)

// trafficWorld builds a vehicles world sized so the two-axis cost model
// actually fans out under Workers > 1 (the extent spans several batches).
func trafficWorld(t *testing.T, n int, opts engine.Options) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario("vehicles", core.SrcVehicles)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.PopulateVehicles(w, workload.Uniform(n, 4000, 4000, 5)); err != nil {
		t.Fatal(err)
	}
	return w
}

// rtsWorldFor builds the combat scenario with its physics component — a
// scalar-only class (it cross-emits damage into itself), so it exercises
// the sharded scalar path plus worker-sink merging.
func rtsWorldFor(t *testing.T, n int, opts engine.Options) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario("rts", core.SrcRTS)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Register(physics.New2D(physics.Config{
		Class: "Soldier", XAttr: "x", YAttr: "y",
		VXEffect: "vx", VYEffect: "vy",
		Radius: 0.8, MaxSpeed: 2,
		Bounds: &physics.Rect{MinX: 0, MinY: 0, MaxX: 400, MaxY: 400},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.PopulateSoldiers(w, workload.Clustered(n, 2, 30, 400, 400, 7)); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestParallelCountersMatchSerial pins the statistics contract of the
// sharded executor: Workers=4 must report exactly the row counts Workers=1
// reports on the same scenario (the old parallel path reported zero
// effect-phase work), and the shard counter must show the pool was used.
func TestParallelCountersMatchSerial(t *testing.T) {
	const n, ticks = 3000, 4
	serial := trafficWorld(t, n, engine.Options{Workers: 1})
	par := trafficWorld(t, n, engine.Options{Workers: 4})
	for _, w := range []*engine.World{serial, par} {
		if err := w.Run(ticks); err != nil {
			t.Fatal(err)
		}
	}
	ss, ps := serial.ExecStats(), par.ExecStats()
	if ss.ScalarRows != ps.ScalarRows || ss.VectorRows != ps.VectorRows || ss.HandlerRows != ps.HandlerRows {
		t.Fatalf("counter drift: serial %+v, parallel %+v", ss, ps)
	}
	if ps.VectorRows == 0 {
		t.Fatal("traffic under Workers=4 reported no vectorized rows")
	}
	if ss.ParallelShards != 0 {
		t.Fatalf("Workers=1 dispatched %d shards", ss.ParallelShards)
	}
	if ps.ParallelShards == 0 {
		t.Fatal("Workers=4 never dispatched shards on a 3000-row extent")
	}

	// The scalar-only rts class must count its effect-phase rows too.
	sRTS := rtsWorldFor(t, 1200, engine.Options{Workers: 1})
	pRTS := rtsWorldFor(t, 1200, engine.Options{Workers: 4})
	for _, w := range []*engine.World{sRTS, pRTS} {
		if err := w.Run(3); err != nil {
			t.Fatal(err)
		}
	}
	if sRTS.ExecStats().ScalarRows != pRTS.ExecStats().ScalarRows {
		t.Fatalf("rts ScalarRows: serial %d, parallel %d",
			sRTS.ExecStats().ScalarRows, pRTS.ExecStats().ScalarRows)
	}
	if pRTS.ExecStats().ScalarRows == 0 {
		t.Fatal("rts under Workers=4 reported zero scalar effect-phase rows")
	}

	// DisableStats must silence every counter on the parallel path as well.
	off := trafficWorld(t, n, engine.Options{Workers: 4, DisableStats: true})
	if err := off.Run(2); err != nil {
		t.Fatal(err)
	}
	if c := off.ExecStats(); c.ScalarRows != 0 || c.VectorRows != 0 || c.ParallelShards != 0 || c.HandlerRows != 0 {
		t.Fatalf("DisableStats leaked counters: %+v", c)
	}
}

// TestForcedVectorizedParallel pins the composition bug this PR fixes:
// forcing ExecVectorized with Workers > 1 used to fall back to the scalar
// worker loop silently. Now the batch kernels must run — and produce the
// same trajectory and the same vectorized-row count as Workers=1.
func TestForcedVectorizedParallel(t *testing.T) {
	const n, ticks = 2500, 4
	w1 := trafficWorld(t, n, engine.Options{Workers: 1, Exec: plan.ExecVectorized})
	w4 := trafficWorld(t, n, engine.Options{Workers: 4, Exec: plan.ExecVectorized})
	for _, w := range []*engine.World{w1, w4} {
		if err := w.Run(ticks); err != nil {
			t.Fatal(err)
		}
	}
	if w4.ExecStats().VectorRows == 0 {
		t.Fatal("Workers=4 + ExecVectorized ran no batch kernels")
	}
	if w1.ExecStats().VectorRows != w4.ExecStats().VectorRows {
		t.Fatalf("VectorRows: Workers=1 %d, Workers=4 %d",
			w1.ExecStats().VectorRows, w4.ExecStats().VectorRows)
	}
	if d := diffClassWorlds(w1, w4, "Vehicle", vehicleAttrs, w1.IDs("Vehicle")); d != "" {
		t.Fatal(d)
	}
}

var (
	vehicleAttrs = []string{"x", "y", "dx", "dy", "speed", "fuel", "odo", "stress"}
	soldierAttrs = []string{"player", "x", "y", "tx", "ty", "range", "health", "attack"}
)

func diffClassWorlds(a, b *engine.World, class string, attrs []string, ids []value.ID) string {
	for _, id := range ids {
		for _, attr := range attrs {
			av, aok := a.Get(class, id, attr)
			bv, bok := b.Get(class, id, attr)
			if aok != bok {
				return fmt.Sprintf("%s %d %s: presence %v vs %v", class, id, attr, aok, bok)
			}
			if aok && !av.Equal(bv) {
				return fmt.Sprintf("%s %d %s: %v vs %v", class, id, attr, av, bv)
			}
		}
	}
	return ""
}

// TestParallelMatrixDifferential is the acceptance guard for the sharded
// executor: Workers ∈ {1, 4} × Exec ∈ {scalar, vectorized, auto} over the
// traffic and rts scenarios with spawn/kill churn must end bit-identical to
// the Workers=1/ExecScalar reference. It extends the scalar≡vectorized
// guards in vector_test.go with the parallelism axis.
func TestParallelMatrixDifferential(t *testing.T) {
	type cfg struct {
		workers int
		exec    plan.ExecMode
	}
	var cfgs []cfg
	for _, wk := range []int{1, 4} {
		for _, ex := range []plan.ExecMode{plan.ExecScalar, plan.ExecVectorized, plan.ExecAuto} {
			cfgs = append(cfgs, cfg{wk, ex})
		}
	}
	scenarios := []struct {
		name  string
		class string
		attrs []string
		n     int
		ticks int
		build func(t *testing.T, n int, opts engine.Options) *engine.World
		spawn func(w *engine.World, i int) (value.ID, error)
	}{
		{
			name: "traffic", class: "Vehicle", attrs: vehicleAttrs, n: 2500, ticks: 5,
			build: trafficWorld,
			spawn: func(w *engine.World, i int) (value.ID, error) {
				return w.Spawn("Vehicle", map[string]value.Value{
					"x": value.Num(float64(i%97) * 40), "y": value.Num(float64(i%89) * 40),
					"dx": value.Num(1), "speed": value.Num(float64(2 + i%4)),
					"fuel": value.Num(float64(300 + i%57)),
				})
			},
		},
		{
			name: "rts", class: "Soldier", attrs: soldierAttrs, n: 900, ticks: 4,
			build: rtsWorldFor,
			spawn: func(w *engine.World, i int) (value.ID, error) {
				return w.Spawn("Soldier", map[string]value.Value{
					"player": value.Str([2]string{"red", "blue"}[i%2]),
					"x":      value.Num(float64(50 + i%300)), "y": value.Num(float64(50 + i%290)),
					"tx": value.Num(200), "ty": value.Num(200),
				})
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			worlds := make([]*engine.World, len(cfgs))
			for i, c := range cfgs {
				worlds[i] = sc.build(t, sc.n, engine.Options{Workers: c.workers, Exec: c.exec})
			}
			ref := worlds[0] // Workers=1, ExecScalar
			live := append([]value.ID(nil), ref.IDs(sc.class)...)
			rng := rand.New(rand.NewSource(11))
			for tick := 0; tick < sc.ticks; tick++ {
				// Churn: kill a random live object and spawn a fresh one
				// identically in every world (ids stay aligned because
				// spawn order is identical).
				if len(live) > 20 {
					k := rng.Intn(len(live))
					for _, w := range worlds {
						if err := w.Kill(sc.class, live[k]); err != nil {
							t.Fatal(err)
						}
					}
					live = append(live[:k], live[k+1:]...)
				}
				var nid value.ID
				for wi, w := range worlds {
					id, err := sc.spawn(w, tick*31)
					if err != nil {
						t.Fatal(err)
					}
					if wi == 0 {
						nid = id
					} else if id != nid {
						t.Fatalf("id drift: %d vs %d", id, nid)
					}
				}
				live = append(live, nid)
				for wi, w := range worlds {
					if err := w.RunTick(); err != nil {
						t.Fatalf("cfg %+v tick %d: %v", cfgs[wi], tick, err)
					}
				}
			}
			for wi := 1; wi < len(worlds); wi++ {
				if d := diffClassWorlds(ref, worlds[wi], sc.class, sc.attrs, live); d != "" {
					t.Fatalf("cfg %+v diverged from Workers=1/ExecScalar: %s", cfgs[wi], d)
				}
			}
		})
	}
}
