package engine_test

// Integration pins for the fused/specialized kernel path and the
// dictionary-encoded string lanes: the optimizer must change the physical
// plan (fused superinstructions, batched string residuals, vectorized
// string emissions) without changing a single bit of any world trajectory.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/workload"
)

// TestRTSStringResidualBatched pins the headline dictionary win: the rts
// combat predicate `u.player != player` is a *string* inequality, and it
// must compile to a code-lane mask kernel so the batched join driver keeps
// its vectorized residual instead of bailing to the per-candidate closure.
func TestRTSStringResidualBatched(t *testing.T) {
	sc, err := core.LoadScenario("rts", core.SrcRTS)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sites := w.SiteBatchSummaries()
	if len(sites) == 0 {
		t.Fatal("rts has an accum join; expected at least one site")
	}
	for _, s := range sites {
		if s.Class == "Soldier" && !s.VecResidual {
			t.Errorf("Soldier accum residual (string predicate u.player != player) fell back to the interpreted closure")
		}
	}
}

// srcBeacon exercises the string-emission lane: a maxby effect with a
// string payload in an otherwise plain self-emission phase. The kernel
// emits dictionary codes; the engine must decode them at the accumulator
// boundary so the fold sees real strings.
const srcBeacon = `
class Beacon {
  state:
    number heat = 50;
    string label = "";
  effects:
    string hottest : maxby;
    number pull : sum;
  update:
    label = hottest;
    heat = heat + pull * 0.01 - 0.2;
  run {
    if (heat > 50) {
      hottest <- "hot" by heat;
    } else {
      hottest <- "cold" by (0 - heat);
    }
    pull <- heat * 0.1;
  }
}
`

func beaconWorld(t *testing.T, opts engine.Options) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario("beacon", srcBeacon)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range workload.Uniform(600, 100, 100, 11) {
		if _, err := w.Spawn("Beacon", map[string]value.Value{
			"heat": value.Num(30 + p.X/2 + float64(i%7)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestStringEmissionVectorized(t *testing.T) {
	vec := beaconWorld(t, engine.Options{Exec: plan.ExecVectorized})
	d := vec.VecDecisions("Beacon")
	if len(d.Phases) == 0 || !d.Phases[0] {
		t.Fatal("phase with a string maxby emission must compile to batch form")
	}
	// The string-targeted update rule must stay scalar: a staged code write
	// would bypass the column's string storage.
	for _, a := range d.VecUpdates {
		if a == 1 { // label
			t.Fatal("string update rule compiled to a kernel")
		}
	}
	scal := beaconWorld(t, engine.Options{Exec: plan.ExecScalar})
	for tick := 0; tick < 5; tick++ {
		if err := vec.RunTick(); err != nil {
			t.Fatal(err)
		}
		if err := scal.RunTick(); err != nil {
			t.Fatal(err)
		}
		for _, id := range vec.IDs("Beacon") {
			for _, attr := range []string{"heat", "label"} {
				a := vec.MustGet("Beacon", id, attr)
				b := scal.MustGet("Beacon", id, attr)
				if !a.Equal(b) {
					t.Fatalf("tick %d beacon %d %s: vectorized %v, scalar %v", tick, id, attr, a, b)
				}
			}
		}
	}
	if vec.ExecStats().VectorRows == 0 {
		t.Fatal("vectorized world reported no kernel rows")
	}
	if vec.ExecStats().DictLookups == 0 {
		t.Fatal("string emissions ran without any dictionary decodes")
	}
	// Someone must have been labeled by a real decoded string.
	seen := map[string]bool{}
	for _, id := range vec.IDs("Beacon") {
		seen[vec.MustGet("Beacon", id, "label").AsString()] = true
	}
	if !seen["hot"] || !seen["cold"] {
		t.Fatalf("expected both labels to appear, got %v", seen)
	}
}

// TestUnfusedDifferential pins Options.Unfused as a pure physical-plan
// switch: disabling fusion/specialization/hoisting must not change any
// world bit, while the default build must actually fuse something on the
// fusion-rich traffic workload.
func TestUnfusedDifferential(t *testing.T) {
	build := func(opts engine.Options) *engine.World {
		sc, err := core.LoadScenario("vehicles", core.SrcVehicles)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sc.NewWorld(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.PopulateVehicles(w, workload.Uniform(1500, 4000, 4000, 3)); err != nil {
			t.Fatal(err)
		}
		return w
	}
	fused := build(engine.Options{Exec: plan.ExecVectorized})
	plain := build(engine.Options{Exec: plan.ExecVectorized, Unfused: true})
	if fused.ExecStats().FusedOps == 0 {
		t.Fatal("traffic workload compiled zero superinstructions")
	}
	if n := plain.ExecStats().FusedOps; n != 0 {
		t.Fatalf("Unfused world reports %d fused ops", n)
	}
	for tick := 0; tick < 4; tick++ {
		if err := fused.RunTick(); err != nil {
			t.Fatal(err)
		}
		if err := plain.RunTick(); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range fused.IDs("Vehicle") {
		for _, attr := range []string{"x", "y", "dx", "dy", "fuel", "odo", "stress"} {
			a := fused.MustGet("Vehicle", id, attr)
			b := plain.MustGet("Vehicle", id, attr)
			if !a.Equal(b) {
				t.Fatalf("vehicle %d %s: fused %v, unfused %v", id, attr, a, b)
			}
		}
	}
}
