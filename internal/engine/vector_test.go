package engine_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/sem"
	"repro/internal/value"
)

// srcVecBot exercises the whole vectorizable subset: multi-phase scripts
// with lets, nested ifs, self-targeted emissions (sum, max and keyed
// minby), bool and ref update rules, cross-object reads through possibly
// null refs, and effect reads of every payload kind. Everything here
// qualifies for batch execution, so scalar and vectorized runs must agree
// bit for bit.
const srcVecBot = `
class Bot {
  state:
    number x = 0;
    number y = 0;
    number vx = 1;
    number vy = 0.5;
    number fuel = 100;
    number mode = 0;
    bool alert = false;
    ref<Bot> buddy = null;
  effects:
    number dx : sum;
    number dfuel : sum;
    number flag : max;
    ref<Bot> pick : minby;
  update:
    x = x + dx;
    y = y + vy;
    fuel = fuel + dfuel;
    alert = flag > 0;
    mode = mode + 1 > 3 ? 0 : mode + 1;
    buddy = pick != null ? pick : buddy;
  run {
    let speed = sqrt(vx * vx + vy * vy);
    dx <- vx * 0.5 + speed * 0.01;
    if (fuel < 50 || alert) {
      dfuel <- 2;
      flag <- buddy != null ? 1 : 0;
    } else {
      dfuel <- 0 - speed * 0.25;
      if (buddy != null) {
        pick <- buddy by buddy.x + id(buddy) * 0.001;
      }
    }
    waitNextTick;
    dfuel <- buddy.fuel * 0.001;
    dx <- clamp(x * 0.01, 0 - 1, 1);
    if (x > 40 && !alert) {
      flag <- 1;
    }
  }
}
`

func mustVecWorld(t *testing.T, src string, opts engine.Options) *engine.World {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compile.CompileChecked(info)
	if err != nil {
		t.Fatal(err)
	}
	w, err := engine.New(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func mustVecBaseline(t *testing.T, src string) *baseline.World {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	return baseline.New(info)
}

type spawner interface {
	Spawn(class string, init map[string]value.Value) (value.ID, error)
}

func populateBots(t *testing.T, seed int64, n int, worlds ...spawner) []value.ID {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]value.ID, 0, n)
	inits := make([]map[string]value.Value, n)
	for i := 0; i < n; i++ {
		inits[i] = map[string]value.Value{
			"x":    value.Num(float64(rng.Intn(200)) / 2),
			"y":    value.Num(float64(rng.Intn(100)) / 4),
			"vx":   value.Num(float64(rng.Intn(9)-4) / 2),
			"fuel": value.Num(float64(20 + rng.Intn(100))),
			"mode": value.Num(float64(rng.Intn(4))),
		}
	}
	buddies := make([]int, n)
	for i := range buddies {
		buddies[i] = rng.Intn(n + n/2) // some out of range → stays null
	}
	for wi, w := range worlds {
		var local []value.ID
		for i := 0; i < n; i++ {
			id, err := w.Spawn("Bot", inits[i])
			if err != nil {
				t.Fatal(err)
			}
			local = append(local, id)
		}
		if wi == 0 {
			ids = local
		}
	}
	// Buddy wiring must be identical across worlds; ids are assigned
	// deterministically so the same index mapping works everywhere.
	for _, w := range worlds {
		sw, ok := w.(interface {
			SetState(class string, id value.ID, attr string, v value.Value) error
		})
		if !ok {
			t.Fatal("world cannot SetState")
		}
		for i, bi := range buddies {
			if bi < n {
				if err := sw.SetState("Bot", ids[i], "buddy", value.Ref(ids[bi])); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return ids
}

var botAttrs = []string{"x", "y", "vx", "vy", "fuel", "mode", "alert", "buddy"}

type getter interface {
	Get(class string, id value.ID, attr string) (value.Value, bool)
}

func diffWorlds(a, b getter, ids []value.ID, exact bool) string {
	for _, id := range ids {
		for _, attr := range botAttrs {
			av, aok := a.Get("Bot", id, attr)
			bv, bok := b.Get("Bot", id, attr)
			if aok != bok {
				return fmt.Sprintf("bot %d %s: presence %v vs %v", id, attr, aok, bok)
			}
			if !aok {
				continue
			}
			same := av.Equal(bv)
			if !same && !exact && av.Kind() == value.KindNumber {
				same = value.NumbersEqual(av.AsNumber(), bv.AsNumber(), 1e-9)
			}
			if !same {
				return fmt.Sprintf("bot %d %s: %v vs %v", id, attr, av, bv)
			}
		}
	}
	return ""
}

// TestVectorizedMatchesScalarExactly is the tentpole's core claim: forcing
// batch execution produces bit-identical state trajectories to the scalar
// closure evaluator, across random worlds and seeds.
func TestVectorizedMatchesScalarExactly(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		n := 5 + int(seed*13)%70
		scalar := mustVecWorld(t, srcVecBot, engine.Options{Exec: plan.ExecScalar})
		vec := mustVecWorld(t, srcVecBot, engine.Options{Exec: plan.ExecVectorized})
		auto := mustVecWorld(t, srcVecBot, engine.Options{})
		ids := populateBots(t, seed, n, scalar, vec, auto)
		for tick := 0; tick < 8; tick++ {
			for name, w := range map[string]*engine.World{"scalar": scalar, "vectorized": vec, "auto": auto} {
				if err := w.RunTick(); err != nil {
					t.Fatalf("seed %d %s tick %d: %v", seed, name, tick, err)
				}
			}
			if d := diffWorlds(scalar, vec, ids, true); d != "" {
				t.Fatalf("seed %d tick %d scalar vs vectorized: %s", seed, tick, d)
			}
			if d := diffWorlds(scalar, auto, ids, true); d != "" {
				t.Fatalf("seed %d tick %d scalar vs auto: %s", seed, tick, d)
			}
		}
		if vec.ExecStats().VectorRows == 0 {
			t.Fatal("forced vectorized world reported no vectorized rows")
		}
		if scalar.ExecStats().VectorRows != 0 {
			t.Fatal("forced scalar world reported vectorized rows")
		}
	}
}

// TestVectorizedMatchesBaseline closes the triangle: the batch path must
// also agree with the object-at-a-time reference interpreter.
func TestVectorizedMatchesBaseline(t *testing.T) {
	vec := mustVecWorld(t, srcVecBot, engine.Options{Exec: plan.ExecVectorized})
	bl := mustVecBaseline(t, srcVecBot)
	ids := populateBots(t, 42, 50, vec, bl)
	for tick := 0; tick < 8; tick++ {
		if err := vec.RunTick(); err != nil {
			t.Fatalf("engine tick %d: %v", tick, err)
		}
		if err := bl.RunTick(); err != nil {
			t.Fatalf("baseline tick %d: %v", tick, err)
		}
		if d := diffWorlds(vec, bl, ids, false); d != "" {
			t.Fatalf("tick %d: %s", tick, d)
		}
	}
}

// TestVectorizedSpawnKillChurn stresses the alive mask and dense staging
// against mid-run spawns and kills (holes in the physical extent).
func TestVectorizedSpawnKillChurn(t *testing.T) {
	scalar := mustVecWorld(t, srcVecBot, engine.Options{Exec: plan.ExecScalar})
	vec := mustVecWorld(t, srcVecBot, engine.Options{Exec: plan.ExecVectorized})
	ids := populateBots(t, 7, 40, scalar, vec)
	rng := rand.New(rand.NewSource(99))
	live := append([]value.ID(nil), ids...)
	for tick := 0; tick < 10; tick++ {
		if tick%2 == 1 && len(live) > 10 {
			k := rng.Intn(len(live))
			for _, w := range []*engine.World{scalar, vec} {
				if err := w.Kill("Bot", live[k]); err != nil {
					t.Fatal(err)
				}
			}
			live = append(live[:k], live[k+1:]...)
		}
		if tick%3 == 2 {
			init := map[string]value.Value{"x": value.Num(float64(tick) * 3), "fuel": value.Num(60)}
			var nid value.ID
			for wi, w := range []*engine.World{scalar, vec} {
				id, err := w.Spawn("Bot", init)
				if err != nil {
					t.Fatal(err)
				}
				if wi == 0 {
					nid = id
				} else if id != nid {
					t.Fatalf("id drift: %d vs %d", id, nid)
				}
			}
			live = append(live, nid)
		}
		for _, w := range []*engine.World{scalar, vec} {
			if err := w.RunTick(); err != nil {
				t.Fatal(err)
			}
		}
		if d := diffWorlds(scalar, vec, live, true); d != "" {
			t.Fatalf("tick %d: %s", tick, d)
		}
	}
}

// TestVectorizedCrossEmitOrdering pins the reorder hazard: a scalar phase
// that cross-emits into its own class must disable phase vectorization for
// the whole class (running a vectorized phase first would interleave sum
// contributions in a different order than the scalar row loop). Catastrophic
// cancellation magnitudes make any reorder visible.
func TestVectorizedCrossEmitOrdering(t *testing.T) {
	const src = `
class Cell {
  state:
    number acc = 0;
    number amt = 0;
    ref<Cell> sink = null;
  effects:
    number d : sum;
  update:
    acc = acc + d;
  run {
    d <- 1;
    waitNextTick;
    if (sink != null) {
      sink.d <- amt;
    }
  }
}
`
	scalar := mustVecWorld(t, src, engine.Options{Exec: plan.ExecScalar})
	vec := mustVecWorld(t, src, engine.Options{Exec: plan.ExecVectorized})
	var ids []value.ID
	// Huge cancelling magnitudes: 1e16 + (-1e16) + 1 + 3 = 4 in scalar
	// fold order, but 1 + 1e16 absorbs the 1, giving 3 — any
	// contribution reorder diverges.
	amts := []float64{0, 1e16, 0, -1e16, 0, 3}
	for i := range amts {
		init := map[string]value.Value{"amt": value.Num(amts[i])}
		for wi, w := range []*engine.World{scalar, vec} {
			id, err := w.Spawn("Cell", init)
			if err != nil {
				t.Fatal(err)
			}
			if wi == 0 {
				ids = append(ids, id)
			}
		}
	}
	// Odd cells start in phase 1 (the cross-emitting phase) and point
	// their sink at cell 4 — a phase-0 row *after* rows 1 and 3 in
	// physical order. Scalar fold into cell 4: amt1, amt3, own 1, amt5;
	// a vectorized phase 0 running first would fold: 1, amt1, amt3, amt5
	// — different float results under catastrophic cancellation.
	for _, w := range []*engine.World{scalar, vec} {
		for i, id := range ids {
			if i%2 == 1 {
				if err := w.SetPC("Cell", id, 1); err != nil {
					t.Fatal(err)
				}
				if err := w.SetState("Cell", id, "sink", value.Ref(ids[4])); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for tick := 0; tick < 6; tick++ {
		if err := scalar.RunTick(); err != nil {
			t.Fatal(err)
		}
		if err := vec.RunTick(); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		sv := scalar.MustGet("Cell", id, "acc")
		vv := vec.MustGet("Cell", id, "acc")
		if !sv.Equal(vv) {
			t.Fatalf("cell %d acc: scalar %v, vectorized %v (contribution reorder)", id, sv, vv)
		}
	}
	// The update rule still vectorizes even though the phases may not.
	if vec.ExecStats().VectorRows == 0 {
		t.Error("update rule should still run vectorized")
	}
}

// flakyComp owns one attribute and fails its first Update call.
type flakyComp struct{ fails int }

func (f *flakyComp) Name() string { return "flaky" }
func (f *flakyComp) Update(ctx *engine.UpdateCtx) error {
	if f.fails > 0 {
		f.fails--
		return fmt.Errorf("induced failure")
	}
	return nil
}

// TestVecStagingDiscardedOnError pins a staleness hazard: if a component
// error aborts the update step after the vectorized rules staged their
// dense results, those results must be discarded — a later tick that picks
// the scalar path must not apply tick-old vectors over fresh values.
func TestVecStagingDiscardedOnError(t *testing.T) {
	const src = `
class Bot {
  state:
    number x = 0;
    number z = 0 by flaky;
  effects:
    number dx : sum;
  update:
    x = x + dx;
  run {
    dx <- 1;
  }
}
`
	run := func(mode plan.ExecMode) *engine.World {
		w := mustVecWorld(t, src, engine.Options{Exec: mode})
		if err := w.Register(&flakyComp{fails: 1}); err != nil {
			t.Fatal(err)
		}
		var ids []value.ID
		for i := 0; i < 200; i++ {
			id, err := w.Spawn("Bot", map[string]value.Value{"x": value.Num(float64(i))})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		if err := w.RunTick(); err == nil {
			t.Fatal("first tick must fail")
		}
		// Shrink the extent so ExecAuto flips to scalar (stale staged
		// vectors would now overwrite the scalar results).
		for _, id := range ids[4:] {
			if err := w.Kill("Bot", id); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.RunTick(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	auto := run(plan.ExecAuto)
	scalar := run(plan.ExecScalar)
	for _, id := range auto.IDs("Bot") {
		av := auto.MustGet("Bot", id, "x")
		sv := scalar.MustGet("Bot", id, "x")
		if !av.Equal(sv) {
			t.Fatalf("bot %d x: auto %v, scalar %v (stale staged vector applied)", id, av, sv)
		}
	}
}

// TestVectorizedFallbackMixedProgram forces batch mode on a program that is
// only partially vectorizable (accum joins, set effects, atomic blocks and
// string-free scalar rules mixed together) and checks it still matches the
// scalar path — the fallback contract.
func TestVectorizedFallbackMixedProgram(t *testing.T) {
	const src = `
class Agent {
  state:
    number x = 0;
    number r = 8;
    number hp = 100;
    set<number> tags;
  effects:
    number damage : sum;
    set<number> dtags : union;
  update:
    hp = hp - damage;
    tags = dtags;
  run {
    accum number near with sum over Agent a from Agent {
      if (a.x >= x - r && a.x <= x + r) {
        near <- 1;
        a.damage <- 0.125;
      }
    } in {
      if (near > 2) {
        dtags <= near;
      }
    }
  }
}
`
	scalar := mustVecWorld(t, src, engine.Options{Exec: plan.ExecScalar})
	vec := mustVecWorld(t, src, engine.Options{Exec: plan.ExecVectorized})
	var ids []value.ID
	for i := 0; i < 30; i++ {
		init := map[string]value.Value{"x": value.Num(float64(i * 3 % 50))}
		id, err := scalar.Spawn("Agent", init)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := vec.Spawn("Agent", init); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for tick := 0; tick < 5; tick++ {
		if err := scalar.RunTick(); err != nil {
			t.Fatal(err)
		}
		if err := vec.RunTick(); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		for _, attr := range []string{"hp", "tags"} {
			sv, _ := scalar.Get("Agent", id, attr)
			vv, _ := vec.Get("Agent", id, attr)
			if !sv.Equal(vv) {
				t.Fatalf("agent %d %s: %v vs %v", id, attr, sv, vv)
			}
		}
	}
	// hp vectorizes even though the phase does not.
	if vec.ExecStats().VectorRows == 0 {
		t.Error("update rule hp = hp - damage should have vectorized")
	}
}
