package engine

// Shared-nothing partitioned execution (§4.2 of the paper). With
// Options.Partitions > 0 every class extent is split across spatial
// partitions and the real tick pipeline — vectorized effect phases, the
// scalar row loop, batched joins over per-partition indexes — runs
// partition-at-a-time over each partition's owned rows plus read-only ghost
// replicas of the neighbor rows its probes can reach. This replaces the old
// standalone cluster simulator: the message, ghost, balance and
// index-memory numbers of E11/E12/E16 now come from the machinery that
// actually executes scripts.
//
// The moving parts, in tick order:
//
//   - Ownership. Each class designates up to two numeric position
//     attributes (Options.PartitionBy, else inferred from compiled join
//     ranges, else attrs named x/y); a cluster.Layout built from the
//     world's measured bounds maps positions to partitions. At every tick
//     start the assignment is rescanned: an object whose update moved it
//     across a boundary migrates (counted as a message), spawns are
//     assigned, deaths released. Classes with no spatial axes spread by id
//     hash.
//
//   - Ghost derivation. For each accum site, the compiled range conjuncts
//     are evaluated over the frozen probing extent and plan.InteractionRadius
//     turns them into per-dimension reaches around the best-fitting
//     partition axis. A partition's member view is then every source row
//     whose ownership interval — computed with the same clamped-coordinate
//     arithmetic as ownership itself, so float rounding can never drop a
//     boundary ghost — intersects the partition. Sites that cannot be
//     bounded (unbounded or frame-dependent predicates, computed source
//     sets, reactive-handler sites which probe post-update state, hash
//     layouts) fall back to one shared whole-extent index, accounted as a
//     full replica per partition.
//
//   - Execution. Vectorized phases run per partition as masked kernel
//     sweeps over the partition's row span (self-only emissions are
//     row-local, so direct writes stay deterministic). Scalar rows run per
//     partition in ascending physical-row order, staging every emission and
//     transaction into a per-partition sink tagged with its source row.
//     Probes resolve the partition-local index, and candidates are
//     canonicalized to physical-row order, so the ⊕ fold order per
//     accumulator is independent of the layout.
//
//   - Merge. After each class pass the per-partition sinks merge by source
//     row — a k-way merge of streams that are each row-sorted, i.e. exactly
//     the (partition, row) order — replaying the serial row loop's emission
//     order bit-for-bit. An emission whose target row is owned by another
//     partition counts as a cross-partition effect message.
//
// Workers composes: partitions fan out across the worker pool (per-partition
// sinks keep the merge deterministic regardless of scheduling). Deferred to
// ROADMAP: a multi-process transport behind the message staging, dynamic
// repartitioning (layouts are frozen at first tick), and incremental
// maintenance of partition-local grids.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/value"
)

// partWorld is the execution state of a partitioned world.
type partWorld struct {
	n         int
	ready     bool   // layouts measured and first assignment done
	assignVer uint64 // bumps whenever any row's ownership changes

	sinks    []*partSink
	mergeIdx []int
	loads    []int64 // per-partition row visits this tick

	buildList []partBuild // per-tick (site, partition) rebuild worklist

	// Reach-derivation scratch, reused across sites.
	axisPos [][]float64 // per probing axis: anchor positions
	boxLo   [][]float64 // per range dim: evaluated probe interval
	boxHi   [][]float64
}

type partBuild struct {
	site *siteRT
	pp   *sitePart
}

// partClass is the per-class partitioning state.
type partClass struct {
	axes   []int // state attr indices of the position axes (0..2)
	layout cluster.Layout

	assign   []int32    // per physical row: owning partition, -1 dead
	assignID []value.ID // id the assignment was made for (guards row reuse)
	spanLo   []int32    // per partition: owned physical row span [lo, hi)
	spanHi   []int32
}

// span returns partition p's owned row span clamped to the table capacity.
func (pc *partClass) span(p, capRows int) (int, int) {
	lo, hi := int(pc.spanLo[p]), int(pc.spanHi[p])
	if hi > capRows {
		hi = capRows
	}
	if lo >= hi {
		return 0, 0
	}
	return lo, hi
}

// dimReach is one range dimension's derived interaction reach: probes bound
// the dimension's source attribute within [anchor−lo, anchor+hi] where the
// anchor is the probing row's position on partition axis `axis` (-1 when the
// dimension could not be bounded against any axis).
type dimReach struct {
	axis   int
	lo, hi float64
}

// partSink stages one partition's effect emissions and transactions during
// a class pass, each tagged with the emitting physical row. Rows are
// appended in ascending order (the partition row loop), which is what makes
// the cross-partition merge a k-way merge of sorted streams.
type partSink struct {
	curRow  int32
	ems     []Emission
	rows    []int32
	txns    []*Txn
	txnRows []int32
}

func (s *partSink) emit(w *World, e Emission) {
	s.ems = append(s.ems, e)
	s.rows = append(s.rows, s.curRow)
}

func (s *partSink) addTxn(t *Txn) {
	s.txns = append(s.txns, t)
	s.txnRows = append(s.txnRows, s.curRow)
}

func (s *partSink) reset() {
	s.ems = s.ems[:0]
	s.rows = s.rows[:0]
	s.txns = s.txns[:0]
	s.txnRows = s.txnRows[:0]
}

// initPartitions validates the partitioning options at world construction.
// Layout measurement itself is deferred to the first tick, when the world
// has been populated.
func (w *World) initPartitions() error {
	if w.opts.Partitions <= 0 {
		return nil
	}
	for class, attrs := range w.opts.PartitionBy {
		rt, ok := w.classes[class]
		if !ok {
			return fmt.Errorf("engine: PartitionBy names unknown class %q", class)
		}
		if len(attrs) < 1 || len(attrs) > 2 {
			return fmt.Errorf("engine: PartitionBy[%s] needs 1 or 2 attrs, got %d", class, len(attrs))
		}
		for _, a := range attrs {
			i := rt.cls.StateIndex(a)
			if i < 0 {
				return fmt.Errorf("engine: PartitionBy names unknown attribute %s.%s", class, a)
			}
			if rt.cls.State[i].Kind != value.KindNumber {
				return fmt.Errorf("engine: PartitionBy attribute %s.%s is %s, want number", class, a, rt.cls.State[i].Kind)
			}
		}
	}
	pw := &partWorld{n: w.opts.Partitions}
	pw.loads = make([]int64, pw.n)
	pw.mergeIdx = make([]int, pw.n)
	pw.sinks = make([]*partSink, pw.n)
	for i := range pw.sinks {
		pw.sinks[i] = &partSink{}
	}
	w.parts = pw
	return nil
}

// partitionAxes infers a class's position attributes: the explicit
// PartitionBy designation, else the attrs its compiled join sites range
// over when it is the source class, else numeric attrs named x/y.
func (w *World) partitionAxes(rt *classRT) []int {
	if attrs, ok := w.opts.PartitionBy[rt.name]; ok {
		axes := make([]int, 0, 2)
		for _, a := range attrs {
			axes = append(axes, rt.cls.StateIndex(a))
		}
		return axes
	}
	var axes []int
	seen := map[int]bool{}
	for _, site := range w.sites {
		if site.step.SourceClass != rt.name || site.step.Join == nil {
			continue
		}
		for _, r := range site.step.Join.Ranges {
			if !seen[r.AttrIdx] && rt.cls.State[r.AttrIdx].Kind == value.KindNumber {
				seen[r.AttrIdx] = true
				axes = append(axes, r.AttrIdx)
			}
		}
	}
	// Deterministic order, at most two axes.
	for i := 1; i < len(axes); i++ {
		for j := i; j > 0 && axes[j] < axes[j-1]; j-- {
			axes[j], axes[j-1] = axes[j-1], axes[j]
		}
	}
	if len(axes) > 2 {
		axes = axes[:2]
	}
	if len(axes) > 0 {
		return axes
	}
	for _, name := range []string{"x", "y"} {
		if i := rt.cls.StateIndex(name); i >= 0 && rt.cls.State[i].Kind == value.KindNumber {
			axes = append(axes, i)
		}
	}
	return axes
}

// ensurePartitionLayouts measures world bounds and freezes each class's
// layout on the first partitioned tick (dynamic repartitioning is an open
// item, see ROADMAP). Positions that later wander outside the measured box
// clamp to the edge partitions.
func (w *World) ensurePartitionLayouts() {
	pw := w.parts
	if pw.ready {
		return
	}
	for _, rt := range w.order {
		axes := w.partitionAxes(rt)
		mode := w.opts.Partition
		minX, maxX, minY, maxY := 0.0, 1.0, 0.0, 1.0
		if len(axes) > 0 {
			minX, maxX = columnBounds(rt.tab, axes[0])
		}
		if len(axes) > 1 {
			minY, maxY = columnBounds(rt.tab, axes[1])
		}
		layout, err := cluster.NewLayout(w.execCosts, mode, pw.n, len(axes), minX, maxX, minY, maxY)
		if err != nil {
			// Partitions >= 1 is validated at construction; unreachable.
			panic(err)
		}
		rt.prt = &partClass{
			axes:   axes,
			layout: layout,
			spanLo: make([]int32, pw.n),
			spanHi: make([]int32, pw.n),
		}
	}
	pw.ready = true
}

// columnBounds returns the min/max of a numeric column over live rows,
// ignoring NaNs; a degenerate or empty extent yields a unit box.
func columnBounds(tab *table.Table, ci int) (lo, hi float64) {
	col := tab.NumColumn(ci)
	lo, hi = math.Inf(1), math.Inf(-1)
	for r, ok := range tab.AliveMask() {
		if !ok {
			continue
		}
		v := col[r]
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !(lo < hi) {
		if math.IsInf(lo, 1) {
			lo = 0
		}
		hi = lo + 1
	}
	return lo, hi
}

// assignPartitions rescans ownership at tick start: every live row's owner
// is recomputed from its current position with the frozen layout, so
// update-step movement across a boundary shows up here as a migration
// message, spawns get assigned and deaths released. The scan also refreshes
// each partition's owned row span (the range the per-partition executors
// iterate).
func (w *World) assignPartitions(track bool) {
	pw := w.parts
	changed := false
	for _, rt := range w.order {
		pc := rt.prt
		tab := rt.tab
		capRows := tab.Cap()
		for len(pc.assign) < capRows {
			pc.assign = append(pc.assign, -1)
			pc.assignID = append(pc.assignID, 0)
		}
		for p := 0; p < pw.n; p++ {
			pc.spanLo[p] = int32(capRows)
			pc.spanHi[p] = 0
		}
		alive := tab.AliveMask()
		ids := tab.RawIDs()
		var colX, colY []float64
		if len(pc.axes) > 0 {
			colX = tab.NumColumn(pc.axes[0])
		}
		if len(pc.axes) > 1 {
			colY = tab.NumColumn(pc.axes[1])
		}
		for r := 0; r < capRows; r++ {
			if !alive[r] {
				if pc.assign[r] != -1 {
					pc.assign[r] = -1
					changed = true
				}
				continue
			}
			x, y := 0.0, 0.0
			if colX != nil {
				x = colX[r]
			}
			if colY != nil {
				y = colY[r]
			}
			owner := int32(pc.layout.Owner(x, y, ids[r]))
			prev := pc.assign[r]
			if prev != owner || pc.assignID[r] != ids[r] {
				if prev >= 0 && pc.assignID[r] == ids[r] && track {
					// Same object, new partition: a boundary migration.
					w.execStats.MigratedRows++
					w.execStats.PartMsgsMigrate++
					w.execStats.PartBytes += cluster.BytesPerMigration
				}
				pc.assign[r] = owner
				pc.assignID[r] = ids[r]
				changed = true
			}
			if int32(r) < pc.spanLo[owner] {
				pc.spanLo[owner] = int32(r)
			}
			if int32(r)+1 > pc.spanHi[owner] {
				pc.spanHi[owner] = int32(r) + 1
			}
		}
	}
	if changed {
		pw.assignVer++
	}
}

// preparePartitionedSites is prepareSites for partitioned worlds: ownership
// rescan, then per site either a shared whole-extent index (with full
// replication accounted) or per-partition member views and indexes with
// ghost margins derived from the compiled predicates.
func (w *World) preparePartitionedSites() {
	pw := w.parts
	track := !w.opts.DisableStats
	var t0 time.Time
	if track {
		t0 = time.Now()
	}
	w.ensurePartitionLayouts()
	w.assignPartitions(track)
	stateVer := w.stateFingerprint()
	for i := range pw.loads {
		pw.loads[i] = 0
	}

	pw.buildList = pw.buildList[:0]
	for _, site := range w.sites {
		srcRT, n, p := w.decideSite(site)
		if srcRT == nil {
			// Computed source sets never consult an index; unanalyzed
			// bodies scan the member view, which for shared sites is the
			// full live extent.
			site.shared = true
			if site.step.SourceFn == nil {
				src := w.classes[site.step.SourceClass]
				w.fillSharedView(site, src, track)
			}
			continue
		}
		if n == 0 || p == 0 {
			site.strategy = plan.NestedLoop
			site.shared = true
			pp := &site.parts[0]
			pp.tree, pp.hash = nil, nil
			pp.builtOK = false
			pp.rowsBuf = srcRT.tab.LiveRows(pp.rowsBuf[:0])
			pp.view = srcRT.tab.ViewOf(pp.rowsBuf)
			continue
		}

		spatial := false
		if site.reachDerived && site.reachStateVer == stateVer {
			spatial = site.reachSpatial // state untouched ⇒ reach untouched
		} else {
			spatial = w.deriveSiteReach(site, srcRT)
			site.reachDerived = true
			site.reachSpatial = spatial
			site.reachStateVer = stateVer
		}
		site.shared = !spatial
		if !spatial {
			w.fillSharedView(site, srcRT, track)
			pp := &site.parts[0]
			if site.strategy == plan.NestedLoop {
				pp.builtOK = false
				continue
			}
			switch w.siteMaint(site, pp, srcRT, true) {
			case plan.MaintReuse:
				if track {
					w.execStats.IndexReuses++
				}
			case plan.MaintIncremental:
				if track {
					w.execStats.IndexIncrements++
					w.chargeGhosts(site, int64(pw.n-1)*int64(n))
				}
			default:
				pw.buildList = append(pw.buildList, partBuild{site: site, pp: pp})
				if track {
					w.chargeGhosts(site, int64(pw.n-1)*int64(n))
				}
			}
			continue
		}

		w.prepareSpatialSite(site, srcRT, track)
	}

	// Rebuilds fan out across the worker pool: member views are already
	// filled (serially, above), so workers only sort entries and build
	// trees/grids into their own retained arenas.
	if w.parallelOK() && len(pw.buildList) > 1 {
		w.buildPartsParallel(pw.buildList)
	} else {
		for _, b := range pw.buildList {
			w.buildPartIndex(b.site, b.pp)
		}
	}
	if track {
		w.execStats.IndexBuildNanos += time.Since(t0).Nanoseconds()
	}
}

// fillSharedView points a shared site's single part at the full live
// extent and accounts it as one conceptual replica per other partition —
// the §4.2 pathology of partitioning-oblivious predicates. The member view
// is overwritten, so any retained member-scoped state is invalidated: a
// later spatial tick must refill, and the shared ladder below must never
// reuse an index that only covered one partition's members.
func (w *World) fillSharedView(site *siteRT, srcRT *classRT, track bool) {
	pp := &site.parts[0]
	pp.rowsBuf = srcRT.tab.LiveRows(pp.rowsBuf[:0])
	pp.view = srcRT.tab.ViewOf(pp.rowsBuf)
	pp.memberViewOK = false
	if pp.builtMembers {
		pp.builtOK = false
	}
	pp.ghosts = int64(w.parts.n-1) * int64(len(pp.rowsBuf))
	if track {
		w.execStats.GhostRows += pp.ghosts
		if site.step.Join == nil {
			// Unindexed whole-extent scans have no build/reuse ladder to
			// hang refresh traffic on: charge full replication per tick.
			w.execStats.PartMsgsGhost += pp.ghosts
			w.execStats.PartBytes += pp.ghosts * cluster.BytesPerGhost
		}
	}
}

// chargeGhosts accounts ghost refresh messages for one site's replicas
// (called when its indexes are rebuilt or patched — a reused index means
// nothing changed, so nothing is sent).
func (w *World) chargeGhosts(site *siteRT, ghosts int64) {
	w.execStats.PartMsgsGhost += ghosts
	w.execStats.PartBytes += ghosts * cluster.BytesPerGhost
}

// reachEqual compares derived reaches bit-for-bit (NaN never occurs: empty
// reaches are -Inf, unbounded dims are excluded by axis == -1).
func reachEqual(a, b []dimReach) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prepareSpatialSite brings one spatially bounded site's per-partition
// views and indexes up to date: reuse everything when nothing that feeds
// them changed (source columns, structure, ownership, reach, strategy);
// otherwise refill the member views in one pass and queue index rebuilds.
func (w *World) prepareSpatialSite(site *siteRT, srcRT *classRT, track bool) {
	pw := w.parts
	tab := srcRT.tab
	for len(site.parts) < pw.n {
		site.parts = append(site.parts, sitePart{})
	}

	fresh := site.builtReachOK && reachEqual(site.reach, site.builtReach)
	if fresh {
		for i := range site.parts[:pw.n] {
			pp := &site.parts[i]
			if !pp.memberViewOK || pp.builtAssign != pw.assignVer ||
				pp.builtStruct != tab.StructVersion() {
				fresh = false
				break
			}
			if site.strategy != plan.NestedLoop &&
				(!pp.builtOK || pp.builtStrategy != site.strategy || !pp.builtMembers) {
				fresh = false
				break
			}
			if site.strategy == plan.GridIndex && w.gridCell(site, pp) != pp.builtCell {
				fresh = false
				break
			}
			for vi, a := range site.srcAttrs {
				if vi >= len(pp.builtVers) || tab.ColVersion(a) != pp.builtVers[vi] {
					fresh = false
					break
				}
			}
			if !fresh {
				break
			}
		}
	}
	ghosts := int64(0)
	if fresh {
		for i := range site.parts[:pw.n] {
			ghosts += site.parts[i].ghosts
		}
		if track {
			w.execStats.GhostRows += ghosts
			w.execStats.IndexReuses++
		}
		return
	}

	ghosts = w.fillSiteMembers(site, srcRT)
	site.builtReach = append(site.builtReach[:0], site.reach...)
	site.builtReachOK = true
	if track {
		w.execStats.GhostRows += ghosts
		w.chargeGhosts(site, ghosts)
	}
	for i := range site.parts[:pw.n] {
		pp := &site.parts[i]
		pp.memberViewOK = true
		pp.builtAssign = pw.assignVer
		if site.strategy == plan.NestedLoop {
			pp.builtOK = false
			pp.noteBuilt(site, tab) // version basis for next tick's freshness check
			continue
		}
		pw.buildList = append(pw.buildList, partBuild{site: site, pp: pp})
	}
}

// stateFingerprint folds every table's structural and per-column write
// versions into one monotone counter: equality across ticks means no
// committed state changed anywhere, which is the (sound, conservative)
// condition under which cached reach derivations stay valid.
func (w *World) stateFingerprint() uint64 {
	var v uint64
	for _, rt := range w.order {
		v += rt.tab.StructVersion()
		for ci := range rt.tab.Columns() {
			v += rt.tab.ColVersion(ci)
		}
	}
	return v
}

// deriveSiteReach evaluates the site's compiled range conjuncts over the
// frozen probing extent and anchors each dimension to the partition axis
// with the tightest finite reach (plan.InteractionRadius). Returns false —
// whole-world fallback — when nothing could be bounded: no self-only range
// conjuncts, a hash layout, a reactive-handler site (it probes post-update
// state the tick-start ghosts would not cover), or unbounded predicates.
func (w *World) deriveSiteReach(site *siteRT, srcRT *classRT) bool {
	pw := w.parts
	if site.phase < 0 {
		return false
	}
	probeRT := w.classes[site.class]
	pc := probeRT.prt
	if pc.layout.Axes == 0 {
		return false // hash layout or no spatial axes
	}
	j := site.step.Join
	dims := len(j.Ranges)
	site.reach = site.reach[:0]
	for d := 0; d < dims; d++ {
		site.reach = append(site.reach, dimReach{axis: -1})
	}

	// Gather anchors and evaluate every self-only dimension's interval per
	// probing row (all phases: a conservative superset of actual probers).
	naxes := pc.layout.Axes
	for len(pw.axisPos) < naxes {
		pw.axisPos = append(pw.axisPos, nil)
	}
	for len(pw.boxLo) < dims {
		pw.boxLo = append(pw.boxLo, nil)
		pw.boxHi = append(pw.boxHi, nil)
	}
	for k := 0; k < naxes; k++ {
		pw.axisPos[k] = pw.axisPos[k][:0]
	}
	anyDim := false
	for d := range j.Ranges {
		pw.boxLo[d] = pw.boxLo[d][:0]
		pw.boxHi[d] = pw.boxHi[d][:0]
		if j.Ranges[d].SelfOnly {
			anyDim = true
		}
	}
	if !anyDim {
		return false
	}
	ctx := expr.Ctx{W: w, Class: site.class}
	tab := probeRT.tab
	for r, ok := range tab.AliveMask() {
		if !ok {
			continue
		}
		ctx.SelfID = tab.ID(r)
		ctx.Self = rowReader{rt: probeRT, row: r}
		for k := 0; k < naxes; k++ {
			pw.axisPos[k] = append(pw.axisPos[k], tab.NumColumn(pc.axes[k])[r])
		}
		for d, rd := range j.Ranges {
			if !rd.SelfOnly {
				continue
			}
			lo, hi := evalDimBounds(&ctx, rd)
			pw.boxLo[d] = append(pw.boxLo[d], lo)
			pw.boxHi[d] = append(pw.boxHi[d], hi)
		}
	}

	anchored := false
	for d, rd := range j.Ranges {
		if !rd.SelfOnly {
			continue
		}
		best, bestSpan := -1, math.Inf(1)
		var bestLo, bestHi float64
		for k := 0; k < naxes; k++ {
			rLo, rHi := plan.InteractionRadius(pw.axisPos[k], pw.boxLo[d], pw.boxHi[d])
			if !plan.BoundedReach(rLo, rHi) {
				continue
			}
			if span := rLo + rHi; span < bestSpan {
				best, bestSpan = k, span
				bestLo, bestHi = rLo, rHi
			}
		}
		if best >= 0 {
			site.reach[d] = dimReach{axis: best, lo: bestLo, hi: bestHi}
			anchored = true
		}
	}
	return anchored
}

// evalDimBounds evaluates one range dimension's probe interval for the
// bound row — the per-dimension core of evalBox, shared semantics included:
// a NaN bound collapses the interval to empty.
func evalDimBounds(ctx *expr.Ctx, rd compile.RangeDim) (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	nan := false
	for _, f := range rd.Lo {
		v := f(ctx).AsNumber()
		if math.IsNaN(v) {
			nan = true
		}
		if v > lo {
			lo = v
		}
	}
	for _, f := range rd.Hi {
		v := f(ctx).AsNumber()
		if math.IsNaN(v) {
			nan = true
		}
		if v < hi {
			hi = v
		}
	}
	if nan {
		lo, hi = math.Inf(1), math.Inf(-1)
	}
	return lo, hi
}

// fillSiteMembers rebuilds every partition's member view for a spatial
// site in one pass over the source extent: a row joins each partition whose
// ownership interval — the owners of every anchor position that could reach
// it, computed with the layout's own monotone clamped-coordinate functions —
// it intersects on all anchored dimensions. Returns the total ghost count
// (members owned elsewhere).
func (w *World) fillSiteMembers(site *siteRT, srcRT *classRT) int64 {
	pw := w.parts
	probeRT := w.classes[site.class]
	layout := probeRT.prt.layout
	srcAssign := srcRT.prt.assign
	tab := srcRT.tab
	j := site.step.Join

	for i := range site.parts[:pw.n] {
		pp := &site.parts[i]
		pp.rowsBuf = pp.rowsBuf[:0]
		pp.ghosts = 0
	}
	ghosts := int64(0)
	alive := tab.AliveMask()
	for r, ok := range alive {
		if !ok {
			continue
		}
		cxLo, cxHi := 0, layout.PX-1
		cyLo, cyHi := 0, layout.PY-1
		for d, rc := range site.reach {
			if rc.axis < 0 {
				continue
			}
			v := tab.NumColumn(j.Ranges[d].AttrIdx)[r]
			// Anchors that can reach v lie in [v−reachHi, v+reachLo]; their
			// owners are a contiguous clamped-coordinate interval.
			if rc.axis == 0 {
				if c := layout.CoordX(v - rc.hi); c > cxLo {
					cxLo = c
				}
				if c := layout.CoordX(v + rc.lo); c < cxHi {
					cxHi = c
				}
			} else {
				if c := layout.CoordY(v - rc.hi); c > cyLo {
					cyLo = c
				}
				if c := layout.CoordY(v + rc.lo); c < cyHi {
					cyHi = c
				}
			}
		}
		for cy := cyLo; cy <= cyHi; cy++ {
			for cx := cxLo; cx <= cxHi; cx++ {
				p := layout.Part(cx, cy)
				pp := &site.parts[p]
				pp.rowsBuf = append(pp.rowsBuf, int32(r))
				if srcAssign[r] != int32(p) {
					pp.ghosts++
					ghosts++
				}
			}
		}
	}
	for i := range site.parts[:pw.n] {
		pp := &site.parts[i]
		pp.view = tab.ViewOf(pp.rowsBuf)
	}
	return ghosts
}

// buildPartIndex rebuilds one partition's index — over its member view for
// spatial sites, over the whole extent for shared ones (the entry gather
// may not shard there: several builds can be in flight on the pool).
func (w *World) buildPartIndex(site *siteRT, pp *sitePart) {
	srcRT := w.classes[site.step.SourceClass]
	if site.shared {
		w.buildSiteIndex(site, pp, srcRT, nil, false)
		return
	}
	w.buildSiteIndex(site, pp, srcRT, pp.view.Rows(), false)
}

// fillMemberEntries materializes (id, row, coords) entries for a member
// view, in view (= physical row) order.
func fillMemberEntries(tab *table.Table, dims []int, rows []int32, entries []index.Entry, coords []float64) {
	ids := tab.RawIDs()
	d := len(dims)
	for k, r := range rows {
		c := coords[k*d : k*d+d : k*d+d]
		for di, ai := range dims {
			c[di] = tab.NumColumn(ai)[int(r)]
		}
		entries[k] = index.Entry{ID: ids[r], Row: r, Coords: c}
	}
}

// buildPartsParallel fans the per-partition index rebuilds out across the
// worker pool. Views are immutable by now; every build writes only its own
// retained arena.
func (w *World) buildPartsParallel(builds []partBuild) {
	w.ensureWorkers()
	nw := w.opts.Workers
	if nw > len(builds) {
		nw = len(builds)
	}
	var next int64
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(atomic.AddInt64(&next, 1)) - 1
				if j >= len(builds) {
					return
				}
				w.buildPartIndex(builds[j].site, builds[j].pp)
			}
		}()
	}
	wg.Wait()
}

// vecPhasePart is vecPhaseRange with the partition-ownership test folded
// into the selection mask: one partition's masked kernel sweep over its
// owned row span. Emissions are self-only and therefore row-disjoint across
// partitions, so direct accumulator writes stay deterministic.
func (w *World) vecPhasePart(rt *classRT, phase int, vp *vecPhase, lo, hi int, assign []int32, part int32) int {
	v := rt.vec
	mask := v.masks[0]
	selected := 0
	if rt.plan.NumPhases > 1 {
		pcCol := rt.tab.NumColumn(rt.pcCol)
		for r := lo; r < hi; r++ {
			mask[r] = assign[r] == part && int(pcCol[r]) == phase
			if mask[r] {
				selected++
			}
		}
	} else {
		for r := lo; r < hi; r++ {
			mask[r] = assign[r] == part
			if mask[r] {
				selected++
			}
		}
	}
	if selected > 0 {
		w.execVecSteps(rt, vp.steps, mask, lo, hi, &v.machine, nil)
	}
	return selected
}

// runEffectPhasePartitioned executes the query/effect phase partition-at-a-
// time: per class, the vectorized phases sweep each partition's span with an
// ownership mask, then every partition's scalar row loop runs (fanned out
// across the worker pool when Workers > 1) probing partition-local indexes
// and staging emissions into its sink, and finally the sinks merge in
// (partition, row) order — which is exactly ascending physical-row order,
// the serial fold order.
func (w *World) runEffectPhasePartitioned() {
	pw := w.parts
	track := !w.opts.DisableStats
	for _, rt := range w.order {
		if rt.plan.Decl.Run == nil || rt.tab.Len() == 0 {
			continue
		}
		pc := rt.prt
		capRows := rt.tab.Cap()
		vecSel, _ := w.chooseEffectExec(rt, rt.phaseCounts())
		if vecSel != nil {
			w.prepareVecPhases(rt, vecSel, capRows)
			vecRows := int64(0)
			for p := 0; p < pw.n; p++ {
				lo, hi := pc.span(p, capRows)
				if lo >= hi {
					continue
				}
				sel := 0
				for ph, on := range vecSel {
					if on {
						sel += w.vecPhasePart(rt, ph, rt.vec.phases[ph], lo, hi, pc.assign, int32(p))
					}
				}
				pw.loads[p] += int64(sel)
				vecRows += int64(sel)
			}
			if track {
				w.execStats.VectorRows += vecRows
			}
		}

		for _, s := range pw.sinks {
			s.reset()
		}
		runPart := func(p int) {
			sink := pw.sinks[p]
			x := newExecCtx(w, sink, rt.plan.NumSlots)
			x.part = int32(p)
			tab := rt.tab
			lo, hi := pc.span(p, capRows)
			scalarRows := int64(0)
			for r := lo; r < hi; r++ {
				if pc.assign[r] != int32(p) {
					continue
				}
				pcv := int(tab.At(r, rt.pcCol).AsNumber())
				if vecSel != nil && vecSel[pcv] {
					continue
				}
				steps := rt.plan.Phases[pcv]
				if len(steps) == 0 {
					continue
				}
				sink.curRow = int32(r)
				x.bindRow(rt, r)
				x.runSteps(steps)
				scalarRows++
			}
			atomic.AddInt64(&pw.loads[p], scalarRows+x.joinMatches)
			if track {
				atomic.AddInt64(&w.execStats.ScalarRows, scalarRows)
			}
			x.flushJoinStats()
		}
		w.runParts(runPart)
		w.mergePartSinks(track)
	}
}

// runParts dispatches fn(p) for every partition, across the worker pool
// when it pays (per-partition sinks make the result order-independent of
// scheduling). Tracing keeps the loop serial so hooks fire in (partition,
// row) order.
func (w *World) runParts(fn func(p int)) {
	pw := w.parts
	nw := w.opts.Workers
	if nw > pw.n {
		nw = pw.n
	}
	if nw <= 1 || w.tracer != nil {
		for p := 0; p < pw.n; p++ {
			fn(p)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(atomic.AddInt64(&next, 1)) - 1
				if p >= pw.n {
					return
				}
				fn(p)
			}
		}()
	}
	wg.Wait()
}

// mergeByRow runs the k-way merge shared by effects and transactions:
// every sink's stream is sorted by source row (rows(si)), rows are unique
// across sinks (each row is owned by exactly one partition), and apply is
// invoked in globally ascending row order — exactly the (partition, row)
// order, which is the serial row loop's order.
func (w *World) mergeByRow(rows func(si int) []int32, apply func(si, i int)) {
	pw := w.parts
	idx := pw.mergeIdx
	for i := range idx {
		idx[i] = 0
	}
	for {
		best, bestRow := -1, int32(0)
		for si := range pw.sinks {
			if rs := rows(si); idx[si] < len(rs) {
				if r := rs[idx[si]]; best < 0 || r < bestRow {
					best, bestRow = si, r
				}
			}
		}
		if best < 0 {
			return
		}
		rs := rows(best)
		for idx[best] < len(rs) && rs[idx[best]] == bestRow {
			apply(best, idx[best])
			idx[best]++
		}
	}
}

// mergePartSinks folds the per-partition sinks into the world's effect
// buffers and transaction list in ascending source-row order, replaying
// exactly the emission order of the serial row loop. Emissions whose target
// row is owned by a different partition than their source row count as
// cross-partition effect messages.
func (w *World) mergePartSinks(track bool) {
	pw := w.parts
	w.mergeByRow(
		func(si int) []int32 { return pw.sinks[si].rows },
		func(si, i int) {
			e := pw.sinks[si].ems[i]
			rt := w.classes[e.Class]
			row := rt.tab.Row(e.Target)
			if row < 0 {
				return // dangling target: contribution is dropped
			}
			rt.fx[e.AttrIdx].add(row, e.Val, e.Key)
			if track && rt.prt.assign[row] != int32(si) {
				w.execStats.PartMsgsEffect++
				w.execStats.PartBytes += cluster.BytesPerEffect
			}
		})
	// Transactions merge the same way, so admission sees them in the serial
	// collection order.
	w.mergeByRow(
		func(si int) []int32 { return pw.sinks[si].txnRows },
		func(si, i int) { w.txns = append(w.txns, pw.sinks[si].txns[i]) })
}

// runHandlersPartitioned evaluates reactive handlers partition-at-a-time
// with the same sink staging and (partition, row)-ordered merge as the
// effect phase. Handler accum sites are always shared (they probe
// post-update state), so partition contexts resolve parts[0].
func (w *World) runHandlersPartitioned() {
	pw := w.parts
	track := !w.opts.DisableStats
	for _, rt := range w.order {
		if len(rt.plan.Handlers) == 0 || rt.tab.Len() == 0 {
			continue
		}
		pc := rt.prt
		capRows := rt.tab.Cap()
		for _, s := range pw.sinks {
			s.reset()
		}
		runPart := func(p int) {
			sink := pw.sinks[p]
			x := newExecCtx(w, sink, rt.plan.NumSlots)
			x.part = int32(p)
			lo, hi := pc.span(p, capRows)
			rows := int64(0)
			for r := lo; r < hi; r++ {
				if pc.assign[r] != int32(p) {
					continue
				}
				sink.curRow = int32(r)
				x.bindRow(rt, r)
				for _, h := range rt.plan.Handlers {
					if h.Cond(&x.ctx).AsBool() {
						x.runSteps(h.Body)
					}
				}
				rows++
			}
			atomic.AddInt64(&pw.loads[p], rows)
			if track {
				atomic.AddInt64(&w.execStats.HandlerRows, rows)
			}
			x.flushJoinStats()
		}
		w.runParts(runPart)
		w.mergePartSinks(track)
	}
}

// foldPartitionLoads closes the tick's load-balance accounting.
func (w *World) foldPartitionLoads() {
	if w.opts.DisableStats {
		return
	}
	pw := w.parts
	maxLoad, sum := int64(0), int64(0)
	for _, l := range pw.loads {
		sum += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	w.execStats.PartLoadMax += maxLoad
	w.execStats.PartLoadSum += sum
}

// Partitions returns the configured partition count (0 = partitioned
// execution disabled).
func (w *World) Partitions() int {
	if w.parts == nil {
		return 0
	}
	return w.parts.n
}

// PartitionIndexBytes estimates each partition's resident accum-index
// memory — the §4.2 partitioned index memory question, measured from the
// engine's real per-tick indexes. Shared (whole-world fallback) indexes are
// charged to every partition: under shared-nothing execution each node
// would hold a full replica.
func (w *World) PartitionIndexBytes() []int64 {
	if w.parts == nil {
		return nil
	}
	out := make([]int64, w.parts.n)
	for _, site := range w.sites {
		if site.shared {
			b := site.parts[0].indexBytes()
			for p := range out {
				out[p] += b
			}
			continue
		}
		for p := 0; p < w.parts.n && p < len(site.parts); p++ {
			out[p] += site.parts[p].indexBytes()
		}
	}
	return out
}

func (pp *sitePart) indexBytes() int64 {
	if !pp.builtOK {
		return 0
	}
	b := int64(0)
	if pp.tree != nil {
		b += int64(pp.tree.EstimatedBytes())
	}
	if pp.hash != nil {
		b += int64(pp.hash.EstimatedBytes())
	}
	return b
}

// SiteReach describes one accum site's derived interaction radius — the
// per-class-pair answer to "how far can a probe reach", as used for ghost
// margins. Valid after at least one partitioned tick.
type SiteReach struct {
	Class  string // probing class
	Source string // iterated class
	Phase  int
	Shared bool // whole-world fallback (unbounded, handler, hash layout, …)
	Dims   []SiteReachDim
}

// SiteReachDim is one range dimension's reach around its anchor axis.
type SiteReachDim struct {
	Attr     string // source attribute the dimension bounds
	Axis     string // probing-class position attribute anchoring it
	Lo, Hi   float64
	Anchored bool
}

// InteractionRadii reports every accum site's derived reach (per probing/
// source class pair) from the last prepared tick.
func (w *World) InteractionRadii() []SiteReach {
	if w.parts == nil {
		return nil
	}
	var out []SiteReach
	for _, site := range w.sites {
		sr := SiteReach{Class: site.class, Source: site.step.SourceClass, Phase: site.phase, Shared: site.shared}
		if j := site.step.Join; j != nil {
			srcRT := w.classes[site.step.SourceClass]
			probeRT := w.classes[site.class]
			for d, rd := range j.Ranges {
				dim := SiteReachDim{Attr: srcRT.cls.State[rd.AttrIdx].Name}
				if d < len(site.reach) && site.reach[d].axis >= 0 {
					rc := site.reach[d]
					dim.Anchored = true
					dim.Axis = probeRT.cls.State[probeRT.prt.axes[rc.axis]].Name
					dim.Lo, dim.Hi = rc.lo, rc.hi
				}
				sr.Dims = append(sr.Dims, dim)
			}
		}
		out = append(out, sr)
	}
	return out
}
