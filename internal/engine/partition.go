package engine

// Shared-nothing partitioned execution (§4.2 of the paper). With
// Options.Partitions > 0 every class extent is split across spatial
// partitions and the real tick pipeline — vectorized effect phases, the
// scalar row loop, batched joins over per-partition indexes — runs
// partition-at-a-time over each partition's owned rows plus read-only ghost
// replicas of the neighbor rows its probes can reach.
//
// The runtime is decomposed along its three concerns:
//
//   - partition.go (this file): the layout lifecycle. Ownership layouts are
//     versioned epochs: the first partitioned tick measures world bounds
//     and installs epoch 1 per class, and from then on a per-class
//     rebalancer (plan.Rebalancer over plan.Costs.ChooseRebalance) watches
//     the per-partition load tally, boundary-migration churn and clamped
//     (out-of-bounds) row counts, and installs a successor epoch when the
//     modeled imbalance penalty amortizes the re-layout: re-measured
//     drift-widened bounds (cluster.Layout.Remeasure) when the box went
//     stale, population-quantile cuts that split hot partitions
//     (cluster.Layout.Split) when the population clustered. Ownership is
//     rescanned every tick, so an epoch change shows up as mass migration
//     and every downstream consumer (member views, indexes, spans)
//     refreshes through the ordinary version ladder.
//
//   - partition_view.go: member views and per-partition indexes. For each
//     accum site the compiled range conjuncts are evaluated over the frozen
//     probing extent, plan.InteractionRadius turns them into per-dimension
//     reaches, and each partition's member view (owned rows + ghosts) is
//     filled with the layout's own monotone clamped-coordinate arithmetic —
//     identical under every epoch, so no float rounding can drop a boundary
//     ghost across a rebalance. Per-partition grids are patched in place by
//     the member-view-aware index.Grid.SyncRows when churn is small.
//
//   - partition_exec.go: partition-parallel execution. Partitions fan out
//     across the worker pool for vectorized phases (per-worker vexpr
//     scratch; self-only emissions are row-disjoint across partitions),
//     scalar rows and handlers; per-partition sinks merge in (partition,
//     row) order — exactly ascending physical-row order — which is what
//     makes ANY partition count, layout, epoch sequence and worker count
//     bit-identical to Partitions=1.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/value"
)

// partWorld is the execution state of a partitioned world.
type partWorld struct {
	n         int
	ready     bool   // layouts measured and first assignment done
	assignVer uint64 // bumps whenever any row's ownership changes

	sinks    []*partSink
	mergeIdx []int
	loads    []int64 // per-partition fold scratch (foldPartitionLoads)

	buildList []partBuild // per-tick (site, partition) rebuild worklist

	// Reach-derivation scratch, reused across sites.
	axisPos [][]float64 // per probing axis: anchor positions
	boxLo   [][]float64 // per range dim: evaluated probe interval
	boxHi   [][]float64
}

type partBuild struct {
	site *siteRT
	pp   *sitePart
}

// partClass is the per-class partitioning state.
type partClass struct {
	axes   []int // state attr indices of the position axes (0..2)
	layout cluster.Layout

	assign   []int32    // per physical row: owning partition, -1 dead
	assignID []value.ID // id the assignment was made for (guards row reuse)
	spanLo   []int32    // per partition: owned physical row span [lo, hi)
	spanHi   []int32

	// Layout-epoch lifecycle state. loads tallies this tick's per-partition
	// row visits for this class (each partition is written only by the
	// worker that owns it); foldPartitionLoads snapshots them into
	// lastMax/lastSum at tick end, and assignPartitions records the tick's
	// boundary migrations and clamped rows — the three signals the
	// rebalancer weighs next tick. All of it is tracked regardless of
	// DisableStats: it drives execution, not just reporting.
	reb          *plan.Rebalancer
	loads        []int64
	lastMax      int64
	lastSum      int64
	lastMigrated int64
	lastClamped  int64

	// Bounds measured when the current epoch was installed and the tick it
	// happened: the drift-rate basis for the next epoch's widen margin.
	measMinX, measMaxX float64
	measMinY, measMaxY float64
	measTick           int64

	sampleX, sampleY []float64 // quantile-split position scratch, reused
}

// span returns partition p's owned row span clamped to the table capacity.
func (pc *partClass) span(p, capRows int) (int, int) {
	lo, hi := int(pc.spanLo[p]), int(pc.spanHi[p])
	if hi > capRows {
		hi = capRows
	}
	if lo >= hi {
		return 0, 0
	}
	return lo, hi
}

// initPartitions validates the partitioning options at world construction.
// Layout measurement itself is deferred to the first tick, when the world
// has been populated.
func (w *World) initPartitions() error {
	if w.opts.Partitions <= 0 {
		return nil
	}
	for class, attrs := range w.opts.PartitionBy { //sglvet:allow maprange: option validation only, no state mutated
		rt, ok := w.classes[class]
		if !ok {
			return fmt.Errorf("engine: PartitionBy names unknown class %q", class)
		}
		if len(attrs) < 1 || len(attrs) > 2 {
			return fmt.Errorf("engine: PartitionBy[%s] needs 1 or 2 attrs, got %d", class, len(attrs))
		}
		for _, a := range attrs {
			i := rt.cls.StateIndex(a)
			if i < 0 {
				return fmt.Errorf("engine: PartitionBy names unknown attribute %s.%s", class, a)
			}
			if rt.cls.State[i].Kind != value.KindNumber {
				return fmt.Errorf("engine: PartitionBy attribute %s.%s is %s, want number", class, a, rt.cls.State[i].Kind)
			}
		}
	}
	pw := &partWorld{n: w.opts.Partitions}
	pw.loads = make([]int64, pw.n)
	pw.mergeIdx = make([]int, pw.n)
	pw.sinks = make([]*partSink, pw.n)
	for i := range pw.sinks {
		pw.sinks[i] = &partSink{}
	}
	w.parts = pw
	return nil
}

// partitionAxes infers a class's position attributes: the explicit
// PartitionBy designation, else the attrs its compiled join sites range
// over when it is the source class, else numeric attrs named x/y.
func (w *World) partitionAxes(rt *classRT) []int {
	if attrs, ok := w.opts.PartitionBy[rt.name]; ok {
		axes := make([]int, 0, 2)
		for _, a := range attrs {
			axes = append(axes, rt.cls.StateIndex(a))
		}
		return axes
	}
	var axes []int
	seen := map[int]bool{}
	for _, site := range w.sites {
		if site.step.SourceClass != rt.name || site.step.Join == nil {
			continue
		}
		for _, r := range site.step.Join.Ranges {
			if !seen[r.AttrIdx] && rt.cls.State[r.AttrIdx].Kind == value.KindNumber {
				seen[r.AttrIdx] = true
				axes = append(axes, r.AttrIdx)
			}
		}
	}
	// Deterministic order, at most two axes.
	for i := 1; i < len(axes); i++ {
		for j := i; j > 0 && axes[j] < axes[j-1]; j-- {
			axes[j], axes[j-1] = axes[j-1], axes[j]
		}
	}
	if len(axes) > 2 {
		axes = axes[:2]
	}
	if len(axes) > 0 {
		return axes
	}
	for _, name := range []string{"x", "y"} {
		if i := rt.cls.StateIndex(name); i >= 0 && rt.cls.State[i].Kind == value.KindNumber {
			axes = append(axes, i)
		}
	}
	return axes
}

// ensurePartitionLayouts measures world bounds and installs each class's
// epoch-1 layout on the first partitioned tick. Later epochs come from
// maybeRebalanceLayouts; positions outside the measured box always clamp to
// the edge partitions (and are counted as clamped rows).
func (w *World) ensurePartitionLayouts() {
	pw := w.parts
	if pw.ready {
		return
	}
	for _, rt := range w.order {
		axes := w.partitionAxes(rt)
		mode := w.opts.Partition
		minX, maxX, minY, maxY := 0.0, 1.0, 0.0, 1.0
		if len(axes) > 0 {
			minX, maxX = columnBounds(rt.tab, axes[0])
		}
		if len(axes) > 1 {
			minY, maxY = columnBounds(rt.tab, axes[1])
		}
		layout, err := cluster.NewLayout(w.execCosts, mode, pw.n, len(axes), minX, maxX, minY, maxY)
		if err != nil {
			// Partitions >= 1 is validated at construction; unreachable.
			panic(err)
		}
		rt.prt = &partClass{
			axes:   axes,
			layout: layout,
			spanLo: make([]int32, pw.n),
			spanHi: make([]int32, pw.n),
			loads:  make([]int64, pw.n),
			reb:    plan.NewRebalancer(w.execCosts, w.opts.Rebalance),

			measMinX: minX, measMaxX: maxX,
			measMinY: minY, measMaxY: maxY,
			measTick: w.tick,
		}
	}
	pw.ready = true
}

// maybeRebalanceLayouts runs the per-class layout maintenance decision at
// tick start, before ownership is rescanned: each class's rebalancer weighs
// last tick's load imbalance, migration churn and clamp skew, and when an
// action fires the class's layout advances to its successor epoch. The new
// assignment scan then observes the epoch's mass migration through the
// ordinary ownership diff, and every member view and index refreshes
// through the assignment-version ladder — nothing downstream knows about
// epochs beyond that.
func (w *World) maybeRebalanceLayouts() {
	pw := w.parts
	track := !w.opts.DisableStats
	if pw.n > 1 && w.opts.Rebalance != plan.RebalanceOff {
		for _, rt := range w.order {
			pc := rt.prt
			if pc.layout.Axes == 0 {
				continue // hash layouts are position-oblivious and stay put
			}
			act := pc.reb.Decide(float64(pc.lastMax), float64(pc.lastSum), pw.n,
				rt.tab.Len(), int(pc.lastMigrated), int(pc.lastClamped))
			if act == plan.RebalanceNone {
				continue
			}
			var t0 time.Time
			if track {
				t0 = time.Now()
			}
			w.relayout(rt, act)
			if track {
				w.execStats.RebalanceCount++
				w.execStats.RebalanceNanos += time.Since(t0).Nanoseconds()
			}
		}
	}
	if track {
		for _, rt := range w.order {
			if ep := int64(rt.prt.layout.Epoch); ep > w.execStats.EpochID {
				w.execStats.EpochID = ep
			}
		}
	}
}

// relayout installs a class's successor layout epoch. Widen re-measures the
// world box and extends each side by the measured drift rate — how fast
// that bound has been moving outward since the epoch was installed —
// projected over the rebalance horizon, so a population that keeps drifting
// the way it has stays in-bounds (and unclamped) until the next epoch pays
// for itself. Split refits population-quantile cut points from the live
// positions, giving every slot an equal population share.
func (w *World) relayout(rt *classRT, act plan.RebalanceAction) {
	pc := rt.prt
	tab := rt.tab
	switch act {
	case plan.RebalanceWiden:
		minX, maxX := columnBounds(tab, pc.axes[0])
		minY, maxY := 0.0, 1.0
		if len(pc.axes) > 1 {
			minY, maxY = columnBounds(tab, pc.axes[1])
		}
		dt := w.tick - pc.measTick
		if dt < 1 {
			dt = 1
		}
		h := w.execCosts.RebalanceHorizon
		pc.layout = pc.layout.Remeasure(
			minX-driftMargin(pc.measMinX-minX, dt, h),
			maxX+driftMargin(maxX-pc.measMaxX, dt, h),
			minY-driftMargin(pc.measMinY-minY, dt, h),
			maxY+driftMargin(maxY-pc.measMaxY, dt, h))
		pc.measMinX, pc.measMaxX = minX, maxX
		pc.measMinY, pc.measMaxY = minY, maxY
	case plan.RebalanceSplit:
		xs, ys := w.gatherAxisSamples(rt)
		pc.layout = pc.layout.Split(xs, ys)
		pc.measMinX, pc.measMaxX = pc.layout.MinX, pc.layout.MaxX
		pc.measMinY, pc.measMaxY = pc.layout.MinY, pc.layout.MaxY
	}
	pc.measTick = w.tick
}

// driftMargin projects a bound's outward movement per tick over the
// rebalance horizon. Bounds that held still or moved inward contribute no
// margin, and non-finite movement (a position exploded to ±Inf/NaN) is
// ignored rather than poisoning the box.
func driftMargin(outward float64, dt int64, horizon float64) float64 {
	if !(outward > 0) || math.IsInf(outward, 1) {
		return 0
	}
	return outward / float64(dt) * horizon
}

// gatherAxisSamples collects the class's live positions per partition axis
// (NaNs filtered — cluster.Layout.Split sorts the samples) into retained
// scratch. The Y sample is gathered only when the layout actually cuts Y
// (Split's own condition): a stripes layout over a two-axis class never
// reads it.
func (w *World) gatherAxisSamples(rt *classRT) (xs, ys []float64) {
	pc := rt.prt
	tab := rt.tab
	colX := tab.NumColumn(pc.axes[0])
	var colY []float64
	if pc.layout.Axes > 1 && len(pc.axes) > 1 {
		colY = tab.NumColumn(pc.axes[1])
	}
	pc.sampleX = pc.sampleX[:0]
	pc.sampleY = pc.sampleY[:0]
	for r, ok := range tab.AliveMask() {
		if !ok {
			continue
		}
		if v := colX[r]; !math.IsNaN(v) {
			pc.sampleX = append(pc.sampleX, v)
		}
		if colY != nil {
			if v := colY[r]; !math.IsNaN(v) {
				pc.sampleY = append(pc.sampleY, v)
			}
		}
	}
	return pc.sampleX, pc.sampleY
}

// columnBounds returns the min/max of a numeric column over live rows,
// ignoring NaNs; a degenerate or empty extent yields a unit box.
func columnBounds(tab *table.Table, ci int) (lo, hi float64) {
	col := tab.NumColumn(ci)
	lo, hi = math.Inf(1), math.Inf(-1)
	for r, ok := range tab.AliveMask() {
		if !ok {
			continue
		}
		v := col[r]
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !(lo < hi) {
		if math.IsInf(lo, 1) {
			lo = 0
		}
		hi = lo + 1
	}
	return lo, hi
}

// assignPartitions rescans ownership at tick start: every live row's owner
// is recomputed from its current position with the current layout epoch, so
// update-step movement across a boundary — and the mass migration a fresh
// epoch implies — shows up here as migration messages, spawns get assigned
// and deaths released. The scan also refreshes each partition's owned row
// span and counts clamped rows (positions outside the epoch's measured box,
// the §4.2 edge-skew signal). Migration and clamp tallies always run — they
// feed the rebalancer — while message counters honor track.
func (w *World) assignPartitions(track bool) {
	pw := w.parts
	changed := false
	for _, rt := range w.order {
		pc := rt.prt
		tab := rt.tab
		capRows := tab.Cap()
		for len(pc.assign) < capRows {
			pc.assign = append(pc.assign, -1)
			pc.assignID = append(pc.assignID, 0)
		}
		for p := 0; p < pw.n; p++ {
			pc.spanLo[p] = int32(capRows)
			pc.spanHi[p] = 0
		}
		alive := tab.AliveMask()
		ids := tab.RawIDs()
		var colX, colY []float64
		if len(pc.axes) > 0 {
			colX = tab.NumColumn(pc.axes[0])
		}
		if len(pc.axes) > 1 {
			colY = tab.NumColumn(pc.axes[1])
		}
		migrated, clamped := int64(0), int64(0)
		for r := 0; r < capRows; r++ {
			if !alive[r] {
				if pc.assign[r] != -1 {
					pc.assign[r] = -1
					changed = true
				}
				continue
			}
			x, y := 0.0, 0.0
			if colX != nil {
				x = colX[r]
			}
			if colY != nil {
				y = colY[r]
			}
			if colX != nil && pc.layout.OutOfBounds(x, y) {
				clamped++
			}
			owner := int32(pc.layout.Owner(x, y, ids[r]))
			prev := pc.assign[r]
			if prev != owner || pc.assignID[r] != ids[r] {
				if prev >= 0 && pc.assignID[r] == ids[r] {
					// Same object, new partition: a boundary migration.
					migrated++
				}
				pc.assign[r] = owner
				pc.assignID[r] = ids[r]
				changed = true
			}
			if int32(r) < pc.spanLo[owner] {
				pc.spanLo[owner] = int32(r)
			}
			if int32(r)+1 > pc.spanHi[owner] {
				pc.spanHi[owner] = int32(r) + 1
			}
		}
		pc.lastMigrated, pc.lastClamped = migrated, clamped
		if track {
			w.execStats.MigratedRows += migrated
			w.execStats.PartMsgsMigrate += migrated
			w.execStats.PartBytes += migrated * cluster.BytesPerMigration
			w.execStats.ClampedRows += clamped
		}
	}
	if changed {
		pw.assignVer++
	}
}

// foldPartitionLoads closes the tick's load-balance accounting: per class,
// the per-partition row-visit tallies snapshot into the rebalancer's
// feedback (always — rebalancing is engine behavior, not reporting) and
// reset; the cross-class per-partition totals feed the §4.2
// PartLoadMax/PartLoadSum counters when statistics are on.
func (w *World) foldPartitionLoads() {
	pw := w.parts
	for i := range pw.loads {
		pw.loads[i] = 0
	}
	for _, rt := range w.order {
		pc := rt.prt
		if pc == nil {
			continue
		}
		maxL, sum := int64(0), int64(0)
		for p, l := range pc.loads {
			pw.loads[p] += l
			sum += l
			if l > maxL {
				maxL = l
			}
			pc.loads[p] = 0
		}
		pc.lastMax, pc.lastSum = maxL, sum
	}
	if w.opts.DisableStats {
		return
	}
	maxLoad, sum := int64(0), int64(0)
	for _, l := range pw.loads {
		sum += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	w.execStats.PartLoadMax += maxLoad
	w.execStats.PartLoadSum += sum
}

// Partitions returns the configured partition count (0 = partitioned
// execution disabled).
func (w *World) Partitions() int {
	if w.parts == nil {
		return 0
	}
	return w.parts.n
}

// LayoutEpochs reports each class's current layout epoch (1 = still on the
// first-tick measurement). Valid after at least one partitioned tick.
func (w *World) LayoutEpochs() map[string]uint64 {
	if w.parts == nil {
		return nil
	}
	out := make(map[string]uint64, len(w.order))
	for _, rt := range w.order {
		if rt.prt != nil {
			out[rt.name] = rt.prt.layout.Epoch
		}
	}
	return out
}
