package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/plan"
	"repro/internal/value"
)

// diffRangeSrc exercises range joins with exact-arithmetic folds (integer
// count sums and a maxby with a total deterministic tie-break), so results
// are bit-identical across candidate orders — and therefore across physical
// strategies, join-execution modes and worker counts.
const diffRangeSrc = `
class U {
  state:
    number x = 0;
    number y = 0;
    number hp = 100;
    number seen = 0;
    number best = 0;
  effects:
    number s : sum;
    number b : max;
  update:
    seen = s;
    best = b;
  run {
    accum number cnt with sum over U u from U {
      if (u.x >= x - 8 && u.x <= x + 8 && u.y >= y - 8 && u.y <= y + 8) {
        cnt <- 1;
      }
    } in {
      accum ref<U> tgt with maxby over U u from U {
        if (u.x >= x - 8 && u.x <= x + 8 && u.y >= y - 8 && u.y <= y + 8 && u.hp > 40) {
          tgt <- u by u.hp;
        }
      } in {
        s <- cnt;
        if (tgt != null) {
          b <- id(tgt);
        }
      }
    }
  }
}
`

// diffEqSrc exercises a composite equality join (two keyable conjuncts plus
// a strict-inequality residual) with integer sums.
const diffEqSrc = `
class V {
  state:
    number team = 0;
    number grp = 0;
    number score = 0;
    number tally = 0;
  effects:
    number t : sum;
  update:
    tally = t;
  run {
    accum number s with sum over V v from V {
      if (v.team == team && v.grp == grp && v.score > 10) {
        s <- v.score;
      }
    } in {
      t <- s;
    }
  }
}
`

type matrixWorkload struct {
	src        string
	class      string
	attrs      []string
	strategies []plan.Strategy
	spawn      func(w *World, i int) (value.ID, error)
}

func rangeWorkload() matrixWorkload {
	return matrixWorkload{
		src:        diffRangeSrc,
		class:      "U",
		attrs:      []string{"x", "y", "hp", "seen", "best"},
		strategies: []plan.Strategy{plan.NestedLoop, plan.RangeTreeIndex, plan.GridIndex},
		spawn: func(w *World, i int) (value.ID, error) {
			return w.Spawn("U", map[string]value.Value{
				"x":  value.Num(float64(i * 7 % 97)),
				"y":  value.Num(float64(i * 13 % 89)),
				"hp": value.Num(float64(30 + i%70)),
			})
		},
	}
}

func eqWorkload() matrixWorkload {
	return matrixWorkload{
		src:        diffEqSrc,
		class:      "V",
		attrs:      []string{"team", "grp", "score", "tally"},
		strategies: []plan.Strategy{plan.NestedLoop, plan.HashIndex},
		spawn: func(w *World, i int) (value.ID, error) {
			return w.Spawn("V", map[string]value.Value{
				"team":  value.Num(float64(i % 3)),
				"grp":   value.Num(float64(i % 5)),
				"score": value.Num(float64(i % 25)),
			})
		},
	}
}

// runMatrixWorld runs a workload with mid-run spawn/kill churn and returns
// the raw float bits of every (id, attr) cell.
func runMatrixWorld(t *testing.T, wl matrixWorkload, opts Options, n, ticks int) map[string]uint64 {
	t.Helper()
	w := newWorld(t, wl.src, opts)
	ids := make([]value.ID, 0, n)
	for i := 0; i < n; i++ {
		id, err := wl.spawn(w, i)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for tick := 0; tick < ticks; tick++ {
		if err := w.RunTick(); err != nil {
			t.Fatal(err)
		}
		// Deterministic churn: kill a stride of survivors, spawn fresh rows.
		if tick == 1 {
			for i := 0; i < len(ids); i += 7 {
				if err := w.Kill(wl.class, ids[i]); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n/5; i++ {
				if _, err := wl.spawn(w, n+i*3); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	out := make(map[string]uint64)
	for _, id := range w.IDs(wl.class) {
		for _, a := range wl.attrs {
			out[fmt.Sprintf("%d.%s", id, a)] = math.Float64bits(w.MustGet(wl.class, id, a).AsNumber())
		}
	}
	return out
}

func diffStates(t *testing.T, label string, ref, got map[string]uint64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d cells vs reference %d", label, len(got), len(ref))
	}
	for k, rv := range ref {
		if gv, ok := got[k]; !ok || gv != rv {
			t.Fatalf("%s: cell %s = %x, reference %x", label, k, got[k], rv)
		}
	}
}

// TestJoinDifferentialMatrix pins the headline safety net: every cell of
// {scalar, batched} × {NestedLoop, Hash, Grid, RangeTree} × Workers {1, 4}
// ends bit-identical to the Workers=1 scalar nested-loop reference, under
// spawn/kill churn.
func TestJoinDifferentialMatrix(t *testing.T) {
	for _, wl := range []matrixWorkload{rangeWorkload(), eqWorkload()} {
		ref := runMatrixWorld(t, wl, Options{Strategy: plan.NestedLoop, Join: plan.JoinScalar, Workers: 1}, 120, 4)
		if len(ref) == 0 {
			t.Fatalf("%s: empty reference state", wl.class)
		}
		for _, strat := range wl.strategies {
			for _, join := range []plan.JoinMode{plan.JoinScalar, plan.JoinBatched} {
				for _, workers := range []int{1, 4} {
					label := fmt.Sprintf("%s/%v/%v/w%d", wl.class, strat, join, workers)
					got := runMatrixWorld(t, wl, Options{Strategy: strat, Join: join, Workers: workers}, 120, 4)
					diffStates(t, label, ref, got)
				}
			}
		}
	}
}

// floatJoinSrc uses order-sensitive float sums (both through the columnar
// fold and through a generic let-bearing inner body): scalar and batched
// execution of the same strategy must still be bit-identical, because the
// batched driver visits candidates in exactly the scalar order.
const floatJoinSrc = `
class F {
  state:
    number x = 0;
    number y = 0;
    number w = 0;
    number acc1 = 0;
    number acc2 = 0;
    number mean = 0;
  effects:
    number o1 : sum;
    number o2 : sum;
    number m : avg;
  update:
    acc1 = o1;
    acc2 = o2;
    mean = m;
  run {
    accum number a with sum over F u from F {
      if (u.x >= x - 9 && u.x <= x + 9 && u.y >= y - 9 && u.y <= y + 9) {
        a <- u.x * 0.1 + u.y * 0.3 + w * 0.01;
      }
    } in {
      accum number q with avg over F u from F {
        if (u.x >= x - 9 && u.x <= x + 9 && u.y >= y - 9 && u.y <= y + 9) {
          let d = u.w - w;
          q <- d * d * 0.123;
        }
      } in {
        o1 <- a;
        o2 <- q;
        m <- a * 0.5;
      }
    }
  }
}
`

func TestJoinBatchedBitIdenticalFloatFolds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	spawnF := func(w *World, i int) (value.ID, error) {
		return w.Spawn("F", map[string]value.Value{
			"x": value.Num(rng.Float64() * 90),
			"y": value.Num(rng.Float64() * 90),
			"w": value.Num(rng.Float64()*7 - 3.5),
		})
	}
	for _, strat := range []plan.Strategy{plan.NestedLoop, plan.RangeTreeIndex, plan.GridIndex} {
		states := make([]map[string]uint64, 0, 2)
		for _, join := range []plan.JoinMode{plan.JoinScalar, plan.JoinBatched} {
			rng = rand.New(rand.NewSource(23)) // same coordinates per run
			wl := matrixWorkload{src: floatJoinSrc, class: "F",
				attrs: []string{"acc1", "acc2", "mean"}, spawn: spawnF}
			states = append(states, runMatrixWorld(t, wl, Options{Strategy: strat, Join: join}, 150, 3))
		}
		diffStates(t, fmt.Sprintf("float/%v", strat), states[0], states[1])
	}
}

// TestGridCellAdaptsUnderDisableStats is the regression for the cell-sizing
// satellite: probe extents must keep feeding the grid's cell EMA even with
// statistics collection disabled, instead of pinning the cell at the 64.0
// default forever.
func TestGridCellAdaptsUnderDisableStats(t *testing.T) {
	w := newWorld(t, diffRangeSrc, Options{Strategy: plan.GridIndex, DisableStats: true})
	for i := 0; i < 200; i++ {
		if _, err := w.Spawn("U", map[string]value.Value{
			"x": value.Num(float64(i % 37)), "y": value.Num(float64(i % 31)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	var gridSite *siteRT
	for _, s := range w.sites {
		if s.parts[0].builtStrategy == plan.GridIndex && s.parts[0].builtOK {
			gridSite = s
			break
		}
	}
	if gridSite == nil {
		t.Fatal("no grid site built")
	}
	if !gridSite.boxExtent.Ready() {
		t.Fatal("probe-extent EMA never sampled under DisableStats")
	}
	// The probe boxes are 16 wide (range 8); the adapted cell must have
	// left the 64.0 default far behind.
	if c := gridSite.parts[0].builtCell; c > 32 || c <= 0 {
		t.Fatalf("grid cell stuck at %v (EMA %v); want ~16", c, gridSite.boxExtent.Value())
	}
}

// TestPrepareSitesZeroAllocSteadyState pins the engine half of the
// allocation criterion: per-tick index preparation — version checks, grid
// sync, tree/hash rebuilds into the retained arenas — allocates nothing
// once warm.
func TestPrepareSitesZeroAllocSteadyState(t *testing.T) {
	for _, strat := range []plan.Strategy{plan.RangeTreeIndex, plan.GridIndex} {
		w := newWorld(t, diffRangeSrc, Options{Strategy: strat, Workers: 1})
		for i := 0; i < 300; i++ {
			if _, err := w.Spawn("U", map[string]value.Value{
				"x": value.Num(float64(i % 53)), "y": value.Num(float64(i % 47)),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Run(3); err != nil {
			t.Fatal(err)
		}
		rt := w.classes["U"]
		xCol := rt.cls.StateIndex("x")
		flip := 0.0
		bump := func() {
			// Perturb one coordinate so the version check cannot shortcut
			// to full reuse: trees rebuild, grids sync incrementally.
			flip = 1 - flip
			rt.tab.SetNumAt(0, xCol, flip)
			w.prepareSites()
		}
		bump()
		bump()
		if a := testing.AllocsPerRun(30, bump); a > 0 {
			t.Errorf("%v: prepareSites allocates %.1f/run in steady state", strat, a)
		}
	}

	w := newWorld(t, diffEqSrc, Options{Strategy: plan.HashIndex, Workers: 1})
	for i := 0; i < 300; i++ {
		if _, err := w.Spawn("V", map[string]value.Value{
			"team": value.Num(float64(i % 3)), "grp": value.Num(float64(i % 5)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	rt := w.classes["V"]
	teamCol := rt.cls.StateIndex("team")
	flip := 0.0
	bump := func() {
		flip = 1 - flip
		rt.tab.SetNumAt(0, teamCol, flip)
		w.prepareSites()
	}
	bump()
	bump()
	if a := testing.AllocsPerRun(30, bump); a > 0 {
		t.Errorf("hash: prepareSites allocates %.1f/run in steady state", a)
	}
}

// TestIndexReuseAndIncrement checks the maintenance ladder: a static world
// reuses its indexes verbatim; light churn patches the grid in place.
func TestIndexReuseAndIncrement(t *testing.T) {
	w := newWorld(t, diffRangeSrc, Options{Strategy: plan.GridIndex})
	var ids []value.ID
	for i := 0; i < 200; i++ {
		id, err := w.Spawn("U", map[string]value.Value{
			"x": value.Num(float64(i % 37)), "y": value.Num(float64(i % 41)),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := w.Run(2); err != nil {
		t.Fatal(err)
	}
	// The workload writes no indexed column (x and y have no update rules),
	// so after warmup every tick must reuse.
	before := w.ExecStats()
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	after := w.ExecStats()
	if after.IndexReuses <= before.IndexReuses {
		t.Fatalf("static world did not reuse indexes (%d -> %d)", before.IndexReuses, after.IndexReuses)
	}
	// Light churn: move two objects between ticks → incremental sync.
	w.SetState("U", ids[3], "x", value.Num(500))
	w.SetState("U", ids[5], "y", value.Num(700))
	before = w.ExecStats()
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	after = w.ExecStats()
	if after.IndexIncrements <= before.IndexIncrements {
		t.Fatalf("light churn did not sync incrementally (%d -> %d)", before.IndexIncrements, after.IndexIncrements)
	}
}

// TestEmptyExtentSkipsIndexBuild: with nothing to probe or nothing to
// index, prepareSites must not build anything.
func TestEmptyExtentSkipsIndexBuild(t *testing.T) {
	w := newWorld(t, diffRangeSrc, Options{Strategy: plan.GridIndex})
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	for _, s := range w.sites {
		if s.parts[0].builtOK || s.parts[0].tree != nil || s.parts[0].hash != nil {
			t.Fatal("index built for an empty extent")
		}
	}
	if _, err := w.Spawn("U", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
}
