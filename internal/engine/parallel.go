package engine

import "sync"

// The parallel effect phase exploits the paper's §4.2 observation: during
// the query/effect steps all tables are read-only, so effect computation
// needs no synchronization. Rows are partitioned contiguously across
// workers; each worker evaluates scripts against the shared frozen state
// and folds contributions into private accumulators, which merge (⊕ is
// commutative and associative) after a barrier. Transactions collected by
// workers are concatenated in worker order, keeping admission
// deterministic.

// workerSink buffers effect emissions privately per worker.
type workerSink struct {
	w    *World
	cols map[*classRT][]fxColumn
	txns []*Txn
}

func newWorkerSink(w *World) *workerSink {
	return &workerSink{w: w, cols: make(map[*classRT][]fxColumn)}
}

func (s *workerSink) emit(w *World, e Emission) {
	rt := w.classes[e.Class]
	row := rt.tab.Row(e.Target)
	if row < 0 {
		return
	}
	cols := s.cols[rt]
	if cols == nil {
		cols = make([]fxColumn, len(rt.fx))
		for i, f := range rt.fx {
			cols[i] = fxColumn{comb: f.comb, kind: f.kind}
		}
		s.cols[rt] = cols
	}
	c := &cols[e.AttrIdx]
	c.ensure(rt.tab.Cap())
	c.add(row, e.Val, e.Key)
}

func (s *workerSink) addTxn(t *Txn) { s.txns = append(s.txns, t) }

func (s *workerSink) reset() {
	for _, cols := range s.cols {
		for i := range cols {
			cols[i].reset()
		}
	}
	s.txns = s.txns[:0]
}

// mergeInto folds the worker's private accumulators into the world buffers.
func (s *workerSink) mergeInto(w *World) {
	for rt, cols := range s.cols {
		for ai := range cols {
			c := &cols[ai]
			dst := &rt.fx[ai]
			for _, row := range c.touched {
				if dst.acc[row].N() == 0 {
					dst.touched = append(dst.touched, row)
				}
				dst.acc[row].Merge(c.acc[row])
			}
		}
	}
	w.txns = append(w.txns, s.txns...)
}

func (w *World) runEffectPhaseParallel() {
	workers := w.opts.Workers
	if w.workerSinks == nil {
		w.workerSinks = make([]*workerSink, workers)
		for i := range w.workerSinks {
			w.workerSinks[i] = newWorkerSink(w)
		}
	}
	for _, s := range w.workerSinks {
		s.reset()
	}
	for _, rt := range w.order {
		if rt.plan.Decl.Run == nil || rt.tab.Len() == 0 {
			continue
		}
		capRows := rt.tab.Cap()
		chunk := (capRows + workers - 1) / workers
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			lo := wi * chunk
			if lo >= capRows {
				break
			}
			hi := lo + chunk
			if hi > capRows {
				hi = capRows
			}
			wg.Add(1)
			go func(wi, lo, hi int) {
				defer wg.Done()
				x := newExecCtx(w, w.workerSinks[wi], rt.plan.NumSlots)
				tab := rt.tab
				for r := lo; r < hi; r++ {
					if !tab.Alive(r) {
						continue
					}
					pc := int(tab.At(r, rt.pcCol).AsNumber())
					steps := rt.plan.Phases[pc]
					if len(steps) == 0 {
						continue
					}
					x.bindRow(rt, r)
					x.runSteps(steps)
				}
			}(wi, lo, hi)
		}
		wg.Wait()
	}
	for _, s := range w.workerSinks {
		s.mergeInto(w)
	}
}
