package engine

// The sharded parallel executor exploits the paper's §4.2 observation:
// during the query/effect steps all tables are read-only, so per-object
// work needs no synchronization. It composes the two execution axes —
// scalar/vectorized (§4.4) × serial/parallel — over one partitioning
// scheme: each class extent splits into contiguous row shards aligned to
// the vexpr batch size, and the two-axis cost model (plan.Costs.ChooseExec
// × plan.Costs.ChooseWorkers) decides per class and tick which phases run
// as batch kernels and how many shards are worth fanning out.
//
// Determinism discipline, per path:
//
//   - Vectorized phases emit only to the executing object, so shards write
//     row-disjoint slices of the shared accumulators directly; the
//     newly-touched row lists are logged per shard and appended in shard
//     order after the barrier.
//   - Scalar rows fold contributions into private per-worker accumulators,
//     merged worker-major after the barrier. Shards are contiguous and
//     assigned to workers in row order, so a worker-major merge replays
//     contributions in scalar row-loop order per source class (⊕ is
//     commutative and associative; bit-identity additionally holds whenever
//     an accumulator's contributions come from a single shard or the fold
//     is exact, which the self-emission rule makes the common case).
//   - Transactions concatenate in worker order, keeping admission
//     deterministic; scalar update-rule results stage per worker and merge
//     in shard order before the atomic apply; reactive handlers reuse the
//     worker sinks, merged worker-major like the effect phase.

import (
	"sync"
	"sync/atomic"

	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// shard is one contiguous, batch-aligned range of physical rows.
type shard struct{ lo, hi int }

// shardRows partitions [0, capRows) into at most maxShards contiguous
// shards whose boundaries fall on vexpr.BatchSize multiples, so no kernel
// invocation pays a split batch. buf is reused when capacious enough.
func shardRows(capRows, maxShards int, buf []shard) []shard {
	buf = buf[:0]
	if capRows <= 0 {
		return buf
	}
	if maxShards < 1 {
		maxShards = 1
	}
	size := (capRows + maxShards - 1) / maxShards
	if rem := size % vexpr.BatchSize; rem != 0 {
		size += vexpr.BatchSize - rem
	}
	for lo := 0; lo < capRows; lo += size {
		hi := lo + size
		if hi > capRows {
			hi = capRows
		}
		buf = append(buf, shard{lo: lo, hi: hi})
	}
	return buf
}

// stepsCost is the crude per-row work weight of a compiled step list used
// by the parallelism axis: lets, ifs and emissions count one unit, accum
// loops count far more because each probes an index (or scans an extent)
// and runs its body per match. It only has to rank extents against the
// fan-out overhead, not predict wall time.
func stepsCost(steps []compile.Step) float64 {
	c := 0.0
	for _, s := range steps {
		switch s := s.(type) {
		case *compile.IfStep:
			c += 1 + stepsCost(s.Then) + stepsCost(s.Else)
		case *compile.AtomicStep:
			c += 1 + stepsCost(s.Body)
		case *compile.AccumStep:
			c += 64 + stepsCost(s.Body)
			if s.Join != nil {
				c += stepsCost(s.Join.Inner)
			}
		default:
			c++
		}
	}
	return c
}

// stagedWrite is one scalar update-rule result buffered by a worker.
type stagedWrite struct {
	attrIdx int
	id      value.ID
	val     value.Value
}

// shardCtx is the private execution state of one worker slot: a kernel
// machine for vectorized shards, row counters folded into the shared
// statistics at the barrier, the touched-row log for direct accumulator
// writes, and the staging buffer for scalar update rules.
type shardCtx struct {
	machine     vexpr.Machine
	scalarRows  int64
	vectorRows  int64
	handlerRows int64
	touched     touchedLog
	staged      []stagedWrite

	// pvec is the worker's private vectorized-phase scratch for the
	// partitioned executor, whose partition row spans may interleave (so
	// the class's shared range-disjoint scratch cannot be used). pvecGen
	// marks which partitioned class pass it was last prepared for.
	pvec    vecScratch
	pvecGen uint64
}

// parallelOK reports whether this tick may use the worker pool at all.
// Tracing forces serial execution so the per-emission hook fires in row
// order.
func (w *World) parallelOK() bool { return w.opts.Workers > 1 && w.tracer == nil }

// ensureWorkers lazily builds the per-worker sinks and shard contexts.
func (w *World) ensureWorkers() {
	if w.workerSinks != nil {
		return
	}
	w.workerSinks = make([]*workerSink, w.opts.Workers)
	w.shardCtxs = make([]*shardCtx, w.opts.Workers)
	for i := range w.workerSinks {
		w.workerSinks[i] = newWorkerSink(w)
		w.shardCtxs[i] = &shardCtx{}
	}
}

// runPool dispatches fn(slot, i) for every i in [0, n) across up to nw
// worker goroutines pulling from a shared worklist, and waits for the
// barrier; slot identifies the worker's private state (shardCtx). The one
// pool-dispatch loop behind partition passes and index-rebuild fan-outs —
// unlike runShards, work items may outnumber workers.
func (w *World) runPool(n, nw int, fn func(slot, i int)) {
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for s := 0; s < nw; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(slot, i)
			}
		}(s)
	}
	wg.Wait()
}

// runShards dispatches fn over the shards on the worker pool and waits for
// the barrier. Shard i always runs on worker slot i (shards never outnumber
// workers), which is what makes the worker-major merges shard-ordered.
func (w *World) runShards(shards []shard, fn func(si int, sh shard)) {
	var wg sync.WaitGroup
	for si, sh := range shards {
		wg.Add(1)
		go func(si int, sh shard) {
			defer wg.Done()
			fn(si, sh)
		}(si, sh)
	}
	wg.Wait()
}

// workerSink buffers effect emissions privately per worker.
type workerSink struct {
	w    *World
	cols map[*classRT][]fxColumn
	txns []*Txn
}

func newWorkerSink(w *World) *workerSink {
	return &workerSink{w: w, cols: make(map[*classRT][]fxColumn)}
}

func (s *workerSink) emit(w *World, e Emission) {
	rt := w.classes[e.Class]
	row := rt.tab.Row(e.Target)
	if row < 0 {
		return
	}
	cols := s.cols[rt]
	if cols == nil {
		cols = make([]fxColumn, len(rt.fx))
		for i, f := range rt.fx {
			cols[i] = fxColumn{comb: f.comb, kind: f.kind}
		}
		s.cols[rt] = cols
	}
	c := &cols[e.AttrIdx]
	c.ensure(rt.tab.Cap())
	c.add(row, e.Val, e.Key)
}

func (s *workerSink) addTxn(t *Txn) { s.txns = append(s.txns, t) }

func (s *workerSink) reset() {
	for _, cols := range s.cols { //sglvet:allow maprange: independent per-class resets, order-free
		for i := range cols {
			cols[i].reset()
		}
	}
	s.txns = s.txns[:0]
}

// mergeInto folds the worker's private accumulators into the world buffers.
func (s *workerSink) mergeInto(w *World) {
	for rt, cols := range s.cols { //sglvet:allow maprange: per-class destinations are disjoint; within a class, fold order follows the deterministic touched lists
		for ai := range cols {
			c := &cols[ai]
			dst := &rt.fx[ai]
			for _, row := range c.touched {
				if dst.acc[row].N() == 0 {
					dst.touched = append(dst.touched, row)
				}
				dst.acc[row].Merge(c.acc[row])
			}
		}
	}
	w.txns = append(w.txns, s.txns...)
}

// runEffectPhaseParallel executes the query/effect phase over batch-aligned
// row shards on the worker pool, composing both execution axes per class:
// phases the cost model vectorizes run their batch kernels shard-at-a-time,
// everything else runs the scalar row loop over the same shards into the
// private worker sinks. Classes whose modeled work cannot amortize goroutine
// fan-out run inline on the calling goroutine (through sink 0, preserving
// the worker-major merge order).
func (w *World) runEffectPhaseParallel() {
	w.ensureWorkers()
	for _, s := range w.workerSinks {
		s.reset()
	}
	for _, rt := range w.order {
		if rt.plan.Decl.Run == nil || rt.tab.Len() == 0 {
			continue
		}
		capRows := rt.tab.Cap()
		vecSel, work := w.chooseEffectExec(rt, rt.phaseCounts())
		if vecSel != nil {
			w.prepareVecPhases(rt, vecSel, capRows)
		}
		shards := shardRows(capRows, w.execCosts.ChooseWorkers(w.opts.Workers, work), w.shardBuf)
		w.shardBuf = shards
		if len(shards) <= 1 {
			w.runEffectShard(rt, vecSel, 0, capRows, w.shardCtxs[0], w.workerSinks[0])
			w.foldShardCtxs(rt, 1, false)
			continue
		}
		w.runShards(shards, func(si int, sh shard) {
			w.runEffectShard(rt, vecSel, sh.lo, sh.hi, w.shardCtxs[si], w.workerSinks[si])
		})
		w.foldShardCtxs(rt, len(shards), true)
	}
	for _, s := range w.workerSinks {
		s.mergeInto(w)
	}
}

// runEffectShard executes every phase of one class for rows [lo, hi):
// first the vectorized phases (kernels over the shard's lanes, emissions
// written directly — rows are shard-private), then the scalar row loop over
// the remaining phases, emitting into the worker's sink.
func (w *World) runEffectShard(rt *classRT, vecSel []bool, lo, hi int, sc *shardCtx, sink emitSink) {
	if vecSel != nil {
		sc.touched.ensure(len(rt.fx))
		for p, on := range vecSel {
			if on {
				sc.vectorRows += int64(w.vecPhaseRange(rt, p, rt.vec.phases[p], lo, hi, &rt.vec.sc, &sc.machine, &sc.touched))
			}
		}
	}
	x := newExecCtx(w, sink, rt.plan.NumSlots, &sc.machine)
	tab := rt.tab
	for r := lo; r < hi; r++ {
		if !tab.Alive(r) {
			continue
		}
		pc := int(tab.At(r, rt.pcCol).AsNumber())
		if vecSel != nil && vecSel[pc] {
			continue
		}
		steps := rt.plan.Phases[pc]
		if len(steps) == 0 {
			continue
		}
		x.bindRow(rt, r)
		x.runSteps(steps)
		sc.scalarRows++
	}
	x.flushJoinStats()
}

// foldShardCtxs merges the first n shard contexts back into the shared
// state after a class barrier: vectorized touched-row logs append in shard
// order, row counters fold into the execution statistics (unless disabled),
// and the contexts reset for the next class.
func (w *World) foldShardCtxs(rt *classRT, n int, fanned bool) {
	for _, sc := range w.shardCtxs[:n] {
		for ai, rows := range sc.touched.rows {
			if len(rows) > 0 {
				rt.fx[ai].touched = append(rt.fx[ai].touched, rows...)
			}
		}
		if !w.opts.DisableStats {
			w.execStats.ScalarRows += sc.scalarRows
			w.execStats.VectorRows += sc.vectorRows
			w.execStats.HandlerRows += sc.handlerRows
		}
		sc.touched.reset()
		sc.scalarRows, sc.vectorRows, sc.handlerRows = 0, 0, 0
	}
	if fanned && !w.opts.DisableStats {
		w.execStats.ParallelShards += int64(n)
	}
}

// runScalarUpdates evaluates a class's closure-path update rules, staging
// each result for the atomic apply. When the parallelism axis fans out,
// workers buffer (attr, id, value) triples privately and the buffers merge
// in shard order — every row stages at most once per attribute, so the
// merged map is identical to the serial pass.
func (w *World) runScalarUpdates(ruleCtx *UpdateCtx, rt *classRT, rules []compile.UpdatePlan) {
	nw := 1
	if w.parallelOK() {
		work := w.execCosts.ScalarVisit * float64(rt.tab.Len()*len(rules))
		nw = w.execCosts.ChooseWorkers(w.opts.Workers, work)
	}
	if nw > 1 {
		w.ensureWorkers()
	}
	shards := shardRows(rt.tab.Cap(), nw, w.shardBuf)
	w.shardBuf = shards
	if len(shards) <= 1 {
		w.runRuleRange(rt, rules, 0, rt.tab.Cap(), func(attrIdx int, id value.ID, v value.Value) {
			ruleCtx.stageRule(rt, attrIdx, id, v)
		})
	} else {
		w.runShards(shards, func(si int, sh shard) {
			sc := w.shardCtxs[si]
			w.runRuleRange(rt, rules, sh.lo, sh.hi, func(attrIdx int, id value.ID, v value.Value) {
				sc.staged = append(sc.staged, stagedWrite{attrIdx: attrIdx, id: id, val: v})
			})
		})
		for _, sc := range w.shardCtxs[:len(shards)] {
			for _, sw := range sc.staged {
				ruleCtx.stageRule(rt, sw.attrIdx, sw.id, sw.val)
			}
			sc.staged = sc.staged[:0]
		}
		if !w.opts.DisableStats {
			w.execStats.ParallelShards += int64(len(shards))
		}
	}
	if !w.opts.DisableStats {
		w.execStats.ScalarRows += int64(rt.tab.Len() * len(rules))
	}
}

// runRuleRange evaluates every rule for the live rows in [lo, hi), handing
// each result to stage — the one row-loop body shared by the serial and
// sharded update paths, so Workers=1 and Workers=N cannot drift.
func (w *World) runRuleRange(rt *classRT, rules []compile.UpdatePlan, lo, hi int, stage func(attrIdx int, id value.ID, v value.Value)) {
	tab := rt.tab
	ectx := expr.Ctx{W: w, Class: rt.name, EffectZero: effectZeroFn(rt)}
	for r := lo; r < hi; r++ {
		if !tab.Alive(r) {
			continue
		}
		ectx.SelfID = tab.ID(r)
		ectx.Self = rowReader{rt: rt, row: r}
		ectx.Effects = fxReader{rt: rt, row: r}
		for _, u := range rules {
			stage(u.AttrIdx, ectx.SelfID, u.Fn(&ectx))
		}
	}
}

// runHandlers evaluates reactive handlers on the new state, emitting
// effects for the next tick (§3.2). With the worker pool available, large
// classes shard across workers with private sinks merged worker-major;
// small classes run inline through sink 0.
func (w *World) runHandlers() {
	if w.parts != nil {
		w.runHandlersPartitioned()
		return
	}
	par := w.parallelOK()
	if par {
		w.ensureWorkers()
		for _, s := range w.workerSinks {
			s.reset()
		}
	}
	for _, rt := range w.order {
		if len(rt.plan.Handlers) == 0 {
			continue
		}
		nw := 1
		if par {
			work := w.execCosts.ScalarVisit * float64(rt.tab.Len()) * rt.handlerCost
			nw = w.execCosts.ChooseWorkers(w.opts.Workers, work)
		}
		shards := shardRows(rt.tab.Cap(), nw, w.shardBuf)
		w.shardBuf = shards
		if len(shards) > 1 {
			w.runShards(shards, func(si int, sh shard) {
				sc := w.shardCtxs[si]
				x := newExecCtx(w, w.workerSinks[si], rt.plan.NumSlots, &sc.machine)
				sc.handlerRows += w.runHandlerRange(x, rt, sh.lo, sh.hi)
			})
			w.foldShardCtxs(rt, len(shards), true)
			continue
		}
		var sink emitSink = directSink{w: w}
		if par {
			sink = w.workerSinks[0]
		}
		x := w.serialExecCtx(sink, rt.plan.NumSlots)
		rows := w.runHandlerRange(x, rt, 0, rt.tab.Cap())
		if !w.opts.DisableStats {
			w.execStats.HandlerRows += rows
		}
	}
	if par {
		for _, s := range w.workerSinks {
			s.mergeInto(w)
		}
	}
}

// runHandlerRange evaluates every handler for the live rows in [lo, hi)
// through the caller-armed context.
func (w *World) runHandlerRange(x *execCtx, rt *classRT, lo, hi int) int64 {
	tab := rt.tab
	rows := int64(0)
	for r := lo; r < hi; r++ {
		if !tab.Alive(r) {
			continue
		}
		x.bindRow(rt, r)
		for _, h := range rt.plan.Handlers {
			if h.Cond(&x.ctx).AsBool() {
				x.runSteps(h.Body)
			}
		}
		rows++
	}
	x.flushJoinStats()
	return rows
}
