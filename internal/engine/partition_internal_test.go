package engine

// White-box tests for the layout-epoch lifecycle: the owner-consistency
// property a successor epoch must satisfy, and the zero-allocation guard on
// the steady-state (no rebalance) prepare path.

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/plan"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/sem"
	"repro/internal/value"
)

const srcClusterJoin = `
class P {
  state:
    number x = 0;
    number y = 0;
    number v = 0;
    number near = 0;
  effects:
    number nb : sum;
  update:
    x = x + v;
    near = nb;
  run {
    accum number cnt with sum over P u from P {
      if (u.x >= x - 9 && u.x <= x + 9 && u.y >= y - 9 && u.y <= y + 9) {
        cnt <- 1;
      }
    } in {
      nb <- cnt;
    }
  }
}
`

func internalWorld(t *testing.T, src string, opts Options) *World {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compile.CompileChecked(info)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestEpochOwnerConsistencyAfterSplit is the layout-epoch property test:
// after the rebalancer installs a quantile-cut successor epoch, every live
// row's recorded owner must equal the epoch's own clamped-coordinate
// arithmetic (Owner = Part(CoordX, CoordY)), the cuts must be ascending,
// and every partition's recorded row span must cover exactly its rows —
// the invariants the member-view ghost intervals lean on.
func TestEpochOwnerConsistencyAfterSplit(t *testing.T) {
	w := internalWorld(t, srcClusterJoin, Options{
		Partitions: 4, Partition: plan.PartitionStripes, Rebalance: plan.RebalanceEager,
	})
	// A heavily clustered population: three quarters in [0, 60], the rest
	// spread to 2000 — the uniform epoch-1 stripes put almost everything in
	// slot 0, so the eager rebalancer splits immediately.
	for i := 0; i < 800; i++ {
		x := float64(i%8) * 7
		if i%4 == 0 {
			x = float64(i%40) * 50
		}
		if _, err := w.Spawn("P", map[string]value.Value{
			"x": value.Num(x), "y": value.Num(float64(i%31) * 3),
			"v": value.Num(float64(i%3) - 1), // movers in both directions
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Run(6); err != nil {
		t.Fatal(err)
	}
	rt := w.classes["P"]
	pc := rt.prt
	// Ownership is scanned at tick start; the final update step moved rows
	// afterwards. Rescan so the recorded assignment and the positions agree
	// on one instant, exactly as the next tick's prepare would see them.
	w.assignPartitions(false)
	if pc.layout.Epoch < 2 || pc.layout.CutsX == nil {
		t.Fatalf("eager clustered run never split: epoch %d cuts %v", pc.layout.Epoch, pc.layout.CutsX)
	}
	for i := 1; i < len(pc.layout.CutsX); i++ {
		if pc.layout.CutsX[i] < pc.layout.CutsX[i-1] {
			t.Fatalf("cuts not ascending: %v", pc.layout.CutsX)
		}
	}
	tab := rt.tab
	colX := tab.NumColumn(pc.axes[0])
	counts := make([]int, w.parts.n)
	for r, ok := range tab.AliveMask() {
		if !ok {
			if pc.assign[r] != -1 {
				t.Fatalf("dead row %d still assigned to %d", r, pc.assign[r])
			}
			continue
		}
		want := int32(pc.layout.Owner(colX[r], 0, tab.ID(r)))
		if pc.assign[r] != want {
			t.Fatalf("row %d (x=%v): assigned %d, epoch arithmetic says %d",
				r, colX[r], pc.assign[r], want)
		}
		if r < int(pc.spanLo[want]) || r >= int(pc.spanHi[want]) {
			t.Fatalf("row %d outside partition %d span [%d, %d)",
				r, want, pc.spanLo[want], pc.spanHi[want])
		}
		counts[want]++
	}
	// The split epoch must actually balance the clustered population: no
	// slot may hold a majority anymore.
	for p, c := range counts {
		if c > tab.Len()*6/10 {
			t.Fatalf("partition %d still holds %d of %d rows after split", p, c, tab.Len())
		}
	}
}

// TestSteadyStateEpochReuseAllocs is the epoch-reuse allocation guard: with
// no rebalance firing, the per-tick layout lifecycle — rebalancer decision,
// ownership rescan with migration/clamp tallies, load fold — must allocate
// nothing. (Assignment slabs, span arrays, rebalancer state and load
// tallies are all retained across ticks.)
func TestSteadyStateEpochReuseAllocs(t *testing.T) {
	w := internalWorld(t, srcClusterJoin, Options{
		Partitions: 4, Partition: plan.PartitionStripes,
	})
	for i := 0; i < 400; i++ {
		if _, err := w.Spawn("P", map[string]value.Value{
			"x": value.Num(float64(i%20) * 9), "y": value.Num(float64(i/20) * 8),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Static population (v = 0 everywhere): after warm-up every slab has
	// its steady-state capacity and no rebalance can fire.
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		w.maybeRebalanceLayouts()
		w.assignPartitions(true)
		w.foldPartitionLoads()
	}); allocs > 0 {
		t.Fatalf("steady-state epoch reuse allocated %.1f bytes-worth of objects per run", allocs)
	}
	if fires := w.ExecStats().RebalanceCount; fires != 0 {
		t.Fatalf("static world rebalanced %d times", fires)
	}
}
