package engine

// The shared compilation layer behind the many-world server's plan cache.
// Everything about a program that is immutable after build — the static
// analysis, the vectorized update/phase kernels, the batched-join and
// batched-admission analyses, per-class cost weights — compiles once into a
// Compiled and is shared by every World instantiated from it. 10k rooms
// running the same script then hold one copy of the kernel programs; and
// because vexpr machines cache their carved slabs per *Prog, a pooled
// machine checked out by any of those rooms is already warm for exactly the
// kernels the room is about to run.
//
// A Compiled also owns the string dictionary its kernels were compiled
// against (string literals intern at compile time), so all of its worlds
// share one interning space. That is safe: the dictionary is append-only
// behind a mutex with lock-free snapshot reads, and codes never become
// observable state — string order folds are excluded from vectorization and
// hashing goes through value.Value — so concurrent worlds interning in any
// interleaving stay bit-identical.

import (
	"repro/internal/analysis"
	"repro/internal/compile"
	"repro/internal/schema"
	"repro/internal/table"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// Compiled is the immutable, shareable compilation of one program. Build it
// once with Compile and instantiate any number of concurrent worlds with
// NewFromCompiled; New composes the two for the single-world case.
type Compiled struct {
	prog    *compile.Program
	ai      *analysis.Result
	dict    *table.Dict
	unfused bool

	// fusedOps tallies superinstructions across every compiled kernel —
	// the build-time half of stats.ExecCounters.FusedOps, copied into each
	// world at instantiation.
	fusedOps int64

	classes map[string]*compiledClass
	order   []*compiledClass

	// batches and txns hold the per-site compile-time analyses, keyed by
	// the compiled step pointer exactly like the per-world site maps.
	batches map[*compile.AccumStep]*siteBatch
	txns    map[*compile.AtomicStep]*txnProgs
}

// compiledClass is the shareable half of a class runtime: schema, plan,
// analysis slice, column layout, cost weights and batch kernels. The
// per-world half (table, effect accumulators, scratch) lives in classRT.
type compiledClass struct {
	name        string
	cls         *schema.Class
	plan        *compile.ClassPlan
	ai          *analysis.Class
	cols        []table.Column
	hasRule     []bool
	phaseCost   []float64
	handlerCost float64

	// vec holds the class's compiled batch kernels, or nil when nothing
	// about the class is vectorizable.
	vec *vecClassProgs
}

// Compile compiles a program for sharing across worlds (the production,
// fused configuration). The result is immutable and safe for concurrent
// NewFromCompiled calls.
func Compile(prog *compile.Program) *Compiled { return compileProgram(prog, false) }

// CompileUnfused compiles with the post-compile kernel optimizer disabled —
// the benchmark arm matching Options.Unfused.
func CompileUnfused(prog *compile.Program) *Compiled { return compileProgram(prog, true) }

func compileProgram(prog *compile.Program, unfused bool) *Compiled {
	c := &Compiled{
		prog:    prog,
		ai:      analysis.Analyze(prog),
		dict:    table.NewDict(),
		unfused: unfused,
		classes: make(map[string]*compiledClass),
		batches: make(map[*compile.AccumStep]*siteBatch),
		txns:    make(map[*compile.AtomicStep]*txnProgs),
	}
	for _, cls := range prog.Info.Schema.Classes() {
		cp := prog.Classes[cls.Name]
		cols := make([]table.Column, 0, len(cls.State)+1)
		for _, a := range cls.State {
			cols = append(cols, table.Column{Name: a.Name, Kind: a.Kind})
		}
		cols = append(cols, table.Column{Name: "$pc", Kind: value.KindNumber})
		cc := &compiledClass{
			name:    cls.Name,
			cls:     cls,
			plan:    cp,
			ai:      c.ai.Class(cls.Name),
			cols:    cols,
			hasRule: make([]bool, len(cls.State)),
		}
		for _, u := range cp.Updates {
			cc.hasRule[u.AttrIdx] = true
		}
		cc.phaseCost = make([]float64, len(cp.Phases))
		for p, steps := range cp.Phases {
			cc.phaseCost[p] = stepsCost(steps)
		}
		for _, h := range cp.Handlers {
			cc.handlerCost += 1 + stepsCost(h.Body)
		}
		c.classes[cls.Name] = cc
		c.order = append(c.order, cc)
	}
	// Vectorized kernels compile after every class is registered: txn-site
	// analysis resolves rule reads against other classes' kernels.
	for _, cc := range c.order {
		cc.vec = buildVecProgs(c, cc)
	}
	for _, cc := range c.order {
		forEachStep(cc.plan, func(s compile.Step) {
			switch s := s.(type) {
			case *compile.AccumStep:
				if b := newSiteBatch(c, s); b != nil {
					c.batches[s] = b
				}
			case *compile.AtomicStep:
				c.txns[s] = c.analyzeTxnProgs(s)
			}
		})
	}
	return c
}

// kernelOpts is the standard vexpr compilation configuration: the caller's
// slot gate, the shared string dictionary (string EQ/NEQ and string-valued
// payloads compile to code-lane kernels), and the Unfused benchmark switch.
func (c *Compiled) kernelOpts(slotOK func(int) bool) vexpr.Opts {
	return vexpr.Opts{SlotOK: slotOK, Dict: c.dict, NoOpt: c.unfused}
}

// addFusedOps folds a freshly compiled kernel's superinstruction count into
// the build-time FusedOps gauge. Compilation is serial, so no atomics.
func (c *Compiled) addFusedOps(p *vexpr.Prog) {
	if p != nil {
		c.fusedOps += int64(p.FusedOps())
	}
}

// forEachStep invokes fn for every step of a class plan, recursing into
// nested bodies — the walk shared by the compile-time analyses and the
// per-world site collection.
func forEachStep(cp *compile.ClassPlan, fn func(compile.Step)) {
	var walk func(steps []compile.Step)
	walk = func(steps []compile.Step) {
		for _, s := range steps {
			fn(s)
			switch s := s.(type) {
			case *compile.IfStep:
				walk(s.Then)
				walk(s.Else)
			case *compile.AtomicStep:
				walk(s.Body)
			case *compile.AccumStep:
				walk(s.Body)
				if s.Join != nil {
					walk(s.Join.Inner)
				}
			}
		}
	}
	for _, steps := range cp.Phases {
		walk(steps)
	}
	for _, h := range cp.Handlers {
		walk(h.Body)
	}
}
