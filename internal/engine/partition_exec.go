package engine

// Partition-parallel execution — the tick-pipeline half of partition.go's
// §4.2 runtime. Per class pass, partitions fan out across the worker pool
// for all three row loops:
//
//   - Vectorized phases sweep each partition's owned row span as masked
//     kernel runs. Each worker owns a private vexpr scratch (masks, bufs,
//     slot vectors, id vector — shardCtx.pvec), because partition spans may
//     interleave arbitrarily and so cannot share mask storage the way the
//     sharded executor's disjoint row ranges do. Self-only emissions are
//     row-local and rows are partition-disjoint, so workers write the
//     shared accumulators directly; the newly-touched row logs are staged
//     per partition and folded in partition-major order — deterministic,
//     but globally row-sorted only while spans don't interleave, so
//     nothing may depend on touched-list row order (no consumer does: the
//     list is a set used for resets and dense-vector scatter).
//
//   - Scalar rows and reactive handlers run per partition in ascending
//     physical-row order, staging every emission and transaction into a
//     per-partition sink tagged with its source row. Probes resolve the
//     partition-local index and candidates are canonicalized to physical-
//     row order, so the ⊕ fold order per accumulator is independent of the
//     layout, the epoch and the worker schedule.
//
//   - After each class pass the per-partition sinks merge by source row — a
//     k-way merge of streams that are each row-sorted, i.e. exactly the
//     (partition, row) order — replaying the serial row loop's emission
//     order bit-for-bit. An emission whose target row is owned by another
//     partition counts as a cross-partition effect message.

import (
	"repro/internal/cluster"
	"repro/internal/vexpr"
)

// partSink stages one partition's effect emissions, transactions, touched-
// row logs and row counters during a class pass, each emission tagged with
// the emitting physical row. Rows are appended in ascending order (the
// partition row loop), which is what makes the cross-partition merge a
// k-way merge of sorted streams. A sink is owned by exactly one worker for
// the duration of a pass, so nothing here needs atomics.
type partSink struct {
	curRow  int32
	ems     []Emission
	rows    []int32
	txns    []*Txn
	txnRows []int32

	touched     touchedLog // vectorized-phase empty→touched transitions
	vecRows     int64
	scalarRows  int64
	handlerRows int64
}

func (s *partSink) emit(w *World, e Emission) {
	s.ems = append(s.ems, e)
	s.rows = append(s.rows, s.curRow)
}

func (s *partSink) addTxn(t *Txn) {
	s.txns = append(s.txns, t)
	s.txnRows = append(s.txnRows, s.curRow)
}

func (s *partSink) reset() {
	s.ems = s.ems[:0]
	s.rows = s.rows[:0]
	s.txns = s.txns[:0]
	s.txnRows = s.txnRows[:0]
	s.touched.reset()
	s.vecRows, s.scalarRows, s.handlerRows = 0, 0, 0
}

// partFanout reports whether partition passes fan out across the worker
// pool this tick — the same condition runParts dispatches under.
func (w *World) partFanout() bool {
	nw := w.opts.Workers
	if nw > w.parts.n {
		nw = w.parts.n
	}
	return nw > 1 && w.tracer == nil
}

// vecPhasePart is vecPhaseRange with the partition-ownership test folded
// into the selection mask: one partition's masked kernel sweep over its
// owned row span, through the caller's scratch and machine. Emissions are
// self-only and therefore row-disjoint across partitions, so direct
// accumulator writes stay deterministic; the touched log keeps the shared
// touched lists out of the concurrent path.
func (w *World) vecPhasePart(rt *classRT, phase int, vp *vecPhase, lo, hi int, assign []int32, part int32, sc *vecScratch, m *vexpr.Machine, tl *touchedLog) int {
	mask := sc.masks[0]
	selected := 0
	if rt.plan.NumPhases > 1 {
		pcCol := rt.tab.NumColumn(rt.pcCol)
		for r := lo; r < hi; r++ {
			mask[r] = assign[r] == part && int(pcCol[r]) == phase
			if mask[r] {
				selected++
			}
		}
	} else {
		for r := lo; r < hi; r++ {
			mask[r] = assign[r] == part
			if mask[r] {
				selected++
			}
		}
	}
	if selected > 0 {
		w.execVecSteps(rt, vp.steps, mask, lo, hi, sc, m, tl)
	}
	return selected
}

// runEffectPhasePartitioned executes the query/effect phase partition-
// parallel: per class, every partition — vectorized phase sweeps and the
// scalar row loop alike — is one work unit on the worker pool, with
// per-worker kernel scratch and per-partition sinks, and finally the sinks
// merge in (partition, row) order — which is exactly ascending physical-row
// order, the serial fold order.
func (w *World) runEffectPhasePartitioned() {
	pw := w.parts
	track := !w.opts.DisableStats
	for _, rt := range w.order {
		if rt.plan.Decl.Run == nil || rt.tab.Len() == 0 {
			continue
		}
		pc := rt.prt
		capRows := rt.tab.Cap()
		vecSel, _ := w.chooseEffectExec(rt, rt.phaseCounts())
		fanout := w.partFanout()
		if vecSel != nil && !fanout {
			w.prepareVecPhases(rt, vecSel, capRows)
		}
		w.partPrepGen++
		for _, s := range pw.sinks {
			s.reset()
		}
		runPart := func(slot, p int) {
			sink := pw.sinks[p]
			lo, hi := pc.span(p, capRows)
			if vecSel != nil {
				sc, m := &rt.vec.sc, w.arenaMachine()
				if fanout {
					wc := w.shardCtxs[slot]
					if wc.pvecGen != w.partPrepGen {
						w.prepareVecScratch(rt, &wc.pvec, vecSel, capRows)
						wc.pvecGen = w.partPrepGen
					}
					sc, m = &wc.pvec, &wc.machine
				}
				sink.touched.ensure(len(rt.fx))
				sel := 0
				if lo < hi {
					for ph, on := range vecSel {
						if on {
							sel += w.vecPhasePart(rt, ph, rt.vec.phases[ph], lo, hi, pc.assign, int32(p), sc, m, &sink.touched)
						}
					}
				}
				sink.vecRows += int64(sel)
				pc.loads[p] += int64(sel)
			}
			if lo >= hi {
				return
			}
			// Partition closures can run concurrently across the pool, so
			// each gets a private machine (nil), never the arena's.
			x := newExecCtx(w, sink, rt.plan.NumSlots, nil)
			x.part = int32(p)
			tab := rt.tab
			scalarRows := int64(0)
			for r := lo; r < hi; r++ {
				if pc.assign[r] != int32(p) {
					continue
				}
				pcv := int(tab.At(r, rt.pcCol).AsNumber())
				if vecSel != nil && vecSel[pcv] {
					continue
				}
				steps := rt.plan.Phases[pcv]
				if len(steps) == 0 {
					continue
				}
				sink.curRow = int32(r)
				x.bindRow(rt, r)
				x.runSteps(steps)
				scalarRows++
			}
			sink.scalarRows += scalarRows
			pc.loads[p] += scalarRows + x.joinMatches
			x.flushJoinStats()
		}
		if w.runParts(runPart) && track {
			w.execStats.ParallelShards += int64(pw.n)
		}
		w.foldPartSinks(rt, track)
		w.mergePartSinks(track)
	}
}

// runParts dispatches fn(slot, p) for every partition, across the worker
// pool when it pays (per-partition sinks and per-worker scratch make the
// result order-independent of scheduling); slot identifies the worker's
// private shardCtx. Tracing keeps the loop serial so hooks fire in
// (partition, row) order. Returns whether the pass fanned out.
func (w *World) runParts(fn func(slot, p int)) bool {
	pw := w.parts
	if !w.partFanout() {
		for p := 0; p < pw.n; p++ {
			fn(0, p)
		}
		return false
	}
	w.ensureWorkers()
	w.runPool(pw.n, w.opts.Workers, fn)
	return true
}

// foldPartSinks folds the per-partition vectorized touched-row logs into
// the shared touched lists in partition-major order and the per-partition
// row counters into the execution statistics. The merged list is
// deterministic but not globally row-sorted when partition spans interleave
// (hash layouts, drifted ownership); every consumer of fx.touched treats it
// as an unordered set (accumulator resets, dense effect-vector scatter), so
// only determinism matters here.
func (w *World) foldPartSinks(rt *classRT, track bool) {
	pw := w.parts
	var vec, scalar, handler int64
	for _, s := range pw.sinks {
		for ai, rows := range s.touched.rows {
			if len(rows) > 0 {
				rt.fx[ai].touched = append(rt.fx[ai].touched, rows...)
			}
		}
		s.touched.reset()
		vec += s.vecRows
		scalar += s.scalarRows
		handler += s.handlerRows
		s.vecRows, s.scalarRows, s.handlerRows = 0, 0, 0
	}
	if track {
		w.execStats.VectorRows += vec
		w.execStats.ScalarRows += scalar
		w.execStats.HandlerRows += handler
	}
}

// mergeByRow runs the k-way merge shared by effects and transactions:
// every sink's stream is sorted by source row (rows(si)), rows are unique
// across sinks (each row is owned by exactly one partition), and apply is
// invoked in globally ascending row order — exactly the (partition, row)
// order, which is the serial row loop's order.
func (w *World) mergeByRow(rows func(si int) []int32, apply func(si, i int)) {
	pw := w.parts
	idx := pw.mergeIdx
	for i := range idx {
		idx[i] = 0
	}
	for {
		best, bestRow := -1, int32(0)
		for si := range pw.sinks {
			if rs := rows(si); idx[si] < len(rs) {
				if r := rs[idx[si]]; best < 0 || r < bestRow {
					best, bestRow = si, r
				}
			}
		}
		if best < 0 {
			return
		}
		rs := rows(best)
		for idx[best] < len(rs) && rs[idx[best]] == bestRow {
			apply(best, idx[best])
			idx[best]++
		}
	}
}

// mergePartSinks folds the per-partition sinks into the world's effect
// buffers and transaction list in ascending source-row order, replaying
// exactly the emission order of the serial row loop. Emissions whose target
// row is owned by a different partition than their source row count as
// cross-partition effect messages.
func (w *World) mergePartSinks(track bool) {
	pw := w.parts
	w.mergeByRow(
		func(si int) []int32 { return pw.sinks[si].rows },
		func(si, i int) {
			e := pw.sinks[si].ems[i]
			rt := w.classes[e.Class]
			row := rt.tab.Row(e.Target)
			if row < 0 {
				return // dangling target: contribution is dropped
			}
			rt.fx[e.AttrIdx].add(row, e.Val, e.Key)
			if track && rt.prt.assign[row] != int32(si) {
				w.execStats.PartMsgsEffect++
				w.execStats.PartBytes += cluster.BytesPerEffect
			}
		})
	// Transactions merge the same way, so admission sees them in the serial
	// collection order.
	w.mergeByRow(
		func(si int) []int32 { return pw.sinks[si].txnRows },
		func(si, i int) { w.txns = append(w.txns, pw.sinks[si].txns[i]) })
}

// runHandlersPartitioned evaluates reactive handlers partition-parallel
// with the same sink staging and (partition, row)-ordered merge as the
// effect phase. Handler accum sites are always shared (they probe
// post-update state), so partition contexts resolve parts[0].
func (w *World) runHandlersPartitioned() {
	pw := w.parts
	track := !w.opts.DisableStats
	for _, rt := range w.order {
		if len(rt.plan.Handlers) == 0 || rt.tab.Len() == 0 {
			continue
		}
		pc := rt.prt
		capRows := rt.tab.Cap()
		for _, s := range pw.sinks {
			s.reset()
		}
		runPart := func(slot, p int) {
			sink := pw.sinks[p]
			lo, hi := pc.span(p, capRows)
			if lo >= hi {
				return
			}
			x := newExecCtx(w, sink, rt.plan.NumSlots, nil)
			x.part = int32(p)
			rows := int64(0)
			for r := lo; r < hi; r++ {
				if pc.assign[r] != int32(p) {
					continue
				}
				sink.curRow = int32(r)
				x.bindRow(rt, r)
				for _, h := range rt.plan.Handlers {
					if h.Cond(&x.ctx).AsBool() {
						x.runSteps(h.Body)
					}
				}
				rows++
			}
			sink.handlerRows += rows
			pc.loads[p] += rows
			x.flushJoinStats()
		}
		if w.runParts(runPart) && track {
			w.execStats.ParallelShards += int64(pw.n)
		}
		w.foldPartSinks(rt, track)
		w.mergePartSinks(track)
	}
}
