package engine

import (
	"fmt"

	"repro/internal/value"
)

// UpdateComponent updates the state attributes it owns during the update
// step (§2.2). State attributes are strictly partitioned: the engine
// rejects writes to attributes a component does not own. Components read
// tick-start state and ⊕-combined effects through the UpdateCtx and stage
// new values; all staged writes apply atomically after every component ran.
type UpdateComponent interface {
	// Name must match the `by <name>` owner in class declarations.
	Name() string
	// Update stages new values for owned attributes.
	Update(ctx *UpdateCtx) error
}

// TxnPolicy decides which collected transactions commit (§3.1). The engine
// gives the policy the tick's transactions in deterministic order; the
// policy marks losers via Txn.Aborted and is responsible for leaving the
// effect accumulators consistent with the commit set.
type TxnPolicy interface {
	Admit(ctx *UpdateCtx, txns []*Txn) error
}

// UpdateCtx is the update-step view handed to components: read old state
// and combined effects, stage new state for owned attributes.
type UpdateCtx struct {
	w     *World
	owner string // component being run; "" for the built-in rule evaluator
}

// World returns the world (for read access such as Count/IDs).
func (u *UpdateCtx) World() *World { return u.w }

// Tick returns the tick being computed.
func (u *UpdateCtx) Tick() int64 { return u.w.tick }

// State reads a tick-start state attribute.
func (u *UpdateCtx) State(class string, id value.ID, attr string) (value.Value, bool) {
	rt, ok := u.w.classes[class]
	if !ok {
		return value.Value{}, false
	}
	i := rt.cls.StateIndex(attr)
	if i < 0 {
		return value.Value{}, false
	}
	return u.w.StateValue(class, id, i)
}

// Effect reads the ⊕-combined effect contribution for an object; ok is
// false when nothing was emitted this tick.
func (u *UpdateCtx) Effect(class string, id value.ID, attr string) (value.Value, bool) {
	return u.w.EffectValue(class, id, attr)
}

// IDs lists live objects of a class in storage order.
func (u *UpdateCtx) IDs(class string) []value.ID { return u.w.IDs(class) }

// Stage records a new value for a state attribute. Only the owning
// component may stage an attribute; violations return an error, enforcing
// the paper's strict partition.
func (u *UpdateCtx) Stage(class string, id value.ID, attr string, v value.Value) error {
	rt, ok := u.w.classes[class]
	if !ok {
		return fmt.Errorf("engine: unknown class %q", class)
	}
	i := rt.cls.StateIndex(attr)
	if i < 0 {
		return fmt.Errorf("engine: class %s has no state attribute %q", class, attr)
	}
	owner := rt.plan.OwnedBy[attr]
	if owner != u.owner {
		if u.owner == "" {
			return fmt.Errorf("engine: attribute %s.%s is owned by %q; the rule evaluator may not stage it", class, attr, owner)
		}
		return fmt.Errorf("engine: component %q may not stage %s.%s (owner %q)", u.owner, class, attr, owner)
	}
	if v.Kind() != rt.cls.State[i].Kind {
		return fmt.Errorf("engine: staging %s into %s.%s (%s)", v.Kind(), class, attr, rt.cls.State[i].Kind)
	}
	if rt.staged == nil {
		rt.staged = make(map[int]map[value.ID]value.Value)
	}
	m := rt.staged[i]
	if m == nil {
		m = make(map[value.ID]value.Value)
		rt.staged[i] = m
	}
	m[id] = v
	return nil
}

// stageRule is the internal unchecked staging used by the expression-rule
// evaluator for attributes that have rules (never owned ones).
func (u *UpdateCtx) stageRule(rt *classRT, attrIdx int, id value.ID, v value.Value) {
	if rt.staged == nil {
		rt.staged = make(map[int]map[value.ID]value.Value)
	}
	m := rt.staged[attrIdx]
	if m == nil {
		m = make(map[value.ID]value.Value)
		rt.staged[attrIdx] = m
	}
	m[id] = v
}
