// Package engine executes compiled SGL programs with the state-effect tick
// cycle of §2: a query/effect phase in which scripts read frozen state and
// emit effect contributions set-at-a-time, a transaction-admission step
// (§3.1), an update step in which strictly partitioned update components
// compute new state (§2.2), and a reactive-handler step that arms effects
// for the next tick (§3.2). Accum-loop joins are executed through per-tick
// spatial/hash indexes chosen adaptively per site (§4.1, §4.2).
package engine

import (
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/combinator"
	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/value"
)

// Options configure a World.
type Options struct {
	// Workers caps the worker pool for the sharded execution paths
	// (effect phase, update rules, reactive handlers); 0 or 1 runs
	// serially. The pool is a ceiling, not a mandate: per class and tick
	// the cost model decides how many batch-aligned row shards are worth
	// fanning out, so small extents run inline regardless of Workers.
	Workers int
	// Strategy forces a single physical strategy for every accum join
	// (plan.Auto enables adaptive selection, the default).
	Strategy plan.Strategy
	// Exec selects scalar closure vs vectorized batch execution for update
	// rules and simple effect phases. The default (plan.ExecAuto) lets the
	// cost model vectorize every extent large enough to amortize batch
	// setup; plan.ExecScalar and plan.ExecVectorized force one path. Exec
	// and Workers compose: vectorized phases run their kernels per shard
	// across the pool, everything else falls back to the sharded scalar
	// row loop. At a fixed worker count, end states are bit-identical
	// across Exec modes; across worker counts they are ⊕-equivalent, and
	// bit-identical whenever each accumulator's contributions come from a
	// single shard (the self-emission common case) or fold exactly.
	Exec plan.ExecMode
	// Join selects how accum-join matches execute: the interpreted per-match
	// loop body (plan.JoinScalar), or the batched driver (plan.JoinBatched)
	// that gathers candidate rows through the index's row probe, re-checks
	// the split predicate over raw columns and — for single-emission bodies
	// over columnar payloads — folds contributions through batch kernels.
	// The default (plan.JoinAuto) decides per site and tick from match-
	// cardinality feedback. Both paths produce bit-identical results.
	Join plan.JoinMode
	// Partitions > 0 enables shared-nothing partitioned execution (§4.2):
	// each class extent splits into spatial partitions and every partition
	// runs the tick pipeline — vectorized phases, scalar rows, batched
	// joins over its own partition-local indexes — against its owned rows
	// plus read-only ghost replicas of neighbor rows within the scripts'
	// derived interaction radius. Cross-partition effects and boundary
	// migrations are staged as messages, merged deterministically in
	// (partition, row) order, so any partition count produces bit-identical
	// state to Partitions: 1. Workers composes: partitions fan out across
	// the worker pool. 0 disables partitioning (the default single-extent
	// executor).
	Partitions int
	// Partition picks the partitioning layout (plan.PartitionAuto by
	// default: the least-cut-length spatial layout; stripes, grid and the
	// communication-oblivious hash strawman can be forced).
	Partition plan.PartitionStrategy
	// PartitionBy optionally designates the position attributes (1 or 2
	// numeric state attrs, e.g. {"Boid": {"x", "y"}}) each class partitions
	// over. Classes not listed infer axes from their compiled join range
	// predicates, then from attrs named x/y; classes with no spatial axes
	// at all are spread by id hash.
	PartitionBy map[string][]string
	// Txn selects how transaction admission (§3.1) executes: the serial
	// object-at-a-time greedy loop (plan.TxnScalar), or the batched driver
	// (plan.TxnBatched) that groups conflict-independent transactions,
	// validates the independent ones whole-batch against a columnar
	// tentative view through vexpr constraint kernels, and fans true
	// conflict groups out across the worker pool (partition-major when
	// partitioned). The default (plan.TxnAuto) decides per tick from the
	// cost model with batch-fraction feedback. Every mode, worker count and
	// partition count produces bit-identical admission outcomes — commit/
	// abort sets and effect-buffer contents — to the serial loop.
	Txn plan.TxnMode
	// Rebalance selects how partitioned layouts evolve across ticks.
	// Layouts are versioned epochs: under the default
	// (plan.RebalanceAdaptive) the cost model replaces a class's layout —
	// re-measured drift-widened bounds, or population-quantile cuts that
	// split hot partitions — whenever the modeled imbalance penalty
	// amortizes the re-layout plus mass migration, with hysteresis so
	// layouts never thrash. plan.RebalanceOff freezes every layout at its
	// first-tick epoch. Any epoch sequence stays bit-identical to
	// Partitions=1: rebalancing changes only who computes what, and all
	// staging merges in (partition, row) order.
	Rebalance plan.RebalancePolicy
	// DisableStats turns off runtime statistics collection (experiment E8).
	DisableStats bool
	// Unfused compiles every vexpr kernel with the post-compile optimizer
	// disabled (no superinstruction fusion, no invariant hoisting, no
	// closure-chain specialization) — the pre-fusion interpreted kernels.
	// Benchmark arms use it to measure the fusion delta (E13/E15);
	// production callers leave it false.
	Unfused bool
}

// World is a running game: tables for every class, compiled plans, effect
// buffers, update components and the tick loop.
type World struct {
	prog    *compile.Program
	classes map[string]*classRT
	order   []*classRT

	// compiled is the immutable compilation this world was instantiated
	// from — possibly shared with many sibling worlds (the many-world
	// server's plan cache).
	compiled *Compiled

	// arena is the per-tick execution arena (kernel machine + index build
	// arenas): owned when arenaPool is nil, otherwise checked out of the
	// shared pool at tick start and returned at tick end. See arena.go.
	arena     *Arena
	arenaPool *ArenaPool

	// xctx/uctx are the pooled serial execution and update contexts,
	// re-armed per class pass so steady-state ticks allocate nothing.
	xctx *execCtx
	uctx *UpdateCtx

	// ai is the program's unified static analysis (internal/analysis):
	// read/write sets, fold classification, structural vectorizability,
	// constraint stability and join partitionability. Every build-time
	// physical-plan decision below routes through it.
	ai *analysis.Result

	comps      []UpdateComponent
	compByName map[string]UpdateComponent
	interrupts []interrupt
	txnPolicy  TxnPolicy

	tick   int64
	nextID value.ID
	inTick bool

	pendingSpawn []pendingSpawn
	pendingKill  []pendingKill

	sites         []*siteRT
	siteIndex     map[*compile.AccumStep]*siteRT
	siteBuildList []*siteRT // per-tick rebuild worklist, reused
	buildOffs     []int     // sharded entry-gather offsets, reused
	opts          Options

	txns []*Txn

	// txnSites holds the per-atomic-block admission analysis (constraint
	// kernels, conflict read sets, tentative-view requirements); txnrt is
	// the retained scratch of the batched admission driver. See txnsite.go
	// and txnbatch.go.
	txnSites map[*compile.AtomicStep]*txnSite
	txnrt    txnRuntime

	tracer      TraceFn
	inspectors  []Inspector
	workerSinks []*workerSink
	shardCtxs   []*shardCtx // per-worker machines, counters, staging
	shardBuf    []shard     // scratch shard partition, reused per pass

	// parts is the shared-nothing partitioned-execution state (nil unless
	// Options.Partitions > 0); see partition.go. partPrepGen identifies the
	// current partitioned class pass, so each worker prepares its private
	// kernel scratch exactly once per pass.
	parts       *partWorld
	partPrepGen uint64

	// dict is the world-wide string dictionary: one shared interning space,
	// so codes are comparable across columns, tables and compiled literals.
	// It is what lets string ==/!= predicates and string-valued emissions
	// run through numeric kernels instead of falling back to closures.
	dict *table.Dict

	// execCosts models the scalar-vs-vectorized trade-off (§4.1's cost
	// model, extended to execution mode); execStats tallies which path ran.
	execCosts plan.Costs
	execStats stats.ExecCounters

	// scratch evaluation context reused across rows in serial execution
	ctx expr.Ctx

	// gatherFn is the pre-bound gatherState method value; binding it once
	// keeps per-tick kernel environment setup allocation-free.
	gatherFn func(class string, attrIdx int, refs, out []float64, zero float64)
}

type pendingSpawn struct {
	class string
	id    value.ID
	init  map[string]value.Value
}

type pendingKill struct {
	class string
	id    value.ID
}

type interrupt struct {
	class string
	cond  func(w *World, id value.ID) bool
	phase int
}

// TraceFn observes effect emissions for debugging (§3.3). It runs inline;
// keep it cheap or filter by id.
type TraceFn func(tick int64, srcClass string, src value.ID, dstClass string, dst value.ID, attr string, v value.Value)

// Inspector receives tick life-cycle callbacks (§3.3).
type Inspector interface {
	TickStart(w *World, tick int64)
	TickEnd(w *World, tick int64)
}

// classRT is the runtime of one class: its columnar table (state attrs plus
// a hidden pc column), effect accumulators and compiled plan.
type classRT struct {
	name  string
	cls   *schema.Class
	plan  *compile.ClassPlan
	tab   *table.Table
	pcCol int

	// vec holds the class's batch-kernel plan, or nil when nothing about
	// the class is vectorizable.
	vec *vecClassPlan

	// phaseCost and handlerCost are crude per-row work weights (step
	// counts, accum loops weighted heavily) feeding the parallelism axis
	// of the cost model; countsBuf and vecSelBuf are per-tick scratch for
	// the two-axis effect-phase decision.
	phaseCost   []float64
	handlerCost float64
	countsBuf   []int
	vecSelBuf   []bool

	fx []fxColumn

	// prt is the class's shared-nothing partitioning state (nil until the
	// first partitioned tick measures the layouts; see partition.go).
	prt *partClass

	// hasRule[i] is true when state attr i has an expression update rule.
	hasRule []bool

	// ai is the class's slice of the program analysis.
	ai *analysis.Class

	// Batched-admission scratch (txnbatch.go), all generation-stamped so
	// nothing is cleared between admissions. txnRowOwner maps a physical
	// row to the transaction that last claimed it during conflict grouping;
	// txnViewCols holds the columnar tentative post-update view per state
	// attr; txnFxGen marks which dense effect vectors in vec.fxVecs are
	// fresh for the current admission pass.
	txnRowOwner []int32
	txnRowGen   []uint64
	txnViewCols [][]float64
	txnViewGen  []uint64
	txnFxGen    []uint64
	// staged new-state values for the update step.
	staged map[int]map[value.ID]value.Value // attrIdx -> id -> value

	// vlog accumulates the class's state changes for the subscription-view
	// changefeed (nil until EnableChangeFeed; see changefeed.go).
	vlog *changeLog
}

// fxColumn is the per-tick effect accumulation for one effect attribute,
// dense over physical rows.
type fxColumn struct {
	comb    combinator.Kind
	kind    value.Kind
	acc     []combinator.Accumulator
	touched []int
}

func (f *fxColumn) ensure(capacity int) {
	for len(f.acc) < capacity {
		f.acc = append(f.acc, combinator.New(f.comb, f.kind))
	}
}

func (f *fxColumn) reset() {
	combinator.ResetRows(f.acc, f.touched)
	f.touched = f.touched[:0]
}

func (f *fxColumn) add(row int, v value.Value, key float64) {
	if f.acc[row].N() == 0 {
		f.touched = append(f.touched, row)
	}
	f.acc[row].Add(v, key)
}

// addLogged is add for sharded writers: the empty→touched transition is
// recorded in the caller's private log (merged in shard order after the
// barrier) instead of the shared touched list.
func (f *fxColumn) addLogged(row int, v value.Value, key float64, log *[]int) {
	if f.acc[row].N() == 0 {
		*log = append(*log, row)
	}
	f.acc[row].Add(v, key)
}

// addPayload / addPayloadLogged fold a raw column payload without boxing a
// value.Value — the fused emission path (kernel outputs are already
// payloads). Bit-identical to add via the AddPayload contract.
func (f *fxColumn) addPayload(row int, p, key float64) {
	if f.acc[row].N() == 0 {
		f.touched = append(f.touched, row)
	}
	f.acc[row].AddPayload(p, key)
}

func (f *fxColumn) addPayloadLogged(row int, p, key float64, log *[]int) {
	if f.acc[row].N() == 0 {
		*log = append(*log, row)
	}
	f.acc[row].AddPayload(p, key)
}

// New builds a World for a compiled program: a one-world convenience that
// compiles and instantiates in one step. Many-world callers Compile once and
// call NewFromCompiled per world.
func New(prog *compile.Program, opts Options) (*World, error) {
	return NewFromCompiled(compileProgram(prog, opts.Unfused), opts)
}

// NewFromCompiled instantiates a World over a shared compilation. Only the
// mutable half is built here — tables, effect accumulators, per-world site
// and scratch state; kernels, plans and analyses come from c by reference.
// Safe to call concurrently on the same Compiled.
func NewFromCompiled(c *Compiled, opts Options) (*World, error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Unfused != c.unfused {
		return nil, fmt.Errorf("engine: Options.Unfused=%v does not match the compiled plan (unfused=%v)", opts.Unfused, c.unfused)
	}
	w := &World{
		prog:       c.prog,
		compiled:   c,
		ai:         c.ai,
		classes:    make(map[string]*classRT),
		compByName: make(map[string]UpdateComponent),
		siteIndex:  make(map[*compile.AccumStep]*siteRT),
		opts:       opts,
		execCosts:  plan.DefaultCosts(),
		nextID:     1,
		dict:       c.dict,
	}
	w.gatherFn = w.gatherState
	if !opts.DisableStats {
		w.execStats.FusedOps = c.fusedOps
	}
	for _, cc := range c.order {
		rt := &classRT{
			name:        cc.name,
			cls:         cc.cls,
			plan:        cc.plan,
			tab:         table.NewWithDict(cc.name, cc.cols, c.dict),
			pcCol:       len(cc.cls.State),
			ai:          cc.ai,
			hasRule:     cc.hasRule,
			phaseCost:   cc.phaseCost,
			handlerCost: cc.handlerCost,
		}
		for _, e := range cc.cls.Effects {
			rt.fx = append(rt.fx, fxColumn{comb: e.Comb, kind: e.Kind})
		}
		if cc.vec != nil {
			rt.vec = &vecClassPlan{vecClassProgs: cc.vec}
		}
		w.classes[cc.name] = rt
		w.order = append(w.order, rt)
	}
	// Register the implicit expression-rule component and validate the
	// strict ownership partition (§2.2).
	if err := w.validateOwnership(); err != nil {
		return nil, err
	}
	w.collectSites()
	w.collectTxnSites()
	if err := w.initPartitions(); err != nil {
		return nil, err
	}
	return w, nil
}

// validateOwnership ensures no state attribute has both a rule and an
// owner, and records which attrs are unowned (carry-over).
func (w *World) validateOwnership() error {
	for _, rt := range w.order {
		for _, u := range rt.plan.Updates {
			name := rt.cls.State[u.AttrIdx].Name
			if owner, ok := rt.plan.OwnedBy[name]; ok {
				return fmt.Errorf("engine: class %s: attribute %s has both update rule and owner %q", rt.name, name, owner)
			}
		}
	}
	return nil
}

// Register adds an update component. Components must be registered before
// the first tick and must own only attributes declared `by <name>`.
func (w *World) Register(c UpdateComponent) error {
	name := c.Name()
	if _, dup := w.compByName[name]; dup {
		return fmt.Errorf("engine: duplicate update component %q", name)
	}
	for _, rt := range w.order {
		for attr, owner := range rt.plan.OwnedBy { //sglvet:allow maprange: validation only, first-error choice is not state
			if owner != name {
				continue
			}
			if rt.cls.StateIndex(attr) < 0 {
				return fmt.Errorf("engine: component %q claims unknown attribute %s.%s", name, rt.name, attr)
			}
		}
	}
	w.comps = append(w.comps, c)
	w.compByName[name] = c
	return nil
}

// MissingOwners returns "class.attr" strings whose declared owner component
// has not been registered; ticking with missing owners is an error. Attrs
// report in declaration order, not map order.
func (w *World) MissingOwners() []string {
	var out []string
	for _, rt := range w.order {
		for _, a := range rt.cls.State {
			owner, owned := rt.plan.OwnedBy[a.Name]
			if !owned {
				continue
			}
			if _, ok := w.compByName[owner]; !ok {
				out = append(out, rt.name+"."+a.Name+" (by "+owner+")")
			}
		}
	}
	return out
}

// RegisterInterrupt installs a reactive interrupt: after each update step,
// if cond holds for an object of the class, its program counter is reset to
// phase (§3.2's interruptible intentions).
func (w *World) RegisterInterrupt(class string, cond func(w *World, id value.ID) bool, phase int) error {
	rt, ok := w.classes[class]
	if !ok {
		return fmt.Errorf("engine: unknown class %q", class)
	}
	if phase < 0 || phase >= rt.plan.NumPhases {
		return fmt.Errorf("engine: class %s has %d phases; cannot interrupt to %d", class, rt.plan.NumPhases, phase)
	}
	w.interrupts = append(w.interrupts, interrupt{class: class, cond: cond, phase: phase})
	return nil
}

// SetTracer installs an effect-emission trace hook (§3.3). Pass nil to
// disable.
func (w *World) SetTracer(fn TraceFn) { w.tracer = fn }

// AddInspector attaches a tick-boundary inspector (§3.3).
func (w *World) AddInspector(i Inspector) { w.inspectors = append(w.inspectors, i) }

// Tick returns the current tick number (number of completed ticks).
func (w *World) Tick() int64 { return w.tick }

// PlanSwitches returns the total number of adaptive plan switches across
// all accum sites (§4.1).
func (w *World) PlanSwitches() int64 {
	var n int64
	for _, s := range w.sites {
		n += s.selector.Switches()
	}
	return n
}

// SiteStrategies reports each accum site's current physical strategy, for
// the debugger and the adaptive-optimization experiments.
func (w *World) SiteStrategies() []string {
	out := make([]string, 0, len(w.sites))
	for _, s := range w.sites {
		out = append(out, fmt.Sprintf("%s accum(phase %d) -> %s", s.class, s.phase, s.strategy))
	}
	return out
}

// Schema returns the program schema.
func (w *World) Schema() *schema.Schema { return w.prog.Info.Schema }

// Program returns the compiled program.
func (w *World) Program() *compile.Program { return w.prog }

// Spawn creates an object. Attribute defaults come from the class
// declaration; init overrides by name. Mid-tick spawns take effect at the
// next tick boundary.
func (w *World) Spawn(class string, init map[string]value.Value) (value.ID, error) {
	rt, ok := w.classes[class]
	if !ok {
		return value.NullID, fmt.Errorf("engine: unknown class %q", class)
	}
	for name := range init { //sglvet:allow maprange: membership validation only, no state mutated
		if rt.cls.StateIndex(name) < 0 {
			return value.NullID, fmt.Errorf("engine: class %s has no state attribute %q", class, name)
		}
	}
	id := w.nextID
	w.nextID++
	if w.inTick {
		w.pendingSpawn = append(w.pendingSpawn, pendingSpawn{class: class, id: id, init: init})
		return id, nil
	}
	w.doSpawn(rt, id, init)
	return id, nil
}

func (w *World) doSpawn(rt *classRT, id value.ID, init map[string]value.Value) {
	vals := make([]value.Value, len(rt.cls.State)+1)
	for i, a := range rt.cls.State {
		v := a.Default
		if ov, ok := init[a.Name]; ok {
			if ov.Kind() != a.Kind {
				panic(fmt.Sprintf("engine: spawn %s: attribute %s wants %s, got %s", rt.name, a.Name, a.Kind, ov.Kind()))
			}
			v = ov
		}
		if a.Kind == value.KindSet {
			v = value.SetVal(v.AsSet().Clone())
		}
		vals[i] = v
	}
	vals[rt.pcCol] = value.Num(0)
	row := rt.tab.Insert(id, vals)
	if rt.vlog != nil {
		rt.vlog.noteSpawn(row, rt.tab.StructVersion())
	}
	for i := range rt.fx {
		rt.fx[i].ensure(rt.tab.Cap())
	}
}

// Kill removes an object. Mid-tick kills take effect at the next tick
// boundary.
func (w *World) Kill(class string, id value.ID) error {
	rt, ok := w.classes[class]
	if !ok {
		return fmt.Errorf("engine: unknown class %q", class)
	}
	if w.inTick {
		w.pendingKill = append(w.pendingKill, pendingKill{class: class, id: id})
		return nil
	}
	if rt.tab.Delete(id) && rt.vlog != nil {
		rt.vlog.noteKill(id, rt.tab.StructVersion())
	}
	return nil
}

// Count returns the number of live objects of a class.
func (w *World) Count(class string) int {
	if rt, ok := w.classes[class]; ok {
		return rt.tab.Len()
	}
	return 0
}

// IDs returns the live object ids of a class in storage order.
func (w *World) IDs(class string) []value.ID {
	if rt, ok := w.classes[class]; ok {
		return rt.tab.IDs()
	}
	return nil
}

// Get reads a state attribute.
func (w *World) Get(class string, id value.ID, attr string) (value.Value, bool) {
	rt, ok := w.classes[class]
	if !ok {
		return value.Value{}, false
	}
	return rt.tab.Get(id, attr)
}

// MustGet reads a state attribute, panicking when absent (test helper).
func (w *World) MustGet(class string, id value.ID, attr string) value.Value {
	v, ok := w.Get(class, id, attr)
	if !ok {
		panic(fmt.Sprintf("engine: no %s.%s for id %d", class, attr, id))
	}
	return v
}

// SetState directly assigns a state attribute outside of a tick (scenario
// setup and checkpoint restore only).
func (w *World) SetState(class string, id value.ID, attr string, v value.Value) error {
	if w.inTick {
		return fmt.Errorf("engine: SetState during a tick violates the state-effect pattern")
	}
	rt, ok := w.classes[class]
	if !ok {
		return fmt.Errorf("engine: unknown class %q", class)
	}
	if rt.vlog != nil {
		if row := rt.tab.Row(id); row >= 0 {
			rt.vlog.mark(row)
		}
	}
	if !rt.tab.Set(id, attr, v) {
		return fmt.Errorf("engine: no %s.%s for id %d", class, attr, id)
	}
	return nil
}

// SetPC jumps an object's script to a phase between ticks — the resumption
// half of §3.2's interruptible intentions.
func (w *World) SetPC(class string, id value.ID, phase int) error {
	rt, ok := w.classes[class]
	if !ok {
		return fmt.Errorf("engine: unknown class %q", class)
	}
	if phase < 0 || phase >= rt.plan.NumPhases {
		return fmt.Errorf("engine: class %s has %d phases", class, rt.plan.NumPhases)
	}
	row := rt.tab.Row(id)
	if row < 0 {
		return fmt.Errorf("engine: no object %d", id)
	}
	rt.tab.SetAt(row, rt.pcCol, value.Num(float64(phase)))
	return nil
}

// PC returns the current phase of an object's script.
func (w *World) PC(class string, id value.ID) int {
	rt, ok := w.classes[class]
	if !ok {
		return -1
	}
	row := rt.tab.Row(id)
	if row < 0 {
		return -1
	}
	return int(rt.tab.At(row, rt.pcCol).AsNumber())
}

// StateValue implements expr.World over committed (tick-start) state.
func (w *World) StateValue(class string, id value.ID, attrIdx int) (value.Value, bool) {
	rt, ok := w.classes[class]
	if !ok {
		return value.Value{}, false
	}
	row := rt.tab.Row(id)
	if row < 0 {
		return value.Value{}, false
	}
	return rt.tab.At(row, attrIdx), true
}

// rowReader adapts a physical table row to expr.RowReader.
type rowReader struct {
	rt  *classRT
	row int
}

func (r rowReader) Attr(attrIdx int) value.Value { return r.rt.tab.At(r.row, attrIdx) }

// fxReader adapts a row's effect accumulators to expr.EffectReader.
type fxReader struct {
	rt  *classRT
	row int
}

func (r fxReader) EffectValue(attrIdx int) (value.Value, bool) {
	return r.rt.fx[attrIdx].acc[r.row].Result()
}

func effectZeroFn(rt *classRT) func(int) value.Value {
	return func(attrIdx int) value.Value {
		e := rt.cls.Effects[attrIdx]
		return value.Zero(e.Comb.ResultKind(e.Kind))
	}
}

// EffectValue returns the ⊕-combined effect contribution for an object this
// tick (valid during update components and inspectors).
func (w *World) EffectValue(class string, id value.ID, attr string) (value.Value, bool) {
	rt, ok := w.classes[class]
	if !ok {
		return value.Value{}, false
	}
	idx := rt.cls.EffectIndex(attr)
	if idx < 0 {
		return value.Value{}, false
	}
	row := rt.tab.Row(id)
	if row < 0 {
		return value.Value{}, false
	}
	return rt.fx[idx].acc[row].Result()
}

// Txn is a transaction intent collected from an atomic block (§3.1).
type Txn struct {
	Class       string
	Source      value.ID
	Frame       []value.Value
	Constraints []expr.Fn
	Emissions   []Emission
	// Aborted is set by the admission policy during the update step.
	Aborted bool

	// step links back to the compiled atomic block, giving admission access
	// to the build-time constraint analysis (txnsite.go). Nil for
	// hand-crafted transactions, which always admit through the serial loop.
	step *compile.AtomicStep
}

// Emission is one effect contribution, either inside a Txn or flowing
// directly into the effect buffers.
type Emission struct {
	Class     string
	Target    value.ID
	AttrIdx   int
	Val       value.Value
	Key       float64
	SetInsert bool
}

// Txns returns the transactions collected during the current tick (valid
// for admission policies and inspectors).
func (w *World) Txns() []*Txn { return w.txns }

// siteRT is the per-accum-site runtime: adaptive selector, statistics, the
// compile-time batch plan, and the per-partition prepared indexes. A
// non-partitioned world (and every site the partitioned executor must treat
// whole-world, see partition.go) has exactly one sitePart; a partitioned
// world gives spatially analyzable sites one sitePart per partition, each
// indexing its owned rows plus the ghost replicas its probes can reach.
type siteRT struct {
	step  *compile.AccumStep
	class string // probing class
	phase int

	selector   *plan.Selector
	stats      *stats.SiteStats
	mu         sync.Mutex
	boxExtent  stats.EMA
	candidates []plan.Strategy

	// batch is the compile-time analysis backing the batched join driver
	// (nil when the accum has no analyzed join).
	batch *siteBatch

	// Per-tick prepared execution state shared by all partitions.
	strategy plan.Strategy
	batched  bool // this tick's join-execution decision

	srcAttrs []int // source attrs the join predicate indexes or keys

	// parts holds the per-partition build state; parts[0] doubles as the
	// whole-extent state outside partitioned execution. shared is set per
	// tick by the partitioned executor when the site cannot be spatially
	// restricted (unbounded predicate, computed source set, handler site,
	// hash layout): all partitions then probe parts[0] over the full extent.
	parts  []sitePart
	shared bool

	// reach[d] is this tick's derived interaction reach of range dimension
	// d around its anchor axis (partitioned execution only; see
	// deriveSiteReach). builtReach is the reach the current member views
	// reflect. Derivation evaluates the bound expressions over the whole
	// probing extent, so it is cached behind the world state fingerprint:
	// bounds are pure reads of committed state (possibly of other objects
	// through refs), hence unchanged state ⇒ unchanged reach.
	reach         []dimReach
	builtReach    []dimReach
	builtReachOK  bool
	reachDerived  bool
	reachSpatial  bool
	reachStateVer uint64
}

// sitePart is the prepared index state of one partition of one accum site:
// the member-row view (owned rows plus ghosts, ascending), the per-tick
// index over exactly those rows, and the retained build arena with its
// reuse bookkeeping.
type sitePart struct {
	// view holds the member rows this partition's probes may see; its
	// backing storage is rowsBuf, reused across ticks. Outside partitioned
	// execution the view is unused (the index covers the full extent).
	view    table.View
	rowsBuf []int32
	ghosts  int64 // members owned by another partition

	// Per-tick prepared index.
	tree boxProber
	hash *index.RowHash
	dims []int // range-dim attr indices

	// Retained build state: the arena all builds draw from (attached from
	// the world's per-tick Arena; nil between ticks when pooling), plus the
	// versions that tell whether last tick's index is still valid. An index
	// is only reusable while the builder it was built from is still
	// attached AND has not been rebuilt by another holder — builderValid
	// checks the recorded (builder, generation) pair.
	builder       *index.Builder
	builtBuilder  *index.Builder
	builtGen      uint64
	builtOK       bool
	builtStrategy plan.Strategy
	builtStruct   uint64
	builtVers     []uint64 // source-attr column versions at build time
	builtCell     float64  // grid cell size at build time
	builtAssign   uint64   // partition-assignment version at build time
	// builtMembers records the scope of the built index: member rows
	// (partition-local) vs the whole extent. A member-scoped index must
	// never serve whole-extent probes or vice versa — the maintenance
	// ladders check this on every spatial/shared transition.
	builtMembers bool
	// memberViewOK marks the member view's contents valid for builtAssign
	// and the site's builtReach (cleared whenever a shared pass overwrites
	// the view with the full extent).
	memberViewOK bool
}

// builderValid reports whether the indexes recorded at the last build still
// alias live builder memory: the same builder is attached and nobody else
// has built with it since.
func (pp *sitePart) builderValid() bool {
	return pp.builder != nil && pp.builder == pp.builtBuilder && pp.builder.Gen() == pp.builtGen
}

// boxProber is a spatial index answering closed-box probes by id (scalar
// path) or physical row (batched path) in identical candidate order, and
// reporting its resident size for the §4.2 partitioned-memory accounting.
type boxProber interface {
	Query(lo, hi []float64, out []value.ID) []value.ID
	QueryRows(lo, hi []float64, out []int32) []int32
	EstimatedBytes() int
}

// collectSites walks all compiled plans and registers every accum site.
func (w *World) collectSites() {
	for _, rt := range w.order {
		var walk func(steps []compile.Step, phase int)
		walk = func(steps []compile.Step, phase int) {
			for _, s := range steps {
				switch s := s.(type) {
				case *compile.IfStep:
					walk(s.Then, phase)
					walk(s.Else, phase)
				case *compile.AtomicStep:
					walk(s.Body, phase)
				case *compile.AccumStep:
					site := &siteRT{
						step:      s,
						class:     rt.name,
						phase:     phase,
						stats:     stats.NewSiteStats(),
						boxExtent: stats.NewEMA(0.3),
					}
					site.candidates = candidatesFor(s)
					site.selector = plan.NewSelector(site.candidates[0])
					site.batch = w.compiled.batches[s]
					site.parts = make([]sitePart, 1)
					if j := s.Join; j != nil {
						for _, r := range j.Ranges {
							site.srcAttrs = append(site.srcAttrs, r.AttrIdx)
						}
						for _, eq := range j.Eqs {
							site.srcAttrs = append(site.srcAttrs, eq.AttrIdx)
						}
					}
					w.sites = append(w.sites, site)
					w.siteIndex[s] = site
					walk(s.Body, phase)
					if s.Join != nil {
						walk(s.Join.Inner, phase)
					}
				}
			}
		}
		for p, steps := range rt.plan.Phases {
			walk(steps, p)
		}
		for _, h := range rt.plan.Handlers {
			walk(h.Body, -1)
		}
	}
}

func candidatesFor(s *compile.AccumStep) []plan.Strategy {
	if s.SourceFn != nil || s.Join == nil {
		return []plan.Strategy{plan.NestedLoop}
	}
	j := s.Join
	switch {
	case len(j.Ranges) >= 1:
		c := []plan.Strategy{plan.RangeTreeIndex, plan.NestedLoop}
		if len(j.Ranges) == 2 && bounded(j.Ranges[0]) && bounded(j.Ranges[1]) {
			c = append(c, plan.GridIndex)
		}
		return c
	case len(j.Eqs) >= 1:
		return []plan.Strategy{plan.HashIndex, plan.NestedLoop}
	default:
		return []plan.Strategy{plan.NestedLoop}
	}
}

func bounded(r compile.RangeDim) bool { return len(r.Lo) > 0 && len(r.Hi) > 0 }
