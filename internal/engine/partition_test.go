package engine_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/workload"
)

func flockWorldFor(t *testing.T, n int, opts engine.Options) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario("flock", core.SrcFlock)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.PopulateBoids(w, workload.Uniform(n, 900, 900, 3)); err != nil {
		t.Fatal(err)
	}
	return w
}

func carWorldFor(t *testing.T, n int, opts engine.Options) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario("traffic-prox", core.SrcTraffic)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	net := workload.TrafficNetwork{W: 4000, H: 4000, Roads: 40, Speed: 3}
	if _, err := core.PopulateCars(w, net.Vehicles(n, 9)); err != nil {
		t.Fatal(err)
	}
	return w
}

var (
	boidAttrs = []string{"x", "y", "vx", "vy", "sight"}
	carAttrs  = []string{"x", "y", "dx", "dy", "speed", "slow"}
)

// TestPartitionMatrixDifferential is the acceptance guard for shared-
// nothing partitioned execution: Partitions ∈ {1, 2, 4} × layout ∈ {grid,
// stripes} × Workers ∈ {1, 4} over the traffic (vectorized phases, no
// joins), headway-join traffic and flock (three range joins per boid per
// tick) scenarios, with spawn/kill churn and continuous movement driving
// boundary-crossing migrations — every configuration must end bit-identical
// to the single-partition run. This is the same bar PR 2 set for the
// Workers×Exec axes and PR 3 for the Join axis.
func TestPartitionMatrixDifferential(t *testing.T) {
	type cfg struct {
		parts   int
		strat   plan.PartitionStrategy
		workers int
	}
	var cfgs []cfg
	for _, p := range []int{1, 2, 4} {
		for _, s := range []plan.PartitionStrategy{plan.PartitionGrid, plan.PartitionStripes} {
			for _, wk := range []int{1, 4} {
				cfgs = append(cfgs, cfg{p, s, wk})
			}
		}
	}
	scenarios := []struct {
		name  string
		class string
		attrs []string
		n     int
		ticks int
		build func(t *testing.T, n int, opts engine.Options) *engine.World
		spawn func(w *engine.World, i int) (value.ID, error)
	}{
		{
			name: "traffic", class: "Vehicle", attrs: vehicleAttrs, n: 2000, ticks: 5,
			build: trafficWorld,
			spawn: func(w *engine.World, i int) (value.ID, error) {
				return w.Spawn("Vehicle", map[string]value.Value{
					"x": value.Num(float64(i%97) * 40), "y": value.Num(float64(i%89) * 40),
					"dx": value.Num(1), "speed": value.Num(float64(2 + i%4)),
					"fuel": value.Num(float64(300 + i%57)),
				})
			},
		},
		{
			name: "traffic-prox", class: "Car", attrs: carAttrs, n: 1500, ticks: 4,
			build: carWorldFor,
			spawn: func(w *engine.World, i int) (value.ID, error) {
				return w.Spawn("Car", map[string]value.Value{
					"x": value.Num(float64(i%83) * 48), "y": value.Num(float64(i%79) * 50),
					"dx": value.Num(1), "speed": value.Num(float64(2 + i%3)),
				})
			},
		},
		{
			name: "flock", class: "Boid", attrs: boidAttrs, n: 1200, ticks: 4,
			build: flockWorldFor,
			spawn: func(w *engine.World, i int) (value.ID, error) {
				return w.Spawn("Boid", map[string]value.Value{
					"x": value.Num(float64(i%59) * 15), "y": value.Num(float64(i%53) * 17),
					"vx": value.Num(1), "vy": value.Num(-0.5),
				})
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			worlds := make([]*engine.World, len(cfgs))
			for i, c := range cfgs {
				worlds[i] = sc.build(t, sc.n, engine.Options{
					Partitions: c.parts, Partition: c.strat, Workers: c.workers,
				})
			}
			ref := worlds[0] // Partitions=1
			live := append([]value.ID(nil), ref.IDs(sc.class)...)
			rng := rand.New(rand.NewSource(13))
			for tick := 0; tick < sc.ticks; tick++ {
				// Churn: kill a random live object and spawn a fresh one
				// identically in every world (ids stay aligned because
				// spawn order is identical).
				if len(live) > 20 {
					k := rng.Intn(len(live))
					for _, w := range worlds {
						if err := w.Kill(sc.class, live[k]); err != nil {
							t.Fatal(err)
						}
					}
					live = append(live[:k], live[k+1:]...)
				}
				var nid value.ID
				for wi, w := range worlds {
					id, err := sc.spawn(w, tick*37)
					if err != nil {
						t.Fatal(err)
					}
					if wi == 0 {
						nid = id
					} else if id != nid {
						t.Fatalf("id drift: %d vs %d", id, nid)
					}
				}
				live = append(live, nid)
				for wi, w := range worlds {
					if err := w.RunTick(); err != nil {
						t.Fatalf("cfg %+v tick %d: %v", cfgs[wi], tick, err)
					}
				}
			}
			for wi := 1; wi < len(worlds); wi++ {
				if d := diffClassWorlds(ref, worlds[wi], sc.class, sc.attrs, live); d != "" {
					t.Fatalf("cfg %+v diverged from Partitions=1: %s", cfgs[wi], d)
				}
			}
		})
	}
}

// TestPartitionedMatchesUnpartitionedTraffic ties the partitioned executor
// back to the plain engine: on the join-free traffic scenario every fold is
// exact, so partitioned execution must be bit-identical to the
// unpartitioned world too, not just to Partitions=1.
func TestPartitionedMatchesUnpartitionedTraffic(t *testing.T) {
	const n, ticks = 2000, 5
	plain := trafficWorld(t, n, engine.Options{})
	parted := trafficWorld(t, n, engine.Options{Partitions: 4})
	for _, w := range []*engine.World{plain, parted} {
		if err := w.Run(ticks); err != nil {
			t.Fatal(err)
		}
	}
	if d := diffClassWorlds(plain, parted, "Vehicle", vehicleAttrs, plain.IDs("Vehicle")); d != "" {
		t.Fatal(d)
	}
	if parted.Partitions() != 4 || plain.Partitions() != 0 {
		t.Fatalf("Partitions() = %d / %d", parted.Partitions(), plain.Partitions())
	}
}

// TestPartitionCounters pins the §4.2 accounting: spatial partitioning of a
// moving join workload must report ghost replicas, boundary migrations, a
// sane imbalance ratio and per-partition index memory — and the hash
// strawman must replicate everything everywhere.
func TestPartitionCounters(t *testing.T) {
	const n, parts, ticks = 1500, 4, 4
	w := flockWorldFor(t, n, engine.Options{Partitions: parts, Partition: plan.PartitionStripes})
	if err := w.Run(ticks); err != nil {
		t.Fatal(err)
	}
	st := w.ExecStats()
	if st.GhostRows == 0 {
		t.Fatal("spatial partitioning of flock reported no ghost rows")
	}
	if st.MigratedRows == 0 {
		t.Fatal("moving boids never migrated across stripe boundaries")
	}
	if st.PartMsgsGhost == 0 {
		t.Fatal("index rebuilds sent no ghost refresh messages")
	}
	if st.PartBytes == 0 {
		t.Fatal("messages carried no modeled bytes")
	}
	if imb := st.PartImbalance(parts); imb < 1 || imb > float64(parts) {
		t.Fatalf("imbalance %v outside [1, parts]", imb)
	}
	ib := w.PartitionIndexBytes()
	if len(ib) != parts {
		t.Fatalf("PartitionIndexBytes len %d, want %d", len(ib), parts)
	}
	tot := int64(0)
	for _, b := range ib {
		if b <= 0 {
			t.Fatalf("partition index bytes = %v", ib)
		}
		tot += b
	}

	// The hash layout must replicate every boid to every other partition,
	// per site, per tick — and keep one full-size shared index.
	h := flockWorldFor(t, n, engine.Options{Partitions: parts, Partition: plan.PartitionHash})
	if err := h.Run(ticks); err != nil {
		t.Fatal(err)
	}
	hst := h.ExecStats()
	const sites = 3 // flock runs three accum joins
	want := int64(parts-1) * int64(n) * sites * ticks
	if hst.GhostRows < want {
		t.Fatalf("hash ghost rows %d, want >= %d (full replication)", hst.GhostRows, want)
	}
	if hst.GhostRows <= st.GhostRows*10 {
		t.Fatalf("hash replication (%d) must dwarf spatial ghosts (%d)", hst.GhostRows, st.GhostRows)
	}

	// DisableStats silences the partition counters like every other counter.
	off := flockWorldFor(t, n, engine.Options{Partitions: parts, DisableStats: true})
	if err := off.Run(2); err != nil {
		t.Fatal(err)
	}
	if c := off.ExecStats(); c.PartMessages() != 0 || c.GhostRows != 0 || c.MigratedRows != 0 ||
		c.PartLoadSum != 0 || c.PartBytes != 0 {
		t.Fatalf("DisableStats leaked partition counters: %+v", c)
	}
}

// TestInteractionRadiiExposed pins the derived per-class-pair interaction
// radius: flock's ±sight box must anchor both dimensions at the maximum
// sight (20), and an accum with a one-sided (unbounded) range conjunct must
// fall back to a shared whole-world site.
func TestInteractionRadiiExposed(t *testing.T) {
	w := flockWorldFor(t, 800, engine.Options{Partitions: 4})
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	radii := w.InteractionRadii()
	if len(radii) != 3 {
		t.Fatalf("flock has 3 sites, got %d", len(radii))
	}
	for _, sr := range radii {
		if sr.Class != "Boid" || sr.Source != "Boid" {
			t.Fatalf("site pair %s->%s", sr.Class, sr.Source)
		}
		if sr.Shared {
			t.Fatalf("bounded flock site classified shared: %+v", sr)
		}
		if len(sr.Dims) != 2 {
			t.Fatalf("dims: %+v", sr.Dims)
		}
		for _, d := range sr.Dims {
			if !d.Anchored || d.Attr != d.Axis {
				t.Fatalf("dim not anchored to its own axis: %+v", d)
			}
			if math.Abs(d.Lo-20) > 1e-9 || math.Abs(d.Hi-20) > 1e-9 {
				t.Fatalf("sight reach = %v/%v, want 20/20", d.Lo, d.Hi)
			}
		}
	}

	// One-sided predicate: `u.x >= x - 5` has no upper bound, so the reach
	// is unbounded and the site must fall back to whole-world replication.
	const unboundedSrc = `
class P {
  state:
    number x = 0;
    number v = 1;
  effects:
    number s : sum;
  update:
    x = x + 1;
  run {
    accum number c with sum over P u from P {
      if (u.x >= x - 5) {
        c <- u.v;
      }
    } in {
      s <- c;
    }
  }
}
`
	sc, err := core.LoadScenario("unbounded", unboundedSrc)
	if err != nil {
		t.Fatal(err)
	}
	uw, err := sc.NewWorld(engine.Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := uw.Spawn("P", map[string]value.Value{"x": value.Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := uw.Run(2); err != nil {
		t.Fatal(err)
	}
	ur := uw.InteractionRadii()
	if len(ur) != 1 || !ur[0].Shared {
		t.Fatalf("unbounded site must be shared: %+v", ur)
	}
	if st := uw.ExecStats(); st.GhostRows == 0 {
		t.Fatal("shared fallback must account full replication")
	}
}

// TestPartitionByOption covers the explicit axis designation and its
// validation.
func TestPartitionByOption(t *testing.T) {
	sc, err := core.LoadScenario("flock", core.SrcFlock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.NewWorld(engine.Options{Partitions: 2, PartitionBy: map[string][]string{"Nope": {"x"}}}); err == nil {
		t.Fatal("unknown class must be rejected")
	}
	if _, err := sc.NewWorld(engine.Options{Partitions: 2, PartitionBy: map[string][]string{"Boid": {"zap"}}}); err == nil {
		t.Fatal("unknown attribute must be rejected")
	}
	if _, err := sc.NewWorld(engine.Options{Partitions: 2, PartitionBy: map[string][]string{"Boid": {}}}); err == nil {
		t.Fatal("empty axis list must be rejected")
	}
	// Partitioning on a single explicit axis must still be bit-identical.
	a := flockWorldFor(t, 600, engine.Options{Partitions: 1})
	b := flockWorldFor(t, 600, engine.Options{Partitions: 3, PartitionBy: map[string][]string{"Boid": {"y"}}})
	for _, w := range []*engine.World{a, b} {
		if err := w.Run(3); err != nil {
			t.Fatal(err)
		}
	}
	if d := diffClassWorlds(a, b, "Boid", boidAttrs, a.IDs("Boid")); d != "" {
		t.Fatal(d)
	}
}

// TestSpatialToSharedFlipRebuilds pins the stale-index hazard on a
// spatial→shared site transition: tick 1 builds partition-local
// member-scoped indexes; a NaN anchor then forces the whole-world fallback
// while the source class's columns are completely unchanged — the
// maintenance ladder must NOT reuse the member-scoped index for
// whole-extent probes (it only covers one partition's neighborhood), it
// must rebuild over the full extent.
func TestSpatialToSharedFlipRebuilds(t *testing.T) {
	const src = `
class S {
  state:
    number sx = 0;
    number v = 1;
}
class C {
  state:
    number x = 0;
    number tx = 0;
    number o = 0;
  effects:
    number out : sum;
  update:
    o = out;
  run {
    accum number c with sum over S u from S {
      if (u.sx >= tx - 5 && u.sx <= tx + 5) {
        c <- u.v;
      }
    } in {
      out <- c;
    }
  }
}
`
	sc, err := core.LoadScenario("flip", src)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(engine.Options{
		Partitions: 2, Partition: plan.PartitionStripes,
		Strategy:    plan.RangeTreeIndex,
		PartitionBy: map[string][]string{"C": {"x"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := w.Spawn("S", map[string]value.Value{"sx": value.Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	var probes []value.ID
	for _, x := range []float64{10, 48, 52, 90} {
		id, err := w.Spawn("C", map[string]value.Value{"x": value.Num(x), "tx": value.Num(x)})
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, id)
	}
	check := func(tag string) {
		t.Helper()
		for _, id := range probes {
			// Each probe sees 11 source rows (tx±5 over integer sx).
			if got := w.MustGet("C", id, "o").AsNumber(); got != 11 {
				t.Fatalf("%s: probe %d counted %v, want 11", tag, id, got)
			}
		}
	}
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	check("spatial tick")
	// Poison one anchor: the probe box (tx±5) stays valid but has no
	// relation to the partition axis any more, so the site must fall back
	// to a shared whole-extent index — S's columns never changed, which is
	// exactly what made the stale member-scoped reuse possible.
	if err := w.SetState("C", probes[0], "x", value.Num(math.NaN())); err != nil {
		t.Fatal(err)
	}
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	check("shared tick")
	radii := w.InteractionRadii()
	if len(radii) != 1 || !radii[0].Shared {
		t.Fatalf("site must have fallen back to shared: %+v", radii)
	}
	// And back: restoring the anchor must restore spatial ghosting (the
	// shared pass overwrote the member views, so they must refill).
	if err := w.SetState("C", probes[0], "x", value.Num(10)); err != nil {
		t.Fatal(err)
	}
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	check("respatialized tick")
	if radii = w.InteractionRadii(); radii[0].Shared {
		t.Fatalf("site must be spatial again: %+v", radii)
	}
}
