package engine_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/workload"
)

func flockWorldFor(t *testing.T, n int, opts engine.Options) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario("flock", core.SrcFlock)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.PopulateBoids(w, workload.Uniform(n, 900, 900, 3)); err != nil {
		t.Fatal(err)
	}
	return w
}

func carWorldFor(t *testing.T, n int, opts engine.Options) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario("traffic-prox", core.SrcTraffic)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	net := workload.TrafficNetwork{W: 4000, H: 4000, Roads: 40, Speed: 3}
	if _, err := core.PopulateCars(w, net.Vehicles(n, 9)); err != nil {
		t.Fatal(err)
	}
	return w
}

var (
	boidAttrs = []string{"x", "y", "vx", "vy", "sight"}
	carAttrs  = []string{"x", "y", "dx", "dy", "speed", "slow"}
)

// TestPartitionMatrixDifferential is the acceptance guard for shared-
// nothing partitioned execution: Partitions ∈ {1, 2, 4} × layout ∈ {grid,
// stripes} × Workers ∈ {1, 4} over the traffic (vectorized phases, no
// joins), headway-join traffic and flock (three range joins per boid per
// tick) scenarios, with spawn/kill churn and continuous movement driving
// boundary-crossing migrations — every configuration must end bit-identical
// to the single-partition run. This is the same bar PR 2 set for the
// Workers×Exec axes and PR 3 for the Join axis.
func TestPartitionMatrixDifferential(t *testing.T) {
	type cfg struct {
		parts   int
		strat   plan.PartitionStrategy
		workers int
	}
	var cfgs []cfg
	for _, p := range []int{1, 2, 4} {
		for _, s := range []plan.PartitionStrategy{plan.PartitionGrid, plan.PartitionStripes} {
			for _, wk := range []int{1, 4} {
				cfgs = append(cfgs, cfg{p, s, wk})
			}
		}
	}
	scenarios := []struct {
		name  string
		class string
		attrs []string
		n     int
		ticks int
		build func(t *testing.T, n int, opts engine.Options) *engine.World
		spawn func(w *engine.World, i int) (value.ID, error)
	}{
		{
			name: "traffic", class: "Vehicle", attrs: vehicleAttrs, n: 2000, ticks: 5,
			build: trafficWorld,
			spawn: func(w *engine.World, i int) (value.ID, error) {
				return w.Spawn("Vehicle", map[string]value.Value{
					"x": value.Num(float64(i%97) * 40), "y": value.Num(float64(i%89) * 40),
					"dx": value.Num(1), "speed": value.Num(float64(2 + i%4)),
					"fuel": value.Num(float64(300 + i%57)),
				})
			},
		},
		{
			name: "traffic-prox", class: "Car", attrs: carAttrs, n: 1500, ticks: 4,
			build: carWorldFor,
			spawn: func(w *engine.World, i int) (value.ID, error) {
				return w.Spawn("Car", map[string]value.Value{
					"x": value.Num(float64(i%83) * 48), "y": value.Num(float64(i%79) * 50),
					"dx": value.Num(1), "speed": value.Num(float64(2 + i%3)),
				})
			},
		},
		{
			name: "flock", class: "Boid", attrs: boidAttrs, n: 1200, ticks: 4,
			build: flockWorldFor,
			spawn: func(w *engine.World, i int) (value.ID, error) {
				return w.Spawn("Boid", map[string]value.Value{
					"x": value.Num(float64(i%59) * 15), "y": value.Num(float64(i%53) * 17),
					"vx": value.Num(1), "vy": value.Num(-0.5),
				})
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			worlds := make([]*engine.World, len(cfgs))
			for i, c := range cfgs {
				worlds[i] = sc.build(t, sc.n, engine.Options{
					Partitions: c.parts, Partition: c.strat, Workers: c.workers,
				})
			}
			ref := worlds[0] // Partitions=1
			live := append([]value.ID(nil), ref.IDs(sc.class)...)
			rng := rand.New(rand.NewSource(13))
			for tick := 0; tick < sc.ticks; tick++ {
				// Churn: kill a random live object and spawn a fresh one
				// identically in every world (ids stay aligned because
				// spawn order is identical).
				if len(live) > 20 {
					k := rng.Intn(len(live))
					for _, w := range worlds {
						if err := w.Kill(sc.class, live[k]); err != nil {
							t.Fatal(err)
						}
					}
					live = append(live[:k], live[k+1:]...)
				}
				var nid value.ID
				for wi, w := range worlds {
					id, err := sc.spawn(w, tick*37)
					if err != nil {
						t.Fatal(err)
					}
					if wi == 0 {
						nid = id
					} else if id != nid {
						t.Fatalf("id drift: %d vs %d", id, nid)
					}
				}
				live = append(live, nid)
				for wi, w := range worlds {
					if err := w.RunTick(); err != nil {
						t.Fatalf("cfg %+v tick %d: %v", cfgs[wi], tick, err)
					}
				}
			}
			for wi := 1; wi < len(worlds); wi++ {
				if d := diffClassWorlds(ref, worlds[wi], sc.class, sc.attrs, live); d != "" {
					t.Fatalf("cfg %+v diverged from Partitions=1: %s", cfgs[wi], d)
				}
			}
		})
	}
}

// TestPartitionedMatchesUnpartitionedTraffic ties the partitioned executor
// back to the plain engine: on the join-free traffic scenario every fold is
// exact, so partitioned execution must be bit-identical to the
// unpartitioned world too, not just to Partitions=1.
func TestPartitionedMatchesUnpartitionedTraffic(t *testing.T) {
	const n, ticks = 2000, 5
	plain := trafficWorld(t, n, engine.Options{})
	parted := trafficWorld(t, n, engine.Options{Partitions: 4})
	for _, w := range []*engine.World{plain, parted} {
		if err := w.Run(ticks); err != nil {
			t.Fatal(err)
		}
	}
	if d := diffClassWorlds(plain, parted, "Vehicle", vehicleAttrs, plain.IDs("Vehicle")); d != "" {
		t.Fatal(d)
	}
	if parted.Partitions() != 4 || plain.Partitions() != 0 {
		t.Fatalf("Partitions() = %d / %d", parted.Partitions(), plain.Partitions())
	}
}

// TestPartitionCounters pins the §4.2 accounting: spatial partitioning of a
// moving join workload must report ghost replicas, boundary migrations, a
// sane imbalance ratio and per-partition index memory — and the hash
// strawman must replicate everything everywhere.
func TestPartitionCounters(t *testing.T) {
	const n, parts, ticks = 1500, 4, 4
	w := flockWorldFor(t, n, engine.Options{Partitions: parts, Partition: plan.PartitionStripes})
	if err := w.Run(ticks); err != nil {
		t.Fatal(err)
	}
	st := w.ExecStats()
	if st.GhostRows == 0 {
		t.Fatal("spatial partitioning of flock reported no ghost rows")
	}
	if st.MigratedRows == 0 {
		t.Fatal("moving boids never migrated across stripe boundaries")
	}
	if st.PartMsgsGhost == 0 {
		t.Fatal("index rebuilds sent no ghost refresh messages")
	}
	if st.PartBytes == 0 {
		t.Fatal("messages carried no modeled bytes")
	}
	if imb := st.PartImbalance(parts); imb < 1 || imb > float64(parts) {
		t.Fatalf("imbalance %v outside [1, parts]", imb)
	}
	ib := w.PartitionIndexBytes()
	if len(ib) != parts {
		t.Fatalf("PartitionIndexBytes len %d, want %d", len(ib), parts)
	}
	tot := int64(0)
	for _, b := range ib {
		if b <= 0 {
			t.Fatalf("partition index bytes = %v", ib)
		}
		tot += b
	}

	// The hash layout must replicate every boid to every other partition,
	// per site, per tick — and keep one full-size shared index.
	h := flockWorldFor(t, n, engine.Options{Partitions: parts, Partition: plan.PartitionHash})
	if err := h.Run(ticks); err != nil {
		t.Fatal(err)
	}
	hst := h.ExecStats()
	const sites = 3 // flock runs three accum joins
	want := int64(parts-1) * int64(n) * sites * ticks
	if hst.GhostRows < want {
		t.Fatalf("hash ghost rows %d, want >= %d (full replication)", hst.GhostRows, want)
	}
	if hst.GhostRows <= st.GhostRows*10 {
		t.Fatalf("hash replication (%d) must dwarf spatial ghosts (%d)", hst.GhostRows, st.GhostRows)
	}

	// DisableStats silences the partition counters like every other counter.
	off := flockWorldFor(t, n, engine.Options{Partitions: parts, DisableStats: true})
	if err := off.Run(2); err != nil {
		t.Fatal(err)
	}
	if c := off.ExecStats(); c.PartMessages() != 0 || c.GhostRows != 0 || c.MigratedRows != 0 ||
		c.PartLoadSum != 0 || c.PartBytes != 0 {
		t.Fatalf("DisableStats leaked partition counters: %+v", c)
	}
}

// TestInteractionRadiiExposed pins the derived per-class-pair interaction
// radius: flock's ±sight box must anchor both dimensions at the maximum
// sight (20), and an accum with a one-sided (unbounded) range conjunct must
// fall back to a shared whole-world site.
func TestInteractionRadiiExposed(t *testing.T) {
	w := flockWorldFor(t, 800, engine.Options{Partitions: 4})
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	radii := w.InteractionRadii()
	if len(radii) != 3 {
		t.Fatalf("flock has 3 sites, got %d", len(radii))
	}
	for _, sr := range radii {
		if sr.Class != "Boid" || sr.Source != "Boid" {
			t.Fatalf("site pair %s->%s", sr.Class, sr.Source)
		}
		if sr.Shared {
			t.Fatalf("bounded flock site classified shared: %+v", sr)
		}
		if len(sr.Dims) != 2 {
			t.Fatalf("dims: %+v", sr.Dims)
		}
		for _, d := range sr.Dims {
			if !d.Anchored || d.Attr != d.Axis {
				t.Fatalf("dim not anchored to its own axis: %+v", d)
			}
			if math.Abs(d.Lo-20) > 1e-9 || math.Abs(d.Hi-20) > 1e-9 {
				t.Fatalf("sight reach = %v/%v, want 20/20", d.Lo, d.Hi)
			}
		}
	}

	// One-sided predicate: `u.x >= x - 5` has no upper bound, so the reach
	// is unbounded and the site must fall back to whole-world replication.
	const unboundedSrc = `
class P {
  state:
    number x = 0;
    number v = 1;
  effects:
    number s : sum;
  update:
    x = x + 1;
  run {
    accum number c with sum over P u from P {
      if (u.x >= x - 5) {
        c <- u.v;
      }
    } in {
      s <- c;
    }
  }
}
`
	sc, err := core.LoadScenario("unbounded", unboundedSrc)
	if err != nil {
		t.Fatal(err)
	}
	uw, err := sc.NewWorld(engine.Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := uw.Spawn("P", map[string]value.Value{"x": value.Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := uw.Run(2); err != nil {
		t.Fatal(err)
	}
	ur := uw.InteractionRadii()
	if len(ur) != 1 || !ur[0].Shared {
		t.Fatalf("unbounded site must be shared: %+v", ur)
	}
	if st := uw.ExecStats(); st.GhostRows == 0 {
		t.Fatal("shared fallback must account full replication")
	}
}

// TestPartitionByOption covers the explicit axis designation and its
// validation.
func TestPartitionByOption(t *testing.T) {
	sc, err := core.LoadScenario("flock", core.SrcFlock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.NewWorld(engine.Options{Partitions: 2, PartitionBy: map[string][]string{"Nope": {"x"}}}); err == nil {
		t.Fatal("unknown class must be rejected")
	}
	if _, err := sc.NewWorld(engine.Options{Partitions: 2, PartitionBy: map[string][]string{"Boid": {"zap"}}}); err == nil {
		t.Fatal("unknown attribute must be rejected")
	}
	if _, err := sc.NewWorld(engine.Options{Partitions: 2, PartitionBy: map[string][]string{"Boid": {}}}); err == nil {
		t.Fatal("empty axis list must be rejected")
	}
	// Partitioning on a single explicit axis must still be bit-identical.
	a := flockWorldFor(t, 600, engine.Options{Partitions: 1})
	b := flockWorldFor(t, 600, engine.Options{Partitions: 3, PartitionBy: map[string][]string{"Boid": {"y"}}})
	for _, w := range []*engine.World{a, b} {
		if err := w.Run(3); err != nil {
			t.Fatal(err)
		}
	}
	if d := diffClassWorlds(a, b, "Boid", boidAttrs, a.IDs("Boid")); d != "" {
		t.Fatal(d)
	}
}

// TestSpatialToSharedFlipRebuilds pins the stale-index hazard on a
// spatial→shared site transition: tick 1 builds partition-local
// member-scoped indexes; a NaN anchor then forces the whole-world fallback
// while the source class's columns are completely unchanged — the
// maintenance ladder must NOT reuse the member-scoped index for
// whole-extent probes (it only covers one partition's neighborhood), it
// must rebuild over the full extent.
func TestSpatialToSharedFlipRebuilds(t *testing.T) {
	const src = `
class S {
  state:
    number sx = 0;
    number v = 1;
}
class C {
  state:
    number x = 0;
    number tx = 0;
    number o = 0;
  effects:
    number out : sum;
  update:
    o = out;
  run {
    accum number c with sum over S u from S {
      if (u.sx >= tx - 5 && u.sx <= tx + 5) {
        c <- u.v;
      }
    } in {
      out <- c;
    }
  }
}
`
	sc, err := core.LoadScenario("flip", src)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(engine.Options{
		Partitions: 2, Partition: plan.PartitionStripes,
		Strategy:    plan.RangeTreeIndex,
		PartitionBy: map[string][]string{"C": {"x"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := w.Spawn("S", map[string]value.Value{"sx": value.Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	var probes []value.ID
	for _, x := range []float64{10, 48, 52, 90} {
		id, err := w.Spawn("C", map[string]value.Value{"x": value.Num(x), "tx": value.Num(x)})
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, id)
	}
	check := func(tag string) {
		t.Helper()
		for _, id := range probes {
			// Each probe sees 11 source rows (tx±5 over integer sx).
			if got := w.MustGet("C", id, "o").AsNumber(); got != 11 {
				t.Fatalf("%s: probe %d counted %v, want 11", tag, id, got)
			}
		}
	}
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	check("spatial tick")
	// Poison one anchor: the probe box (tx±5) stays valid but has no
	// relation to the partition axis any more, so the site must fall back
	// to a shared whole-extent index — S's columns never changed, which is
	// exactly what made the stale member-scoped reuse possible.
	if err := w.SetState("C", probes[0], "x", value.Num(math.NaN())); err != nil {
		t.Fatal(err)
	}
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	check("shared tick")
	radii := w.InteractionRadii()
	if len(radii) != 1 || !radii[0].Shared {
		t.Fatalf("site must have fallen back to shared: %+v", radii)
	}
	// And back: restoring the anchor must restore spatial ghosting (the
	// shared pass overwrote the member views, so they must refill).
	if err := w.SetState("C", probes[0], "x", value.Num(10)); err != nil {
		t.Fatal(err)
	}
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	check("respatialized tick")
	if radii = w.InteractionRadii(); radii[0].Shared {
		t.Fatalf("site must be spatial again: %+v", radii)
	}
}

// TestRebalanceMatrixDifferential is the acceptance guard for layout
// epochs: Partitions ∈ {1, 2, 4} × Rebalance ∈ {eager, off} × Workers ∈
// {1, 4} over the traffic (vectorized phases) and flock (three range
// joins) scenarios, with drift-heavy churn — every tick kills random
// objects and spawns replacements clustered into one corner, so ownership
// skews hard and eager worlds install successor epochs mid-run — and every
// configuration must end bit-identical to the single-partition reference.
// Rebalancing may only change who computes what, never what is computed.
func TestRebalanceMatrixDifferential(t *testing.T) {
	type cfg struct {
		parts   int
		reb     plan.RebalancePolicy
		workers int
	}
	var cfgs []cfg
	for _, p := range []int{1, 2, 4} {
		for _, rb := range []plan.RebalancePolicy{plan.RebalanceEager, plan.RebalanceOff} {
			for _, wk := range []int{1, 4} {
				cfgs = append(cfgs, cfg{p, rb, wk})
			}
		}
	}
	scenarios := []struct {
		name  string
		class string
		attrs []string
		n     int
		ticks int
		build func(t *testing.T, n int, opts engine.Options) *engine.World
		spawn func(w *engine.World, i int) (value.ID, error)
	}{
		{
			name: "traffic", class: "Vehicle", attrs: vehicleAttrs, n: 2000, ticks: 8,
			build: func(t *testing.T, n int, opts engine.Options) *engine.World {
				// A clustered population (two tight blobs in a 4000² world)
				// so uniform first-tick slots start out skewed and eager
				// worlds have something to split.
				t.Helper()
				sc, err := core.LoadScenario("vehicles", core.SrcVehicles)
				if err != nil {
					t.Fatal(err)
				}
				w, err := sc.NewWorld(opts)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := core.PopulateVehicles(w, workload.Clustered(n, 2, 80, 4000, 4000, 5)); err != nil {
					t.Fatal(err)
				}
				return w
			},
			spawn: func(w *engine.World, i int) (value.ID, error) {
				// Cluster churn into one corner so loads skew further.
				return w.Spawn("Vehicle", map[string]value.Value{
					"x": value.Num(3600 + float64(i%13)*30), "y": value.Num(3700 + float64(i%11)*25),
					"dx": value.Num(1), "speed": value.Num(float64(2 + i%4)),
					"fuel": value.Num(float64(300 + i%57)),
				})
			},
		},
		{
			name: "flock", class: "Boid", attrs: boidAttrs, n: 1000, ticks: 6,
			build: flockWorldFor,
			spawn: func(w *engine.World, i int) (value.ID, error) {
				return w.Spawn("Boid", map[string]value.Value{
					"x": value.Num(float64(i%23) * 6), "y": value.Num(float64(i%19) * 7),
					"vx": value.Num(2), "vy": value.Num(1),
				})
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			worlds := make([]*engine.World, len(cfgs))
			for i, c := range cfgs {
				worlds[i] = sc.build(t, sc.n, engine.Options{
					Partitions: c.parts, Rebalance: c.reb, Workers: c.workers,
				})
			}
			ref := worlds[0]
			live := append([]value.ID(nil), ref.IDs(sc.class)...)
			rng := rand.New(rand.NewSource(29))
			for tick := 0; tick < sc.ticks; tick++ {
				for k := 0; k < 3 && len(live) > 40; k++ {
					j := rng.Intn(len(live))
					for _, w := range worlds {
						if err := w.Kill(sc.class, live[j]); err != nil {
							t.Fatal(err)
						}
					}
					live = append(live[:j], live[j+1:]...)
				}
				for k := 0; k < 3; k++ {
					var nid value.ID
					for wi, w := range worlds {
						id, err := sc.spawn(w, tick*41+k*17)
						if err != nil {
							t.Fatal(err)
						}
						if wi == 0 {
							nid = id
						} else if id != nid {
							t.Fatalf("id drift: %d vs %d", id, nid)
						}
					}
					live = append(live, nid)
				}
				for wi, w := range worlds {
					if err := w.RunTick(); err != nil {
						t.Fatalf("cfg %+v tick %d: %v", cfgs[wi], tick, err)
					}
				}
			}
			rebalanced := false
			for wi := 1; wi < len(worlds); wi++ {
				if d := diffClassWorlds(ref, worlds[wi], sc.class, sc.attrs, live); d != "" {
					t.Fatalf("cfg %+v diverged from reference: %s", cfgs[wi], d)
				}
				if cfgs[wi].parts > 1 && cfgs[wi].reb == plan.RebalanceEager &&
					worlds[wi].ExecStats().RebalanceCount > 0 {
					rebalanced = true
				}
				if cfgs[wi].reb == plan.RebalanceOff {
					if c := worlds[wi].ExecStats().RebalanceCount; c != 0 {
						t.Fatalf("cfg %+v: frozen layout rebalanced %d times", cfgs[wi], c)
					}
				}
			}
			if !rebalanced {
				t.Fatal("no eager configuration installed a successor epoch; the matrix exercised nothing")
			}
		})
	}
}

// SrcDriftFlock is a flock whose members share one constant velocity: the
// whole population translates every tick, so any frozen layout's measured
// box goes stale and every row eventually clamps into the far edge
// partition — the §4.2 clamp-skew pathology this PR makes observable
// (stats.ClampedRows) and fixable (RebalanceWiden with a measured drift
// margin).
const srcDriftFlock = `
class Boid {
  state:
    number x = 0;
    number y = 0;
    number vx = 4;
    number vy = 0;
  effects:
    number nb : sum;
  update:
    x = x + vx;
    y = y + vy;
  run {
    accum number cnt with sum over Boid u from Boid {
      if (u.x >= x - 10 && u.x <= x + 10 && u.y >= y - 10 && u.y <= y + 10) {
        cnt <- 1;
      }
    } in {
      nb <- cnt;
    }
  }
}
`

func driftFlockWorld(t *testing.T, n int, opts engine.Options) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario("drift-flock", srcDriftFlock)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := w.Spawn("Boid", map[string]value.Value{
			"x": value.Num(float64(i%30) * 4), "y": value.Num(float64(i/30) * 5),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// TestDriftingFlockClampSkew is the edge-partition clamp-skew regression: a
// drifting flock under a frozen layout piles every row into the boundary
// stripe (clamped rows accumulate, imbalance approaches the partition
// count), while the adaptive default re-measures drift-widened bounds —
// epochs advance, clamp skew stays bounded, the imbalance holds near 1 —
// and the two worlds still end bit-identical, because layouts never change
// results.
func TestDriftingFlockClampSkew(t *testing.T) {
	const n, parts, ticks = 600, 4, 40
	frozen := driftFlockWorld(t, n, engine.Options{
		Partitions: parts, Partition: plan.PartitionStripes, Rebalance: plan.RebalanceOff,
	})
	adaptive := driftFlockWorld(t, n, engine.Options{
		Partitions: parts, Partition: plan.PartitionStripes,
	})
	for _, w := range []*engine.World{frozen, adaptive} {
		if err := w.Run(ticks); err != nil {
			t.Fatal(err)
		}
	}
	fs, as := frozen.ExecStats(), adaptive.ExecStats()

	// The skew is observable: the frozen world clamps essentially the whole
	// population every late tick.
	if fs.ClampedRows < int64(n)*int64(ticks)/4 {
		t.Fatalf("frozen drift clamped only %d row-ticks; skew not observable", fs.ClampedRows)
	}
	if fs.RebalanceCount != 0 || fs.EpochID != 1 {
		t.Fatalf("frozen layout advanced epochs: %d fires, epoch %d", fs.RebalanceCount, fs.EpochID)
	}

	// The adaptive world re-measures: epochs advance, and the measured
	// drift margin keeps clamping bounded well below the frozen world.
	if as.RebalanceCount == 0 || as.EpochID < 2 {
		t.Fatalf("adaptive drift never rebalanced: %d fires, epoch %d", as.RebalanceCount, as.EpochID)
	}
	if as.ClampedRows*2 >= fs.ClampedRows {
		t.Fatalf("adaptive clamp skew %d not clearly below frozen %d", as.ClampedRows, fs.ClampedRows)
	}
	fi, ai := fs.PartImbalance(parts), as.PartImbalance(parts)
	if ai >= fi {
		t.Fatalf("adaptive imbalance %.2f did not beat frozen %.2f", ai, fi)
	}
	if fi < 2 {
		t.Fatalf("frozen imbalance %.2f never degraded; drift workload too tame", fi)
	}

	// And rebalancing never changed what was computed.
	if d := diffClassWorlds(frozen, adaptive, "Boid", []string{"x", "y", "vx", "vy"}, frozen.IDs("Boid")); d != "" {
		t.Fatalf("adaptive layouts diverged from frozen: %s", d)
	}
}

// TestPartitionedVecFanOut pins the per-worker kernel scratch: partitioned
// vectorized phases must fan out across the pool (ParallelShards counts the
// dispatched partition sweeps — it stayed zero when vec phases ran
// partition-serial over one shared scratch) and stay bit-identical with
// identical VectorRows accounting across worker counts.
func TestPartitionedVecFanOut(t *testing.T) {
	const n, parts, ticks = 3000, 4, 4
	w1 := trafficWorld(t, n, engine.Options{Partitions: parts, Workers: 1})
	w4 := trafficWorld(t, n, engine.Options{Partitions: parts, Workers: 4})
	for _, w := range []*engine.World{w1, w4} {
		if err := w.Run(ticks); err != nil {
			t.Fatal(err)
		}
	}
	s1, s4 := w1.ExecStats(), w4.ExecStats()
	if s1.VectorRows == 0 {
		t.Fatal("traffic phases never vectorized under partitioning")
	}
	if s1.VectorRows != s4.VectorRows {
		t.Fatalf("VectorRows drifted across worker counts: %d vs %d", s1.VectorRows, s4.VectorRows)
	}
	if s1.ParallelShards != 0 {
		t.Fatalf("Workers=1 dispatched %d partition sweeps", s1.ParallelShards)
	}
	if s4.ParallelShards < int64(parts)*ticks {
		t.Fatalf("Workers=4 dispatched %d partition sweeps, want >= %d (fan-out per class pass)",
			s4.ParallelShards, int64(parts)*ticks)
	}
	if d := diffClassWorlds(w1, w4, "Vehicle", vehicleAttrs, w1.IDs("Vehicle")); d != "" {
		t.Fatalf("partitioned vec fan-out diverged: %s", d)
	}
}

// srcSparseMove is a mostly-static 2-D join workload: only movers (v != 0)
// change position, so per-partition grids see a small dirty fraction per
// tick — the regime where member-view-aware Grid.SyncRows patches in place
// instead of rebuilding.
const srcSparseMove = `
class P {
  state:
    number x = 0;
    number y = 0;
    number v = 0;
    number near = 0;
  effects:
    number nb : sum;
  update:
    x = x + v;
    near = nb;
  run {
    accum number cnt with sum over P u from P {
      if (u.x >= x - 15 && u.x <= x + 15 && u.y >= y - 15 && u.y <= y + 15) {
        cnt <- 1;
      }
    } in {
      nb <- cnt;
    }
  }
}
`

// TestPartitionMemberGridSync pins incremental maintenance of partition-
// local grids: under sparse churn the per-partition grids must patch in
// place (IndexIncrements, previously always zero in partitioned mode
// because Grid.Sync reconciled against the whole alive mask) and the
// results must stay bit-identical to Partitions=1.
func TestPartitionMemberGridSync(t *testing.T) {
	build := func(parts int) *engine.World {
		sc, err := core.LoadScenario("sparse-move", srcSparseMove)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sc.NewWorld(engine.Options{
			Partitions: parts, Partition: plan.PartitionStripes,
			Strategy: plan.GridIndex,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1200; i++ {
			v := 0.0
			if i%25 == 0 {
				v = 2 // 4% movers
			}
			if _, err := w.Spawn("P", map[string]value.Value{
				"x": value.Num(float64(i%40) * 10), "y": value.Num(float64(i/40) * 12),
				"v": value.Num(v),
			}); err != nil {
				t.Fatal(err)
			}
		}
		return w
	}
	const ticks = 6
	ref := build(1)
	parted := build(3)
	for _, w := range []*engine.World{ref, parted} {
		if err := w.Run(ticks); err != nil {
			t.Fatal(err)
		}
	}
	st := parted.ExecStats()
	if st.IndexIncrements == 0 {
		t.Fatal("partition-local grids never patched incrementally under sparse churn")
	}
	if d := diffClassWorlds(ref, parted, "P", []string{"x", "y", "v", "near"}, ref.IDs("P")); d != "" {
		t.Fatalf("synced partition grids diverged from Partitions=1: %s", d)
	}
}
