package engine

// Member views and per-partition indexes for shared-nothing partitioned
// execution — the ghost-derivation half of partition.go's §4.2 runtime.
//
// For each accum site, the compiled range conjuncts are evaluated over the
// frozen probing extent and plan.InteractionRadius turns them into
// per-dimension reaches around the best-fitting partition axis. A
// partition's member view is then every source row whose ownership
// interval — computed with the same clamped-coordinate arithmetic as
// ownership itself, under whatever layout epoch is current, so float
// rounding can never drop a boundary ghost — intersects the partition.
// Sites that cannot be bounded (unbounded or frame-dependent predicates,
// computed source sets, reactive-handler sites which probe post-update
// state, hash layouts) fall back to one shared whole-extent index,
// accounted as a full replica per partition.
//
// Per-partition indexes maintain through a three-rung ladder: full reuse
// when nothing that feeds them changed (columns, structure, ownership,
// reach, strategy); in-place patching of member-scoped grids through the
// member-view-aware index.Grid.SyncRows when churn fits the cost-model
// budget — including across layout epochs, when the new epoch barely moved
// this partition's ownership intervals; rebuild otherwise, fanned out
// across the worker pool.

import (
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/table"
)

// dimReach is one range dimension's derived interaction reach: probes bound
// the dimension's source attribute within [anchor−lo, anchor+hi] where the
// anchor is the probing row's position on partition axis `axis` (-1 when the
// dimension could not be bounded against any axis).
type dimReach struct {
	axis   int
	lo, hi float64
}

// reachEqual compares derived reaches bit-for-bit (NaN never occurs: empty
// reaches are -Inf, unbounded dims are excluded by axis == -1).
func reachEqual(a, b []dimReach) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// preparePartitionedSites is prepareSites for partitioned worlds: layout
// maintenance (epoch succession when the rebalancer fires) and ownership
// rescan, then per site either a shared whole-extent index (with full
// replication accounted) or per-partition member views and indexes with
// ghost margins derived from the compiled predicates.
func (w *World) preparePartitionedSites() {
	pw := w.parts
	track := !w.opts.DisableStats
	var t0 time.Time
	if track {
		t0 = time.Now()
	}
	w.ensurePartitionLayouts()
	w.maybeRebalanceLayouts()
	w.assignPartitions(track)
	stateVer := w.stateFingerprint()

	pw.buildList = pw.buildList[:0]
	for _, site := range w.sites {
		srcRT, n, p := w.decideSite(site)
		if srcRT == nil {
			// Computed source sets never consult an index; unanalyzed
			// bodies scan the member view, which for shared sites is the
			// full live extent.
			site.shared = true
			if site.step.SourceFn == nil {
				src := w.classes[site.step.SourceClass]
				w.fillSharedView(site, src, track)
			}
			continue
		}
		if n == 0 || p == 0 {
			site.strategy = plan.NestedLoop
			site.shared = true
			pp := &site.parts[0]
			pp.tree, pp.hash = nil, nil
			pp.builtOK = false
			pp.rowsBuf = srcRT.tab.LiveRows(pp.rowsBuf[:0])
			pp.view = srcRT.tab.ViewOf(pp.rowsBuf)
			continue
		}

		spatial := false
		if site.reachDerived && site.reachStateVer == stateVer {
			spatial = site.reachSpatial // state untouched ⇒ reach untouched
		} else {
			spatial = w.deriveSiteReach(site, srcRT)
			site.reachDerived = true
			site.reachSpatial = spatial
			site.reachStateVer = stateVer
		}
		site.shared = !spatial
		if !spatial {
			w.fillSharedView(site, srcRT, track)
			pp := &site.parts[0]
			if site.strategy == plan.NestedLoop {
				pp.builtOK = false
				continue
			}
			switch w.siteMaint(site, pp, srcRT, true) {
			case plan.MaintReuse:
				if track {
					w.execStats.IndexReuses++
				}
			case plan.MaintIncremental:
				if track {
					w.execStats.IndexIncrements++
					w.chargeGhosts(site, int64(pw.n-1)*int64(n))
				}
			default:
				pw.buildList = append(pw.buildList, partBuild{site: site, pp: pp})
				if track {
					w.chargeGhosts(site, int64(pw.n-1)*int64(n))
				}
			}
			continue
		}

		w.prepareSpatialSite(site, srcRT, track)
	}

	// Rebuilds fan out across the worker pool: member views are already
	// filled (serially, above), so workers only sort entries and build
	// trees/grids into their own retained arenas.
	if w.parallelOK() && len(pw.buildList) > 1 {
		w.buildPartsParallel(pw.buildList)
	} else {
		for _, b := range pw.buildList {
			w.buildPartIndex(b.site, b.pp)
		}
	}
	if track {
		w.execStats.IndexBuildNanos += time.Since(t0).Nanoseconds()
	}
}

// fillSharedView points a shared site's single part at the full live
// extent and accounts it as one conceptual replica per other partition —
// the §4.2 pathology of partitioning-oblivious predicates. The member view
// is overwritten, so any retained member-scoped state is invalidated: a
// later spatial tick must refill, and the shared ladder below must never
// reuse an index that only covered one partition's members.
func (w *World) fillSharedView(site *siteRT, srcRT *classRT, track bool) {
	pp := &site.parts[0]
	pp.rowsBuf = srcRT.tab.LiveRows(pp.rowsBuf[:0])
	pp.view = srcRT.tab.ViewOf(pp.rowsBuf)
	pp.memberViewOK = false
	if pp.builtMembers {
		pp.builtOK = false
	}
	pp.ghosts = int64(w.parts.n-1) * int64(len(pp.rowsBuf))
	if track {
		w.execStats.GhostRows += pp.ghosts
		if site.step.Join == nil {
			// Unindexed whole-extent scans have no build/reuse ladder to
			// hang refresh traffic on: charge full replication per tick.
			w.execStats.PartMsgsGhost += pp.ghosts
			w.execStats.PartBytes += pp.ghosts * cluster.BytesPerGhost
		}
	}
}

// chargeGhosts accounts ghost refresh messages for one site's replicas
// (called when its indexes are rebuilt or patched — a reused index means
// nothing changed, so nothing is sent).
func (w *World) chargeGhosts(site *siteRT, ghosts int64) {
	if w.opts.DisableStats {
		return
	}
	w.execStats.PartMsgsGhost += ghosts
	w.execStats.PartBytes += ghosts * cluster.BytesPerGhost
}

// prepareSpatialSite brings one spatially bounded site's per-partition
// views and indexes up to date: reuse everything when nothing that feeds
// them changed (source columns, structure, ownership, reach, strategy);
// otherwise refill the member views in one pass, then patch each
// partition's grid in place when the churn fits the maintenance budget and
// queue index rebuilds for the rest.
func (w *World) prepareSpatialSite(site *siteRT, srcRT *classRT, track bool) {
	pw := w.parts
	tab := srcRT.tab
	if len(site.parts) < pw.n {
		for len(site.parts) < pw.n {
			site.parts = append(site.parts, sitePart{})
		}
		// Growth re-slots the arena builders. Sites prepare and build in
		// site order, so only ordinals of later, not-yet-built sites move.
		w.attachBuilders()
	}

	fresh := site.builtReachOK && reachEqual(site.reach, site.builtReach)
	if fresh {
		for i := range site.parts[:pw.n] {
			pp := &site.parts[i]
			if !pp.memberViewOK || pp.builtAssign != pw.assignVer ||
				pp.builtStruct != tab.StructVersion() {
				fresh = false
				break
			}
			if site.strategy != plan.NestedLoop &&
				(!pp.builtOK || pp.builtStrategy != site.strategy || !pp.builtMembers || !pp.builderValid()) {
				fresh = false
				break
			}
			if site.strategy == plan.GridIndex && w.gridCell(site, pp) != pp.builtCell {
				fresh = false
				break
			}
			for vi, a := range site.srcAttrs {
				if vi >= len(pp.builtVers) || tab.ColVersion(a) != pp.builtVers[vi] {
					fresh = false
					break
				}
			}
			if !fresh {
				break
			}
		}
	}
	ghosts := int64(0)
	if fresh {
		for i := range site.parts[:pw.n] {
			ghosts += site.parts[i].ghosts
		}
		if track {
			w.execStats.GhostRows += ghosts
			w.execStats.IndexReuses++
		}
		return
	}

	ghosts = w.fillSiteMembers(site, srcRT)
	site.builtReach = append(site.builtReach[:0], site.reach...)
	site.builtReachOK = true
	if track {
		w.execStats.GhostRows += ghosts
		w.chargeGhosts(site, ghosts)
	}
	for i := range site.parts[:pw.n] {
		pp := &site.parts[i]
		pp.memberViewOK = true
		pp.builtAssign = pw.assignVer
		if site.strategy == plan.NestedLoop {
			pp.builtOK = false
			pp.noteBuilt(site, tab) // version basis for next tick's freshness check
			continue
		}
		if w.syncMemberGrid(site, pp, srcRT) {
			if track {
				w.execStats.IndexIncrements++
			}
			continue
		}
		pw.buildList = append(pw.buildList, partBuild{site: site, pp: pp})
	}
}

// syncMemberGrid patches one partition's member-scoped grid in place
// against the refilled member view (index.Grid.SyncRows): rows that
// entered or left the partition's ownership intervals, moved or churned
// since the grid was built are reconciled cell-by-cell, under the same
// cost-model dirty budget as the whole-extent sync. Because SyncRows diffs
// row-by-row against whatever the new membership is, it works unchanged
// across layout epochs — a rebalance that barely moved this partition's
// intervals patches a handful of rows instead of rebuilding. Returns false
// (rebuild) when the site isn't a member-scoped grid, the desired cell size
// drifted, or the churn blew the budget.
func (w *World) syncMemberGrid(site *siteRT, pp *sitePart, srcRT *classRT) bool {
	if site.strategy != plan.GridIndex || !pp.builtOK ||
		pp.builtStrategy != plan.GridIndex || !pp.builtMembers || !pp.builderValid() {
		return false
	}
	g := pp.builder.Grid()
	if g == nil || pp.tree != g {
		return false
	}
	if w.gridCell(site, pp) != pp.builtCell {
		return false
	}
	tab := srcRT.tab
	j := site.step.Join
	x := tab.NumColumn(j.Ranges[0].AttrIdx)
	y := tab.NumColumn(j.Ranges[1].AttrIdx)
	budget := w.execCosts.MaintDirtyBudget(len(pp.rowsBuf))
	if _, ok := g.SyncRows(x, y, pp.rowsBuf, tab.RawIDs(), budget); !ok {
		return false // partially patched; the rebuild below refills it
	}
	pp.noteBuilt(site, tab)
	return true
}

// stateFingerprint folds every table's structural and per-column write
// versions into one monotone counter: equality across ticks means no
// committed state changed anywhere, which is the (sound, conservative)
// condition under which cached reach derivations stay valid.
func (w *World) stateFingerprint() uint64 {
	var v uint64
	for _, rt := range w.order {
		v += rt.tab.StructVersion()
		for ci := range rt.tab.Columns() {
			v += rt.tab.ColVersion(ci)
		}
	}
	return v
}

// deriveSiteReach evaluates the site's compiled range conjuncts over the
// frozen probing extent and anchors each dimension to the partition axis
// with the tightest finite reach (plan.InteractionRadius). Returns false —
// whole-world fallback — when nothing could be bounded: no self-only range
// conjuncts, a hash layout, a reactive-handler site (it probes post-update
// state the tick-start ghosts would not cover), or unbounded predicates.
func (w *World) deriveSiteReach(site *siteRT, srcRT *classRT) bool {
	pw := w.parts
	// The static preconditions — a non-handler site with at least one
	// self-only range dimension — come from the unified analysis; the
	// spatial-layout requirement and the bound evaluation below are the
	// runtime halves.
	if ja := w.ai.Join(site.step); ja == nil || !ja.Partitionable {
		return false
	}
	probeRT := w.classes[site.class]
	pc := probeRT.prt
	if pc.layout.Axes == 0 {
		return false // hash layout or no spatial axes
	}
	j := site.step.Join
	dims := len(j.Ranges)
	site.reach = site.reach[:0]
	for d := 0; d < dims; d++ {
		site.reach = append(site.reach, dimReach{axis: -1})
	}

	// Gather anchors and evaluate every self-only dimension's interval per
	// probing row (all phases: a conservative superset of actual probers).
	naxes := pc.layout.Axes
	for len(pw.axisPos) < naxes {
		pw.axisPos = append(pw.axisPos, nil)
	}
	for len(pw.boxLo) < dims {
		pw.boxLo = append(pw.boxLo, nil)
		pw.boxHi = append(pw.boxHi, nil)
	}
	for k := 0; k < naxes; k++ {
		pw.axisPos[k] = pw.axisPos[k][:0]
	}
	for d := range j.Ranges {
		pw.boxLo[d] = pw.boxLo[d][:0]
		pw.boxHi[d] = pw.boxHi[d][:0]
	}
	ctx := expr.Ctx{W: w, Class: site.class}
	tab := probeRT.tab
	for r, ok := range tab.AliveMask() {
		if !ok {
			continue
		}
		ctx.SelfID = tab.ID(r)
		ctx.Self = rowReader{rt: probeRT, row: r}
		for k := 0; k < naxes; k++ {
			pw.axisPos[k] = append(pw.axisPos[k], tab.NumColumn(pc.axes[k])[r])
		}
		for d, rd := range j.Ranges {
			if !rd.SelfOnly {
				continue
			}
			lo, hi := evalDimBounds(&ctx, rd)
			pw.boxLo[d] = append(pw.boxLo[d], lo)
			pw.boxHi[d] = append(pw.boxHi[d], hi)
		}
	}

	anchored := false
	for d, rd := range j.Ranges {
		if !rd.SelfOnly {
			continue
		}
		best, bestSpan := -1, math.Inf(1)
		var bestLo, bestHi float64
		for k := 0; k < naxes; k++ {
			rLo, rHi := plan.InteractionRadius(pw.axisPos[k], pw.boxLo[d], pw.boxHi[d])
			if !plan.BoundedReach(rLo, rHi) {
				continue
			}
			if span := rLo + rHi; span < bestSpan {
				best, bestSpan = k, span
				bestLo, bestHi = rLo, rHi
			}
		}
		if best >= 0 {
			site.reach[d] = dimReach{axis: best, lo: bestLo, hi: bestHi}
			anchored = true
		}
	}
	return anchored
}

// evalDimBounds evaluates one range dimension's probe interval for the
// bound row — the per-dimension core of evalBox, shared semantics included:
// a NaN bound collapses the interval to empty.
func evalDimBounds(ctx *expr.Ctx, rd compile.RangeDim) (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	nan := false
	for _, f := range rd.Lo {
		v := f(ctx).AsNumber()
		if math.IsNaN(v) {
			nan = true
		}
		if v > lo {
			lo = v
		}
	}
	for _, f := range rd.Hi {
		v := f(ctx).AsNumber()
		if math.IsNaN(v) {
			nan = true
		}
		if v < hi {
			hi = v
		}
	}
	if nan {
		lo, hi = math.Inf(1), math.Inf(-1)
	}
	return lo, hi
}

// fillSiteMembers rebuilds every partition's member view for a spatial
// site in one pass over the source extent: a row joins each partition whose
// ownership interval — the owners of every anchor position that could reach
// it, computed with the layout's own monotone clamped-coordinate functions —
// it intersects on all anchored dimensions. Returns the total ghost count
// (members owned elsewhere).
func (w *World) fillSiteMembers(site *siteRT, srcRT *classRT) int64 {
	pw := w.parts
	probeRT := w.classes[site.class]
	layout := probeRT.prt.layout
	srcAssign := srcRT.prt.assign
	tab := srcRT.tab
	j := site.step.Join

	for i := range site.parts[:pw.n] {
		pp := &site.parts[i]
		pp.rowsBuf = pp.rowsBuf[:0]
		pp.ghosts = 0
	}
	ghosts := int64(0)
	alive := tab.AliveMask()
	for r, ok := range alive {
		if !ok {
			continue
		}
		cxLo, cxHi := 0, layout.PX-1
		cyLo, cyHi := 0, layout.PY-1
		for d, rc := range site.reach {
			if rc.axis < 0 {
				continue
			}
			v := tab.NumColumn(j.Ranges[d].AttrIdx)[r]
			// Anchors that can reach v lie in [v−reachHi, v+reachLo]; their
			// owners are a contiguous clamped-coordinate interval.
			if rc.axis == 0 {
				if c := layout.CoordX(v - rc.hi); c > cxLo {
					cxLo = c
				}
				if c := layout.CoordX(v + rc.lo); c < cxHi {
					cxHi = c
				}
			} else {
				if c := layout.CoordY(v - rc.hi); c > cyLo {
					cyLo = c
				}
				if c := layout.CoordY(v + rc.lo); c < cyHi {
					cyHi = c
				}
			}
		}
		for cy := cyLo; cy <= cyHi; cy++ {
			for cx := cxLo; cx <= cxHi; cx++ {
				p := layout.Part(cx, cy)
				pp := &site.parts[p]
				pp.rowsBuf = append(pp.rowsBuf, int32(r))
				if srcAssign[r] != int32(p) {
					pp.ghosts++
					ghosts++
				}
			}
		}
	}
	for i := range site.parts[:pw.n] {
		pp := &site.parts[i]
		pp.view = tab.ViewOf(pp.rowsBuf)
	}
	return ghosts
}

// buildPartIndex rebuilds one partition's index — over its member view for
// spatial sites, over the whole extent for shared ones (the entry gather
// may not shard there: several builds can be in flight on the pool).
func (w *World) buildPartIndex(site *siteRT, pp *sitePart) {
	srcRT := w.classes[site.step.SourceClass]
	if site.shared {
		w.buildSiteIndex(site, pp, srcRT, nil, false)
		return
	}
	w.buildSiteIndex(site, pp, srcRT, pp.view.Rows(), false)
}

// fillMemberEntries materializes (id, row, coords) entries for a member
// view, in view (= physical row) order.
func fillMemberEntries(tab *table.Table, dims []int, rows []int32, entries []index.Entry, coords []float64) {
	ids := tab.RawIDs()
	d := len(dims)
	for k, r := range rows {
		c := coords[k*d : k*d+d : k*d+d]
		for di, ai := range dims {
			c[di] = tab.NumColumn(ai)[int(r)]
		}
		entries[k] = index.Entry{ID: ids[r], Row: r, Coords: c}
	}
}

// buildPartsParallel fans the per-partition index rebuilds out across the
// worker pool. Views are immutable by now; every build writes only its own
// retained arena.
func (w *World) buildPartsParallel(builds []partBuild) {
	w.ensureWorkers()
	w.runPool(len(builds), w.opts.Workers, func(_, j int) {
		w.buildPartIndex(builds[j].site, builds[j].pp)
	})
}

// PartitionIndexBytes estimates each partition's resident accum-index
// memory — the §4.2 partitioned index memory question, measured from the
// engine's real per-tick indexes. Shared (whole-world fallback) indexes are
// charged to every partition: under shared-nothing execution each node
// would hold a full replica.
func (w *World) PartitionIndexBytes() []int64 {
	if w.parts == nil {
		return nil
	}
	out := make([]int64, w.parts.n)
	for _, site := range w.sites {
		if site.shared {
			b := site.parts[0].indexBytes()
			for p := range out {
				out[p] += b
			}
			continue
		}
		for p := 0; p < w.parts.n && p < len(site.parts); p++ {
			out[p] += site.parts[p].indexBytes()
		}
	}
	return out
}

func (pp *sitePart) indexBytes() int64 {
	if !pp.builtOK {
		return 0
	}
	b := int64(0)
	if pp.tree != nil {
		b += int64(pp.tree.EstimatedBytes())
	}
	if pp.hash != nil {
		b += int64(pp.hash.EstimatedBytes())
	}
	return b
}

// SiteReach describes one accum site's derived interaction radius — the
// per-class-pair answer to "how far can a probe reach", as used for ghost
// margins. Valid after at least one partitioned tick.
type SiteReach struct {
	Class  string // probing class
	Source string // iterated class
	Phase  int
	Shared bool // whole-world fallback (unbounded, handler, hash layout, …)
	Dims   []SiteReachDim
}

// SiteReachDim is one range dimension's reach around its anchor axis.
type SiteReachDim struct {
	Attr     string // source attribute the dimension bounds
	Axis     string // probing-class position attribute anchoring it
	Lo, Hi   float64
	Anchored bool
}

// InteractionRadii reports every accum site's derived reach (per probing/
// source class pair) from the last prepared tick.
func (w *World) InteractionRadii() []SiteReach {
	if w.parts == nil {
		return nil
	}
	var out []SiteReach
	for _, site := range w.sites {
		sr := SiteReach{Class: site.class, Source: site.step.SourceClass, Phase: site.phase, Shared: site.shared}
		if j := site.step.Join; j != nil {
			srcRT := w.classes[site.step.SourceClass]
			probeRT := w.classes[site.class]
			for d, rd := range j.Ranges {
				dim := SiteReachDim{Attr: srcRT.cls.State[rd.AttrIdx].Name}
				if d < len(site.reach) && site.reach[d].axis >= 0 {
					rc := site.reach[d]
					dim.Anchored = true
					dim.Axis = probeRT.cls.State[probeRT.prt.axes[rc.axis]].Name
					dim.Lo, dim.Hi = rc.lo, rc.hi
				}
				sr.Dims = append(sr.Dims, dim)
			}
		}
		out = append(out, sr)
	}
	return out
}
