package engine

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/value"
)

// RunTick executes one complete state-effect cycle:
//
//  1. adaptive plan selection and per-tick index builds (§4.1);
//  2. the query/effect phase: every object's current script phase runs,
//     reading frozen state and emitting effect contributions (§2);
//  3. transaction admission over the collected atomic intents (§3.1);
//  4. the update step: expression rules, then registered update components,
//     each over old state + combined effects; staged writes apply
//     atomically (§2.2);
//  5. program-counter advance and reactive interrupts (§3.2);
//  6. reactive handlers evaluate on the new state and emit effects for the
//     next tick (§3.2);
//  7. deferred spawns/kills apply and statistics fold (§4.1).
func (w *World) RunTick() error {
	if missing := w.MissingOwners(); len(missing) > 0 {
		return fmt.Errorf("engine: unregistered owner components: %v", missing)
	}
	w.acquireArena()
	defer w.releaseArena()
	w.inTick = true
	for _, ins := range w.inspectors {
		ins.TickStart(w, w.tick)
	}
	w.prepareSites()

	// (2) Query/effect phase. Partitioned worlds run partition-at-a-time
	// (partitions fan out across the pool; see partition.go); otherwise the
	// parallel path composes both execution axes (sharded batch kernels +
	// sharded scalar rows), with small extents still running inline — the
	// cost model, not the option alone, decides the actual fan-out.
	switch {
	case w.parts != nil:
		w.runEffectPhasePartitioned()
	case w.parallelOK():
		w.runEffectPhaseParallel()
	default:
		w.runEffectPhaseSerial()
	}

	// (3) Transaction admission.
	if len(w.txns) > 0 {
		if err := w.admitTxns(); err != nil {
			w.inTick = false
			return err
		}
	}

	// (4) Update step.
	if err := w.runUpdateStep(); err != nil {
		w.inTick = false
		return err
	}

	// (5) pc advance + interrupts.
	w.advancePCs()

	// Effects are consumed; clear before handlers arm next tick's buffers.
	for _, rt := range w.order {
		for i := range rt.fx {
			rt.fx[i].reset()
		}
	}
	w.txns = w.txns[:0]

	// (6) Reactive handlers on the new state.
	w.runHandlers()

	// (7) Tick boundary.
	if w.parts != nil {
		w.foldPartitionLoads()
	}
	w.inTick = false
	w.applyPending()
	for _, site := range w.sites {
		site.stats.EndTick()
	}
	w.tick++
	for _, ins := range w.inspectors {
		ins.TickEnd(w, w.tick-1)
	}
	return nil
}

// Run executes n ticks.
func (w *World) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := w.RunTick(); err != nil {
			return fmt.Errorf("tick %d: %w", w.tick, err)
		}
	}
	return nil
}

func (w *World) runEffectPhaseSerial() {
	sink := directSink{w: w}
	for _, rt := range w.order {
		if rt.plan.Decl.Run == nil {
			continue
		}
		// Vectorized phases run first, whole-extent. They emit only to
		// the executing object, so each accumulator still receives its
		// contributions in scalar row-loop order. Tracing forces scalar
		// so the per-emission hook keeps firing (chooseEffectExec gates
		// on the tracer). The exec-axis decision is shared with the
		// sharded path, so Workers=1 and Workers=N vectorize identically.
		var vecRun []bool
		if rt.vec != nil && rt.vec.hasPhases && w.tracer == nil && w.opts.Exec != plan.ExecScalar {
			vecRun, _ = w.chooseEffectExec(rt, rt.phaseCounts())
			if vecRun != nil {
				w.prepareVecPhases(rt, vecRun, rt.tab.Cap())
				vecRows := int64(0)
				for p, on := range vecRun {
					if on {
						vecRows += int64(w.vecPhaseRange(rt, p, rt.vec.phases[p], 0, rt.tab.Cap(), &rt.vec.sc, w.arenaMachine(), nil))
					}
				}
				if !w.opts.DisableStats {
					w.execStats.VectorRows += vecRows
				}
			}
		}
		x := w.serialExecCtx(sink, rt.plan.NumSlots)
		tab := rt.tab
		scalarRows := int64(0)
		for r := 0; r < tab.Cap(); r++ {
			if !tab.Alive(r) {
				continue
			}
			pc := int(tab.At(r, rt.pcCol).AsNumber())
			if vecRun != nil && vecRun[pc] {
				continue
			}
			steps := rt.plan.Phases[pc]
			if len(steps) == 0 {
				continue
			}
			x.bindRow(rt, r)
			x.runSteps(steps)
			scalarRows++
		}
		x.flushJoinStats()
		if !w.opts.DisableStats {
			w.execStats.ScalarRows += scalarRows
		}
	}
}

// admitTxns delegates to the registered transaction policy, or the built-in
// greedy arrival-order policy.
func (w *World) admitTxns() error {
	uctx := w.updateCtx("")
	if w.txnPolicy != nil {
		return w.txnPolicy.Admit(uctx, w.txns)
	}
	return GreedyPolicy{}.Admit(uctx, w.txns)
}

// SetTxnPolicy installs the transaction admission policy (§3.1). Nil
// restores the default greedy policy.
func (w *World) SetTxnPolicy(p TxnPolicy) { w.txnPolicy = p }

func (w *World) runUpdateStep() error {
	// (a) Expression rules, evaluated over old state + combined effects.
	// Rules that compiled to batch kernels run whole-extent over the
	// columns when the cost model (or Options.Exec) picks the vectorized
	// path; the rest interpret closures row-at-a-time. Both stage their
	// results, applied together in (c).
	ruleCtx := w.updateCtx("")
	// Discard any dense staging left over from a tick that errored out
	// before the apply step; stale vectors must never apply later.
	for _, rt := range w.order {
		if rt.vec != nil {
			rt.vec.staged = false
		}
	}
	for _, rt := range w.order {
		if len(rt.plan.Updates) == 0 {
			continue
		}
		rules := rt.plan.Updates
		if rt.vec != nil && len(rt.vec.updates) > 0 &&
			w.execCosts.ChooseExec(w.opts.Exec, rt.tab.Len(), rt.tab.Cap(), rt.vec.updateKernels) == plan.ExecVectorized {
			w.runVecUpdates(rt)
			rules = rt.vec.scalarUpdates
		}
		if len(rules) == 0 {
			continue
		}
		w.runScalarUpdates(ruleCtx, rt, rules)
	}
	// (b) Owner components.
	for _, c := range w.comps {
		uctx := w.updateCtx(c.Name())
		if err := c.Update(uctx); err != nil {
			return fmt.Errorf("component %q: %w", c.Name(), err)
		}
	}
	// (c) Apply all staged writes atomically: map-staged values from
	// scalar rules and components, then the dense columns staged by the
	// vectorized rules (disjoint attributes by strict ownership).
	for _, rt := range w.order {
		for attrIdx, m := range rt.staged { //sglvet:allow maprange: keyed writes to disjoint (attr, id) cells, order-free
			for id, v := range m { //sglvet:allow maprange: keyed writes to disjoint (attr, id) cells, order-free
				row := rt.tab.Row(id)
				if row < 0 {
					continue // object died this tick
				}
				// Changefeed marks diff on raw bits so rows rewritten to the
				// same payload stay out of the feed; marks are a set, so the
				// map-iteration order here cannot leak into the drained feed.
				if rt.vlog != nil && changedValue(rt.tab.At(row, attrIdx), v) {
					rt.vlog.mark(row)
				}
				rt.tab.SetAt(row, attrIdx, v)
			}
			delete(rt.staged, attrIdx)
		}
		rt.applyVecUpdates()
	}
	return nil
}

func (w *World) advancePCs() {
	for _, rt := range w.order {
		if rt.plan.NumPhases <= 1 {
			continue
		}
		tab := rt.tab
		n := float64(rt.plan.NumPhases)
		for r := 0; r < tab.Cap(); r++ {
			if !tab.Alive(r) {
				continue
			}
			pc := tab.At(r, rt.pcCol).AsNumber()
			pc = pc + 1
			if pc >= n {
				pc = 0
			}
			tab.SetAt(r, rt.pcCol, value.Num(pc))
		}
	}
	for _, in := range w.interrupts {
		rt := w.classes[in.class]
		tab := rt.tab
		for r := 0; r < tab.Cap(); r++ {
			if !tab.Alive(r) {
				continue
			}
			if in.cond(w, tab.ID(r)) {
				tab.SetAt(r, rt.pcCol, value.Num(float64(in.phase)))
			}
		}
	}
}

func (w *World) applyPending() {
	for _, p := range w.pendingKill {
		rt := w.classes[p.class]
		if rt.tab.Delete(p.id) && rt.vlog != nil {
			rt.vlog.noteKill(p.id, rt.tab.StructVersion())
		}
	}
	w.pendingKill = w.pendingKill[:0]
	for _, p := range w.pendingSpawn {
		w.doSpawn(w.classes[p.class], p.id, p.init)
	}
	w.pendingSpawn = w.pendingSpawn[:0]
	// Deletions may have freed rows reused by spawns: accumulators for
	// those rows must be clean. fx reset already ran; sizes may grow.
	for _, rt := range w.order {
		for i := range rt.fx {
			rt.fx[i].ensure(rt.tab.Cap())
		}
	}
}

// GreedyPolicy is the default transaction admission policy: transactions
// are considered in deterministic (class, source id) order; each commits if
// its constraints hold on the tentative state including all previously
// committed transactions, otherwise it aborts (§3.1).
type GreedyPolicy struct{}

// Admit implements TxnPolicy.
func (GreedyPolicy) Admit(ctx *UpdateCtx, txns []*Txn) error {
	return AdmitOrdered(ctx, txns)
}
