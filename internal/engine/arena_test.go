package engine_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

func pooledVehicleWorld(t *testing.T, n int, pool *engine.ArenaPool) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario("vehicles", core.SrcVehicles)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	w.SetArenaPool(pool)
	if _, err := core.PopulateVehicles(w, workload.Uniform(n, 4000, 4000, 3)); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSteadyStateTickAllocsZero is the arena-pooling acceptance guard: a
// warmed world ticking through a shared arena pool must not allocate at
// all in steady state — kernel machines, index builders, execution
// contexts and accumulator slabs are all checked out or pooled, never
// remade per tick.
func TestSteadyStateTickAllocsZero(t *testing.T) {
	pool := &engine.ArenaPool{}
	w := pooledVehicleWorld(t, 500, pool)
	for i := 0; i < 5; i++ {
		if err := w.RunTick(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(20, func() {
		if err := w.RunTick(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state RunTick allocates %.1f objects/tick, want 0", avg)
	}
}

// TestArenaPoolSharedAcrossWorlds pins the checkout protocol: two worlds
// alternating ticks through one pool reuse the same arena (LIFO), and the
// builder-generation check keeps their index state bit-identical to worlds
// that own private arenas.
func TestArenaPoolSharedAcrossWorlds(t *testing.T) {
	pool := &engine.ArenaPool{}
	a := pooledVehicleWorld(t, 120, pool)
	b := pooledVehicleWorld(t, 120, pool)
	ref := func() *engine.World {
		sc, err := core.LoadScenario("vehicles", core.SrcVehicles)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sc.NewWorld(engine.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.PopulateVehicles(w, workload.Uniform(120, 4000, 4000, 3)); err != nil {
			t.Fatal(err)
		}
		return w
	}()
	for i := 0; i < 6; i++ {
		for _, w := range []*engine.World{a, b, ref} {
			if err := w.RunTick(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range ref.IDs("Vehicle") {
		for _, attr := range []string{"x", "y", "dx", "dy", "fuel", "odo", "stress"} {
			rv, _ := ref.Get("Vehicle", id, attr)
			av, _ := a.Get("Vehicle", id, attr)
			bv, _ := b.Get("Vehicle", id, attr)
			if !rv.Equal(av) || !rv.Equal(bv) {
				t.Fatalf("vehicle %d %s: pooled %v/%v vs owned %v", id, attr, av, bv, rv)
			}
		}
	}
}
