package engine

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/vexpr"
)

// TestShardRows pins the partitioning contract the sharded executor relies
// on: shards cover [0, capRows) exactly once, in order, never outnumber the
// requested maximum, and every boundary except the last falls on a batch
// multiple (a mid-batch split would pay two partial batches per kernel).
func TestShardRows(t *testing.T) {
	cases := []struct{ capRows, maxShards int }{
		{0, 4}, {1, 4}, {1023, 4}, {1024, 4}, {1025, 4},
		{4096, 4}, {4097, 4}, {100_000, 8}, {2048, 1}, {3000, 16},
		{512, 0}, // maxShards clamps to 1
	}
	for _, c := range cases {
		shards := shardRows(c.capRows, c.maxShards, nil)
		if c.capRows == 0 {
			if len(shards) != 0 {
				t.Fatalf("cap=0: got %v", shards)
			}
			continue
		}
		maxShards := c.maxShards
		if maxShards < 1 {
			maxShards = 1
		}
		if len(shards) > maxShards {
			t.Fatalf("cap=%d max=%d: %d shards", c.capRows, c.maxShards, len(shards))
		}
		next := 0
		for i, sh := range shards {
			if sh.lo != next || sh.hi <= sh.lo {
				t.Fatalf("cap=%d max=%d: shard %d = %+v, want lo=%d", c.capRows, c.maxShards, i, sh, next)
			}
			if i < len(shards)-1 && sh.hi%vexpr.BatchSize != 0 {
				t.Fatalf("cap=%d max=%d: shard %d boundary %d not batch-aligned", c.capRows, c.maxShards, i, sh.hi)
			}
			next = sh.hi
		}
		if next != c.capRows {
			t.Fatalf("cap=%d max=%d: shards end at %d", c.capRows, c.maxShards, next)
		}
	}
}

// TestStepsCostWeighting pins the parallelism-axis work weights: an accum
// join must dominate plain steps by an order of magnitude, so join-heavy
// classes fan out at smaller extents than emit-only classes.
func TestStepsCostWeighting(t *testing.T) {
	if c := stepsCost(nil); c != 0 {
		t.Fatalf("empty cost = %v", c)
	}
	plain := stepsCost([]compile.Step{&compile.LetStep{}, &compile.EmitStep{}})
	if plain != 2 {
		t.Fatalf("two plain steps cost %v, want 2", plain)
	}
	nested := stepsCost([]compile.Step{&compile.IfStep{
		Then: []compile.Step{&compile.EmitStep{}},
		Else: []compile.Step{&compile.EmitStep{}},
	}})
	if nested != 3 {
		t.Fatalf("if with two emits cost %v, want 3", nested)
	}
	join := stepsCost([]compile.Step{&compile.AccumStep{Body: []compile.Step{&compile.EmitStep{}}}})
	if join < 16*plain {
		t.Fatalf("accum join cost %v does not dominate plain steps (%v)", join, plain)
	}
}
