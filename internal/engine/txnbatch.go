package engine

// The batched transaction-admission driver (§3.1 scaled across the three
// execution axes). Serial greedy admission validates object-at-a-time,
// replaying update rules per constraint read; this driver instead:
//
//  1. resolves every transaction's touched rows (source, emission targets,
//     stable-base constraint referents) once, aborting transactions with
//     dead rows up front, and unions transactions sharing any row into
//     conflict groups — transactions in different groups commute, because a
//     group's admission outcome and effect-buffer residue depend only on
//     committed state plus the group's own accumulator cells;
//  2. admits all singleton groups whole-batch: their emissions apply in
//     admission order, a columnar tentative post-update view is built once
//     per affected (class, attr) by running the attr's vectorized update
//     rule over the dense combined-effect vectors, and constraints evaluate
//     as vexpr mask kernels over per-lane gathers of that view (string/set/
//     iterator constraints fall back to per-lane closures over tentWorld);
//  3. runs true conflict groups through the serial greedy loop group-at-a-
//     time — in admission order within each group — fanned out across the
//     worker pool (partition-major when partitioned execution is active;
//     groups spanning partitions stay on the caller).
//
// Every path preserves bit-identity with the serial loop: group
// disjointness keeps each accumulator cell's add/remove sequence identical,
// the vectorized tentative view is bitwise equal to per-row rule replay
// (vexpr ≡ expr by construction), and constraint evaluation is total and
// side-effect-free, so evaluation order cannot change outcomes.

import (
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// fxTouch records one accumulator cell's empty→non-empty transition made by
// a pooled conflict group; the logs merge into the shared touched lists in
// group order after the barrier.
type fxTouch struct {
	col *fxColumn
	row int32
}

// txnGroup is one multi-transaction conflict group: members are
// s.gmem[off:off+n] in admission order; part is the partition owning every
// touched row, or -1 when the group spans partitions (or partitioning is
// off).
type txnGroup struct {
	off  int32
	n    int32
	fill int32
	part int32
}

// txnRuntime is the retained scratch of the batched admission driver,
// generation-stamped so nothing clears between admissions.
type txnRuntime struct {
	inited bool
	gen    uint64
	parts  bool // partition routing active this pass

	machine  vexpr.Machine
	fBatch   stats.EMA
	tw       tentWorld
	ectx     expr.Ctx // committed-state ctx for stable-base resolution
	tctx     expr.Ctx // tentative ctx for closure-constraint lanes
	baseRead *mutRowReader
	tentRead *mutTentReader

	gatherCommitted func(class string, attrIdx int, refs, out []float64, zero float64)
	gatherTent      func(class string, attrIdx int, refs, out []float64, zero float64)
	viewEnv         vexpr.Env
	viewIDs         []float64

	sites []*txnSite

	// Per-transaction state, indexed by admission-order position.
	parent []int32
	root   []int32
	gsize  []int32
	gfirst []int32
	part   []int32
	cross  []bool
	srcRow []int32
	emOff  []int32
	emRow  []int32
	emRT   []*classRT

	groups   []txnGroup
	gmem     []int32
	gtouch   [][]fxTouch
	partBkt  [][]int32
	partList []int32
	crossG   []int32
}

// mutRowReader is a reusable boxed expr.RowReader over committed state.
type mutRowReader struct {
	rt  *classRT
	row int
}

func (r *mutRowReader) Attr(attrIdx int) value.Value { return r.rt.tab.At(r.row, attrIdx) }

// mutTentReader is a reusable boxed expr.RowReader over tentative state.
type mutTentReader struct {
	tw  *tentWorld
	rt  *classRT
	row int
}

func (r *mutTentReader) Attr(attrIdx int) value.Value {
	v, _ := r.tw.StateValue(r.rt.name, r.rt.tab.ID(r.row), attrIdx)
	return v
}

func (s *txnRuntime) init(w *World) {
	if s.inited {
		return
	}
	s.inited = true
	s.fBatch = stats.NewEMA(0.3)
	s.tw.w = w
	s.baseRead = &mutRowReader{}
	s.tentRead = &mutTentReader{tw: &s.tw}
	s.ectx.W = w
	s.ectx.Self = s.baseRead
	s.tctx.W = &s.tw
	s.tctx.Self = s.tentRead
	s.gatherCommitted = w.gatherFn
	s.gatherTent = func(class string, attrIdx int, refs, out []float64, zero float64) {
		rt := w.classes[class]
		col := rt.tab.NumColumn(attrIdx)
		if attrIdx < len(rt.txnViewGen) && rt.txnViewGen[attrIdx] == s.gen {
			col = rt.txnViewCols[attrIdx]
		}
		for i, f := range refs {
			if row := rt.tab.Row(value.ID(f)); row >= 0 {
				out[i] = col[row]
			} else {
				out[i] = zero
			}
		}
	}
	s.viewEnv.Gather = s.gatherCommitted
}

// txnAdmitMode picks this batch's admission mode: the serial loop whenever
// any transaction lacks an analyzable site, else the cost model's choice
// between per-transaction rule replay and batched validation (forcible via
// Options.Txn). As a side effect it stamps and collects the batch's
// distinct sites for the batched driver.
func (w *World) txnAdmitMode(txns []*Txn) plan.TxnMode {
	if w.opts.Txn == plan.TxnScalar {
		return plan.TxnScalar
	}
	s := &w.txnrt
	s.init(w)
	s.gen++
	s.sites = s.sites[:0]
	viewRows := 0.0
	for _, t := range txns {
		if t.step == nil {
			return plan.TxnScalar
		}
		site := w.txnSites[t.step]
		if site == nil || !site.analyzable {
			return plan.TxnScalar
		}
		if site.gen != s.gen {
			site.gen = s.gen
			site.lanes = site.lanes[:0]
			s.sites = append(s.sites, site)
			for _, va := range site.views {
				viewRows += float64(va.rt.tab.Cap())
			}
		}
	}
	fb := 0.9 // optimistic prior before feedback arrives
	if s.fBatch.Ready() {
		fb = s.fBatch.Value()
	}
	return w.execCosts.ChooseTxn(w.opts.Txn, float64(len(txns)), viewRows, fb)
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func (s *txnRuntime) find(i int32) int32 {
	p := s.parent
	for p[i] != i {
		p[i] = p[p[i]]
		i = p[i]
	}
	return i
}

func (s *txnRuntime) union(a, b int32) {
	ra, rb := s.find(a), s.find(b)
	if ra != rb {
		s.parent[ra] = rb
	}
}

// txnClaim adds one touched row to transaction i's conflict set, unioning
// with whichever transaction claimed the row before, and folds the row's
// partition into i's routing classification.
func (w *World) txnClaim(i int, rt *classRT, row int) {
	s := &w.txnrt
	if len(rt.txnRowGen) < rt.tab.Cap() {
		rt.txnRowGen = growU64(rt.txnRowGen, rt.tab.Cap())
		rt.txnRowOwner = growI32(rt.txnRowOwner, rt.tab.Cap())
	}
	if rt.txnRowGen[row] == s.gen {
		s.union(int32(i), rt.txnRowOwner[row])
	} else {
		rt.txnRowGen[row] = s.gen
	}
	rt.txnRowOwner[row] = int32(i)
	if s.parts {
		p := int32(-1)
		if rt.prt != nil && row < len(rt.prt.assign) {
			p = rt.prt.assign[row]
		}
		switch {
		case p < 0 || (s.part[i] >= 0 && s.part[i] != p):
			s.part[i] = -1
			s.cross[i] = true
		case s.part[i] == -2:
			s.part[i] = p
		}
	}
}

// admitBatched is the batched/parallel/partition-aware admission driver.
// txnAdmitMode must have stamped the current generation and collected the
// batch's sites; every transaction carries an analyzable site.
func (w *World) admitBatched(txns []*Txn) {
	s := &w.txnrt
	n := len(txns)

	// (1) Resolve rows, pre-abort dead transactions, group conflicts.
	s.parent = growI32(s.parent, n)
	s.root = growI32(s.root, n)
	s.gsize = growI32(s.gsize, n)
	s.gfirst = growI32(s.gfirst, n)
	s.part = growI32(s.part, n)
	s.cross = growBool(s.cross, n)
	s.srcRow = growI32(s.srcRow, n)
	s.emOff = growI32(s.emOff, n+1)
	s.emRow = s.emRow[:0]
	s.emRT = s.emRT[:0]
	s.parts = w.parts != nil && w.parts.ready
	considered, crossCount := 0, 0
	for i, t := range txns {
		s.parent[i] = int32(i)
		s.part[i] = -2
		s.cross[i] = false
		s.emOff[i] = int32(len(s.emRow))
		rt := w.classes[t.Class]
		srow := rt.tab.Row(t.Source)
		live := srow >= 0
		if live {
			for k := range t.Emissions {
				e := &t.Emissions[k]
				ert := w.classes[e.Class]
				erow := ert.tab.Row(e.Target)
				if erow < 0 {
					live = false
					break
				}
				s.emRow = append(s.emRow, int32(erow))
				s.emRT = append(s.emRT, ert)
			}
		}
		if !live {
			// A dead source or dead emission target aborts the whole
			// transaction before anything applies (§3.1 atomicity), exactly
			// like the serial loop.
			s.emRow = s.emRow[:s.emOff[i]]
			s.emRT = s.emRT[:s.emOff[i]]
			s.srcRow[i] = -1
			t.Aborted = true
			continue
		}
		considered++
		s.srcRow[i] = int32(srow)
		w.txnClaim(i, rt, srow)
		for k := s.emOff[i]; k < int32(len(s.emRow)); k++ {
			w.txnClaim(i, s.emRT[k], int(s.emRow[k]))
		}
		site := w.txnSites[t.step]
		if len(site.bases) > 0 {
			s.baseRead.rt, s.baseRead.row = rt, srow
			s.ectx.Class, s.ectx.SelfID, s.ectx.Frame = t.Class, t.Source, t.Frame
			for bi := range site.bases {
				b := &site.bases[bi]
				v := b.fn(&s.ectx)
				if v.IsNullRef() {
					continue
				}
				brt := w.classes[b.class]
				if brow := brt.tab.Row(v.AsRef()); brow >= 0 {
					w.txnClaim(i, brt, brow)
				}
			}
		}
	}
	s.emOff[n] = int32(len(s.emRow))
	for i := range txns {
		if s.srcRow[i] < 0 {
			s.root[i] = -1
			continue
		}
		s.root[i] = s.find(int32(i))
	}
	for i := range txns {
		s.gsize[i] = 0
	}
	for i := range txns {
		if r := s.root[i]; r >= 0 {
			s.gsize[r]++
		}
		if s.cross[i] && s.srcRow[i] >= 0 {
			crossCount++
		}
	}

	// (2) Singleton groups: apply emissions in admission order, bucket
	// lanes per site, validate whole-batch against the tentative view.
	singles := 0
	for i, t := range txns {
		r := s.root[i]
		if r < 0 || s.gsize[r] != 1 {
			continue
		}
		singles++
		w.txnSites[t.step].lanes = append(w.txnSites[t.step].lanes, int32(i))
		for k := s.emOff[i]; k < s.emOff[i+1]; k++ {
			e := &t.Emissions[k-s.emOff[i]]
			s.emRT[k].fx[e.AttrIdx].add(int(s.emRow[k]), e.Val, e.Key)
		}
	}
	if singles > 0 {
		for _, site := range s.sites {
			for _, va := range site.views {
				w.buildTxnView(va)
			}
		}
		for _, site := range s.sites {
			w.runTxnSiteLanes(site, txns)
		}
	}

	// (3) Multi-transaction groups: serial greedy within each group,
	// groups fanned out across the pool (partition-major when partitioned).
	s.groups = s.groups[:0]
	total := 0
	for i := range txns {
		if r := s.root[i]; r >= 0 && s.gsize[r] > 1 {
			total++
		}
	}
	if total > 0 {
		for i := range txns {
			s.gfirst[i] = -1
		}
		for i := range txns {
			r := s.root[i]
			if r < 0 || s.gsize[r] <= 1 {
				continue
			}
			if s.gfirst[r] < 0 {
				s.gfirst[r] = int32(len(s.groups))
				s.groups = append(s.groups, txnGroup{part: -2})
			}
			s.groups[s.gfirst[r]].n++
		}
		off := int32(0)
		for gi := range s.groups {
			g := &s.groups[gi]
			g.off, g.fill = off, off
			off += g.n
		}
		s.gmem = growI32(s.gmem, total)
		for i := range txns {
			r := s.root[i]
			if r < 0 || s.gsize[r] <= 1 {
				continue
			}
			g := &s.groups[s.gfirst[r]]
			s.gmem[g.fill] = int32(i)
			g.fill++
			switch {
			case s.cross[i] || s.part[i] < 0 && s.parts:
				g.part = -1
			case g.part == -2:
				g.part = s.part[i]
			case g.part >= 0 && g.part != s.part[i]:
				g.part = -1
			}
		}
		if !s.parts {
			for gi := range s.groups {
				s.groups[gi].part = -1
			}
		}
	}
	pooled := w.runTxnGroups(txns, total)

	if considered > 0 {
		s.fBatch.Add(float64(singles) / float64(considered))
	}
	if !w.opts.DisableStats {
		w.execStats.TxnBatchedRows += int64(singles)
		w.execStats.TxnParallelGroups += int64(pooled)
		w.execStats.TxnCrossPart += int64(crossCount)
	}
}

// buildTxnView materializes the tentative post-update column for one
// (class, attr): the attr's vectorized update rule runs over committed
// columns plus dense combined-effect vectors — bitwise equal to
// tentWorld.StateValue's per-row rule replay.
func (w *World) buildTxnView(va txnViewAttr) {
	s := &w.txnrt
	rt := va.rt
	if len(rt.txnViewGen) < len(rt.cls.State) {
		rt.txnViewGen = growU64(rt.txnViewGen, len(rt.cls.State))
		for len(rt.txnViewCols) < len(rt.cls.State) {
			rt.txnViewCols = append(rt.txnViewCols, nil)
		}
	}
	if rt.txnViewGen[va.attr] == s.gen {
		return
	}
	rt.txnViewGen[va.attr] = s.gen
	n := rt.tab.Cap()
	v := rt.vec
	rt.txnFxGen = growU64(rt.txnFxGen, len(rt.fx))
	for _, ai := range va.prog.FxUsed() {
		if rt.txnFxGen[ai] == s.gen {
			continue
		}
		rt.txnFxGen[ai] = s.gen
		rt.fillFxVec(ai, n)
	}
	out := growFloats(rt.txnViewCols[va.attr], n)
	rt.txnViewCols[va.attr] = out
	s.viewEnv.Cols = rt.tab.NumColumns()
	s.viewEnv.Fx = v.fxVecs
	if va.prog.NeedIDs() {
		s.viewIDs = growFloats(s.viewIDs, n)
		for r := 0; r < n; r++ {
			s.viewIDs[r] = float64(rt.tab.ID(r))
		}
		s.viewEnv.IDs = s.viewIDs
	}
	va.prog.Run(&s.machine, &s.viewEnv, 0, n, out)
}

// runTxnSiteLanes validates one site's singleton lanes: kernel constraints
// run whole-batch over gathered lane vectors (self attrs read the tentative
// view for rule attrs, committed columns otherwise; frame slots broadcast
// per lane; cross-object reads gather through the view), closure
// constraints evaluate per lane over tentWorld. Failed lanes roll their
// emissions back and abort.
func (w *World) runTxnSiteLanes(site *txnSite, txns []*Txn) {
	nl := len(site.lanes)
	if nl == 0 {
		return
	}
	s := &w.txnrt
	rt := site.rt
	if len(site.envCols) < len(rt.cls.State) {
		site.envCols = make([][]float64, len(rt.cls.State))
	}
	for len(site.colBufs) < len(site.cols) {
		site.colBufs = append(site.colBufs, nil)
	}
	for bi, a := range site.cols {
		vec := growFloats(site.colBufs[bi], nl)
		site.colBufs[bi] = vec
		col := rt.tab.NumColumn(a)
		if rt.hasRule[a] && a < len(rt.txnViewGen) && rt.txnViewGen[a] == s.gen {
			col = rt.txnViewCols[a]
		}
		for k, li := range site.lanes {
			vec[k] = col[s.srcRow[li]]
		}
		site.envCols[a] = vec
	}
	for len(site.slotBufs) < len(site.slots) {
		site.slotBufs = append(site.slotBufs, nil)
	}
	for bi, sl := range site.slots {
		vec := growFloats(site.slotBufs[bi], nl)
		site.slotBufs[bi] = vec
		for len(site.slotVecs) <= sl {
			site.slotVecs = append(site.slotVecs, nil)
		}
		for k, li := range site.lanes {
			// String txn args broadcast dictionary codes (interned, so
			// slot-vs-slot equality matches the closure evaluator).
			if v := txns[li].Frame[sl]; v.Kind() == value.KindString {
				vec[k] = w.dict.Code(v.AsString())
			} else {
				vec[k] = payloadOf(v)
			}
		}
		site.slotVecs[sl] = vec
	}
	if site.needIDs {
		site.idBuf = growFloats(site.idBuf, nl)
		for k, li := range site.lanes {
			site.idBuf[k] = float64(txns[li].Source)
		}
	}
	env := &site.env
	env.Cols = site.envCols
	env.Slots = site.slotVecs
	env.IDs = site.idBuf
	env.Gather = s.gatherTent
	site.outBuf = growFloats(site.outBuf, nl)
	site.passBuf = growBool(site.passBuf, nl)
	pass := site.passBuf
	for k := range pass {
		pass[k] = true
	}
	for ci := range site.cons {
		c := &site.cons[ci]
		if c.prog != nil {
			c.prog.Run(&s.machine, env, 0, nl, site.outBuf)
			for k := range pass {
				if site.outBuf[k] == 0 {
					pass[k] = false
				}
			}
			continue
		}
		// Closure fallback: exact per-lane evaluation over the tentative
		// world — group disjointness confines its reads to the lane's own
		// accumulators. Constraints are total and side-effect-free, so
		// skipping already-failed lanes cannot change outcomes.
		for k, li := range site.lanes {
			if !pass[k] {
				continue
			}
			t := txns[li]
			s.tentRead.rt, s.tentRead.row = rt, int(s.srcRow[li])
			s.tctx.Class, s.tctx.SelfID, s.tctx.Frame = t.Class, t.Source, t.Frame
			if !c.fn(&s.tctx).AsBool() {
				pass[k] = false
			}
		}
	}
	for k, li := range site.lanes {
		if pass[k] {
			continue
		}
		t := txns[li]
		for j := s.emOff[li]; j < s.emOff[li+1]; j++ {
			e := &t.Emissions[j-s.emOff[li]]
			s.emRT[j].fx[e.AttrIdx].acc[s.emRow[j]].Remove(e.Val, e.Key)
		}
		t.Aborted = true
	}
}

// admitGroupTxn is the serial greedy step for one member of a conflict
// group, using the rows resolved during grouping. A non-nil log records
// empty→non-empty accumulator transitions instead of appending to the
// shared touched lists (pooled groups merge logs in group order).
func (w *World) admitGroupTxn(t *Txn, i int, log *[]fxTouch) {
	s := &w.txnrt
	lo, hi := s.emOff[i], s.emOff[i+1]
	for k := lo; k < hi; k++ {
		e := &t.Emissions[k-lo]
		f := &s.emRT[k].fx[e.AttrIdx]
		row := int(s.emRow[k])
		if log == nil {
			f.add(row, e.Val, e.Key)
		} else {
			if f.acc[row].N() == 0 {
				*log = append(*log, fxTouch{col: f, row: s.emRow[k]})
			}
			f.acc[row].Add(e.Val, e.Key)
		}
	}
	if constraintsHold(w, &s.tw, t) {
		return
	}
	for k := lo; k < hi; k++ {
		e := &t.Emissions[k-lo]
		s.emRT[k].fx[e.AttrIdx].acc[s.emRow[k]].Remove(e.Val, e.Key)
	}
	t.Aborted = true
}

// runTxnGroups executes the multi-transaction conflict groups, returning
// how many were dispatched to the worker pool.
func (w *World) runTxnGroups(txns []*Txn, total int) int {
	s := &w.txnrt
	if len(s.groups) == 0 {
		return 0
	}
	runGroup := func(gi int, log *[]fxTouch) {
		g := &s.groups[gi]
		for _, m := range s.gmem[g.off : g.off+g.n] {
			w.admitGroupTxn(txns[m], int(m), log)
		}
	}
	if !s.parts {
		nw := 1
		if w.parallelOK() && len(s.groups) > 1 {
			nw = w.execCosts.ChooseWorkers(w.opts.Workers,
				w.execCosts.TxnScalarCheck*float64(total))
		}
		if nw <= 1 {
			for gi := range s.groups {
				runGroup(gi, nil)
			}
			return 0
		}
		w.ensureWorkers()
		w.resetGroupLogs(len(s.groups))
		w.runPool(len(s.groups), nw, func(_, gi int) {
			runGroup(gi, &s.gtouch[gi])
		})
		w.mergeGroupLogs(len(s.groups))
		return len(s.groups)
	}

	// Partition-aware routing: groups whose rows live in one partition
	// bucket per partition and fan out partition-major; spanning groups
	// stay serial on the caller.
	for len(s.partBkt) < w.parts.n {
		s.partBkt = append(s.partBkt, nil)
	}
	s.partList = s.partList[:0]
	s.crossG = s.crossG[:0]
	for gi := range s.groups {
		g := &s.groups[gi]
		if g.part < 0 {
			s.crossG = append(s.crossG, int32(gi))
			continue
		}
		if len(s.partBkt[g.part]) == 0 {
			s.partList = append(s.partList, g.part)
		}
		s.partBkt[g.part] = append(s.partBkt[g.part], int32(gi))
	}
	pooled := 0
	if w.parallelOK() && len(s.partList) > 1 {
		w.ensureWorkers()
		w.resetGroupLogs(len(s.groups))
		w.runPool(len(s.partList), w.opts.Workers, func(_, pi int) {
			for _, gi := range s.partBkt[s.partList[pi]] {
				runGroup(int(gi), &s.gtouch[gi])
			}
		})
		w.mergeGroupLogs(len(s.groups))
		for _, p := range s.partList {
			pooled += len(s.partBkt[p])
		}
	} else {
		for _, p := range s.partList {
			for _, gi := range s.partBkt[p] {
				runGroup(int(gi), nil)
			}
		}
	}
	for _, p := range s.partList {
		s.partBkt[p] = s.partBkt[p][:0]
	}
	for _, gi := range s.crossG {
		runGroup(int(gi), nil)
	}
	return pooled
}

func (w *World) resetGroupLogs(n int) {
	s := &w.txnrt
	for len(s.gtouch) < n {
		s.gtouch = append(s.gtouch, nil)
	}
	for gi := 0; gi < n; gi++ {
		s.gtouch[gi] = s.gtouch[gi][:0]
	}
}

func (w *World) mergeGroupLogs(n int) {
	s := &w.txnrt
	for gi := 0; gi < n; gi++ {
		for _, t := range s.gtouch[gi] {
			t.col.touched = append(t.col.touched, int(t.row))
		}
	}
}
