package engine

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/plan"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/sem"
	"repro/internal/value"
)

func loadProg(t *testing.T, src string) *compile.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	prog, err := compile.CompileChecked(info)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func newWorld(t *testing.T, src string, opts Options) *World {
	t.Helper()
	w, err := New(loadProg(t, src), opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return w
}

const counterSrc = `
class C {
  state:
    number n = 0;
    number k = 2;
  effects:
    number dn : sum;
  update:
    n = n + dn;
  run {
    dn <- k;
  }
}
`

func TestBasicTickCycle(t *testing.T) {
	w := newWorld(t, counterSrc, Options{})
	id, err := w.Spawn("C", map[string]value.Value{"k": value.Num(3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(5); err != nil {
		t.Fatal(err)
	}
	if got := w.MustGet("C", id, "n").AsNumber(); got != 15 {
		t.Fatalf("n = %v, want 15", got)
	}
	if w.Tick() != 5 {
		t.Errorf("Tick = %d", w.Tick())
	}
}

func TestSpawnValidation(t *testing.T) {
	w := newWorld(t, counterSrc, Options{})
	if _, err := w.Spawn("Nope", nil); err == nil {
		t.Error("unknown class must error")
	}
	if _, err := w.Spawn("C", map[string]value.Value{"bogus": value.Num(1)}); err == nil {
		t.Error("unknown attribute must error")
	}
}

func TestKillAndMidTickDefer(t *testing.T) {
	w := newWorld(t, counterSrc, Options{})
	a, _ := w.Spawn("C", nil)
	b, _ := w.Spawn("C", nil)
	if err := w.Kill("C", a); err != nil {
		t.Fatal(err)
	}
	if w.Count("C") != 1 {
		t.Fatalf("Count = %d", w.Count("C"))
	}
	// Spawn during a tick (via inspector) must defer to the boundary.
	var midCount int
	w.AddInspector(inspectFn{start: func(w *World, tick int64) {
		if tick == 0 {
			w.Spawn("C", nil)
			midCount = w.Count("C")
		}
	}})
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	if midCount != 1 {
		t.Errorf("mid-tick spawn applied immediately (count %d)", midCount)
	}
	if w.Count("C") != 2 {
		t.Errorf("after tick: count = %d", w.Count("C"))
	}
	_ = b
}

type inspectFn struct {
	start func(*World, int64)
	end   func(*World, int64)
}

func (f inspectFn) TickStart(w *World, tick int64) {
	if f.start != nil {
		f.start(w, tick)
	}
}
func (f inspectFn) TickEnd(w *World, tick int64) {
	if f.end != nil {
		f.end(w, tick)
	}
}

func TestSetStateOutsideTickOnly(t *testing.T) {
	w := newWorld(t, counterSrc, Options{})
	id, _ := w.Spawn("C", nil)
	if err := w.SetState("C", id, "n", value.Num(42)); err != nil {
		t.Fatal(err)
	}
	if got := w.MustGet("C", id, "n").AsNumber(); got != 42 {
		t.Fatal("SetState did not apply")
	}
	w.AddInspector(inspectFn{start: func(w *World, tick int64) {
		if err := w.SetState("C", id, "n", value.Num(0)); err == nil {
			t.Error("SetState during a tick must error")
		}
	}})
	w.RunTick()
}

const ownedSrc = `
class P {
  state:
    number x = 0 by mover;
    number hp = 10;
  effects:
    number dx : sum;
}
`

type mover struct{ name string }

func (m mover) Name() string { return m.name }
func (m mover) Update(ctx *UpdateCtx) error {
	for _, id := range ctx.IDs("P") {
		x, _ := ctx.State("P", id, "x")
		dx := 0.0
		if v, ok := ctx.Effect("P", id, "dx"); ok {
			dx = v.AsNumber()
		}
		if err := ctx.Stage("P", id, "x", value.Num(x.AsNumber()+dx+1)); err != nil {
			return err
		}
	}
	return nil
}

func TestOwnerComponent(t *testing.T) {
	w := newWorld(t, ownedSrc, Options{})
	if err := w.RunTick(); err == nil {
		t.Fatal("ticking with a missing owner component must error")
	}
	if err := w.Register(mover{name: "mover"}); err != nil {
		t.Fatal(err)
	}
	id, _ := w.Spawn("P", nil)
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	if got := w.MustGet("P", id, "x").AsNumber(); got != 3 {
		t.Fatalf("x = %v, want 3", got)
	}
}

type rogue struct{}

func (rogue) Name() string { return "rogue" }
func (rogue) Update(ctx *UpdateCtx) error {
	id := ctx.IDs("P")[0]
	return ctx.Stage("P", id, "hp", value.Num(0)) // hp is not owned by rogue
}

func TestOwnershipPartitionEnforced(t *testing.T) {
	w := newWorld(t, ownedSrc, Options{})
	if err := w.Register(mover{name: "mover"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Register(rogue{}); err != nil {
		t.Fatal(err)
	}
	w.Spawn("P", nil)
	err := w.RunTick()
	if err == nil {
		t.Fatal("staging an unowned attribute must fail the tick")
	}
}

func TestDuplicateComponentRejected(t *testing.T) {
	w := newWorld(t, ownedSrc, Options{})
	if err := w.Register(mover{name: "mover"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Register(mover{name: "mover"}); err == nil {
		t.Fatal("duplicate component must be rejected")
	}
}

const multiPhaseSrc = `
class B {
  state:
    number a = 0;
  effects:
    number da : sum;
  update:
    a = a + da;
  run {
    da <- 1;
    waitNextTick;
    da <- 10;
  }
}
`

func TestInterruptsResetPC(t *testing.T) {
	w := newWorld(t, multiPhaseSrc, Options{})
	id, _ := w.Spawn("B", nil)
	// Interrupt back to phase 0 whenever a >= 11 (i.e. after one full cycle).
	err := w.RegisterInterrupt("B", func(w *World, id value.ID) bool {
		return w.MustGet("B", id, "a").AsNumber() >= 11
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RegisterInterrupt("Nope", nil, 0); err == nil {
		t.Error("unknown class must error")
	}
	if err := w.RegisterInterrupt("B", nil, 5); err == nil {
		t.Error("out-of-range phase must error")
	}
	// tick1: phase0 (+1, a=1, pc->1); tick2: phase1 (+10, a=11, pc->0,
	// interrupt also targets 0); tick3: phase0 again (+1, a=12), and the
	// interrupt pins pc back to 0 since a stays >= 11.
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	if got := w.MustGet("B", id, "a").AsNumber(); got != 12 {
		t.Fatalf("a = %v, want 12", got)
	}
	if w.PC("B", id) != 0 {
		t.Fatalf("pc = %d, want 0 (interrupt keeps firing)", w.PC("B", id))
	}
}

func TestSetPC(t *testing.T) {
	w := newWorld(t, multiPhaseSrc, Options{})
	id, _ := w.Spawn("B", nil)
	if err := w.SetPC("B", id, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.RunTick(); err != nil { // runs phase 1: +10
		t.Fatal(err)
	}
	if got := w.MustGet("B", id, "a").AsNumber(); got != 10 {
		t.Fatalf("a = %v, want 10", got)
	}
	if err := w.SetPC("B", id, 9); err == nil {
		t.Error("phase out of range must error")
	}
}

func TestCheckpointRestore(t *testing.T) {
	w := newWorld(t, counterSrc, Options{})
	id, _ := w.Spawn("C", nil)
	w.Run(3)
	cp, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	w.Run(4)
	after := w.MustGet("C", id, "n").AsNumber()
	if err := w.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if got := w.MustGet("C", id, "n").AsNumber(); got != 6 {
		t.Fatalf("restored n = %v, want 6", got)
	}
	if w.Tick() != 3 {
		t.Fatalf("restored tick = %d", w.Tick())
	}
	// Replay after restore reproduces the original trajectory.
	w.Run(4)
	if got := w.MustGet("C", id, "n").AsNumber(); got != after {
		t.Fatalf("replay diverged: %v vs %v", got, after)
	}
}

const traceSrc = `
class T {
  state:
    ref<T> other = null;
  effects:
    number hit : sum;
  run {
    if (other != null) {
      other.hit <- 1;
    }
  }
}
`

func TestTracer(t *testing.T) {
	w := newWorld(t, traceSrc, Options{})
	a, _ := w.Spawn("T", nil)
	b, _ := w.Spawn("T", map[string]value.Value{"other": value.Ref(a)})
	var events int
	var lastDst value.ID
	w.SetTracer(func(tick int64, srcClass string, src value.ID, dstClass string, dst value.ID, attr string, v value.Value) {
		events++
		lastDst = dst
		if attr != "hit" {
			t.Errorf("attr = %q", attr)
		}
	})
	w.RunTick()
	if events != 1 || lastDst != a {
		t.Fatalf("events=%d dst=%d", events, lastDst)
	}
	_ = b
}

func TestEmissionToDeadTargetDropped(t *testing.T) {
	w := newWorld(t, traceSrc, Options{})
	a, _ := w.Spawn("T", nil)
	b, _ := w.Spawn("T", map[string]value.Value{"other": value.Ref(a)})
	w.Kill("T", a)
	if err := w.RunTick(); err != nil {
		t.Fatalf("dangling emission must not fail the tick: %v", err)
	}
	_ = b
}

func TestForcedStrategiesAgree(t *testing.T) {
	src := `
class U {
  state:
    number x = 0;
    number seen = 0;
  effects:
    number s : sum;
  update:
    seen = s;
  run {
    accum number cnt with sum over U u from U {
      if (u.x >= x - 3 && u.x <= x + 3) {
        cnt <- 1;
      }
    } in {
      s <- cnt;
    }
  }
}
`
	var results []float64
	for _, strat := range []plan.Strategy{plan.NestedLoop, plan.RangeTreeIndex, plan.Auto} {
		w := newWorld(t, src, Options{Strategy: strat})
		var ids []value.ID
		for i := 0; i < 30; i++ {
			id, _ := w.Spawn("U", map[string]value.Value{"x": value.Num(float64(i % 10))})
			ids = append(ids, id)
		}
		if err := w.Run(2); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, id := range ids {
			sum += w.MustGet("U", id, "seen").AsNumber()
		}
		results = append(results, sum)
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Fatalf("strategies disagree: %v", results)
	}
	if results[0] == 0 {
		t.Fatal("no matches counted")
	}
}
