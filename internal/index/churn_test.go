package index

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// tableSim models a columnar extent the way the engine sees it: dense
// columns with an alive mask, a free list reusing dead slots, and stable
// ids.
type tableSim struct {
	x, y   []float64
	alive  []bool
	ids    []value.ID
	free   []int
	nextID value.ID
}

func (s *tableSim) spawn(rng *rand.Rand) {
	s.nextID++
	var r int
	if len(s.free) > 0 {
		r = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
	} else {
		r = len(s.alive)
		s.x = append(s.x, 0)
		s.y = append(s.y, 0)
		s.alive = append(s.alive, false)
		s.ids = append(s.ids, 0)
	}
	s.alive[r] = true
	s.ids[r] = s.nextID
	s.x[r] = float64(rng.Intn(400))
	s.y[r] = float64(rng.Intn(400))
}

func (s *tableSim) kill(rng *rand.Rand) {
	live := s.liveRows()
	if len(live) == 0 {
		return
	}
	r := live[rng.Intn(len(live))]
	s.alive[r] = false
	s.free = append(s.free, r)
}

func (s *tableSim) move(rng *rand.Rand) {
	live := s.liveRows()
	if len(live) == 0 {
		return
	}
	r := live[rng.Intn(len(live))]
	s.x[r] += float64(rng.Intn(61) - 30)
	s.y[r] += float64(rng.Intn(61) - 30)
}

func (s *tableSim) liveRows() []int {
	var out []int
	for r, ok := range s.alive {
		if ok {
			out = append(out, r)
		}
	}
	return out
}

func (s *tableSim) entries() []Entry {
	var out []Entry
	for r, ok := range s.alive {
		if ok {
			out = append(out, Entry{ID: s.ids[r], Row: int32(r), Coords: []float64{s.x[r], s.y[r]}})
		}
	}
	return out
}

func (s *tableSim) bruteBox(lo, hi []float64) map[value.ID]bool {
	m := map[value.ID]bool{}
	for r, ok := range s.alive {
		if ok && s.x[r] >= lo[0] && s.x[r] <= hi[0] && s.y[r] >= lo[1] && s.y[r] <= hi[1] {
			m[s.ids[r]] = true
		}
	}
	return m
}

func checkGridAgainstFresh(t *testing.T, sim *tableSim, g *Grid, rng *rand.Rand) {
	t.Helper()
	var fb Builder
	fresh := fb.BuildGrid(g.Cell(), sim.entries())
	if g.Len() != fresh.Len() {
		t.Fatalf("synced grid has %d entries, fresh rebuild %d", g.Len(), fresh.Len())
	}
	for q := 0; q < 30; q++ {
		cx, cy := float64(rng.Intn(400)), float64(rng.Intn(400))
		w := float64(rng.Intn(80) + 1)
		lo := []float64{cx - w, cy - w}
		hi := []float64{cx + w, cy + w}
		got := g.Query(lo, hi, nil)
		want := fresh.Query(lo, hi, nil)
		if len(got) != len(want) {
			t.Fatalf("query %v..%v: synced %d ids, fresh %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %v..%v: candidate order diverged at %d: %d vs %d", lo, hi, i, got[i], want[i])
			}
		}
		rows := g.QueryRows(lo, hi, nil)
		if len(rows) != len(got) {
			t.Fatalf("QueryRows returned %d, Query %d", len(rows), len(got))
		}
		for i, r := range rows {
			if sim.ids[r] != got[i] {
				t.Fatalf("QueryRows[%d] = row %d (id %d), Query id %d", i, r, sim.ids[r], got[i])
			}
		}
		brute := sim.bruteBox(lo, hi)
		if len(brute) != len(got) {
			t.Fatalf("brute force %d matches, grid %d", len(brute), len(got))
		}
		for _, id := range got {
			if !brute[id] {
				t.Fatalf("grid returned non-matching id %d", id)
			}
		}
	}
}

// TestGridSyncChurn drives a Builder grid through spawn/kill/move churn via
// Sync and checks it stays exactly — including candidate order — a fresh
// rebuild of the current extent, and agrees with brute force.
func TestGridSyncChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sim := &tableSim{}
	for i := 0; i < 300; i++ {
		sim.spawn(rng)
	}
	var b Builder
	g := b.BuildGrid(48, sim.entries())
	checkGridAgainstFresh(t, sim, g, rng)

	for round := 0; round < 25; round++ {
		ops := rng.Intn(20) + 1
		for i := 0; i < ops; i++ {
			switch rng.Intn(4) {
			case 0:
				sim.spawn(rng)
			case 1:
				sim.kill(rng)
			default:
				sim.move(rng)
			}
		}
		dirty, ok := g.Sync(sim.x, sim.y, sim.alive, sim.ids, 1<<30)
		if !ok {
			t.Fatalf("round %d: sync refused with unlimited budget", round)
		}
		if dirty == 0 && ops > 0 {
			// Moves by zero are possible but all-ops-noop is unlikely; don't fail.
			t.Logf("round %d: no dirty rows for %d ops", round, ops)
		}
		checkGridAgainstFresh(t, sim, g, rng)
	}

	// Budget bail-out: a tiny budget must refuse large churn.
	for i := 0; i < 100; i++ {
		sim.move(rng)
	}
	if _, ok := g.Sync(sim.x, sim.y, sim.alive, sim.ids, 3); ok {
		t.Fatal("sync with budget 3 accepted heavy churn")
	}
}

// TestBuilderRangeTreeChurn rebuilds a tree through one Builder across
// rounds of fresh random data and checks queries (ids and rows, same order)
// against brute force — the arena reuse must never leak stale state.
func TestBuilderRangeTreeChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var b Builder
	sim := &tableSim{}
	for i := 0; i < 200; i++ {
		sim.spawn(rng)
	}
	for round := 0; round < 20; round++ {
		for i := 0; i < 30; i++ {
			switch rng.Intn(4) {
			case 0:
				sim.spawn(rng)
			case 1:
				sim.kill(rng)
			default:
				sim.move(rng)
			}
		}
		es := sim.entries()
		n := len(es)
		slab := b.Entries(n)
		copy(slab, es)
		tree := b.BuildRangeTree(2, slab)
		if tree.Len() != n {
			t.Fatalf("round %d: tree len %d, want %d", round, tree.Len(), n)
		}
		for q := 0; q < 20; q++ {
			cx, cy := float64(rng.Intn(400)), float64(rng.Intn(400))
			w := float64(rng.Intn(90) + 1)
			lo := []float64{cx - w, cy - w}
			hi := []float64{cx + w, cy + w}
			ids := tree.Query(lo, hi, nil)
			rows := tree.QueryRows(lo, hi, nil)
			if len(ids) != len(rows) {
				t.Fatalf("Query %d vs QueryRows %d", len(ids), len(rows))
			}
			for i := range rows {
				if sim.ids[rows[i]] != ids[i] {
					t.Fatalf("row/id order diverged at %d", i)
				}
			}
			brute := sim.bruteBox(lo, hi)
			if len(brute) != len(ids) {
				t.Fatalf("round %d: brute %d, tree %d", round, len(brute), len(ids))
			}
			for _, id := range ids {
				if !brute[id] {
					t.Fatalf("tree returned non-matching id %d", id)
				}
			}
		}
	}
}

// TestRowHashChurn refills one RowHash across rounds and checks bucket
// contents against brute force: every true match present, candidates in row
// order, and collisions (if any) are a superset the caller may filter.
func TestRowHashChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var b Builder
	for round := 0; round < 20; round++ {
		n := rng.Intn(300) + 10
		keys := make([]value.Value, n)
		h := b.RowHash()
		for r := 0; r < n; r++ {
			keys[r] = value.Num(float64(rng.Intn(17)))
			if rng.Intn(5) == 0 {
				keys[r] = value.Str("team-" + string(rune('a'+rng.Intn(5))))
			}
			h.Insert(HashValue(KeySeed, keys[r]), value.ID(r+1), int32(r))
		}
		if h.Len() != n {
			t.Fatalf("len %d, want %d", h.Len(), n)
		}
		for probe := 0; probe < 40; probe++ {
			want := keys[rng.Intn(n)]
			ids, rows := h.Lookup(HashValue(KeySeed, want))
			if len(ids) != len(rows) {
				t.Fatalf("ids/rows length mismatch")
			}
			seen := map[value.ID]bool{}
			last := int32(-1)
			for i, r := range rows {
				if r <= last {
					t.Fatalf("bucket rows not in row order: %v", rows)
				}
				last = r
				seen[ids[i]] = true
			}
			for r := 0; r < n; r++ {
				if keys[r].Equal(want) && !seen[value.ID(r+1)] {
					t.Fatalf("match row %d (key %v) missing from bucket", r, want)
				}
			}
		}
	}
	// -0 and +0 compare equal and must share a bucket.
	if HashValue(KeySeed, value.Num(0)) != HashValue(KeySeed, value.Num(negZero())) {
		t.Fatal("-0 and +0 hash differently")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

// TestBuilderZeroAllocSteadyState pins the acceptance criterion: once slab
// sizes converge, rebuilding each index kind through its Builder allocates
// nothing.
func TestBuilderZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sim := &tableSim{}
	for i := 0; i < 500; i++ {
		sim.spawn(rng)
	}
	es := sim.entries()
	n := len(es)

	var tb Builder
	buildTree := func() {
		slab := tb.Entries(n)
		copy(slab, es)
		tb.BuildRangeTree(2, slab)
	}
	buildTree()
	buildTree()
	if a := testing.AllocsPerRun(20, buildTree); a > 0 {
		t.Errorf("range tree rebuild allocates %.1f/run in steady state", a)
	}

	var gb Builder
	buildGrid := func() {
		slab := gb.Entries(n)
		copy(slab, es)
		gb.BuildGrid(32, slab)
	}
	buildGrid()
	buildGrid()
	if a := testing.AllocsPerRun(20, buildGrid); a > 0 {
		t.Errorf("grid rebuild allocates %.1f/run in steady state", a)
	}

	var hb Builder
	buildHash := func() {
		h := hb.RowHash()
		for r := 0; r < n; r++ {
			h.Insert(HashValue(KeySeed, value.Num(float64(r%13))), value.ID(r+1), int32(r))
		}
	}
	buildHash()
	buildHash()
	if a := testing.AllocsPerRun(20, buildHash); a > 0 {
		t.Errorf("hash rebuild allocates %.1f/run in steady state", a)
	}
}

// TestGridSyncRowsMemberChurn drives SyncRows — the member-view-aware
// reconciliation the partitioned engine patches per-partition grids with —
// through random membership churn: each round perturbs the extent (moves,
// spawns, kills) AND re-draws the member subset (rows entering/leaving a
// partition's ownership interval), then checks the synced grid is
// bit-indistinguishable, candidate order included, from a fresh rebuild
// over exactly the current members.
func TestGridSyncRowsMemberChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	sim := &tableSim{}
	for i := 0; i < 300; i++ {
		sim.spawn(rng)
	}
	// Membership: rows whose x falls inside a sliding window.
	memberRows := func(lo, hi float64) []int32 {
		var rows []int32
		for r, ok := range sim.alive {
			if ok && sim.x[r] >= lo && sim.x[r] <= hi {
				rows = append(rows, int32(r))
			}
		}
		return rows
	}
	memberEntries := func(rows []int32) []Entry {
		out := make([]Entry, 0, len(rows))
		for _, r := range rows {
			out = append(out, Entry{ID: sim.ids[r], Row: r, Coords: []float64{sim.x[r], sim.y[r]}})
		}
		return out
	}

	var b Builder
	winLo, winHi := 50.0, 250.0
	rows := memberRows(winLo, winHi)
	g := b.BuildGrid(40, memberEntries(rows))

	checkAgainstFresh := func(round int, rows []int32) {
		t.Helper()
		var fb Builder
		fresh := fb.BuildGrid(g.Cell(), memberEntries(rows))
		if g.Len() != fresh.Len() {
			t.Fatalf("round %d: synced %d entries, fresh %d", round, g.Len(), fresh.Len())
		}
		for q := 0; q < 20; q++ {
			cx, cy := float64(rng.Intn(400)), float64(rng.Intn(400))
			w := float64(rng.Intn(90) + 1)
			lo, hi := []float64{cx - w, cy - w}, []float64{cx + w, cy + w}
			got := g.QueryRows(lo, hi, nil)
			want := fresh.QueryRows(lo, hi, nil)
			if len(got) != len(want) {
				t.Fatalf("round %d: synced %d rows, fresh %d", round, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round %d: candidate order diverged at %d: row %d vs %d", round, i, got[i], want[i])
				}
			}
		}
	}

	for round := 0; round < 40; round++ {
		for i := 0; i < 10; i++ {
			sim.move(rng)
		}
		for i := 0; i < 3; i++ {
			sim.kill(rng)
			sim.spawn(rng)
		}
		// Slide the ownership window so rows enter and leave membership —
		// including across "epochs" (larger jumps every few rounds).
		if round%5 == 4 {
			winLo += float64(rng.Intn(81) - 40)
		} else {
			winLo += float64(rng.Intn(11) - 5)
		}
		winHi = winLo + 200
		rows = memberRows(winLo, winHi)
		if dirty, ok := g.SyncRows(sim.x, sim.y, rows, sim.ids, len(sim.alive)*2+16); !ok {
			t.Fatalf("round %d: unbounded budget sync gave up (dirty %d)", round, dirty)
		}
		checkAgainstFresh(round, rows)
	}

	// The bail-out contract: a tiny budget must report failure once the
	// dirty count exceeds it.
	for i := 0; i < 50; i++ {
		sim.move(rng)
	}
	rows = memberRows(winLo-500, winHi+500)
	if _, ok := g.SyncRows(sim.x, sim.y, rows, sim.ids, 1); ok {
		t.Fatal("mass churn under a dirty budget of 1 must fail")
	}
	// And an untracked grid (not Builder-backed row tracking) refuses.
	plain := BuildGrid(40, memberEntries(rows))
	if _, ok := plain.SyncRows(sim.x, sim.y, rows, sim.ids, 1<<30); ok {
		t.Fatal("untracked grid must refuse SyncRows")
	}
}
