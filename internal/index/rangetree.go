// Package index provides the main-memory indexes used by the SGL query
// engine: a multi-dimensional orthogonal range tree (the paper's choice,
// §4.2, with Θ(n·log^{d−1} n) space), a uniform grid, a sorted 1-D index
// and a hash index for equi-joins.
//
// Because a large fraction of game state changes every tick (§4.1), the
// engine rebuilds spatial indexes per tick rather than maintaining them
// incrementally; builds are O(n log n) and allocation-conscious.
package index

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// Entry is one indexed point: an object id plus its coordinates.
type Entry struct {
	ID     value.ID
	Coords []float64
}

// RangeTree is a static d-dimensional orthogonal range tree. Dimension 0 is
// the primary tree; every canonical node carries an associated tree over
// the remaining dimensions, giving O(log^d n + k) queries at
// Θ(n·log^{d−1} n) space — the trade-off the paper calls out when sizing
// cluster memory.
type RangeTree struct {
	dims int
	n    int
	root *rtNode

	// storedEntries counts every point replica across all associated
	// structures, the quantity that realizes Θ(n·log^{d−1} n).
	storedEntries int
	nodes         int
}

type rtNode struct {
	key   float64 // split key in the node's dimension
	min   float64 // subtree coordinate range in the node's dimension
	max   float64
	left  *rtNode
	right *rtNode
	assoc *RangeTree // tree over remaining dimensions (nil at the last)
	// Leaf / last-dimension payload: entries sorted by the node's
	// dimension. Internal nodes at the last dimension keep nil pts.
	pts []Entry
}

const rtLeafSize = 16

// BuildRangeTree constructs a range tree over the entries. dims must be
// >= 1 and every entry must have at least dims coordinates. The input slice
// is not retained but is reordered.
func BuildRangeTree(dims int, entries []Entry) *RangeTree {
	if dims < 1 {
		panic("index: range tree needs dims >= 1")
	}
	t := &RangeTree{dims: dims, n: len(entries)}
	if len(entries) == 0 {
		return t
	}
	es := make([]Entry, len(entries))
	copy(es, entries)
	t.root = t.build(es, 0)
	return t
}

func (t *RangeTree) build(es []Entry, dim int) *rtNode {
	sort.Slice(es, func(i, j int) bool { return es[i].Coords[dim] < es[j].Coords[dim] })
	return t.buildSorted(es, dim)
}

func (t *RangeTree) buildSorted(es []Entry, dim int) *rtNode {
	t.nodes++
	n := &rtNode{
		min: es[0].Coords[dim],
		max: es[len(es)-1].Coords[dim],
	}
	last := dim == t.dims-1
	if len(es) <= rtLeafSize {
		n.pts = es
		t.storedEntries += len(es)
		n.key = es[len(es)/2].Coords[dim]
		if !last {
			// Leaves at non-final dimensions still answer the remaining
			// dimensions by brute force over <= rtLeafSize points.
		}
		return n
	}
	mid := len(es) / 2
	n.key = es[mid].Coords[dim]
	if !last {
		// The associated structure indexes this node's whole point set on
		// the remaining dimensions.
		sub := make([]Entry, len(es))
		copy(sub, es)
		n.assoc = &RangeTree{dims: t.dims}
		n.assoc.n = len(sub)
		n.assoc.root = n.assoc.build(sub, dim+1)
		t.storedEntries += n.assoc.storedEntries
		t.nodes += n.assoc.nodes
	}
	// At the last dimension points are stored only in leaf blocks, which
	// the leaf case above accounts for.
	n.left = t.buildSorted(es[:mid], dim)
	n.right = t.buildSorted(es[mid:], dim)
	return n
}

// Len returns the number of indexed points.
func (t *RangeTree) Len() int { return t.n }

// Dims returns the dimensionality.
func (t *RangeTree) Dims() int { return t.dims }

// StoredEntries returns the total number of point replicas stored across
// the primary and all associated structures — the space term the paper's
// Θ(n·log^{d−1} n) analysis counts.
func (t *RangeTree) StoredEntries() int { return t.storedEntries }

// EstimatedBytes approximates resident memory: each stored replica keeps an
// id plus dims coordinates; each node costs its header.
func (t *RangeTree) EstimatedBytes() int {
	const nodeHeader = 8 * 8 // key, min, max, 3 pointers, slice header parts
	return t.storedEntries*(8+8*t.dims) + t.nodes*nodeHeader
}

// Query appends to out the ids of all points inside the closed box
// [lo[i], hi[i]] for each dimension i, and returns the extended slice.
func (t *RangeTree) Query(lo, hi []float64, out []value.ID) []value.ID {
	if t.root == nil {
		return out
	}
	t.checkBox(lo, hi)
	return t.query(t.root, 0, lo, hi, out)
}

func (t *RangeTree) checkBox(lo, hi []float64) {
	if len(lo) != t.dims || len(hi) != t.dims {
		panic(fmt.Sprintf("index: query box dims %d/%d, tree dims %d", len(lo), len(hi), t.dims))
	}
}

func (t *RangeTree) query(n *rtNode, dim int, lo, hi []float64, out []value.ID) []value.ID {
	if n == nil || n.min > hi[dim] || n.max < lo[dim] {
		return out
	}
	if n.pts != nil {
		// Leaf (or last-dimension block): filter brute force over all dims
		// from dim onward; earlier dims were fixed by ancestors.
		for _, e := range n.pts {
			ok := true
			for d := dim; d < t.dims; d++ {
				c := e.Coords[d]
				if c < lo[d] || c > hi[d] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, e.ID)
			}
		}
		return out
	}
	if n.min >= lo[dim] && n.max <= hi[dim] {
		// Canonical node: the whole subtree satisfies this dimension.
		if dim == t.dims-1 {
			return t.collect(n, out)
		}
		return n.assoc.query(n.assoc.root, dim+1, lo, hi, out)
	}
	out = t.query(n.left, dim, lo, hi, out)
	out = t.query(n.right, dim, lo, hi, out)
	return out
}

func (t *RangeTree) collect(n *rtNode, out []value.ID) []value.ID {
	if n.pts != nil {
		for _, e := range n.pts {
			out = append(out, e.ID)
		}
		return out
	}
	out = t.collect(n.left, out)
	return t.collect(n.right, out)
}

// Count returns the number of points inside the closed box without
// materializing ids.
func (t *RangeTree) Count(lo, hi []float64) int {
	if t.root == nil {
		return 0
	}
	t.checkBox(lo, hi)
	return t.count(t.root, 0, lo, hi)
}

func (t *RangeTree) count(n *rtNode, dim int, lo, hi []float64) int {
	if n == nil || n.min > hi[dim] || n.max < lo[dim] {
		return 0
	}
	if n.pts != nil {
		c := 0
		for _, e := range n.pts {
			ok := true
			for d := dim; d < t.dims; d++ {
				v := e.Coords[d]
				if v < lo[d] || v > hi[d] {
					ok = false
					break
				}
			}
			if ok {
				c++
			}
		}
		return c
	}
	if n.min >= lo[dim] && n.max <= hi[dim] {
		if dim == t.dims-1 {
			return t.size(n)
		}
		return n.assoc.count(n.assoc.root, dim+1, lo, hi)
	}
	return t.count(n.left, dim, lo, hi) + t.count(n.right, dim, lo, hi)
}

func (t *RangeTree) size(n *rtNode) int {
	if n.pts != nil {
		return len(n.pts)
	}
	return t.size(n.left) + t.size(n.right)
}
