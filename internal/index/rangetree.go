// Package index provides the main-memory indexes used by the SGL query
// engine: a multi-dimensional orthogonal range tree (the paper's choice,
// §4.2, with Θ(n·log^{d−1} n) space), a uniform grid, a sorted 1-D index
// and a hash index for equi-joins.
//
// Because a large fraction of game state changes every tick (§4.1), the
// engine's default is to rebuild spatial indexes per tick rather than
// maintain them incrementally. Builds go through per-site Builder arenas so
// steady-state rebuilds allocate nothing; the Grid additionally supports
// churn-aware incremental maintenance (Sync) for regimes where only a small
// fraction of rows changed, and every index answers batch row probes
// (QueryRows/Lookup rows) for the batched join executor.
package index

import (
	"fmt"

	"repro/internal/value"
)

// Entry is one indexed point: an object id plus its coordinates. Row, when
// populated by the caller, is the physical table row backing the point; the
// batch probe APIs (QueryRows/LookupRows) hand candidate rows back directly
// so the executor can gather source columns without an id→row map lookup.
type Entry struct {
	ID     value.ID
	Row    int32
	Coords []float64
}

// RangeTree is a static d-dimensional orthogonal range tree. Dimension 0 is
// the primary tree; every canonical node carries an associated tree over
// the remaining dimensions, giving O(log^d n + k) queries at
// Θ(n·log^{d−1} n) space — the trade-off the paper calls out when sizing
// cluster memory.
type RangeTree struct {
	dims int
	n    int
	root *rtNode

	// storedEntries counts every point replica across all associated
	// structures, the quantity that realizes Θ(n·log^{d−1} n).
	storedEntries int
	nodes         int
}

type rtNode struct {
	key   float64 // split key in the node's dimension
	min   float64 // subtree coordinate range in the node's dimension
	max   float64
	left  *rtNode
	right *rtNode
	assoc *RangeTree // tree over remaining dimensions (nil at the last)
	// Leaf / last-dimension payload: entries sorted by the node's
	// dimension. Internal nodes at the last dimension keep nil pts.
	pts []Entry
}

const rtLeafSize = 16

// BuildRangeTree constructs a range tree over the entries. dims must be
// >= 1 and every entry must have at least dims coordinates. The input slice
// is not retained but is reordered.
func BuildRangeTree(dims int, entries []Entry) *RangeTree {
	es := make([]Entry, len(entries))
	copy(es, entries)
	return buildRangeTree(nil, dims, es)
}

// buildRangeTree builds over es in place, drawing trees, nodes and replica
// blocks from the arena when b is non-nil (see Builder).
func buildRangeTree(b *Builder, dims int, es []Entry) *RangeTree {
	if dims < 1 {
		panic("index: range tree needs dims >= 1")
	}
	var t *RangeTree
	if b != nil {
		t = b.allocTree()
	} else {
		t = new(RangeTree)
	}
	*t = RangeTree{dims: dims, n: len(es)}
	if len(es) == 0 {
		return t
	}
	t.root = t.build(b, es, 0)
	return t
}

func (t *RangeTree) build(b *Builder, es []Entry, dim int) *rtNode {
	sortEntries(es, dim)
	return t.buildSorted(b, es, dim)
}

func (t *RangeTree) buildSorted(b *Builder, es []Entry, dim int) *rtNode {
	t.nodes++
	var n *rtNode
	if b != nil {
		n = b.allocNode()
	} else {
		n = new(rtNode)
	}
	// Arena nodes may carry a previous build; reset every field.
	*n = rtNode{
		min: es[0].Coords[dim],
		max: es[len(es)-1].Coords[dim],
	}
	last := dim == t.dims-1
	if len(es) <= rtLeafSize {
		n.pts = es
		t.storedEntries += len(es)
		n.key = es[len(es)/2].Coords[dim]
		if !last {
			// Leaves at non-final dimensions still answer the remaining
			// dimensions by brute force over <= rtLeafSize points.
		}
		return n
	}
	mid := len(es) / 2
	n.key = es[mid].Coords[dim]
	if !last {
		// The associated structure indexes this node's whole point set on
		// the remaining dimensions.
		var sub []Entry
		if b != nil {
			sub = b.allocReps(len(es))
		} else {
			sub = make([]Entry, len(es))
		}
		copy(sub, es)
		var a *RangeTree
		if b != nil {
			a = b.allocTree()
		} else {
			a = new(RangeTree)
		}
		*a = RangeTree{dims: t.dims, n: len(sub)}
		a.root = a.build(b, sub, dim+1)
		n.assoc = a
		t.storedEntries += a.storedEntries
		t.nodes += a.nodes
	}
	// At the last dimension points are stored only in leaf blocks, which
	// the leaf case above accounts for.
	n.left = t.buildSorted(b, es[:mid], dim)
	n.right = t.buildSorted(b, es[mid:], dim)
	return n
}

// sortEntries orders es by Coords[dim] ascending. It is a hand-rolled
// median-of-three quicksort with an insertion-sort tail so per-tick index
// builds stay allocation-free (sort.Slice allocates its closure and swapper
// at every associated-structure sort).
func sortEntries(es []Entry, dim int) {
	for len(es) > 12 {
		// Median-of-three pivot moved to the front: Hoare partition with
		// the pivot at index 0 always makes progress.
		m := len(es) / 2
		hi := len(es) - 1
		if es[m].Coords[dim] < es[0].Coords[dim] {
			es[m], es[0] = es[0], es[m]
		}
		if es[hi].Coords[dim] < es[0].Coords[dim] {
			es[hi], es[0] = es[0], es[hi]
		}
		if es[hi].Coords[dim] < es[m].Coords[dim] {
			es[hi], es[m] = es[m], es[hi]
		}
		es[0], es[m] = es[m], es[0]
		p := es[0].Coords[dim]
		i, j := -1, len(es)
		for {
			for {
				i++
				if !(es[i].Coords[dim] < p) {
					break
				}
			}
			for {
				j--
				if !(es[j].Coords[dim] > p) {
					break
				}
			}
			if i >= j {
				break
			}
			es[i], es[j] = es[j], es[i]
		}
		// Recurse into the smaller half, iterate on the larger.
		if j+1 <= len(es)-(j+1) {
			sortEntries(es[:j+1], dim)
			es = es[j+1:]
		} else {
			sortEntries(es[j+1:], dim)
			es = es[:j+1]
		}
	}
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && es[j].Coords[dim] > e.Coords[dim] {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}

// Len returns the number of indexed points.
func (t *RangeTree) Len() int { return t.n }

// Dims returns the dimensionality.
func (t *RangeTree) Dims() int { return t.dims }

// StoredEntries returns the total number of point replicas stored across
// the primary and all associated structures — the space term the paper's
// Θ(n·log^{d−1} n) analysis counts.
func (t *RangeTree) StoredEntries() int { return t.storedEntries }

// EstimatedBytes approximates resident memory: each stored replica keeps an
// id plus dims coordinates; each node costs its header.
func (t *RangeTree) EstimatedBytes() int {
	const nodeHeader = 8 * 8 // key, min, max, 3 pointers, slice header parts
	return t.storedEntries*(8+8*t.dims) + t.nodes*nodeHeader
}

// Query appends to out the ids of all points inside the closed box
// [lo[i], hi[i]] for each dimension i, and returns the extended slice.
func (t *RangeTree) Query(lo, hi []float64, out []value.ID) []value.ID {
	if t.root == nil {
		return out
	}
	t.checkBox(lo, hi)
	return t.query(t.root, 0, lo, hi, out)
}

func (t *RangeTree) checkBox(lo, hi []float64) {
	if len(lo) != t.dims || len(hi) != t.dims {
		panic(fmt.Sprintf("index: query box dims %d/%d, tree dims %d", len(lo), len(hi), t.dims))
	}
}

func (t *RangeTree) query(n *rtNode, dim int, lo, hi []float64, out []value.ID) []value.ID {
	if n == nil || n.min > hi[dim] || n.max < lo[dim] {
		return out
	}
	if n.pts != nil {
		// Leaf (or last-dimension block): filter brute force over all dims
		// from dim onward; earlier dims were fixed by ancestors.
		for _, e := range n.pts {
			ok := true
			for d := dim; d < t.dims; d++ {
				c := e.Coords[d]
				if c < lo[d] || c > hi[d] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, e.ID)
			}
		}
		return out
	}
	if n.min >= lo[dim] && n.max <= hi[dim] {
		// Canonical node: the whole subtree satisfies this dimension.
		if dim == t.dims-1 {
			return t.collect(n, out)
		}
		return n.assoc.query(n.assoc.root, dim+1, lo, hi, out)
	}
	out = t.query(n.left, dim, lo, hi, out)
	out = t.query(n.right, dim, lo, hi, out)
	return out
}

func (t *RangeTree) collect(n *rtNode, out []value.ID) []value.ID {
	if n.pts != nil {
		for _, e := range n.pts {
			out = append(out, e.ID)
		}
		return out
	}
	out = t.collect(n.left, out)
	return t.collect(n.right, out)
}

// QueryRows is Query returning physical table rows instead of ids, in the
// identical candidate order — the batch-gather probe of the join executor.
// It is meaningful only for entries built with Row populated.
func (t *RangeTree) QueryRows(lo, hi []float64, out []int32) []int32 {
	if t.root == nil {
		return out
	}
	t.checkBox(lo, hi)
	return t.queryRows(t.root, 0, lo, hi, out)
}

func (t *RangeTree) queryRows(n *rtNode, dim int, lo, hi []float64, out []int32) []int32 {
	if n == nil || n.min > hi[dim] || n.max < lo[dim] {
		return out
	}
	if n.pts != nil {
		for _, e := range n.pts {
			ok := true
			for d := dim; d < t.dims; d++ {
				c := e.Coords[d]
				if c < lo[d] || c > hi[d] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, e.Row)
			}
		}
		return out
	}
	if n.min >= lo[dim] && n.max <= hi[dim] {
		if dim == t.dims-1 {
			return t.collectRows(n, out)
		}
		return n.assoc.queryRows(n.assoc.root, dim+1, lo, hi, out)
	}
	out = t.queryRows(n.left, dim, lo, hi, out)
	out = t.queryRows(n.right, dim, lo, hi, out)
	return out
}

func (t *RangeTree) collectRows(n *rtNode, out []int32) []int32 {
	if n.pts != nil {
		for _, e := range n.pts {
			out = append(out, e.Row)
		}
		return out
	}
	out = t.collectRows(n.left, out)
	return t.collectRows(n.right, out)
}

// Count returns the number of points inside the closed box without
// materializing ids.
func (t *RangeTree) Count(lo, hi []float64) int {
	if t.root == nil {
		return 0
	}
	t.checkBox(lo, hi)
	return t.count(t.root, 0, lo, hi)
}

func (t *RangeTree) count(n *rtNode, dim int, lo, hi []float64) int {
	if n == nil || n.min > hi[dim] || n.max < lo[dim] {
		return 0
	}
	if n.pts != nil {
		c := 0
		for _, e := range n.pts {
			ok := true
			for d := dim; d < t.dims; d++ {
				v := e.Coords[d]
				if v < lo[d] || v > hi[d] {
					ok = false
					break
				}
			}
			if ok {
				c++
			}
		}
		return c
	}
	if n.min >= lo[dim] && n.max <= hi[dim] {
		if dim == t.dims-1 {
			return t.size(n)
		}
		return n.assoc.count(n.assoc.root, dim+1, lo, hi)
	}
	return t.count(n.left, dim, lo, hi) + t.count(n.right, dim, lo, hi)
}

func (t *RangeTree) size(n *rtNode) int {
	if n.pts != nil {
		return len(n.pts)
	}
	return t.size(n.left) + t.size(n.right)
}
