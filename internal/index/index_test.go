package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func randEntries(n, dims int, seed int64, span float64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, n)
	for i := range out {
		c := make([]float64, dims)
		for d := range c {
			c[d] = rng.Float64() * span
		}
		out[i] = Entry{ID: value.ID(i + 1), Coords: c}
	}
	return out
}

func naiveQuery(es []Entry, lo, hi []float64) []value.ID {
	var out []value.ID
	for _, e := range es {
		ok := true
		for d := range lo {
			if e.Coords[d] < lo[d] || e.Coords[d] > hi[d] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, e.ID)
		}
	}
	return out
}

func sortIDs(ids []value.ID) []value.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []value.ID) bool {
	if len(a) != len(b) {
		return false
	}
	a, b = sortIDs(a), sortIDs(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRangeTreeMatchesNaive(t *testing.T) {
	for _, dims := range []int{1, 2, 3} {
		es := randEntries(500, dims, int64(dims)*7, 100)
		tree := BuildRangeTree(dims, es)
		if tree.Len() != 500 {
			t.Fatalf("d=%d: Len = %d", dims, tree.Len())
		}
		rng := rand.New(rand.NewSource(99))
		for q := 0; q < 50; q++ {
			lo := make([]float64, dims)
			hi := make([]float64, dims)
			for d := 0; d < dims; d++ {
				a, b := rng.Float64()*100, rng.Float64()*100
				lo[d], hi[d] = math.Min(a, b), math.Max(a, b)
			}
			want := naiveQuery(es, lo, hi)
			got := tree.Query(lo, hi, nil)
			if !equalIDs(got, want) {
				t.Fatalf("d=%d query %v..%v: got %d ids, want %d", dims, lo, hi, len(got), len(want))
			}
			if c := tree.Count(lo, hi); c != len(want) {
				t.Fatalf("d=%d Count = %d, want %d", dims, c, len(want))
			}
		}
	}
}

func TestRangeTreeUnboundedBox(t *testing.T) {
	es := randEntries(200, 2, 5, 50)
	tree := BuildRangeTree(2, es)
	inf := math.Inf(1)
	got := tree.Query([]float64{math.Inf(-1), math.Inf(-1)}, []float64{inf, inf}, nil)
	if len(got) != 200 {
		t.Fatalf("unbounded query returned %d of 200", len(got))
	}
	// Half-open on one side.
	got = tree.Query([]float64{25, math.Inf(-1)}, []float64{inf, inf}, nil)
	want := naiveQuery(es, []float64{25, math.Inf(-1)}, []float64{inf, inf})
	if !equalIDs(got, want) {
		t.Fatalf("half-open: got %d, want %d", len(got), len(want))
	}
}

func TestRangeTreeEmpty(t *testing.T) {
	tree := BuildRangeTree(2, nil)
	if got := tree.Query([]float64{0, 0}, []float64{1, 1}, nil); len(got) != 0 {
		t.Error("empty tree must return nothing")
	}
	if tree.Count([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Error("empty tree count")
	}
}

func TestRangeTreeDuplicateCoords(t *testing.T) {
	es := make([]Entry, 64)
	for i := range es {
		es[i] = Entry{ID: value.ID(i + 1), Coords: []float64{5, 5}}
	}
	tree := BuildRangeTree(2, es)
	got := tree.Query([]float64{5, 5}, []float64{5, 5}, nil)
	if len(got) != 64 {
		t.Fatalf("duplicate coords: got %d of 64", len(got))
	}
	if got := tree.Query([]float64{6, 6}, []float64{7, 7}, nil); len(got) != 0 {
		t.Error("miss query must be empty")
	}
}

// TestRangeTreeSpaceGrowth pins the Θ(n·log^{d−1} n) storage behaviour the
// paper's §4.2 memory analysis depends on: stored replicas per point grow
// roughly with log^{d−1} n.
func TestRangeTreeSpaceGrowth(t *testing.T) {
	perPoint := func(n, dims int) float64 {
		tree := BuildRangeTree(dims, randEntries(n, dims, 1, 1000))
		return float64(tree.StoredEntries()) / float64(n)
	}
	// d=1: exactly one copy per point.
	if got := perPoint(4096, 1); got != 1 {
		t.Errorf("d=1 replicas per point = %v, want 1", got)
	}
	// d=2: replicas grow with log n.
	small, big := perPoint(1024, 2), perPoint(16384, 2)
	if big <= small {
		t.Errorf("d=2 replicas must grow with n: %v -> %v", small, big)
	}
	if big > 3*small {
		t.Errorf("d=2 replica growth too fast: %v -> %v", small, big)
	}
	// d=3 stores more than d=2 at the same n.
	if d3 := perPoint(4096, 3); d3 <= perPoint(4096, 2) {
		t.Errorf("d=3 must store more replicas than d=2, got %v", d3)
	}
	if BuildRangeTree(2, randEntries(1000, 2, 3, 10)).EstimatedBytes() <= 0 {
		t.Error("EstimatedBytes must be positive")
	}
}

func TestGridMatchesNaive(t *testing.T) {
	es := randEntries(400, 2, 11, 200)
	for _, cell := range []float64{5, 32, 500} {
		g := BuildGrid(cell, es)
		rng := rand.New(rand.NewSource(4))
		for q := 0; q < 40; q++ {
			a, b := rng.Float64()*200, rng.Float64()*200
			c, d := rng.Float64()*200, rng.Float64()*200
			lo := []float64{math.Min(a, b), math.Min(c, d)}
			hi := []float64{math.Max(a, b), math.Max(c, d)}
			want := naiveQuery(es, lo, hi)
			got := g.Query(lo, hi, nil)
			if !equalIDs(got, want) {
				t.Fatalf("cell %v: got %d, want %d", cell, len(got), len(want))
			}
			if g.Count(lo, hi) != len(want) {
				t.Fatalf("cell %v: Count mismatch", cell)
			}
		}
		if g.Len() != 400 || g.Cells() == 0 || g.EstimatedBytes() <= 0 {
			t.Error("grid accounting")
		}
	}
}

func TestGridNegativeCoords(t *testing.T) {
	es := []Entry{
		{ID: 1, Coords: []float64{-10, -10}},
		{ID: 2, Coords: []float64{-0.5, 0.5}},
		{ID: 3, Coords: []float64{10, 10}},
	}
	g := BuildGrid(4, es)
	got := g.Query([]float64{-11, -11}, []float64{0, 1}, nil)
	if !equalIDs(got, []value.ID{1, 2}) {
		t.Fatalf("negative coords query = %v", got)
	}
}

func TestHashIndex(t *testing.T) {
	keys := []value.Value{value.Num(1), value.Num(2), value.Num(1), value.Str("a")}
	ids := []value.ID{10, 20, 30, 40}
	h := NewRowHash()
	for i, k := range keys {
		h.Insert(HashValue(KeySeed, k), ids[i], int32(i))
	}
	if got, rows := h.Lookup(HashValue(KeySeed, value.Num(1))); !equalIDs(append([]value.ID(nil), got...), []value.ID{10, 30}) || len(rows) != 2 || rows[0] != 0 || rows[1] != 2 {
		t.Errorf("Lookup(1) = %v / %v", got, rows)
	}
	if got, _ := h.Lookup(HashValue(KeySeed, value.Str("a"))); len(got) != 1 || got[0] != 40 {
		t.Errorf("Lookup(a) = %v", got)
	}
	if got, _ := h.Lookup(HashValue(KeySeed, value.Num(9))); len(got) != 0 {
		t.Errorf("Lookup(miss) = %v", got)
	}
	if h.Len() != 4 {
		t.Error("Len")
	}
}

func TestSortedIndex(t *testing.T) {
	keys := []float64{5, 1, 3, 3, 9}
	ids := []value.ID{50, 10, 30, 31, 90}
	s := BuildSorted(keys, ids)
	if got := s.Range(2, 5, nil); !equalIDs(got, []value.ID{30, 31, 50}) {
		t.Errorf("Range = %v", got)
	}
	if got := s.CountRange(2, 5); got != 3 {
		t.Errorf("CountRange = %d", got)
	}
	if got := s.CountRange(10, 20); got != 0 {
		t.Errorf("CountRange miss = %d", got)
	}
	if got := s.Range(3, 3, nil); len(got) != 2 {
		t.Errorf("point range = %v", got)
	}
}

// Property: tree and grid agree with the naive scan on random data and
// random boxes — the core correctness invariant behind every accum join.
func TestIndexEquivalenceProperty(t *testing.T) {
	f := func(seed int64, n uint8, qx, qy, qw, qh float64) bool {
		m := int(n)%200 + 10
		es := randEntries(m, 2, seed, 100)
		lo := []float64{math.Mod(math.Abs(qx), 100), math.Mod(math.Abs(qy), 100)}
		hi := []float64{lo[0] + math.Mod(math.Abs(qw), 60), lo[1] + math.Mod(math.Abs(qh), 60)}
		want := naiveQuery(es, lo, hi)
		tree := BuildRangeTree(2, es).Query(lo, hi, nil)
		grid := BuildGrid(13, es).Query(lo, hi, nil)
		return equalIDs(tree, append([]value.ID(nil), want...)) &&
			equalIDs(grid, append([]value.ID(nil), want...))
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSortRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 13, 100, 5000} {
		rows := make([]int32, n)
		for i := range rows {
			rows[i] = int32(rng.Intn(n*2 + 1))
		}
		want := append([]int32(nil), rows...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		SortRows(rows)
		for i := range rows {
			if rows[i] != want[i] {
				t.Fatalf("n=%d: rows[%d]=%d want %d", n, i, rows[i], want[i])
			}
		}
	}
}
