package index

import (
	"math"

	"repro/internal/value"
)

// Grid is a uniform spatial hash grid over 2-D points. It is the cheap
// alternative physical plan the adaptive optimizer (§4.1) weighs against
// the range tree: O(n) build, queries proportional to the cells touched —
// excellent for clustered "combat" regimes, poor for huge query boxes.
type Grid struct {
	cell  float64
	cells map[gridKey][]Entry
	n     int
}

type gridKey struct{ x, y int32 }

// BuildGrid buckets entries (first two coordinates) into square cells of
// the given size. cellSize must be positive.
func BuildGrid(cellSize float64, entries []Entry) *Grid {
	if cellSize <= 0 {
		panic("index: grid cell size must be positive")
	}
	g := &Grid{
		cell:  cellSize,
		cells: make(map[gridKey][]Entry, len(entries)/4+1),
		n:     len(entries),
	}
	for _, e := range entries {
		k := g.keyOf(e.Coords[0], e.Coords[1])
		g.cells[k] = append(g.cells[k], e)
	}
	return g
}

func (g *Grid) keyOf(x, y float64) gridKey {
	return gridKey{int32(math.Floor(x / g.cell)), int32(math.Floor(y / g.cell))}
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return g.n }

// Cells returns the number of occupied cells.
func (g *Grid) Cells() int { return len(g.cells) }

// Query appends the ids of points in the closed box [lo0,hi0]×[lo1,hi1].
func (g *Grid) Query(lo, hi []float64, out []value.ID) []value.ID {
	k0 := g.keyOf(lo[0], lo[1])
	k1 := g.keyOf(hi[0], hi[1])
	for cx := k0.x; cx <= k1.x; cx++ {
		for cy := k0.y; cy <= k1.y; cy++ {
			for _, e := range g.cells[gridKey{cx, cy}] {
				x, y := e.Coords[0], e.Coords[1]
				if x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] {
					out = append(out, e.ID)
				}
			}
		}
	}
	return out
}

// Count returns the number of points in the closed box.
func (g *Grid) Count(lo, hi []float64) int {
	n := 0
	k0 := g.keyOf(lo[0], lo[1])
	k1 := g.keyOf(hi[0], hi[1])
	for cx := k0.x; cx <= k1.x; cx++ {
		for cy := k0.y; cy <= k1.y; cy++ {
			for _, e := range g.cells[gridKey{cx, cy}] {
				x, y := e.Coords[0], e.Coords[1]
				if x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] {
					n++
				}
			}
		}
	}
	return n
}

// EstimatedBytes approximates resident memory.
func (g *Grid) EstimatedBytes() int {
	const entrySize = 8 + 2*8
	const cellOverhead = 48
	return g.n*entrySize + len(g.cells)*cellOverhead
}
