package index

import (
	"math"
	"sort"

	"repro/internal/value"
)

// Grid is a uniform spatial hash grid over 2-D points. It is the cheap
// alternative physical plan the adaptive optimizer (§4.1) weighs against
// the range tree: O(n) build, queries proportional to the cells touched —
// excellent for clustered "combat" regimes, poor for huge query boxes.
//
// Grids built through a Builder additionally track which physical table row
// backs each point, which enables both the batch row probe (QueryRows) and
// churn-aware incremental maintenance (Sync): when only a small fraction of
// rows moved, spawned or died since the last build, reconciling the touched
// cells beats rebuilding. Cell entry lists are kept sorted by row, so an
// incrementally maintained grid is indistinguishable — including candidate
// order — from a fresh rebuild of the same data.
type Grid struct {
	cell  float64
	cells map[gridKey]*gridCell
	n     int

	// Row-tracking state for Sync, populated only by Builder-backed builds.
	track   bool
	present []bool
	prevX   []float64
	prevY   []float64
	prevID  []value.ID
}

type gridKey struct{ x, y int32 }

type gridCell struct{ es []gridEntry }

// gridEntry stores coordinates inline: one cache line covers four entries
// and incremental inserts need no backing coordinate slab.
type gridEntry struct {
	id   value.ID
	row  int32
	x, y float64
}

// BuildGrid buckets entries (first two coordinates) into square cells of
// the given size. cellSize must be positive.
func BuildGrid(cellSize float64, entries []Entry) *Grid {
	g := &Grid{cells: make(map[gridKey]*gridCell, len(entries)/4+1)}
	g.rebuild(cellSize, entries)
	return g
}

func newTrackedGrid() *Grid {
	return &Grid{cells: make(map[gridKey]*gridCell), track: true}
}

// rebuild refills the grid in entry order, reusing cells and their slices.
// Cells that stayed empty through the previous fill are dropped once they
// outnumber live ones, so roaming entities cannot grow the cell table
// without bound; with stable occupancy nothing is freed and rebuilds stay
// allocation-free.
func (g *Grid) rebuild(cellSize float64, entries []Entry) {
	if cellSize <= 0 {
		panic("index: grid cell size must be positive")
	}
	live := 0
	for _, c := range g.cells { //sglvet:allow maprange: occupancy count only
		if len(c.es) > 0 {
			live++
		}
	}
	if len(g.cells) > 2*live+16 {
		for k, c := range g.cells { //sglvet:allow maprange: keyed deletion of empties, order-free
			if len(c.es) == 0 {
				delete(g.cells, k)
			}
		}
	}
	g.cell = cellSize
	g.n = 0
	for _, c := range g.cells { //sglvet:allow maprange: independent per-cell resets, order-free
		c.es = c.es[:0]
	}
	for i := range g.present {
		g.present[i] = false
	}
	for _, e := range entries {
		x, y := e.Coords[0], e.Coords[1]
		k := g.keyOf(x, y)
		c := g.cells[k]
		if c == nil {
			c = &gridCell{}
			g.cells[k] = c
		}
		c.es = append(c.es, gridEntry{id: e.ID, row: e.Row, x: x, y: y})
		g.n++
		if g.track {
			g.trackRow(e.Row, e.ID, x, y)
		}
	}
}

func (g *Grid) trackRow(row int32, id value.ID, x, y float64) {
	g.ensureRow(row)
	g.present[row] = true
	g.prevX[row], g.prevY[row] = x, y
	g.prevID[row] = id
}

func (g *Grid) ensureRow(row int32) {
	for int(row) >= len(g.present) {
		g.present = append(g.present, false)
		g.prevX = append(g.prevX, 0)
		g.prevY = append(g.prevY, 0)
		g.prevID = append(g.prevID, 0)
	}
}

// Sync incrementally reconciles a Builder-built grid against the current
// coordinate columns, alive mask and row ids: rows that spawned, died or
// moved since the last build/sync are fixed up in place. It gives up once
// more than maxDirty rows changed (returning ok=false; the grid is then
// partially updated and must be rebuilt). Entry order within each cell stays
// sorted by row, so a synced grid answers queries identically to a fresh
// rebuild.
func (g *Grid) Sync(x, y []float64, alive []bool, ids []value.ID, maxDirty int) (dirty int, ok bool) {
	if !g.track {
		return 0, false
	}
	rows := len(alive)
	if len(g.present) > rows {
		rows = len(g.present)
	}
	for r := 0; r < rows; r++ {
		was := r < len(g.present) && g.present[r]
		is := r < len(alive) && alive[r]
		if !was && !is {
			continue
		}
		if was && is && g.prevX[r] == x[r] && g.prevY[r] == y[r] && g.prevID[r] == ids[r] {
			continue
		}
		dirty++
		if dirty > maxDirty {
			return dirty, false
		}
		if was {
			g.remove(int32(r))
		}
		if is {
			g.insertSorted(ids[r], int32(r), x[r], y[r])
		}
	}
	return dirty, true
}

// SyncRows is Sync for member views: it reconciles the grid against a
// sorted list of member physical rows (the engine's partition-local
// owned+ghost views) instead of the whole alive mask. Rows that joined the
// membership, left it, moved or changed identity since the last build/sync
// are fixed up in place, under the same maxDirty bail-out; a synced grid is
// bit-indistinguishable — candidate order included — from a fresh rebuild
// over exactly those member rows. This is what lets partitioned execution
// patch per-partition grids across ticks (and across layout epochs, when
// ownership intervals barely moved) instead of rebuilding them.
func (g *Grid) SyncRows(x, y []float64, rows []int32, ids []value.ID, maxDirty int) (dirty int, ok bool) {
	if !g.track {
		return 0, false
	}
	n := len(g.present)
	if k := len(rows); k > 0 && int(rows[k-1])+1 > n {
		n = int(rows[k-1]) + 1
	}
	k := 0
	for r := 0; r < n; r++ {
		is := k < len(rows) && int(rows[k]) == r
		if is {
			k++
		}
		was := r < len(g.present) && g.present[r]
		if !was && !is {
			continue
		}
		if was && is && g.prevX[r] == x[r] && g.prevY[r] == y[r] && g.prevID[r] == ids[r] {
			continue
		}
		dirty++
		if dirty > maxDirty {
			return dirty, false
		}
		if was {
			g.remove(int32(r))
		}
		if is {
			g.insertSorted(ids[r], int32(r), x[r], y[r])
		}
	}
	return dirty, true
}

func (g *Grid) remove(row int32) {
	k := g.keyOf(g.prevX[row], g.prevY[row])
	c := g.cells[k]
	if c != nil {
		for i := range c.es {
			if c.es[i].row == row {
				c.es = append(c.es[:i], c.es[i+1:]...)
				g.n--
				break
			}
		}
	}
	g.present[row] = false
}

func (g *Grid) insertSorted(id value.ID, row int32, x, y float64) {
	k := g.keyOf(x, y)
	c := g.cells[k]
	if c == nil {
		c = &gridCell{}
		g.cells[k] = c
	}
	i := sort.Search(len(c.es), func(i int) bool { return c.es[i].row >= row })
	c.es = append(c.es, gridEntry{})
	copy(c.es[i+1:], c.es[i:])
	c.es[i] = gridEntry{id: id, row: row, x: x, y: y}
	g.n++
	g.trackRow(row, id, x, y)
}

func (g *Grid) keyOf(x, y float64) gridKey {
	return gridKey{int32(math.Floor(x / g.cell)), int32(math.Floor(y / g.cell))}
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return g.n }

// Cell returns the configured cell size.
func (g *Grid) Cell() float64 { return g.cell }

// Cells returns the number of occupied cells.
func (g *Grid) Cells() int {
	n := 0
	for _, c := range g.cells { //sglvet:allow maprange: occupancy count only
		if len(c.es) > 0 {
			n++
		}
	}
	return n
}

// Query appends the ids of points in the closed box [lo0,hi0]×[lo1,hi1].
func (g *Grid) Query(lo, hi []float64, out []value.ID) []value.ID {
	k0 := g.keyOf(lo[0], lo[1])
	k1 := g.keyOf(hi[0], hi[1])
	for cx := k0.x; cx <= k1.x; cx++ {
		for cy := k0.y; cy <= k1.y; cy++ {
			c := g.cells[gridKey{cx, cy}]
			if c == nil {
				continue
			}
			for _, e := range c.es {
				if e.x >= lo[0] && e.x <= hi[0] && e.y >= lo[1] && e.y <= hi[1] {
					out = append(out, e.id)
				}
			}
		}
	}
	return out
}

// QueryRows is Query returning physical table rows, in identical candidate
// order. Meaningful only for Builder-backed grids (entries built with Row).
func (g *Grid) QueryRows(lo, hi []float64, out []int32) []int32 {
	k0 := g.keyOf(lo[0], lo[1])
	k1 := g.keyOf(hi[0], hi[1])
	for cx := k0.x; cx <= k1.x; cx++ {
		for cy := k0.y; cy <= k1.y; cy++ {
			c := g.cells[gridKey{cx, cy}]
			if c == nil {
				continue
			}
			for _, e := range c.es {
				if e.x >= lo[0] && e.x <= hi[0] && e.y >= lo[1] && e.y <= hi[1] {
					out = append(out, e.row)
				}
			}
		}
	}
	return out
}

// Count returns the number of points in the closed box.
func (g *Grid) Count(lo, hi []float64) int {
	n := 0
	k0 := g.keyOf(lo[0], lo[1])
	k1 := g.keyOf(hi[0], hi[1])
	for cx := k0.x; cx <= k1.x; cx++ {
		for cy := k0.y; cy <= k1.y; cy++ {
			c := g.cells[gridKey{cx, cy}]
			if c == nil {
				continue
			}
			for _, e := range c.es {
				if e.x >= lo[0] && e.x <= hi[0] && e.y >= lo[1] && e.y <= hi[1] {
					n++
				}
			}
		}
	}
	return n
}

// EstimatedBytes approximates resident memory.
func (g *Grid) EstimatedBytes() int {
	const entrySize = 8 + 4 + 2*8
	const cellOverhead = 64
	return g.n*entrySize + len(g.cells)*cellOverhead
}
