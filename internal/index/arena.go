package index

import "sync"

// Builder is a per-site build arena. The engine rebuilds accum-join indexes
// every tick (§4.1: a large fraction of game state changes per tick), which
// with naive construction means one fresh allocation storm per site per
// tick. A Builder retains everything a build needs — the entry/coordinate
// input slabs, the range tree's node, header and replica slabs, the grid's
// cell table and the hash index's buckets — so that once slab sizes converge
// (after the first tick or two of a stable regime) rebuilding an index
// allocates nothing at all.
//
// A Builder is not safe for concurrent use, and the indexes it returns alias
// its memory: a tree, grid or hash obtained from a Builder is valid only
// until that Builder's next build of the same kind. When builders are pooled
// across worlds the alias can also be invalidated by *another* holder's
// build; Gen distinguishes the two cases — every build bumps the generation,
// so an index is valid exactly while (builder, generation) both match what
// the holder recorded when it built.
type Builder struct {
	gen uint64

	entries []Entry
	coords  []float64

	// Range-tree slabs. Demand is measured per build; slabs regrow to the
	// previous build's demand up front, so overflow allocations happen only
	// while the working set is still growing.
	trees     []RangeTree
	nodes     []rtNode
	reps      []Entry
	treeN     int
	nodeN     int
	repN      int
	needTrees int
	needNodes int
	needReps  int

	grid *Grid
	hash *RowHash
}

// Gen returns the builder's build generation. It increments on every
// BuildRangeTree/BuildGrid/RowHash call (incremental Sync of an existing
// grid keeps the generation: contents still belong to the same build
// owner), so a holder that recorded (builder, gen) at build time can detect
// that a pooled builder has since been rebuilt by someone else.
func (b *Builder) Gen() uint64 { return b.gen }

// BuilderPool is a free list of build arenas shared by many worlds. Checking
// a builder out per tick instead of owning one per site keeps N idle worlds
// from pinning N copies of the slab working set; the generation counter
// (Gen) keeps reuse of the indexes built from pooled builders sound.
type BuilderPool struct {
	mu   sync.Mutex
	free []*Builder
}

// Get returns a builder from the pool, or a fresh one. LIFO order maximizes
// the chance a world gets back the builder (and therefore the still-valid
// indexes) it used last tick.
func (p *BuilderPool) Get() *Builder {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return new(Builder)
}

// Put returns a builder to the pool.
func (p *BuilderPool) Put(b *Builder) {
	if b == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// Entries returns the builder's reusable entry slab resized to n.
func (b *Builder) Entries(n int) []Entry {
	if cap(b.entries) < n {
		b.entries = make([]Entry, n)
	}
	b.entries = b.entries[:n]
	return b.entries
}

// Coords returns the builder's reusable coordinate slab resized to n.
func (b *Builder) Coords(n int) []float64 {
	if cap(b.coords) < n {
		b.coords = make([]float64, n)
	}
	return b.coords[:n]
}

// BuildRangeTree builds a range tree over entries using the retained slabs.
// The input slice is reordered in place (callers normally pass the slab from
// Entries), and the returned tree aliases builder memory: it is valid only
// until the next BuildRangeTree on this builder.
func (b *Builder) BuildRangeTree(dims int, entries []Entry) *RangeTree {
	if len(b.trees) < b.needTrees {
		b.trees = make([]RangeTree, b.needTrees)
	}
	if len(b.nodes) < b.needNodes {
		b.nodes = make([]rtNode, b.needNodes)
	}
	if len(b.reps) < b.needReps {
		b.reps = make([]Entry, b.needReps)
	}
	b.treeN, b.nodeN, b.repN = 0, 0, 0
	b.needTrees, b.needNodes, b.needReps = 0, 0, 0
	b.gen++
	return buildRangeTree(b, dims, entries)
}

// BuildGrid builds (or rebuilds) the builder's retained grid. Cell slices
// and the row-tracking arrays are reused; only brand-new cells allocate. The
// returned grid supports Sync for incremental maintenance and stays owned by
// the builder.
func (b *Builder) BuildGrid(cellSize float64, entries []Entry) *Grid {
	if b.grid == nil {
		b.grid = newTrackedGrid()
	}
	b.gen++
	b.grid.rebuild(cellSize, entries)
	return b.grid
}

// Grid returns the builder's retained grid from the last BuildGrid, or nil.
func (b *Builder) Grid() *Grid { return b.grid }

// RowHash returns the builder's retained hash index, emptied for refill via
// Insert. Buckets and their slices are reused across builds.
func (b *Builder) RowHash() *RowHash {
	if b.hash == nil {
		b.hash = NewRowHash()
	}
	b.gen++
	b.hash.Reset()
	return b.hash
}

// allocTree hands out a tree header, from the slab when one is available.
func (b *Builder) allocTree() *RangeTree {
	b.needTrees++
	if b.treeN < len(b.trees) {
		t := &b.trees[b.treeN]
		b.treeN++
		return t
	}
	return new(RangeTree)
}

// allocNode hands out a node, from the slab when one is available.
func (b *Builder) allocNode() *rtNode {
	b.needNodes++
	if b.nodeN < len(b.nodes) {
		n := &b.nodes[b.nodeN]
		b.nodeN++
		return n
	}
	return new(rtNode)
}

// allocReps hands out a replica block for one associated structure.
func (b *Builder) allocReps(n int) []Entry {
	b.needReps += n
	if b.repN+n <= len(b.reps) {
		s := b.reps[b.repN : b.repN+n : b.repN+n]
		b.repN += n
		return s
	}
	return make([]Entry, n)
}
