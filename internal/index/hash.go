package index

import (
	"math"
	"sort"

	"repro/internal/value"
)

// KeySeed is the FNV-1a offset basis HashValue folds onto; start every
// composite key from it.
const KeySeed uint64 = 14695981039346656037

const fnvPrime = 1099511628211

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvBits(h uint64, bits uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(bits>>(8*uint(i))))
	}
	return h
}

// HashValue folds one scalar value into a composite equi-join key hash.
// Values that compare equal under value.Equal hash equal (-0 is normalized
// to +0); collisions between unequal values are possible and callers must
// re-check the underlying equality conjuncts — which the join executor does
// anyway, so multi-attribute equality joins can share one hashed key
// instead of probing a single-attribute superset bucket.
func HashValue(h uint64, v value.Value) uint64 {
	h = fnvByte(h, byte(v.Kind()))
	switch v.Kind() {
	case value.KindString:
		s := v.AsString()
		h = fnvBits(h, uint64(len(s)))
		for i := 0; i < len(s); i++ {
			h = fnvByte(h, s[i])
		}
	default:
		f := v.AsNumber() // payload of number/bool/ref values
		if f == 0 {
			f = 0 // normalize -0 so equal values hash equal
		}
		h = fnvBits(h, math.Float64bits(f))
	}
	return h
}

// RowHash is the engine's equi-join index: hashed composite keys mapping to
// the ids and physical rows holding them. Buckets may contain hash-collision
// false positives — the join executor re-checks equality conjuncts per
// candidate — but never miss a true match. Buckets and their slices are
// retained across Reset/refill cycles, so steady-state rebuilds allocate
// nothing (stale keys keep an empty bucket until the index is dropped).
type RowHash struct {
	buckets map[uint64]*rowBucket
	n       int
}

type rowBucket struct {
	ids  []value.ID
	rows []int32
}

// NewRowHash returns an empty row hash.
func NewRowHash() *RowHash {
	return &RowHash{buckets: make(map[uint64]*rowBucket)}
}

// Reset empties every bucket, keeping the bucket table and slices for reuse.
// When stale keys dominate (buckets that stayed empty through the previous
// fill outnumber live ones), the empty buckets are dropped so key churn
// cannot grow the index without bound; with a stable key population nothing
// is freed and refills stay allocation-free.
func (h *RowHash) Reset() {
	live := 0
	for _, b := range h.buckets { //sglvet:allow maprange: occupancy count only
		if len(b.ids) > 0 {
			live++
		}
	}
	if len(h.buckets) > 2*live+16 {
		for k, b := range h.buckets { //sglvet:allow maprange: keyed deletion of empties, order-free
			if len(b.ids) == 0 {
				delete(h.buckets, k)
			}
		}
	}
	for _, b := range h.buckets { //sglvet:allow maprange: independent per-bucket resets, order-free
		b.ids = b.ids[:0]
		b.rows = b.rows[:0]
	}
	h.n = 0
}

// Insert adds one entry under a hashed key. Entries inserted in physical row
// order are returned in that order by Lookup.
func (h *RowHash) Insert(key uint64, id value.ID, row int32) {
	b := h.buckets[key]
	if b == nil {
		b = &rowBucket{}
		h.buckets[key] = b
	}
	b.ids = append(b.ids, id)
	b.rows = append(b.rows, row)
	h.n++
}

// Lookup returns the ids and rows under a hashed key (shared slices; do not
// mutate). The candidate set may include hash collisions.
func (h *RowHash) Lookup(key uint64) ([]value.ID, []int32) {
	b := h.buckets[key]
	if b == nil {
		return nil, nil
	}
	return b.ids, b.rows
}

// Len returns the number of inserted entries.
func (h *RowHash) Len() int { return h.n }

// EstimatedBytes approximates resident memory — the per-partition index
// memory accounting of §4.2, alongside RangeTree.EstimatedBytes and
// Grid.EstimatedBytes.
func (h *RowHash) EstimatedBytes() int {
	const entrySize = 8 + 4 // id + row
	const bucketOverhead = 64
	return h.n*entrySize + len(h.buckets)*bucketOverhead
}

// Sorted is a one-dimensional sorted index supporting range lookups, used
// for single-attribute band predicates.
type Sorted struct {
	keys []float64
	ids  []value.ID
}

// BuildSorted constructs a sorted index over numeric keys.
func BuildSorted(keys []float64, ids []value.ID) *Sorted {
	if len(keys) != len(ids) {
		panic("index: sorted key/id length mismatch")
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	s := &Sorted{keys: make([]float64, len(keys)), ids: make([]value.ID, len(ids))}
	for out, in := range idx {
		s.keys[out] = keys[in]
		s.ids[out] = ids[in]
	}
	return s
}

// Len returns the number of indexed entries.
func (s *Sorted) Len() int { return len(s.keys) }

// Range appends the ids with key in [lo, hi] and returns the slice.
func (s *Sorted) Range(lo, hi float64, out []value.ID) []value.ID {
	i := sort.SearchFloat64s(s.keys, lo)
	for ; i < len(s.keys) && s.keys[i] <= hi; i++ {
		out = append(out, s.ids[i])
	}
	return out
}

// CountRange returns the number of keys in [lo, hi].
func (s *Sorted) CountRange(lo, hi float64) int {
	i := sort.SearchFloat64s(s.keys, lo)
	j := sort.Search(len(s.keys), func(k int) bool { return s.keys[k] > hi })
	if j < i {
		return 0
	}
	return j - i
}
