package index

import (
	"sort"

	"repro/internal/value"
)

// Hash is an equi-join index mapping scalar key values to the ids holding
// them. It is rebuilt per tick like the spatial indexes.
type Hash struct {
	buckets map[value.Key][]value.ID
	n       int
}

// BuildHash constructs a hash index from parallel key/id slices.
func BuildHash(keys []value.Value, ids []value.ID) *Hash {
	if len(keys) != len(ids) {
		panic("index: hash key/id length mismatch")
	}
	h := &Hash{buckets: make(map[value.Key][]value.ID, len(keys)), n: len(keys)}
	for i, k := range keys {
		kk := k.Key()
		h.buckets[kk] = append(h.buckets[kk], ids[i])
	}
	return h
}

// Lookup returns the ids whose key equals v (shared slice; do not mutate).
func (h *Hash) Lookup(v value.Value) []value.ID { return h.buckets[v.Key()] }

// Len returns the number of indexed entries.
func (h *Hash) Len() int { return h.n }

// Sorted is a one-dimensional sorted index supporting range lookups, used
// for single-attribute band predicates.
type Sorted struct {
	keys []float64
	ids  []value.ID
}

// BuildSorted constructs a sorted index over numeric keys.
func BuildSorted(keys []float64, ids []value.ID) *Sorted {
	if len(keys) != len(ids) {
		panic("index: sorted key/id length mismatch")
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	s := &Sorted{keys: make([]float64, len(keys)), ids: make([]value.ID, len(ids))}
	for out, in := range idx {
		s.keys[out] = keys[in]
		s.ids[out] = ids[in]
	}
	return s
}

// Len returns the number of indexed entries.
func (s *Sorted) Len() int { return len(s.keys) }

// Range appends the ids with key in [lo, hi] and returns the slice.
func (s *Sorted) Range(lo, hi float64, out []value.ID) []value.ID {
	i := sort.SearchFloat64s(s.keys, lo)
	for ; i < len(s.keys) && s.keys[i] <= hi; i++ {
		out = append(out, s.ids[i])
	}
	return out
}

// CountRange returns the number of keys in [lo, hi].
func (s *Sorted) CountRange(lo, hi float64) int {
	i := sort.SearchFloat64s(s.keys, lo)
	j := sort.Search(len(s.keys), func(k int) bool { return s.keys[k] > hi })
	if j < i {
		return 0
	}
	return j - i
}
