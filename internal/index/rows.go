package index

// SortRows orders physical row indexes ascending in place. The partitioned
// join executor canonicalizes every candidate set to physical-row order
// before running match bodies, so the fold order — and therefore the bit
// pattern of ⊕-combined floats — is independent of which partition index
// (and which physical strategy's traversal order) produced the candidates.
// Hand-rolled for the same reason as sortEntries: sort.Slice allocates its
// closure on every probe.
func SortRows(rows []int32) {
	for len(rows) > 12 {
		// Median-of-three pivot moved to the front; Hoare partition.
		m := len(rows) / 2
		hi := len(rows) - 1
		if rows[m] < rows[0] {
			rows[m], rows[0] = rows[0], rows[m]
		}
		if rows[hi] < rows[0] {
			rows[hi], rows[0] = rows[0], rows[hi]
		}
		if rows[hi] < rows[m] {
			rows[hi], rows[m] = rows[m], rows[hi]
		}
		rows[0], rows[m] = rows[m], rows[0]
		p := rows[0]
		i, j := -1, len(rows)
		for {
			for {
				i++
				if rows[i] >= p {
					break
				}
			}
			for {
				j--
				if rows[j] <= p {
					break
				}
			}
			if i >= j {
				break
			}
			rows[i], rows[j] = rows[j], rows[i]
		}
		// Recurse into the smaller half, iterate on the larger.
		if j+1 <= len(rows)-(j+1) {
			SortRows(rows[:j+1])
			rows = rows[j+1:]
		} else {
			SortRows(rows[j+1:])
			rows = rows[:j+1]
		}
	}
	for i := 1; i < len(rows); i++ {
		r := rows[i]
		j := i - 1
		for j >= 0 && rows[j] > r {
			rows[j+1] = rows[j]
			j--
		}
		rows[j+1] = r
	}
}
