package plan

import (
	"math"
	"testing"
)

func TestChoosePartition(t *testing.T) {
	c := DefaultCosts()

	// One spatial axis can only stripe.
	if s, px, py := c.ChoosePartition(PartitionAuto, 4, 1, 100, 100); s != PartitionStripes || px != 4 || py != 1 {
		t.Fatalf("1-axis auto = %v %dx%d", s, px, py)
	}
	// Square world, 4 parts: a 2x2 grid cuts 2 lines instead of 3.
	if s, px, py := c.ChoosePartition(PartitionAuto, 4, 2, 100, 100); s != PartitionGrid || px != 2 || py != 2 {
		t.Fatalf("square auto = %v %dx%d", s, px, py)
	}
	// Wide flat world: stripes across the long axis win.
	if s, px, py := c.ChoosePartition(PartitionAuto, 4, 2, 1000, 10); s != PartitionStripes || px != 4 || py != 1 {
		t.Fatalf("wide auto = %v %dx%d", s, px, py)
	}
	// Tall thin world: the best cut is horizontal stripes, kept as a 1xN grid.
	if s, px, py := c.ChoosePartition(PartitionAuto, 4, 2, 10, 1000); s != PartitionGrid || px != 1 || py != 4 {
		t.Fatalf("tall auto = %v %dx%d", s, px, py)
	}
	// Forced modes pass through; prime counts degenerate to a stripe row.
	if s, px, py := c.ChoosePartition(PartitionStripes, 4, 2, 100, 100); s != PartitionStripes || px != 4 || py != 1 {
		t.Fatalf("forced stripes = %v %dx%d", s, px, py)
	}
	if s, px, py := c.ChoosePartition(PartitionGrid, 6, 2, 100, 100); s != PartitionGrid || px*py != 6 || px == 1 || py == 1 {
		t.Fatalf("forced grid 6 = %v %dx%d", s, px, py)
	}
	if s, px, py := c.ChoosePartition(PartitionGrid, 3, 2, 100, 100); s != PartitionGrid || px != 3 || py != 1 {
		t.Fatalf("forced grid prime = %v %dx%d", s, px, py)
	}
	if s, _, _ := c.ChoosePartition(PartitionHash, 4, 2, 100, 100); s != PartitionHash {
		t.Fatalf("forced hash = %v", s)
	}
	// Every factorization must multiply back to the partition count.
	for _, parts := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		s, px, py := c.ChoosePartition(PartitionAuto, parts, 2, 300, 200)
		if px*py != parts || px < 1 || py < 1 {
			t.Fatalf("parts=%d: %v %dx%d", parts, s, px, py)
		}
	}
}

func TestInteractionRadius(t *testing.T) {
	inf := math.Inf(1)

	// Bounded: symmetric ±10 boxes around the anchors.
	pos := []float64{0, 50, 100}
	lo := []float64{-10, 40, 90}
	hi := []float64{10, 60, 110}
	rLo, rHi := InteractionRadius(pos, lo, hi)
	if rLo != 10 || rHi != 10 || !BoundedReach(rLo, rHi) {
		t.Fatalf("bounded reach = %v/%v", rLo, rHi)
	}
	// Asymmetric and signed: a box strictly above its anchor has a negative
	// low reach.
	rLo, rHi = InteractionRadius([]float64{0}, []float64{5}, []float64{8})
	if rLo != -5 || rHi != 8 {
		t.Fatalf("asymmetric reach = %v/%v", rLo, rHi)
	}

	// Unbounded: one missing upper bound poisons the high reach only.
	rLo, rHi = InteractionRadius([]float64{0, 1}, []float64{-1, -1}, []float64{1, inf})
	if rLo != 2 || !math.IsInf(rHi, 1) || BoundedReach(rLo, rHi) {
		t.Fatalf("unbounded reach = %v/%v", rLo, rHi)
	}

	// NaN bounds: evalBox collapses the interval to (+Inf, -Inf); the row
	// probes nothing and must not contribute to the reach.
	rLo, rHi = InteractionRadius([]float64{0, 3}, []float64{inf, 1}, []float64{-inf, 7})
	if rLo != 2 || rHi != 4 {
		t.Fatalf("NaN-collapsed reach = %v/%v", rLo, rHi)
	}
	// A NaN anchor with a live interval poisons the reach entirely.
	rLo, rHi = InteractionRadius([]float64{0, math.NaN()}, []float64{-1, -1}, []float64{1, 1})
	if !math.IsInf(rLo, 1) || !math.IsInf(rHi, 1) {
		t.Fatalf("NaN-anchor reach = %v/%v", rLo, rHi)
	}

	// All rows collapsed (or no rows): the empty reach, below any finite one.
	rLo, rHi = InteractionRadius([]float64{0}, []float64{inf}, []float64{-inf})
	if !math.IsInf(rLo, -1) || !math.IsInf(rHi, -1) {
		t.Fatalf("empty reach = %v/%v", rLo, rHi)
	}
	rLo, rHi = InteractionRadius(nil, nil, nil)
	if !math.IsInf(rLo, -1) || !math.IsInf(rHi, -1) {
		t.Fatalf("no-rows reach = %v/%v", rLo, rHi)
	}
}

// TestChooseRebalance pins the raw layout-maintenance cost comparison: a
// balanced class never rebalances, a skewed one does once the critical-path
// excess amortizes the re-layout, clamp-dominated skew widens bounds while
// in-bounds clustering splits cuts, and degenerate inputs stay put.
func TestChooseRebalance(t *testing.T) {
	c := DefaultCosts()
	const parts, rows = 4, 10000
	if a := c.ChooseRebalance(2500, 10000, parts, rows, 0, 0); a != RebalanceNone {
		t.Fatalf("balanced load rebalanced: %v", a)
	}
	// One partition holds everything: excess = 7500/tick, re-layout =
	// 3·10000 one-time — fires within the default 30-tick horizon.
	if a := c.ChooseRebalance(10000, 10000, parts, rows, 0, 0); a != RebalanceSplit {
		t.Fatalf("clustered skew: %v, want split", a)
	}
	// Same skew but most rows clamp outside the measured box: drift, so
	// the fix is re-measured, widened bounds.
	if a := c.ChooseRebalance(10000, 10000, parts, rows, 0, rows/2); a != RebalanceWiden {
		t.Fatalf("clamp-dominated skew: %v, want widen", a)
	}
	// Boundary churn alone (balanced loads, heavy migration) also pays.
	if a := c.ChooseRebalance(2500, 10000, parts, rows, 2000, 0); a == RebalanceNone {
		t.Fatal("migration churn never amortized a re-layout")
	}
	for _, a := range []RebalanceAction{
		c.ChooseRebalance(10000, 10000, 1, rows, 0, 0),
		c.ChooseRebalance(10000, 10000, parts, 0, 0, 0),
		c.ChooseRebalance(0, 0, parts, rows, 0, 0),
	} {
		if a != RebalanceNone {
			t.Fatalf("degenerate input rebalanced: %v", a)
		}
	}
}

// TestRebalancerHysteresis pins the thrash guard: the raw decision must win
// HoldTicks consecutive ticks, a fire starts a cooldown, an interleaved
// balanced tick resets the streak, RebalanceOff never fires, and
// RebalanceEager fires on raw evidence alone.
func TestRebalancerHysteresis(t *testing.T) {
	const parts, rows = 4, 10000
	skew := func(r *Rebalancer) RebalanceAction {
		return r.Decide(10000, 10000, parts, rows, 0, 0)
	}
	balanced := func(r *Rebalancer) RebalanceAction {
		return r.Decide(2500, 10000, parts, rows, 0, 0)
	}

	r := NewRebalancer(DefaultCosts(), RebalanceAdaptive)
	for i := 0; i < r.HoldTicks-1; i++ {
		if a := skew(r); a != RebalanceNone {
			t.Fatalf("fired after %d ticks of evidence: %v", i+1, a)
		}
	}
	if a := skew(r); a != RebalanceSplit {
		t.Fatalf("HoldTicks of evidence did not fire: %v", a)
	}
	if r.Fires() != 1 {
		t.Fatalf("fires = %d", r.Fires())
	}
	// Cooldown: the same evidence is ignored for CooldownTicks, then the
	// streak must rebuild from zero.
	for i := 0; i < r.CooldownTicks+r.HoldTicks-1; i++ {
		if a := skew(r); a != RebalanceNone {
			t.Fatalf("fired during cooldown/streak rebuild (tick %d): %v", i, a)
		}
	}
	if a := skew(r); a != RebalanceSplit {
		t.Fatal("evidence after cooldown did not fire")
	}

	// A balanced tick in the middle of a streak resets it.
	r2 := NewRebalancer(DefaultCosts(), RebalanceAdaptive)
	skew(r2)
	skew(r2)
	balanced(r2)
	if a := skew(r2); a != RebalanceNone || r2.Fires() != 0 {
		t.Fatalf("streak survived a balanced tick: %v (fires %d)", a, r2.Fires())
	}

	off := NewRebalancer(DefaultCosts(), RebalanceOff)
	for i := 0; i < 20; i++ {
		if a := skew(off); a != RebalanceNone {
			t.Fatalf("RebalanceOff fired: %v", a)
		}
	}

	eager := NewRebalancer(DefaultCosts(), RebalanceEager)
	if a := skew(eager); a != RebalanceSplit {
		t.Fatalf("eager did not fire immediately: %v", a)
	}
	if a := skew(eager); a != RebalanceSplit {
		t.Fatalf("eager must ignore cooldown: %v", a)
	}
}
