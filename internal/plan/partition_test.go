package plan

import (
	"math"
	"testing"
)

func TestChoosePartition(t *testing.T) {
	c := DefaultCosts()

	// One spatial axis can only stripe.
	if s, px, py := c.ChoosePartition(PartitionAuto, 4, 1, 100, 100); s != PartitionStripes || px != 4 || py != 1 {
		t.Fatalf("1-axis auto = %v %dx%d", s, px, py)
	}
	// Square world, 4 parts: a 2x2 grid cuts 2 lines instead of 3.
	if s, px, py := c.ChoosePartition(PartitionAuto, 4, 2, 100, 100); s != PartitionGrid || px != 2 || py != 2 {
		t.Fatalf("square auto = %v %dx%d", s, px, py)
	}
	// Wide flat world: stripes across the long axis win.
	if s, px, py := c.ChoosePartition(PartitionAuto, 4, 2, 1000, 10); s != PartitionStripes || px != 4 || py != 1 {
		t.Fatalf("wide auto = %v %dx%d", s, px, py)
	}
	// Tall thin world: the best cut is horizontal stripes, kept as a 1xN grid.
	if s, px, py := c.ChoosePartition(PartitionAuto, 4, 2, 10, 1000); s != PartitionGrid || px != 1 || py != 4 {
		t.Fatalf("tall auto = %v %dx%d", s, px, py)
	}
	// Forced modes pass through; prime counts degenerate to a stripe row.
	if s, px, py := c.ChoosePartition(PartitionStripes, 4, 2, 100, 100); s != PartitionStripes || px != 4 || py != 1 {
		t.Fatalf("forced stripes = %v %dx%d", s, px, py)
	}
	if s, px, py := c.ChoosePartition(PartitionGrid, 6, 2, 100, 100); s != PartitionGrid || px*py != 6 || px == 1 || py == 1 {
		t.Fatalf("forced grid 6 = %v %dx%d", s, px, py)
	}
	if s, px, py := c.ChoosePartition(PartitionGrid, 3, 2, 100, 100); s != PartitionGrid || px != 3 || py != 1 {
		t.Fatalf("forced grid prime = %v %dx%d", s, px, py)
	}
	if s, _, _ := c.ChoosePartition(PartitionHash, 4, 2, 100, 100); s != PartitionHash {
		t.Fatalf("forced hash = %v", s)
	}
	// Every factorization must multiply back to the partition count.
	for _, parts := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		s, px, py := c.ChoosePartition(PartitionAuto, parts, 2, 300, 200)
		if px*py != parts || px < 1 || py < 1 {
			t.Fatalf("parts=%d: %v %dx%d", parts, s, px, py)
		}
	}
}

func TestInteractionRadius(t *testing.T) {
	inf := math.Inf(1)

	// Bounded: symmetric ±10 boxes around the anchors.
	pos := []float64{0, 50, 100}
	lo := []float64{-10, 40, 90}
	hi := []float64{10, 60, 110}
	rLo, rHi := InteractionRadius(pos, lo, hi)
	if rLo != 10 || rHi != 10 || !BoundedReach(rLo, rHi) {
		t.Fatalf("bounded reach = %v/%v", rLo, rHi)
	}
	// Asymmetric and signed: a box strictly above its anchor has a negative
	// low reach.
	rLo, rHi = InteractionRadius([]float64{0}, []float64{5}, []float64{8})
	if rLo != -5 || rHi != 8 {
		t.Fatalf("asymmetric reach = %v/%v", rLo, rHi)
	}

	// Unbounded: one missing upper bound poisons the high reach only.
	rLo, rHi = InteractionRadius([]float64{0, 1}, []float64{-1, -1}, []float64{1, inf})
	if rLo != 2 || !math.IsInf(rHi, 1) || BoundedReach(rLo, rHi) {
		t.Fatalf("unbounded reach = %v/%v", rLo, rHi)
	}

	// NaN bounds: evalBox collapses the interval to (+Inf, -Inf); the row
	// probes nothing and must not contribute to the reach.
	rLo, rHi = InteractionRadius([]float64{0, 3}, []float64{inf, 1}, []float64{-inf, 7})
	if rLo != 2 || rHi != 4 {
		t.Fatalf("NaN-collapsed reach = %v/%v", rLo, rHi)
	}
	// A NaN anchor with a live interval poisons the reach entirely.
	rLo, rHi = InteractionRadius([]float64{0, math.NaN()}, []float64{-1, -1}, []float64{1, 1})
	if !math.IsInf(rLo, 1) || !math.IsInf(rHi, 1) {
		t.Fatalf("NaN-anchor reach = %v/%v", rLo, rHi)
	}

	// All rows collapsed (or no rows): the empty reach, below any finite one.
	rLo, rHi = InteractionRadius([]float64{0}, []float64{inf}, []float64{-inf})
	if !math.IsInf(rLo, -1) || !math.IsInf(rHi, -1) {
		t.Fatalf("empty reach = %v/%v", rLo, rHi)
	}
	rLo, rHi = InteractionRadius(nil, nil, nil)
	if !math.IsInf(rLo, -1) || !math.IsInf(rHi, -1) {
		t.Fatalf("no-rows reach = %v/%v", rLo, rHi)
	}
}
