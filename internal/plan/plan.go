// Package plan implements the adaptive physical-plan selector of §4.1: the
// compiler produces several physical strategies for each accum join
// (nested-loop scan, uniform grid, orthogonal range tree, hash), and the
// engine switches among them at runtime as the workload regime shifts.
// Switching uses a cost model fed by package stats plus hysteresis so the
// engine does not thrash when a game oscillates briefly (§4.1: games
// "transition periodically between a small number of different states").
package plan

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Strategy names a physical execution strategy for an accum join.
type Strategy uint8

const (
	// Auto lets the selector decide per tick.
	Auto Strategy = iota
	// NestedLoop scans the whole source extent per probing row.
	NestedLoop
	// GridIndex probes a per-tick uniform grid (2-D ranges only).
	GridIndex
	// RangeTreeIndex probes a per-tick orthogonal range tree.
	RangeTreeIndex
	// HashIndex probes a per-tick hash table (equality joins).
	HashIndex
)

func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case NestedLoop:
		return "nested-loop"
	case GridIndex:
		return "grid"
	case RangeTreeIndex:
		return "range-tree"
	case HashIndex:
		return "hash"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// ExecMode selects how per-row expression work (update rules and simple
// effect-phase scripts) is executed: through the scalar closure evaluator
// of package expr, or through the vectorized batch kernels of package
// vexpr that stream whole column slices set-at-a-time.
type ExecMode uint8

const (
	// ExecAuto lets the cost model pick per class and tick (the default).
	ExecAuto ExecMode = iota
	// ExecScalar forces the closure evaluator everywhere.
	ExecScalar
	// ExecVectorized forces batch kernels wherever an expression compiled
	// to one (non-columnar expressions still run scalar).
	ExecVectorized
)

func (m ExecMode) String() string {
	switch m {
	case ExecAuto:
		return "auto"
	case ExecScalar:
		return "scalar"
	case ExecVectorized:
		return "vectorized"
	default:
		return fmt.Sprintf("exec(%d)", uint8(m))
	}
}

// JoinMode selects how accum-join matches execute: through the scalar
// interpreted loop body, or through the batched driver that gathers
// candidate rows, re-checks the split predicate and folds contributions
// columnar.
type JoinMode uint8

const (
	// JoinAuto lets the cost model pick per site and tick (the default).
	JoinAuto JoinMode = iota
	// JoinScalar forces the interpreted per-match body everywhere.
	JoinScalar
	// JoinBatched forces the batch-gathered driver wherever the site has an
	// analyzed join (general-form accums still run scalar).
	JoinBatched
)

func (m JoinMode) String() string {
	switch m {
	case JoinAuto:
		return "auto"
	case JoinScalar:
		return "scalar"
	case JoinBatched:
		return "batched"
	default:
		return fmt.Sprintf("join(%d)", uint8(m))
	}
}

// TxnMode selects how transaction admission (§3.1) executes: through the
// serial object-at-a-time greedy loop, or through the batched driver that
// groups conflict-independent transactions, validates the independent ones
// whole-batch against a columnar tentative view, and fans true conflict
// groups out across the worker pool.
type TxnMode uint8

const (
	// TxnAuto lets the cost model pick per tick (the default).
	TxnAuto TxnMode = iota
	// TxnScalar forces the serial per-transaction greedy loop.
	TxnScalar
	// TxnBatched forces the grouped/batched admission driver wherever the
	// program's atomic blocks are analyzable (unanalyzable constraint read
	// sets still fall back to the serial loop).
	TxnBatched
)

func (m TxnMode) String() string {
	switch m {
	case TxnAuto:
		return "auto"
	case TxnScalar:
		return "scalar"
	case TxnBatched:
		return "batched"
	default:
		return fmt.Sprintf("txn(%d)", uint8(m))
	}
}

// ViewMode selects how a client subscription view (internal/views) is
// brought up to date for one tick: by filtering the tick's changed-row
// candidates through the subscription's mask kernel (delta maintenance), or
// by re-evaluating the predicate over the whole class extent (rescan).
type ViewMode uint8

const (
	// ViewAuto lets the cost model pick per subscription and tick (the
	// default).
	ViewAuto ViewMode = iota
	// ViewDelta forces incremental maintenance from the changefeed.
	ViewDelta
	// ViewRescan forces a full-extent re-evaluation every tick — the naive
	// per-client path and the differential reference for delta maintenance.
	ViewRescan
)

func (m ViewMode) String() string {
	switch m {
	case ViewAuto:
		return "auto"
	case ViewDelta:
		return "delta"
	case ViewRescan:
		return "rescan"
	default:
		return fmt.Sprintf("view(%d)", uint8(m))
	}
}

// Maint names a per-tick index maintenance decision for one accum site.
type Maint uint8

const (
	// MaintRebuild rebuilds the index from the current extent (into the
	// site's retained arena).
	MaintRebuild Maint = iota
	// MaintIncremental patches the retained index for the rows that changed.
	MaintIncremental
	// MaintReuse keeps last tick's index untouched (nothing changed).
	MaintReuse
)

func (m Maint) String() string {
	switch m {
	case MaintRebuild:
		return "rebuild"
	case MaintIncremental:
		return "incremental"
	case MaintReuse:
		return "reuse"
	default:
		return fmt.Sprintf("maint(%d)", uint8(m))
	}
}

// Costs holds the tunable constants of the cost model, in abstract units of
// "one row visit". Defaults were calibrated on the bench workloads; the
// ablation bench E7b perturbs them.
type Costs struct {
	NLVisit    float64 // visiting one source row in a nested loop
	GridBuild  float64 // inserting one row into the grid
	GridProbe  float64 // fixed probe overhead (cell walk)
	TreeBuild  float64 // amortized per-row tree build cost (× log n)
	TreeProbe  float64 // per-probe search cost (× log² n)
	MatchVisit float64 // evaluating residual + contributions per match

	ScalarVisit float64 // interpreting one closure tree for one row
	VecVisit    float64 // streaming one row through one batch kernel
	VecSetup    float64 // per-extent fixed cost (effect/id vector builds)

	WorkerSpawn float64 // dispatching one worker shard (goroutine + barrier share)

	// Join-execution axis: interpreting one candidate through the scalar
	// loop body versus gathering and folding it in the batched driver
	// (cheaper again when the contribution folds columnar), plus the fixed
	// per-probe overhead of setting the batch up.
	JoinScalarMatch float64
	JoinBatchRow    float64
	JoinBatchRowVec float64
	JoinBatchProbe  float64

	// Index maintenance: rebuilding one source row versus patching one
	// dirty row of a retained index. Their ratio bounds the dirty fraction
	// below which incremental maintenance wins.
	IndexBuildRow float64
	IndexApplyRow float64

	// Transaction-admission axis (§3.1): validating one transaction through
	// the serial greedy loop (per-candidate rule replay) versus streaming it
	// through a batched constraint lane, plus the fixed batch setup and the
	// per-row cost of materializing the columnar tentative view the lanes
	// read. See ChooseTxn.
	TxnScalarCheck float64
	TxnBatchLane   float64
	TxnBatchSetup  float64
	TxnViewRow     float64

	// Layout maintenance (partitioned execution): the per-tick penalty
	// weight of one boundary migration under the current layout, the
	// one-time per-row cost of installing a successor layout epoch
	// (re-measure/quantile refit + mass migration), and the tick horizon
	// the one-time cost amortizes over. See ChooseRebalance.
	MigrateRow       float64
	RelayoutRow      float64
	RebalanceHorizon float64

	// Subscription views (internal/views): the per-kernel-op cost of
	// filtering one changed-row candidate through a subscription's mask
	// kernel (gather + compact-lane eval + membership merge) versus
	// streaming one extent row through the same kernel on a full rescan,
	// plus the fixed per-subscription cost of arming either path for a
	// tick. Delta maintenance pays more per row (candidate gather and the
	// sorted-member merge) but visits only the rows the changefeed names;
	// the ratio sets the churn fraction above which rescanning wins. See
	// ChooseView.
	ViewDeltaRow float64
	ViewScanRow  float64
	ViewSetup    float64

	// Hibernation (many-world server): the per-tick cost of keeping an idle
	// world resident (its share of arena/scratch memory pressure, in row
	// visits) and the per-row cost of one checkpoint + restore round trip.
	// Their ratio sets the idle horizon past which parking the world pays.
	// See HibernateHorizon.
	IdleTickCost float64
	HibernateRow float64
}

// DefaultCosts returns the calibrated defaults.
func DefaultCosts() Costs {
	return Costs{
		NLVisit:    1.0,
		GridBuild:  1.5,
		GridProbe:  4.0,
		TreeBuild:  2.5,
		TreeProbe:  1.5,
		MatchVisit: 1.2,

		ScalarVisit: 1.0,
		VecVisit:    0.3,
		VecSetup:    48,

		WorkerSpawn: 512,

		JoinScalarMatch: 3.0,
		JoinBatchRow:    1.0,
		JoinBatchRowVec: 0.35,
		JoinBatchProbe:  4.0,

		TxnScalarCheck: 14.0,
		TxnBatchLane:   1.5,
		TxnBatchSetup:  32,
		TxnViewRow:     0.35,

		IndexBuildRow: 1.5,
		IndexApplyRow: 6.0,

		MigrateRow:       2.0,
		RelayoutRow:      3.0,
		RebalanceHorizon: 30,

		ViewDeltaRow: 2.0,
		ViewScanRow:  1.0,
		ViewSetup:    16,

		IdleTickCost: 32,
		HibernateRow: 0.5,
	}
}

// ChooseView resolves the maintenance mode for one subscription this tick:
// forced modes pass through; ViewAuto compares the modeled cost of pushing
// the tick's candidate rows through the delta path (per-candidate gather,
// kernel lane, membership merge) against re-evaluating the whole live
// extent. Quiet ticks keep delta maintenance; churn approaching the extent
// size — mass migration, a battle-royale collapse — tips into rescan, which
// touches each row once with no merge bookkeeping. Both paths are pinned
// bit-identical, so the decision is pure cost.
func (c Costs) ChooseView(mode ViewMode, live, candidates, kernels int) ViewMode {
	if mode != ViewAuto {
		return mode
	}
	k := float64(kernels)
	if k < 1 {
		k = 1
	}
	delta := c.ViewSetup + c.ViewDeltaRow*k*float64(candidates)
	scan := c.ViewSetup + c.ViewScanRow*k*float64(live)
	if delta <= scan {
		return ViewDelta
	}
	return ViewRescan
}

// HibernateHorizon returns the number of consecutive idle ticks after which
// hibernating a world of the given row count pays: the checkpoint+restore
// round trip (2·HibernateRow·rows) amortized against the per-tick residency
// cost of keeping it warm. Small worlds park quickly; large worlds need a
// longer quiet spell before the round trip is worth it.
func (c Costs) HibernateHorizon(rows int) int {
	if c.IdleTickCost <= 0 {
		return 1
	}
	h := int(math.Ceil(2 * c.HibernateRow * float64(rows) / c.IdleTickCost))
	if h < 1 {
		h = 1
	}
	return h
}

// ChooseJoin resolves the join-execution mode for one accum site this tick:
// forced modes pass through; JoinAuto compares the modeled per-probe cost of
// interpreting kHat matches through the loop body against batch-gathering
// them (with the cheaper fold rate when the contribution is vectorizable).
// Sites with very low match cardinality stay scalar — the batch setup cannot
// amortize.
func (c Costs) ChooseJoin(mode JoinMode, kHat float64, vecInner bool) JoinMode {
	if mode != JoinAuto {
		return mode
	}
	row := c.JoinBatchRow
	if vecInner {
		row = c.JoinBatchRowVec
	}
	scalar := c.JoinScalarMatch * kHat
	batched := c.JoinBatchProbe + row*kHat
	if batched < scalar {
		return JoinBatched
	}
	return JoinScalar
}

// ChooseTxn resolves the transaction-admission mode for one tick's batch:
// forced modes pass through; TxnAuto compares the modeled cost of replaying
// n candidates through the serial greedy loop against batching them —
// fixed setup, one tentative-view row per affected lane (viewRows), the
// batchable fraction fBatch of candidates streamed through constraint
// kernels, and the remainder still validated serially (conflict groups).
// fBatch is per-tick feedback: the observed fraction of singleton
// (conflict-independent) transactions, analogous to ChooseJoin's k̂. Tiny
// batches stay scalar — the view and setup cannot amortize.
func (c Costs) ChooseTxn(mode TxnMode, n, viewRows, fBatch float64) TxnMode {
	if mode != TxnAuto {
		return mode
	}
	if n <= 0 {
		return TxnScalar
	}
	if fBatch < 0 {
		fBatch = 0
	} else if fBatch > 1 {
		fBatch = 1
	}
	scalar := c.TxnScalarCheck * n
	batched := c.TxnBatchSetup + c.TxnViewRow*viewRows +
		c.TxnBatchLane*n*fBatch + c.TxnScalarCheck*n*(1-fBatch)
	if batched < scalar {
		return TxnBatched
	}
	return TxnScalar
}

// ChooseMaint resolves the per-tick index maintenance decision for a site
// whose source extent has n rows of which dirty changed since the retained
// index was built. incrementalOK reports whether the site's index supports
// in-place patching (the grid does; trees and hashes rebuild).
func (c Costs) ChooseMaint(n, dirty int, incrementalOK bool) Maint {
	if dirty == 0 {
		return MaintReuse
	}
	if incrementalOK && float64(dirty)*c.IndexApplyRow < float64(n)*c.IndexBuildRow {
		return MaintIncremental
	}
	return MaintRebuild
}

// MaintDirtyBudget returns the largest dirty-row count for which
// incremental maintenance still beats rebuilding n rows — the bail-out
// budget handed to Grid.Sync.
func (c Costs) MaintDirtyBudget(n int) int {
	if c.IndexApplyRow <= 0 {
		return n
	}
	return int(float64(n) * c.IndexBuildRow / c.IndexApplyRow)
}

// ChooseWorkers is the parallelism axis of the two-axis execution model: it
// picks how many of maxWorkers are worth fanning out for one class extent
// whose modeled per-tick work is `work` cost units (from the same scale as
// ChooseExec: scalar rows × kernels, or vector lanes × kernels). Parallel
// cost is work/k + WorkerSpawn·k, minimized at k* = √(work/WorkerSpawn), so
// small extents return 1 and stay on the calling goroutine — goroutine
// fan-out must never be paid where a serial pass is cheaper.
func (c Costs) ChooseWorkers(maxWorkers int, work float64) int {
	if maxWorkers <= 1 || work <= 0 || c.WorkerSpawn <= 0 {
		return 1
	}
	k := int(math.Sqrt(work / c.WorkerSpawn))
	if k < 1 {
		k = 1
	}
	if k > maxWorkers {
		k = maxWorkers
	}
	return k
}

// ChooseExec resolves an execution mode for one batch of expression work
// this tick: forced modes pass through, and ExecAuto compares the modeled
// cost of interpreting rows × kernels closure nodes against streaming
// lanes × kernels batch lanes plus fixed setup. rows is the number of rows
// the scalar path would actually visit (live rows at the right script
// phase); lanes is the number of physical lanes the kernels stream (the
// table capacity — batch execution cannot skip holes or other phases).
// Small or sparse extents stay scalar; everything else vectorizes — the
// paper's set-at-a-time default.
func (c Costs) ChooseExec(mode ExecMode, rows, lanes, kernels int) ExecMode {
	if mode != ExecAuto {
		return mode
	}
	if rows <= 0 || kernels <= 0 {
		return ExecScalar
	}
	scalar := c.ScalarVisit * float64(rows) * float64(kernels)
	vec := c.VecSetup + c.VecVisit*float64(lanes)*float64(kernels)
	if vec < scalar {
		return ExecVectorized
	}
	return ExecScalar
}

// Selector picks a strategy for one accum site and applies hysteresis.
type Selector struct {
	Costs Costs
	// SwitchMargin is the fractional cost improvement a challenger must
	// show before a switch is considered (e.g. 0.2 = 20% cheaper).
	SwitchMargin float64
	// SwitchTicks is how many consecutive ticks the challenger must win
	// before the switch happens.
	SwitchTicks int

	current    Strategy
	challenger Strategy
	wins       int
	switches   int64
}

// NewSelector returns a selector starting on the given strategy.
func NewSelector(initial Strategy) *Selector {
	return &Selector{
		Costs:        DefaultCosts(),
		SwitchMargin: 0.2,
		SwitchTicks:  3,
		current:      initial,
	}
}

// Current returns the strategy in force.
func (s *Selector) Current() Strategy { return s.current }

// Switches returns how many plan switches have happened.
func (s *Selector) Switches() int64 { return s.switches }

// Force pins the selector to a strategy (used for static-plan baselines and
// ablations).
func (s *Selector) Force(st Strategy) { s.current, s.challenger, s.wins = st, Auto, 0 }

// Estimate returns the modeled per-tick cost of a strategy given n source
// rows, p probing rows and k̂ expected matches per probe. dims is the number
// of indexed range dimensions (0 means equality-only).
func (s *Selector) Estimate(st Strategy, n, p int, kHat float64, dims int) float64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	fn, fp := float64(n), float64(p)
	logN := math.Log2(fn + 2)
	match := s.Costs.MatchVisit * kHat * fp
	switch st {
	case NestedLoop:
		return s.Costs.NLVisit*fn*fp + match
	case GridIndex:
		return s.Costs.GridBuild*fn + s.Costs.GridProbe*fp + match
	case RangeTreeIndex:
		probe := s.Costs.TreeProbe * math.Pow(logN, float64(maxInt(dims, 1)))
		return s.Costs.TreeBuild*fn*logN + probe*fp + match
	case HashIndex:
		return s.Costs.GridBuild*fn + 1.0*fp + match
	default:
		return math.Inf(1)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Choose evaluates candidates and applies hysteresis, returning the
// strategy to use this tick. site may be nil on the first tick (no
// feedback yet), in which case the reservoir estimate k̂ should be passed
// via kHat.
func (s *Selector) Choose(candidates []Strategy, n, p int, kHat float64, dims int, site *stats.SiteStats) Strategy {
	if len(candidates) == 0 {
		return s.current
	}
	if site != nil && site.MatchPerProbe.Ready() {
		kHat = site.MatchPerProbe.Value()
	}
	if s.current == Auto {
		s.current = candidates[0]
	}
	best, bestCost := s.current, s.Estimate(s.current, n, p, kHat, dims)
	for _, c := range candidates {
		if c == s.current {
			continue
		}
		if cost := s.Estimate(c, n, p, kHat, dims); cost < bestCost {
			best, bestCost = c, cost
		}
	}
	curCost := s.Estimate(s.current, n, p, kHat, dims)
	if best != s.current && curCost > 0 && (curCost-bestCost)/curCost >= s.SwitchMargin {
		if s.challenger == best {
			s.wins++
		} else {
			s.challenger, s.wins = best, 1
		}
		if s.wins >= s.SwitchTicks {
			s.current = best
			s.challenger, s.wins = Auto, 0
			s.switches++
		}
	} else {
		s.challenger, s.wins = Auto, 0
	}
	return s.current
}
