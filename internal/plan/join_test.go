package plan

import "testing"

func TestChooseJoin(t *testing.T) {
	c := DefaultCosts()
	// Forced modes pass through regardless of cardinality.
	if got := c.ChooseJoin(JoinScalar, 1e6, true); got != JoinScalar {
		t.Errorf("forced scalar -> %v", got)
	}
	if got := c.ChooseJoin(JoinBatched, 0, false); got != JoinBatched {
		t.Errorf("forced batched -> %v", got)
	}
	// Tiny match cardinality cannot amortize the batch setup.
	if got := c.ChooseJoin(JoinAuto, 0.5, false); got != JoinScalar {
		t.Errorf("kHat=0.5 -> %v, want scalar", got)
	}
	// Moderate cardinality batches, and the vectorizable fold batches at a
	// lower break-even than the generic inner.
	if got := c.ChooseJoin(JoinAuto, 8, true); got != JoinBatched {
		t.Errorf("kHat=8 vec -> %v, want batched", got)
	}
	if got := c.ChooseJoin(JoinAuto, 100, false); got != JoinBatched {
		t.Errorf("kHat=100 -> %v, want batched", got)
	}
	// The vec break-even sits below the generic one.
	vecAt, genAt := -1.0, -1.0
	for k := 0.25; k < 64; k *= 2 {
		if vecAt < 0 && c.ChooseJoin(JoinAuto, k, true) == JoinBatched {
			vecAt = k
		}
		if genAt < 0 && c.ChooseJoin(JoinAuto, k, false) == JoinBatched {
			genAt = k
		}
	}
	if vecAt < 0 || genAt < 0 || vecAt > genAt {
		t.Errorf("break-evens: vec %v, generic %v", vecAt, genAt)
	}
}

func TestChooseMaint(t *testing.T) {
	c := DefaultCosts()
	if got := c.ChooseMaint(1000, 0, false); got != MaintReuse {
		t.Errorf("dirty=0 -> %v, want reuse", got)
	}
	if got := c.ChooseMaint(1000, 10, true); got != MaintIncremental {
		t.Errorf("dirty=10/1000 -> %v, want incremental", got)
	}
	if got := c.ChooseMaint(1000, 10, false); got != MaintRebuild {
		t.Errorf("dirty=10/1000 without incremental support -> %v, want rebuild", got)
	}
	if got := c.ChooseMaint(1000, 900, true); got != MaintRebuild {
		t.Errorf("dirty=900/1000 -> %v, want rebuild", got)
	}
	// The sync budget agrees with the incremental/rebuild frontier.
	n := 1000
	budget := c.MaintDirtyBudget(n)
	if budget <= 0 || budget >= n {
		t.Fatalf("budget %d out of range", budget)
	}
	if got := c.ChooseMaint(n, budget-1, true); got != MaintIncremental {
		t.Errorf("dirty=budget-1 -> %v, want incremental", got)
	}
	if got := c.ChooseMaint(n, budget+1, true); got != MaintRebuild {
		t.Errorf("dirty=budget+1 -> %v, want rebuild", got)
	}
}

func TestJoinAndMaintStrings(t *testing.T) {
	for m, want := range map[JoinMode]string{JoinAuto: "auto", JoinScalar: "scalar", JoinBatched: "batched"} {
		if m.String() != want {
			t.Errorf("JoinMode %d = %q, want %q", m, m.String(), want)
		}
	}
	for m, want := range map[Maint]string{MaintRebuild: "rebuild", MaintIncremental: "incremental", MaintReuse: "reuse"} {
		if m.String() != want {
			t.Errorf("Maint %d = %q, want %q", m, m.String(), want)
		}
	}
}
