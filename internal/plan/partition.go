package plan

import (
	"fmt"
	"math"
)

// PartitionStrategy selects how a partitioned world (Options.Partitions > 0)
// splits class extents across shared-nothing partitions (§4.2 of the paper).
// Spatial strategies cut the world along a designated position attribute so
// neighborhood joins stay partition-local up to a ghost margin; hash
// partitioning is the communication-oblivious strawman the paper's spatial
// reasoning argues against (every partition needs a replica of everything).
type PartitionStrategy uint8

const (
	// PartitionAuto lets ChoosePartition pick the spatial layout with the
	// smallest modeled ghost volume (the default).
	PartitionAuto PartitionStrategy = iota
	// PartitionStripes cuts 1-D stripes along the first position axis.
	PartitionStripes
	// PartitionGrid cuts a 2-D px×py grid over both position axes.
	PartitionGrid
	// PartitionHash assigns objects to partitions by id hash, ignoring
	// space entirely.
	PartitionHash
)

func (s PartitionStrategy) String() string {
	switch s {
	case PartitionAuto:
		return "auto"
	case PartitionStripes:
		return "stripes"
	case PartitionGrid:
		return "grid"
	case PartitionHash:
		return "hash"
	default:
		return fmt.Sprintf("partition(%d)", uint8(s))
	}
}

// ChoosePartition resolves the partition layout for one class: parts
// partitions over axes spatial dimensions spanning w×h world units. It
// returns the resolved strategy plus the grid factorization (px×py == parts;
// stripes are px=parts, py=1).
//
// The cost entry models ghost volume: every cut line of length L forces a
// ghost margin of 2·R·L around it (R = the interaction radius), so for a
// fixed R the best layout is the one with the least total cut length.
// Stripes cut (parts-1) lines of length h; a px×py grid cuts (px-1) lines of
// length h plus (py-1) lines of length w. R itself cancels out of the
// comparison, which is what lets the layout be fixed before the per-tick
// radius is known.
func (c Costs) ChoosePartition(mode PartitionStrategy, parts, axes int, w, h float64) (PartitionStrategy, int, int) {
	if parts < 1 {
		parts = 1
	}
	if mode == PartitionHash {
		return PartitionHash, parts, 1
	}
	if axes < 2 || parts == 1 {
		return PartitionStripes, parts, 1
	}
	if mode == PartitionStripes {
		return PartitionStripes, parts, 1
	}
	cut := func(px, py int) float64 {
		return float64(px-1)*h + float64(py-1)*w
	}
	bestX, bestY := parts, 1
	bestCut := cut(parts, 1)
	grid2D := false // best factorization with both sides > 1
	gridX, gridY := parts, 1
	gridCut := math.Inf(1)
	for px := 1; px <= parts; px++ {
		if parts%px != 0 {
			continue
		}
		py := parts / px
		if d := cut(px, py); d < bestCut {
			bestX, bestY, bestCut = px, py, d
		}
		if px > 1 && py > 1 {
			if d := cut(px, py); d < gridCut {
				gridX, gridY, gridCut = px, py, d
				grid2D = true
			}
		}
	}
	if mode == PartitionGrid {
		if grid2D {
			return PartitionGrid, gridX, gridY
		}
		// parts is prime (or 2): the only grid is a degenerate stripe row.
		return PartitionGrid, parts, 1
	}
	if bestY == 1 {
		return PartitionStripes, bestX, 1
	}
	if bestX == 1 {
		// Horizontal stripes: model them as a 1×parts grid so the layout
		// keeps both axes.
		return PartitionGrid, 1, parts
	}
	return PartitionGrid, bestX, bestY
}

// InteractionRadius derives the reach of an accum join's probe boxes around
// per-row anchor positions, for one range dimension against one candidate
// partition axis: pos[i] is probing row i's position on the axis and
// [lo[i], hi[i]] its evaluated probe interval on the dimension (from the
// compiled range conjuncts, exactly as evalBox produces them). The returned
// reach is the largest signed distance the interval extends below and above
// the anchor, so every probe interval satisfies
//
//	[lo, hi] ⊆ [pos − reachLo, pos + reachHi]
//
// and a partition's ghost margin of (reachHi below, reachLo above) around
// its region covers every candidate its rows can reach.
//
// Semantics of degenerate bounds, pinned by TestInteractionRadius:
//   - an unbounded conjunct (lo = −Inf or hi = +Inf) makes the matching
//     reach +Inf — the caller must fall back to whole-world replication;
//   - a NaN bound collapses its interval to empty (evalBox emits
//     lo = +Inf, hi = −Inf); empty intervals probe nothing and contribute
//     nothing to the reach;
//   - a NaN anchor with a non-empty interval poisons both reaches to +Inf:
//     that row's probes have no relation to the axis, so no finite margin
//     around the axis can cover them;
//   - with no probing rows (or only empty intervals) both reaches are −Inf:
//     the empty ghost margin, since nothing can probe at all.
func InteractionRadius(pos, lo, hi []float64) (reachLo, reachHi float64) {
	reachLo, reachHi = math.Inf(-1), math.Inf(-1)
	for i := range pos {
		l, h := lo[i], hi[i]
		if !(l <= h) {
			continue // empty (or NaN-collapsed) interval: probes nothing
		}
		if math.IsNaN(pos[i]) {
			return math.Inf(1), math.Inf(1)
		}
		if d := pos[i] - l; d > reachLo {
			reachLo = d
		}
		if d := h - pos[i]; d > reachHi {
			reachHi = d
		}
	}
	return reachLo, reachHi
}

// BoundedReach reports whether a reach pair derived by InteractionRadius is
// finite enough for spatial ghosting (no unbounded conjunct forced a
// whole-world fallback).
func BoundedReach(reachLo, reachHi float64) bool {
	return !math.IsInf(reachLo, 1) && !math.IsInf(reachHi, 1)
}
