package plan

import (
	"fmt"
	"math"
)

// PartitionStrategy selects how a partitioned world (Options.Partitions > 0)
// splits class extents across shared-nothing partitions (§4.2 of the paper).
// Spatial strategies cut the world along a designated position attribute so
// neighborhood joins stay partition-local up to a ghost margin; hash
// partitioning is the communication-oblivious strawman the paper's spatial
// reasoning argues against (every partition needs a replica of everything).
type PartitionStrategy uint8

const (
	// PartitionAuto lets ChoosePartition pick the spatial layout with the
	// smallest modeled ghost volume (the default).
	PartitionAuto PartitionStrategy = iota
	// PartitionStripes cuts 1-D stripes along the first position axis.
	PartitionStripes
	// PartitionGrid cuts a 2-D px×py grid over both position axes.
	PartitionGrid
	// PartitionHash assigns objects to partitions by id hash, ignoring
	// space entirely.
	PartitionHash
)

func (s PartitionStrategy) String() string {
	switch s {
	case PartitionAuto:
		return "auto"
	case PartitionStripes:
		return "stripes"
	case PartitionGrid:
		return "grid"
	case PartitionHash:
		return "hash"
	default:
		return fmt.Sprintf("partition(%d)", uint8(s))
	}
}

// ChoosePartition resolves the partition layout for one class: parts
// partitions over axes spatial dimensions spanning w×h world units. It
// returns the resolved strategy plus the grid factorization (px×py == parts;
// stripes are px=parts, py=1).
//
// The cost entry models ghost volume: every cut line of length L forces a
// ghost margin of 2·R·L around it (R = the interaction radius), so for a
// fixed R the best layout is the one with the least total cut length.
// Stripes cut (parts-1) lines of length h; a px×py grid cuts (px-1) lines of
// length h plus (py-1) lines of length w. R itself cancels out of the
// comparison, which is what lets the layout be fixed before the per-tick
// radius is known.
func (c Costs) ChoosePartition(mode PartitionStrategy, parts, axes int, w, h float64) (PartitionStrategy, int, int) {
	if parts < 1 {
		parts = 1
	}
	if mode == PartitionHash {
		return PartitionHash, parts, 1
	}
	if axes < 2 || parts == 1 {
		return PartitionStripes, parts, 1
	}
	if mode == PartitionStripes {
		return PartitionStripes, parts, 1
	}
	cut := func(px, py int) float64 {
		return float64(px-1)*h + float64(py-1)*w
	}
	bestX, bestY := parts, 1
	bestCut := cut(parts, 1)
	grid2D := false // best factorization with both sides > 1
	gridX, gridY := parts, 1
	gridCut := math.Inf(1)
	for px := 1; px <= parts; px++ {
		if parts%px != 0 {
			continue
		}
		py := parts / px
		if d := cut(px, py); d < bestCut {
			bestX, bestY, bestCut = px, py, d
		}
		if px > 1 && py > 1 {
			if d := cut(px, py); d < gridCut {
				gridX, gridY, gridCut = px, py, d
				grid2D = true
			}
		}
	}
	if mode == PartitionGrid {
		if grid2D {
			return PartitionGrid, gridX, gridY
		}
		// parts is prime (or 2): the only grid is a degenerate stripe row.
		return PartitionGrid, parts, 1
	}
	if bestY == 1 {
		return PartitionStripes, bestX, 1
	}
	if bestX == 1 {
		// Horizontal stripes: model them as a 1×parts grid so the layout
		// keeps both axes.
		return PartitionGrid, 1, parts
	}
	return PartitionGrid, bestX, bestY
}

// RebalancePolicy selects how a partitioned world maintains its layouts
// across ticks (Options.Rebalance). Layouts are versioned epochs: a
// rebalance replaces a class's layout with a successor epoch (re-measured
// bounds or refitted quantile cuts), and the engine's staging discipline
// keeps any epoch sequence bit-identical to Partitions=1.
type RebalancePolicy uint8

const (
	// RebalanceAdaptive lets the cost model re-layout a class whenever the
	// modeled per-tick imbalance penalty amortizes the re-layout and mass
	// migration, with hysteresis so layouts cannot thrash (the default).
	RebalanceAdaptive RebalancePolicy = iota
	// RebalanceOff freezes every layout at its first-tick epoch (the
	// pre-epoch behavior; the frozen arm of experiment E17).
	RebalanceOff
	// RebalanceEager fires on the raw cost comparison every tick, without
	// hysteresis or cooldown — a test and ablation knob, not a default.
	RebalanceEager
)

func (p RebalancePolicy) String() string {
	switch p {
	case RebalanceAdaptive:
		return "adaptive"
	case RebalanceOff:
		return "off"
	case RebalanceEager:
		return "eager"
	default:
		return fmt.Sprintf("rebalance(%d)", uint8(p))
	}
}

// RebalanceAction is the per-class per-tick layout maintenance decision.
type RebalanceAction uint8

const (
	// RebalanceNone keeps the current layout epoch.
	RebalanceNone RebalanceAction = iota
	// RebalanceWiden re-measures world bounds and refits uniform slots,
	// widened by the measured drift margin — the move when clamped
	// (out-of-bounds) rows say the measured box went stale.
	RebalanceWiden
	// RebalanceSplit refits population-quantile cut points so hot slots
	// split — the move when the population clustered inside valid bounds.
	RebalanceSplit
)

func (a RebalanceAction) String() string {
	switch a {
	case RebalanceNone:
		return "none"
	case RebalanceWiden:
		return "widen"
	case RebalanceSplit:
		return "split"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// ChooseRebalance is the raw (hysteresis-free) layout maintenance decision
// for one class this tick. loadMax and loadSum are the previous tick's
// per-partition row-visit tally (stats.ExecCounters PartLoadMax/PartLoadSum
// semantics, single tick); migrated and clamped are that tick's boundary
// migrations and out-of-bounds rows; rows is the class extent.
//
// The model compares the per-tick penalty of keeping the layout — the
// critical-path excess (loadMax − loadSum/parts) plus the boundary-churn
// term MigrateRow·migrated — against the one-time cost of replacing it,
// RelayoutRow·rows (bounds re-measure or quantile refit plus the mass
// migration the new epoch triggers), amortized over RebalanceHorizon ticks.
// The action is RebalanceWiden when clamped rows say the measured box went
// stale (drift), RebalanceSplit otherwise (clustering).
func (c Costs) ChooseRebalance(loadMax, loadSum float64, parts, rows, migrated, clamped int) RebalanceAction {
	if parts <= 1 || rows <= 0 || loadSum <= 0 {
		return RebalanceNone
	}
	stay := (loadMax - loadSum/float64(parts)) + c.MigrateRow*float64(migrated)
	move := c.RelayoutRow * float64(rows)
	if stay*c.RebalanceHorizon <= move {
		return RebalanceNone
	}
	if clamped*16 >= rows {
		return RebalanceWiden
	}
	return RebalanceSplit
}

// Rebalancer wraps ChooseRebalance with the hysteresis that keeps layouts
// from thrashing: the raw decision must hold for HoldTicks consecutive
// ticks before an action fires, and after a fire the class is held out for
// CooldownTicks (a fresh epoch's mass migration must not immediately count
// as churn evidence for the next one). The zero value is not ready; use
// NewRebalancer.
type Rebalancer struct {
	Costs         Costs
	Policy        RebalancePolicy
	HoldTicks     int
	CooldownTicks int

	wins     int
	cooldown int
	fires    int64
}

// NewRebalancer returns a rebalancer with the calibrated default
// hysteresis.
func NewRebalancer(costs Costs, policy RebalancePolicy) *Rebalancer {
	return &Rebalancer{Costs: costs, Policy: policy, HoldTicks: 3, CooldownTicks: 8}
}

// Fires returns how many rebalances have fired.
func (r *Rebalancer) Fires() int64 { return r.fires }

// Decide folds one tick of load feedback and returns the action to take
// now: RebalanceNone while the evidence is young, cooling down, or the
// policy is off; otherwise the action that has won HoldTicks in a row.
func (r *Rebalancer) Decide(loadMax, loadSum float64, parts, rows, migrated, clamped int) RebalanceAction {
	if r.Policy == RebalanceOff {
		return RebalanceNone
	}
	if r.cooldown > 0 {
		r.cooldown--
		r.wins = 0
		return RebalanceNone
	}
	act := r.Costs.ChooseRebalance(loadMax, loadSum, parts, rows, migrated, clamped)
	if act == RebalanceNone {
		r.wins = 0
		return RebalanceNone
	}
	if r.Policy != RebalanceEager {
		r.wins++
		if r.wins < r.HoldTicks {
			return RebalanceNone
		}
		r.cooldown = r.CooldownTicks
	}
	r.wins = 0
	r.fires++
	return act
}

// InteractionRadius derives the reach of an accum join's probe boxes around
// per-row anchor positions, for one range dimension against one candidate
// partition axis: pos[i] is probing row i's position on the axis and
// [lo[i], hi[i]] its evaluated probe interval on the dimension (from the
// compiled range conjuncts, exactly as evalBox produces them). The returned
// reach is the largest signed distance the interval extends below and above
// the anchor, so every probe interval satisfies
//
//	[lo, hi] ⊆ [pos − reachLo, pos + reachHi]
//
// and a partition's ghost margin of (reachHi below, reachLo above) around
// its region covers every candidate its rows can reach.
//
// Semantics of degenerate bounds, pinned by TestInteractionRadius:
//   - an unbounded conjunct (lo = −Inf or hi = +Inf) makes the matching
//     reach +Inf — the caller must fall back to whole-world replication;
//   - a NaN bound collapses its interval to empty (evalBox emits
//     lo = +Inf, hi = −Inf); empty intervals probe nothing and contribute
//     nothing to the reach;
//   - a NaN anchor with a non-empty interval poisons both reaches to +Inf:
//     that row's probes have no relation to the axis, so no finite margin
//     around the axis can cover them;
//   - with no probing rows (or only empty intervals) both reaches are −Inf:
//     the empty ghost margin, since nothing can probe at all.
func InteractionRadius(pos, lo, hi []float64) (reachLo, reachHi float64) {
	reachLo, reachHi = math.Inf(-1), math.Inf(-1)
	for i := range pos {
		l, h := lo[i], hi[i]
		if !(l <= h) {
			continue // empty (or NaN-collapsed) interval: probes nothing
		}
		if math.IsNaN(pos[i]) {
			return math.Inf(1), math.Inf(1)
		}
		if d := pos[i] - l; d > reachLo {
			reachLo = d
		}
		if d := h - pos[i]; d > reachHi {
			reachHi = d
		}
	}
	return reachLo, reachHi
}

// BoundedReach reports whether a reach pair derived by InteractionRadius is
// finite enough for spatial ghosting (no unbounded conjunct forced a
// whole-world fallback).
func BoundedReach(reachLo, reachHi float64) bool {
	return !math.IsInf(reachLo, 1) && !math.IsInf(reachHi, 1)
}
