package plan

import (
	"testing"

	"repro/internal/stats"
)

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		Auto: "auto", NestedLoop: "nested-loop", GridIndex: "grid",
		RangeTreeIndex: "range-tree", HashIndex: "hash",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestEstimateShapes(t *testing.T) {
	s := NewSelector(RangeTreeIndex)
	// Sparse matches, large n: nested loop must be the most expensive.
	n, p := 10000, 10000
	nl := s.Estimate(NestedLoop, n, p, 2, 2)
	tree := s.Estimate(RangeTreeIndex, n, p, 2, 2)
	grid := s.Estimate(GridIndex, n, p, 2, 2)
	if nl <= tree || nl <= grid {
		t.Errorf("sparse: NL=%v must dominate tree=%v grid=%v", nl, tree, grid)
	}
	// Dense matches (k̂ ≈ n): match cost dominates; NL no longer hopeless
	// relative to the index plans.
	dense := float64(n) * 0.9
	nlD := s.Estimate(NestedLoop, n, p, dense, 2)
	treeD := s.Estimate(RangeTreeIndex, n, p, dense, 2)
	if nlD > 3*treeD {
		t.Errorf("dense: NL=%v should be within ~3x of tree=%v", nlD, treeD)
	}
	if s.Estimate(NestedLoop, 0, 0, 1, 2) != 0 {
		t.Error("empty input costs nothing")
	}
}

func TestChooseSwitchesWithHysteresis(t *testing.T) {
	s := NewSelector(NestedLoop)
	cands := []Strategy{NestedLoop, RangeTreeIndex, GridIndex}
	site := stats.NewSiteStats()
	// Sparse regime: tree is far cheaper, but switching needs SwitchTicks
	// consecutive winning ticks.
	feed := func(k float64) {
		site.Probes, site.Matches = 100, int64(k*100)
		site.EndTick()
	}
	feed(2)
	for i := 0; i < s.SwitchTicks-1; i++ {
		got := s.Choose(cands, 10000, 10000, 2, 2, site)
		if got != NestedLoop {
			t.Fatalf("tick %d: switched too early to %v", i, got)
		}
		feed(2)
	}
	if got := s.Choose(cands, 10000, 10000, 2, 2, site); got == NestedLoop {
		t.Fatal("never switched away from nested loop")
	}
	if s.Switches() != 1 {
		t.Errorf("Switches = %d", s.Switches())
	}
}

func TestChooseStableUnderNoise(t *testing.T) {
	s := NewSelector(RangeTreeIndex)
	cands := []Strategy{NestedLoop, RangeTreeIndex}
	site := stats.NewSiteStats()
	// A single noisy tick favoring NL must not flip the plan.
	site.Probes, site.Matches = 10, 10*9000
	site.EndTick()
	got := s.Choose(cands, 10000, 10, 9000, 2, site)
	if got != RangeTreeIndex {
		t.Fatalf("one noisy tick flipped the plan to %v", got)
	}
}

func TestForce(t *testing.T) {
	s := NewSelector(RangeTreeIndex)
	s.Force(NestedLoop)
	if s.Current() != NestedLoop {
		t.Error("Force")
	}
}

func TestChooseEmptyCandidates(t *testing.T) {
	s := NewSelector(NestedLoop)
	if got := s.Choose(nil, 10, 10, 1, 2, nil); got != NestedLoop {
		t.Error("no candidates keeps current")
	}
}

func TestAutoInitializesToFirstCandidate(t *testing.T) {
	s := NewSelector(Auto)
	got := s.Choose([]Strategy{GridIndex, NestedLoop}, 100, 100, 1, 2, nil)
	if got == Auto {
		t.Error("Auto must resolve to a concrete strategy")
	}
}

func TestChooseExec(t *testing.T) {
	c := DefaultCosts()
	if got := c.ChooseExec(ExecScalar, 1<<20, 1<<20, 4); got != ExecScalar {
		t.Errorf("forced scalar: %v", got)
	}
	if got := c.ChooseExec(ExecVectorized, 1, 1, 1); got != ExecVectorized {
		t.Errorf("forced vectorized: %v", got)
	}
	if got := c.ChooseExec(ExecAuto, 0, 0, 4); got != ExecScalar {
		t.Errorf("empty extent: %v", got)
	}
	if got := c.ChooseExec(ExecAuto, 4, 4, 1); got != ExecScalar {
		t.Errorf("tiny extent must stay scalar (setup does not amortize): %v", got)
	}
	if got := c.ChooseExec(ExecAuto, 10000, 10000, 3); got != ExecVectorized {
		t.Errorf("large extent must vectorize: %v", got)
	}
	// Sparse selection: scalar touches 100 rows while kernels would
	// stream 10000 lanes (e.g. many script phases or a mostly-dead table).
	if got := c.ChooseExec(ExecAuto, 100, 10000, 3); got != ExecScalar {
		t.Errorf("sparse extent must stay scalar: %v", got)
	}
}

func TestChooseWorkers(t *testing.T) {
	c := DefaultCosts()
	if got := c.ChooseWorkers(1, 1e9); got != 1 {
		t.Errorf("single worker: %v", got)
	}
	if got := c.ChooseWorkers(8, 0); got != 1 {
		t.Errorf("no work: %v", got)
	}
	// A few hundred rows of trivial work must never pay goroutine fan-out.
	if got := c.ChooseWorkers(8, 300); got != 1 {
		t.Errorf("tiny extent must stay serial: %v", got)
	}
	// A 100k-row extent with a handful of kernels saturates the pool.
	if got := c.ChooseWorkers(8, 100_000*5); got != 8 {
		t.Errorf("large extent must use the full pool: %v", got)
	}
	// Mid-size work picks an intermediate fan-out (√(work/spawn)).
	mid := c.ChooseWorkers(16, 5000)
	if mid <= 1 || mid >= 16 {
		t.Errorf("mid extent fan-out = %v, want 1 < k < 16", mid)
	}
	// Monotone in work: more work never chooses fewer workers.
	prev := 0
	for _, work := range []float64{100, 1000, 10_000, 100_000, 1_000_000} {
		k := c.ChooseWorkers(8, work)
		if k < prev {
			t.Errorf("fan-out not monotone: work %v -> %d after %d", work, k, prev)
		}
		prev = k
	}
}

func TestExecModeString(t *testing.T) {
	for m, want := range map[ExecMode]string{ExecAuto: "auto", ExecScalar: "scalar", ExecVectorized: "vectorized"} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}
