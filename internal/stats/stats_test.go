package stats

import (
	"math"
	"testing"
)

func TestEMA(t *testing.T) {
	e := NewEMA(0.5)
	if e.Ready() || e.Value() != 0 {
		t.Error("zero EMA")
	}
	e.Add(10)
	if !e.Ready() || e.Value() != 10 {
		t.Error("first sample sets value")
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Errorf("EMA = %v, want 15", e.Value())
	}
	// Converges toward a constant input.
	for i := 0; i < 50; i++ {
		e.Add(100)
	}
	if math.Abs(e.Value()-100) > 1e-6 {
		t.Errorf("EMA did not converge: %v", e.Value())
	}
}

func TestSiteStats(t *testing.T) {
	s := NewSiteStats()
	s.Probes, s.Matches = 100, 500
	s.EndTick()
	if got := s.MatchPerProbe.Value(); got != 5 {
		t.Errorf("MatchPerProbe = %v", got)
	}
	if s.Probes != 0 || s.Matches != 0 {
		t.Error("EndTick must reset counters")
	}
	// Tick with no probes leaves the average untouched.
	s.EndTick()
	if got := s.MatchPerProbe.Value(); got != 5 {
		t.Errorf("idle tick changed MatchPerProbe to %v", got)
	}
}

func TestReservoirUniform(t *testing.T) {
	r := NewReservoir(100, 42)
	// 1000 points on a line x=i, y=0 in [0,1000).
	for i := 0; i < 1000; i++ {
		r.Add(float64(i), 0)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Seen() != 1000 {
		t.Fatalf("Seen = %d", r.Seen())
	}
	// A box covering half the domain should estimate ~500.
	got := r.EstimateBoxCount(0, -1, 500, 1)
	if got < 300 || got > 700 {
		t.Errorf("EstimateBoxCount = %v, want ~500", got)
	}
	// Full box estimates everything.
	if got := r.EstimateBoxCount(-1, -1, 1001, 1); got != 1000 {
		t.Errorf("full box = %v", got)
	}
	r.Reset()
	if r.Len() != 0 || r.Seen() != 0 {
		t.Error("Reset")
	}
	if r.EstimateBoxCount(0, 0, 1, 1) != 0 {
		t.Error("empty reservoir estimates 0")
	}
}

func TestReservoirSmallInput(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 0; i < 10; i++ {
		r.Add(float64(i), float64(i))
	}
	// With fewer points than capacity the sample is exact.
	if got := r.EstimateBoxCount(0, 0, 4, 4); got != 5 {
		t.Errorf("exact estimate = %v, want 5", got)
	}
}

func TestSpread(t *testing.T) {
	clustered := NewReservoir(100, 2)
	spread := NewReservoir(100, 2)
	for i := 0; i < 100; i++ {
		clustered.Add(50+float64(i%3), 50)
		spread.Add(float64(i*97%1000), float64(i*31%1000))
	}
	cvx, _ := clustered.Spread()
	svx, svy := spread.Spread()
	if cvx >= svx {
		t.Errorf("clustered varX %v must be below spread varX %v", cvx, svx)
	}
	if svy == 0 {
		t.Error("spread varY must be positive")
	}
	empty := NewReservoir(10, 3)
	if vx, vy := empty.Spread(); vx != 0 || vy != 0 {
		t.Error("empty spread")
	}
}

func TestReservoirDeterminism(t *testing.T) {
	a, b := NewReservoir(32, 9), NewReservoir(32, 9)
	for i := 0; i < 500; i++ {
		a.Add(float64(i), 0)
		b.Add(float64(i), 0)
	}
	for i := range a.pts {
		if a.pts[i] != b.pts[i] {
			t.Fatal("same seed must sample identically (replay requirement)")
		}
	}
}

func TestExecCounters(t *testing.T) {
	var c ExecCounters
	if c.VectorFraction() != 0 {
		t.Error("empty counters must report 0")
	}
	c.VectorRows, c.ScalarRows = 30, 20
	if got := c.VectorFraction(); got != 0.6 {
		t.Errorf("VectorFraction = %v, want 0.6", got)
	}
}

func TestPartitionCounters(t *testing.T) {
	var c ExecCounters
	if c.PartImbalance(4) != 0 || c.PartMessages() != 0 {
		t.Error("empty counters must report zero")
	}
	c.PartLoadMax, c.PartLoadSum = 25, 100
	if v := c.PartImbalance(4); v != 1 {
		t.Errorf("balanced = %v", v)
	}
	c.PartLoadMax = 100
	if v := c.PartImbalance(4); v != 4 {
		t.Errorf("one-sided = %v", v)
	}
	c.PartMsgsGhost, c.PartMsgsEffect, c.PartMsgsMigrate = 3, 2, 1
	if c.PartMessages() != 6 {
		t.Errorf("PartMessages = %d", c.PartMessages())
	}
}
