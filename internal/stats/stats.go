// Package stats collects the lightweight runtime statistics that drive
// adaptive query optimization (§4.1 of the paper). The workload property
// that matters for accum joins is the expected number of matches per probe,
// which shifts dramatically between game regimes (exploring vs fighting).
// Histograms are a poor fit for multi-dimensional range predicates over
// fast-changing data (§4.1 cites [2]), so we combine two cheap mechanisms:
//
//   - per-site exponential moving averages of observed matches/probe,
//     updated from execution feedback (free to collect); and
//   - a bounded reservoir sample of positions, refreshed per tick, that
//     answers "how many points fall in this box" for plans that have not
//     run recently.
package stats

import "math/rand"

// EMA is an exponential moving average with configurable smoothing.
type EMA struct {
	alpha float64
	v     float64
	init  bool
}

// NewEMA returns an EMA with smoothing factor alpha in (0, 1]; larger alpha
// reacts faster.
func NewEMA(alpha float64) EMA { return EMA{alpha: alpha} }

// Add folds a sample.
func (e *EMA) Add(x float64) {
	if !e.init {
		e.v, e.init = x, true
		return
	}
	e.v += e.alpha * (x - e.v)
}

// Value returns the current average (0 before any sample).
func (e *EMA) Value() float64 { return e.v }

// Ready reports whether at least one sample arrived.
func (e *EMA) Ready() bool { return e.init }

// SiteStats tracks one accum site's per-tick execution feedback.
type SiteStats struct {
	// Per-tick counters, reset by EndTick.
	Probes  int64
	Matches int64
	// Smoothed views.
	MatchPerProbe EMA
	ProbeCount    EMA
}

// NewSiteStats returns site statistics with moderate smoothing.
func NewSiteStats() *SiteStats {
	return &SiteStats{
		MatchPerProbe: NewEMA(0.3),
		ProbeCount:    NewEMA(0.3),
	}
}

// EndTick folds this tick's counters into the moving averages and resets
// them.
func (s *SiteStats) EndTick() {
	if s.Probes > 0 {
		s.MatchPerProbe.Add(float64(s.Matches) / float64(s.Probes))
	}
	s.ProbeCount.Add(float64(s.Probes))
	s.Probes, s.Matches = 0, 0
}

// Reservoir is a fixed-size uniform sample of 2-D points maintained with
// reservoir sampling; it estimates box selectivity for the cost model.
type Reservoir struct {
	cap  int
	pts  [][2]float64
	seen int64
	rng  *rand.Rand
}

// NewReservoir returns a reservoir holding up to capacity points. seed
// makes sampling deterministic for replay.
func NewReservoir(capacity int, seed int64) *Reservoir {
	return &Reservoir{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Reset empties the reservoir for a new tick's population.
func (r *Reservoir) Reset() {
	r.pts = r.pts[:0]
	r.seen = 0
}

// Add offers one point to the sample.
func (r *Reservoir) Add(x, y float64) {
	r.seen++
	if len(r.pts) < r.cap {
		r.pts = append(r.pts, [2]float64{x, y})
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.pts[j] = [2]float64{x, y}
	}
}

// Len returns the number of sampled points.
func (r *Reservoir) Len() int { return len(r.pts) }

// Seen returns the number of points offered since Reset.
func (r *Reservoir) Seen() int64 { return r.seen }

// EstimateBoxCount estimates how many of the seen points fall inside the
// closed box, by scaling the sample fraction.
func (r *Reservoir) EstimateBoxCount(lo0, lo1, hi0, hi1 float64) float64 {
	if len(r.pts) == 0 {
		return 0
	}
	in := 0
	for _, p := range r.pts {
		if p[0] >= lo0 && p[0] <= hi0 && p[1] >= lo1 && p[1] <= hi1 {
			in++
		}
	}
	return float64(in) / float64(len(r.pts)) * float64(r.seen)
}

// Spread summarizes positional dispersion: a small spread (clustered
// armies) favors grids; a large spread with small query boxes favors
// range trees.
func (r *Reservoir) Spread() (varX, varY float64) {
	n := float64(len(r.pts))
	if n < 2 {
		return 0, 0
	}
	var sx, sy float64
	for _, p := range r.pts {
		sx += p[0]
		sy += p[1]
	}
	mx, my := sx/n, sy/n
	for _, p := range r.pts {
		varX += (p[0] - mx) * (p[0] - mx)
		varY += (p[1] - my) * (p[1] - my)
	}
	return varX / n, varY / n
}

// ExecCounters tallies how much per-row expression work ran through the
// vectorized batch path versus the scalar closure path, per world. One
// "row" here is one (row, rule-or-phase) evaluation. The counters feed the
// E13 experiment and let operators confirm that the set-at-a-time default
// actually engages on their workload.
type ExecCounters struct {
	// VectorRows counts row evaluations executed by batch kernels.
	VectorRows int64
	// ScalarRows counts row evaluations executed by closure interpretation.
	ScalarRows int64
	// ParallelShards counts row shards dispatched to the worker pool (a
	// class extent that stays serial contributes nothing); it exposes the
	// parallelism axis of the two-axis execution decision the same way
	// VectorRows/ScalarRows expose the exec-mode axis.
	ParallelShards int64
	// HandlerRows counts row evaluations of reactive-handler conditions.
	HandlerRows int64

	// Join-execution accounting (the third execution axis). JoinProbeRows
	// counts accum probes; JoinMatchRows counts rows the chosen access path
	// delivered to the contribution step — index candidates on the scalar
	// path, post-residual matches on the batched path. JoinBatchedRows is
	// the subset of candidate rows processed by the batched driver.
	JoinProbeRows   int64
	JoinMatchRows   int64
	JoinBatchedRows int64

	// Transaction-admission accounting (§3.1, the fourth execution axis).
	// TxnBatchedRows counts transactions validated by the batched driver
	// (constraint kernels over the columnar tentative view, or batched
	// closure lanes); serial-loop validations contribute nothing.
	// TxnParallelGroups counts conflict groups dispatched to the worker
	// pool; TxnCrossPart counts admitted-considered transactions whose
	// touched rows (source, emission targets, constraint read set) spanned
	// more than one partition and therefore routed through cross-partition
	// admission instead of a partition-local lane.
	TxnBatchedRows    int64
	TxnParallelGroups int64
	TxnCrossPart      int64

	// Index maintenance accounting. IndexBuildNanos is wall time spent
	// preparing per-tick indexes (builds, syncs and reuse checks);
	// IndexReuses counts site-ticks that kept last tick's index untouched,
	// IndexIncrements site-ticks that patched it in place instead of
	// rebuilding.
	IndexBuildNanos int64
	IndexReuses     int64
	IndexIncrements int64

	// Shared-nothing partitioned execution accounting (§4.2 of the paper:
	// cross-node message cost per tick, per-node load balance, partitioned
	// index memory). All counters are zero unless the world runs with
	// Options.Partitions > 0.
	//
	// PartMsgsGhost counts ghost-replica refresh messages (one per ghost
	// row whenever its partition index is (re)built — an unchanged, reused
	// index sends nothing); PartMsgsEffect counts effect contributions whose
	// target row is owned by a different partition than the emitting row;
	// PartMsgsMigrate counts ownership migrations (an object's new position
	// crossed a partition boundary during the update step). PartBytes is the
	// modeled wire volume of all three. GhostRows counts resident ghost
	// replicas across all partition indexes, summed per tick (an occupancy
	// metric, charged even when the index is reused).
	PartMsgsGhost   int64
	PartMsgsEffect  int64
	PartMsgsMigrate int64
	PartBytes       int64
	GhostRows       int64
	MigratedRows    int64

	// Layout-epoch accounting (adaptive repartitioning). RebalanceCount
	// counts layout replacements (a class's layout advancing to a successor
	// epoch — re-measured bounds or refitted quantile cuts); RebalanceNanos
	// is the wall time spent deriving those successors. EpochID is the
	// highest layout epoch any class has reached (1 = every layout still on
	// its first-tick measurement). ClampedRows counts row-ticks whose
	// position fell outside their layout's measured box and clamped into an
	// edge partition — the §4.2 skew signal that drives RebalanceWiden.
	RebalanceCount int64
	RebalanceNanos int64
	EpochID        int64
	ClampedRows    int64

	// Kernel-fusion accounting. FusedOps is a build-time gauge: the number
	// of superinstructions the vexpr peephole pass produced across every
	// kernel compiled for this world (each one replaced two interpreted
	// batch operators with one fused loop). DictLookups counts runtime
	// string-dictionary round-trips at kernel boundaries — decodes of
	// string-valued emission payloads and encodes of batched string probe
	// keys. Both are zero when no kernels compiled.
	FusedOps    int64
	DictLookups int64

	// Subscription-view accounting (internal/views). ViewSubs is a gauge of
	// live subscriptions registered against this world; ViewDeltaRows counts
	// delta rows emitted across all subscriptions (adds + updates +
	// removes); ViewRescans counts subscription-ticks that fell back to a
	// full-extent rescan (unstable predicate, structure-version mismatch, or
	// the cost model deciding churn outweighed the delta path);
	// ViewMaintNanos is wall time spent maintaining all subscriptions.
	ViewSubs       int64
	ViewDeltaRows  int64
	ViewRescans    int64
	ViewMaintNanos int64

	// Load balance: per tick the effect-phase row visits (scalar rows,
	// vectorized rows, join candidates) are tallied per partition;
	// PartLoadMax accumulates the busiest partition's tally and PartLoadSum
	// the total, so PartImbalance recovers the paper's max/mean ratio.
	PartLoadMax int64
	PartLoadSum int64
}

// ServerCounters tallies many-world server activity: scheduling outcomes,
// plan-cache effectiveness and the hibernation lifecycle. WorldsActive and
// WorldsHibernated are gauges (current occupancy); everything else is a
// monotonic counter since server start.
type ServerCounters struct {
	// WorldsActive is the number of resident (non-hibernated) worlds.
	WorldsActive int64
	// WorldsHibernated is the number of worlds currently checkpointed out.
	WorldsHibernated int64
	// TicksRun counts world-ticks executed by the shared pool.
	TicksRun int64
	// TickDeadlineMisses counts scheduled ticks that started after their
	// deadline under real-time serving; TickLagNanos accumulates how late.
	TickDeadlineMisses int64
	TickLagNanos       int64
	// PlanCacheHits / PlanCacheMisses count AddWorld script-hash lookups
	// that reused / compiled a plan. With N worlds of one script the hit
	// rate is (N-1)/N.
	PlanCacheHits   int64
	PlanCacheMisses int64
	// Hibernations / Restores count checkpoint-out and transparent
	// wake-on-access events.
	Hibernations int64
	Restores     int64
}

// PartMessages returns the total cross-partition messages per the §4.2
// accounting: ghost refreshes plus foreign effects plus migrations.
func (c ExecCounters) PartMessages() int64 {
	return c.PartMsgsGhost + c.PartMsgsEffect + c.PartMsgsMigrate
}

// PartImbalance returns the load-balance ratio busiest/mean over everything
// tallied so far (1.0 = perfectly balanced, parts = one partition did all
// the work). Zero when nothing ran partitioned.
func (c ExecCounters) PartImbalance(parts int) float64 {
	if c.PartLoadSum <= 0 || parts <= 0 {
		return 0
	}
	return float64(c.PartLoadMax) * float64(parts) / float64(c.PartLoadSum)
}

// VectorFraction returns the share of row evaluations that were vectorized
// (0 when nothing ran).
func (c ExecCounters) VectorFraction() float64 {
	total := c.VectorRows + c.ScalarRows
	if total == 0 {
		return 0
	}
	return float64(c.VectorRows) / float64(total)
}
