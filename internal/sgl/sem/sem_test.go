package sem

import (
	"strings"
	"testing"

	"repro/internal/combinator"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/parser"
	"repro/internal/value"
)

func analyze(t *testing.T, src string) (*Info, error) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(p)
}

func mustAnalyze(t *testing.T, src string) *Info {
	t.Helper()
	info, err := analyze(t, src)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := analyze(t, src)
	if err == nil {
		t.Fatalf("Analyze succeeded, want error containing %q", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not contain %q", err, fragment)
	}
}

const okSrc = `
class Unit {
  state:
    number x = 0;
    number hp = 100;
    ref<Unit> boss = null;
  effects:
    number damage : sum;
    number vx : avg;
  update:
    hp = hp - damage;
  run {
    let d = x * 2;
    accum number cnt with sum over Unit u from Unit {
      if (u.x >= x - d && u.x <= x + d) {
        cnt <- 1;
      }
    } in {
      if (cnt > 1) {
        vx <- 1;
      }
    }
    waitNextTick;
    if (boss != null) {
      boss.damage <- 1;
    }
  }
}
`

func TestAnalyzeOK(t *testing.T) {
	info := mustAnalyze(t, okSrc)
	cls, ok := info.Schema.Class("Unit")
	if !ok {
		t.Fatal("schema missing Unit")
	}
	if len(cls.State) != 3 || len(cls.Effects) != 2 {
		t.Fatalf("schema shape: %d state, %d effects", len(cls.State), len(cls.Effects))
	}
	if a, _ := cls.EffectAttr("damage"); a.Comb != combinator.Sum {
		t.Errorf("damage comb = %v", a.Comb)
	}
	cd := info.Program.Classes[0]
	if cd.NumPhases != 2 {
		t.Errorf("NumPhases = %d, want 2", cd.NumPhases)
	}
	if cd.NumSlots < 3 { // d, cnt, u
		t.Errorf("NumSlots = %d", cd.NumSlots)
	}
	// The accum body's contribution resolved to the accumulator slot.
	acc := cd.Run.Stmts[1].(*ast.AccumStmt)
	inner := acc.Body.Stmts[0].(*ast.IfStmt).Then.Stmts[0].(*ast.EffectAssign)
	if inner.AccumSlot != acc.Slot {
		t.Errorf("contribution AccumSlot = %d, want %d", inner.AccumSlot, acc.Slot)
	}
	// boss.damage resolved to Unit's effect index.
	guard := cd.Run.Stmts[3].(*ast.IfStmt)
	ea := guard.Then.Stmts[0].(*ast.EffectAssign)
	if ea.TargetClass != "Unit" || ea.AttrIdx != cls.EffectIndex("damage") {
		t.Errorf("cross-object emission resolution: %+v", ea)
	}
}

func TestStateReadOnlyEffectWriteOnly(t *testing.T) {
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run { x <- 1; }
}`, "no effect attribute")
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run {
    if (e > 0) { x <- 1; }
  }
}`, "write-only")
	// Effects readable in update rules.
	mustAnalyze(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  update: x = x + e;
}`)
}

func TestAccumRules(t *testing.T) {
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run {
    accum number c with sum over C u from C {
      if (c > 0) { c <- 1; }
    } in { }
  }
}`, "write-only inside the accum body")
	wantErr(t, `
class C {
  state: number x = 0;
  run {
    accum number c with sum over C u from C {
      accum number d with sum over C v from C { } in { }
    } in { }
  }
}`, "nested accum")
	wantErr(t, `
class C {
  state: number x = 0;
  run {
    accum number c with bogus over C u from C { } in { }
  }
}`, "unknown combinator")
	wantErr(t, `
class C {
  state: number x = 0;
  run {
    accum number c with sum over D u from D { } in { }
  }
}`, "unknown class")
	// Accum over a set<ref> source is fine; accum in the in-block is fine.
	mustAnalyze(t, `
class C {
  state:
    number x = 0;
    set<ref<C>> friends;
  run {
    accum number c with sum over C u from friends {
      c <- u.x;
    } in {
      accum number d with max over C v from C {
        d <- v.x;
      } in { }
    }
  }
}`)
}

func TestWaitRestrictions(t *testing.T) {
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run {
    if (x > 0) { waitNextTick; }
  }
}`, "top level")
	wantErr(t, `
class C {
  state: number x = 0;
  run {
    accum number c with sum over C u from C {
      waitNextTick;
    } in { }
  }
}`, "top level")
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run {
    atomic { waitNextTick; e <- 1; }
  }
}`, "top level")
}

func TestLocalsDoNotSurviveWait(t *testing.T) {
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run {
    let a = 1;
    waitNextTick;
    e <- a;
  }
}`, "undefined name")
}

func TestAtomicRules(t *testing.T) {
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : max;
  run {
    atomic (x >= 0) { e <- 1; }
  }
}`, "invertible combinator")
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run {
    atomic (x + 1) { e <- 1; }
  }
}`, "want bool")
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run {
    atomic { atomic { e <- 1; } }
  }
}`, "nested atomic")
}

func TestTypeErrors(t *testing.T) {
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run { e <- true; }
}`, "assigning bool")
	wantErr(t, `
class C {
  state: bool b = false;
  effects: number e : sum;
  run { if (b + 1 > 0) { e <- 1; } }
}`, "needs numbers")
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run { if (x) { e <- 1; } }
}`, "want bool")
	wantErr(t, `
class C {
  state: set<number> s;
  effects: number e : sum;
  run { if (s == s) { e <- 1; } }
}`, "sets are compared")
	wantErr(t, `
class C {
  state: number x = 0;
  effects: ref<C> r : maxby;
  run { r <- self(); }
}`, "requires a `by <key>`")
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run { e <- 1 by 2; }
}`, "only valid for minby/maxby")
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run { e <= 1; }
}`, "inserts into set effects")
}

func TestSchemaErrors(t *testing.T) {
	wantErr(t, `
class C {
  state:
    number x = 0;
    number x = 1;
}`, "duplicate attribute")
	wantErr(t, `
class C {
  state: ref<Nope> r = null;
}`, "unknown class")
	wantErr(t, `
class C { state: number x = 0; }
class C { state: number y = 0; }
`, "duplicate class")
	wantErr(t, `
class C {
  effects: bool b : sum;
}`, "cannot combine")
	wantErr(t, `
class C {
  state: number x = 0;
  update: y = 1;
}`, "unknown state attribute")
	wantErr(t, `
class C {
  state: number x = 0 by physics;
  update: x = 1;
}`, "owned by component")
}

func TestHandlerRules(t *testing.T) {
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  handlers:
    when (x) { e <- 1; }
}`, "want bool")
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  handlers:
    when (x > 0) {
      accum number c with sum over C u from C { } in { }
    }
}`, "not allowed inside handlers")
}

func TestAnalyzeExpr(t *testing.T) {
	info := mustAnalyze(t, okSrc)
	e, err := parser.ParseExpr("hp < 50 && x > 0")
	if err != nil {
		t.Fatal(err)
	}
	ty, err := info.AnalyzeExpr("Unit", e)
	if err != nil {
		t.Fatal(err)
	}
	if ty.Kind != value.KindBool {
		t.Errorf("type = %v", ty)
	}
	e2, _ := parser.ParseExpr("nonexistent > 1")
	if _, err := info.AnalyzeExpr("Unit", e2); err == nil {
		t.Error("undefined name must error")
	}
	if _, err := info.AnalyzeExpr("Nope", e); err == nil {
		t.Error("unknown class must error")
	}
}

func TestShadowingRejected(t *testing.T) {
	wantErr(t, `
class C {
  state: number x = 0;
  effects: number e : sum;
  run { let x = 1; e <- x; }
}`, "shadows a class attribute")
	wantErr(t, `
class C {
  state: number y = 0;
  effects: number e : sum;
  run { let a = 1; let a = 2; e <- a; }
}`, "redeclared local")
}
