// Package sem performs semantic analysis of parsed SGL programs: it builds
// the relational schema from class declarations, resolves every identifier,
// type-checks expressions, numbers waitNextTick phases, assigns local
// variable slots, and enforces the state-effect discipline (§2 of the
// paper): state is read-only within a tick, effects are write-only, accum
// accumulators are write-only in the loop body and read-only afterwards.
package sem

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/combinator"
	"repro/internal/schema"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
	"repro/internal/value"
)

// Info is the result of analysis: the derived schema plus the (mutated,
// annotated) program.
type Info struct {
	Program *ast.Program
	Schema  *schema.Schema
	// Combs maps class name -> effect attr index -> combinator kind.
	Combs map[string][]combinator.Kind
}

// Analyze checks prog and returns binding/type information. The AST is
// annotated in place.
func Analyze(prog *ast.Program) (*Info, error) {
	c := &checker{
		prog:  prog,
		sch:   schema.NewSchema(),
		combs: make(map[string][]combinator.Kind),
	}
	c.buildSchema()
	if len(c.errs) == 0 {
		if err := c.sch.Validate(); err != nil {
			c.errs = append(c.errs, err)
		}
	}
	if len(c.errs) == 0 {
		for _, cd := range prog.Classes {
			c.checkClass(cd)
		}
	}
	if len(c.errs) > 0 {
		msgs := make([]string, len(c.errs))
		for i, e := range c.errs {
			msgs[i] = e.Error()
		}
		return nil, errors.New(strings.Join(msgs, "\n"))
	}
	return &Info{Program: prog, Schema: c.sch, Combs: c.combs}, nil
}

// AnalyzeExpr resolves and type-checks a standalone expression in the
// context of a class's state attributes (no locals, no effect reads). It
// returns the expression's type. Engine-level tools (reactive interrupts,
// debugger watch conditions) use it to accept SGL syntax at runtime.
func (i *Info) AnalyzeExpr(class string, e ast.Expr) (ast.Type, error) {
	cls, ok := i.Schema.Class(class)
	if !ok {
		return ast.Type{}, fmt.Errorf("sem: unknown class %q", class)
	}
	c := &checker{prog: i.Program, sch: i.Schema, combs: i.Combs, cls: cls,
		iterSlots: make(map[int]bool)}
	for _, cd := range i.Program.Classes {
		if cd.Name == class {
			c.class = cd
		}
	}
	t := c.checkExpr(e)
	if len(c.errs) > 0 {
		msgs := make([]string, len(c.errs))
		for j, err := range c.errs {
			msgs[j] = err.Error()
		}
		return ast.Type{}, errors.New(strings.Join(msgs, "\n"))
	}
	return t, nil
}

type checker struct {
	prog  *ast.Program
	sch   *schema.Schema
	combs map[string][]combinator.Kind
	errs  []error

	// Per-class checking context.
	class *ast.ClassDecl
	cls   *schema.Class

	scopes    []map[string]*local // lexical scopes of frame locals
	nextSlot  int
	inAccum   int // nesting depth of accum bodies
	inAtomic  bool
	inHandler bool
	inUpdate  bool // update rules: effects readable, extents forbidden
	accumStk  []*accumCtx
	iterSlots map[int]bool
}

type local struct {
	slot     int
	ty       ast.Type
	readable bool // false for accum accumulators inside their body
}

type accumCtx struct {
	name string
	slot int
	comb combinator.Kind
	ty   ast.Type
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// astTypeToAttr converts an AST type into schema attribute fields.
func astTypeToAttr(t ast.Type) (kind value.Kind, refClass string, elemKind value.Kind, elemRef string) {
	kind = t.Kind
	refClass = t.RefClass
	if t.Kind == value.KindSet && t.Elem != nil {
		elemKind = t.Elem.Kind
		elemRef = t.Elem.RefClass
	}
	return
}

func (c *checker) buildSchema() {
	for _, cd := range c.prog.Classes {
		var states, effects []schema.Attr
		for _, s := range cd.States {
			k, rc, ek, er := astTypeToAttr(s.Type)
			a := schema.Attr{Name: s.Name, Kind: k, RefClass: rc, ElemKind: ek, ElemRef: er, Owner: s.Owner}
			if s.Init != nil {
				v, ok := constValue(s.Init)
				if !ok {
					c.errorf(s.Pos, "class %s: initializer of %s must be a literal", cd.Name, s.Name)
				} else if v.Kind() != k && !(k == value.KindRef && v.Kind() == value.KindRef) {
					c.errorf(s.Pos, "class %s: initializer of %s has type %s, want %s", cd.Name, s.Name, v.Kind(), k)
				} else {
					a.Default = v
				}
			}
			states = append(states, a)
		}
		var combs []combinator.Kind
		for _, e := range cd.Effects {
			k, rc, ek, er := astTypeToAttr(e.Type)
			comb, err := combinator.Parse(e.Comb)
			if err != nil {
				c.errorf(e.Pos, "class %s: effect %s: %v", cd.Name, e.Name, err)
				comb = combinator.Sum
			}
			effects = append(effects, schema.Attr{Name: e.Name, Kind: k, RefClass: rc, ElemKind: ek, ElemRef: er, Comb: comb})
			combs = append(combs, comb)
		}
		cls, err := schema.NewClass(cd.Name, states, effects)
		if err != nil {
			c.errorf(cd.Pos, "%v", err)
			continue
		}
		if err := c.sch.Add(cls); err != nil {
			c.errorf(cd.Pos, "%v", err)
			continue
		}
		c.combs[cd.Name] = combs
	}
}

// constValue evaluates literal expressions (including negated numbers) for
// state initializers.
func constValue(e ast.Expr) (value.Value, bool) {
	switch e := e.(type) {
	case *ast.NumLit:
		return value.Num(e.V), true
	case *ast.BoolLit:
		return value.Bool(e.V), true
	case *ast.StrLit:
		return value.Str(e.V), true
	case *ast.NullLit:
		return value.NullRef(), true
	case *ast.UnaryExpr:
		if e.Op == token.MINUS {
			if v, ok := constValue(e.X); ok && v.Kind() == value.KindNumber {
				return value.Num(-v.AsNumber()), true
			}
		}
	}
	return value.Value{}, false
}

func (c *checker) checkClass(cd *ast.ClassDecl) {
	cls, _ := c.sch.Class(cd.Name)
	if cls == nil {
		return
	}
	c.class, c.cls = cd, cls
	c.nextSlot = 0
	c.iterSlots = make(map[int]bool)

	// Update rules: each targets an unowned state attribute, at most once.
	c.inUpdate = true
	seen := make(map[string]bool)
	for _, r := range cd.Updates {
		a, ok := cls.StateAttr(r.Attr)
		if !ok {
			c.errorf(r.Pos, "update rule targets unknown state attribute %q", r.Attr)
			continue
		}
		if a.Owner != "" {
			c.errorf(r.Pos, "state attribute %q is owned by component %q and cannot have an expression update rule", r.Attr, a.Owner)
		}
		if seen[r.Attr] {
			c.errorf(r.Pos, "duplicate update rule for %q", r.Attr)
		}
		seen[r.Attr] = true
		t := c.checkExpr(r.Expr)
		want := ast.Type{Kind: a.Kind, RefClass: a.RefClass}
		if a.Kind == value.KindSet {
			el := ast.Type{Kind: a.ElemKind, RefClass: a.ElemRef}
			want = ast.SetT(el)
		}
		if !t.Equal(want) && t.Kind != value.KindInvalid {
			c.errorf(r.Pos, "update rule for %q computes %s, want %s", r.Attr, t, want)
		}
	}
	c.inUpdate = false

	// Run block: phase numbering + statement checks.
	if cd.Run != nil {
		c.pushScope()
		phase := 0
		for _, s := range cd.Run.Stmts {
			if w, ok := s.(*ast.WaitStmt); ok {
				phase++
				w.Phase = phase
				// Locals do not survive a tick boundary.
				c.scopes[len(c.scopes)-1] = make(map[string]*local)
				continue
			}
			c.checkStmt(s, true)
		}
		c.popScope()
		cd.NumPhases = phase + 1
	} else {
		cd.NumPhases = 1
	}

	// Handlers: condition over state, body without wait/accum/atomic.
	c.inHandler = true
	for _, h := range cd.Handlers {
		t := c.checkExpr(h.Cond)
		if t.Kind != value.KindBool && t.Kind != value.KindInvalid {
			c.errorf(h.Pos, "handler condition has type %s, want bool", t)
		}
		c.pushScope()
		for _, s := range h.Body.Stmts {
			c.checkStmt(s, false)
		}
		c.popScope()
	}
	c.inHandler = false

	cd.NumSlots = c.nextSlot
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*local)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookupLocal(name string) *local {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if l, ok := c.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (c *checker) declare(pos token.Pos, name string, ty ast.Type, readable bool) int {
	if c.lookupLocal(name) != nil {
		c.errorf(pos, "redeclared local %q", name)
	}
	if c.cls.StateIndex(name) >= 0 || c.cls.EffectIndex(name) >= 0 {
		c.errorf(pos, "local %q shadows a class attribute", name)
	}
	slot := c.nextSlot
	c.nextSlot++
	c.scopes[len(c.scopes)-1][name] = &local{slot: slot, ty: ty, readable: readable}
	return slot
}

func (c *checker) checkStmt(s ast.Stmt, topLevel bool) {
	switch s := s.(type) {
	case *ast.LetStmt:
		t := c.checkExpr(s.Expr)
		s.Slot = c.declare(s.Pos, s.Name, t, true)
	case *ast.IfStmt:
		t := c.checkExpr(s.Cond)
		if t.Kind != value.KindBool && t.Kind != value.KindInvalid {
			c.errorf(s.Pos, "if condition has type %s, want bool", t)
		}
		c.pushScope()
		for _, st := range s.Then.Stmts {
			c.checkStmt(st, false)
		}
		c.popScope()
		if s.Else != nil {
			c.pushScope()
			for _, st := range s.Else.Stmts {
				c.checkStmt(st, false)
			}
			c.popScope()
		}
	case *ast.WaitStmt:
		if !topLevel {
			c.errorf(s.Pos, "waitNextTick is only allowed at the top level of the run block (not inside if, accum, atomic or handlers)")
		}
	case *ast.AtomicStmt:
		if c.inAtomic {
			c.errorf(s.Pos, "nested atomic blocks are not allowed")
		}
		if c.inAccum > 0 {
			c.errorf(s.Pos, "atomic is not allowed inside an accum body")
		}
		if c.inHandler {
			c.errorf(s.Pos, "atomic is not allowed inside handlers")
		}
		for _, cons := range s.Constraints {
			t := c.checkExpr(cons)
			if t.Kind != value.KindBool && t.Kind != value.KindInvalid {
				c.errorf(s.Pos, "atomic constraint has type %s, want bool", t)
			}
		}
		c.inAtomic = true
		c.pushScope()
		for _, st := range s.Body.Stmts {
			c.checkStmt(st, false)
		}
		c.popScope()
		c.inAtomic = false
	case *ast.AccumStmt:
		c.checkAccum(s)
	case *ast.EffectAssign:
		c.checkEffectAssign(s)
	}
}

func (c *checker) checkAccum(s *ast.AccumStmt) {
	if c.inAccum > 0 {
		c.errorf(s.Pos, "nested accum inside an accum body is not supported")
	}
	if c.inHandler {
		c.errorf(s.Pos, "accum is not allowed inside handlers")
	}
	comb, err := combinator.Parse(s.Comb)
	if err != nil {
		c.errorf(s.Pos, "accum: %v", err)
		comb = combinator.Sum
	}
	if !comb.Accepts(s.ValType.Kind) {
		c.errorf(s.Pos, "accum: combinator %s cannot combine %s", comb, s.ValType)
	}
	iterCls, ok := c.sch.Class(s.IterClass)
	if !ok {
		c.errorf(s.Pos, "accum: unknown class %q", s.IterClass)
		return
	}
	srcT := c.checkExpr(s.Source)
	switch {
	case srcT.Kind == value.KindSet && srcT.Elem != nil && srcT.Elem.Kind == value.KindRef:
		if srcT.Elem.RefClass != iterCls.Name {
			c.errorf(s.Pos, "accum: source elements are ref<%s>, iteration variable is %s", srcT.Elem.RefClass, iterCls.Name)
		}
	case srcT.Kind == value.KindInvalid:
	default:
		c.errorf(s.Pos, "accum: source has type %s, want a class extent or set<ref<%s>>", srcT, iterCls.Name)
	}

	// Result type after combination.
	resKind := comb.ResultKind(s.ValType.Kind)
	resT := s.ValType
	resT.Kind = resKind

	c.pushScope()
	s.Slot = c.declare(s.Pos, s.Name, resT, false) // write-only inside body
	s.IterSlot = c.declare(s.Pos, s.IterName, ast.RefT(iterCls.Name), true)
	c.iterSlots[s.IterSlot] = true
	c.accumStk = append(c.accumStk, &accumCtx{name: s.Name, slot: s.Slot, comb: comb, ty: s.ValType})
	c.inAccum++
	for _, st := range s.Body.Stmts {
		c.checkStmt(st, false)
	}
	c.inAccum--
	c.accumStk = c.accumStk[:len(c.accumStk)-1]
	c.popScope()

	// `in` block: accumulator readable, iteration variable out of scope.
	c.pushScope()
	c.scopes[len(c.scopes)-1][s.Name] = &local{slot: s.Slot, ty: resT, readable: true}
	for _, st := range s.In.Stmts {
		c.checkStmt(st, false)
	}
	c.popScope()
}

func (c *checker) checkEffectAssign(s *ast.EffectAssign) {
	s.AccumSlot = -1
	s.AttrIdx = -1
	vT := c.checkExpr(s.Value)
	if s.Key != nil {
		kT := c.checkExpr(s.Key)
		if kT.Kind != value.KindNumber && kT.Kind != value.KindInvalid {
			c.errorf(s.Pos, "`by` key has type %s, want number", kT)
		}
	}

	// Accum accumulator target?
	if s.Target == nil && len(c.accumStk) > 0 {
		top := c.accumStk[len(c.accumStk)-1]
		if top.name == s.Attr {
			s.AccumSlot = top.slot
			c.checkContribution(s, top.ty, top.comb, vT)
			return
		}
	}

	// Effect attribute target.
	targetCls := c.cls
	s.TargetClass = c.cls.Name
	if s.Target != nil {
		tT := c.checkExpr(s.Target)
		if tT.Kind == value.KindInvalid {
			return
		}
		if tT.Kind != value.KindRef {
			c.errorf(s.Pos, "effect-assignment target has type %s, want a ref", tT)
			return
		}
		tc, ok := c.sch.Class(tT.RefClass)
		if !ok {
			c.errorf(s.Pos, "unknown class %q", tT.RefClass)
			return
		}
		targetCls = tc
		s.TargetClass = tc.Name
	}
	idx := targetCls.EffectIndex(s.Attr)
	if idx < 0 {
		c.errorf(s.Pos, "class %s has no effect attribute %q (state attributes cannot be assigned during a tick)", targetCls.Name, s.Attr)
		return
	}
	s.AttrIdx = idx
	attr := targetCls.Effects[idx]
	if c.inAtomic {
		switch attr.Comb {
		case combinator.Sum, combinator.Avg, combinator.Count:
		default:
			c.errorf(s.Pos, "effects written inside atomic must use an invertible combinator (sum/avg/count); %q uses %s", s.Attr, attr.Comb)
		}
	}
	attrT := ast.Type{Kind: attr.Kind, RefClass: attr.RefClass}
	if attr.Kind == value.KindSet {
		el := ast.Type{Kind: attr.ElemKind, RefClass: attr.ElemRef}
		attrT = ast.SetT(el)
	}
	c.checkContribution(s, attrT, attr.Comb, vT)
}

// checkContribution validates the value (and `by` key) against the target's
// declared type and combinator.
func (c *checker) checkContribution(s *ast.EffectAssign, attrT ast.Type, comb combinator.Kind, vT ast.Type) {
	if vT.Kind == value.KindInvalid {
		return
	}
	if s.SetInsert {
		if attrT.Kind != value.KindSet {
			c.errorf(s.Pos, "<= inserts into set effects; %q is %s", s.Attr, attrT)
			return
		}
		if comb != combinator.SetUnion {
			c.errorf(s.Pos, "<= requires the union combinator on %q", s.Attr)
		}
		if attrT.Elem != nil && !vT.Equal(*attrT.Elem) {
			c.errorf(s.Pos, "inserting %s into set<%s>", vT, attrT.Elem)
		}
		return
	}
	switch comb {
	case combinator.Count:
		// Payload ignored; anything scalar goes.
		if vT.Kind == value.KindSet {
			c.errorf(s.Pos, "count effect %q cannot take a set payload", s.Attr)
		}
	case combinator.MinBy, combinator.MaxBy:
		if s.Key == nil {
			c.errorf(s.Pos, "effect %q uses %s and requires a `by <key>` clause", s.Attr, comb)
		}
		if !vT.Equal(attrT) {
			c.errorf(s.Pos, "assigning %s to effect %q of type %s", vT, s.Attr, attrT)
		}
	default:
		if s.Key != nil {
			c.errorf(s.Pos, "`by` key is only valid for minby/maxby effects")
		}
		if !vT.Equal(attrT) {
			c.errorf(s.Pos, "assigning %s to effect %q of type %s", vT, s.Attr, attrT)
		}
	}
}

// invalidT marks expressions whose type could not be determined; errors are
// already reported.
var invalidT = ast.Type{Kind: value.KindInvalid}

func (c *checker) checkExpr(e ast.Expr) ast.Type {
	switch e := e.(type) {
	case *ast.NumLit:
		return ast.NumberT
	case *ast.BoolLit:
		return ast.BoolT
	case *ast.StrLit:
		return ast.StringT
	case *ast.NullLit:
		// Type fixed by the comparison that uses it; default to a generic ref.
		if e.Ty.Kind == value.KindInvalid {
			e.Ty = ast.Type{Kind: value.KindRef}
		}
		return e.Ty
	case *ast.Ident:
		return c.checkIdent(e)
	case *ast.FieldExpr:
		return c.checkField(e)
	case *ast.UnaryExpr:
		t := c.checkExpr(e.X)
		switch e.Op {
		case token.MINUS:
			if t.Kind != value.KindNumber && t.Kind != value.KindInvalid {
				c.errorf(e.Pos, "operator - needs a number, got %s", t)
			}
			e.Ty = ast.NumberT
		case token.NOT:
			if t.Kind != value.KindBool && t.Kind != value.KindInvalid {
				c.errorf(e.Pos, "operator ! needs a bool, got %s", t)
			}
			e.Ty = ast.BoolT
		}
		return e.Ty
	case *ast.BinaryExpr:
		return c.checkBinary(e)
	case *ast.CondExpr:
		ct := c.checkExpr(e.C)
		if ct.Kind != value.KindBool && ct.Kind != value.KindInvalid {
			c.errorf(e.Pos, "?: condition has type %s, want bool", ct)
		}
		tt := c.checkExpr(e.T)
		ft := c.checkExpr(e.F)
		if !tt.Equal(ft) && tt.Kind != value.KindInvalid && ft.Kind != value.KindInvalid {
			c.errorf(e.Pos, "?: branches have different types %s and %s", tt, ft)
		}
		e.Ty = tt
		return e.Ty
	case *ast.CallExpr:
		return c.checkCall(e)
	default:
		return invalidT
	}
}

func (c *checker) checkIdent(e *ast.Ident) ast.Type {
	// `self` keyword-like identifier.
	if e.Name == "self" {
		e.Bind = ast.Binding{Kind: ast.BindSelf}
		e.Ty = ast.RefT(c.cls.Name)
		return e.Ty
	}
	if l := c.lookupLocal(e.Name); l != nil {
		if !l.readable {
			c.errorf(e.Pos, "accumulator %q is write-only inside the accum body", e.Name)
		}
		kind := ast.BindLocal
		if l.ty.Kind == value.KindRef && c.isIterSlot(l.slot) {
			kind = ast.BindIter
		}
		e.Bind = ast.Binding{Kind: kind, Slot: l.slot, Class: l.ty.RefClass}
		e.Ty = l.ty
		return e.Ty
	}
	if i := c.cls.StateIndex(e.Name); i >= 0 {
		a := c.cls.State[i]
		e.Bind = ast.Binding{Kind: ast.BindStateAttr, AttrIdx: i}
		e.Ty = attrType(a)
		return e.Ty
	}
	if i := c.cls.EffectIndex(e.Name); i >= 0 {
		if !c.inUpdate {
			c.errorf(e.Pos, "effect attribute %q is write-only during a tick (readable only in update rules)", e.Name)
			return invalidT
		}
		a := c.cls.Effects[i]
		e.Bind = ast.Binding{Kind: ast.BindEffectAttr, AttrIdx: i}
		t := attrType(a)
		t.Kind = a.Comb.ResultKind(a.Kind)
		e.Ty = t
		return e.Ty
	}
	if _, ok := c.sch.Class(e.Name); ok {
		if c.inUpdate {
			c.errorf(e.Pos, "class extents cannot appear in update rules")
			return invalidT
		}
		e.Bind = ast.Binding{Kind: ast.BindExtent, Class: e.Name}
		e.Ty = ast.SetT(ast.RefT(e.Name))
		return e.Ty
	}
	c.errorf(e.Pos, "undefined name %q", e.Name)
	return invalidT
}

func (c *checker) isIterSlot(slot int) bool { return c.iterSlots[slot] }

func attrType(a schema.Attr) ast.Type {
	t := ast.Type{Kind: a.Kind, RefClass: a.RefClass}
	if a.Kind == value.KindSet {
		el := ast.Type{Kind: a.ElemKind, RefClass: a.ElemRef}
		t = ast.SetT(el)
	}
	return t
}

func (c *checker) checkField(e *ast.FieldExpr) ast.Type {
	xT := c.checkExpr(e.X)
	if xT.Kind == value.KindInvalid {
		return invalidT
	}
	if xT.Kind != value.KindRef {
		c.errorf(e.Pos, "field access on %s; only refs have attributes", xT)
		return invalidT
	}
	cls, ok := c.sch.Class(xT.RefClass)
	if !ok {
		c.errorf(e.Pos, "unknown class %q", xT.RefClass)
		return invalidT
	}
	i := cls.StateIndex(e.Name)
	if i < 0 {
		if cls.EffectIndex(e.Name) >= 0 {
			c.errorf(e.Pos, "effect attribute %s.%s is write-only (use `expr.%s <- v`)", cls.Name, e.Name, e.Name)
		} else {
			c.errorf(e.Pos, "class %s has no state attribute %q", cls.Name, e.Name)
		}
		return invalidT
	}
	e.Class = cls.Name
	e.AttrIdx = i
	e.Ty = attrType(cls.State[i])
	return e.Ty
}

func (c *checker) checkBinary(e *ast.BinaryExpr) ast.Type {
	xT := c.checkExpr(e.X)
	yT := c.checkExpr(e.Y)
	bad := xT.Kind == value.KindInvalid || yT.Kind == value.KindInvalid
	switch e.Op {
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT:
		if !bad && (xT.Kind != value.KindNumber || yT.Kind != value.KindNumber) {
			c.errorf(e.Pos, "operator %s needs numbers, got %s and %s", e.Op, xT, yT)
		}
		e.Ty = ast.NumberT
	case token.LT, token.LE, token.GT, token.GE:
		if !bad && (xT.Kind != yT.Kind || (xT.Kind != value.KindNumber && xT.Kind != value.KindString)) {
			c.errorf(e.Pos, "operator %s needs two numbers or two strings, got %s and %s", e.Op, xT, yT)
		}
		e.Ty = ast.BoolT
	case token.EQ, token.NEQ:
		// Fix null literal types from context.
		if n, ok := e.X.(*ast.NullLit); ok && yT.Kind == value.KindRef {
			n.Ty = yT
			xT = yT
		}
		if n, ok := e.Y.(*ast.NullLit); ok && xT.Kind == value.KindRef {
			n.Ty = xT
			yT = xT
		}
		if !bad && xT.Kind != yT.Kind {
			c.errorf(e.Pos, "comparing %s with %s", xT, yT)
		}
		if !bad && xT.Kind == value.KindSet {
			c.errorf(e.Pos, "sets are compared with size()/contains(), not ==")
		}
		e.Ty = ast.BoolT
	case token.ANDAND, token.OROR:
		if !bad && (xT.Kind != value.KindBool || yT.Kind != value.KindBool) {
			c.errorf(e.Pos, "operator %s needs bools, got %s and %s", e.Op, xT, yT)
		}
		e.Ty = ast.BoolT
	default:
		c.errorf(e.Pos, "unknown operator %s", e.Op)
		e.Ty = invalidT
	}
	return e.Ty
}

func (c *checker) checkCall(e *ast.CallExpr) ast.Type {
	b, ok := ast.BuiltinByName[e.Name]
	if !ok {
		c.errorf(e.Pos, "unknown function %q", e.Name)
		return invalidT
	}
	e.Builtin = b
	argT := make([]ast.Type, len(e.Args))
	for i, a := range e.Args {
		argT[i] = c.checkExpr(a)
	}
	needNums := func(n int) bool {
		if len(e.Args) != n {
			c.errorf(e.Pos, "%s takes %d arguments, got %d", e.Name, n, len(e.Args))
			return false
		}
		for i, t := range argT {
			if t.Kind != value.KindNumber && t.Kind != value.KindInvalid {
				c.errorf(e.Pos, "%s: argument %d has type %s, want number", e.Name, i+1, t)
				return false
			}
		}
		return true
	}
	switch b {
	case ast.BAbs, ast.BFloor, ast.BCeil, ast.BSqrt:
		needNums(1)
		e.Ty = ast.NumberT
	case ast.BMin, ast.BMax:
		needNums(2)
		e.Ty = ast.NumberT
	case ast.BClamp:
		needNums(3)
		e.Ty = ast.NumberT
	case ast.BDist:
		needNums(4)
		e.Ty = ast.NumberT
	case ast.BSize:
		if len(e.Args) != 1 {
			c.errorf(e.Pos, "size takes 1 argument")
		} else if argT[0].Kind != value.KindSet && argT[0].Kind != value.KindInvalid {
			c.errorf(e.Pos, "size: argument has type %s, want a set", argT[0])
		}
		e.Ty = ast.NumberT
	case ast.BContains:
		if len(e.Args) != 2 {
			c.errorf(e.Pos, "contains takes 2 arguments")
		} else if argT[0].Kind == value.KindSet && argT[0].Elem != nil &&
			argT[1].Kind != value.KindInvalid && !argT[1].Equal(*argT[0].Elem) {
			c.errorf(e.Pos, "contains: element type %s does not match set<%s>", argT[1], argT[0].Elem)
		} else if argT[0].Kind != value.KindSet && argT[0].Kind != value.KindInvalid {
			c.errorf(e.Pos, "contains: first argument has type %s, want a set", argT[0])
		}
		e.Ty = ast.BoolT
	case ast.BID:
		if len(e.Args) != 1 {
			c.errorf(e.Pos, "id takes 1 argument")
		} else if argT[0].Kind != value.KindRef && argT[0].Kind != value.KindInvalid {
			c.errorf(e.Pos, "id: argument has type %s, want a ref", argT[0])
		}
		e.Ty = ast.NumberT
	case ast.BSelfFn:
		if len(e.Args) != 0 {
			c.errorf(e.Pos, "self takes no arguments")
		}
		e.Ty = ast.RefT(c.cls.Name)
	default:
		e.Ty = invalidT
	}
	return e.Ty
}
