// Package ast defines the abstract syntax tree of SGL programs. Nodes carry
// source positions and, after semantic analysis (package sem), resolved
// binding and type annotations consumed by the relational compiler (§2),
// the object-at-a-time baseline interpreter (§1–2's comparison model) and
// the vectorized batch-kernel compiler (§4).
package ast

import (
	"repro/internal/sgl/token"
	"repro/internal/value"
)

// Type describes an SGL type: number, bool, string, ref<Class>, set<Elem>.
type Type struct {
	Kind     value.Kind
	RefClass string // for KindRef
	Elem     *Type  // for KindSet
}

// NumberT, BoolT and StringT are the scalar type singletons.
var (
	NumberT = Type{Kind: value.KindNumber}
	BoolT   = Type{Kind: value.KindBool}
	StringT = Type{Kind: value.KindString}
)

// RefT builds a reference type.
func RefT(class string) Type { return Type{Kind: value.KindRef, RefClass: class} }

// SetT builds a set type.
func SetT(elem Type) Type { return Type{Kind: value.KindSet, Elem: &elem} }

// Equal reports structural type equality.
func (t Type) Equal(o Type) bool {
	if t.Kind != o.Kind || t.RefClass != o.RefClass {
		return false
	}
	if t.Kind == value.KindSet {
		if (t.Elem == nil) != (o.Elem == nil) {
			return false
		}
		if t.Elem != nil {
			return t.Elem.Equal(*o.Elem)
		}
	}
	return true
}

func (t Type) String() string {
	switch t.Kind {
	case value.KindNumber:
		return "number"
	case value.KindBool:
		return "bool"
	case value.KindString:
		return "string"
	case value.KindRef:
		return "ref<" + t.RefClass + ">"
	case value.KindSet:
		if t.Elem == nil {
			return "set<?>"
		}
		return "set<" + t.Elem.String() + ">"
	default:
		return "invalid"
	}
}

// Program is a parsed SGL compilation unit.
type Program struct {
	Classes []*ClassDecl
}

// ClassDecl is one class declaration with its sections.
type ClassDecl struct {
	Pos      token.Pos
	Name     string
	States   []*StateDecl
	Effects  []*EffectDecl
	Updates  []*UpdateRule
	Handlers []*Handler
	Run      *Block // per-tick script; may be nil

	// NumSlots is the size of the local-variable frame for Run and all
	// handlers, assigned by semantic analysis.
	NumSlots int
	// NumPhases is the number of waitNextTick phases in Run (>= 1 when Run
	// is non-nil), assigned by semantic analysis.
	NumPhases int
}

// StateDecl declares a state attribute.
type StateDecl struct {
	Pos   token.Pos
	Name  string
	Type  Type
	Init  Expr   // optional literal initializer; nil = zero value
	Owner string // update component owning this attribute; "" = script/rule
}

// EffectDecl declares an effect attribute with its ⊕ combinator.
type EffectDecl struct {
	Pos  token.Pos
	Name string
	Type Type
	Comb string
}

// UpdateRule is an expression update rule: attr = expr, evaluated during
// the update step over old state plus combined effects.
type UpdateRule struct {
	Pos  token.Pos
	Attr string
	Expr Expr
}

// Handler is a reactive rule: when (cond) { body }, evaluated at the end of
// the update phase; its body sets effects for the next tick (§3.2).
type Handler struct {
	Pos  token.Pos
	Cond Expr
	Body *Block
}

// Block is a brace-delimited statement list.
type Block struct {
	Pos   token.Pos
	Stmts []Stmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// LetStmt declares an immutable local: let x = expr;
type LetStmt struct {
	Pos  token.Pos
	Name string
	Expr Expr
	Slot int // frame slot, assigned by sem
}

// EffectAssign emits an effect contribution: [target.]attr <- expr;
// Target nil means the executing object itself. SetInsert marks the `<=`
// form that inserts a single element into a set-valued effect.
type EffectAssign struct {
	Pos       token.Pos
	Target    Expr // nil = self; otherwise a ref-typed expression
	Attr      string
	Value     Expr
	Key       Expr // optional `by` selection key for minby/maxby combinators
	SetInsert bool

	// Resolved by sem: the class owning the effect attribute and its index
	// in that class's effect list. When the assignment feeds an enclosing
	// accum-loop accumulator instead of an effect attribute, AccumSlot is
	// the accumulator's frame slot and AttrIdx is -1.
	TargetClass string
	AttrIdx     int
	AccumSlot   int
}

// IfStmt is a conditional: if (cond) { } else { }.
type IfStmt struct {
	Pos  token.Pos
	Cond Expr
	Then *Block
	Else *Block // nil, or a Block possibly holding a single IfStmt (else-if)
}

// AccumStmt is the paper's accum-loop (§2.1):
//
//	accum TYPE id1 with COMB over CLASS id2 from EXPR { body } in { in }
//
// body runs (conceptually in parallel) once per element of the source; id1
// is write-only inside body and read-only inside in.
type AccumStmt struct {
	Pos       token.Pos
	ValType   Type
	Name      string // id1, the accumulator
	Comb      string
	IterClass string // class of the iteration variable
	IterName  string // id2
	Source    Expr   // extent or set<ref> expression
	Body      *Block
	In        *Block

	Slot     int // frame slot of the accumulator result
	IterSlot int // frame slot of the iteration variable
}

// WaitStmt is waitNextTick; — suspends the script until the next tick.
type WaitStmt struct {
	Pos token.Pos
	// Phase is the phase index that execution resumes at after this wait,
	// assigned by semantic analysis (program-counter lowering, §3.2).
	Phase int
}

// AtomicStmt is a transaction region with consistency constraints (§3.1):
// atomic (c1, c2, ...) { body }. All effect emissions in body either apply
// together or abort together; constraints are checked by the transaction
// update component against tentative post-update state.
type AtomicStmt struct {
	Pos         token.Pos
	Constraints []Expr
	Body        *Block
}

func (*LetStmt) stmtNode()      {}
func (*EffectAssign) stmtNode() {}
func (*IfStmt) stmtNode()       {}
func (*AccumStmt) stmtNode()    {}
func (*WaitStmt) stmtNode()     {}
func (*AtomicStmt) stmtNode()   {}

// Expr is implemented by all expression nodes. Type annotations are set by
// semantic analysis.
type Expr interface {
	exprNode()
	Position() token.Pos
	Type() Type
}

// BindKind classifies what a resolved identifier refers to.
type BindKind uint8

const (
	BindUnresolved BindKind = iota
	BindStateAttr           // state attribute of the executing object
	BindLocal               // let-bound local or accum result (frame slot)
	BindIter                // accum iteration variable (frame slot)
	BindExtent              // a class name used as a collection
	BindSelf                // the executing object itself (`self`)
	BindEffectAttr          // combined effect value (readable in update rules only)
)

// Binding is the resolution record attached to identifiers.
type Binding struct {
	Kind    BindKind
	Slot    int    // BindLocal/BindIter: frame slot
	AttrIdx int    // BindStateAttr: index into class state attrs
	Class   string // BindExtent: class name; BindIter: element class
}

// NumLit is a numeric literal.
type NumLit struct {
	Pos token.Pos
	V   float64
}

// BoolLit is true/false.
type BoolLit struct {
	Pos token.Pos
	V   bool
}

// StrLit is a string literal.
type StrLit struct {
	Pos token.Pos
	V   string
}

// NullLit is the null reference literal.
type NullLit struct {
	Pos token.Pos
	Ty  Type // ref class inferred from context by sem
}

// Ident is a name: state attribute, local, iteration variable, class
// extent, or `self`.
type Ident struct {
	Pos  token.Pos
	Name string
	Bind Binding
	Ty   Type
}

// FieldExpr reads a state attribute of another object: x.attr where x is
// ref-typed.
type FieldExpr struct {
	Pos  token.Pos
	X    Expr
	Name string

	AttrIdx int    // resolved state-attribute index in Class
	Class   string // class of the referenced object
	Ty      Type
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Pos token.Pos
	Op  token.Kind
	X   Expr
	Ty  Type
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Pos token.Pos
	Op  token.Kind
	X   Expr
	Y   Expr
	Ty  Type
}

// CondExpr is c ? t : f.
type CondExpr struct {
	Pos token.Pos
	C   Expr
	T   Expr
	F   Expr
	Ty  Type
}

// CallExpr invokes a builtin function.
type CallExpr struct {
	Pos     token.Pos
	Name    string
	Args    []Expr
	Builtin Builtin
	Ty      Type
}

func (*NumLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*StrLit) exprNode()     {}
func (*NullLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*FieldExpr) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
func (*CallExpr) exprNode()   {}

func (e *NumLit) Position() token.Pos     { return e.Pos }
func (e *BoolLit) Position() token.Pos    { return e.Pos }
func (e *StrLit) Position() token.Pos     { return e.Pos }
func (e *NullLit) Position() token.Pos    { return e.Pos }
func (e *Ident) Position() token.Pos      { return e.Pos }
func (e *FieldExpr) Position() token.Pos  { return e.Pos }
func (e *UnaryExpr) Position() token.Pos  { return e.Pos }
func (e *BinaryExpr) Position() token.Pos { return e.Pos }
func (e *CondExpr) Position() token.Pos   { return e.Pos }
func (e *CallExpr) Position() token.Pos   { return e.Pos }

func (e *NumLit) Type() Type     { return NumberT }
func (e *BoolLit) Type() Type    { return BoolT }
func (e *StrLit) Type() Type     { return StringT }
func (e *NullLit) Type() Type    { return e.Ty }
func (e *Ident) Type() Type      { return e.Ty }
func (e *FieldExpr) Type() Type  { return e.Ty }
func (e *UnaryExpr) Type() Type  { return e.Ty }
func (e *BinaryExpr) Type() Type { return e.Ty }
func (e *CondExpr) Type() Type   { return e.Ty }
func (e *CallExpr) Type() Type   { return e.Ty }

// Builtin identifies an intrinsic function.
type Builtin uint8

const (
	BNone Builtin = iota
	BAbs
	BMin
	BMax
	BFloor
	BCeil
	BSqrt
	BClamp    // clamp(x, lo, hi)
	BDist     // dist(x1, y1, x2, y2)
	BSize     // size(set)
	BContains // contains(set, v)
	BID       // id(ref) -> number (for deterministic tie-breaking)
	BSelfFn   // self() -> ref to the executing object
)

// BuiltinByName maps source names to builtins.
var BuiltinByName = map[string]Builtin{
	"abs": BAbs, "min": BMin, "max": BMax, "floor": BFloor, "ceil": BCeil,
	"sqrt": BSqrt, "clamp": BClamp, "dist": BDist, "size": BSize,
	"contains": BContains, "id": BID, "self": BSelfFn,
}
