package ast

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sgl/token"
)

// Print renders a program back to canonical SGL source. The output parses
// back to an equivalent AST, which the parser round-trip property test
// relies on.
func Print(p *Program) string {
	var b strings.Builder
	for i, c := range p.Classes {
		if i > 0 {
			b.WriteByte('\n')
		}
		printClass(&b, c)
	}
	return b.String()
}

func printClass(b *strings.Builder, c *ClassDecl) {
	fmt.Fprintf(b, "class %s {\n", c.Name)
	if len(c.States) > 0 {
		b.WriteString("  state:\n")
		for _, s := range c.States {
			fmt.Fprintf(b, "    %s %s", s.Type, s.Name)
			if s.Init != nil {
				fmt.Fprintf(b, " = %s", ExprString(s.Init))
			}
			if s.Owner != "" {
				fmt.Fprintf(b, " by %s", s.Owner)
			}
			b.WriteString(";\n")
		}
	}
	if len(c.Effects) > 0 {
		b.WriteString("  effects:\n")
		for _, e := range c.Effects {
			fmt.Fprintf(b, "    %s %s : %s;\n", e.Type, e.Name, e.Comb)
		}
	}
	if len(c.Updates) > 0 {
		b.WriteString("  update:\n")
		for _, u := range c.Updates {
			fmt.Fprintf(b, "    %s = %s;\n", u.Attr, ExprString(u.Expr))
		}
	}
	if len(c.Handlers) > 0 {
		b.WriteString("  handlers:\n")
		for _, h := range c.Handlers {
			fmt.Fprintf(b, "    when (%s) ", ExprString(h.Cond))
			printBlock(b, h.Body, 2)
			b.WriteByte('\n')
		}
	}
	if c.Run != nil {
		b.WriteString("  run ")
		printBlock(b, c.Run, 1)
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
}

func printBlock(b *strings.Builder, blk *Block, depth int) {
	ind := strings.Repeat("  ", depth)
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		b.WriteString(ind)
		b.WriteString("  ")
		printStmt(b, s, depth+1)
		b.WriteByte('\n')
	}
	b.WriteString(ind)
	b.WriteString("}")
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *LetStmt:
		fmt.Fprintf(b, "let %s = %s;", s.Name, ExprString(s.Expr))
	case *EffectAssign:
		op := "<-"
		if s.SetInsert {
			op = "<="
		}
		key := ""
		if s.Key != nil {
			key = " by " + ExprString(s.Key)
		}
		if s.Target != nil {
			fmt.Fprintf(b, "%s.%s %s %s%s;", ExprString(s.Target), s.Attr, op, ExprString(s.Value), key)
		} else {
			fmt.Fprintf(b, "%s %s %s%s;", s.Attr, op, ExprString(s.Value), key)
		}
	case *IfStmt:
		fmt.Fprintf(b, "if (%s) ", ExprString(s.Cond))
		printBlock(b, s.Then, depth)
		if s.Else != nil {
			b.WriteString(" else ")
			printBlock(b, s.Else, depth)
		}
	case *AccumStmt:
		fmt.Fprintf(b, "accum %s %s with %s over %s %s from %s ",
			s.ValType, s.Name, s.Comb, s.IterClass, s.IterName, ExprString(s.Source))
		printBlock(b, s.Body, depth)
		b.WriteString(" in ")
		printBlock(b, s.In, depth)
	case *WaitStmt:
		b.WriteString("waitNextTick;")
	case *AtomicStmt:
		b.WriteString("atomic ")
		if len(s.Constraints) > 0 {
			b.WriteByte('(')
			for i, c := range s.Constraints {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(ExprString(c))
			}
			b.WriteString(") ")
		}
		printBlock(b, s.Body, depth)
	default:
		fmt.Fprintf(b, "/* unknown stmt %T */", s)
	}
}

// ExprString renders an expression in SGL syntax with explicit parentheses
// where precedence requires them.
func ExprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e, 0)
	return b.String()
}

// Precedence levels (higher binds tighter).
func prec(op token.Kind) int {
	switch op {
	case token.OROR:
		return 1
	case token.ANDAND:
		return 2
	case token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE:
		return 3
	case token.PLUS, token.MINUS:
		return 4
	case token.STAR, token.SLASH, token.PERCENT:
		return 5
	default:
		return 0
	}
}

func writeExpr(b *strings.Builder, e Expr, outer int) {
	switch e := e.(type) {
	case *NumLit:
		b.WriteString(strconv.FormatFloat(e.V, 'g', -1, 64))
	case *BoolLit:
		if e.V {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case *StrLit:
		b.WriteString(strconv.Quote(e.V))
	case *NullLit:
		b.WriteString("null")
	case *Ident:
		b.WriteString(e.Name)
	case *FieldExpr:
		writeExpr(b, e.X, 6)
		b.WriteByte('.')
		b.WriteString(e.Name)
	case *UnaryExpr:
		if e.Op == token.MINUS {
			b.WriteByte('-')
		} else {
			b.WriteByte('!')
		}
		writeExpr(b, e.X, 6)
	case *BinaryExpr:
		p := prec(e.Op)
		if p < outer || outer == 6 {
			b.WriteByte('(')
			defer b.WriteByte(')')
		}
		writeExpr(b, e.X, p)
		fmt.Fprintf(b, " %s ", e.Op)
		writeExpr(b, e.Y, p+1)
	case *CondExpr:
		if outer > 0 {
			b.WriteByte('(')
			defer b.WriteByte(')')
		}
		writeExpr(b, e.C, 1)
		b.WriteString(" ? ")
		writeExpr(b, e.T, 1)
		b.WriteString(" : ")
		writeExpr(b, e.F, 1)
	case *CallExpr:
		b.WriteString(e.Name)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a, 0)
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "/* unknown expr %T */", e)
	}
}
