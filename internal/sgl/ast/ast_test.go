package ast

import (
	"testing"

	"repro/internal/sgl/token"
	"repro/internal/value"
)

func TestTypeEqualAndString(t *testing.T) {
	cases := []struct {
		a, b  Type
		equal bool
		str   string
	}{
		{NumberT, NumberT, true, "number"},
		{BoolT, NumberT, false, "bool"},
		{StringT, StringT, true, "string"},
		{RefT("Unit"), RefT("Unit"), true, "ref<Unit>"},
		{RefT("Unit"), RefT("Item"), false, "ref<Unit>"},
		{SetT(NumberT), SetT(NumberT), true, "set<number>"},
		{SetT(NumberT), SetT(BoolT), false, "set<number>"},
		{SetT(RefT("U")), SetT(RefT("U")), true, "set<ref<U>>"},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.equal {
			t.Errorf("%v.Equal(%v) = %v", c.a, c.b, got)
		}
		if got := c.a.String(); got != c.str {
			t.Errorf("%v.String() = %q, want %q", c.a, got, c.str)
		}
	}
	if (Type{Kind: value.KindSet}).String() != "set<?>" {
		t.Error("unparameterized set string")
	}
}

func TestExprStringPrecedence(t *testing.T) {
	// (1 + 2) * 3 must keep its parentheses when printed.
	e := &BinaryExpr{
		Op: token.STAR,
		X:  &BinaryExpr{Op: token.PLUS, X: &NumLit{V: 1}, Y: &NumLit{V: 2}},
		Y:  &NumLit{V: 3},
	}
	if got := ExprString(e); got != "(1 + 2) * 3" {
		t.Errorf("ExprString = %q", got)
	}
	// 1 + 2 * 3 must not gain parentheses.
	e2 := &BinaryExpr{
		Op: token.PLUS,
		X:  &NumLit{V: 1},
		Y:  &BinaryExpr{Op: token.STAR, X: &NumLit{V: 2}, Y: &NumLit{V: 3}},
	}
	if got := ExprString(e2); got != "1 + 2 * 3" {
		t.Errorf("ExprString = %q", got)
	}
}

func TestBuiltinLookup(t *testing.T) {
	for name, b := range map[string]Builtin{
		"abs": BAbs, "dist": BDist, "self": BSelfFn, "contains": BContains,
	} {
		if BuiltinByName[name] != b {
			t.Errorf("BuiltinByName[%q] = %v", name, BuiltinByName[name])
		}
	}
	if _, ok := BuiltinByName["nope"]; ok {
		t.Error("unknown builtin must be absent")
	}
}

func TestPositions(t *testing.T) {
	p := token.Pos{Line: 3, Col: 9}
	nodes := []Expr{
		&NumLit{Pos: p}, &BoolLit{Pos: p}, &StrLit{Pos: p}, &NullLit{Pos: p},
		&Ident{Pos: p}, &FieldExpr{Pos: p}, &UnaryExpr{Pos: p},
		&BinaryExpr{Pos: p}, &CondExpr{Pos: p}, &CallExpr{Pos: p},
	}
	for _, n := range nodes {
		if n.Position() != p {
			t.Errorf("%T.Position() = %v", n, n.Position())
		}
	}
}

func TestTokenStrings(t *testing.T) {
	if token.LARROW.String() != "<-" || token.KwWait.String() != "waitNextTick" {
		t.Error("token strings")
	}
	if !(token.Pos{Line: 1, Col: 1}).IsValid() || (token.Pos{}).IsValid() {
		t.Error("Pos.IsValid")
	}
	tok := token.Token{Kind: token.STRING, Lit: "x"}
	if tok.String() != `"x"` {
		t.Errorf("token String = %s", tok.String())
	}
}
