package parser

import (
	"strings"
	"testing"

	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
)

const fullSrc = `
class Unit {
  state:
    number x = 0;
    number y = 0 by physics;
    ref<Unit> boss = null;
    set<ref<Unit>> squad;
    string name = "grunt";
    bool elite = false;
  effects:
    number damage : sum;
    number vx : avg;
    set<number> loot : union;
    ref<Unit> target : maxby;
  update:
    x = x + vx;
  handlers:
    when (x > 100) {
      damage <- 1;
    }
  run {
    let r = 10;
    accum number cnt with sum over Unit u from Unit {
      if (u.x >= x - r && u.x <= x + r) {
        cnt <- 1;
      }
    } in {
      if (cnt > 3) {
        damage <- cnt - 3;
      } else {
        vx <- 1;
      }
    }
    waitNextTick;
    loot <= 7;
    target <- boss by 2;
    atomic (x >= 0) {
      damage <- 1;
    }
    boss.damage <- 2;
  }
}
`

func TestParseFullProgram(t *testing.T) {
	p, err := Parse(fullSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Classes) != 1 {
		t.Fatalf("classes = %d", len(p.Classes))
	}
	c := p.Classes[0]
	if c.Name != "Unit" || len(c.States) != 6 || len(c.Effects) != 4 ||
		len(c.Updates) != 1 || len(c.Handlers) != 1 || c.Run == nil {
		t.Fatalf("class shape: %+v", c)
	}
	if c.States[1].Owner != "physics" {
		t.Errorf("owner = %q", c.States[1].Owner)
	}
	if c.States[3].Type.Kind.String() != "set" {
		t.Errorf("squad type = %v", c.States[3].Type)
	}
	// Statement shapes in run.
	stmts := c.Run.Stmts
	if _, ok := stmts[0].(*ast.LetStmt); !ok {
		t.Errorf("stmt 0: %T", stmts[0])
	}
	acc, ok := stmts[1].(*ast.AccumStmt)
	if !ok {
		t.Fatalf("stmt 1: %T", stmts[1])
	}
	if acc.Comb != "sum" || acc.IterClass != "Unit" || acc.IterName != "u" {
		t.Errorf("accum fields: %+v", acc)
	}
	if _, ok := stmts[2].(*ast.WaitStmt); !ok {
		t.Errorf("stmt 2: %T", stmts[2])
	}
	ins, ok := stmts[3].(*ast.EffectAssign)
	if !ok || !ins.SetInsert {
		t.Errorf("stmt 3 must be set-insert: %T", stmts[3])
	}
	keyed, ok := stmts[4].(*ast.EffectAssign)
	if !ok || keyed.Key == nil {
		t.Errorf("stmt 4 must carry a by-key")
	}
	atm, ok := stmts[5].(*ast.AtomicStmt)
	if !ok || len(atm.Constraints) != 1 {
		t.Errorf("stmt 5: %T", stmts[5])
	}
	tgt, ok := stmts[6].(*ast.EffectAssign)
	if !ok || tgt.Target == nil || tgt.Attr != "damage" {
		t.Errorf("stmt 6: %+v", stmts[6])
	}
}

func TestRoundTrip(t *testing.T) {
	p1, err := Parse(fullSrc)
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.Print(p1)
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of printed source failed: %v\n%s", err, printed)
	}
	printed2 := ast.Print(p2)
	if printed != printed2 {
		t.Fatalf("print not a fixed point:\n--- first\n%s\n--- second\n%s", printed, printed2)
	}
}

func TestExprPrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":         "1 + 2 * 3",
		"(1 + 2) * 3":       "(1 + 2) * 3",
		"a && b || c":       "a && b || c",
		"a || b && c":       "a || b && c",
		"-a * b":            "-a * b",
		"!(a && b)":         "!(a && b)",
		"a < b == c > d":    "a < b == c > d",
		"a ? b : c ? d : e": "a ? b : (c ? d : e)",
		"1 - 2 - 3":         "1 - 2 - 3",
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
			continue
		}
		if got := ast.ExprString(e); got != want {
			t.Errorf("ParseExpr(%q) prints %q, want %q", src, got, want)
		}
	}
}

func TestLeftAssociativity(t *testing.T) {
	e, err := ParseExpr("10 - 4 - 3")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*ast.BinaryExpr)
	if b.Op != token.MINUS {
		t.Fatal("top op")
	}
	if _, ok := b.X.(*ast.BinaryExpr); !ok {
		t.Error("subtraction must be left-associative")
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
class C {
  effects:
    number e : sum;
  state:
    number a = 0;
  run {
    if (a > 2) { e <- 1; } else if (a > 1) { e <- 2; } else { e <- 3; }
  }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := p.Classes[0].Run.Stmts[0].(*ast.IfStmt)
	if ifs.Else == nil || len(ifs.Else.Stmts) != 1 {
		t.Fatal("else-if chain lost")
	}
	if _, ok := ifs.Else.Stmts[0].(*ast.IfStmt); !ok {
		t.Fatal("else block must hold the chained if")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"class {",                        // missing name
		"class C { state: number; }",     // missing attr name
		"class C { run { x <- ; } }",     // missing expression
		"class C { run { if x { } } }",   // missing parens
		"class C { effects: number d; }", // missing combinator
		"class C { run { accum number c with sum over U u from U { } } }", // missing in-block
		"banana",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestErrorMessagesCarryPositions(t *testing.T) {
	_, err := Parse("class C {\n  run { x <- ; }\n}")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestSetInsertVsComparison(t *testing.T) {
	// Statement position: `items <= x` is a set-insert; expression
	// position: `a <= b` is comparison.
	src := `
class C {
  state:
    number a = 0;
  effects:
    set<number> items : union;
    number e : sum;
  run {
    items <= a;
    if (a <= 5) {
      e <- 1;
    }
  }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	run := p.Classes[0].Run.Stmts
	if ea, ok := run[0].(*ast.EffectAssign); !ok || !ea.SetInsert {
		t.Error("stmt 0 must be a set-insert")
	}
	ifs := run[1].(*ast.IfStmt)
	cmp := ifs.Cond.(*ast.BinaryExpr)
	if cmp.Op != token.LE {
		t.Error("condition must be a <= comparison")
	}
}
