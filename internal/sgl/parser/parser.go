// Package parser implements a recursive-descent parser for SGL, the
// scripting language whose deliberately imperative surface (§2 of the
// paper) hides the state-effect pattern that makes set-at-a-time
// compilation possible. The grammar (EBNF, terminals quoted):
//
//	program     = { classDecl } .
//	classDecl   = "class" IDENT "{" { section } "}" .
//	section     = "state" ":" { stateDecl }
//	            | "effects" ":" { effectDecl }
//	            | "update" ":" { updateRule }
//	            | "handlers" ":" { handler }
//	            | "run" block .
//	stateDecl   = type IDENT [ "=" expr ] [ "by" IDENT ] ";" .
//	effectDecl  = type IDENT ":" IDENT ";" .
//	updateRule  = IDENT "=" expr ";" .
//	handler     = "when" "(" expr ")" block .
//	type        = "number" | "bool" | "string"
//	            | "ref" "<" IDENT ">" | "set" "<" type ">" .
//	block       = "{" { stmt } "}" .
//	stmt        = "let" IDENT "=" expr ";"
//	            | target "<-" expr ";"          (effect assignment)
//	            | target "<=" expr ";"          (set-insert)
//	            | "if" "(" expr ")" block [ "else" (block | ifStmt) ]
//	            | "accum" type IDENT "with" IDENT "over" IDENT IDENT
//	              "from" expr block "in" block
//	            | "waitNextTick" ";"
//	            | "atomic" [ "(" expr { "," expr } ")" ] block .
//	target      = IDENT | primary "." IDENT .
//
// Expressions use C-like precedence with ?: at the lowest level. There are
// no expression statements, which keeps "<=" unambiguous: in statement
// position it is always the set-insert operator (paper §3.2 uses
// `itemsAcquired <= i;`).
package parser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sgl/ast"
	"repro/internal/sgl/lexer"
	"repro/internal/sgl/token"
)

// Parse parses a complete SGL program.
func Parse(src string) (*ast.Program, error) {
	lx := lexer.New(src)
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		return nil, joinErrors(errs)
	}
	p := &parser{toks: toks}
	prog := p.program()
	if len(p.errs) > 0 {
		return nil, joinErrors(p.errs)
	}
	return prog, nil
}

// ParseExpr parses a single expression (used by tests and tools).
func ParseExpr(src string) (ast.Expr, error) {
	lx := lexer.New(src)
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		return nil, joinErrors(errs)
	}
	p := &parser{toks: toks}
	e := p.expr()
	p.expect(token.EOF)
	if len(p.errs) > 0 {
		return nil, joinErrors(p.errs)
	}
	return e, nil
}

func joinErrors(errs []error) error {
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	return errors.New(strings.Join(msgs, "\n"))
}

const maxErrors = 20

type parser struct {
	toks []token.Token
	pos  int
	errs []error
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *parser) errorf(format string, args ...any) {
	if len(p.errs) >= maxErrors {
		panic(bailout{})
	}
	p.errs = append(p.errs, fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...)))
}

type bailout struct{}

// sync skips tokens until a likely statement/declaration boundary.
func (p *parser) sync(stop ...token.Kind) {
	for !p.at(token.EOF) {
		k := p.cur().Kind
		for _, s := range stop {
			if k == s {
				return
			}
		}
		p.next()
	}
}

func (p *parser) program() *ast.Program {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
		}
	}()
	prog := &ast.Program{}
	for !p.at(token.EOF) {
		if p.at(token.KwClass) {
			prog.Classes = append(prog.Classes, p.classDecl())
		} else {
			p.errorf("expected class declaration, found %s", p.cur())
			p.sync(token.KwClass)
		}
	}
	return prog
}

func (p *parser) classDecl() *ast.ClassDecl {
	c := &ast.ClassDecl{Pos: p.cur().Pos}
	p.expect(token.KwClass)
	c.Name = p.expect(token.IDENT).Lit
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.KwState:
			p.next()
			p.expect(token.COLON)
			for p.atType() {
				c.States = append(c.States, p.stateDecl())
			}
		case token.KwEffects:
			p.next()
			p.expect(token.COLON)
			for p.atType() {
				c.Effects = append(c.Effects, p.effectDecl())
			}
		case token.KwUpdate:
			p.next()
			p.expect(token.COLON)
			for p.at(token.IDENT) {
				c.Updates = append(c.Updates, p.updateRule())
			}
		case token.KwHandlers:
			p.next()
			p.expect(token.COLON)
			for p.at(token.KwWhen) {
				c.Handlers = append(c.Handlers, p.handler())
			}
		case token.KwRun:
			p.next()
			if c.Run != nil {
				p.errorf("class %s has more than one run block", c.Name)
			}
			c.Run = p.block()
		default:
			p.errorf("expected section (state/effects/update/handlers/run), found %s", p.cur())
			p.sync(token.KwState, token.KwEffects, token.KwUpdate, token.KwHandlers, token.KwRun, token.RBRACE)
		}
	}
	p.expect(token.RBRACE)
	return c
}

func (p *parser) atType() bool {
	switch p.cur().Kind {
	case token.KwNumber, token.KwBool, token.KwString, token.KwRef, token.KwSet:
		return true
	}
	return false
}

func (p *parser) typeSpec() ast.Type {
	switch p.cur().Kind {
	case token.KwNumber:
		p.next()
		return ast.NumberT
	case token.KwBool:
		p.next()
		return ast.BoolT
	case token.KwString:
		p.next()
		return ast.StringT
	case token.KwRef:
		p.next()
		p.expect(token.LT)
		cls := p.expect(token.IDENT).Lit
		p.expect(token.GT)
		return ast.RefT(cls)
	case token.KwSet:
		p.next()
		p.expect(token.LT)
		elem := p.typeSpec()
		p.expect(token.GT)
		return ast.SetT(elem)
	default:
		p.errorf("expected type, found %s", p.cur())
		p.next()
		return ast.NumberT
	}
}

func (p *parser) stateDecl() *ast.StateDecl {
	d := &ast.StateDecl{Pos: p.cur().Pos}
	d.Type = p.typeSpec()
	d.Name = p.expect(token.IDENT).Lit
	if p.accept(token.ASSIGN) {
		d.Init = p.expr()
	}
	if p.accept(token.KwBy) {
		d.Owner = p.expect(token.IDENT).Lit
	}
	p.expect(token.SEMI)
	return d
}

func (p *parser) effectDecl() *ast.EffectDecl {
	d := &ast.EffectDecl{Pos: p.cur().Pos}
	d.Type = p.typeSpec()
	d.Name = p.expect(token.IDENT).Lit
	p.expect(token.COLON)
	d.Comb = p.expect(token.IDENT).Lit
	p.expect(token.SEMI)
	return d
}

func (p *parser) updateRule() *ast.UpdateRule {
	r := &ast.UpdateRule{Pos: p.cur().Pos}
	r.Attr = p.expect(token.IDENT).Lit
	p.expect(token.ASSIGN)
	r.Expr = p.expr()
	p.expect(token.SEMI)
	return r
}

func (p *parser) handler() *ast.Handler {
	h := &ast.Handler{Pos: p.cur().Pos}
	p.expect(token.KwWhen)
	p.expect(token.LPAREN)
	h.Cond = p.expr()
	p.expect(token.RPAREN)
	h.Body = p.block()
	return h
}

func (p *parser) block() *ast.Block {
	b := &ast.Block{Pos: p.cur().Pos}
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		b.Stmts = append(b.Stmts, p.stmt())
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) stmt() ast.Stmt {
	switch p.cur().Kind {
	case token.KwLet:
		s := &ast.LetStmt{Pos: p.cur().Pos}
		p.next()
		s.Name = p.expect(token.IDENT).Lit
		p.expect(token.ASSIGN)
		s.Expr = p.expr()
		p.expect(token.SEMI)
		return s
	case token.KwIf:
		return p.ifStmt()
	case token.KwAccum:
		return p.accumStmt()
	case token.KwWait:
		s := &ast.WaitStmt{Pos: p.cur().Pos}
		p.next()
		p.expect(token.SEMI)
		return s
	case token.KwAtomic:
		s := &ast.AtomicStmt{Pos: p.cur().Pos}
		p.next()
		if p.accept(token.LPAREN) {
			s.Constraints = append(s.Constraints, p.expr())
			for p.accept(token.COMMA) {
				s.Constraints = append(s.Constraints, p.expr())
			}
			p.expect(token.RPAREN)
		}
		s.Body = p.block()
		return s
	case token.IDENT: // includes `self().attr <- e` (self is an identifier)
		return p.effectAssign()
	default:
		p.errorf("expected statement, found %s", p.cur())
		p.next()
		return &ast.WaitStmt{Pos: p.cur().Pos}
	}
}

func (p *parser) ifStmt() *ast.IfStmt {
	s := &ast.IfStmt{Pos: p.cur().Pos}
	p.expect(token.KwIf)
	p.expect(token.LPAREN)
	s.Cond = p.expr()
	p.expect(token.RPAREN)
	s.Then = p.block()
	if p.accept(token.KwElse) {
		if p.at(token.KwIf) {
			inner := p.ifStmt()
			s.Else = &ast.Block{Pos: inner.Pos, Stmts: []ast.Stmt{inner}}
		} else {
			s.Else = p.block()
		}
	}
	return s
}

func (p *parser) accumStmt() *ast.AccumStmt {
	s := &ast.AccumStmt{Pos: p.cur().Pos}
	p.expect(token.KwAccum)
	s.ValType = p.typeSpec()
	s.Name = p.expect(token.IDENT).Lit
	p.expect(token.KwWith)
	s.Comb = p.expect(token.IDENT).Lit
	p.expect(token.KwOver)
	s.IterClass = p.expect(token.IDENT).Lit
	s.IterName = p.expect(token.IDENT).Lit
	p.expect(token.KwFrom)
	s.Source = p.expr()
	s.Body = p.block()
	p.expect(token.KwIn)
	s.In = p.block()
	return s
}

// effectAssign parses `attr <- e;`, `attr <= e;`, or `primary.attr <-/<= e;`.
func (p *parser) effectAssign() ast.Stmt {
	s := &ast.EffectAssign{Pos: p.cur().Pos}
	// Parse a primary expression; if it ends as a bare identifier followed
	// by <- or <=, it is a self-effect. Otherwise it must be a FieldExpr
	// whose final segment names the target effect attribute.
	e := p.primary()
	switch t := e.(type) {
	case *ast.Ident:
		s.Attr = t.Name
	case *ast.FieldExpr:
		s.Target = t.X
		s.Attr = t.Name
	default:
		p.errorf("invalid effect-assignment target")
	}
	switch p.cur().Kind {
	case token.LARROW:
		p.next()
	case token.LE:
		s.SetInsert = true
		p.next()
	default:
		p.errorf("expected <- or <= in effect assignment, found %s", p.cur())
	}
	s.Value = p.expr()
	if p.accept(token.KwBy) {
		s.Key = p.expr()
	}
	p.expect(token.SEMI)
	return s
}

// Expression parsing: precedence climbing.

func (p *parser) expr() ast.Expr { return p.condExpr() }

func (p *parser) condExpr() ast.Expr {
	c := p.binExpr(1)
	if p.accept(token.QUESTION) {
		t := p.condExpr()
		p.expect(token.COLON)
		f := p.condExpr()
		return &ast.CondExpr{Pos: c.Position(), C: c, T: t, F: f}
	}
	return c
}

func binPrec(k token.Kind) int {
	switch k {
	case token.OROR:
		return 1
	case token.ANDAND:
		return 2
	case token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE:
		return 3
	case token.PLUS, token.MINUS:
		return 4
	case token.STAR, token.SLASH, token.PERCENT:
		return 5
	default:
		return 0
	}
}

func (p *parser) binExpr(min int) ast.Expr {
	lhs := p.unary()
	for {
		op := p.cur().Kind
		pr := binPrec(op)
		if pr < min {
			return lhs
		}
		pos := p.cur().Pos
		p.next()
		rhs := p.binExpr(pr + 1)
		lhs = &ast.BinaryExpr{Pos: pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) unary() ast.Expr {
	switch p.cur().Kind {
	case token.MINUS:
		pos := p.next().Pos
		return &ast.UnaryExpr{Pos: pos, Op: token.MINUS, X: p.unary()}
	case token.NOT:
		pos := p.next().Pos
		return &ast.UnaryExpr{Pos: pos, Op: token.NOT, X: p.unary()}
	}
	return p.primary()
}

func (p *parser) primary() ast.Expr {
	var e ast.Expr
	switch p.cur().Kind {
	case token.NUMBER:
		t := p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errorf("bad number literal %q", t.Lit)
		}
		e = &ast.NumLit{Pos: t.Pos, V: v}
	case token.STRING:
		t := p.next()
		e = &ast.StrLit{Pos: t.Pos, V: t.Lit}
	case token.KwTrue:
		e = &ast.BoolLit{Pos: p.next().Pos, V: true}
	case token.KwFalse:
		e = &ast.BoolLit{Pos: p.next().Pos, V: false}
	case token.KwNull:
		e = &ast.NullLit{Pos: p.next().Pos}
	case token.IDENT:
		t := p.next()
		if p.at(token.LPAREN) {
			call := &ast.CallExpr{Pos: t.Pos, Name: t.Lit}
			p.next()
			if !p.at(token.RPAREN) {
				call.Args = append(call.Args, p.expr())
				for p.accept(token.COMMA) {
					call.Args = append(call.Args, p.expr())
				}
			}
			p.expect(token.RPAREN)
			e = call
		} else {
			e = &ast.Ident{Pos: t.Pos, Name: t.Lit}
		}
	case token.LPAREN:
		p.next()
		e = p.expr()
		p.expect(token.RPAREN)
	default:
		p.errorf("expected expression, found %s", p.cur())
		e = &ast.NumLit{Pos: p.cur().Pos}
		p.next()
	}
	// Postfix field access, left-associative.
	for p.at(token.DOT) {
		pos := p.next().Pos
		name := p.expect(token.IDENT).Lit
		e = &ast.FieldExpr{Pos: pos, X: e, Name: name}
	}
	return e
}
