// Package lexer tokenizes SGL source text — the first stage of compiling
// the paper's imperative-looking scripts (§2) into relational tick plans.
// It supports // line comments and /* */ block comments and tracks
// line/column positions.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/sgl/token"
)

// Lexer scans SGL source into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

// All scans the entire input, returning every token up to and including EOF.
func (l *Lexer) All() []token.Token {
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) peek2() rune {
	if l.off >= len(l.src) {
		return 0
	}
	_, w := utf8.DecodeRuneInString(l.src[l.off:])
	if l.off+w >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off+w:])
	return r
}

func (l *Lexer) advance() rune {
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	p := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: p}
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		return l.ident(p)
	case unicode.IsDigit(r):
		return l.number(p)
	case r == '"':
		return l.str(p)
	}
	l.advance()
	mk := func(k token.Kind) token.Token { return token.Token{Kind: k, Pos: p} }
	switch r {
	case '{':
		return mk(token.LBRACE)
	case '}':
		return mk(token.RBRACE)
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case ',':
		return mk(token.COMMA)
	case ';':
		return mk(token.SEMI)
	case ':':
		return mk(token.COLON)
	case '.':
		return mk(token.DOT)
	case '+':
		return mk(token.PLUS)
	case '-':
		return mk(token.MINUS)
	case '*':
		return mk(token.STAR)
	case '/':
		return mk(token.SLASH)
	case '%':
		return mk(token.PERCENT)
	case '?':
		return mk(token.QUESTION)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(token.NEQ)
		}
		return mk(token.NOT)
	case '=':
		if l.peek() == '=' {
			l.advance()
			return mk(token.EQ)
		}
		return mk(token.ASSIGN)
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			return mk(token.LE)
		case '-':
			l.advance()
			return mk(token.LARROW)
		}
		return mk(token.LT)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(token.GE)
		}
		return mk(token.GT)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return mk(token.ANDAND)
		}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return mk(token.OROR)
		}
	}
	l.errorf(p, "unexpected character %q", r)
	return token.Token{Kind: token.ILLEGAL, Lit: string(r), Pos: p}
}

func (l *Lexer) ident(p token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) {
		r := l.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			l.advance()
		} else {
			break
		}
	}
	lit := l.src[start:l.off]
	if k, ok := token.Keywords[lit]; ok {
		return token.Token{Kind: k, Lit: lit, Pos: p}
	}
	return token.Token{Kind: token.IDENT, Lit: lit, Pos: p}
}

func (l *Lexer) number(p token.Pos) token.Token {
	start := l.off
	seenDot := false
	for l.off < len(l.src) {
		r := l.peek()
		if unicode.IsDigit(r) {
			l.advance()
		} else if r == '.' && !seenDot && unicode.IsDigit(l.peek2()) {
			seenDot = true
			l.advance()
		} else {
			break
		}
	}
	// Optional exponent.
	if r := l.peek(); r == 'e' || r == 'E' {
		save := l.off
		l.advance()
		if s := l.peek(); s == '+' || s == '-' {
			l.advance()
		}
		if unicode.IsDigit(l.peek()) {
			for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.off = save
		}
	}
	return token.Token{Kind: token.NUMBER, Lit: l.src[start:l.off], Pos: p}
}

func (l *Lexer) str(p token.Pos) token.Token {
	l.advance() // opening quote
	var b strings.Builder
	for l.off < len(l.src) {
		r := l.advance()
		switch r {
		case '"':
			return token.Token{Kind: token.STRING, Lit: b.String(), Pos: p}
		case '\\':
			if l.off >= len(l.src) {
				break
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				l.errorf(p, "unknown escape \\%c", e)
				b.WriteRune(e)
			}
		case '\n':
			l.errorf(p, "unterminated string literal")
			return token.Token{Kind: token.STRING, Lit: b.String(), Pos: p}
		default:
			b.WriteRune(r)
		}
	}
	l.errorf(p, "unterminated string literal")
	return token.Token{Kind: token.STRING, Lit: b.String(), Pos: p}
}
