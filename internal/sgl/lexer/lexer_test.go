package lexer

import (
	"testing"

	"repro/internal/sgl/token"
)

func kinds(ts []token.Token) []token.Kind {
	out := make([]token.Kind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func scan(t *testing.T, src string) []token.Token {
	t.Helper()
	lx := New(src)
	ts := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		t.Fatalf("scan %q: %v", src, errs)
	}
	return ts
}

func TestOperators(t *testing.T) {
	ts := scan(t, "<- <= < == = != ! >= > && || + - * / % ? :")
	want := []token.Kind{
		token.LARROW, token.LE, token.LT, token.EQ, token.ASSIGN, token.NEQ,
		token.NOT, token.GE, token.GT, token.ANDAND, token.OROR, token.PLUS,
		token.MINUS, token.STAR, token.SLASH, token.PERCENT, token.QUESTION,
		token.COLON, token.EOF,
	}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	ts := scan(t, "class waitNextTick accum classy waiter")
	want := []token.Kind{token.KwClass, token.KwWait, token.KwAccum, token.IDENT, token.IDENT, token.EOF}
	got := kinds(ts)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]string{
		"0": "0", "42": "42", "3.5": "3.5", "1e6": "1e6", "2.5e-3": "2.5e-3",
	}
	for src, lit := range cases {
		ts := scan(t, src)
		if ts[0].Kind != token.NUMBER || ts[0].Lit != lit {
			t.Errorf("%q -> %v %q", src, ts[0].Kind, ts[0].Lit)
		}
	}
	// `1.` is number then dot (field access on numbers is a parse error,
	// but lexing must not consume the dot).
	ts := scan(t, "1.x")
	if ts[0].Kind != token.NUMBER || ts[1].Kind != token.DOT {
		t.Errorf("1.x lexed as %v", kinds(ts))
	}
}

func TestStrings(t *testing.T) {
	ts := scan(t, `"hi\n\"there\"" "tab\t"`)
	if ts[0].Lit != "hi\n\"there\"" {
		t.Errorf("string 1 = %q", ts[0].Lit)
	}
	if ts[1].Lit != "tab\t" {
		t.Errorf("string 2 = %q", ts[1].Lit)
	}
}

func TestComments(t *testing.T) {
	ts := scan(t, `a // line comment
	/* block
	comment */ b`)
	got := kinds(ts)
	want := []token.Kind{token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("comments not skipped: %v", got)
	}
}

func TestPositions(t *testing.T) {
	lx := New("a\n  bb")
	a := lx.Next()
	b := lx.Next()
	if a.Pos.Line != 1 || a.Pos.Col != 1 {
		t.Errorf("a at %v", a.Pos)
	}
	if b.Pos.Line != 2 || b.Pos.Col != 3 {
		t.Errorf("b at %v", b.Pos)
	}
}

func TestErrors(t *testing.T) {
	lx := New("@")
	tok := lx.Next()
	if tok.Kind != token.ILLEGAL || len(lx.Errors()) == 0 {
		t.Error("illegal character must error")
	}
	lx = New(`"unterminated`)
	lx.Next()
	if len(lx.Errors()) == 0 {
		t.Error("unterminated string must error")
	}
	lx = New("/* unterminated")
	lx.Next()
	if len(lx.Errors()) == 0 {
		t.Error("unterminated block comment must error")
	}
}
