// Package token defines the lexical tokens of the SGL scripting language
// and source positions for error reporting.
package token

import "fmt"

// Kind identifies a token class.
type Kind uint8

const (
	EOF Kind = iota
	ILLEGAL

	IDENT  // player, vx, Unit
	NUMBER // 12, 3.5
	STRING // "hello"

	// Punctuation and operators.
	LBRACE   // {
	RBRACE   // }
	LPAREN   // (
	RPAREN   // )
	COMMA    // ,
	SEMI     // ;
	COLON    // :
	DOT      // .
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	NOT      // !
	ASSIGN   // =
	EQ       // ==
	NEQ      // !=
	LT       // <
	LE       // <=
	GT       // >
	GE       // >=
	ANDAND   // &&
	OROR     // ||
	LARROW   // <-  (effect assignment)
	QUESTION // ?
	// Keywords.
	KwClass
	KwState
	KwEffects
	KwUpdate
	KwHandlers
	KwRun
	KwLet
	KwIf
	KwElse
	KwAccum
	KwWith
	KwOver
	KwFrom
	KwIn
	KwWait // waitNextTick
	KwAtomic
	KwWhen
	KwTrue
	KwFalse
	KwNull
	KwNumber
	KwBool
	KwString
	KwRef
	KwSet
	KwBy
)

var kindNames = map[Kind]string{
	EOF: "EOF", ILLEGAL: "ILLEGAL", IDENT: "identifier", NUMBER: "number literal",
	STRING: "string literal", LBRACE: "{", RBRACE: "}", LPAREN: "(", RPAREN: ")",
	COMMA: ",", SEMI: ";", COLON: ":", DOT: ".", PLUS: "+", MINUS: "-", STAR: "*",
	SLASH: "/", PERCENT: "%", NOT: "!", ASSIGN: "=", EQ: "==", NEQ: "!=", LT: "<",
	LE: "<=", GT: ">", GE: ">=", ANDAND: "&&", OROR: "||", LARROW: "<-",
	QUESTION: "?",
	KwClass:  "class", KwState: "state", KwEffects: "effects", KwUpdate: "update",
	KwHandlers: "handlers", KwRun: "run", KwLet: "let", KwIf: "if", KwElse: "else",
	KwAccum: "accum", KwWith: "with", KwOver: "over", KwFrom: "from", KwIn: "in",
	KwWait: "waitNextTick", KwAtomic: "atomic", KwWhen: "when", KwTrue: "true",
	KwFalse: "false", KwNull: "null", KwNumber: "number", KwBool: "bool",
	KwString: "string", KwRef: "ref", KwSet: "set", KwBy: "by",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// Keywords maps source spellings to keyword kinds.
var Keywords = map[string]Kind{
	"class": KwClass, "state": KwState, "effects": KwEffects, "update": KwUpdate,
	"handlers": KwHandlers, "run": KwRun, "let": KwLet, "if": KwIf, "else": KwElse,
	"accum": KwAccum, "with": KwWith, "over": KwOver, "from": KwFrom, "in": KwIn,
	"waitNextTick": KwWait, "atomic": KwAtomic, "when": KwWhen, "true": KwTrue,
	"false": KwFalse, "null": KwNull, "number": KwNumber, "bool": KwBool,
	"string": KwString, "ref": KwRef, "set": KwSet, "by": KwBy,
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical unit.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, NUMBER, STRING (unquoted)
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER:
		return t.Lit
	case STRING:
		return fmt.Sprintf("%q", t.Lit)
	default:
		return t.Kind.String()
	}
}
