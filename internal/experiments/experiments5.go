package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/workload"
)

// swarmWorld builds the SrcSwarm drift workload (a population that
// translates and contracts every tick) in partitioned mode — the fixture of
// E17 and BenchmarkE17_*.
func swarmWorld(motes, parts int, pol plan.RebalancePolicy, seed int64) (*engine.World, error) {
	sc, err := core.LoadScenario("swarm", core.SrcSwarm)
	if err != nil {
		return nil, err
	}
	w, err := sc.NewWorld(engine.Options{
		Partitions: parts, Partition: plan.PartitionStripes, Rebalance: pol,
	})
	if err != nil {
		return nil, err
	}
	ps := workload.Uniform(motes, 3000, 3000, seed)
	if _, err := core.PopulateMotes(w, ps, 8, 2, 0.003); err != nil {
		return nil, err
	}
	return w, nil
}

// E17 measures adaptive layout epochs against frozen first-tick layouts on
// a drift workload (§4.2's scaling story under a population that refuses to
// stay where it was measured): the swarm translates by 8 units/tick and
// contracts 0.3%/tick toward its centroid, so a frozen layout's measured box
// goes stale — rows clamp into the edge partition and the busiest
// partition's load runs away — while the adaptive default re-measures
// drift-widened bounds and splits population-quantile cuts as the
// imbalance amortizes the re-layout. Both arms are bit-identical worlds;
// only who computes what differs.
func E17(motes, parts, ticks int) (Table, error) {
	t := Table{
		ID:     "E17",
		Title:  fmt.Sprintf("adaptive vs frozen layouts (drifting swarm, %d motes, %d parts)", motes, parts),
		Header: []string{"layout", "msgs/tick", "clamped/tick", "migr/tick", "max part load/tick", "imbalance", "rebalances", "epoch", "ms/tick"},
		Notes:  "drift 8/tick + 0.3%/tick contraction; frozen = first-tick layout (pre-epoch behavior); imbalance = busiest/mean per-partition row visits; results bit-identical across layouts",
	}
	for _, cfg := range []struct {
		name string
		pol  plan.RebalancePolicy
	}{
		{"frozen", plan.RebalanceOff},
		{"adaptive", plan.RebalanceAdaptive},
	} {
		w, err := swarmWorld(motes, parts, cfg.pol, 27)
		if err != nil {
			return t, err
		}
		d, err := tickTime(w.RunTick, ticks)
		if err != nil {
			return t, err
		}
		st := w.ExecStats()
		n := int64(ticks)
		t.Rows = append(t.Rows, []string{
			cfg.name,
			fmt.Sprint(st.PartMessages() / n),
			fmt.Sprint(st.ClampedRows / n),
			fmt.Sprint(st.MigratedRows / n),
			fmt.Sprint(st.PartLoadMax / n),
			fmt.Sprintf("%.2f", st.PartImbalance(parts)),
			fmt.Sprint(st.RebalanceCount),
			fmt.Sprint(st.EpochID),
			ms(d),
		})
	}
	return t, nil
}
