package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/txn"
	"repro/internal/workload"
)

// timedPolicy wraps a policy and accumulates wall time spent inside
// admission, so E20 can report admission throughput separately from the
// rest of the tick (effect phase, update step, handlers).
type timedPolicy struct {
	inner engine.TxnPolicy
	dur   time.Duration
}

func (p *timedPolicy) Admit(ctx *engine.UpdateCtx, txns []*engine.Txn) error {
	start := time.Now()
	err := p.inner.Admit(ctx, txns)
	p.dur += time.Since(start)
	return err
}

// contendedMarket builds the E20 fixture: a paired marketplace (one buyer
// per seller, so admission is conflict-free and batchable) populated in
// alternating segments — deep-stock sellers that commit every tick and
// shallow-stock sellers that sell out early, whose buyers keep submitting
// and aborting on the `seller.stock >= 0` constraint for the rest of the
// run. Every buyer submits one transaction per tick throughout, so
// admission pressure is constant while the commit/abort mix shifts. The
// segment sizes are deliberately varied modulo small partition counts:
// each segment spawns its sellers then its buyers, so a buyer/seller
// pair's id offset equals the segment size, and mixing offsets makes the
// id-hash partition layout produce both partition-local and
// cross-partition transactions.
func contendedMarket(pairs, ticks int, opts engine.Options) (*engine.World, error) {
	sc, err := core.LoadScenario("market", core.SrcMarket)
	if err != nil {
		return nil, err
	}
	w, err := sc.NewWorld(opts)
	if err != nil {
		return nil, err
	}
	gold := float64(25 * (ticks + 1))
	sizes := []int{612, 613, 616, 619}
	deep := true
	for remaining, chunk := pairs, 0; remaining > 0; chunk++ {
		n := sizes[chunk%len(sizes)]
		if n > remaining {
			n = remaining
		}
		stock := ticks + 1
		if !deep {
			stock = ticks / 3
		}
		if _, _, err := core.PopulateMarket(w, workload.Market{
			Sellers: n, BuyersPerItem: 1, Stock: stock, Price: 25, Gold: gold,
		}); err != nil {
			return nil, err
		}
		deep = !deep
		remaining -= n
	}
	return w, nil
}

// E20 measures transaction-admission throughput (§3.1) across the three
// admission execution axes: the serial loop (per-transaction constraint
// validation by rule replay), the batched driver (whole-batch constraint
// kernels over a columnar tentative view), and the batched driver under
// partitioned execution (single-partition transactions admitted
// partition-locally, spanning ones counted as cross-partition). All arms
// admit bit-identical outcomes; only the admission machinery differs.
// Admitted txns/s is committed transactions over wall time spent inside
// admission — the subsystem this experiment isolates; total tick time is
// reported alongside.
func E20(pairs, ticks int) (Table, error) {
	t := Table{
		ID:    "E20",
		Title: fmt.Sprintf("txn admission throughput (%d traders, paired market)", 2*pairs),
		Header: []string{"admission", "txns/tick", "admitted txns/s", "abort rate",
			"batched rows", "par groups", "cross-part", "admit ms/tick", "ms/tick"},
		Notes: "paired contended market: alternating deep-stock segments (always commit) and shallow segments that sell out at ticks/3 (their buyers abort on seller.stock >= 0 thereafter); admitted txns/s = committed transactions over admission wall time; outcomes bit-identical across arms",
	}
	for _, cfg := range []struct {
		name string
		opts engine.Options
	}{
		{"scalar", engine.Options{Txn: plan.TxnScalar}},
		{"batched", engine.Options{Txn: plan.TxnBatched}},
		{"batched+4part", engine.Options{Txn: plan.TxnBatched, Partitions: 4}},
	} {
		w, err := contendedMarket(pairs, ticks, cfg.opts)
		if err != nil {
			return t, err
		}
		counting := &txn.CountingPolicy{}
		timed := &timedPolicy{inner: counting}
		w.SetTxnPolicy(timed)
		start := time.Now()
		if err := w.Run(ticks); err != nil {
			return t, err
		}
		elapsed := time.Since(start)
		st := w.ExecStats()
		s := counting.Stats
		admittedPerSec := float64(s.Committed) / timed.dur.Seconds()
		t.Rows = append(t.Rows, []string{
			cfg.name,
			fmt.Sprint(s.Submitted / int64(ticks)),
			fmt.Sprintf("%.0f", admittedPerSec),
			fmt.Sprintf("%.2f", s.AbortRate()),
			fmt.Sprint(st.TxnBatchedRows),
			fmt.Sprint(st.TxnParallelGroups),
			fmt.Sprint(st.TxnCrossPart),
			ms(timed.dur / time.Duration(ticks)),
			ms(elapsed / time.Duration(ticks)),
		})
	}
	return t, nil
}
