package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/physics"
	"repro/internal/value"
	"repro/internal/workload"
)

// E3 exercises the update-component model (§2.2): k units converge on one
// point; the physics component integrates conflicting intentions and
// separates collisions. We report tick cost and residual overlap.
func E3(colliders []int, ticks int) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "physics update component under contention (ms/tick)",
		Header: []string{"colliders", "ms/tick", "separations/tick", "min pair dist"},
		Notes:  "all units target the same point; physics owns x,y and resolves overlap (§2.2)",
	}
	sc, err := core.LoadScenario("rts", core.SrcRTS)
	if err != nil {
		return t, err
	}
	for _, k := range colliders {
		w, err := sc.NewWorld(engine.Options{})
		if err != nil {
			return t, err
		}
		ph := physics.New2D(physics.Config{
			Class: "Soldier", XAttr: "x", YAttr: "y",
			VXEffect: "vx", VYEffect: "vy",
			Radius: 1, MaxSpeed: 3,
		})
		if err := w.Register(ph); err != nil {
			return t, err
		}
		// Ring of same-player units all heading for the center: nobody
		// fights (same player), everybody collides.
		ps := workload.Clustered(k, 1, 40, 200, 200, int64(k))
		ids := make([]value.ID, 0, k)
		for _, p := range ps {
			id, err := w.Spawn("Soldier", map[string]value.Value{
				"player": value.Str("red"),
				"x":      value.Num(p.X), "y": value.Num(p.Y),
				"tx": value.Num(100), "ty": value.Num(100),
			})
			if err != nil {
				return t, err
			}
			ids = append(ids, id)
		}
		d, err := tickTime(w.RunTick, ticks)
		if err != nil {
			return t, err
		}
		minD := minPairDist(w, ids)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), ms(d),
			fmt.Sprintf("%.0f", float64(ph.Collisions)/float64(ticks)),
			fmt.Sprintf("%.2f", minD),
		})
	}
	return t, nil
}

func minPairDist(w *engine.World, ids []value.ID) float64 {
	min := 1e18
	type pt struct{ x, y float64 }
	pts := make([]pt, len(ids))
	for i, id := range ids {
		pts[i] = pt{
			w.MustGet("Soldier", id, "x").AsNumber(),
			w.MustGet("Soldier", id, "y").AsNumber(),
		}
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			dx, dy := pts[i].x-pts[j].x, pts[i].y-pts[j].y
			if d := dx*dx + dy*dy; d < min {
				min = d
			}
		}
	}
	if len(pts) < 2 {
		return 0
	}
	return math.Sqrt(min)
}

// srcHandMachine is the Guard script with the waitNextTick sugar manually
// lowered to an explicit step state machine — the "direct translation" of
// §3.2. E5 checks the compiler's lowering costs nothing against it.
const srcHandMachine = `
class Guard {
  state:
    number x = 0;
    number y = 0;
    number px = 0;
    number py = 0;
    number health = 100;
    number fleeing = 0;
    number items = 0;
    number step = 0;
    ref<Guard> foe = null;
  effects:
    number dx : avg;
    number dy : avg;
    number damage : sum;
    number pickup : sum;
    number flee : max;
    number dstep : max;
  update:
    x = x + dx;
    y = y + dy;
    health = health - damage;
    items = items + pickup;
    fleeing = flee;
    step = dstep;
  handlers:
    when (health < 30) {
      flee <- 1;
    }
  run {
    if (step == 0) {
      dx <- (px - x) * 0.5;
      dy <- (py - y) * 0.5;
      dstep <- 1;
    }
    if (step == 1) {
      pickup <- 1;
      dstep <- 2;
    }
    if (step == 2) {
      if (foe != null) {
        foe.damage <- 5;
      }
      dstep <- 0;
    }
  }
}
`

// E5 compares the waitNextTick sugar (§3.2) against the hand-written state
// machine it lowers to: same behaviour, comparable cost.
func E5(n, ticks int) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  fmt.Sprintf("multi-tick lowering vs hand-written state machine (n=%d, ms/tick)", n),
		Header: []string{"variant", "ms/tick", "items after 3 cycles"},
		Notes:  "waitNextTick stores the program counter in a hidden pc column; the hand version burns a visible state attribute and an extra effect",
	}
	for _, variant := range []struct{ name, src string }{
		{"waitNextTick sugar", core.SrcGuard},
		{"hand state machine", srcHandMachine},
	} {
		sc, err := core.LoadScenario(variant.name, variant.src)
		if err != nil {
			return t, err
		}
		w, err := sc.NewWorld(engine.Options{})
		if err != nil {
			return t, err
		}
		ids := make([]value.ID, 0, n)
		for i := 0; i < n; i++ {
			id, err := w.Spawn("Guard", map[string]value.Value{
				"px": value.Num(float64(i % 50)), "py": value.Num(float64(i % 31)),
			})
			if err != nil {
				return t, err
			}
			ids = append(ids, id)
		}
		d, err := tickTime(w.RunTick, ticks)
		if err != nil {
			return t, err
		}
		items := w.MustGet("Guard", ids[0], "items").AsNumber()
		t.Rows = append(t.Rows, []string{variant.name, ms(d), fmt.Sprintf("%.0f", items)})
	}
	return t, nil
}

// srcInlineGuard replaces the reactive handler with an inline conditional
// prologue in every phase — the rewrite §3.2 says handlers are sugar for.
const srcInlineGuard = `
class Guard {
  state:
    number health = 100;
    number fleeing = 0;
  effects:
    number damage : sum;
    number flee : max;
  update:
    health = health - damage;
    fleeing = flee;
  run {
    if (health < 30) {
      flee <- 1;
    }
    damage <- 0.5;
  }
}
`

// srcHandlerGuard uses the reactive handler form.
const srcHandlerGuard = `
class Guard {
  state:
    number health = 100;
    number fleeing = 0;
  effects:
    number damage : sum;
    number flee : max;
  update:
    health = health - damage;
    fleeing = flee;
  handlers:
    when (health < 30) {
      flee <- 1;
    }
  run {
    damage <- 0.5;
  }
}
`

// E6 compares reactive handlers against the inline-conditional rewrite
// (§3.2: the simplest handler model "would simply be syntactic sugar").
// The two differ by one tick of latency by design (handlers observe
// post-update state); the cost must be comparable.
func E6(n, ticks int) (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  fmt.Sprintf("reactive handlers vs inline conditional prologue (n=%d, ms/tick)", n),
		Header: []string{"variant", "ms/tick", "fleeing count"},
	}
	for _, variant := range []struct{ name, src string }{
		{"inline conditionals", srcInlineGuard},
		{"reactive handlers", srcHandlerGuard},
	} {
		sc, err := core.LoadScenario(variant.name, variant.src)
		if err != nil {
			return t, err
		}
		w, err := sc.NewWorld(engine.Options{})
		if err != nil {
			return t, err
		}
		for i := 0; i < n; i++ {
			if _, err := w.Spawn("Guard", nil); err != nil {
				return t, err
			}
		}
		d, err := tickTime(w.RunTick, ticks)
		if err != nil {
			return t, err
		}
		fleeing := 0
		for _, id := range w.IDs("Guard") {
			if w.MustGet("Guard", id, "fleeing").AsNumber() > 0 {
				fleeing++
			}
		}
		t.Rows = append(t.Rows, []string{variant.name, ms(d), fmt.Sprint(fleeing)})
	}
	return t, nil
}

// ElapsedString formats a duration for reports.
func ElapsedString(d time.Duration) string { return d.Round(time.Millisecond).String() }
