package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment functions back both cmd/sglbench and EXPERIMENTS.md; these
// tests run each with tiny parameters and assert the *shape* of the results
// the paper predicts, not absolute numbers.

func cell(t *testing.T, tbl Table, row, col int) string {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d) in %d rows", tbl.ID, row, col, len(tbl.Rows))
	}
	return tbl.Rows[row][col]
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "x")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric", s)
	}
	return f
}

func TestE1Shape(t *testing.T) {
	tbl, err := E1([]int{300, 900}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatal("rows")
	}
	// At every n the adaptive engine beats the baseline; the speedup grows.
	s0 := num(t, cell(t, tbl, 0, 4))
	s1 := num(t, cell(t, tbl, 1, 4))
	if s0 <= 1 {
		t.Errorf("speedup at n=300 is %v, engine must win", s0)
	}
	if s1 <= s0 {
		t.Errorf("speedup must grow with n: %v -> %v", s0, s1)
	}
}

func TestE2Shape(t *testing.T) {
	tbl, err := E2([]int{300, 1200}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// At the larger n, both index plans beat nested loop.
	nl := num(t, cell(t, tbl, 1, 1))
	grid := num(t, cell(t, tbl, 1, 2))
	tree := num(t, cell(t, tbl, 1, 3))
	if grid >= nl || tree >= nl {
		t.Errorf("indexes must beat NL at n=1200: nl=%v grid=%v tree=%v", nl, grid, tree)
	}
}

func TestE3Shape(t *testing.T) {
	tbl, err := E3([]int{60}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Physics must keep colliders separated (min pair distance near 2r=2).
	if d := num(t, cell(t, tbl, 0, 3)); d < 1.0 {
		t.Errorf("min pair dist %v: separation failing", d)
	}
}

func TestE4Shape(t *testing.T) {
	tbl, err := E4([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r := num(t, cell(t, tbl, 0, 3)); r != 0 {
		t.Errorf("no contention must mean no aborts, got rate %v", r)
	}
	if r := num(t, cell(t, tbl, 1, 3)); r <= 0.5 {
		t.Errorf("4 buyers/item must abort most, got rate %v", r)
	}
	// Transactions never oversell; the control arm always does.
	if o := num(t, cell(t, tbl, 1, 4)); o <= 0 {
		t.Error("control arm must oversell")
	}
}

func TestE5Shape(t *testing.T) {
	tbl, err := E5(500, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Behaviour matches: both variants pick up 2 items in 6 ticks
	// (phases 1 and 4 of the 3-phase cycle).
	a := cell(t, tbl, 0, 2)
	b := cell(t, tbl, 1, 2)
	if a != b {
		t.Errorf("sugar and hand machine diverge: %s vs %s items", a, b)
	}
	// Cost comparable. The bound is loose (10x) because this test runs
	// concurrently with the rest of the suite and absorbs scheduler noise;
	// the calibrated comparison lives in EXPERIMENTS.md E5 (~15% apart).
	ta, tb := num(t, cell(t, tbl, 0, 1)), num(t, cell(t, tbl, 1, 1))
	if ta > 10*tb || tb > 10*ta {
		t.Errorf("lowering cost out of family: %v vs %v", ta, tb)
	}
}

func TestE6Shape(t *testing.T) {
	tbl, err := E6(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := num(t, cell(t, tbl, 0, 1)), num(t, cell(t, tbl, 1, 1))
	if ta > 10*tb || tb > 10*ta {
		t.Errorf("handler dispatch out of family: %v vs %v", ta, tb)
	}
}

func TestE8Shape(t *testing.T) {
	tbl, err := E8(1500, 4)
	if err != nil {
		t.Fatal(err)
	}
	on, off := num(t, cell(t, tbl, 0, 1)), num(t, cell(t, tbl, 1, 1))
	// Statistics must cost well under 2x (the paper wants "cheap enough
	// for real time"; in practice it is a few percent).
	if on > 4*off+1 {
		t.Errorf("stats overhead too high: on=%v off=%v", on, off)
	}
}

func TestE10Shape(t *testing.T) {
	tbl := E10([]int{2000, 8000})
	// d=2 replicas/pt grows with n.
	r0 := num(t, cell(t, tbl, 0, 4))
	r1 := num(t, cell(t, tbl, 1, 4))
	if r1 <= r0 {
		t.Errorf("d=2 replicas/pt must grow: %v -> %v", r0, r1)
	}
}

func TestE11E12Shape(t *testing.T) {
	tbl, err := E11(3000, []int{4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 = stripes, row 1 = hash at 4 partitions — both measured from
	// the real partitioned engine now.
	stripes := num(t, cell(t, tbl, 0, 2))
	hash := num(t, cell(t, tbl, 1, 2))
	if stripes >= hash {
		t.Errorf("stripes msgs (%v) must be below hash (%v)", stripes, hash)
	}
	// Hash replicates everything: at least (parts-1)·n ghost rows per tick.
	if g := num(t, cell(t, tbl, 1, 3)); g < 3*3000 {
		t.Errorf("hash ghost rows/tick = %v, want full replication", g)
	}
	t12, err := E12(3000, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	one := num(t, cell(t, t12, 0, 1))
	four := num(t, cell(t, t12, 1, 1))
	if four >= one {
		t.Errorf("partitioned max-part MB (%v) must be below single partition (%v)", four, one)
	}
}

func TestE16Shape(t *testing.T) {
	tbl, err := E16(3000, []int{1, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// parts=1 sends nothing; parts=4 must report cross-partition traffic
	// and positive tick times.
	if m := num(t, cell(t, tbl, 0, 3)); m != 0 {
		t.Errorf("single partition sent %v msgs/tick", m)
	}
	if m := num(t, cell(t, tbl, 1, 3)); m <= 0 {
		t.Errorf("4 partitions sent %v msgs/tick, want > 0", m)
	}
	for row := 0; row < 2; row++ {
		if v := num(t, cell(t, tbl, row, 1)); v <= 0 {
			t.Errorf("row %d: non-positive ms/tick %v", row, v)
		}
	}
}

func TestE13Shape(t *testing.T) {
	tbl, err := E13([]int{2000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// All timing cells must be positive numbers; the actual speedup claim
	// is asserted only by the benchmarks (wall-clock races are too noisy
	// for a unit test at this tiny scale).
	for col := 1; col <= 4; col++ {
		if v := num(t, cell(t, tbl, 0, col)); v <= 0 {
			t.Errorf("column %d: non-positive time %v", col, v)
		}
	}
	frac := strings.TrimSuffix(cell(t, tbl, 0, 7), "%")
	f, err := strconv.ParseFloat(frac, 64)
	if err != nil {
		t.Fatalf("vec rows cell %q is not numeric: %v", cell(t, tbl, 0, 7), err)
	}
	if f < 99 {
		t.Errorf("ExecAuto must fully vectorize the traffic workload, got %v%%", f)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		ID: "EX", Title: "demo", Header: []string{"a", "b"},
		Rows:  [][]string{{"1", "2"}},
		Notes: "note",
	}
	txt := tbl.Format()
	if !strings.Contains(txt, "EX") || !strings.Contains(txt, "note") {
		t.Error("Format")
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("Markdown:\n%s", md)
	}
}
