package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/workload"
)

// readMallocs returns the cumulative heap allocation count (objects).
func readMallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// E19 measures the many-world server (DESIGN.md §4.12): the paper's target
// deployment is thousands of small concurrent game instances, not one huge
// one. The experiment contrasts three arms over the same total object
// count and tick budget:
//
//   - one-world: a single standalone world holding the whole population,
//     sharded over the engine's own worker pool — the monolith baseline;
//   - many-world: the population split across N small worlds ticked by the
//     server's shared pool, with the compiled plan cached across worlds
//     ((N-1)/N hit rate) and per-tick arenas checked out of the shared
//     pool (steady-state allocations per world-tick ≈ 0);
//   - many-world+hibernate: same fleet with only a rotating 10% of worlds
//     touched per round, the rest hibernating past the cost model's idle
//     horizon — the resident-world gauge drops while touched worlds
//     restore transparently.
func E19(worlds, objects, rounds int) (Table, error) {
	t := Table{
		ID: "E19",
		Title: fmt.Sprintf("many-world server (%d worlds × %d objects vs 1 × %d)",
			worlds, objects, worlds*objects),
		Header: []string{"arm", "worlds", "world-ticks", "world-ticks/s", "Mobj-ticks/s",
			"plan hit rate", "allocs/world-tick", "resident", "hibernated"},
		Notes: "same total object count and tick budget per arm; plan hit rate = compiled-plan cache hits over AddWorld calls; allocs/world-tick = heap allocation count delta across the timed run over world-ticks (steady state, after one warmup round); hibernate arm touches a fixed 10% of worlds (the played set) every round over twice the tick budget",
	}

	engineWorkers := runtime.NumCPU()

	// Arm A: one monolithic world with the entire population, using the
	// engine's internal parallelism.
	{
		sc, err := core.LoadScenario("vehicles", core.SrcVehicles)
		if err != nil {
			return t, err
		}
		w, err := sc.NewWorld(engine.Options{Workers: engineWorkers})
		if err != nil {
			return t, err
		}
		if _, err := core.PopulateVehicles(w, workload.Uniform(worlds*objects, 4000, 4000, 11)); err != nil {
			return t, err
		}
		if err := w.RunTick(); err != nil { // warmup
			return t, err
		}
		m0 := readMallocs()
		start := time.Now()
		if err := w.Run(rounds); err != nil {
			return t, err
		}
		elapsed := time.Since(start)
		allocs := float64(readMallocs()-m0) / float64(rounds)
		t.Rows = append(t.Rows, []string{
			"one-world", "1", fmt.Sprint(rounds),
			fmt.Sprintf("%.0f", float64(rounds)/elapsed.Seconds()),
			fmt.Sprintf("%.2f", float64(rounds)*float64(worlds*objects)/elapsed.Seconds()/1e6),
			"-", fmt.Sprintf("%.1f", allocs), "1", "0",
		})
	}

	// Arm B: the same population split across `worlds` server-hosted
	// worlds ticked by the shared pool.
	{
		srv := server.New(server.Config{Workers: engineWorkers})
		if err := addVehicleFleet(srv, worlds, objects); err != nil {
			return t, err
		}
		if err := srv.RunRounds(1); err != nil { // warmup
			return t, err
		}
		base := srv.Counters()
		m0 := readMallocs()
		start := time.Now()
		if err := srv.RunRounds(rounds); err != nil {
			return t, err
		}
		elapsed := time.Since(start)
		c := srv.Counters()
		ticks := c.TicksRun - base.TicksRun
		allocs := float64(readMallocs()-m0) / float64(ticks)
		t.Rows = append(t.Rows, []string{
			"many-world", fmt.Sprint(worlds), fmt.Sprint(ticks),
			fmt.Sprintf("%.0f", float64(ticks)/elapsed.Seconds()),
			fmt.Sprintf("%.2f", float64(ticks)*float64(objects)/elapsed.Seconds()/1e6),
			fmt.Sprintf("%.4f", float64(c.PlanCacheHits)/float64(c.PlanCacheHits+c.PlanCacheMisses)),
			fmt.Sprintf("%.1f", allocs),
			fmt.Sprint(c.WorldsActive), fmt.Sprint(c.WorldsHibernated),
		})
	}

	// Arm C: hibernation under sparse interest — only 10% of the fleet
	// has players (touched every round); the rest idle past the cost
	// model's break-even horizon and checkpoint out, so steady-state
	// work and resident heap track the played fraction, not fleet size.
	{
		srv := server.New(server.Config{Workers: engineWorkers, HibernateAfter: 2})
		if err := addVehicleFleet(srv, worlds, objects); err != nil {
			return t, err
		}
		slice := worlds / 10
		if slice < 1 {
			slice = 1
		}
		cRounds := 2 * rounds // the idle horizon must pass before hibernation shows
		start := time.Now()
		for r := 0; r < cRounds; r++ {
			for i := 0; i < slice; i++ {
				h, ok := srv.World(fmt.Sprintf("world-%05d", i))
				if !ok {
					return t, fmt.Errorf("E19: fleet world missing")
				}
				if err := h.Touch(); err != nil {
					return t, err
				}
			}
			if err := srv.RunRounds(1); err != nil {
				return t, err
			}
		}
		elapsed := time.Since(start)
		c := srv.Counters()
		t.Rows = append(t.Rows, []string{
			"many-world+hibernate", fmt.Sprint(worlds), fmt.Sprint(c.TicksRun),
			fmt.Sprintf("%.0f", float64(c.TicksRun)/elapsed.Seconds()),
			fmt.Sprintf("%.2f", float64(c.TicksRun)*float64(objects)/elapsed.Seconds()/1e6),
			fmt.Sprintf("%.4f", float64(c.PlanCacheHits)/float64(c.PlanCacheHits+c.PlanCacheMisses)),
			"-",
			fmt.Sprint(c.WorldsActive), fmt.Sprint(c.WorldsHibernated),
		})
	}
	return t, nil
}

func addVehicleFleet(srv *server.Server, worlds, objects int) error {
	for i := 0; i < worlds; i++ {
		h, err := srv.AddWorld(fmt.Sprintf("world-%05d", i), core.SrcVehicles, 1)
		if err != nil {
			return err
		}
		eng, err := h.Engine()
		if err != nil {
			return err
		}
		if _, err := core.PopulateVehicles(eng, workload.Uniform(objects, 4000, 4000, int64(100+i))); err != nil {
			return err
		}
	}
	return nil
}
