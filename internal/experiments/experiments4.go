package experiments

import (
	"fmt"
	"time"

	"repro/internal/plan"
)

// E16 measures partition scaling of the real engine (§4.2): ticks/sec and
// cross-partition messages per tick versus partition count on the
// headway-join traffic workload at large object counts. The message and
// ghost columns are the paper's open §4.2 questions answered from the
// engine's own counters; the wall-clock column is single-process (every
// partition runs in one address space — on this repo's 1-CPU containers
// partitioning cannot speed ticks up, it bounds the per-partition work and
// communication a multi-process deployment would see).
func E16(cars int, parts []int, ticks int) (Table, error) {
	t := Table{
		ID:     "E16",
		Title:  fmt.Sprintf("partition scaling (traffic, %d cars)", cars),
		Header: []string{"parts", "ms/tick", "ticks/sec", "msgs/tick", "ghost rows/tick", "migr/tick", "imbalance", "max part index MB"},
		Notes:  "real partitioned engine, stripes layout; msgs = ghost refresh + foreign effects + migrations; any partition count is bit-identical to parts=1",
	}
	for _, k := range parts {
		w, err := partitionedTrafficWorld(cars, k, plan.PartitionAuto, 17)
		if err != nil {
			return t, err
		}
		d, err := tickTime(w.RunTick, ticks)
		if err != nil {
			return t, err
		}
		st := w.ExecStats()
		n := int64(ticks)
		maxIdx := int64(0)
		for _, b := range w.PartitionIndexBytes() {
			if b > maxIdx {
				maxIdx = b
			}
		}
		tps := 0.0
		if d > 0 {
			tps = float64(time.Second) / float64(d)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), ms(d), fmt.Sprintf("%.1f", tps),
			fmt.Sprint(st.PartMessages() / n),
			fmt.Sprint(st.GhostRows / n),
			fmt.Sprint(st.MigratedRows / n),
			fmt.Sprintf("%.2f", st.PartImbalance(k)),
			fmt.Sprintf("%.1f", float64(maxIdx)/(1<<20)),
		})
	}
	return t, nil
}
