// Package experiments regenerates every quantitative claim of the paper as
// a table (see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured narratives). The CIDR 2009 paper is a vision paper with
// no numbered evaluation tables, so each experiment operationalizes one of
// its claims; cmd/sglbench prints these tables and bench_test.go wraps the
// same workloads as testing.B benchmarks.
package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/workload"
)

// Table is one experiment's result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Format renders a table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Notes)
	}
	return b.String()
}

// JSON renders the table as one machine-readable JSON object (cmd/sglbench
// -json emits one per line, so experiment output can be captured for
// longitudinal perf tracking).
func (t Table) JSON() string {
	b, err := json.Marshal(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  string     `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes})
	if err != nil {
		return fmt.Sprintf(`{"id":%q,"error":%q}`, t.ID, err.Error())
	}
	return string(b)
}

// Markdown renders the table as GitHub markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s — %s**\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n_%s_\n", t.Notes)
	}
	return b.String()
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }

// tickTime measures mean wall time per tick.
func tickTime(run func() error, ticks int) (time.Duration, error) {
	// One warmup tick amortizes lazy setup (kernel compilation, scratch and
	// effect-lane growth) out of the measurement, and a forced collection
	// keeps the previous arm's garbage off this arm's clock.
	if err := run(); err != nil {
		return 0, err
	}
	runtime.GC()
	start := time.Now()
	for i := 0; i < ticks; i++ {
		if err := run(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(ticks), nil
}

// E1 compares set-at-a-time execution against the object-at-a-time baseline
// on the Fig-2 workload across population sizes (§1–2: the headline claim
// of [17] that database processing scales game AI).
func E1(sizes []int, ticks int) (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "set-at-a-time engine vs object-at-a-time baseline (Fig-2 workload, ms/tick)",
		Header: []string{"n", "baseline", "engine(NL)", "engine(adaptive)", "speedup(adaptive vs baseline)"},
		Notes:  "uniform placement in a world scaled to keep ~6 neighbors in range",
	}
	sc, err := core.LoadScenario("fig2", core.SrcFig2)
	if err != nil {
		return t, err
	}
	for _, n := range sizes {
		// Scale the world so neighborhood density stays constant.
		side := worldSide(n, 6, 10)
		ps := workload.Uniform(n, side, side, 42)

		base := sc.NewBaseline()
		if _, err := core.PopulateUnits(base, ps, 10); err != nil {
			return t, err
		}
		bt, err := tickTime(base.RunTick, ticks)
		if err != nil {
			return t, err
		}

		nlWorld, err := sc.NewWorld(engine.Options{Strategy: plan.NestedLoop})
		if err != nil {
			return t, err
		}
		if _, err := core.PopulateUnits(nlWorld, ps, 10); err != nil {
			return t, err
		}
		nt, err := tickTime(nlWorld.RunTick, ticks)
		if err != nil {
			return t, err
		}

		adWorld, err := sc.NewWorld(engine.Options{})
		if err != nil {
			return t, err
		}
		if _, err := core.PopulateUnits(adWorld, ps, 10); err != nil {
			return t, err
		}
		at, err := tickTime(adWorld.RunTick, ticks)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ms(bt), ms(nt), ms(at),
			fmt.Sprintf("%.1fx", float64(bt)/float64(at)),
		})
	}
	return t, nil
}

// worldSide sizes a square world so a box of half-width r around each of n
// uniform points contains ~k neighbors.
func worldSide(n, k int, r float64) float64 {
	area := float64(n) * (2 * r) * (2 * r) / float64(k)
	side := 1.0
	for side*side < area {
		side *= 1.2
	}
	return side
}

// E2 isolates the accum join: physical strategy cost across population
// sizes (§2.1, Fig. 2 — the compiled join is the headline optimization).
func E2(sizes []int, ticks int) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "accum-loop physical strategies (Fig-2 range count, ms/tick)",
		Header: []string{"n", "nested-loop", "grid", "range-tree"},
		Notes:  "constant ~6-neighbor density; NL is O(n^2), indexes are O(n log n)",
	}
	sc, err := core.LoadScenario("fig2", core.SrcFig2)
	if err != nil {
		return t, err
	}
	for _, n := range sizes {
		side := worldSide(n, 6, 10)
		ps := workload.Uniform(n, side, side, 7)
		row := []string{fmt.Sprint(n)}
		for _, strat := range []plan.Strategy{plan.NestedLoop, plan.GridIndex, plan.RangeTreeIndex} {
			w, err := sc.NewWorld(engine.Options{Strategy: strat})
			if err != nil {
				return t, err
			}
			if _, err := core.PopulateUnits(w, ps, 10); err != nil {
				return t, err
			}
			d, err := tickTime(w.RunTick, ticks)
			if err != nil {
				return t, err
			}
			row = append(row, ms(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// E4 measures transaction admission (§3.1): abort rates under rising
// contention, plus the duping count of the unsafe control arm.
func E4(buyersPerItem []int) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "transactions under contention (1 item each, 20 sellers)",
		Header: []string{"buyers/item", "committed", "aborted", "abort rate", "oversold (no txn)"},
		Notes:  "atomic+constraints: stock never oversold; control arm dupes",
	}
	for _, bpi := range buyersPerItem {
		m := workload.Market{Sellers: 20, BuyersPerItem: bpi, Stock: 1, Price: 25, Gold: 25}

		sc, err := core.LoadScenario("market", core.SrcMarket)
		if err != nil {
			return t, err
		}
		w, err := sc.NewWorld(engine.Options{})
		if err != nil {
			return t, err
		}
		if _, _, err := core.PopulateMarket(w, m); err != nil {
			return t, err
		}
		counting := &txn.CountingPolicy{}
		w.SetTxnPolicy(counting)
		if err := w.RunTick(); err != nil {
			return t, err
		}

		// Control arm: same workload without atomic.
		scU, err := core.LoadScenario("unsafe", core.SrcMarketUnsafe)
		if err != nil {
			return t, err
		}
		wu, err := scU.NewWorld(engine.Options{})
		if err != nil {
			return t, err
		}
		sellers, _, err := core.PopulateMarket(wu, m)
		if err != nil {
			return t, err
		}
		if err := wu.RunTick(); err != nil {
			return t, err
		}
		oversold := 0.0
		for _, id := range sellers {
			if s := wu.MustGet("Trader", id, "stock").AsNumber(); s < 0 {
				oversold += -s
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(bpi),
			fmt.Sprint(counting.Stats.Committed),
			fmt.Sprint(counting.Stats.Aborted),
			fmt.Sprintf("%.2f", counting.Stats.AbortRate()),
			fmt.Sprintf("%.0f", oversold),
		})
	}
	return t, nil
}

// E7 runs the alternating explore/combat regime (§4.1) under static plans
// versus the adaptive selector.
func E7(n, blockLen, blocks int) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  fmt.Sprintf("adaptive plan selection across regimes (n=%d, %d-tick blocks, total ms)", n, blockLen*blocks),
		Header: []string{"plan", "explore ms", "combat ms", "total ms", "switches"},
		Notes:  "positions re-seeded at each regime boundary; adaptive should track the best static plan per regime",
	}
	sc, err := core.LoadScenario("fig2", core.SrcFig2)
	if err != nil {
		return t, err
	}
	side := worldSide(n, 6, 10)
	configs := []struct {
		name  string
		strat plan.Strategy
	}{
		{"static nested-loop", plan.NestedLoop},
		{"static grid", plan.GridIndex},
		{"static range-tree", plan.RangeTreeIndex},
		{"adaptive", plan.Auto},
	}
	for _, cfg := range configs {
		w, err := sc.NewWorld(engine.Options{Strategy: cfg.strat})
		if err != nil {
			return t, err
		}
		ids, err := core.PopulateUnits(w, workload.Positions(workload.Explore, n, side, side, 1), 10)
		if err != nil {
			return t, err
		}
		var exploreT, combatT time.Duration
		for blk := 0; blk < blocks; blk++ {
			regime := workload.RegimeSchedule(blk*blockLen, blockLen)
			ps := workload.Positions(regime, n, side, side, int64(blk))
			for i, id := range ids {
				w.SetState("Unit", id, "x", value.Num(ps[i].X))
				w.SetState("Unit", id, "y", value.Num(ps[i].Y))
			}
			start := time.Now()
			if err := w.Run(blockLen); err != nil {
				return t, err
			}
			if regime == workload.Explore {
				exploreT += time.Since(start)
			} else {
				combatT += time.Since(start)
			}
		}
		switches := "-"
		if cfg.strat == plan.Auto {
			switches = fmt.Sprint(w.PlanSwitches())
		}
		t.Rows = append(t.Rows, []string{
			cfg.name, ms(exploreT), ms(combatT), ms(exploreT + combatT), switches,
		})
	}
	return t, nil
}

// E8 measures the overhead of statistics collection (§4.1: statistics must
// be cheap enough for real time).
func E8(n, ticks int) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  fmt.Sprintf("statistics collection overhead (n=%d, ms/tick)", n),
		Header: []string{"stats", "ms/tick"},
	}
	sc, err := core.LoadScenario("fig2", core.SrcFig2)
	if err != nil {
		return t, err
	}
	side := worldSide(n, 6, 10)
	ps := workload.Uniform(n, side, side, 3)
	for _, disable := range []bool{false, true} {
		w, err := sc.NewWorld(engine.Options{Strategy: plan.RangeTreeIndex, DisableStats: disable})
		if err != nil {
			return t, err
		}
		if _, err := core.PopulateUnits(w, ps, 10); err != nil {
			return t, err
		}
		d, err := tickTime(w.RunTick, ticks)
		if err != nil {
			return t, err
		}
		label := "on"
		if disable {
			label = "off"
		}
		t.Rows = append(t.Rows, []string{label, ms(d)})
	}
	return t, nil
}

// E9 measures effect-phase parallel speedup (§4.2: read-only query/effect
// phases parallelize without synchronization).
func E9(n int, workers []int, ticks int) (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  fmt.Sprintf("parallel effect computation (n=%d, ms/tick)", n),
		Header: []string{"workers", "ms/tick", "speedup"},
	}
	sc, err := core.LoadScenario("fig2", core.SrcFig2)
	if err != nil {
		return t, err
	}
	side := worldSide(n, 6, 10)
	ps := workload.Uniform(n, side, side, 11)
	var base time.Duration
	for _, wk := range workers {
		w, err := sc.NewWorld(engine.Options{Workers: wk, Strategy: plan.RangeTreeIndex})
		if err != nil {
			return t, err
		}
		if _, err := core.PopulateUnits(w, ps, 10); err != nil {
			return t, err
		}
		d, err := tickTime(w.RunTick, ticks)
		if err != nil {
			return t, err
		}
		if wk == workers[0] {
			base = d
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(wk), ms(d), fmt.Sprintf("%.2fx", float64(base)/float64(d)),
		})
	}
	return t, nil
}

// E10 reproduces the §4.2 space analysis: range-tree memory versus n and d,
// including the paper's "100,000 entries ≈ 2 GB" shape for high-d trees.
func E10(sizes []int) Table {
	t := Table{
		ID:     "E10",
		Title:  "orthogonal range tree space, Θ(n·log^{d−1} n)",
		Header: []string{"n", "d=1 MB", "d=2 MB", "d=3 MB", "d=2 replicas/pt", "d=3 replicas/pt"},
		Notes:  "replicas/pt grows with log^{d−1} n — the growth that exhausts single-node memory (§4.2)",
	}
	const maxD3 = 30000 // d=3 replication is cubic in log n; cap memory
	for _, n := range sizes {
		row := []string{fmt.Sprint(n)}
		var reps []string
		for d := 1; d <= 3; d++ {
			if d == 3 && n > maxD3 {
				row = append(row, "-")
				reps = append(reps, "-")
				continue
			}
			es := make([]index.Entry, n)
			for i := range es {
				c := make([]float64, d)
				for k := range c {
					c[k] = float64((i*2654435761 + k*40503) % 1000003)
				}
				es[i] = index.Entry{ID: value.ID(i + 1), Coords: c}
			}
			tree := index.BuildRangeTree(d, es)
			row = append(row, fmt.Sprintf("%.1f", float64(tree.EstimatedBytes())/(1<<20)))
			if d >= 2 {
				reps = append(reps, fmt.Sprintf("%.1f", float64(tree.StoredEntries())/float64(n)))
			}
		}
		row = append(row, reps...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// partitionedTrafficWorld builds the SrcTraffic car scenario with the real
// engine in partitioned mode, spawned stripe-major so each partition's rows
// stay in a contiguous span — the shared fixture of E11/E12/E16.
func partitionedTrafficWorld(cars, parts int, strat plan.PartitionStrategy, seed int64) (*engine.World, error) {
	net := workload.TrafficNetwork{W: 4000, H: 4000, Roads: 60, Speed: 3}
	ents := net.Vehicles(cars, seed)
	core.SortEntitiesByStripe(ents, parts, net.W)
	sc, err := core.LoadScenario("traffic-prox", core.SrcTraffic)
	if err != nil {
		return nil, err
	}
	w, err := sc.NewWorld(engine.Options{Partitions: parts, Partition: strat})
	if err != nil {
		return nil, err
	}
	if _, err := core.PopulateCars(w, ents); err != nil {
		return nil, err
	}
	return w, nil
}

// E11 measures shared-nothing partitioned execution (§4.2) on the real
// engine: per-tick cross-partition messages (ghost refreshes + foreign
// effects + migrations), resident ghost replicas and load balance, under
// spatial versus hash partitioning of the headway-join traffic workload.
// Earlier revisions answered this with a standalone simulator; these
// numbers now come from the engine's own partition executor.
func E11(vehicles int, nodes []int, ticks int) (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  fmt.Sprintf("partitioned execution: messages and balance (traffic, %d cars)", vehicles),
		Header: []string{"parts", "partition", "msgs/tick", "ghost rows/tick", "migr/tick", "imbalance", "ms/tick"},
		Notes:  "real engine ticks; spatial partitioning keeps neighbors partition-local, hash replicates everything (§4.2)",
	}
	for _, k := range nodes {
		for _, strat := range []plan.PartitionStrategy{plan.PartitionStripes, plan.PartitionHash} {
			w, err := partitionedTrafficWorld(vehicles, k, strat, 21)
			if err != nil {
				return t, err
			}
			d, err := tickTime(w.RunTick, ticks)
			if err != nil {
				return t, err
			}
			st := w.ExecStats()
			n := int64(ticks)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(k), strat.String(),
				fmt.Sprint(st.PartMessages() / n), fmt.Sprint(st.GhostRows / n),
				fmt.Sprint(st.MigratedRows / n),
				fmt.Sprintf("%.2f", st.PartImbalance(k)),
				ms(d),
			})
		}
	}
	return t, nil
}

// E12 reports per-partition accum-index memory (§4.2), measured from the
// engine's real per-tick partition indexes.
func E12(vehicles int, nodes []int) (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  fmt.Sprintf("partitioned index memory (traffic, %d cars)", vehicles),
		Header: []string{"parts", "max part MB", "total MB", "single-part MB"},
		Notes:  "spatial partitioning divides both n and the log factor; totals include ghost replicas",
	}
	single := 0.0
	for i, k := range nodes {
		w, err := partitionedTrafficWorld(vehicles, k, plan.PartitionStripes, 33)
		if err != nil {
			return t, err
		}
		if err := w.RunTick(); err != nil {
			return t, err
		}
		maxB, totB := int64(0), int64(0)
		for _, b := range w.PartitionIndexBytes() {
			totB += b
			if b > maxB {
				maxB = b
			}
		}
		if i == 0 && k == 1 {
			single = float64(totB)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%.1f", float64(maxB)/(1<<20)),
			fmt.Sprintf("%.1f", float64(totB)/(1<<20)),
			fmt.Sprintf("%.1f", single/(1<<20)),
		})
	}
	return t, nil
}

// E13 measures the vectorized columnar execution path (§2/§4: set-at-a-time
// processing over columnar storage) against scalar closure interpretation
// and the object-at-a-time baseline, on the per-object traffic workload
// where expression evaluation — not joins — is the hot path.
func E13(sizes []int, ticks int) (Table, error) {
	t := Table{
		ID:     "E13",
		Title:  "vectorized batch kernels vs scalar closures (traffic workload)",
		Header: []string{"vehicles", "baseline ms/tick", "scalar ms/tick", "unfused ms/tick", "fused ms/tick", "vec speedup", "fused speedup", "vec rows %"},
		Notes:  "vec speedup = scalar/fused; fused speedup = unfused/fused (fusion+specialization+hoisting delta over one-op-per-batch kernels); vec rows % = share of row evaluations run through batch kernels under ExecAuto",
	}
	sc := core.MustLoad("vehicles", core.SrcVehicles)
	for _, n := range sizes {
		ps := workload.Uniform(n, 4000, 4000, 1)

		bl := sc.NewBaseline()
		if _, err := core.PopulateVehicles(bl, ps); err != nil {
			return t, err
		}
		blTime, err := tickTime(bl.RunTick, ticks)
		if err != nil {
			return t, err
		}

		arms := []engine.Options{
			{Exec: plan.ExecScalar},
			{Exec: plan.ExecVectorized, Unfused: true},
			{Exec: plan.ExecVectorized},
		}
		// The vectorized arms run an order of magnitude faster than the
		// scalar ones, so they get proportionally more measured ticks to
		// keep the unfused/fused ratio out of timer noise.
		vecTicks := ticks * 10
		times := make([]time.Duration, len(arms))
		for i, opts := range arms {
			w, err := sc.NewWorld(opts)
			if err != nil {
				return t, err
			}
			if _, err := core.PopulateVehicles(w, ps); err != nil {
				return t, err
			}
			armTicks := ticks
			if opts.Exec == plan.ExecVectorized {
				armTicks = vecTicks
			}
			if times[i], err = tickTime(w.RunTick, armTicks); err != nil {
				return t, err
			}
		}
		scalar, unfused, fused := times[0], times[1], times[2]

		auto, err := sc.NewWorld(engine.Options{})
		if err != nil {
			return t, err
		}
		if _, err := core.PopulateVehicles(auto, ps); err != nil {
			return t, err
		}
		if _, err = tickTime(auto.RunTick, ticks); err != nil {
			return t, err
		}

		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ms(blTime), ms(scalar), ms(unfused), ms(fused),
			fmt.Sprintf("%.1fx", float64(scalar)/float64(fused)),
			fmt.Sprintf("%.2fx", float64(unfused)/float64(fused)),
			fmt.Sprintf("%.0f%%", auto.ExecStats().VectorFraction()*100),
		})
	}
	return t, nil
}

// E14 measures the sharded parallel×vectorized executor: worker scaling on
// the traffic workload for forced-scalar vs forced-vectorized shards vs the
// two-axis cost model (ExecAuto), against the Workers=1/scalar reference.
// The composition claim is that Workers=N + vectorized shards beats both
// Workers=N scalar (the old parallel path) and Workers=1 vectorized (the
// old batch path).
func E14(vehicles int, workers []int, ticks int) (Table, error) {
	t := Table{
		ID:     "E14",
		Title:  fmt.Sprintf("sharded parallel×vectorized ticks (traffic, %d vehicles)", vehicles),
		Header: []string{"workers", "scalar ms/tick", "vectorized ms/tick", "auto ms/tick", "auto speedup", "shards/tick"},
		Notes:  "speedup vs workers=1 scalar; shards/tick = shards dispatched to the pool under ExecAuto (0 = extent ran inline)",
	}
	sc := core.MustLoad("vehicles", core.SrcVehicles)
	ps := workload.Uniform(vehicles, 4000, 4000, 1)
	var base time.Duration
	for _, wk := range workers {
		times := map[plan.ExecMode]time.Duration{}
		shards := int64(0)
		for _, mode := range []plan.ExecMode{plan.ExecScalar, plan.ExecVectorized, plan.ExecAuto} {
			w, err := sc.NewWorld(engine.Options{Workers: wk, Exec: mode})
			if err != nil {
				return t, err
			}
			if _, err := core.PopulateVehicles(w, ps); err != nil {
				return t, err
			}
			d, err := tickTime(w.RunTick, ticks)
			if err != nil {
				return t, err
			}
			times[mode] = d
			if mode == plan.ExecAuto {
				shards = w.ExecStats().ParallelShards / int64(ticks)
			}
		}
		if wk == workers[0] {
			base = times[plan.ExecScalar]
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(wk),
			ms(times[plan.ExecScalar]), ms(times[plan.ExecVectorized]), ms(times[plan.ExecAuto]),
			fmt.Sprintf("%.1fx", float64(base)/float64(times[plan.ExecAuto])),
			fmt.Sprint(shards),
		})
	}
	return t, nil
}
