package experiments

// E21: incremental subscription views (internal/views, DESIGN.md §4.13).

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/physics"
	"repro/internal/plan"
	"repro/internal/views"
)

// e21Arm is one measured configuration: a fresh arena world plus a
// registry of `subs` spectator subscriptions maintained under `mode`.
type e21Arm struct {
	msPerTick      float64
	rowsPerTick    float64
	kbPerTick      float64
	rescansPerTick float64
	allocsPerTick  float64
}

func e21Run(objects, subs, ticks int, mode plan.ViewMode) (e21Arm, error) {
	var a e21Arm
	sc, err := core.LoadScenario("arena", core.SrcArena)
	if err != nil {
		return a, err
	}
	w, err := sc.NewWorld(engine.Options{Workers: runtime.NumCPU()})
	if err != nil {
		return a, err
	}
	ph := physics.New2D(physics.Config{
		Class: "Fighter", XAttr: "x", YAttr: "y",
		VXEffect: "vx", VYEffect: "vy", MaxSpeed: 4,
	})
	if err := w.Register(ph); err != nil {
		return a, err
	}
	if _, err := core.PopulateArena(w, objects, 0.02, 0.05, 17); err != nil {
		return a, err
	}
	r := views.New(w, plan.DefaultCosts())

	// Spectator mix: mostly camera interest boxes scattered over the map,
	// a band of health-threshold watchers, and a sprinkle of scoreboard
	// aggregates. All stable predicates; the boxes canonicalize to one
	// shared kernel and the thresholds to another.
	side := core.ArenaSide(objects)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < subs; i++ {
		var def views.Def
		switch {
		case i%20 < 17:
			pred, err := views.InterestPred([]string{"x", "y"},
				[]float64{rng.Float64() * side, rng.Float64() * side}, 40)
			if err != nil {
				return a, err
			}
			def = views.Def{Class: "Fighter", Pred: pred,
				Payload: []string{"x", "y", "health"}, Mode: mode}
		case i%20 < 19:
			def = views.Def{Class: "Fighter",
				Pred:    fmt.Sprintf("health < %d", 20+i%60),
				Payload: []string{"health"}, Mode: mode}
		default:
			switch i % 3 {
			case 0:
				def = views.Def{Class: "Fighter", Pred: "health < 50",
					Kind: views.Count, Mode: mode}
			case 1:
				def = views.Def{Class: "Fighter", Pred: "health < 100",
					Kind: views.Sum, Attr: "health", Mode: mode}
			default:
				def = views.Def{Class: "Fighter", Pred: "true",
					Kind: views.TopK, Attr: "health", K: 10, Mode: mode}
			}
		}
		if _, err := r.Subscribe(def); err != nil {
			return a, err
		}
	}

	// Warmup: the initial resync rescan plus two maintained ticks, so the
	// timed window measures steady-state maintenance only.
	for i := 0; i < 3; i++ {
		if err := w.RunTick(); err != nil {
			return a, err
		}
		r.Apply(nil)
	}
	base := w.ExecStats()
	var maint time.Duration
	var bytes, rescans int64
	var allocs uint64
	for i := 0; i < ticks; i++ {
		if err := w.RunTick(); err != nil {
			return a, err
		}
		m0 := readMallocs()
		start := time.Now()
		r.Apply(nil)
		maint += time.Since(start)
		allocs += readMallocs() - m0
		bytes += r.DeltaBytes()
		rescans += r.Rescans()
	}
	st := w.ExecStats()
	n := float64(ticks)
	a.msPerTick = maint.Seconds() * 1e3 / n
	a.rowsPerTick = float64(st.ViewDeltaRows-base.ViewDeltaRows) / n
	a.kbPerTick = float64(bytes) / 1024 / n
	a.rescansPerTick = float64(rescans) / n
	a.allocsPerTick = float64(allocs) / n
	return a, nil
}

// E21 measures incremental subscription views on the battle-royale
// spectator workload: `objects` fighters of which ~7% actually change per
// tick (hotspot combat + map-crossing movers), watched by up to `maxSubs`
// subscriptions. The rescan arm re-evaluates every subscription over the
// whole extent every tick — the naive serve-by-rerunning-the-query
// baseline; the delta arm maintains the same subscriptions from the
// engine's touched-row changefeed under the cost model. Both arms emit
// bit-identical delta streams (internal/views differential wall); the
// table reports what that identical stream costs to produce.
func E21(objects int, subSizes []int, ticks int) (Table, error) {
	t := Table{
		ID: "E21",
		Title: fmt.Sprintf("incremental subscription views (battle royale, %d fighters, %d ticks)",
			objects, ticks),
		Header: []string{"subs", "arm", "maint ms/tick", "delta rows/tick",
			"delta KB/tick", "rescans/tick", "allocs/tick", "speedup"},
		Notes: "arena: 2% hotspot fighters + 5% movers touched per tick, rest camp untouched; " +
			"subscription mix 85% spatial interest boxes / 10% health thresholds / 5% aggregates (count, sum, top-10); " +
			"rescan = every subscription re-evaluated over the full extent per tick, delta = changefeed-driven maintenance (plan.ChooseView auto); " +
			"both arms emit identical delta streams; maint ms/tick excludes the engine tick itself; " +
			"allocs/tick = heap allocations during maintenance per tick after warmup, dominated by amortized retained-buffer growth as movers shift interest-box membership (the fixed-churn steady state is allocation-free; see the views zero-alloc test)",
	}
	for _, subs := range subSizes {
		rescan, err := e21Run(objects, subs, ticks, plan.ViewRescan)
		if err != nil {
			return t, err
		}
		delta, err := e21Run(objects, subs, ticks, plan.ViewAuto)
		if err != nil {
			return t, err
		}
		row := func(name string, a e21Arm, speedup string) []string {
			return []string{
				fmt.Sprint(subs), name,
				fmt.Sprintf("%.2f", a.msPerTick),
				fmt.Sprintf("%.0f", a.rowsPerTick),
				fmt.Sprintf("%.1f", a.kbPerTick),
				fmt.Sprintf("%.1f", a.rescansPerTick),
				fmt.Sprintf("%.1f", a.allocsPerTick),
				speedup,
			}
		}
		t.Rows = append(t.Rows, row("rescan", rescan, "1.0"))
		t.Rows = append(t.Rows, row("delta", delta,
			fmt.Sprintf("%.1f", rescan.msPerTick/delta.msPerTick)))
	}
	return t, nil
}
