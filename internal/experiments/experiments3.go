package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/physics"
	"repro/internal/plan"
	"repro/internal/workload"
)

// E15 measures batched join execution (PR 3) against the scalar per-match
// interpreter on join-dominated workloads, single core: the paper's Fig-2
// crowding loop, the rts combat maxby join, and the flocking scenario whose
// tick is almost entirely range-join work. Both arms use the same adaptive
// strategy selection and the same per-tick indexes; only match execution
// differs — interpreted loop body per candidate versus batch-gathered rows,
// split-predicate re-check over raw columns and columnar contribution folds.
// The last columns expose the new join/index counters on the auto arm.
func E15(sizes map[string][]int, ticks int) (Table, error) {
	t := Table{
		ID:     "E15",
		Title:  "batched vs scalar join execution (single core, ms/tick)",
		Header: []string{"workload", "n", "scalar", "batched", "unfused", "auto", "batched speedup", "fused speedup", "cand/probe", "build ms/tick"},
		Notes:  "batched speedup = scalar/batched; fused speedup = unfused/batched (residual-mask and fold kernels with fusion disabled) — expect ~1x here: candidate gather and index build dominate batched join ticks, so the fusion delta concentrates in E13's per-object kernels; cand/probe and index build time measured on the batched arm; strategies adapt identically in every arm",
	}
	type wk struct {
		name     string
		src      string
		populate func(w *engine.World, n int) error
	}
	workloads := []wk{
		{"fig2", core.SrcFig2, func(w *engine.World, n int) error {
			_, err := core.PopulateUnits(w, workload.Uniform(n, 1200, 1200, 7), 10)
			return err
		}},
		{"rts", core.SrcRTS, func(w *engine.World, n int) error {
			ph := physics.New2D(physics.Config{
				Class: "Soldier", XAttr: "x", YAttr: "y",
				VXEffect: "vx", VYEffect: "vy",
				Radius: 1, MaxSpeed: 3,
			})
			if err := w.Register(ph); err != nil {
				return err
			}
			_, err := core.PopulateSoldiers(w, workload.Clustered(n, 8, 60, 1500, 1500, 11))
			return err
		}},
		{"flock", core.SrcFlock, func(w *engine.World, n int) error {
			_, err := core.PopulateBoids(w, workload.Uniform(n, 1400, 1400, 3))
			return err
		}},
	}
	for _, wl := range workloads {
		sc, err := core.LoadScenario(wl.name, wl.src)
		if err != nil {
			return t, err
		}
		for _, n := range sizes[wl.name] {
			arms := []engine.Options{
				{Join: plan.JoinScalar},
				{Join: plan.JoinBatched},
				{Join: plan.JoinBatched, Unfused: true},
				{Join: plan.JoinAuto},
			}
			times := make([]time.Duration, len(arms))
			var candPerProbe, buildMS float64
			for i, opts := range arms {
				w, err := sc.NewWorld(opts)
				if err != nil {
					return t, err
				}
				if err := wl.populate(w, n); err != nil {
					return t, err
				}
				// Batched arms run several times faster than the scalar
				// one; more measured ticks keep the unfused/batched ratio
				// out of timer noise.
				armTicks := ticks
				if opts.Join == plan.JoinBatched {
					armTicks = ticks * 5
				}
				if times[i], err = tickTime(w.RunTick, armTicks); err != nil {
					return t, err
				}
				if opts.Join == plan.JoinBatched && !opts.Unfused {
					st := w.ExecStats()
					if st.JoinProbeRows > 0 {
						candPerProbe = float64(st.JoinBatchedRows) / float64(st.JoinProbeRows)
					}
					buildMS = float64(st.IndexBuildNanos) / 1e6 / float64(ticks)
				}
			}
			scalar, batched, unfused, auto := times[0], times[1], times[2], times[3]
			t.Rows = append(t.Rows, []string{
				wl.name, fmt.Sprint(n),
				ms(scalar), ms(batched), ms(unfused), ms(auto),
				fmt.Sprintf("%.1fx", float64(scalar)/float64(batched)),
				fmt.Sprintf("%.2fx", float64(unfused)/float64(batched)),
				fmt.Sprintf("%.1f", candPerProbe),
				fmt.Sprintf("%.2f", buildMS),
			})
		}
	}
	return t, nil
}
