package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/physics"
	"repro/internal/plan"
	"repro/internal/workload"
)

// E15 measures batched join execution (PR 3) against the scalar per-match
// interpreter on join-dominated workloads, single core: the paper's Fig-2
// crowding loop, the rts combat maxby join, and the flocking scenario whose
// tick is almost entirely range-join work. Both arms use the same adaptive
// strategy selection and the same per-tick indexes; only match execution
// differs — interpreted loop body per candidate versus batch-gathered rows,
// split-predicate re-check over raw columns and columnar contribution folds.
// The last columns expose the new join/index counters on the auto arm.
func E15(sizes map[string][]int, ticks int) (Table, error) {
	t := Table{
		ID:     "E15",
		Title:  "batched vs scalar join execution (single core, ms/tick)",
		Header: []string{"workload", "n", "scalar", "batched", "auto", "batched speedup", "cand/probe", "build ms/tick"},
		Notes:  "speedup = scalar/batched; cand/probe and index build time measured on the batched arm; strategies adapt identically in every arm",
	}
	type wk struct {
		name     string
		src      string
		populate func(w *engine.World, n int) error
	}
	workloads := []wk{
		{"fig2", core.SrcFig2, func(w *engine.World, n int) error {
			_, err := core.PopulateUnits(w, workload.Uniform(n, 1200, 1200, 7), 10)
			return err
		}},
		{"rts", core.SrcRTS, func(w *engine.World, n int) error {
			ph := physics.New2D(physics.Config{
				Class: "Soldier", XAttr: "x", YAttr: "y",
				VXEffect: "vx", VYEffect: "vy",
				Radius: 1, MaxSpeed: 3,
			})
			if err := w.Register(ph); err != nil {
				return err
			}
			_, err := core.PopulateSoldiers(w, workload.Clustered(n, 8, 60, 1500, 1500, 11))
			return err
		}},
		{"flock", core.SrcFlock, func(w *engine.World, n int) error {
			_, err := core.PopulateBoids(w, workload.Uniform(n, 1400, 1400, 3))
			return err
		}},
	}
	for _, wl := range workloads {
		sc, err := core.LoadScenario(wl.name, wl.src)
		if err != nil {
			return t, err
		}
		for _, n := range sizes[wl.name] {
			times := map[plan.JoinMode]time.Duration{}
			var candPerProbe, buildMS float64
			for _, mode := range []plan.JoinMode{plan.JoinScalar, plan.JoinBatched, plan.JoinAuto} {
				w, err := sc.NewWorld(engine.Options{Join: mode})
				if err != nil {
					return t, err
				}
				if err := wl.populate(w, n); err != nil {
					return t, err
				}
				if times[mode], err = tickTime(w.RunTick, ticks); err != nil {
					return t, err
				}
				if mode == plan.JoinBatched {
					st := w.ExecStats()
					if st.JoinProbeRows > 0 {
						candPerProbe = float64(st.JoinBatchedRows) / float64(st.JoinProbeRows)
					}
					buildMS = float64(st.IndexBuildNanos) / 1e6 / float64(ticks)
				}
			}
			t.Rows = append(t.Rows, []string{
				wl.name, fmt.Sprint(n),
				ms(times[plan.JoinScalar]), ms(times[plan.JoinBatched]), ms(times[plan.JoinAuto]),
				fmt.Sprintf("%.1fx", float64(times[plan.JoinScalar])/float64(times[plan.JoinBatched])),
				fmt.Sprintf("%.1f", candPerProbe),
				fmt.Sprintf("%.2f", buildMS),
			})
		}
	}
	return t, nil
}
