// Package schema models SGL class definitions and generates the relational
// schema that backs them (§2.1 of the paper). The programmer never writes a
// schema: the compiler derives tables from class declarations, including the
// vertical-partitioning strategies the paper reports experimenting with.
package schema

import (
	"fmt"
	"sort"

	"repro/internal/combinator"
	"repro/internal/value"
)

// Attr describes one state or effect attribute of a class.
type Attr struct {
	Name     string
	Kind     value.Kind
	RefClass string     // for KindRef: the referenced class name
	ElemKind value.Kind // for KindSet: the element kind
	ElemRef  string     // for KindSet of refs: the referenced class name

	// Effect-only: the ⊕ combinator applied to contributions each tick.
	Comb combinator.Kind

	// State-only: the initial value for new objects, and the update
	// component that owns this attribute ("" means an expression update
	// rule or script-managed state; see engine.UpdateComponent).
	Default value.Value
	Owner   string
}

// IsEffect reports whether the attribute is an effect variable.
func (a Attr) IsEffect() bool { return a.Comb != combinator.Invalid }

// Class is an SGL class declaration: state attributes (read-only during a
// tick) and effect attributes (write-only, combined by ⊕ at tick end).
type Class struct {
	Name    string
	State   []Attr
	Effects []Attr

	stateIdx  map[string]int
	effectIdx map[string]int
}

// NewClass builds a class and validates attribute name uniqueness and
// combinator/type compatibility.
func NewClass(name string, state, effects []Attr) (*Class, error) {
	c := &Class{
		Name:      name,
		State:     state,
		Effects:   effects,
		stateIdx:  make(map[string]int, len(state)),
		effectIdx: make(map[string]int, len(effects)),
	}
	seen := make(map[string]bool, len(state)+len(effects))
	for i, a := range state {
		if seen[a.Name] {
			return nil, fmt.Errorf("schema: class %s: duplicate attribute %q", name, a.Name)
		}
		seen[a.Name] = true
		if a.Comb != combinator.Invalid {
			return nil, fmt.Errorf("schema: class %s: state attribute %q declares a combinator", name, a.Name)
		}
		if !a.Default.IsValid() {
			c.State[i].Default = value.Zero(a.Kind)
		}
		c.stateIdx[a.Name] = i
	}
	for i, a := range effects {
		if seen[a.Name] {
			return nil, fmt.Errorf("schema: class %s: duplicate attribute %q", name, a.Name)
		}
		seen[a.Name] = true
		if a.Comb == combinator.Invalid {
			return nil, fmt.Errorf("schema: class %s: effect attribute %q has no combinator", name, a.Name)
		}
		if !a.Comb.Accepts(a.Kind) {
			return nil, fmt.Errorf("schema: class %s: combinator %s cannot combine %s attribute %q",
				name, a.Comb, a.Kind, a.Name)
		}
		c.effectIdx[a.Name] = i
	}
	return c, nil
}

// StateAttr looks up a state attribute by name.
func (c *Class) StateAttr(name string) (Attr, bool) {
	i, ok := c.stateIdx[name]
	if !ok {
		return Attr{}, false
	}
	return c.State[i], true
}

// StateIndex returns the position of a state attribute, or -1.
func (c *Class) StateIndex(name string) int {
	if i, ok := c.stateIdx[name]; ok {
		return i
	}
	return -1
}

// EffectAttr looks up an effect attribute by name.
func (c *Class) EffectAttr(name string) (Attr, bool) {
	i, ok := c.effectIdx[name]
	if !ok {
		return Attr{}, false
	}
	return c.Effects[i], true
}

// EffectIndex returns the position of an effect attribute, or -1.
func (c *Class) EffectIndex(name string) int {
	if i, ok := c.effectIdx[name]; ok {
		return i
	}
	return -1
}

// Schema is a collection of classes, the unit the compiler operates on.
type Schema struct {
	classes map[string]*Class
	order   []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{classes: make(map[string]*Class)}
}

// Add registers a class. Class names must be unique.
func (s *Schema) Add(c *Class) error {
	if _, ok := s.classes[c.Name]; ok {
		return fmt.Errorf("schema: duplicate class %q", c.Name)
	}
	s.classes[c.Name] = c
	s.order = append(s.order, c.Name)
	return nil
}

// Class looks up a class by name.
func (s *Schema) Class(name string) (*Class, bool) {
	c, ok := s.classes[name]
	return c, ok
}

// Classes returns all classes in declaration order.
func (s *Schema) Classes() []*Class {
	out := make([]*Class, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.classes[n])
	}
	return out
}

// Validate checks cross-class integrity: every ref attribute must point at
// a declared class.
func (s *Schema) Validate() error {
	check := func(cls string, a Attr) error {
		if a.Kind == value.KindRef && a.RefClass != "" {
			if _, ok := s.classes[a.RefClass]; !ok {
				return fmt.Errorf("schema: class %s: attribute %q references unknown class %q", cls, a.Name, a.RefClass)
			}
		}
		if a.Kind == value.KindSet && a.ElemKind == value.KindRef && a.ElemRef != "" {
			if _, ok := s.classes[a.ElemRef]; !ok {
				return fmt.Errorf("schema: class %s: attribute %q references unknown class %q", cls, a.Name, a.ElemRef)
			}
		}
		return nil
	}
	for _, c := range s.Classes() {
		for _, a := range c.State {
			if err := check(c.Name, a); err != nil {
				return err
			}
		}
		for _, a := range c.Effects {
			if err := check(c.Name, a); err != nil {
				return err
			}
		}
	}
	return nil
}

// LayoutStrategy selects how class attributes are mapped onto tables
// (§2.1: "it is often best to break a class up into multiple tables
// containing those attributes that commonly appear in expressions
// together; in other cases ... a single table for all of the state
// variables, and a separate table for each individual effect variable").
type LayoutStrategy uint8

const (
	// LayoutSingle puts all state attributes of a class in one table and
	// each effect attribute in its own (sparse) delta table.
	LayoutSingle LayoutStrategy = iota
	// LayoutPerAttribute gives every state attribute its own table.
	LayoutPerAttribute
	// LayoutAffinity groups state attributes that co-occur in script
	// expressions (the co-occurrence sets are supplied by the compiler).
	LayoutAffinity
)

// TableSpec names one generated table and the attributes it stores.
type TableSpec struct {
	Name  string
	Class string
	Attrs []string
}

// Layout computes the table layout for a class. affinity supplies groups of
// attribute names that commonly appear together (used by LayoutAffinity;
// ignored otherwise). Attributes not covered by any group each get their
// own table. Effect attributes always get one delta table each, because
// effect contributions are sparse per tick.
func Layout(c *Class, strategy LayoutStrategy, affinity [][]string) []TableSpec {
	var specs []TableSpec
	switch strategy {
	case LayoutSingle:
		names := make([]string, len(c.State))
		for i, a := range c.State {
			names[i] = a.Name
		}
		specs = append(specs, TableSpec{Name: c.Name + "_state", Class: c.Name, Attrs: names})
	case LayoutPerAttribute:
		for _, a := range c.State {
			specs = append(specs, TableSpec{Name: c.Name + "_" + a.Name, Class: c.Name, Attrs: []string{a.Name}})
		}
	case LayoutAffinity:
		covered := make(map[string]bool)
		for gi, group := range affinity {
			var names []string
			for _, n := range group {
				if c.StateIndex(n) >= 0 && !covered[n] {
					covered[n] = true
					names = append(names, n)
				}
			}
			if len(names) > 0 {
				specs = append(specs, TableSpec{
					Name:  fmt.Sprintf("%s_g%d", c.Name, gi),
					Class: c.Name,
					Attrs: names,
				})
			}
		}
		var rest []string
		for _, a := range c.State {
			if !covered[a.Name] {
				rest = append(rest, a.Name)
			}
		}
		if len(rest) > 0 {
			specs = append(specs, TableSpec{Name: c.Name + "_rest", Class: c.Name, Attrs: rest})
		}
	}
	for _, a := range c.Effects {
		specs = append(specs, TableSpec{Name: c.Name + "_fx_" + a.Name, Class: c.Name, Attrs: []string{a.Name}})
	}
	sort.SliceStable(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}
