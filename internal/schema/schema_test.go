package schema

import (
	"testing"

	"repro/internal/combinator"
	"repro/internal/value"
)

func unitClass(t *testing.T) *Class {
	t.Helper()
	c, err := NewClass("Unit",
		[]Attr{
			{Name: "x", Kind: value.KindNumber},
			{Name: "y", Kind: value.KindNumber},
			{Name: "hp", Kind: value.KindNumber, Default: value.Num(100)},
			{Name: "boss", Kind: value.KindRef, RefClass: "Unit"},
		},
		[]Attr{
			{Name: "damage", Kind: value.KindNumber, Comb: combinator.Sum},
			{Name: "vx", Kind: value.KindNumber, Comb: combinator.Avg},
		})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClass(t *testing.T) {
	c := unitClass(t)
	if a, ok := c.StateAttr("hp"); !ok || a.Default.AsNumber() != 100 {
		t.Error("hp default")
	}
	if a, ok := c.StateAttr("x"); !ok || !a.Default.IsValid() || a.Default.AsNumber() != 0 {
		t.Error("implicit zero default")
	}
	if i := c.StateIndex("boss"); i != 3 {
		t.Errorf("StateIndex(boss) = %d", i)
	}
	if i := c.EffectIndex("vx"); i != 1 {
		t.Errorf("EffectIndex(vx) = %d", i)
	}
	if _, ok := c.StateAttr("damage"); ok {
		t.Error("effects must not be state attrs")
	}
	if a, _ := c.EffectAttr("damage"); !a.IsEffect() {
		t.Error("IsEffect")
	}
}

func TestNewClassErrors(t *testing.T) {
	if _, err := NewClass("C", []Attr{{Name: "a", Kind: value.KindNumber}, {Name: "a", Kind: value.KindBool}}, nil); err == nil {
		t.Error("duplicate state attr")
	}
	if _, err := NewClass("C", []Attr{{Name: "a", Kind: value.KindNumber}},
		[]Attr{{Name: "a", Kind: value.KindNumber, Comb: combinator.Sum}}); err == nil {
		t.Error("state/effect name collision")
	}
	if _, err := NewClass("C", nil, []Attr{{Name: "e", Kind: value.KindNumber}}); err == nil {
		t.Error("effect without combinator")
	}
	if _, err := NewClass("C", nil, []Attr{{Name: "e", Kind: value.KindBool, Comb: combinator.Sum}}); err == nil {
		t.Error("sum over bool")
	}
	if _, err := NewClass("C", []Attr{{Name: "s", Kind: value.KindNumber, Comb: combinator.Sum}}, nil); err == nil {
		t.Error("state attr with combinator")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := NewSchema()
	if err := s.Add(unitClass(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	if err := s.Add(unitClass(t)); err == nil {
		t.Error("duplicate class")
	}
	bad, _ := NewClass("Bad", []Attr{{Name: "r", Kind: value.KindRef, RefClass: "Ghost"}}, nil)
	s2 := NewSchema()
	s2.Add(bad)
	if err := s2.Validate(); err == nil {
		t.Error("dangling ref class must fail validation")
	}
	badSet, _ := NewClass("BadSet", []Attr{{Name: "s", Kind: value.KindSet, ElemKind: value.KindRef, ElemRef: "Ghost"}}, nil)
	s3 := NewSchema()
	s3.Add(badSet)
	if err := s3.Validate(); err == nil {
		t.Error("dangling set element class must fail validation")
	}
}

func TestClassesOrder(t *testing.T) {
	s := NewSchema()
	a, _ := NewClass("A", nil, nil)
	b, _ := NewClass("B", nil, nil)
	s.Add(b)
	s.Add(a)
	got := s.Classes()
	if got[0].Name != "B" || got[1].Name != "A" {
		t.Error("declaration order not preserved")
	}
}

func TestLayoutSingle(t *testing.T) {
	c := unitClass(t)
	specs := Layout(c, LayoutSingle, nil)
	// One state table + one delta table per effect.
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	var stateSpec *TableSpec
	for i := range specs {
		if specs[i].Name == "Unit_state" {
			stateSpec = &specs[i]
		}
	}
	if stateSpec == nil || len(stateSpec.Attrs) != 4 {
		t.Fatalf("state table spec: %+v", specs)
	}
}

func TestLayoutPerAttribute(t *testing.T) {
	c := unitClass(t)
	specs := Layout(c, LayoutPerAttribute, nil)
	if len(specs) != 4+2 {
		t.Fatalf("specs = %d", len(specs))
	}
}

func TestLayoutAffinity(t *testing.T) {
	c := unitClass(t)
	// x and y co-occur in spatial predicates (§2.1's observation).
	specs := Layout(c, LayoutAffinity, [][]string{{"x", "y"}})
	var group, rest bool
	for _, s := range specs {
		switch {
		case len(s.Attrs) == 2 && s.Attrs[0] == "x" && s.Attrs[1] == "y":
			group = true
		case len(s.Attrs) == 2 && contains(s.Attrs, "hp") && contains(s.Attrs, "boss"):
			rest = true
		}
	}
	if !group || !rest {
		t.Fatalf("affinity layout wrong: %+v", specs)
	}
	// Affinity groups mentioning unknown attrs are skipped gracefully.
	specs2 := Layout(c, LayoutAffinity, [][]string{{"nope"}})
	total := 0
	for _, s := range specs2 {
		if s.Name != "Unit_fx_damage" && s.Name != "Unit_fx_vx" {
			total += len(s.Attrs)
		}
	}
	if total != 4 {
		t.Errorf("all state attrs must be covered, got %d", total)
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
