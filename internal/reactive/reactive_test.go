package reactive_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/reactive"
	"repro/internal/value"
)

// srcPatrol is a 3-phase intention: patrol A (phase 0), patrol B (phase 1),
// rest (phase 2). Phase 0 is also the "respond to attack" handler target.
const srcPatrol = `
class Bot {
  state:
    number phase0 = 0;
    number phase1 = 0;
    number phase2 = 0;
    number threat = 0;
  effects:
    number p0 : sum;
    number p1 : sum;
    number p2 : sum;
  update:
    phase0 = phase0 + p0;
    phase1 = phase1 + p1;
    phase2 = phase2 + p2;
  run {
    p0 <- 1;
    waitNextTick;
    p1 <- 1;
    waitNextTick;
    p2 <- 1;
  }
}
`

func load(t *testing.T) (*core.Scenario, *engine.World) {
	t.Helper()
	sc, err := core.LoadScenario("patrol", srcPatrol)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sc, w
}

func TestCondition(t *testing.T) {
	sc, w := load(t)
	cond, err := reactive.Condition(sc.Info, "Bot", "threat > 0 && phase2 == 0")
	if err != nil {
		t.Fatal(err)
	}
	id, _ := w.Spawn("Bot", nil)
	if cond(w, id) {
		t.Error("condition true on fresh bot")
	}
	w.SetState("Bot", id, "threat", value.Num(1))
	if !cond(w, id) {
		t.Error("condition false after threat set")
	}
	if _, err := reactive.Condition(sc.Info, "Bot", "threat +"); err == nil {
		t.Error("syntax error must surface")
	}
	if _, err := reactive.Condition(sc.Info, "Bot", "threat + 1"); err == nil {
		t.Error("non-bool condition must be rejected")
	}
	if _, err := reactive.Condition(sc.Info, "Nope", "threat > 0"); err == nil {
		t.Error("unknown class must be rejected")
	}
}

func TestInterruptTerminationModel(t *testing.T) {
	sc, w := load(t)
	m := reactive.NewManager(w, "Bot")
	// While threatened, restart the script at phase 0 (termination model).
	if err := m.InterruptWhen(sc.Info, "threat > 0", 0, false); err != nil {
		t.Fatal(err)
	}
	id, _ := w.Spawn("Bot", nil)
	w.SetState("Bot", id, "threat", value.Num(1))
	w.Run(4)
	// Every tick the interrupt resets pc to 0, so only phase 0 runs.
	if got := w.MustGet("Bot", id, "phase0").AsNumber(); got != 4 {
		t.Fatalf("phase0 = %v, want 4", got)
	}
	if got := w.MustGet("Bot", id, "phase1").AsNumber(); got != 0 {
		t.Fatalf("phase1 = %v, want 0", got)
	}
}

func TestInterruptResumeModel(t *testing.T) {
	sc, w := load(t)
	m := reactive.NewManager(w, "Bot")
	if err := m.InterruptWhen(sc.Info, "threat > 0", 0, true); err != nil {
		t.Fatal(err)
	}
	w.AddInspector(reactive.Resumer{M: m})
	id, _ := w.Spawn("Bot", nil)
	// Tick 1: phase 0 runs, pc -> 1.
	w.Run(1)
	// Threat arrives mid-patrol. Tick 2 still executes phase 1 (the threat
	// is only observed at the end of the update step); the interrupt then
	// saves the phase the script would run next (2) and pins pc to 0.
	w.SetState("Bot", id, "threat", value.Num(1))
	w.Run(2) // tick 2: phase1; tick 3: interrupted, phase0
	if got := w.MustGet("Bot", id, "phase0").AsNumber(); got != 2 {
		t.Fatalf("phase0 during threat = %v, want 2", got)
	}
	if got := w.MustGet("Bot", id, "phase1").AsNumber(); got != 1 {
		t.Fatalf("phase1 = %v, want 1", got)
	}
	// Threat clears: the bot resumes the saved phase (2) instead of
	// restarting — the resumable-exception model of §3.2.
	w.SetState("Bot", id, "threat", value.Num(0))
	w.Run(1) // tick 4: still phase0; interrupt clears, resumption applies
	if pc := w.PC("Bot", id); pc != 2 {
		t.Fatalf("pc after resume = %d, want 2", pc)
	}
	w.Run(1) // tick 5: phase2 runs
	if got := w.MustGet("Bot", id, "phase2").AsNumber(); got != 1 {
		t.Fatalf("phase2 = %v, want 1", got)
	}
}
