// Package reactive builds on the engine's handler and interrupt hooks to
// implement §3.2's intention model: multi-tick scripts are interruptible
// and resumable, in the style of resumable exceptions. An Intention names a
// contiguous phase range of a class's script; rules interrupt the script to
// a handler phase when a condition fires, optionally remembering where to
// resume.
package reactive

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/sem"
	"repro/internal/value"
)

// Condition compiles an SGL boolean expression over a class's state
// attributes into a predicate usable with engine interrupts, e.g.
// Condition(info, "Guard", "health < 20 && fleeing == 0").
func Condition(info *sem.Info, class, src string) (func(*engine.World, value.ID) bool, error) {
	e, err := parser.ParseExpr(src)
	if err != nil {
		return nil, err
	}
	t, err := info.AnalyzeExpr(class, e)
	if err != nil {
		return nil, err
	}
	if t.Kind != value.KindBool {
		return nil, fmt.Errorf("reactive: condition has type %s, want bool", t)
	}
	fn := expr.Compile(e)
	return func(w *engine.World, id value.ID) bool {
		ctx := expr.Ctx{
			W:      w,
			Class:  class,
			SelfID: id,
			Self:   selfReader{w: w, class: class, id: id},
		}
		return fn(&ctx).AsBool()
	}, nil
}

type selfReader struct {
	w     *engine.World
	class string
	id    value.ID
}

func (r selfReader) Attr(attrIdx int) value.Value {
	v, _ := r.w.StateValue(r.class, r.id, attrIdx)
	return v
}

// Intention is a named phase range of a multi-tick script.
type Intention struct {
	Name  string
	Start int // first phase of the intention
	End   int // last phase (inclusive)
}

// Manager coordinates interrupt rules with resumption: when a rule fires,
// the NPC's program counter jumps to the rule's target phase; when Resume
// is enabled, the interrupted phase is remembered and restored once the
// rule's condition clears — the "resumable exception" model of §3.2.
type Manager struct {
	w     *engine.World
	class string

	mu      sync.Mutex
	saved   map[value.ID]int
	pending map[value.ID]int
}

// NewManager creates an intention manager for one class.
func NewManager(w *engine.World, class string) *Manager {
	return &Manager{w: w, class: class, saved: make(map[value.ID]int)}
}

// InterruptWhen interrupts the script to targetPhase while cond holds.
// With resume=true, the pre-interrupt phase is saved on the first firing
// and restored when the condition clears (otherwise the script continues
// from targetPhase onward, the "termination model").
func (m *Manager) InterruptWhen(info *sem.Info, condSrc string, targetPhase int, resume bool) error {
	cond, err := Condition(info, m.class, condSrc)
	if err != nil {
		return err
	}
	return m.w.RegisterInterrupt(m.class, func(w *engine.World, id value.ID) bool {
		m.mu.Lock()
		defer m.mu.Unlock()
		if cond(w, id) {
			if resume {
				if _, ok := m.saved[id]; !ok {
					m.saved[id] = w.PC(m.class, id)
				}
			}
			return true
		}
		if resume {
			if pc, ok := m.saved[id]; ok {
				delete(m.saved, id)
				// Resume by re-interrupting to the saved phase once.
				m.resumeTo(id, pc)
			}
		}
		return false
	}, targetPhase)
}

// resumeTo records a one-shot resumption, applied by ApplyResumptions.
func (m *Manager) resumeTo(id value.ID, phase int) {
	if m.pending == nil {
		m.pending = make(map[value.ID]int)
	}
	m.pending[id] = phase
}

// ApplyResumptions restores saved phases recorded by resume-enabled rules.
// Call between ticks — attach the Resumer inspector to do it automatically.
func (m *Manager) ApplyResumptions() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, phase := range m.pending {
		m.w.SetPC(m.class, id, phase)
		delete(m.pending, id)
	}
}

// Resumer is an engine.Inspector applying resumptions at each tick end.
type Resumer struct{ M *Manager }

// TickStart implements engine.Inspector.
func (r Resumer) TickStart(w *engine.World, tick int64) {}

// TickEnd implements engine.Inspector.
func (r Resumer) TickEnd(w *engine.World, tick int64) { r.M.ApplyResumptions() }
