package table

import (
	"sync"
	"sync/atomic"
)

// Dict is a string dictionary shared by every table of a world: it interns
// each distinct string once and hands out a dense float64 code, so string
// columns get an ordinary numeric payload lane and equality predicates over
// strings compile to numeric kernels (same dict ⇒ equal codes iff equal
// strings, across columns, tables and literals).
//
// Codes are assigned in first-intern order and are NOT lexicographic:
// ordered string comparisons must not be evaluated over code lanes. "" is
// pre-interned as code 0 so the zero payload of a string lane decodes to
// value.Zero(KindString) — this is what dangling-ref gathers produce.
//
// Interning happens in serial phases (world build, inserts, scalar effect
// application); kernel execution only reads. The snapshot-swap layout below
// makes reads lock-free so parallel kernels can decode/probe while another
// partition's serial apply step interns a new string.
type Dict struct {
	mu    sync.Mutex
	state atomic.Pointer[dictState]
}

type dictState struct {
	codes map[string]float64
	strs  []string
}

// NewDict returns a dictionary with "" pre-interned as code 0.
func NewDict() *Dict {
	d := &Dict{}
	st := &dictState{codes: map[string]float64{"": 0}, strs: []string{""}}
	d.state.Store(st)
	return d
}

// Code returns the code for s, interning it on first use. Satisfies
// vexpr.Dict.
func (d *Dict) Code(s string) float64 {
	if c, ok := d.state.Load().codes[s]; ok {
		return c
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state.Load()
	if c, ok := st.codes[s]; ok {
		return c
	}
	// Copy-on-write: readers keep seeing a consistent snapshot.
	nw := &dictState{codes: make(map[string]float64, len(st.codes)+1), strs: make([]string, len(st.strs), len(st.strs)+1)}
	for k, v := range st.codes {
		nw.codes[k] = v
	}
	copy(nw.strs, st.strs)
	c := float64(len(nw.strs))
	nw.codes[s] = c
	nw.strs = append(nw.strs, s)
	d.state.Store(nw)
	return c
}

// CodeOf returns the code for s without interning. The second result is
// false when s was never interned — the caller then knows s cannot equal any
// stored string lane.
func (d *Dict) CodeOf(s string) (float64, bool) {
	c, ok := d.state.Load().codes[s]
	return c, ok
}

// Lookup decodes a code back to its string. Codes outside the interned range
// decode to "".
func (d *Dict) Lookup(code float64) string {
	strs := d.state.Load().strs
	i := int(code)
	if i < 0 || i >= len(strs) || float64(i) != code {
		return ""
	}
	return strs[i]
}

// Len returns the number of interned strings.
func (d *Dict) Len() int { return len(d.state.Load().strs) }
