// Package table implements the columnar main-memory tables that back SGL
// class extents (§4 of the paper). Storage is one typed slice per column
// with an alive bitmap and a free list, so scans are cache-friendly and row
// ids stay stable across deletes.
package table

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// Column declares one column of a table.
type Column struct {
	Name string
	Kind value.Kind
}

// Table is a columnar main-memory relation keyed by value.ID. Numbers,
// booleans and refs share float64 storage; strings and sets have their own
// slices. Deleted slots are reused via a free list.
type Table struct {
	name   string
	cols   []Column
	colIdx map[string]int

	nums [][]float64    // per column, for number/bool/ref columns (else nil)
	strs [][]string     // per column, for string columns (else nil)
	sets [][]*value.Set // per column, for set columns (else nil)

	ids     []value.ID
	alive   []bool
	idToRow map[value.ID]int
	free    []int
	n       int // live row count

	// Cheap change detection for index reuse (§4.1): colVer[i] bumps on
	// every write to column i, structVer on every insert/delete/restore.
	// A per-tick index whose source columns and structure versions are
	// unchanged since it was built is still valid verbatim.
	colVer    []uint64
	structVer uint64

	// dict, when non-nil, maintains a float64 code lane in nums for every
	// string column (the dictionary-encoded payload vectorized kernels
	// execute over). The strs slices stay the source of truth for At/Get.
	dict *Dict
}

// New creates an empty table with the given columns.
func New(name string, cols []Column) *Table {
	return NewWithDict(name, cols, nil)
}

// NewWithDict creates an empty table whose string columns carry
// dictionary-encoded float64 code lanes alongside the string storage,
// using (and extending) the given shared dictionary.
func NewWithDict(name string, cols []Column, dict *Dict) *Table {
	t := &Table{
		dict:    dict,
		name:    name,
		cols:    cols,
		colIdx:  make(map[string]int, len(cols)),
		nums:    make([][]float64, len(cols)),
		strs:    make([][]string, len(cols)),
		sets:    make([][]*value.Set, len(cols)),
		idToRow: make(map[value.ID]int),
		colVer:  make([]uint64, len(cols)),
	}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			panic(fmt.Sprintf("table %s: duplicate column %q", name, c.Name))
		}
		t.colIdx[c.Name] = i
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Dict returns the shared string dictionary, or nil when the table stores
// strings without code lanes.
func (t *Table) Dict() *Dict { return t.dict }

// Columns returns the column declarations.
func (t *Table) Columns() []Column { return t.cols }

// ColIndex returns the index of a column, or -1 if absent.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// Len returns the number of live rows.
func (t *Table) Len() int { return t.n }

// Cap returns the number of physical slots (live + free).
func (t *Table) Cap() int { return len(t.ids) }

// Insert adds a row for id with the given values (one per column, in
// declaration order). It panics if id already exists or arity mismatches.
func (t *Table) Insert(id value.ID, vals []value.Value) int {
	if _, ok := t.idToRow[id]; ok {
		panic(fmt.Sprintf("table %s: duplicate id %d", t.name, id))
	}
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("table %s: insert arity %d, want %d", t.name, len(vals), len(t.cols)))
	}
	t.structVer++
	var row int
	if k := len(t.free); k > 0 {
		row = t.free[k-1]
		t.free = t.free[:k-1]
		t.ids[row] = id
		t.alive[row] = true
	} else {
		row = len(t.ids)
		t.ids = append(t.ids, id)
		t.alive = append(t.alive, true)
		for i, c := range t.cols {
			switch c.Kind {
			case value.KindString:
				t.strs[i] = append(t.strs[i], "")
				if t.dict != nil {
					t.nums[i] = append(t.nums[i], 0) // dict code of ""
				}
			case value.KindSet:
				t.sets[i] = append(t.sets[i], nil)
			default:
				t.nums[i] = append(t.nums[i], 0)
			}
		}
	}
	for i := range t.cols {
		t.setRaw(row, i, vals[i])
	}
	t.idToRow[id] = row
	t.n++
	return row
}

// Delete removes the row for id. Returns false if id is absent.
func (t *Table) Delete(id value.ID) bool {
	row, ok := t.idToRow[id]
	if !ok {
		return false
	}
	t.structVer++
	delete(t.idToRow, id)
	t.alive[row] = false
	// Release set pointers so the GC can reclaim them.
	for i, c := range t.cols {
		if c.Kind == value.KindSet {
			t.sets[i][row] = nil
		}
	}
	t.free = append(t.free, row)
	t.n--
	return true
}

// Has reports whether id is a live row.
func (t *Table) Has(id value.ID) bool {
	_, ok := t.idToRow[id]
	return ok
}

// Row returns the physical row index for id, or -1.
func (t *Table) Row(id value.ID) int {
	if r, ok := t.idToRow[id]; ok {
		return r
	}
	return -1
}

// ID returns the object id stored at physical row r (valid only if alive).
func (t *Table) ID(r int) value.ID { return t.ids[r] }

// Alive reports whether physical row r is live.
func (t *Table) Alive(r int) bool { return r >= 0 && r < len(t.alive) && t.alive[r] }

// Get returns the value at (id, column name). The second result is false if
// the id or column is unknown.
func (t *Table) Get(id value.ID, col string) (value.Value, bool) {
	row, ok := t.idToRow[id]
	if !ok {
		return value.Value{}, false
	}
	ci, ok := t.colIdx[col]
	if !ok {
		return value.Value{}, false
	}
	return t.At(row, ci), true
}

// Set assigns the value at (id, column name). Returns false if unknown.
func (t *Table) Set(id value.ID, col string, v value.Value) bool {
	row, ok := t.idToRow[id]
	if !ok {
		return false
	}
	ci, ok := t.colIdx[col]
	if !ok {
		return false
	}
	t.setRaw(row, ci, v)
	return true
}

// At returns the value at a physical (row, column-index) position.
func (t *Table) At(row, ci int) value.Value {
	switch t.cols[ci].Kind {
	case value.KindNumber:
		return value.Num(t.nums[ci][row])
	case value.KindBool:
		return value.Bool(t.nums[ci][row] != 0)
	case value.KindRef:
		return value.Ref(value.ID(t.nums[ci][row]))
	case value.KindString:
		return value.Str(t.strs[ci][row])
	case value.KindSet:
		s := t.sets[ci][row]
		if s == nil {
			s = value.NewSet()
		}
		return value.SetVal(s)
	default:
		return value.Value{}
	}
}

// SetAt assigns the value at a physical (row, column-index) position.
func (t *Table) SetAt(row, ci int, v value.Value) { t.setRaw(row, ci, v) }

func (t *Table) setRaw(row, ci int, v value.Value) {
	t.colVer[ci]++
	k := t.cols[ci].Kind
	if v.Kind() != k {
		panic(fmt.Sprintf("table %s: column %s is %s, got %s", t.name, t.cols[ci].Name, k, v.Kind()))
	}
	switch k {
	case value.KindNumber:
		t.nums[ci][row] = v.AsNumber()
	case value.KindBool:
		if v.AsBool() {
			t.nums[ci][row] = 1
		} else {
			t.nums[ci][row] = 0
		}
	case value.KindRef:
		t.nums[ci][row] = float64(v.AsRef())
	case value.KindString:
		t.strs[ci][row] = v.AsString()
		if t.dict != nil {
			// Keep the dictionary-encoded code lane in step; interning only
			// happens here, in serial phases.
			t.nums[ci][row] = t.dict.Code(v.AsString())
		}
	case value.KindSet:
		t.sets[ci][row] = v.AsSet()
	}
}

// NumColumn exposes the raw float64 storage of a numeric/bool/ref column for
// vectorized operators and index construction. Callers must treat it as
// read-only and consult Alive for liveness.
func (t *Table) NumColumn(ci int) []float64 { return t.nums[ci] }

// NumColumns exposes the float64 storage of every column at once, indexed
// by column index; entries for set columns are nil, and entries for string
// columns are nil unless the table has a dictionary (then they hold the
// dictionary code lane). This is the read-only column view the vectorized
// batch evaluator executes over — callers must not write through it and
// must consult AliveMask for liveness.
func (t *Table) NumColumns() [][]float64 { return t.nums }

// AliveMask exposes the liveness bitmap indexed by physical row. Read-only;
// it aliases table storage and changes on Insert/Delete.
func (t *Table) AliveMask() []bool { return t.alive }

// SetNumAt stores a raw float64 payload at a physical (row, column-index)
// position of a number, bool or ref column (bool = 0/1, ref = id). It is
// the unboxed write path of the vectorized update step and panics on
// string/set columns, whose payloads are not columnar floats.
func (t *Table) SetNumAt(row, ci int, f float64) {
	t.colVer[ci]++
	switch t.cols[ci].Kind {
	case value.KindNumber, value.KindBool, value.KindRef:
		t.nums[ci][row] = f
	default:
		panic(fmt.Sprintf("table %s: SetNumAt on %s column %s", t.name, t.cols[ci].Kind, t.cols[ci].Name))
	}
}

// SetNumColumn overwrites the payloads of a number/bool/ref column at every
// row marked alive, bumping the column version once — the bulk counterpart
// of SetNumAt for staged kernel write-back.
func (t *Table) SetNumColumn(ci int, vals []float64, alive []bool) {
	t.colVer[ci]++
	switch t.cols[ci].Kind {
	case value.KindNumber, value.KindBool, value.KindRef:
	default:
		panic(fmt.Sprintf("table %s: SetNumColumn on %s column %s", t.name, t.cols[ci].Kind, t.cols[ci].Name))
	}
	col := t.nums[ci]
	if t.n == len(t.ids) {
		// Every physical slot is live: one memmove instead of a masked loop.
		copy(col, vals[:len(col)])
		return
	}
	for r, ok := range alive {
		if ok {
			col[r] = vals[r]
		}
	}
}

// SetNumColumnDiff is SetNumColumn for worlds with a change feed attached:
// it additionally appends to dirty the live rows whose stored payload bits
// actually changed, and returns the extended slice. Comparison is on raw
// float64 bits (math.Float64bits), not float equality, so -0↔+0 flips count
// as changes and NaN→same-NaN does not — the change feed must never miss a
// write that could flip a predicate downstream.
func (t *Table) SetNumColumnDiff(ci int, vals []float64, alive []bool, dirty []int32) []int32 {
	t.colVer[ci]++
	switch t.cols[ci].Kind {
	case value.KindNumber, value.KindBool, value.KindRef:
	default:
		panic(fmt.Sprintf("table %s: SetNumColumnDiff on %s column %s", t.name, t.cols[ci].Kind, t.cols[ci].Name))
	}
	col := t.nums[ci]
	if t.n == len(t.ids) {
		for r := range col {
			v := vals[r]
			if math.Float64bits(col[r]) != math.Float64bits(v) {
				col[r] = v
				dirty = append(dirty, int32(r))
			}
		}
		return dirty
	}
	for r, ok := range alive {
		if ok {
			v := vals[r]
			if math.Float64bits(col[r]) != math.Float64bits(v) {
				col[r] = v
				dirty = append(dirty, int32(r))
			}
		}
	}
	return dirty
}

// ForEach invokes fn for every live row in physical order.
func (t *Table) ForEach(fn func(row int, id value.ID)) {
	for r, ok := range t.alive {
		if ok {
			fn(r, t.ids[r])
		}
	}
}

// IDs returns all live ids in physical-row order.
func (t *Table) IDs() []value.ID {
	out := make([]value.ID, 0, t.n)
	for r, ok := range t.alive {
		if ok {
			out = append(out, t.ids[r])
		}
	}
	return out
}

// RowValues materializes a full tuple for a physical row.
func (t *Table) RowValues(row int) []value.Value {
	out := make([]value.Value, len(t.cols))
	for i := range t.cols {
		out[i] = t.At(row, i)
	}
	return out
}

// ColVersion returns the write-version counter of a column: it changes
// whenever any row's value in that column is (re)assigned.
func (t *Table) ColVersion(ci int) uint64 { return t.colVer[ci] }

// StructVersion returns the structural version counter: it changes whenever
// a row is inserted, deleted or the table is cleared/restored.
func (t *Table) StructVersion() uint64 { return t.structVer }

// RawIDs exposes the backing id slice indexed by physical row, including
// dead slots (consult Alive). Read-only; it aliases table storage.
func (t *Table) RawIDs() []value.ID { return t.ids }

// LiveRows appends the physical indexes of every live row, ascending, and
// returns the extended slice (pass a reused buffer to avoid allocation).
func (t *Table) LiveRows(buf []int32) []int32 {
	for r, ok := range t.alive {
		if ok {
			buf = append(buf, int32(r))
		}
	}
	return buf
}

// View is a read-only view over a subset of a table's physical rows — the
// partition-local slice of a shared columnar extent in the engine's
// shared-nothing execution mode (§4.2). A view holds row indexes, not data:
// the columns stay in the backing table, so building one costs nothing per
// row and ghost replicas are literal row references rather than copies.
type View struct {
	t    *Table
	rows []int32
}

// ViewOf wraps a set of physical row indexes (which the caller keeps sorted
// ascending) as a view of this table. The slice is aliased, not copied.
func (t *Table) ViewOf(rows []int32) View { return View{t: t, rows: rows} }

// Table returns the backing table.
func (v View) Table() *Table { return v.t }

// Rows returns the member physical rows (read-only, ascending).
func (v View) Rows() []int32 { return v.rows }

// Len returns the number of member rows.
func (v View) Len() int { return len(v.rows) }

// Clear removes all rows but keeps capacity.
func (t *Table) Clear() {
	t.structVer++
	for i := range t.alive {
		t.alive[i] = false
	}
	for i, c := range t.cols {
		if c.Kind == value.KindSet {
			for r := range t.sets[i] {
				t.sets[i][r] = nil
			}
		}
	}
	t.idToRow = make(map[value.ID]int)
	t.free = t.free[:0]
	for r := range t.ids {
		t.free = append(t.free, r)
	}
	t.n = 0
}

// SnapshotVersion is the current snapshot wire-format version. Version 1
// (never tagged on the wire) was the boxed row-at-a-time format; version 2
// is columnar: one compacted payload slab per column, deep-copied directly
// from table storage.
const SnapshotVersion = 2

// Snapshot captures a deep copy of the table contents for checkpointing
// (paper §3.3: logging with resumable checkpoints). The layout is columnar —
// live rows compact to indexes 0..len(IDs)-1 and each column carries one
// payload slab in that row order — so taking and restoring a snapshot is a
// handful of slab copies, not a boxed value.Value per cell. Restore
// validates Version and the full column layout before touching the table.
type Snapshot struct {
	Version int           `json:"version"`
	IDs     []value.ID    `json:"ids"`
	Cols    []ColSnapshot `json:"cols"`
}

// ColSnapshot is the deep-copied payload slab of one column, compacted to
// live rows. Exactly one of Nums/Strs/Sets is populated, matching Kind:
// number, bool and ref columns copy their raw float64 lane (bools as 0/1,
// refs as float-widened ids), string columns copy the string slice (the
// dictionary code lane is re-derived against the restoring table's Dict, so
// a snapshot restores exactly under any dictionary), and set columns carry
// cloned set values.
type ColSnapshot struct {
	Name string        `json:"name"`
	Kind string        `json:"kind"`
	Nums []float64     `json:"nums,omitempty"`
	Strs []string      `json:"strs,omitempty"`
	Sets []value.Value `json:"sets,omitempty"`
}

// kindName gives the stable wire name of a column kind (independent of the
// value.Kind enum ordering, which is not a serialization contract).
func kindName(k value.Kind) string {
	switch k {
	case value.KindNumber:
		return "num"
	case value.KindBool:
		return "bool"
	case value.KindRef:
		return "ref"
	case value.KindString:
		return "str"
	case value.KindSet:
		return "set"
	}
	return "invalid"
}

// Snapshot returns a deep columnar copy of all live rows.
func (t *Table) Snapshot() Snapshot {
	s := Snapshot{
		Version: SnapshotVersion,
		IDs:     make([]value.ID, 0, t.n),
		Cols:    make([]ColSnapshot, len(t.cols)),
	}
	full := t.n == len(t.ids) // no dead slots: slabs copy whole
	s.IDs = append(s.IDs, t.ids...)
	if !full {
		s.IDs = s.IDs[:0]
		for r, ok := range t.alive {
			if ok {
				s.IDs = append(s.IDs, t.ids[r])
			}
		}
	}
	for i, c := range t.cols {
		cs := ColSnapshot{Name: c.Name, Kind: kindName(c.Kind)}
		switch c.Kind {
		case value.KindString:
			if full {
				cs.Strs = append([]string(nil), t.strs[i]...)
			} else {
				cs.Strs = make([]string, 0, t.n)
				for r, ok := range t.alive {
					if ok {
						cs.Strs = append(cs.Strs, t.strs[i][r])
					}
				}
			}
		case value.KindSet:
			cs.Sets = make([]value.Value, 0, t.n)
			for r, ok := range t.alive {
				if ok {
					set := t.sets[i][r]
					if set == nil {
						set = value.NewSet()
					}
					cs.Sets = append(cs.Sets, value.SetVal(set.Clone()))
				}
			}
		default:
			if full {
				cs.Nums = append([]float64(nil), t.nums[i]...)
			} else {
				cs.Nums = make([]float64, 0, t.n)
				for r, ok := range t.alive {
					if ok {
						cs.Nums = append(cs.Nums, t.nums[i][r])
					}
				}
			}
		}
		s.Cols[i] = cs
	}
	return s
}

// validateSnapshot checks version, column layout and payload arity before
// any table state is touched, so a corrupt, truncated or mismatched snapshot
// is rejected with a clear error and the table left intact.
func (t *Table) validateSnapshot(s Snapshot) error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("table %s: unsupported snapshot version %d (want %d)", t.name, s.Version, SnapshotVersion)
	}
	if len(s.Cols) != len(t.cols) {
		return fmt.Errorf("table %s: snapshot has %d columns, want %d", t.name, len(s.Cols), len(t.cols))
	}
	n := len(s.IDs)
	for i, c := range t.cols {
		cs := s.Cols[i]
		if cs.Name != c.Name || cs.Kind != kindName(c.Kind) {
			return fmt.Errorf("table %s: snapshot column %d is %s %s, want %s %s",
				t.name, i, cs.Kind, cs.Name, kindName(c.Kind), c.Name)
		}
		got := len(cs.Nums)
		switch c.Kind {
		case value.KindString:
			got = len(cs.Strs)
		case value.KindSet:
			got = len(cs.Sets)
			for r, v := range cs.Sets {
				if v.Kind() != value.KindSet {
					return fmt.Errorf("table %s: snapshot column %s row %d holds %s, want set", t.name, c.Name, r, v.Kind())
				}
			}
		}
		if got != n {
			return fmt.Errorf("table %s: snapshot column %s is truncated: %d payloads for %d rows", t.name, c.Name, got, n)
		}
	}
	seen := make(map[value.ID]struct{}, n)
	for _, id := range s.IDs {
		if _, dup := seen[id]; dup {
			return fmt.Errorf("table %s: snapshot has duplicate id %d", t.name, id)
		}
		seen[id] = struct{}{}
	}
	return nil
}

// Validate checks a snapshot's version, column layout and payload arity
// against this table's schema without touching any table state — the
// engine's checkpoint restore validates every table before mutating any.
func (t *Table) Validate(s Snapshot) error { return t.validateSnapshot(s) }

// growTo extends the physical slot arrays to at least n rows (all dead).
func (t *Table) growTo(n int) {
	for len(t.ids) < n {
		t.ids = append(t.ids, 0)
		t.alive = append(t.alive, false)
		for i, c := range t.cols {
			switch c.Kind {
			case value.KindString:
				t.strs[i] = append(t.strs[i], "")
				if t.dict != nil {
					t.nums[i] = append(t.nums[i], 0) // dict code of ""
				}
			case value.KindSet:
				t.sets[i] = append(t.sets[i], nil)
			default:
				t.nums[i] = append(t.nums[i], 0)
			}
		}
	}
}

// Restore replaces the table contents with a snapshot, validating the
// format first. Payload slabs copy columnar into rows 0..len(IDs)-1; string
// columns re-derive their dictionary code lane against the table's own
// Dict, and sets deep-copy out of the snapshot so it stays reusable.
func (t *Table) Restore(s Snapshot) error {
	if err := t.validateSnapshot(s); err != nil {
		return err
	}
	t.Clear()
	n := len(s.IDs)
	t.growTo(n)
	for r := 0; r < n; r++ {
		id := s.IDs[r]
		t.ids[r] = id
		t.alive[r] = true
		t.idToRow[id] = r
	}
	t.free = t.free[:0]
	for r := n; r < len(t.ids); r++ {
		t.free = append(t.free, r)
	}
	t.n = n
	for i, c := range t.cols {
		t.colVer[i]++
		cs := s.Cols[i]
		switch c.Kind {
		case value.KindString:
			copy(t.strs[i], cs.Strs)
			if t.dict != nil {
				for r, str := range cs.Strs {
					t.nums[i][r] = t.dict.Code(str)
				}
			}
		case value.KindSet:
			for r, v := range cs.Sets {
				t.sets[i][r] = v.AsSet().Clone()
			}
		case value.KindBool:
			for r, f := range cs.Nums {
				if f != 0 {
					t.nums[i][r] = 1
				} else {
					t.nums[i][r] = 0
				}
			}
		default:
			copy(t.nums[i], cs.Nums)
		}
	}
	return nil
}
