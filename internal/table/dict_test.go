package table

import (
	"sync"
	"testing"

	"repro/internal/value"
)

func TestDictCodeLane(t *testing.T) {
	d := NewDict()
	if c, ok := d.CodeOf(""); !ok || c != 0 {
		t.Fatalf(`"" must pre-intern as code 0, got %v ok=%v`, c, ok)
	}
	tb := NewWithDict("u", []Column{
		{Name: "player", Kind: value.KindString},
		{Name: "hp", Kind: value.KindNumber},
	}, d)
	tb.Insert(1, []value.Value{value.Str("red"), value.Num(10)})
	tb.Insert(2, []value.Value{value.Str("blue"), value.Num(20)})
	tb.Insert(3, []value.Value{value.Str("red"), value.Num(30)})

	lane := tb.NumColumn(0)
	if lane == nil {
		t.Fatal("string column must expose a code lane under a dict")
	}
	red, _ := d.CodeOf("red")
	blue, _ := d.CodeOf("blue")
	if lane[0] != red || lane[1] != blue || lane[2] != red {
		t.Fatalf("code lane %v does not match interned codes red=%v blue=%v", lane[:3], red, blue)
	}
	if d.Lookup(lane[1]) != "blue" {
		t.Fatalf("Lookup(%v) = %q, want blue", lane[1], d.Lookup(lane[1]))
	}

	// Overwrite keeps the lane in step.
	tb.Set(2, "player", value.Str("red"))
	if lane[1] != red {
		t.Fatalf("after rewrite, lane[1] = %v, want %v", lane[1], red)
	}
	if v, _ := tb.Get(2, "player"); v.AsString() != "red" {
		t.Fatalf("string storage out of step: %v", v)
	}

	// Unknown strings and out-of-range codes.
	if _, ok := d.CodeOf("never"); ok {
		t.Fatal("CodeOf must miss for never-interned strings")
	}
	if d.Lookup(99) != "" || d.Lookup(-1) != "" || d.Lookup(0.5) != "" {
		t.Fatal("out-of-range codes must decode to empty string")
	}

	// A dict-less table keeps the legacy layout: no code lane.
	plain := New("p", []Column{{Name: "s", Kind: value.KindString}})
	plain.Insert(1, []value.Value{value.Str("x")})
	if plain.NumColumn(0) != nil {
		t.Fatal("dict-less string column must not grow a code lane")
	}
}

// TestDictConcurrentReads exercises the snapshot-swap layout: lock-free
// readers race serial interning without torn state (run under -race).
func TestDictConcurrentReads(t *testing.T) {
	d := NewDict()
	words := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range words {
					if c, ok := d.CodeOf(s); ok && d.Lookup(c) != s {
						t.Errorf("torn read: code %v decodes to %q, want %q", c, d.Lookup(c), s)
						return
					}
				}
			}
		}()
	}
	for _, s := range words {
		d.Code(s)
	}
	close(stop)
	wg.Wait()
	if d.Len() != len(words)+1 {
		t.Fatalf("Len = %d, want %d", d.Len(), len(words)+1)
	}
}
