package table

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func unitCols() []Column {
	return []Column{
		{Name: "x", Kind: value.KindNumber},
		{Name: "alive", Kind: value.KindBool},
		{Name: "name", Kind: value.KindString},
		{Name: "target", Kind: value.KindRef},
		{Name: "items", Kind: value.KindSet},
	}
}

func row(x float64, alive bool, name string, target value.ID, items *value.Set) []value.Value {
	return []value.Value{
		value.Num(x), value.Bool(alive), value.Str(name), value.Ref(target), value.SetVal(items),
	}
}

func TestInsertGetSet(t *testing.T) {
	tab := New("Unit", unitCols())
	tab.Insert(1, row(3.5, true, "a", 2, value.NewSet(value.Num(9))))
	tab.Insert(2, row(-1, false, "b", value.NullID, value.NewSet()))
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if v, ok := tab.Get(1, "x"); !ok || v.AsNumber() != 3.5 {
		t.Errorf("Get x = %v %v", v, ok)
	}
	if v, ok := tab.Get(1, "items"); !ok || !v.AsSet().Contains(value.Num(9)) {
		t.Errorf("Get items = %v", v)
	}
	if v, ok := tab.Get(2, "target"); !ok || !v.IsNullRef() {
		t.Errorf("Get target = %v", v)
	}
	if !tab.Set(1, "x", value.Num(7)) {
		t.Fatal("Set failed")
	}
	if v, _ := tab.Get(1, "x"); v.AsNumber() != 7 {
		t.Error("Set did not stick")
	}
	if _, ok := tab.Get(99, "x"); ok {
		t.Error("Get of unknown id must fail")
	}
	if _, ok := tab.Get(1, "nope"); ok {
		t.Error("Get of unknown column must fail")
	}
}

func TestInsertDuplicatePanics(t *testing.T) {
	tab := New("T", []Column{{Name: "x", Kind: value.KindNumber}})
	tab.Insert(1, []value.Value{value.Num(1)})
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert must panic")
		}
	}()
	tab.Insert(1, []value.Value{value.Num(2)})
}

func TestKindMismatchPanics(t *testing.T) {
	tab := New("T", []Column{{Name: "x", Kind: value.KindNumber}})
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch must panic")
		}
	}()
	tab.Insert(1, []value.Value{value.Bool(true)})
}

func TestDeleteAndReuse(t *testing.T) {
	tab := New("T", []Column{{Name: "x", Kind: value.KindNumber}})
	tab.Insert(1, []value.Value{value.Num(1)})
	tab.Insert(2, []value.Value{value.Num(2)})
	if !tab.Delete(1) || tab.Delete(1) {
		t.Fatal("Delete semantics")
	}
	if tab.Len() != 1 || tab.Has(1) {
		t.Fatal("after delete")
	}
	// New insert reuses the freed physical slot.
	tab.Insert(3, []value.Value{value.Num(3)})
	if tab.Cap() != 2 {
		t.Errorf("Cap = %d, want slot reuse", tab.Cap())
	}
	if v, _ := tab.Get(3, "x"); v.AsNumber() != 3 {
		t.Error("reused slot value")
	}
}

func TestForEachAndIDs(t *testing.T) {
	tab := New("T", []Column{{Name: "x", Kind: value.KindNumber}})
	for i := 1; i <= 5; i++ {
		tab.Insert(value.ID(i), []value.Value{value.Num(float64(i))})
	}
	tab.Delete(3)
	var seen []value.ID
	tab.ForEach(func(row int, id value.ID) { seen = append(seen, id) })
	if len(seen) != 4 {
		t.Fatalf("ForEach visited %d rows", len(seen))
	}
	for _, id := range seen {
		if id == 3 {
			t.Error("ForEach visited a deleted row")
		}
	}
	ids := tab.IDs()
	if len(ids) != 4 {
		t.Fatalf("IDs len = %d", len(ids))
	}
}

func TestClear(t *testing.T) {
	tab := New("T", unitCols())
	tab.Insert(1, row(1, true, "a", 2, value.NewSet(value.Num(1))))
	tab.Clear()
	if tab.Len() != 0 || tab.Has(1) {
		t.Fatal("Clear")
	}
	tab.Insert(9, row(9, false, "z", value.NullID, value.NewSet()))
	if v, _ := tab.Get(9, "x"); v.AsNumber() != 9 {
		t.Error("insert after Clear")
	}
}

func TestSnapshotRestore(t *testing.T) {
	tab := New("Unit", unitCols())
	tab.Insert(1, row(1, true, "a", 2, value.NewSet(value.Num(5))))
	tab.Insert(2, row(2, false, "b", value.NullID, value.NewSet()))
	snap := tab.Snapshot()

	// Mutate: snapshot must be isolated (deep copy of sets).
	tab.Set(1, "x", value.Num(99))
	s, _ := tab.Get(1, "items")
	s.AsSet().Add(value.Num(77))
	tab.Delete(2)
	tab.Insert(3, row(3, true, "c", 1, value.NewSet()))

	tab.Restore(snap)
	if tab.Len() != 2 || !tab.Has(1) || !tab.Has(2) || tab.Has(3) {
		t.Fatal("Restore membership")
	}
	if v, _ := tab.Get(1, "x"); v.AsNumber() != 1 {
		t.Errorf("Restore x = %v", v)
	}
	if v, _ := tab.Get(1, "items"); v.AsSet().Contains(value.Num(77)) {
		t.Error("snapshot set was aliased")
	}
	// Restore must also deep-copy out of the snapshot so it can be reused.
	v, _ := tab.Get(1, "items")
	v.AsSet().Add(value.Num(123))
	tab.Restore(snap)
	if v2, _ := tab.Get(1, "items"); v2.AsSet().Contains(value.Num(123)) {
		t.Error("restore aliased the snapshot's sets")
	}
}

// TestSnapshotValidateErrors pins the validate-before-mutate contract:
// corrupt, truncated and mismatched snapshots are rejected with errors that
// name the problem, and the table is left exactly as it was.
func TestSnapshotValidateErrors(t *testing.T) {
	tab := New("Unit", unitCols())
	tab.Insert(1, row(1, true, "a", 2, value.NewSet(value.Num(5))))
	tab.Insert(2, row(2, false, "b", value.NullID, value.NewSet()))

	corrupt := func(name string, mutate func(*Snapshot), wantSub string) {
		t.Helper()
		s := tab.Snapshot()
		mutate(&s)
		err := tab.Validate(s)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: Validate = %v, want error containing %q", name, err, wantSub)
		}
		if err := tab.Restore(s); err == nil {
			t.Errorf("%s: Restore accepted an invalid snapshot", name)
		}
		if tab.Len() != 2 || !tab.Has(1) || !tab.Has(2) {
			t.Fatalf("%s: failed restore mutated the table", name)
		}
		if v, _ := tab.Get(1, "x"); v.AsNumber() != 1 {
			t.Fatalf("%s: failed restore clobbered values", name)
		}
	}

	corrupt("bad version", func(s *Snapshot) { s.Version = SnapshotVersion + 1 }, "version")
	corrupt("truncated column", func(s *Snapshot) { s.Cols[0].Nums = s.Cols[0].Nums[:1] }, "truncated")
	corrupt("missing column", func(s *Snapshot) { s.Cols = s.Cols[:len(s.Cols)-1] }, "columns")
	corrupt("renamed column", func(s *Snapshot) { s.Cols[0].Name = "xx" }, "column 0")
	corrupt("kind mismatch", func(s *Snapshot) {
		s.Cols[0].Kind = "str"
		s.Cols[0].Nums = nil
		s.Cols[0].Strs = []string{"a", "b"}
	}, "column 0")
	corrupt("duplicate id", func(s *Snapshot) { s.IDs[1] = s.IDs[0] }, "duplicate id")
	corrupt("non-set payload", func(s *Snapshot) {
		for i := range s.Cols {
			if s.Cols[i].Kind == "set" {
				s.Cols[i].Sets[0] = value.Num(3)
			}
		}
	}, "want set")

	// A valid snapshot still round-trips after all the rejected attempts.
	good := tab.Snapshot()
	if err := tab.Validate(good); err != nil {
		t.Fatalf("Validate(good) = %v", err)
	}
	if err := tab.Restore(good); err != nil {
		t.Fatalf("Restore(good) = %v", err)
	}
}

func TestNumColumn(t *testing.T) {
	tab := New("T", []Column{{Name: "x", Kind: value.KindNumber}})
	tab.Insert(1, []value.Value{value.Num(4)})
	tab.Insert(2, []value.Value{value.Num(8)})
	col := tab.NumColumn(0)
	if col[0] != 4 || col[1] != 8 {
		t.Errorf("NumColumn = %v", col)
	}
}

func TestColumnViewsAndSetNumAt(t *testing.T) {
	tab := New("T", []Column{
		{Name: "x", Kind: value.KindNumber},
		{Name: "ok", Kind: value.KindBool},
		{Name: "to", Kind: value.KindRef},
		{Name: "tag", Kind: value.KindString},
	})
	tab.Insert(1, []value.Value{value.Num(4), value.Bool(true), value.Ref(7), value.Str("a")})
	tab.Insert(2, []value.Value{value.Num(8), value.Bool(false), value.NullRef(), value.Str("b")})
	tab.Delete(2)

	cols := tab.NumColumns()
	if cols[0][0] != 4 || cols[1][0] != 1 || cols[2][0] != 7 {
		t.Errorf("NumColumns payloads = %v %v %v", cols[0][0], cols[1][0], cols[2][0])
	}
	if cols[3] != nil {
		t.Error("string column must have nil numeric view")
	}
	mask := tab.AliveMask()
	if !mask[0] || mask[1] {
		t.Errorf("AliveMask = %v", mask)
	}

	tab.SetNumAt(0, 0, 9.5)
	tab.SetNumAt(0, 1, 0)
	tab.SetNumAt(0, 2, float64(value.NullID))
	if v, _ := tab.Get(1, "x"); v.AsNumber() != 9.5 {
		t.Errorf("SetNumAt number: %v", v)
	}
	if v, _ := tab.Get(1, "ok"); v.AsBool() {
		t.Errorf("SetNumAt bool: %v", v)
	}
	if v, _ := tab.Get(1, "to"); !v.IsNullRef() {
		t.Errorf("SetNumAt ref: %v", v)
	}

	defer func() {
		if recover() == nil {
			t.Error("SetNumAt on a string column must panic")
		}
	}()
	tab.SetNumAt(0, 3, 1)
}

// Property: a random interleaving of inserts and deletes leaves the table
// agreeing with a map-based model.
func TestInsertDeleteModelProperty(t *testing.T) {
	f := func(ops []int16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := New("T", []Column{{Name: "x", Kind: value.KindNumber}})
		model := make(map[value.ID]float64)
		next := value.ID(1)
		for _, op := range ops {
			if op >= 0 || len(model) == 0 {
				x := float64(op)
				tab.Insert(next, []value.Value{value.Num(x)})
				model[next] = x
				next++
			} else {
				// delete a random existing id
				keys := make([]value.ID, 0, len(model))
				for k := range model {
					keys = append(keys, k)
				}
				id := keys[rng.Intn(len(keys))]
				tab.Delete(id)
				delete(model, id)
			}
		}
		if tab.Len() != len(model) {
			return false
		}
		for id, x := range model {
			v, ok := tab.Get(id, "x")
			if !ok || v.AsNumber() != x {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
