// Package cluster holds the shared-nothing partitioning strategies and
// accounting of §4.2. Earlier revisions of this repo answered the paper's
// open questions — cross-node message cost per tick, per-node load balance,
// partitioned index memory — with a standalone simulator that re-implemented
// a cartoon of the tick. The engine now runs its real tick pipeline over
// spatial partitions with ghost replicas (engine/partition.go, enabled by
// sgl.Options.Partitions), so this package shrank to what must be shared:
// the layout math that maps positions to partitions (used by the engine for
// ownership, ghost intervals and migration detection) and the wire-cost
// model behind the message/byte counters in stats.ExecCounters. The E11/E12
// and E16 experiments measure those quantities from the real engine; we
// substitute a single-process engine for real hardware per the reproduction
// rules — the measured quantities (messages, bytes, balance, index memory)
// are properties of the partitioning logic, not of the wire.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/plan"
	"repro/internal/value"
)

// Modeled wire sizes, carried over from the original simulator's network
// model: a ghost replica or migrated row ships its position row, a foreign
// effect ships (target id, attribute, payload, key).
const (
	BytesPerGhost     = 32
	BytesPerEffect    = 16
	BytesPerMigration = 32
)

// Layout maps object positions to partitions. Layouts are versioned: the
// first partitioned tick measures world bounds and cuts each spatial axis
// into equal-width slots (epoch 1), and the engine's rebalancer later
// derives successor epochs from it — Remeasure refits the uniform slots to
// drift-widened bounds, Split refits population-quantile cut points so hot
// slots narrow and cold ones widen. The edge slots always extend to ±Inf,
// so positions outside the measured bounds clamp to the nearest edge
// partition instead of escaping ownership (OutOfBounds reports them, so the
// skew is observable).
type Layout struct {
	Strategy plan.PartitionStrategy // resolved: stripes, grid or hash
	Parts    int
	PX, PY   int    // grid factorization; stripes are PX×1
	Axes     int    // spatial axes in use: 0 (hash), 1 (stripes) or 2
	Epoch    uint64 // layout version; successor operations bump it

	MinX, MinY float64 // measured box origin
	MaxX, MaxY float64 // measured box far edge (clamp accounting)
	WX, WY     float64 // per-slot widths (> 0), used when cuts are nil

	// CutsX/CutsY are optional non-uniform slot boundaries (ascending,
	// len PX-1 / PY-1) fitted by Split; nil means uniform WX/WY slots.
	CutsX, CutsY []float64
}

// NewLayout builds a layout for parts partitions over the measured world
// box, resolving PartitionAuto through the cost model's ChoosePartition
// (least total cut length = least ghost volume). axes is how many spatial
// axes the class exposes (0 forces hash).
func NewLayout(costs plan.Costs, mode plan.PartitionStrategy, parts, axes int, minX, maxX, minY, maxY float64) (Layout, error) {
	if parts < 1 {
		return Layout{}, fmt.Errorf("cluster: need >= 1 partition, got %d", parts)
	}
	if axes == 0 && mode != plan.PartitionHash {
		mode = plan.PartitionHash // nothing spatial to cut
	}
	strat, px, py := costs.ChoosePartition(mode, parts, axes, maxX-minX, maxY-minY)
	l := Layout{
		Strategy: strat, Parts: parts, PX: px, PY: py, Axes: axes, Epoch: 1,
		MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY,
		WX: slotWidth(minX, maxX, px),
		WY: slotWidth(minY, maxY, py),
	}
	if strat == plan.PartitionHash {
		l.Axes = 0
	} else if py == 1 {
		l.Axes = 1
	}
	return l, nil
}

func slotWidth(min, max float64, n int) float64 {
	w := (max - min) / float64(n)
	if !(w > 0) { // degenerate or empty extent: any positive width works
		w = 1
	}
	return w
}

// Remeasure produces the layout's successor epoch over freshly measured
// world bounds (widened by the caller's drift margin): same strategy and
// factorization, uniform slot widths refitted to the new box. Hash layouts
// are position-independent; only their epoch bumps.
func (l Layout) Remeasure(minX, maxX, minY, maxY float64) Layout {
	n := l
	n.Epoch = l.Epoch + 1
	if l.Strategy == plan.PartitionHash {
		return n
	}
	n.MinX, n.MaxX = minX, maxX
	n.MinY, n.MaxY = minY, maxY
	n.WX = slotWidth(minX, maxX, l.PX)
	n.WY = slotWidth(minY, maxY, l.PY)
	n.CutsX, n.CutsY = nil, nil
	return n
}

// Split produces the layout's successor epoch with population-quantile cut
// points fitted to the sampled member positions: every axis slot receives
// an equal share of the sample, so overloaded (hot) slots split into
// narrower ones and sparse slots widen — the rebalance move for clustering
// populations. The samples are sorted in place and must not contain NaNs
// (the engine filters them before sampling); ys is ignored by one-axis
// layouts. Edge slots still extend to ±Inf; the recorded bounds become the
// sample box (clamp accounting). Hash layouts only bump their epoch.
func (l Layout) Split(xs, ys []float64) Layout {
	n := l
	n.Epoch = l.Epoch + 1
	if l.Strategy == plan.PartitionHash || l.Axes == 0 || len(xs) == 0 {
		return n
	}
	sort.Float64s(xs)
	n.CutsX = quantileCuts(xs, l.PX)
	n.MinX, n.MaxX = xs[0], xs[len(xs)-1]
	n.WX = slotWidth(n.MinX, n.MaxX, l.PX)
	if l.Axes > 1 && len(ys) > 0 {
		sort.Float64s(ys)
		n.CutsY = quantileCuts(ys, l.PY)
		n.MinY, n.MaxY = ys[0], ys[len(ys)-1]
		n.WY = slotWidth(n.MinY, n.MaxY, l.PY)
	}
	return n
}

// quantileCuts picks slots-1 ascending cut points at equal sample-count
// quantiles of a sorted sample. Duplicate cut values are legal (a run of
// identical positions can leave interior slots empty); CoordX stays
// monotone and exact either way.
func quantileCuts(sorted []float64, slots int) []float64 {
	if slots <= 1 {
		return nil
	}
	cuts := make([]float64, 0, slots-1)
	for i := 1; i < slots; i++ {
		cuts = append(cuts, sorted[i*len(sorted)/slots])
	}
	return cuts
}

// CoordX returns the clamped partition coordinate of a position on axis 0.
// It is monotone non-decreasing in x — the property the engine's ghost
// intervals rely on: the set of partitions whose probes can reach a point is
// exactly [CoordX(x−reachHi), CoordX(x+reachLo)], computed with the same
// arithmetic as ownership so no float rounding can drop a boundary ghost.
// The property holds for both uniform slots and quantile cuts.
func (l Layout) CoordX(x float64) int {
	if l.CutsX != nil {
		return cutCoord(x, l.CutsX)
	}
	return coord(x, l.MinX, l.WX, l.PX)
}

// CoordY is CoordX for axis 1.
func (l Layout) CoordY(y float64) int {
	if l.CutsY != nil {
		return cutCoord(y, l.CutsY)
	}
	return coord(y, l.MinY, l.WY, l.PY)
}

// cutCoord returns the number of cut points <= v: slot i owns the
// half-open interval [cuts[i-1], cuts[i]), with the edge slots extending to
// ±Inf. Monotone non-decreasing in v; NaN clamps to slot 0 like coord.
func cutCoord(v float64, cuts []float64) int {
	if math.IsNaN(v) {
		return 0
	}
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if cuts[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// OutOfBounds reports whether a position falls outside the box the layout
// was measured over — such rows clamp into edge slots, the skew
// stats.ExecCounters.ClampedRows makes observable. NaN positions count as
// out of bounds; hash layouts have no box.
func (l Layout) OutOfBounds(x, y float64) bool {
	if l.Axes == 0 {
		return false
	}
	if !(x >= l.MinX && x <= l.MaxX) {
		return true
	}
	return l.Axes > 1 && !(y >= l.MinY && y <= l.MaxY)
}

func coord(v, min, w float64, n int) int {
	c := int(math.Floor((v - min) / w))
	if c < 0 || math.IsNaN(v) {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// Part combines clamped axis coordinates into a partition number.
func (l Layout) Part(cx, cy int) int { return cy*l.PX + cx }

// Owner returns the partition owning an object at (x, y). Hash layouts
// ignore the position and spread by id — the §4.2 strawman.
func (l Layout) Owner(x, y float64, id value.ID) int {
	if l.Strategy == plan.PartitionHash {
		return int(uint64(id) % uint64(l.Parts))
	}
	if l.Axes < 2 {
		return l.CoordX(x)
	}
	return l.Part(l.CoordX(x), l.CoordY(y))
}
