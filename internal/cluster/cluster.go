// Package cluster holds the shared-nothing partitioning strategies and
// accounting of §4.2. Earlier revisions of this repo answered the paper's
// open questions — cross-node message cost per tick, per-node load balance,
// partitioned index memory — with a standalone simulator that re-implemented
// a cartoon of the tick. The engine now runs its real tick pipeline over
// spatial partitions with ghost replicas (engine/partition.go, enabled by
// sgl.Options.Partitions), so this package shrank to what must be shared:
// the layout math that maps positions to partitions (used by the engine for
// ownership, ghost intervals and migration detection) and the wire-cost
// model behind the message/byte counters in stats.ExecCounters. The E11/E12
// and E16 experiments measure those quantities from the real engine; we
// substitute a single-process engine for real hardware per the reproduction
// rules — the measured quantities (messages, bytes, balance, index memory)
// are properties of the partitioning logic, not of the wire.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/plan"
	"repro/internal/value"
)

// Modeled wire sizes, carried over from the original simulator's network
// model: a ghost replica or migrated row ships its position row, a foreign
// effect ships (target id, attribute, payload, key).
const (
	BytesPerGhost     = 32
	BytesPerEffect    = 16
	BytesPerMigration = 32
)

// Layout maps object positions to partitions. A layout is fixed when the
// partitioned world first ticks (dynamic repartitioning is future work, see
// ROADMAP): the world bounds are measured once and each spatial axis is cut
// into equal-width slots, px along axis 0 and py along axis 1. The edge
// slots extend to ±Inf, so positions outside the measured bounds clamp to
// the nearest edge partition instead of escaping ownership.
type Layout struct {
	Strategy plan.PartitionStrategy // resolved: stripes, grid or hash
	Parts    int
	PX, PY   int // grid factorization; stripes are PX×1
	Axes     int // spatial axes in use: 0 (hash), 1 (stripes) or 2

	MinX, MinY float64 // axis origins
	WX, WY     float64 // per-slot widths (> 0)
}

// NewLayout builds a layout for parts partitions over the measured world
// box, resolving PartitionAuto through the cost model's ChoosePartition
// (least total cut length = least ghost volume). axes is how many spatial
// axes the class exposes (0 forces hash).
func NewLayout(costs plan.Costs, mode plan.PartitionStrategy, parts, axes int, minX, maxX, minY, maxY float64) (Layout, error) {
	if parts < 1 {
		return Layout{}, fmt.Errorf("cluster: need >= 1 partition, got %d", parts)
	}
	if axes == 0 && mode != plan.PartitionHash {
		mode = plan.PartitionHash // nothing spatial to cut
	}
	strat, px, py := costs.ChoosePartition(mode, parts, axes, maxX-minX, maxY-minY)
	l := Layout{
		Strategy: strat, Parts: parts, PX: px, PY: py, Axes: axes,
		MinX: minX, MinY: minY,
		WX: slotWidth(minX, maxX, px),
		WY: slotWidth(minY, maxY, py),
	}
	if strat == plan.PartitionHash {
		l.Axes = 0
	} else if py == 1 {
		l.Axes = 1
	}
	return l, nil
}

func slotWidth(min, max float64, n int) float64 {
	w := (max - min) / float64(n)
	if !(w > 0) { // degenerate or empty extent: any positive width works
		w = 1
	}
	return w
}

// CoordX returns the clamped partition coordinate of a position on axis 0.
// It is monotone non-decreasing in x — the property the engine's ghost
// intervals rely on: the set of partitions whose probes can reach a point is
// exactly [CoordX(x−reachHi), CoordX(x+reachLo)], computed with the same
// arithmetic as ownership so no float rounding can drop a boundary ghost.
func (l Layout) CoordX(x float64) int { return coord(x, l.MinX, l.WX, l.PX) }

// CoordY is CoordX for axis 1.
func (l Layout) CoordY(y float64) int { return coord(y, l.MinY, l.WY, l.PY) }

func coord(v, min, w float64, n int) int {
	c := int(math.Floor((v - min) / w))
	if c < 0 || math.IsNaN(v) {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// Part combines clamped axis coordinates into a partition number.
func (l Layout) Part(cx, cy int) int { return cy*l.PX + cx }

// Owner returns the partition owning an object at (x, y). Hash layouts
// ignore the position and spread by id — the §4.2 strawman.
func (l Layout) Owner(x, y float64, id value.ID) int {
	if l.Strategy == plan.PartitionHash {
		return int(uint64(id) % uint64(l.Parts))
	}
	if l.Axes < 2 {
		return l.CoordX(x)
	}
	return l.Part(l.CoordX(x), l.CoordY(y))
}
