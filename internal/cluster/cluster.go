// Package cluster simulates running the SGL tick cycle on a shared-nothing
// cluster (§4.2 of the paper). The paper's open questions are about
// partitioning strategy: how many cross-node messages does a tick cost,
// how balanced is per-node compute, and how much memory does each node's
// partition of the multi-dimensional range index take. This simulator
// executes a spatial-interaction workload (every object range-queries its
// neighborhood, as in Fig. 2) over partitioned nodes with ghost-zone
// replication and counts exactly those quantities. We substitute a
// single-process simulator for real hardware per the reproduction rules:
// the measured quantities (messages, bytes, balance, index memory) are
// properties of the partitioning logic, not of the wire.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/index"
	"repro/internal/value"
)

// Entity is one simulated object (e.g. a vehicle in the paper's
// million-vehicle traffic simulation).
type Entity struct {
	ID     value.ID
	X, Y   float64
	VX, VY float64
}

// Partitioner assigns entities to nodes.
type Partitioner interface {
	// NodeOf returns the owning node for a position/id.
	NodeOf(x, y float64, id value.ID) int
	// Nodes returns the node count.
	Nodes() int
	// Name labels the strategy in reports.
	Name() string
}

// HashPartitioner spreads entities uniformly by id — communication-oblivious,
// the strawman the paper's spatial reasoning argues against.
type HashPartitioner struct{ N int }

// NodeOf implements Partitioner.
func (h HashPartitioner) NodeOf(x, y float64, id value.ID) int { return int(uint64(id) % uint64(h.N)) }

// Nodes implements Partitioner.
func (h HashPartitioner) Nodes() int { return h.N }

// Name implements Partitioner.
func (h HashPartitioner) Name() string { return "hash" }

// StripPartitioner divides the world into N vertical strips — the simplest
// spatial partitioning; neighbors are co-located except at strip borders.
type StripPartitioner struct {
	N          int
	MinX, MaxX float64
}

// NodeOf implements Partitioner.
func (s StripPartitioner) NodeOf(x, y float64, id value.ID) int {
	w := (s.MaxX - s.MinX) / float64(s.N)
	n := int((x - s.MinX) / w)
	if n < 0 {
		n = 0
	}
	if n >= s.N {
		n = s.N - 1
	}
	return n
}

// Nodes implements Partitioner.
func (s StripPartitioner) Nodes() int { return s.N }

// Name implements Partitioner.
func (s StripPartitioner) Name() string { return "strip" }

// Config parameterizes the simulation.
type Config struct {
	Part Partitioner
	// InteractRadius is the range-query radius each entity uses per tick;
	// it also sizes the ghost margin.
	InteractRadius float64
	// BytesPerEntity models the wire size of one replicated/updated entity.
	BytesPerEntity int
	// LatencyPerMsgUS and BandwidthBytesPerUS model the network: per-tick
	// network time = max over nodes of (msgs*latency + bytes/bandwidth).
	LatencyPerMsgUS     float64
	BandwidthBytesPerUS float64
	// ComputePerVisitUS models per-candidate processing cost.
	ComputePerVisitUS float64
}

// TickMetrics reports one simulated tick.
type TickMetrics struct {
	Messages     int64 // cross-node messages (ghost updates + foreign effects)
	Bytes        int64
	MaxNodeLoad  int64   // candidate visits on the busiest node
	TotalLoad    int64   // candidate visits across nodes
	Imbalance    float64 // MaxNodeLoad / (TotalLoad/Nodes)
	NetworkUS    float64 // modeled network time
	ComputeUS    float64 // modeled compute time (critical path = max node)
	TickUS       float64 // compute + network
	GhostCount   int64   // replicated entities
	IndexBytesPN []int   // per-node range-tree bytes (partitioned index, §4.2)
}

// Sim is a running cluster simulation.
type Sim struct {
	cfg  Config
	ents []Entity
}

// New creates a simulation over the given entities.
func New(cfg Config, ents []Entity) (*Sim, error) {
	if cfg.Part == nil || cfg.Part.Nodes() < 1 {
		return nil, fmt.Errorf("cluster: need a partitioner with >= 1 node")
	}
	if cfg.InteractRadius <= 0 {
		return nil, fmt.Errorf("cluster: InteractRadius must be positive")
	}
	if cfg.BytesPerEntity == 0 {
		cfg.BytesPerEntity = 32
	}
	if cfg.LatencyPerMsgUS == 0 {
		cfg.LatencyPerMsgUS = 2
	}
	if cfg.BandwidthBytesPerUS == 0 {
		cfg.BandwidthBytesPerUS = 1250 // ~10 Gb/s
	}
	if cfg.ComputePerVisitUS == 0 {
		cfg.ComputePerVisitUS = 0.05
	}
	return &Sim{cfg: cfg, ents: ents}, nil
}

// Entities exposes the simulation's entities (mutable between ticks).
func (s *Sim) Entities() []Entity { return s.ents }

// Step executes one distributed tick: assign owners, replicate ghosts,
// run each node's local range-query workload over a per-node range tree,
// count cross-node effect messages, then integrate movement.
func (s *Sim) Step() TickMetrics {
	cfg := s.cfg
	nodes := cfg.Part.Nodes()
	r := cfg.InteractRadius

	owner := make([]int, len(s.ents))
	perNode := make([][]index.Entry, nodes)
	ghosts := make([]int64, nodes)
	var m TickMetrics

	// Ownership + ghost replication. An entity is replicated to every
	// other node that owns space within its interaction radius; with the
	// strip partitioner this is its x±r neighbors' strips, with hash
	// partitioning every node needs every entity (the pathological case).
	for i := range s.ents {
		e := &s.ents[i]
		o := cfg.Part.NodeOf(e.X, e.Y, e.ID)
		owner[i] = o
		perNode[o] = append(perNode[o], index.Entry{ID: e.ID, Coords: []float64{e.X, e.Y}})
		for n := 0; n < nodes; n++ {
			if n == o {
				continue
			}
			if s.needsGhost(e, n) {
				perNode[n] = append(perNode[n], index.Entry{ID: e.ID, Coords: []float64{e.X, e.Y}})
				ghosts[n]++
				m.Messages++ // per-tick ghost position update
				m.Bytes += int64(cfg.BytesPerEntity)
			}
		}
	}

	// Per-node compute: build the node's partition of the range index and
	// run every owned entity's neighborhood query against it.
	loads := make([]int64, nodes)
	m.IndexBytesPN = make([]int, nodes)
	trees := make([]*index.RangeTree, nodes)
	for n := 0; n < nodes; n++ {
		trees[n] = index.BuildRangeTree(2, perNode[n])
		m.IndexBytesPN[n] = trees[n].EstimatedBytes()
	}
	for i := range s.ents {
		e := &s.ents[i]
		n := owner[i]
		lo := []float64{e.X - r, e.Y - r}
		hi := []float64{e.X + r, e.Y + r}
		k := trees[n].Count(lo, hi)
		loads[n] += int64(k)
		// Interactions with foreign-owned neighbors produce effect
		// messages back to the owner (one batched message per neighbor
		// pair crossing the boundary, approximated by ghost hits).
		if g := ghosts[n]; g > 0 && k > 0 {
			frac := float64(g) / float64(len(perNode[n]))
			cross := int64(float64(k) * frac)
			m.Messages += cross
			m.Bytes += cross * 16
		}
	}

	for n := 0; n < nodes; n++ {
		m.TotalLoad += loads[n]
		if loads[n] > m.MaxNodeLoad {
			m.MaxNodeLoad = loads[n]
		}
		m.GhostCount += ghosts[n]
	}
	if m.TotalLoad > 0 {
		m.Imbalance = float64(m.MaxNodeLoad) / (float64(m.TotalLoad) / float64(nodes))
	}
	m.ComputeUS = float64(m.MaxNodeLoad) * cfg.ComputePerVisitUS
	m.NetworkUS = float64(m.Messages)*cfg.LatencyPerMsgUS/float64(nodes) +
		float64(m.Bytes)/cfg.BandwidthBytesPerUS
	m.TickUS = m.ComputeUS + m.NetworkUS

	// Integrate movement (continuous motion, §4.1's common case).
	for i := range s.ents {
		s.ents[i].X += s.ents[i].VX
		s.ents[i].Y += s.ents[i].VY
	}
	return m
}

// needsGhost reports whether entity e must be replicated to node n: some
// point of n's region lies within the interaction radius. For the strip
// partitioner this is a cheap strip-distance check; for hash partitioning
// any node may own any neighbor, so replication is always required.
func (s *Sim) needsGhost(e *Entity, n int) bool {
	switch p := s.cfg.Part.(type) {
	case StripPartitioner:
		w := (p.MaxX - p.MinX) / float64(p.N)
		lo := p.MinX + float64(n)*w
		hi := lo + w
		return e.X+s.cfg.InteractRadius >= lo && e.X-s.cfg.InteractRadius <= hi
	case HashPartitioner:
		return true
	default:
		// Conservative: probe the four radius extremes.
		pts := [4][2]float64{
			{e.X - s.cfg.InteractRadius, e.Y}, {e.X + s.cfg.InteractRadius, e.Y},
			{e.X, e.Y - s.cfg.InteractRadius}, {e.X, e.Y + s.cfg.InteractRadius},
		}
		for _, pt := range pts {
			if s.cfg.Part.NodeOf(pt[0], pt[1], e.ID) == n {
				return true
			}
		}
		return false
	}
}

// AggregateMetrics averages tick metrics.
func AggregateMetrics(ms []TickMetrics) TickMetrics {
	var out TickMetrics
	if len(ms) == 0 {
		return out
	}
	for _, m := range ms {
		out.Messages += m.Messages
		out.Bytes += m.Bytes
		out.MaxNodeLoad += m.MaxNodeLoad
		out.TotalLoad += m.TotalLoad
		out.Imbalance += m.Imbalance
		out.NetworkUS += m.NetworkUS
		out.ComputeUS += m.ComputeUS
		out.TickUS += m.TickUS
		out.GhostCount += m.GhostCount
	}
	n := int64(len(ms))
	out.Messages /= n
	out.Bytes /= n
	out.MaxNodeLoad /= n
	out.TotalLoad /= n
	out.Imbalance /= float64(n)
	out.NetworkUS /= float64(n)
	out.ComputeUS /= float64(n)
	out.TickUS /= float64(n)
	out.GhostCount /= n
	out.IndexBytesPN = ms[len(ms)-1].IndexBytesPN
	return out
}

// Hypot is exported for workload helpers.
func Hypot(dx, dy float64) float64 { return math.Hypot(dx, dy) }
