package cluster_test

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/value"
)

func layout(t *testing.T, mode plan.PartitionStrategy, parts, axes int) cluster.Layout {
	t.Helper()
	l, err := cluster.NewLayout(plan.DefaultCosts(), mode, parts, axes, 0, 100, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutValidation(t *testing.T) {
	if _, err := cluster.NewLayout(plan.DefaultCosts(), plan.PartitionAuto, 0, 2, 0, 1, 0, 1); err == nil {
		t.Fatal("zero partitions must fail")
	}
	// A degenerate world box (all objects at one point) must still produce a
	// usable layout instead of a division by zero.
	l, err := cluster.NewLayout(plan.DefaultCosts(), plan.PartitionStripes, 4, 1, 5, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.WX <= 0 || l.CoordX(5) < 0 || l.CoordX(5) >= 4 {
		t.Fatalf("degenerate layout: %+v", l)
	}
}

func TestStripeOwnership(t *testing.T) {
	l := layout(t, plan.PartitionStripes, 4, 1)
	if l.Axes != 1 || l.PX != 4 || l.PY != 1 {
		t.Fatalf("layout = %+v", l)
	}
	// Clamping: out-of-bounds positions belong to the edge partitions.
	if l.Owner(-5, 0, 1) != 0 || l.Owner(500, 0, 1) != 3 {
		t.Error("stripes must clamp out-of-range positions")
	}
	if l.Owner(10, 0, 1) != 0 || l.Owner(60, 0, 1) != 2 {
		t.Error("stripe assignment")
	}
	if l.Owner(math.NaN(), 0, 1) != 0 {
		t.Error("NaN positions must clamp deterministically")
	}
}

func TestGridOwnership(t *testing.T) {
	l := layout(t, plan.PartitionAuto, 4, 2)
	if l.Strategy != plan.PartitionGrid || l.PX != 2 || l.PY != 2 {
		t.Fatalf("square auto layout = %+v", l)
	}
	if l.Owner(10, 10, 1) != 0 || l.Owner(90, 10, 1) != 1 ||
		l.Owner(10, 90, 1) != 2 || l.Owner(90, 90, 1) != 3 {
		t.Error("grid assignment")
	}
}

func TestHashOwnership(t *testing.T) {
	l := layout(t, plan.PartitionHash, 4, 2)
	if l.Axes != 0 {
		t.Fatalf("hash layout keeps axes: %+v", l)
	}
	seen := map[int]bool{}
	for id := 1; id <= 100; id++ {
		p := l.Owner(0, 0, value.ID(id))
		if p < 0 || p >= 4 {
			t.Fatalf("partition out of range: %d", p)
		}
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Error("hash must use all partitions")
	}
	// Position-independent: the same id always lands on the same partition.
	if l.Owner(0, 0, 7) != l.Owner(93, 12, 7) {
		t.Error("hash ownership must ignore position")
	}
}

// TestCoordMonotone pins the property the engine's ghost-interval derivation
// depends on: the clamped coordinate functions are monotone in the position,
// and agree exactly with ownership (no epsilon mismatch at boundaries).
func TestCoordMonotone(t *testing.T) {
	l := layout(t, plan.PartitionStripes, 7, 1)
	prev := math.Inf(-1)
	prevC := 0
	for i := 0; i <= 1000; i++ {
		x := -50 + float64(i)*0.2
		c := l.CoordX(x)
		if x >= prev && c < prevC {
			t.Fatalf("CoordX not monotone: %v->%d after %v->%d", x, c, prev, prevC)
		}
		if own := l.Owner(x, 0, 1); own != c {
			t.Fatalf("Owner(%v)=%d but CoordX=%d", x, own, c)
		}
		prev, prevC = x, c
	}
}
