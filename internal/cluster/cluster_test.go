package cluster_test

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/value"
)

func layout(t *testing.T, mode plan.PartitionStrategy, parts, axes int) cluster.Layout {
	t.Helper()
	l, err := cluster.NewLayout(plan.DefaultCosts(), mode, parts, axes, 0, 100, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutValidation(t *testing.T) {
	if _, err := cluster.NewLayout(plan.DefaultCosts(), plan.PartitionAuto, 0, 2, 0, 1, 0, 1); err == nil {
		t.Fatal("zero partitions must fail")
	}
	// A degenerate world box (all objects at one point) must still produce a
	// usable layout instead of a division by zero.
	l, err := cluster.NewLayout(plan.DefaultCosts(), plan.PartitionStripes, 4, 1, 5, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.WX <= 0 || l.CoordX(5) < 0 || l.CoordX(5) >= 4 {
		t.Fatalf("degenerate layout: %+v", l)
	}
}

func TestStripeOwnership(t *testing.T) {
	l := layout(t, plan.PartitionStripes, 4, 1)
	if l.Axes != 1 || l.PX != 4 || l.PY != 1 {
		t.Fatalf("layout = %+v", l)
	}
	// Clamping: out-of-bounds positions belong to the edge partitions.
	if l.Owner(-5, 0, 1) != 0 || l.Owner(500, 0, 1) != 3 {
		t.Error("stripes must clamp out-of-range positions")
	}
	if l.Owner(10, 0, 1) != 0 || l.Owner(60, 0, 1) != 2 {
		t.Error("stripe assignment")
	}
	if l.Owner(math.NaN(), 0, 1) != 0 {
		t.Error("NaN positions must clamp deterministically")
	}
}

func TestGridOwnership(t *testing.T) {
	l := layout(t, plan.PartitionAuto, 4, 2)
	if l.Strategy != plan.PartitionGrid || l.PX != 2 || l.PY != 2 {
		t.Fatalf("square auto layout = %+v", l)
	}
	if l.Owner(10, 10, 1) != 0 || l.Owner(90, 10, 1) != 1 ||
		l.Owner(10, 90, 1) != 2 || l.Owner(90, 90, 1) != 3 {
		t.Error("grid assignment")
	}
}

func TestHashOwnership(t *testing.T) {
	l := layout(t, plan.PartitionHash, 4, 2)
	if l.Axes != 0 {
		t.Fatalf("hash layout keeps axes: %+v", l)
	}
	seen := map[int]bool{}
	for id := 1; id <= 100; id++ {
		p := l.Owner(0, 0, value.ID(id))
		if p < 0 || p >= 4 {
			t.Fatalf("partition out of range: %d", p)
		}
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Error("hash must use all partitions")
	}
	// Position-independent: the same id always lands on the same partition.
	if l.Owner(0, 0, 7) != l.Owner(93, 12, 7) {
		t.Error("hash ownership must ignore position")
	}
}

// TestCoordMonotone pins the property the engine's ghost-interval derivation
// depends on: the clamped coordinate functions are monotone in the position,
// and agree exactly with ownership (no epsilon mismatch at boundaries).
func TestCoordMonotone(t *testing.T) {
	l := layout(t, plan.PartitionStripes, 7, 1)
	prev := math.Inf(-1)
	prevC := 0
	for i := 0; i <= 1000; i++ {
		x := -50 + float64(i)*0.2
		c := l.CoordX(x)
		if x >= prev && c < prevC {
			t.Fatalf("CoordX not monotone: %v->%d after %v->%d", x, c, prev, prevC)
		}
		if own := l.Owner(x, 0, 1); own != c {
			t.Fatalf("Owner(%v)=%d but CoordX=%d", x, own, c)
		}
		prev, prevC = x, c
	}
}

// TestRemeasureEpoch pins the re-measure successor operation: a new epoch,
// refitted uniform slots over the widened bounds, ownership arithmetic
// consistent with the new box, and hash layouts untouched except for the
// epoch counter.
func TestRemeasureEpoch(t *testing.T) {
	l := layout(t, plan.PartitionStripes, 4, 1)
	if l.Epoch != 1 {
		t.Fatalf("fresh layout epoch = %d, want 1", l.Epoch)
	}
	n := l.Remeasure(100, 300, 0, 100)
	if n.Epoch != 2 || l.Epoch != 1 {
		t.Fatalf("epochs = %d/%d, want 2/1", n.Epoch, l.Epoch)
	}
	if n.MinX != 100 || n.MaxX != 300 || n.WX != 50 {
		t.Fatalf("remeasured box: %+v", n)
	}
	if n.Owner(110, 0, 1) != 0 || n.Owner(260, 0, 1) != 3 || n.Owner(-50, 0, 1) != 0 || n.Owner(900, 0, 1) != 3 {
		t.Error("remeasured ownership")
	}
	if !n.OutOfBounds(99, 0) || n.OutOfBounds(150, 0) || !n.OutOfBounds(math.NaN(), 0) {
		t.Error("OutOfBounds after remeasure")
	}

	h := layout(t, plan.PartitionHash, 4, 2)
	hn := h.Remeasure(0, 1, 0, 1)
	if hn.Epoch != 2 || hn.Owner(5, 5, 7) != h.Owner(5, 5, 7) {
		t.Error("hash remeasure must only bump the epoch")
	}
}

// TestSplitQuantiles pins the quantile-cut successor operation: a clustered
// sample must give the dense region more slots, ownership must stay the
// composition of the clamped coordinate functions, and coordinates must stay
// monotone — the ghost-interval property — for cut layouts too.
func TestSplitQuantiles(t *testing.T) {
	l := layout(t, plan.PartitionStripes, 4, 1)
	// 3/4 of the population clustered in [0, 10], the rest spread to 100.
	xs := make([]float64, 0, 80)
	for i := 0; i < 60; i++ {
		xs = append(xs, float64(i%10))
	}
	for i := 0; i < 20; i++ {
		xs = append(xs, 10+float64(i)*4.5)
	}
	n := l.Split(xs, nil)
	if n.Epoch != 2 || len(n.CutsX) != 3 {
		t.Fatalf("split layout: %+v", n)
	}
	for i := 1; i < len(n.CutsX); i++ {
		if n.CutsX[i] < n.CutsX[i-1] {
			t.Fatalf("cuts not ascending: %v", n.CutsX)
		}
	}
	if n.CutsX[2] > 15 {
		t.Fatalf("quantile cuts ignored the cluster: %v", n.CutsX)
	}
	// Monotone + owner/coord agreement, including out-of-bounds and NaN.
	prev := -1
	for i := 0; i <= 1200; i++ {
		x := -10 + float64(i)*0.1
		c := n.CoordX(x)
		if c < prev || c < 0 || c >= 4 {
			t.Fatalf("cut CoordX not monotone/clamped at %v: %d after %d", x, c, prev)
		}
		if own := n.Owner(x, 0, 3); own != c {
			t.Fatalf("Owner(%v)=%d but CoordX=%d", x, own, c)
		}
		prev = c
	}
	if n.CoordX(math.NaN()) != 0 {
		t.Error("NaN must clamp to slot 0")
	}
	// Every slot is reachable: positions at the sample quantiles land in
	// ascending slots covering [0, PX).
	seen := map[int]bool{}
	for _, x := range []float64{-5, 2, 5, 8, 50, 200} {
		seen[n.CoordX(x)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("quantile slots unreachable: %v (cuts %v)", seen, n.CutsX)
	}

	// 2-D grids cut both axes.
	g := layout(t, plan.PartitionGrid, 4, 2)
	ys := append([]float64(nil), xs...)
	gn := g.Split(append([]float64(nil), xs...), ys)
	if len(gn.CutsX) != g.PX-1 || len(gn.CutsY) != g.PY-1 {
		t.Fatalf("grid split cuts: %+v", gn)
	}
	for cy := 0; cy < gn.PY; cy++ {
		for cx := 0; cx < gn.PX; cx++ {
			x, y := 2+float64(cx)*30, 2+float64(cy)*30
			if own := gn.Owner(x, y, 1); own != gn.Part(gn.CoordX(x), gn.CoordY(y)) {
				t.Fatalf("grid owner/coord mismatch at (%v,%v)", x, y)
			}
		}
	}
}
