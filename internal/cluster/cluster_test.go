package cluster_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/value"
	"repro/internal/workload"
)

func entities(n int) []cluster.Entity {
	net := workload.TrafficNetwork{W: 1000, H: 1000, Roads: 20, Speed: 2}
	return net.Vehicles(n, 7)
}

func run(t *testing.T, part cluster.Partitioner, n, ticks int) cluster.TickMetrics {
	t.Helper()
	sim, err := cluster.New(cluster.Config{
		Part:           part,
		InteractRadius: 10,
	}, entities(n))
	if err != nil {
		t.Fatal(err)
	}
	var ms []cluster.TickMetrics
	for i := 0; i < ticks; i++ {
		ms = append(ms, sim.Step())
	}
	return cluster.AggregateMetrics(ms)
}

func TestConfigValidation(t *testing.T) {
	if _, err := cluster.New(cluster.Config{}, nil); err == nil {
		t.Error("nil partitioner must fail")
	}
	if _, err := cluster.New(cluster.Config{
		Part: cluster.HashPartitioner{N: 2},
	}, nil); err == nil {
		t.Error("zero radius must fail")
	}
}

func TestPartitioners(t *testing.T) {
	h := cluster.HashPartitioner{N: 4}
	if h.Nodes() != 4 || h.Name() != "hash" {
		t.Error("hash partitioner metadata")
	}
	seen := map[int]bool{}
	for id := 1; id <= 100; id++ {
		n := h.NodeOf(0, 0, value.ID(id))
		if n < 0 || n >= 4 {
			t.Fatalf("node out of range: %d", n)
		}
		seen[n] = true
	}
	if len(seen) != 4 {
		t.Error("hash must use all nodes")
	}
	s := cluster.StripPartitioner{N: 4, MinX: 0, MaxX: 100}
	if s.NodeOf(-5, 0, 1) != 0 || s.NodeOf(500, 0, 1) != 3 {
		t.Error("strip clamps out-of-range positions")
	}
	if s.NodeOf(10, 0, 1) != 0 || s.NodeOf(60, 0, 1) != 2 {
		t.Error("strip assignment")
	}
}

func TestSpatialBeatsHashOnMessages(t *testing.T) {
	n, nodes := 2000, 4
	spatial := run(t, cluster.StripPartitioner{N: nodes, MinX: 0, MaxX: 1000}, n, 3)
	hash := run(t, cluster.HashPartitioner{N: nodes}, n, 3)
	// Hash partitioning must replicate every entity to every node;
	// spatial partitioning only replicates near strip borders.
	if spatial.Messages >= hash.Messages {
		t.Fatalf("spatial messages (%d) must be far below hash (%d)",
			spatial.Messages, hash.Messages)
	}
	if hash.Messages < int64(n)*int64(nodes-1) {
		t.Errorf("hash must ghost all entities everywhere: %d", hash.Messages)
	}
	if spatial.GhostCount == 0 {
		t.Error("spatial partitioning must still ghost border entities")
	}
	if spatial.TickUS <= 0 || hash.TickUS <= 0 {
		t.Error("latency model must produce positive times")
	}
}

func TestLoadAccounting(t *testing.T) {
	m := run(t, cluster.StripPartitioner{N: 4, MinX: 0, MaxX: 1000}, 1000, 2)
	if m.TotalLoad <= 0 || m.MaxNodeLoad <= 0 {
		t.Fatal("loads must be positive")
	}
	if m.MaxNodeLoad > m.TotalLoad {
		t.Fatal("max node load cannot exceed total")
	}
	if m.Imbalance < 1 {
		t.Fatalf("imbalance = %v, must be >= 1", m.Imbalance)
	}
	if len(m.IndexBytesPN) != 4 {
		t.Fatal("per-node index bytes missing")
	}
	for _, b := range m.IndexBytesPN {
		if b <= 0 {
			t.Fatal("per-node index bytes must be positive")
		}
	}
}

// TestPartitionedIndexMemory pins §4.2's motivation: partitioning the range
// index across k nodes shrinks the per-node memory footprint superlinearly
// (each partition is n/k points with a smaller log factor).
func TestPartitionedIndexMemory(t *testing.T) {
	n := 4000
	one := run(t, cluster.StripPartitioner{N: 1, MinX: 0, MaxX: 1000}, n, 1)
	four := run(t, cluster.StripPartitioner{N: 4, MinX: 0, MaxX: 1000}, n, 1)
	maxPerNode := 0
	for _, b := range four.IndexBytesPN {
		if b > maxPerNode {
			maxPerNode = b
		}
	}
	if maxPerNode*3 >= one.IndexBytesPN[0] {
		t.Fatalf("4-way partition per-node bytes %d not well below single-node %d",
			maxPerNode, one.IndexBytesPN[0])
	}
}

func TestMovementIntegration(t *testing.T) {
	ents := []cluster.Entity{{ID: value.ID(1), X: 0, Y: 0, VX: 2, VY: 1}}
	sim, err := cluster.New(cluster.Config{
		Part: cluster.StripPartitioner{N: 2, MinX: 0, MaxX: 100}, InteractRadius: 5,
	}, ents)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step()
	got := sim.Entities()[0]
	if got.X != 2 || got.Y != 1 {
		t.Fatalf("entity at %v,%v after step", got.X, got.Y)
	}
}

func TestAggregateMetrics(t *testing.T) {
	if m := cluster.AggregateMetrics(nil); m.Messages != 0 {
		t.Error("empty aggregate")
	}
	ms := []cluster.TickMetrics{
		{Messages: 10, TickUS: 2, Imbalance: 1},
		{Messages: 20, TickUS: 4, Imbalance: 3},
	}
	agg := cluster.AggregateMetrics(ms)
	if agg.Messages != 15 || agg.TickUS != 3 || agg.Imbalance != 2 {
		t.Errorf("aggregate = %+v", agg)
	}
}
