package views

// Predicate compilation. Ten thousand subscriptions that differ only in
// thresholds ("hp < 20", "hp < 35", ...) must not cost ten thousand vexpr
// programs: the per-machine register-slab cache is bounded (64 programs),
// so distinct programs per subscription would re-carve slabs — and
// allocate — on every tick. Canonicalization rewrites every numeric
// literal into a frame-slot read (ast.BindLocal) and keys the compiled
// kernel on the predicate's structural shape; same-shape subscriptions
// share one program and feed their constants through Env.Slots lanes the
// registry fills per subscription. String/bool/null literals stay inline
// (string codes are compile-time dictionary lookups, so they key by
// value).

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/expr"
	"repro/internal/sgl/ast"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// compilePred canonicalizes, classifies and compiles a sem-checked
// predicate into the subscription.
func (s *Sub) compilePred(class string, e ast.Expr) {
	c := &canonicalizer{}
	c.key.WriteString(class)
	c.key.WriteByte('|')
	s.pred = c.rewrite(e)
	s.consts = c.consts
	s.frame = make([]value.Value, len(c.consts))
	for i, v := range c.consts {
		s.frame[i] = value.Num(v)
	}
	vp := analysis.AnalyzeViewPred(class, s.pred)
	s.reads = vp.Reads
	s.stable = vp.Stable
	s.reasons = vp.Reasons
	s.key = c.key.String()
}

// recompileKernel (re)compiles the shared kernel for the subscription's
// canonical shape — on Subscribe, and again on Attach (a restored world
// interns dictionary codes afresh, so cached programs are stale).
func (s *Sub) recompileKernel(r *Registry) {
	s.pp = nil
	s.scalarFn = nil
	if !s.stable {
		// Unstable predicates rescan through the scalar closure: its
		// cross-object reads resolve through the engine (expr.World),
		// which a gathered kernel cannot do from outside the engine.
		s.scalarFn = expr.Compile(s.pred)
		return
	}
	if pp, ok := r.progCache[s.key]; ok {
		s.pp = pp
		if pp == nil {
			s.scalarFn = expr.Compile(s.pred)
		}
		return
	}
	var dict vexpr.Dict
	if d := s.cs.tab.Dict(); d != nil {
		dict = d
	}
	prog, ok := vexpr.CompileOpts(s.pred, vexpr.Opts{
		SlotOK: func(int) bool { return true },
		Dict:   dict,
	})
	if !ok {
		// Outside the kernel subset (ordered string compares, set probes):
		// cache the miss and fall back to the scalar closure per candidate.
		r.progCache[s.key] = nil
		s.scalarFn = expr.Compile(s.pred)
		return
	}
	pp := &predProg{prog: prog, nConsts: len(s.consts)}
	r.progCache[s.key] = pp
	s.pp = pp
}

// canonicalizer deep-copies an expression, replacing numeric literals with
// frame-slot reads and accumulating both the constant vector and the
// structural cache key.
type canonicalizer struct {
	consts []float64
	key    strings.Builder
}

func (c *canonicalizer) rewrite(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.NumLit:
		slot := len(c.consts)
		c.consts = append(c.consts, e.V)
		c.key.WriteByte('$')
		return &ast.Ident{
			Pos:  e.Pos,
			Name: fmt.Sprintf("$const%d", slot),
			Bind: ast.Binding{Kind: ast.BindLocal, Slot: slot},
			Ty:   ast.NumberT,
		}
	case *ast.BoolLit:
		fmt.Fprintf(&c.key, "B%v", e.V)
		return e
	case *ast.StrLit:
		fmt.Fprintf(&c.key, "S%q", e.V)
		return e
	case *ast.NullLit:
		c.key.WriteByte('N')
		return e
	case *ast.Ident:
		fmt.Fprintf(&c.key, "i%d.%d.%d;", e.Bind.Kind, e.Bind.AttrIdx, e.Bind.Slot)
		return e
	case *ast.FieldExpr:
		fmt.Fprintf(&c.key, "f%s.%d(", e.Class, e.AttrIdx)
		x := c.rewrite(e.X)
		c.key.WriteByte(')')
		cp := *e
		cp.X = x
		return &cp
	case *ast.UnaryExpr:
		fmt.Fprintf(&c.key, "u%d(", e.Op)
		x := c.rewrite(e.X)
		c.key.WriteByte(')')
		cp := *e
		cp.X = x
		return &cp
	case *ast.BinaryExpr:
		fmt.Fprintf(&c.key, "b%d(", e.Op)
		x := c.rewrite(e.X)
		c.key.WriteByte(',')
		y := c.rewrite(e.Y)
		c.key.WriteByte(')')
		cp := *e
		cp.X, cp.Y = x, y
		return &cp
	case *ast.CondExpr:
		c.key.WriteString("c(")
		cond := c.rewrite(e.C)
		c.key.WriteByte(',')
		t := c.rewrite(e.T)
		c.key.WriteByte(',')
		f := c.rewrite(e.F)
		c.key.WriteByte(')')
		cp := *e
		cp.C, cp.T, cp.F = cond, t, f
		return &cp
	case *ast.CallExpr:
		fmt.Fprintf(&c.key, "k%d(", e.Builtin)
		cp := *e
		cp.Args = make([]ast.Expr, len(e.Args))
		for i, a := range e.Args {
			if i > 0 {
				c.key.WriteByte(',')
			}
			cp.Args[i] = c.rewrite(a)
		}
		c.key.WriteByte(')')
		return &cp
	default:
		// Unknown node: key by pointer identity so the shape never falsely
		// unifies; the kernel compiler will bail on it anyway.
		fmt.Fprintf(&c.key, "?%p", e)
		return e
	}
}
