package views_test

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/views"
)

// TestApplySteadyStateZeroAlloc is the regression guard for the package's
// headline economy: once a subscription set is warmed (kernels compiled,
// lanes and delta buffers grown), maintaining it performs zero heap
// allocations per Apply — the property that lets one registry serve many
// thousands of spectators without the GC joining the tick loop. The mix
// covers every kind plus a spread of Select thresholds that canonicalize to
// one shared kernel, and the churn driver dirties rows through SetState so
// the measurement isolates view maintenance from engine tick costs.
func TestApplySteadyStateZeroAlloc(t *testing.T) {
	w := unitWorld(t, 256, engine.Options{})
	ids := w.IDs("Unit")
	r := views.New(w, plan.DefaultCosts())
	for i := 0; i < 40; i++ {
		mustSub(t, r, views.Def{
			Class:   "Unit",
			Pred:    fmt.Sprintf("health < %d", 55+i),
			Payload: []string{"health"},
		})
	}
	mustSub(t, r, views.Def{Class: "Unit", Pred: "health < 75", Kind: views.Count})
	mustSub(t, r, views.Def{Class: "Unit", Pred: "true", Kind: views.Sum, Attr: "health"})
	mustSub(t, r, views.Def{Class: "Unit", Pred: "true", Kind: views.TopK, Attr: "health", K: 8})

	var sunk int
	sink := func(d *views.Delta) { sunk += len(d.AddIDs) + len(d.UpdIDs) + len(d.RemIDs) }
	step := 0
	round := func() {
		// Dirty a sliding window of rows with values that cross the Select
		// thresholds back and forth, so every Apply does real delta work:
		// kernel evaluation, membership merges, aggregate refolds.
		step++
		for i := 0; i < 8; i++ {
			id := ids[(step*5+i*31)%len(ids)]
			hp := float64(50 + (step*7+i*13)%50)
			if err := w.SetState("Unit", id, "health", value.Num(hp)); err != nil {
				t.Fatal(err)
			}
		}
		r.Apply(sink)
	}
	// Warm: the first Apply resyncs every subscription from a full rescan,
	// then enough churn rounds for every retained buffer — membership sets,
	// delta lists, payload columns — to reach its steady-state capacity
	// (the churn pattern's period is 50 rounds).
	r.Apply(sink)
	for i := 0; i < 60; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(50, round); allocs != 0 {
		t.Errorf("steady-state Apply allocates %.1f times per round, want 0", allocs)
	}
	if sunk == 0 {
		t.Fatal("churn driver produced no deltas; the measurement is vacuous")
	}
}
