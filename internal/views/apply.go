package views

// Per-tick maintenance. Apply drains the engine changefeed once, then
// maintains each subscription in ascending SubID order — a pure function of
// committed state, so the emitted delta stream is bit-identical across
// Workers/Partitions/Exec configurations (the feed itself is) and across
// maintenance modes (delta and rescan compute membership from the same
// kernels; updates are defined as member ∩ candidate ∩ pass in both).
//
// The per-subscription fast paths, cheapest first:
//
//  1. version skip: the class structure version and every watched column
//     version are unchanged since this subscription last ran — nothing it
//     can observe moved, skip without evaluating anything;
//  2. delta maintain: run the mask kernel over the gathered candidate
//     lanes (the feed's rows), adjust membership by binary search against
//     the sorted member set;
//  3. rescan: run the kernel over the whole extent and diff memberships —
//     chosen by plan.Costs.ChooseView when candidates approach the live
//     count, forced by unstable predicates, resyncs and fresh
//     subscriptions.

import (
	"math"
	"slices"
	"time"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// Apply consumes the tick's changefeed and maintains every subscription,
// invoking fn (when non-nil) with each subscription's delta. Deltas alias
// registry buffers: copy to retain. Call between ticks, after
// engine.RunTick; a detached registry is a no-op.
func (r *Registry) Apply(fn func(*Delta)) {
	if r.eng == nil {
		return
	}
	start := time.Now()
	r.deltaRows, r.rescans, r.deltaBytes = 0, 0, 0
	for _, cs := range r.classList {
		cs.drained = false
		cs.lanesBuilt = false
		cs.idsBuilt = false
		cs.rows = cs.rows[:0]
		cs.killed = cs.killed[:0]
		cs.resync = false
	}
	r.eng.DrainChangeFeed(r.drainFn)
	r.slotSub = nil
	tick := r.eng.Tick()
	for _, s := range r.subs {
		s.d.reset(s.id, s.cs.name, tick)
		if !r.maintain(s) {
			continue
		}
		if s.d.changed {
			r.deltaBytes += s.d.Bytes()
			if fn != nil {
				fn(&s.d)
			}
		}
	}
	r.eng.NoteViewStats(int64(len(r.subs)), r.deltaRows, r.rescans,
		time.Since(start).Nanoseconds())
}

// DeltaBytes reports the total Delta.Bytes emitted by the last Apply.
func (r *Registry) DeltaBytes() int64 { return r.deltaBytes }

// Rescans reports how many subscriptions took the rescan path in the last
// Apply.
func (r *Registry) Rescans() int64 { return r.rescans }

// copyFeed is the DrainChangeFeed callback: the engine's slices are scratch
// valid only during the callback, so the per-class state copies them out.
func (r *Registry) copyFeed(d engine.ClassDelta) {
	cs := r.classes[d.Class]
	if cs == nil || len(cs.subs) == 0 {
		return
	}
	cs.rows = append(cs.rows[:0], d.Rows...)
	cs.killed = append(cs.killed[:0], d.Killed...)
	cs.resync = d.Resync
	cs.drained = true
}

// maintain runs one subscription; false reports the version skip (no
// evaluation happened, cached versions still hold).
func (r *Registry) maintain(s *Sub) bool {
	cs := s.cs
	resync := cs.resync || s.fresh
	if !resync && s.versionsUnchanged(cs) {
		return false
	}
	mode := plan.ViewRescan
	if !resync && s.stable {
		kernels := 16
		if s.pp != nil {
			kernels = s.pp.prog.Kernels()
		}
		mode = r.costs.ChooseView(s.def.Mode, cs.tab.Len(), len(cs.rows), kernels)
	}
	if mode == plan.ViewDelta {
		r.applyDelta(s, cs)
	} else {
		r.applyRescan(s, cs, resync)
		r.rescans++
	}
	s.fresh = false
	s.storeVersions(cs)
	r.deltaRows += int64(len(s.d.AddIDs) + len(s.d.UpdIDs) + len(s.d.RemIDs))
	return true
}

func (s *Sub) versionsUnchanged(cs *classState) bool {
	if !s.versValid || cs.tab.StructVersion() != s.lastStruct {
		return false
	}
	for i, c := range s.cols {
		if cs.tab.ColVersion(c) != s.lastCols[i] {
			return false
		}
	}
	return true
}

func (s *Sub) storeVersions(cs *classState) {
	s.lastStruct = cs.tab.StructVersion()
	for i, c := range s.cols {
		s.lastCols[i] = cs.tab.ColVersion(c)
	}
	s.versValid = true
}

// buildCandIDs fills the candidate id lane and id list for the drained rows.
func (cs *classState) buildCandIDs() {
	if cs.idsBuilt {
		return
	}
	cs.idsBuilt = true
	raw := cs.tab.RawIDs()
	cs.candIDs = cs.candIDs[:0]
	cs.idLane = growFloats(cs.idLane, len(cs.rows))
	for i, row := range cs.rows {
		id := raw[row]
		cs.candIDs = append(cs.candIDs, id)
		cs.idLane[i] = float64(id)
	}
}

// buildLanes gathers the watched columns into dense candidate lanes shared
// by every subscription on the class this Apply.
func (cs *classState) buildLanes() {
	if cs.lanesBuilt {
		return
	}
	cs.lanesBuilt = true
	cs.buildCandIDs()
	k := len(cs.rows)
	for len(cs.lanes) < len(cs.cls.State) {
		cs.lanes = append(cs.lanes, nil)
	}
	for _, a := range cs.gatherCols {
		src := cs.tab.NumColumn(a)
		lane := growFloats(cs.lanes[a], k)
		cs.lanes[a] = lane
		for i, row := range cs.rows {
			lane[i] = src[row]
		}
	}
}

// fillSlots materializes the subscription's constants across n lanes of the
// shared slot vectors (skipped when they already hold them).
func (r *Registry) fillSlots(s *Sub, n int) {
	if r.slotSub == s && r.slotLen >= n {
		return
	}
	for len(r.slotLanes) < len(s.consts) {
		r.slotLanes = append(r.slotLanes, nil)
	}
	for i, v := range s.consts {
		lane := growFloats(r.slotLanes[i], n)
		r.slotLanes[i] = lane
		for j := 0; j < n; j++ {
			lane[j] = v
		}
	}
	r.slotSub = s
	r.slotLen = n
}

// evalCandidates produces the pass mask over the class's candidate lanes.
func (r *Registry) evalCandidates(s *Sub, cs *classState) []float64 {
	k := len(cs.rows)
	mask := growFloats(r.mask, k)
	r.mask = mask
	if k == 0 {
		return mask
	}
	if s.pp != nil {
		cs.buildLanes()
		r.fillSlots(s, k)
		r.env = vexpr.Env{Cols: cs.lanes, IDs: cs.idLane, Slots: r.slotLanes}
		s.pp.prog.Run(&r.mach, &r.env, 0, k, mask)
		return mask
	}
	cs.buildCandIDs()
	ctx := expr.Ctx{W: r.eng, Class: cs.name, Frame: s.frame}
	for i, row := range cs.rows {
		ctx.SelfID = cs.candIDs[i]
		ctx.Self = tabRow{cs.tab, int(row)}
		if s.scalarFn(&ctx).AsBool() {
			mask[i] = 1
		} else {
			mask[i] = 0
		}
	}
	return mask
}

// tabRow adapts a physical table row to expr.RowReader.
type tabRow struct {
	tab *table.Table
	row int
}

func (t tabRow) Attr(attrIdx int) value.Value { return t.tab.At(t.row, attrIdx) }

// applyDelta maintains membership from the feed's candidates only.
func (r *Registry) applyDelta(s *Sub, cs *classState) {
	cs.buildCandIDs()
	mask := r.evalCandidates(s, cs)
	d := &s.d
	r.addPairs = r.addPairs[:0]
	r.updPairs = r.updPairs[:0]
	for i, row := range cs.rows {
		id := cs.candIDs[i]
		_, in := slices.BinarySearch(s.members, id)
		if mask[i] != 0 {
			if in {
				r.updPairs = append(r.updPairs, idRow{id, row})
			} else {
				r.addPairs = append(r.addPairs, idRow{id, row})
			}
		} else if in {
			d.RemIDs = append(d.RemIDs, id)
		}
	}
	for _, id := range cs.killed {
		if _, in := slices.BinarySearch(s.members, id); in {
			d.RemIDs = append(d.RemIDs, id)
		}
	}
	sortPairs(r.addPairs)
	sortPairs(r.updPairs)
	slices.Sort(d.RemIDs)
	r.finishRowDelta(s, cs)
}

// applyRescan recomputes membership from the full extent and diffs.
func (r *Registry) applyRescan(s *Sub, cs *classState, resync bool) {
	newPairs := r.evalFull(s, cs) // ascending id
	d := &s.d
	r.addPairs = r.addPairs[:0]
	r.updPairs = r.updPairs[:0]
	if resync {
		// Full refresh: the whole result ships as adds and the client
		// replaces its state, so prior membership is irrelevant.
		d.Resync = true
		r.addPairs = append(r.addPairs, newPairs...)
		s.memScratch = s.memScratch[:0]
		for _, p := range newPairs {
			s.memScratch = append(s.memScratch, p.id)
		}
		s.members, s.memScratch = s.memScratch, s.members
		if s.def.Kind == Select {
			d.changed = true
		}
		r.recomputeAgg(s, cs, true)
		r.emitRows(s, cs)
		return
	}
	// Diff old vs new membership.
	old := s.members
	i, j := 0, 0
	for i < len(old) || j < len(newPairs) {
		switch {
		case j == len(newPairs) || (i < len(old) && old[i] < newPairs[j].id):
			d.RemIDs = append(d.RemIDs, old[i])
			i++
		case i == len(old) || newPairs[j].id < old[i]:
			r.addPairs = append(r.addPairs, newPairs[j])
			j++
		default:
			i++
			j++
		}
	}
	// Updates are member ∩ candidate ∩ pass — the same set the delta path
	// derives, so both modes emit identical streams.
	cs.buildCandIDs()
	for i, row := range cs.rows {
		id := cs.candIDs[i]
		if _, in := slices.BinarySearch(old, id); !in {
			continue
		}
		if pairsContain(newPairs, id) {
			r.updPairs = append(r.updPairs, idRow{id, row})
		}
	}
	sortPairs(r.updPairs)
	s.memScratch = s.memScratch[:0]
	for _, p := range newPairs {
		s.memScratch = append(s.memScratch, p.id)
	}
	s.members, s.memScratch = s.memScratch, s.members
	r.finishAfterMembership(s, cs)
}

// finishRowDelta merges membership and emits, shared by the delta path.
func (r *Registry) finishRowDelta(s *Sub, cs *classState) {
	d := &s.d
	if len(r.addPairs) > 0 || len(d.RemIDs) > 0 {
		out := s.memScratch[:0]
		old := s.members
		i, j, k := 0, 0, 0
		for i < len(old) || j < len(r.addPairs) {
			if j == len(r.addPairs) || (i < len(old) && old[i] < r.addPairs[j].id) {
				id := old[i]
				i++
				if k < len(d.RemIDs) && d.RemIDs[k] == id {
					k++
					continue
				}
				out = append(out, id)
			} else {
				out = append(out, r.addPairs[j].id)
				j++
			}
		}
		s.members, s.memScratch = out, s.members
	}
	r.finishAfterMembership(s, cs)
}

// finishAfterMembership emits rows or aggregates once s.members is final.
// The aggregate fold runs before emitRows: it consults the remove list,
// which emitRows clears for aggregate kinds.
func (r *Registry) finishAfterMembership(s *Sub, cs *classState) {
	d := &s.d
	if s.def.Kind == Select &&
		(len(r.addPairs) > 0 || len(r.updPairs) > 0 || len(d.RemIDs) > 0) {
		d.changed = true
	}
	r.recomputeAgg(s, cs, false)
	r.emitRows(s, cs)
}

// emitRows fills the delta's id lists and payload columns (Select only;
// aggregates deliver Agg/Top instead of rows).
func (r *Registry) emitRows(s *Sub, cs *classState) {
	d := &s.d
	for _, p := range r.addPairs {
		d.AddIDs = append(d.AddIDs, p.id)
	}
	if s.def.Kind != Select {
		// Aggregate clients consume Agg/Top; drop the row lists the
		// maintenance pass derived (membership is registry-internal).
		d.AddIDs = d.AddIDs[:0]
		d.UpdIDs = d.UpdIDs[:0]
		d.RemIDs = d.RemIDs[:0]
		return
	}
	for _, p := range r.updPairs {
		d.UpdIDs = append(d.UpdIDs, p.id)
	}
	for j, a := range s.payload {
		col := cs.tab.NumColumn(a)
		for _, p := range r.addPairs {
			d.AddCols[j] = append(d.AddCols[j], col[p.row])
		}
		for _, p := range r.updPairs {
			d.UpdCols[j] = append(d.UpdCols[j], col[p.row])
		}
	}
}

// recomputeAgg folds the aggregate kinds after membership settles. Sum
// refolds over members in ascending-id order — the same fold a fresh
// rescan performs, so the bits match by construction. TopK merges
// candidates against the current kth key and falls back to a full
// recompute when a ranked row retracts (leaves, or changes key).
func (r *Registry) recomputeAgg(s *Sub, cs *classState, force bool) {
	d := &s.d
	membersTouched := len(r.addPairs) > 0 || len(d.RemIDs) > 0 || d.Resync
	switch s.def.Kind {
	case Select:
		return
	case Count:
		agg := float64(len(s.members))
		if force || !sameBits(agg, s.agg) {
			s.agg = agg
			d.AggChanged = true
			d.Agg = agg
			d.changed = true
		}
	case Sum:
		if !force && !membersTouched && len(r.updPairs) == 0 {
			return
		}
		col := cs.tab.NumColumn(s.aggAttr)
		agg := 0.0
		for _, id := range s.members {
			agg += col[cs.tab.Row(id)]
		}
		if force || !sameBits(agg, s.agg) {
			s.agg = agg
			d.AggChanged = true
			d.Agg = agg
			d.changed = true
		}
	case TopK:
		if !force && !membersTouched && len(r.updPairs) == 0 {
			return
		}
		r.maintainTopK(s, cs, force)
	}
}

func (r *Registry) maintainTopK(s *Sub, cs *classState, force bool) {
	d := &s.d
	col := cs.tab.NumColumn(s.aggAttr)
	retract := force || d.Resync
	if !retract {
		// A ranked row leaving, or changing key, can promote an arbitrary
		// unranked member: recompute from the full membership.
		for _, id := range d.RemIDs {
			if topContains(s.top, id) {
				retract = true
				break
			}
		}
	}
	if !retract {
		for _, p := range r.updPairs {
			if i := topIndex(s.top, p.id); i >= 0 && !sameBits(s.top[i].Key, col[p.row]) {
				retract = true
				break
			}
		}
	}
	if retract {
		r.topCand = r.topCand[:0]
		for _, id := range s.members {
			r.topCand = append(r.topCand, TopEntry{ID: id, Key: col[cs.tab.Row(id)]})
		}
		sortTop(r.topCand)
		if len(r.topCand) > s.def.K {
			r.topCand = r.topCand[:s.def.K]
		}
		r.commitTop(s, force)
		return
	}
	// Incremental: merge adds (and non-ranked updates) that beat the kth
	// key into the ranking.
	merged := false
	consider := func(id value.ID, row int32) {
		key := col[row]
		if topIndex(s.top, id) >= 0 {
			return
		}
		if len(s.top) < s.def.K || beats(key, id, s.top[len(s.top)-1]) {
			s.top = append(s.top, TopEntry{ID: id, Key: key})
			merged = true
		}
	}
	for _, p := range r.addPairs {
		consider(p.id, p.row)
	}
	for _, p := range r.updPairs {
		consider(p.id, p.row)
	}
	if merged {
		sortTop(s.top)
		if len(s.top) > s.def.K {
			s.top = s.top[:s.def.K]
		}
		d.Top = append(d.Top[:0], s.top...)
		d.AggChanged = true
		d.changed = true
	}
}

// commitTop installs a recomputed ranking, emitting only on change.
func (r *Registry) commitTop(s *Sub, force bool) {
	d := &s.d
	changed := force || len(r.topCand) != len(s.top)
	if !changed {
		for i, e := range r.topCand {
			if e.ID != s.top[i].ID || !sameBits(e.Key, s.top[i].Key) {
				changed = true
				break
			}
		}
	}
	s.top = append(s.top[:0], r.topCand...)
	if changed {
		d.Top = append(d.Top[:0], s.top...)
		d.AggChanged = true
		d.changed = true
	}
}

// evalFull evaluates the predicate over the whole extent, returning the
// passing live rows as (id, row) pairs sorted by ascending id.
func (r *Registry) evalFull(s *Sub, cs *classState) []idRow {
	tab := cs.tab
	n := tab.Cap()
	pairs := r.fullPairs[:0]
	if s.pp != nil {
		mask := growFloats(r.mask, n)
		r.mask = mask
		if n > 0 {
			r.fillSlots(s, n)
			r.env = vexpr.Env{Cols: tab.NumColumns(), Slots: r.slotLanes}
			if s.pp.prog.NeedIDs() {
				lane := growFloats(cs.fullIDLane, n)
				cs.fullIDLane = lane
				raw := tab.RawIDs()
				for i := 0; i < n; i++ {
					lane[i] = float64(raw[i])
				}
				r.env.IDs = lane
			}
			s.pp.prog.Run(&r.mach, &r.env, 0, n, mask)
		}
		raw := tab.RawIDs()
		for row := 0; row < n; row++ {
			if mask[row] != 0 && tab.Alive(row) {
				pairs = append(pairs, idRow{raw[row], int32(row)})
			}
		}
	} else {
		ctx := expr.Ctx{W: r.eng, Class: cs.name, Frame: s.frame}
		raw := tab.RawIDs()
		for row := 0; row < n; row++ {
			if !tab.Alive(row) {
				continue
			}
			ctx.SelfID = raw[row]
			ctx.Self = tabRow{tab, row}
			if s.scalarFn(&ctx).AsBool() {
				pairs = append(pairs, idRow{raw[row], int32(row)})
			}
		}
	}
	sortPairs(pairs)
	r.fullPairs = pairs
	return pairs
}

func sortPairs(p []idRow) {
	slices.SortFunc(p, func(a, b idRow) int {
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		default:
			return 0
		}
	})
}

func pairsContain(pairs []idRow, id value.ID) bool {
	_, ok := slices.BinarySearchFunc(pairs, id, func(p idRow, id value.ID) int {
		switch {
		case p.id < id:
			return -1
		case p.id > id:
			return 1
		default:
			return 0
		}
	})
	return ok
}

// sortTop orders a ranking by key descending, id ascending — the total
// order that makes TopK deterministic under key ties.
func sortTop(t []TopEntry) {
	slices.SortFunc(t, func(a, b TopEntry) int {
		switch {
		case a.Key > b.Key:
			return -1
		case a.Key < b.Key:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
}

func topContains(t []TopEntry, id value.ID) bool { return topIndex(t, id) >= 0 }

func topIndex(t []TopEntry, id value.ID) int {
	for i, e := range t {
		if e.ID == id {
			return i
		}
	}
	return -1
}

// beats reports (key, id) outranking the entry under the TopK total order.
func beats(key float64, id value.ID, e TopEntry) bool {
	if key != e.Key {
		return key > e.Key
	}
	return id < e.ID
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
