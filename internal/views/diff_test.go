package views_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/views"
)

// wallDefs is the subscription mix the differential wall maintains: row
// selects (threshold and spatial box), every aggregate kind, and a
// match-everything select. Mode is stamped per arm.
func wallDefs(t *testing.T, mode plan.ViewMode) []views.Def {
	t.Helper()
	box, err := views.InterestPred([]string{"x", "y"}, []float64{60, 60}, 25)
	if err != nil {
		t.Fatal(err)
	}
	return []views.Def{
		{Class: "Unit", Pred: "health < 99", Payload: []string{"health", "x"}, Mode: mode},
		{Class: "Unit", Pred: box, Payload: []string{"x", "y"}, Mode: mode},
		{Class: "Unit", Pred: "health < 99 && x >= 30", Kind: views.Count, Mode: mode},
		{Class: "Unit", Pred: "health < 99", Kind: views.Sum, Attr: "health", Mode: mode},
		{Class: "Unit", Pred: "true", Kind: views.TopK, Attr: "health", K: 7, Mode: mode},
		{Class: "Unit", Payload: []string{"health"}, Mode: mode},
	}
}

// wallStream runs the crowding scenario under one engine configuration and
// maintenance mode — T ticks with spawn/kill churn and a mid-run
// checkpoint→restore — and serializes every emitted delta plus the final
// per-subscription state.
func wallStream(t *testing.T, opts engine.Options, mode plan.ViewMode) string {
	t.Helper()
	w := unitWorld(t, 400, opts)
	r := views.New(w, plan.DefaultCosts())
	var subs []*views.Sub
	for _, def := range wallDefs(t, mode) {
		subs = append(subs, mustSub(t, r, def))
	}
	var b strings.Builder
	emit := func(d *views.Delta) {
		fmt.Fprintf(&b, "  sub=%d tick=%d resync=%v add=%v/%v upd=%v/%v rem=%v agg=%v/%x top=%v\n",
			d.Sub, d.Tick, d.Resync, d.AddIDs, d.AddCols, d.UpdIDs, d.UpdCols,
			d.RemIDs, d.AggChanged, d.Agg, d.Top)
	}
	rng := rand.New(rand.NewSource(23))
	for tick := 0; tick < 12; tick++ {
		if err := w.RunTick(); err != nil {
			t.Fatal(err)
		}
		// Churn: spawns land inside and outside the interest box, kills hit
		// arbitrary live rows (freeing physical rows for id-reuse hazards).
		for i := 0; i < 4; i++ {
			if _, err := w.Spawn("Unit", map[string]value.Value{
				"x":      value.Num(rng.Float64() * 120),
				"y":      value.Num(rng.Float64() * 120),
				"health": value.Num(40 + rng.Float64()*60),
			}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			ids := w.IDs("Unit")
			if err := w.Kill("Unit", ids[rng.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
		}
		if tick == 6 {
			// Mid-run snapshot round-trip: the feed cannot express the
			// compaction, so every subscription must resync identically.
			cp, err := w.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Restore(cp); err != nil {
				t.Fatal(err)
			}
		}
		fmt.Fprintf(&b, "tick %d:\n", tick)
		r.Apply(emit)
	}
	for _, s := range subs {
		fmt.Fprintf(&b, "final sub=%d members=%v agg=%x top=%v\n",
			s.ID(), s.Members(), s.Agg(), s.Top())
	}
	return b.String()
}

// TestViewDifferentialWall is the acceptance guard for incremental
// maintenance: across {Workers 1,4} × {Partitions 1,4} × {Exec scalar,
// vectorized}, and across maintenance modes (cost-model auto, forced
// delta, forced every-tick rescan), the emitted delta stream and final
// subscription state are bit-identical — under spawn/kill churn, physical
// row reuse and a mid-run checkpoint→restore resync.
func TestViewDifferentialWall(t *testing.T) {
	type cfg struct {
		name string
		opts engine.Options
	}
	var cfgs []cfg
	for _, wk := range []int{1, 4} {
		for _, parts := range []int{1, 4} {
			for _, ex := range []struct {
				name string
				mode plan.ExecMode
			}{{"scalar", plan.ExecScalar}, {"vec", plan.ExecVectorized}} {
				cfgs = append(cfgs, cfg{
					name: fmt.Sprintf("w%d-p%d-%s", wk, parts, ex.name),
					opts: engine.Options{Workers: wk, Partitions: parts, Exec: ex.mode},
				})
			}
		}
	}
	want := wallStream(t, cfgs[0].opts, plan.ViewRescan)
	for _, c := range cfgs {
		for _, m := range []struct {
			name string
			mode plan.ViewMode
		}{{"auto", plan.ViewAuto}, {"delta", plan.ViewDelta}, {"rescan", plan.ViewRescan}} {
			if c.name == cfgs[0].name && m.mode == plan.ViewRescan {
				continue // the baseline itself
			}
			t.Run(c.name+"-"+m.name, func(t *testing.T) {
				if got := wallStream(t, c.opts, m.mode); got != want {
					t.Errorf("delta stream diverged from %s-rescan baseline\nbaseline:\n%s\ngot:\n%s",
						cfgs[0].name, want, got)
				}
			})
		}
	}
}

// TestViewStatsCounters checks the ExecCounters plumbing and that the
// counters stay silent under DisableStats while maintenance itself is
// unaffected (the stream above already proves value-identity; this pins the
// counter side).
func TestViewStatsCounters(t *testing.T) {
	for _, disable := range []bool{false, true} {
		w := unitWorld(t, 200, engine.Options{DisableStats: disable})
		r := views.New(w, plan.DefaultCosts())
		mustSub(t, r, views.Def{Class: "Unit", Pred: "health < 99", Kind: views.Count})
		mustSub(t, r, views.Def{Class: "Unit", Pred: "health < 99", Mode: plan.ViewRescan})
		for i := 0; i < 3; i++ {
			if err := w.RunTick(); err != nil {
				t.Fatal(err)
			}
			r.Apply(nil)
		}
		st := w.ExecStats()
		if disable {
			if st.ViewSubs != 0 || st.ViewDeltaRows != 0 || st.ViewRescans != 0 || st.ViewMaintNanos != 0 {
				t.Fatalf("DisableStats: view counters must stay zero, got %+v", st)
			}
			continue
		}
		if st.ViewSubs != 2 {
			t.Errorf("ViewSubs = %d, want 2", st.ViewSubs)
		}
		if st.ViewRescans < 3 {
			t.Errorf("ViewRescans = %d, want >= 3 (one forced rescan per tick plus resyncs)", st.ViewRescans)
		}
		if st.ViewDeltaRows == 0 {
			t.Error("ViewDeltaRows stayed zero across crowding damage ticks")
		}
		if st.ViewMaintNanos <= 0 {
			t.Error("ViewMaintNanos not accumulated")
		}
	}
}
